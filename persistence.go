package sourcelda

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"

	"sourcelda/internal/core"
	"sourcelda/internal/persist"
)

// SaveCorpus writes the corpus (vocabulary, documents, and ground-truth
// topics when present) as versioned JSON.
func SaveCorpus(w io.Writer, c *Corpus) error {
	if c == nil {
		return errors.New("sourcelda: nil corpus")
	}
	return persist.SaveCorpus(w, c.c)
}

// LoadCorpus reads a corpus written by SaveCorpus.
func LoadCorpus(r io.Reader) (*Corpus, error) {
	c, err := persist.LoadCorpus(r)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// SaveKnowledgeSource writes the knowledge source as versioned JSON. Word
// ids refer to the companion corpus's vocabulary, so save and load the two
// together.
func SaveKnowledgeSource(w io.Writer, k *KnowledgeSource) error {
	if k == nil {
		return errors.New("sourcelda: nil knowledge source")
	}
	return persist.SaveSource(w, k.s)
}

// LoadKnowledgeSource reads a source written by SaveKnowledgeSource.
func LoadKnowledgeSource(r io.Reader) (*KnowledgeSource, error) {
	s, err := persist.LoadSource(r)
	if err != nil {
		return nil, err
	}
	return &KnowledgeSource{s: s}, nil
}

// SaveModel writes a fitted model's snapshot (topic-word and document-topic
// distributions, labels, statistics) as versioned JSON. Assignments and
// traces are not serialized.
func SaveModel(w io.Writer, m *Model) error {
	if m == nil {
		return errors.New("sourcelda: nil model")
	}
	if m.res.Phi == nil {
		return errors.New("sourcelda: model was loaded from a flat bundle and carries no training snapshot to save")
	}
	return persist.SaveResult(w, m.res)
}

// LoadModel reads a snapshot written by SaveModel, reattaching it to the
// corpus and knowledge source it was trained with (needed to render words
// and labels). The snapshot is cross-validated against the pair — topic-word
// row widths against the vocabulary, document-topic row widths and label
// counts against the topic set, source indices against the article count —
// so a mismatched snapshot fails here instead of panicking later.
func LoadModel(r io.Reader, c *Corpus, k *KnowledgeSource) (*Model, error) {
	if c == nil || k == nil {
		return nil, errors.New("sourcelda: nil corpus or knowledge source")
	}
	res, err := persist.LoadResult(r)
	if err != nil {
		return nil, err
	}
	if err := persist.ValidateResult(res, c.c.VocabSize(), k.s.Len()); err != nil {
		return nil, fmt.Errorf("sourcelda: snapshot does not match the corpus/knowledge source: %w", err)
	}
	return &Model{res: res, vocab: c.c.Vocab, source: k.s}, nil
}

// SaveBundle writes the model as a single self-contained serving artifact —
// vocabulary, knowledge source and fitted snapshot in one gzip-compressed
// versioned archive. A bundle is everything cmd/srcldad (or LoadBundle)
// needs; no companion corpus or source files are required at load time.
// The model's provenance (BundleInfo) is embedded as written; use
// SaveBundleNamed to assign a registry name and version at save time.
func SaveBundle(w io.Writer, m *Model) error {
	if m == nil {
		return errors.New("sourcelda: nil model")
	}
	return SaveBundleNamed(w, m, m.info.Name, m.info.Version)
}

// SaveBundleNamed is SaveBundle with the bundle's registry identity
// assigned: name is the logical model name a multi-model daemon serves it
// under and version distinguishes this build from earlier ones (both may be
// empty). The model's chain digest and training time ride along, so the
// deployed artifact stays traceable to the run that produced it.
func SaveBundleNamed(w io.Writer, m *Model, name, version string) error {
	if m == nil {
		return errors.New("sourcelda: nil model")
	}
	if m.source == nil || m.res.Phi == nil {
		return errors.New("sourcelda: model was loaded from a flat bundle, which does not carry the knowledge source or training mixtures; keep the original JSON bundle (or the flat file itself) instead")
	}
	meta := &persist.BundleMeta{
		Name:        name,
		Version:     version,
		ChainDigest: m.info.ChainDigest,
		TrainedAt:   m.info.TrainedAt,
	}
	return persist.SaveBundleMeta(w, m.vocab.Words(), m.source, m.res, meta)
}

// SaveBundleFlat writes the model in the flat, memory-mappable serving
// format: a binary layout whose topic-word conditional slab is stored
// exactly as the inference engine reads it, so LoadBundleFile can mmap the
// file and serve with O(1) load time and near-zero resident cost per cold
// model. Flat bundles are a serving artifact — they do not embed the
// knowledge source or training mixtures, so keep the JSON bundle (or
// snapshot) for retraining and analysis. A flat and a JSON bundle of the
// same model produce bit-identical inference results.
func SaveBundleFlat(w io.Writer, m *Model) error {
	if m == nil {
		return errors.New("sourcelda: nil model")
	}
	return SaveBundleFlatNamed(w, m, m.info.Name, m.info.Version)
}

// SaveBundleFlatNamed is SaveBundleFlat with the registry identity assigned,
// exactly as SaveBundleNamed does for the JSON format.
func SaveBundleFlatNamed(w io.Writer, m *Model, name, version string) error {
	if m == nil {
		return errors.New("sourcelda: nil model")
	}
	if m.source == nil || m.res.Phi == nil {
		return errors.New("sourcelda: model was loaded from a flat bundle; it is already in the flat format")
	}
	meta := &persist.BundleMeta{
		Name:        name,
		Version:     version,
		ChainDigest: m.info.ChainDigest,
		TrainedAt:   m.info.TrainedAt,
	}
	return persist.SaveBundleFlat(w, m.vocab.Words(), m.source, m.res, meta)
}

// LoadBundle reads a bundle written by SaveBundle (gzip JSON, plain JSON, or
// the flat format — sniffed by magic) and returns a fully self-contained
// model: Topics, Infer and InferBatch all work without the training corpus.
// For JSON bundles DocumentTopics still reports the training documents'
// mixtures captured in the snapshot; flat bundles are serving artifacts and
// carry none. Flat input is read eagerly and fully verified here — use
// LoadBundleFile for the zero-copy mmap path. Embedded provenance is
// available via Model.BundleInfo (zero for bundles written before metadata
// existed).
func LoadBundle(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	if magic, err := br.Peek(len(persist.FlatBundleMagic)); err == nil && persist.IsFlatBundle(magic) {
		fb, err := persist.LoadBundleFlat(br)
		if err != nil {
			return nil, err
		}
		return modelFromFlat(fb)
	}
	b, err := persist.LoadBundle(br)
	if err != nil {
		return nil, err
	}
	m := &Model{res: b.Result, vocab: b.Vocab, source: b.Source}
	if b.Meta != nil {
		m.info = bundleInfoFromMeta(b.Meta)
	}
	return m, nil
}

// LoadBundleFile loads a bundle from disk, preferring the cheapest path its
// format allows: a flat bundle is memory-mapped (O(1) load, conditionals
// served straight from the page cache, pages shared across processes), while
// a gzip/plain-JSON bundle is decoded as LoadBundle does. The caller should
// Close the returned model when done serving it; Close is a no-op for
// non-mapped models, and for mapped ones the unmap waits for every Inferrer
// to drain, so closing behind a hot swap is always safe.
func LoadBundleFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [8]byte
	n, _ := io.ReadFull(f, magic[:])
	if persist.IsFlatBundle(magic[:n]) {
		f.Close()
		fb, err := persist.LoadBundleMapped(path)
		if err != nil {
			return nil, err
		}
		return modelFromFlat(fb)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	defer f.Close()
	return LoadBundle(f)
}

// modelFromFlat wraps a loaded flat bundle as a serving model. The frozen
// inference view adopts the bundle's cond slab directly (no copy); when the
// slab lives in mapped pages the model carries the reference-counted unmap
// obligation described on Model.Close.
func modelFromFlat(fb *persist.FlatBundle) (*Model, error) {
	frozen, err := core.FrozenFromCond(fb.Cond, fb.T, fb.V, fb.Labels, fb.SourceIndices, fb.Alpha)
	if err != nil {
		fb.Close()
		return nil, err
	}
	res := &core.Result{
		Labels:         fb.Labels,
		SourceIndices:  fb.SourceIndices,
		NumFreeTopics:  fb.NumFreeTopics,
		Alpha:          fb.Alpha,
		TokenCounts:    fb.TokenCounts,
		DocFrequencies: fb.DocFrequencies,
	}
	m := &Model{res: res, vocab: fb.Vocab}
	if fb.Meta != nil {
		m.info = bundleInfoFromMeta(fb.Meta)
	}
	// Pre-seed the frozen view: engine() must never rebuild it from res
	// (res.Phi is nil) and every Inferrer must share the adopted slab.
	m.frozenOnce.Do(func() { m.frozen = frozen })
	if fb.Mapped {
		m.backing = &mappedBacking{refs: 1, fb: fb}
	}
	return m, nil
}

func bundleInfoFromMeta(meta *persist.BundleMeta) BundleInfo {
	return BundleInfo{
		Name:        meta.Name,
		Version:     meta.Version,
		ChainDigest: meta.ChainDigest,
		TrainedAt:   meta.TrainedAt,
	}
}

// TuningResult reports a (µ, σ) grid search (§III-C5a: select the prior by
// held-out perplexity).
type TuningResult struct {
	// Mu and Sigma are the selected λ-prior parameters.
	Mu, Sigma float64
	// Perplexity is the selected pair's held-out perplexity.
	Perplexity float64
	// Surface lists every evaluated (µ, σ, perplexity) triple.
	Surface [][3]float64
}

// SelectLambdaPrior grid-searches the λ prior by held-out perplexity, the
// procedure the paper uses to set µ = 0.7, σ = 0.3 for its Reuters
// experiment. Pass zero-length slices to use the default grid.
func SelectLambdaPrior(c *Corpus, k *KnowledgeSource, opts Options, mus, sigmas []float64) (*TuningResult, error) {
	if c == nil || k == nil {
		return nil, errors.New("sourcelda: nil corpus or knowledge source")
	}
	base := core.Options{
		NumFreeTopics: opts.FreeTopics,
		Alpha:         opts.Alpha,
		Beta:          opts.Beta,
		UseSmoothing:  true,
	}
	if base.Alpha == 0 {
		base.Alpha = 50.0 / float64(opts.FreeTopics+k.s.Len())
	}
	if base.Beta == 0 {
		base.Beta = 200.0 / float64(c.c.VocabSize())
	}
	sel, err := core.SelectParameters(c.c, k.s, base, core.ParameterGrid{
		Mus:    mus,
		Sigmas: sigmas,
		Seed:   opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &TuningResult{
		Mu:         sel.Best.Mu,
		Sigma:      sel.Best.Sigma,
		Perplexity: sel.Best.Perplexity,
	}
	for _, cand := range sel.Candidates {
		out.Surface = append(out.Surface, [3]float64{cand.Mu, cand.Sigma, cand.Perplexity})
	}
	return out, nil
}

// Vocabulary returns the corpus's interned words in id order.
func (c *Corpus) Vocabulary() []string {
	words := c.c.Vocab.Words()
	out := make([]string, len(words))
	copy(out, words)
	return out
}
