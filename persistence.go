package sourcelda

import (
	"errors"
	"fmt"
	"io"

	"sourcelda/internal/core"
	"sourcelda/internal/persist"
)

// SaveCorpus writes the corpus (vocabulary, documents, and ground-truth
// topics when present) as versioned JSON.
func SaveCorpus(w io.Writer, c *Corpus) error {
	if c == nil {
		return errors.New("sourcelda: nil corpus")
	}
	return persist.SaveCorpus(w, c.c)
}

// LoadCorpus reads a corpus written by SaveCorpus.
func LoadCorpus(r io.Reader) (*Corpus, error) {
	c, err := persist.LoadCorpus(r)
	if err != nil {
		return nil, err
	}
	return &Corpus{c: c}, nil
}

// SaveKnowledgeSource writes the knowledge source as versioned JSON. Word
// ids refer to the companion corpus's vocabulary, so save and load the two
// together.
func SaveKnowledgeSource(w io.Writer, k *KnowledgeSource) error {
	if k == nil {
		return errors.New("sourcelda: nil knowledge source")
	}
	return persist.SaveSource(w, k.s)
}

// LoadKnowledgeSource reads a source written by SaveKnowledgeSource.
func LoadKnowledgeSource(r io.Reader) (*KnowledgeSource, error) {
	s, err := persist.LoadSource(r)
	if err != nil {
		return nil, err
	}
	return &KnowledgeSource{s: s}, nil
}

// SaveModel writes a fitted model's snapshot (topic-word and document-topic
// distributions, labels, statistics) as versioned JSON. Assignments and
// traces are not serialized.
func SaveModel(w io.Writer, m *Model) error {
	if m == nil {
		return errors.New("sourcelda: nil model")
	}
	return persist.SaveResult(w, m.res)
}

// LoadModel reads a snapshot written by SaveModel, reattaching it to the
// corpus and knowledge source it was trained with (needed to render words
// and labels). The snapshot is cross-validated against the pair — topic-word
// row widths against the vocabulary, document-topic row widths and label
// counts against the topic set, source indices against the article count —
// so a mismatched snapshot fails here instead of panicking later.
func LoadModel(r io.Reader, c *Corpus, k *KnowledgeSource) (*Model, error) {
	if c == nil || k == nil {
		return nil, errors.New("sourcelda: nil corpus or knowledge source")
	}
	res, err := persist.LoadResult(r)
	if err != nil {
		return nil, err
	}
	if err := persist.ValidateResult(res, c.c.VocabSize(), k.s.Len()); err != nil {
		return nil, fmt.Errorf("sourcelda: snapshot does not match the corpus/knowledge source: %w", err)
	}
	return &Model{res: res, vocab: c.c.Vocab, source: k.s}, nil
}

// SaveBundle writes the model as a single self-contained serving artifact —
// vocabulary, knowledge source and fitted snapshot in one gzip-compressed
// versioned archive. A bundle is everything cmd/srcldad (or LoadBundle)
// needs; no companion corpus or source files are required at load time.
// The model's provenance (BundleInfo) is embedded as written; use
// SaveBundleNamed to assign a registry name and version at save time.
func SaveBundle(w io.Writer, m *Model) error {
	if m == nil {
		return errors.New("sourcelda: nil model")
	}
	return SaveBundleNamed(w, m, m.info.Name, m.info.Version)
}

// SaveBundleNamed is SaveBundle with the bundle's registry identity
// assigned: name is the logical model name a multi-model daemon serves it
// under and version distinguishes this build from earlier ones (both may be
// empty). The model's chain digest and training time ride along, so the
// deployed artifact stays traceable to the run that produced it.
func SaveBundleNamed(w io.Writer, m *Model, name, version string) error {
	if m == nil {
		return errors.New("sourcelda: nil model")
	}
	meta := &persist.BundleMeta{
		Name:        name,
		Version:     version,
		ChainDigest: m.info.ChainDigest,
		TrainedAt:   m.info.TrainedAt,
	}
	return persist.SaveBundleMeta(w, m.vocab.Words(), m.source, m.res, meta)
}

// LoadBundle reads a bundle written by SaveBundle and returns a fully
// self-contained model: Topics, Infer and InferBatch all work without the
// training corpus. DocumentTopics still reports the training documents'
// mixtures captured in the snapshot. Embedded provenance is available via
// Model.BundleInfo (zero for bundles written before metadata existed).
func LoadBundle(r io.Reader) (*Model, error) {
	b, err := persist.LoadBundle(r)
	if err != nil {
		return nil, err
	}
	m := &Model{res: b.Result, vocab: b.Vocab, source: b.Source}
	if b.Meta != nil {
		m.info = BundleInfo{
			Name:        b.Meta.Name,
			Version:     b.Meta.Version,
			ChainDigest: b.Meta.ChainDigest,
			TrainedAt:   b.Meta.TrainedAt,
		}
	}
	return m, nil
}

// TuningResult reports a (µ, σ) grid search (§III-C5a: select the prior by
// held-out perplexity).
type TuningResult struct {
	// Mu and Sigma are the selected λ-prior parameters.
	Mu, Sigma float64
	// Perplexity is the selected pair's held-out perplexity.
	Perplexity float64
	// Surface lists every evaluated (µ, σ, perplexity) triple.
	Surface [][3]float64
}

// SelectLambdaPrior grid-searches the λ prior by held-out perplexity, the
// procedure the paper uses to set µ = 0.7, σ = 0.3 for its Reuters
// experiment. Pass zero-length slices to use the default grid.
func SelectLambdaPrior(c *Corpus, k *KnowledgeSource, opts Options, mus, sigmas []float64) (*TuningResult, error) {
	if c == nil || k == nil {
		return nil, errors.New("sourcelda: nil corpus or knowledge source")
	}
	base := core.Options{
		NumFreeTopics: opts.FreeTopics,
		Alpha:         opts.Alpha,
		Beta:          opts.Beta,
		UseSmoothing:  true,
	}
	if base.Alpha == 0 {
		base.Alpha = 50.0 / float64(opts.FreeTopics+k.s.Len())
	}
	if base.Beta == 0 {
		base.Beta = 200.0 / float64(c.c.VocabSize())
	}
	sel, err := core.SelectParameters(c.c, k.s, base, core.ParameterGrid{
		Mus:    mus,
		Sigmas: sigmas,
		Seed:   opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	out := &TuningResult{
		Mu:         sel.Best.Mu,
		Sigma:      sel.Best.Sigma,
		Perplexity: sel.Best.Perplexity,
	}
	for _, cand := range sel.Candidates {
		out.Surface = append(out.Surface, [3]float64{cand.Mu, cand.Sigma, cand.Perplexity})
	}
	return out, nil
}

// Vocabulary returns the corpus's interned words in id order.
func (c *Corpus) Vocabulary() []string {
	words := c.c.Vocab.Words()
	out := make([]string, len(words))
	copy(out, words)
	return out
}
