package sourcelda

import (
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// facadeResultsEqual compares fitted results for bit-for-bit equality of
// everything deterministic; iteration wall-clock times are compared by
// length only.
func facadeResultsEqual(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if len(got.IterationTimes) != len(want.IterationTimes) {
		t.Fatalf("%s: iteration-time trace length %d, want %d",
			name, len(got.IterationTimes), len(want.IterationTimes))
	}
	g, w := *got, *want
	g.IterationTimes, w.IterationTimes = nil, nil
	if !reflect.DeepEqual(&g, &w) {
		t.Fatalf("%s: resumed result differs from uninterrupted run", name)
	}
}

// TestFitCheckpointResumeEquality is the facade-level acceptance contract:
// a run that checkpoints, stops early via the progress hook, and resumes
// from disk must produce the same model as an uninterrupted Fit — in the
// sequential mode and in the document-sharded mode.
func TestFitCheckpointResumeEquality(t *testing.T) {
	c, k := buildFixture(t)
	variants := []struct {
		name string
		set  func(*Options)
	}{
		{"sequential", func(o *Options) {}},
		{"sharded", func(o *Options) { o.Shards = 3 }},
	}
	for _, v := range variants {
		base := Options{
			FreeTopics:      1,
			Iterations:      40,
			Seed:            99,
			TraceLikelihood: true,
		}
		v.set(&base)

		full, err := Fit(c, k, base)
		if err != nil {
			t.Fatal(err)
		}

		dir := t.TempDir()
		interrupted := base
		interrupted.Checkpoint = &Checkpointing{Dir: dir, EverySweeps: 10}
		interrupted.Progress = func(p Progress) error {
			if p.Sweep == 25 {
				return ErrStopTraining // simulated crash after sweep 25
			}
			return nil
		}
		if _, err := Fit(c, k, interrupted); err != nil {
			t.Fatalf("%s: interrupted fit: %v", v.name, err)
		}
		// The newest surviving checkpoint is sweep 20; resume re-runs 21..40.
		resumeOpts := base
		resumed, err := Resume(dir, c, k, resumeOpts)
		if err != nil {
			t.Fatalf("%s: resume: %v", v.name, err)
		}
		facadeResultsEqual(t, v.name, resumed.Raw(), full.Raw())
	}
}

// TestProgressReporting pins the hook contract: consecutive 1-based sweeps,
// the configured total, NaN likelihood without tracing (a real value with),
// and checkpoint paths exactly at the cadence.
func TestProgressReporting(t *testing.T) {
	c, k := buildFixture(t)
	dir := t.TempDir()
	var reports []Progress
	_, err := Fit(c, k, Options{
		FreeTopics:      1,
		Iterations:      12,
		Seed:            5,
		TraceLikelihood: true,
		Checkpoint:      &Checkpointing{Dir: dir, EverySweeps: 5, Retain: -1},
		Progress: func(p Progress) error {
			reports = append(reports, p)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 12 {
		t.Fatalf("progress ran %d times, want 12", len(reports))
	}
	for i, p := range reports {
		if p.Sweep != i+1 {
			t.Fatalf("report %d has sweep %d, want %d", i, p.Sweep, i+1)
		}
		if p.TotalSweeps != 12 {
			t.Fatalf("report %d has total %d, want 12", i, p.TotalSweeps)
		}
		if math.IsNaN(p.LogLikelihood) {
			t.Fatalf("report %d log-likelihood is NaN with tracing on", i)
		}
		if p.TokensPerSec <= 0 {
			t.Fatalf("report %d tokens/sec %v", i, p.TokensPerSec)
		}
		wantCkpt := p.Sweep%5 == 0
		if got := p.CheckpointPath != ""; got != wantCkpt {
			t.Fatalf("report %d (sweep %d) checkpoint path %q", i, p.Sweep, p.CheckpointPath)
		}
		if wantCkpt {
			if _, err := os.Stat(p.CheckpointPath); err != nil {
				t.Fatalf("reported checkpoint missing: %v", err)
			}
		}
	}

	// Without tracing, the likelihood must be NaN (never computed).
	var p0 Progress
	_, err = Fit(c, k, Options{
		FreeTopics: 1, Iterations: 1, Seed: 5,
		Progress: func(p Progress) error { p0 = p; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(p0.LogLikelihood) {
		t.Fatalf("log-likelihood %v without tracing, want NaN", p0.LogLikelihood)
	}
}

// TestResumeRejectsChangedOptions: resuming under a different chain
// configuration must fail loudly, not silently fork the chain.
func TestResumeRejectsChangedOptions(t *testing.T) {
	c, k := buildFixture(t)
	dir := t.TempDir()
	opts := Options{
		FreeTopics: 1, Iterations: 10, Seed: 3,
		Checkpoint: &Checkpointing{Dir: dir, EverySweeps: 5},
	}
	if _, err := Fit(c, k, opts); err != nil {
		t.Fatal(err)
	}
	changed := opts
	changed.Seed = 4
	if _, err := Resume(dir, c, k, changed); err == nil {
		t.Fatal("resume with a different seed accepted")
	}
	changed = opts
	changed.Lambda = &LambdaPrior{Fixed: true, Lambda: 1}
	if _, err := Resume(dir, c, k, changed); err == nil {
		t.Fatal("resume with a different λ prior accepted")
	}
	if _, err := Resume(filepath.Join(dir, "nope.ckpt"), c, k, opts); err == nil {
		t.Fatal("resume from a missing file accepted")
	}
}

// TestResumeAtTarget: resuming a finished run is a no-op that still yields
// a usable model.
func TestResumeAtTarget(t *testing.T) {
	c, k := buildFixture(t)
	dir := t.TempDir()
	opts := Options{
		FreeTopics: 1, Iterations: 10, Seed: 8,
		Checkpoint: &Checkpointing{Dir: dir, EverySweeps: 10},
	}
	full, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(dir, c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	facadeResultsEqual(t, "resume-at-target", resumed.Raw(), full.Raw())
	if len(resumed.Topics()) == 0 {
		t.Fatal("resumed model has no topics")
	}
}
