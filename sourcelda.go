// Package sourcelda is a from-scratch Go implementation of Source-LDA
// (Wood, Tan, Wang, Arnold — "Source-LDA: Enhancing Probabilistic Topic
// Models Using Prior Knowledge Sources", ICDE 2017): a semi-supervised topic
// model that sets the Dirichlet priors of topic-word distributions from
// labeled knowledge-source articles, so inferred topics arrive labeled,
// stay consistent with prior knowledge, may deviate from it in a controlled
// way (the λ mechanism), and coexist with freely-discovered unknown topics.
//
// The package is a façade over the internal implementation. A minimal
// session:
//
//	builder := sourcelda.NewCorpusBuilder()
//	builder.AddDocument("d1", "pencil pencil umpire")
//	builder.AddDocument("d2", "ruler ruler baseball")
//	builder.AddKnowledgeArticle("School Supplies", schoolText)
//	builder.AddKnowledgeArticle("Baseball", baseballText)
//	corpus, source := builder.Build()
//
//	model, err := sourcelda.Fit(corpus, source, sourcelda.Options{
//		FreeTopics: 1,
//		Iterations: 500,
//	})
//	for _, topic := range model.Topics() {
//		fmt.Println(topic.Label, topic.TopWords(5))
//	}
//
// Baselines (LDA, EDA, CTM), the post-hoc labelers (JS divergence,
// TF-IDF/cosine IR labeling, counting, PMI), the evaluation metrics, and the
// synthetic workload generators used to reproduce the paper's experiments
// are exposed through companion types in this package.
package sourcelda

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"sourcelda/internal/core"
	"sourcelda/internal/corpus"
	"sourcelda/internal/infer"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/labeling"
	"sourcelda/internal/persist"
	"sourcelda/internal/textproc"
)

// Corpus is an opaque handle to a tokenized document collection.
type Corpus struct {
	c *corpus.Corpus
}

// NumDocuments returns the number of documents.
func (c *Corpus) NumDocuments() int { return c.c.NumDocs() }

// VocabularySize returns the number of distinct words.
func (c *Corpus) VocabularySize() int { return c.c.VocabSize() }

// TotalTokens returns the token count across all documents.
func (c *Corpus) TotalTokens() int { return c.c.TotalTokens() }

// Internal exposes the internal corpus for the experiment harness and
// advanced callers.
func (c *Corpus) Internal() *corpus.Corpus { return c.c }

// WrapCorpus adapts an internal corpus to the public handle.
func WrapCorpus(in *corpus.Corpus) *Corpus { return &Corpus{c: in} }

// KnowledgeSource is an opaque handle to a set of labeled articles.
type KnowledgeSource struct {
	s *knowledge.Source
}

// NumArticles returns the number of labeled articles.
func (k *KnowledgeSource) NumArticles() int { return k.s.Len() }

// Labels returns the article labels in order.
func (k *KnowledgeSource) Labels() []string { return k.s.Labels() }

// Internal exposes the internal source.
func (k *KnowledgeSource) Internal() *knowledge.Source { return k.s }

// WrapKnowledgeSource adapts an internal source to the public handle.
func WrapKnowledgeSource(in *knowledge.Source) *KnowledgeSource { return &KnowledgeSource{s: in} }

// CorpusBuilder accumulates raw-text documents and knowledge articles,
// tokenizing and interning them into one shared vocabulary.
type CorpusBuilder struct {
	c        *corpus.Corpus
	stop     *textproc.Stopwords
	articles []*knowledge.Article
	pending  []pendingArticle
}

type pendingArticle struct{ label, text string }

// NewCorpusBuilder returns a builder with the default English stop list.
func NewCorpusBuilder() *CorpusBuilder {
	return &CorpusBuilder{c: corpus.New(), stop: textproc.DefaultStopwords()}
}

// SetStopwords replaces the stop list (nil disables filtering).
func (b *CorpusBuilder) SetStopwords(words []string) {
	if words == nil {
		b.stop = nil
		return
	}
	b.stop = textproc.NewStopwords(words)
}

// AddDocument tokenizes raw text into the corpus.
func (b *CorpusBuilder) AddDocument(name, text string) {
	b.c.AddText(name, text, b.stop)
}

// AddKnowledgeArticle registers a labeled article. Articles are encoded
// against the final vocabulary at Build time so article words also appear in
// the shared vocabulary.
func (b *CorpusBuilder) AddKnowledgeArticle(label, text string) {
	b.pending = append(b.pending, pendingArticle{label, text})
}

// Build finalizes the corpus and knowledge source. It returns an error for
// duplicate article labels.
func (b *CorpusBuilder) Build() (*Corpus, *KnowledgeSource, error) {
	arts := make([]*knowledge.Article, 0, len(b.pending))
	for _, p := range b.pending {
		arts = append(arts, knowledge.NewArticleFromText(p.label, p.text, b.c.Vocab, b.stop, true))
	}
	src, err := knowledge.NewSource(arts)
	if err != nil {
		return nil, nil, err
	}
	return &Corpus{c: b.c}, &KnowledgeSource{s: src}, nil
}

// Sampler selects the per-token sampling kernel used during training.
type Sampler int

const (
	// SamplerAuto picks the historical default: the serial scan, or the
	// chunked-scan parallel kernel (Algorithm 3) when Threads > 1.
	SamplerAuto Sampler = iota
	// SamplerSerial forces Algorithm 1's sequential scan over all topics.
	SamplerSerial
	// SamplerSparse selects the SparseLDA-style bucket-decomposed kernel:
	// per-token cost proportional to the token's topic sparsity instead of
	// the total topic count. The biggest win on corpora with many topics
	// (T ≳ 100) once the chain has concentrated; see docs/OPERATIONS.md.
	SamplerSparse
	// SamplerSimpleParallel is the paper's Algorithm 3 (chunked scan over
	// one token's topic vector, parallelized across Threads workers).
	SamplerSimpleParallel
	// SamplerPrefixSums is the paper's Algorithm 2 (Blelloch scan).
	SamplerPrefixSums
)

// LambdaPrior configures the divergence-from-source behaviour.
type LambdaPrior struct {
	// Fixed, when true, uses Lambda as a single fixed exponent; otherwise λ
	// is drawn from N(Mu, Sigma) and integrated out during inference.
	Fixed  bool
	Lambda float64
	Mu     float64
	Sigma  float64
}

// Options configures Fit. Zero values take the documented defaults.
type Options struct {
	// FreeTopics is the number of unlabeled topics learned alongside the
	// knowledge-source topics (the paper's K). 0 yields the bijective model.
	FreeTopics int
	// Alpha and Beta are the symmetric Dirichlet priors (defaults 50/T and
	// 200/V per the paper's experiments when left zero).
	Alpha, Beta float64
	// Lambda configures the λ prior. The zero value uses the paper's full
	// model with µ = 0.7, σ = 0.3 and g-smoothing enabled.
	Lambda *LambdaPrior
	// Iterations is the number of Gibbs sweeps (default 1000).
	Iterations int
	// Seed makes runs reproducible.
	Seed int64
	// Threads > 1 selects the parallel chunked-scan sampler with that many
	// workers (the paper's Algorithm 3), unless Shards also requests the
	// document-sharded sweep mode or Sampler names a kernel explicitly.
	Threads int
	// Sampler selects the per-token sampling kernel. The default
	// (SamplerAuto) preserves the historical behaviour driven by Threads
	// and Shards; an explicit kernel overrides it. The sampler shapes the
	// chain's random trajectory, so resuming a checkpointed run requires
	// the same choice the run was started with.
	Sampler Sampler
	// Shards > 0 switches sweeps to the document-sharded data-parallel mode:
	// the corpus is split into that many document shards swept concurrently
	// against shard-local count copies reconciled every sweep. An explicit
	// Threads bounds the workers executing them; otherwise one worker per
	// shard is used (capped at the document and CPU counts). One shard
	// reproduces the default chain exactly; more shards trade within-sweep
	// count freshness for multi-core throughput.
	Shards int
	// TraceLikelihood records a per-iteration log-likelihood trace.
	TraceLikelihood bool
	// Checkpoint, when non-nil, persists the full sampler state to
	// Checkpoint.Dir every Checkpoint.EverySweeps sweeps with atomic writes
	// and bounded retention. A run killed between checkpoints loses only the
	// sweeps since the last one: Resume reconstructs the chain from a
	// checkpoint and continues it bit-for-bit.
	Checkpoint *Checkpointing
	// Progress, when non-nil, runs after every sweep with the sweep index,
	// the latest log-likelihood (when TraceLikelihood is set), the sweep's
	// throughput, and the path of any checkpoint just written. Returning
	// ErrStopTraining ends training early with the partial fit; any other
	// error aborts it.
	Progress ProgressFunc
}

// Checkpointing configures periodic training checkpoints. Zero values take
// the documented defaults.
type Checkpointing struct {
	// Dir is the directory checkpoint files are written into (created if
	// missing). Required.
	Dir string
	// EverySweeps is the checkpoint cadence (default 50). Each checkpoint
	// costs a serialization of roughly 4 bytes per corpus token plus an
	// fsync, so very small values tax training throughput.
	EverySweeps int
	// Retain bounds how many of the newest checkpoints are kept (default 3;
	// negative keeps all).
	Retain int
}

// Progress is the per-sweep training report passed to ProgressFunc.
type Progress struct {
	// Sweep is the 1-based index of the sweep that just completed; it keeps
	// counting across Resume, so a resumed run reports sweeps t+1..T.
	Sweep int
	// TotalSweeps is the run's target sweep count (Options.Iterations).
	TotalSweeps int
	// LogLikelihood is the collapsed joint log-likelihood after this sweep,
	// or NaN when Options.TraceLikelihood is off (computing it costs a full
	// corpus scan, so it is never computed solely for progress reporting).
	LogLikelihood float64
	// TokensPerSec is the sweep's sampling throughput.
	TokensPerSec float64
	// SweepSeconds is the sweep's wall time.
	SweepSeconds float64
	// CheckpointPath is the checkpoint file this sweep produced, or "" for
	// sweeps that didn't checkpoint.
	CheckpointPath string
	// CheckpointSeconds is how long that checkpoint write took, or 0 for
	// sweeps that didn't checkpoint.
	CheckpointSeconds float64
}

// ProgressFunc observes training after each sweep — progress bars, eval
// during training, checkpoint logging. Returning ErrStopTraining stops
// training cleanly (Fit and Resume return the partial model); any other
// error aborts the fit and is returned to the caller.
type ProgressFunc func(p Progress) error

// ErrStopTraining is the sentinel a ProgressFunc returns to end training
// early without signaling failure.
var ErrStopTraining = core.ErrStopTraining

// Model is a fitted Source-LDA model. It is safe for concurrent use once
// fitted or loaded: all state is read-only except the lazily-built frozen
// inference view (guarded by a sync.Once) and, for models loaded from a
// flat bundle, the lazily materialized per-topic rows (guarded by a mutex).
//
// A model loaded from a memory-mapped flat bundle (LoadBundleFile) serves
// its topic-word conditionals directly from the mapped file pages. Such a
// model carries a Close obligation: Close releases the owner's reference to
// the mapping, and the file is unmapped once every Inferrer created from the
// model has also fully drained — so a registry can hot-swap and Close the
// old model while in-flight batches are still scoring against it. For every
// other model Close is a no-op, so callers may close unconditionally.
type Model struct {
	res    *Result
	vocab  *textproc.Vocabulary
	source *knowledge.Source
	info   BundleInfo

	frozenOnce sync.Once
	frozen     *core.Frozen
	frozenErr  error

	// backing, when non-nil, owns the mapped flat-bundle memory the frozen
	// view's cond slab aliases.
	backing *mappedBacking

	// lazyPhi caches per-topic φ rows materialized on demand from the cond
	// slab when the model was loaded without explicit Phi (flat bundles).
	phiMu   sync.Mutex
	lazyPhi [][]float64
}

// mappedBacking reference-counts the mapped file pages behind a flat-bundle
// model: one reference for the owner (released by Model.Close) plus one per
// live Inferrer (released when its session drains). The file is unmapped
// exactly when the count reaches zero, which is what lets a hot swap close
// the old model immediately while its last in-flight batch finishes.
type mappedBacking struct {
	mu     sync.Mutex
	refs   int
	closed bool // owner reference released
	fb     *persist.FlatBundle
}

// retain takes a reference, failing once the mapping has been released.
func (b *mappedBacking) retain() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.refs == 0 {
		return false
	}
	b.refs++
	return true
}

func (b *mappedBacking) release() {
	b.mu.Lock()
	if b.refs <= 0 {
		b.mu.Unlock()
		panic("sourcelda: mapped bundle released more times than retained")
	}
	b.refs--
	unmap := b.refs == 0
	b.mu.Unlock()
	if unmap {
		b.fb.Close()
	}
}

// closeOwner releases the owner's reference (idempotently).
func (b *mappedBacking) closeOwner() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	b.mu.Unlock()
	b.release()
}

// Close releases the model's reference to its memory-mapped bundle, if any.
// The mapping is unmapped once every Inferrer created from this model has
// also drained; materialized data (topic rows already rendered, labels,
// vocabulary) stays valid, but new Inferrers and un-materialized topic rows
// fail or come back empty after the unmap. Close is idempotent and a no-op
// for models that do not serve from a mapping.
func (m *Model) Close() error {
	if m.backing != nil {
		m.backing.closeOwner()
	}
	return nil
}

// Mapped reports whether the model serves its topic-word conditionals from a
// memory-mapped flat bundle (and therefore carries a Close obligation).
func (m *Model) Mapped() bool { return m.backing != nil }

// MappedBytes returns the bytes of bundle file currently memory-mapped for
// this model: 0 for heap-backed models and after the mapping is released.
// Observability surfaces sum this across loaded models to report the
// process's mapped-bundle footprint.
func (m *Model) MappedBytes() int64 {
	if m.backing == nil {
		return 0
	}
	return m.backing.fb.MappedBytes()
}

// NumTopics returns the number of topics without materializing anything.
func (m *Model) NumTopics() int { return len(m.res.Labels) }

// BundleInfo is deployment provenance for a model: the logical name and
// version a serving registry knows it by, the chain-options fingerprint of
// the run that trained it, and when training finished. Fit and Resume stamp
// ChainDigest and TrainedAt; Name and Version are assigned when the model
// is saved as a named bundle (SaveBundleNamed) or loaded from one.
type BundleInfo struct {
	// Name is the logical model name ("" when never assigned).
	Name string
	// Version distinguishes successive builds of the same named model.
	Version string
	// ChainDigest fingerprints the chain-shaping training options as 16
	// lowercase hex digits — the same digest training checkpoints embed, so
	// a served bundle is traceable to its exact training configuration.
	ChainDigest string
	// TrainedAt is when training finished (UTC), zero when unknown.
	TrainedAt time.Time
}

// BundleInfo returns the model's provenance. Fields are zero when unknown
// (e.g. a model loaded from a snapshot or a bundle written before metadata
// existed).
func (m *Model) BundleInfo() BundleInfo { return m.info }

// Result aliases the internal result snapshot.
type Result = core.Result

// Topic describes one fitted topic.
type Topic struct {
	// Index is the topic's position in the model.
	Index int
	// Label is the knowledge-source label, or "topic-<i>" for free topics.
	Label string
	// IsSourceTopic reports whether the topic is bound to a knowledge
	// article.
	IsSourceTopic bool
	// Weight is the fraction of corpus tokens assigned to the topic.
	Weight float64

	phi   []float64
	vocab *textproc.Vocabulary
}

// TopWords returns the topic's n most probable words.
func (t Topic) TopWords(n int) []string {
	ids := textproc.TopWords(t.phi, n)
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = t.vocab.Word(id)
	}
	return out
}

// Probability returns the topic's probability for a word (0 for unknown
// words).
func (t Topic) Probability(word string) float64 {
	id, ok := t.vocab.ID(word)
	if !ok {
		return 0
	}
	return t.phi[id]
}

// coreOptions translates facade options into the internal chain options —
// one mapping shared by Fit and Resume, so a resumed run can never rebuild
// the chain under a different configuration than the one that started it.
func coreOptions(c *Corpus, k *KnowledgeSource, opts Options) core.Options {
	T := opts.FreeTopics + k.s.Len()
	coreOpts := core.Options{
		NumFreeTopics:   opts.FreeTopics,
		Alpha:           opts.Alpha,
		Beta:            opts.Beta,
		Iterations:      opts.Iterations,
		Seed:            opts.Seed,
		TraceLikelihood: opts.TraceLikelihood,
	}
	if coreOpts.Alpha == 0 {
		coreOpts.Alpha = 50.0 / float64(T)
	}
	if coreOpts.Beta == 0 {
		coreOpts.Beta = 200.0 / float64(c.c.VocabSize())
	}
	if coreOpts.Iterations <= 0 {
		coreOpts.Iterations = 1000
	}
	if opts.Lambda == nil {
		coreOpts.LambdaMode = core.LambdaIntegrated
		coreOpts.Mu, coreOpts.Sigma = 0.7, 0.3
		coreOpts.UseSmoothing = true
	} else if opts.Lambda.Fixed {
		coreOpts.LambdaMode = core.LambdaFixed
		coreOpts.Lambda = opts.Lambda.Lambda
	} else {
		coreOpts.LambdaMode = core.LambdaIntegrated
		coreOpts.Mu, coreOpts.Sigma = opts.Lambda.Mu, opts.Lambda.Sigma
		coreOpts.UseSmoothing = true
	}
	if opts.Threads > 1 {
		coreOpts.Sampler = core.SamplerSimpleParallel
		coreOpts.Threads = opts.Threads
	}
	if opts.Shards > 0 {
		coreOpts.SweepMode = core.SweepShardedDocs
		coreOpts.Shards = opts.Shards
		coreOpts.Sampler = core.SamplerSerial
		if opts.Threads > 0 {
			// An explicit Threads setting is a resource bound; honor it.
			coreOpts.Threads = opts.Threads
		} else {
			coreOpts.Threads = core.DefaultShardWorkers(opts.Shards, c.c.NumDocs())
		}
	}
	// An explicit kernel choice overrides the Threads/Shards-derived
	// default; SamplerAuto keeps it (so existing configurations — and their
	// checkpoint chain digests — are untouched).
	switch opts.Sampler {
	case SamplerSerial:
		coreOpts.Sampler = core.SamplerSerial
	case SamplerSparse:
		coreOpts.Sampler = core.SamplerSparse
	case SamplerSimpleParallel:
		coreOpts.Sampler = core.SamplerSimpleParallel
	case SamplerPrefixSums:
		coreOpts.Sampler = core.SamplerPrefixSums
	}
	return coreOpts
}

// Fit trains Source-LDA on the corpus with the knowledge source.
func Fit(c *Corpus, k *KnowledgeSource, opts Options) (*Model, error) {
	if c == nil || k == nil {
		return nil, errors.New("sourcelda: nil corpus or knowledge source")
	}
	coreOpts := coreOptions(c, k, opts)
	m, err := core.NewModel(c.c, k.s, coreOpts)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	if err := runTraining(m, c, opts, coreOpts.Iterations); err != nil {
		return nil, err
	}
	return &Model{res: m.Result(), vocab: c.c.Vocab, source: k.s, info: trainedInfo(coreOpts)}, nil
}

// trainedInfo stamps a freshly trained model's provenance: the chain-options
// digest (identical to the one its checkpoints embed) and the completion
// time.
func trainedInfo(coreOpts core.Options) BundleInfo {
	return BundleInfo{
		ChainDigest: fmt.Sprintf("%016x", coreOpts.ChainDigest()),
		TrainedAt:   time.Now().UTC().Truncate(time.Second),
	}
}

// Resume reconstructs a mid-run chain from a checkpoint written during an
// earlier Fit (or Resume) over the same corpus, knowledge source and
// options, and trains the remaining sweeps. path may be a checkpoint file
// or a checkpoint directory (the newest checkpoint is chosen) — pointing it
// at a crashed run's Options.Checkpoint.Dir is the recovery path.
//
// Options.Iterations is the run's total sweep target, exactly as in Fit: a
// 1000-sweep run checkpointed at sweep 600 resumes with the same options
// and trains the remaining 400. The resumed chain continues the original
// bit for bit, so the final model is identical to one from an uninterrupted
// run (iteration wall-clock times excepted). Resuming with options that
// change the chain (seed, priors, λ treatment, sweep mode, shard count)
// fails with a descriptive error.
func Resume(path string, c *Corpus, k *KnowledgeSource, opts Options) (*Model, error) {
	if c == nil || k == nil {
		return nil, errors.New("sourcelda: nil corpus or knowledge source")
	}
	ck, err := persist.LoadCheckpointFile(path)
	if err != nil {
		return nil, err
	}
	coreOpts := coreOptions(c, k, opts)
	m, err := core.Restore(c.c, k.s, coreOpts, ck)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	if err := runTraining(m, c, opts, coreOpts.Iterations); err != nil {
		return nil, err
	}
	return &Model{res: m.Result(), vocab: c.c.Vocab, source: k.s, info: trainedInfo(coreOpts)}, nil
}

// runTraining drives the chain from its current sweep to totalSweeps,
// wiring the facade's checkpointing and progress reporting into the
// per-sweep hook. ErrStopTraining from the progress hook is a clean early
// stop, not an error.
func runTraining(m *core.Model, c *Corpus, opts Options, totalSweeps int) error {
	remaining := totalSweeps - m.Sweeps()
	if remaining <= 0 {
		return nil
	}
	var ckw *persist.CheckpointWriter
	every := 0
	if opts.Checkpoint != nil {
		every = opts.Checkpoint.EverySweeps
		if every <= 0 {
			every = 50
		}
		var err error
		ckw, err = persist.NewCheckpointWriter(opts.Checkpoint.Dir, opts.Checkpoint.Retain)
		if err != nil {
			return err
		}
	}
	if ckw == nil && opts.Progress == nil {
		m.Run(remaining)
		return nil
	}
	totalTokens := c.c.TotalTokens()
	err := m.RunWithHook(remaining, func(sweep int, cm *core.Model) error {
		path := ""
		ckSecs := 0.0
		if ckw != nil && sweep%every == 0 {
			start := time.Now()
			p, err := ckw.Write(cm.Checkpoint())
			if err != nil {
				return err
			}
			path, ckSecs = p, time.Since(start).Seconds()
		}
		if opts.Progress == nil {
			return nil
		}
		p := Progress{
			Sweep:             sweep,
			TotalSweeps:       totalSweeps,
			LogLikelihood:     math.NaN(),
			CheckpointPath:    path,
			CheckpointSeconds: ckSecs,
		}
		if opts.TraceLikelihood {
			if trace := cm.LikelihoodTrace; len(trace) > 0 {
				p.LogLikelihood = trace[len(trace)-1]
			}
		}
		if times := cm.IterationTimes; len(times) > 0 {
			p.SweepSeconds = times[len(times)-1].Seconds()
			if p.SweepSeconds > 0 {
				p.TokensPerSec = float64(totalTokens) / p.SweepSeconds
			}
		}
		return opts.Progress(p)
	})
	if errors.Is(err, ErrStopTraining) {
		return nil
	}
	return err
}

// Topics returns all fitted topics sorted by descending corpus weight.
func (m *Model) Topics() []Topic {
	var totalTokens int
	for _, n := range m.res.TokenCounts {
		totalTokens += n
	}
	out := make([]Topic, m.NumTopics())
	for t := range out {
		w := 0.0
		if totalTokens > 0 {
			w = float64(m.res.TokenCounts[t]) / float64(totalTokens)
		}
		out[t] = Topic{
			Index:         t,
			Label:         m.res.Labels[t],
			IsSourceTopic: m.res.SourceIndices[t] >= 0,
			Weight:        w,
			phi:           m.topicPhi(t),
			vocab:         m.vocab,
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Weight > out[j].Weight })
	return out
}

// topicPhi returns topic t's word distribution. Models loaded from a flat
// bundle carry no Phi rows — the bundle stores only the transposed cond
// slab — so rows are materialized lazily (one O(V) column gather each) and
// cached, keeping a cold model's resident cost at its metadata until someone
// actually renders topics. Materialization pins the mapped pages for its
// duration; once the mapping is fully released a not-yet-materialized row
// comes back nil (rendering as an empty word list) rather than faulting.
func (m *Model) topicPhi(t int) []float64 {
	if m.res.Phi != nil {
		return m.res.Phi[t]
	}
	m.phiMu.Lock()
	defer m.phiMu.Unlock()
	if m.lazyPhi == nil {
		m.lazyPhi = make([][]float64, m.NumTopics())
	}
	if row := m.lazyPhi[t]; row != nil {
		return row
	}
	if m.backing != nil {
		if !m.backing.retain() {
			return nil
		}
		defer m.backing.release()
	}
	row := m.frozen.TopicRow(t)
	m.lazyPhi[t] = row
	return row
}

// DiscoveredTopics returns source topics present in at least minDocs
// documents — the superset-reduction view (§III-C3).
func (m *Model) DiscoveredTopics(minDocs int) []Topic {
	var out []Topic
	for _, t := range m.Topics() {
		if !t.IsSourceTopic {
			continue
		}
		if m.res.DocFrequencies[t.Index] >= minDocs {
			out = append(out, t)
		}
	}
	return out
}

// Raw returns the internal result snapshot for advanced use (experiment
// harness, evaluation). For models loaded from a flat bundle the snapshot
// has nil Phi and Theta — the flat format stores the transposed serving slab
// and no training mixtures; use Topics/TopTopics (which materialize rows on
// demand) or keep the JSON bundle for analysis workloads.
func (m *Model) Raw() *Result { return m.res }

// DocumentTopics returns document d's topic mixture.
func (m *Model) DocumentTopics(d int) ([]float64, error) {
	if d < 0 || d >= len(m.res.Theta) {
		return nil, fmt.Errorf("sourcelda: document %d out of range", d)
	}
	out := make([]float64, len(m.res.Theta[d]))
	copy(out, m.res.Theta[d])
	return out, nil
}

// ErrNoKnownTokens reports that a document to be inferred contains no
// in-vocabulary tokens, so there is nothing to condition the fold-in chain
// on.
var ErrNoKnownTokens = errors.New("sourcelda: document has no in-vocabulary tokens")

// InferOptions configures fold-in inference on unseen documents. Zero
// values take the documented defaults.
type InferOptions struct {
	// BurnIn is the number of discarded initial Gibbs sweeps per document
	// (0 = default 20; a negative value requests no burn-in at all).
	BurnIn int
	// Samples is the number of post-burn-in sweeps averaged into the
	// mixture (default 10).
	Samples int
	// Seed makes inference reproducible. Results are a pure function of
	// (model, options, document content): every document draws from its own
	// deterministic RNG stream keyed by seed and token content, so batching,
	// batch order and worker count never change a document's mixture.
	Seed int64
	// Workers bounds the goroutines scoring an InferBatch concurrently
	// (default 1, sequential).
	Workers int
}

// DocumentInference is the outcome of folding one unseen document into a
// fitted model.
type DocumentInference struct {
	// Topics is the inferred mixture over the model's topics, in model
	// topic order (the same labeled topics Training produced; index into
	// Model.Topics via Topic.Index, or Raw().Labels).
	Topics []float64
	// KnownTokens and UnknownTokens count the document's in- and
	// out-of-vocabulary tokens. Unknown tokens carry no signal and are
	// skipped.
	KnownTokens, UnknownTokens int
}

// TopTopics returns the n heaviest topics of the mixture as Topic values
// (descending weight, ties broken by lower index).
func (m *Model) TopTopics(d *DocumentInference, n int) []Topic {
	ids := textproc.TopWords(d.Topics, n) // same argsort, reused for topics
	out := make([]Topic, len(ids))
	for i, t := range ids {
		out[i] = Topic{
			Index:         t,
			Label:         m.res.Labels[t],
			IsSourceTopic: m.res.SourceIndices[t] >= 0,
			Weight:        d.Topics[t],
			phi:           m.topicPhi(t),
			vocab:         m.vocab,
		}
	}
	return out
}

// engine lazily builds the frozen inference view (one transpose of Phi; the
// view is immutable and shared by every subsequent Infer/InferBatch call)
// and wraps it with the requested sweep schedule.
func (m *Model) engine(opts InferOptions) (*infer.Engine, error) {
	m.frozenOnce.Do(func() {
		m.frozen, m.frozenErr = core.NewFrozen(m.res)
	})
	if m.frozenErr != nil {
		return nil, m.frozenErr
	}
	return infer.New(m.frozen, infer.Options{
		BurnIn:  opts.BurnIn,
		Samples: opts.Samples,
		Seed:    opts.Seed,
	})
}

// Infer scores one unseen raw-text document against the fitted model
// without refitting: the text is tokenized and encoded against the training
// vocabulary, then folded in by collapsed Gibbs with the topic-word
// statistics locked. It returns ErrNoKnownTokens when no token survives
// vocabulary encoding. Deterministic given InferOptions.Seed.
func (m *Model) Infer(text string, opts InferOptions) (*DocumentInference, error) {
	out, err := m.InferBatch([]string{text}, opts)
	if err != nil {
		return nil, err
	}
	if out[0] == nil {
		return nil, ErrNoKnownTokens
	}
	return out[0], nil
}

// InferBatch scores many documents concurrently over opts.Workers
// goroutines. The returned slice is positionally aligned with texts;
// entries are nil for documents with no in-vocabulary tokens. Each
// document's result is bit-for-bit identical to a single Infer call on it.
//
// Every call with Workers > 1 spins up and tears down a worker pool; a
// serving loop should hold a NewInferrer instead and reuse its pool.
func (m *Model) InferBatch(texts []string, opts InferOptions) ([]*DocumentInference, error) {
	inf, err := m.NewInferrer(opts)
	if err != nil {
		return nil, err
	}
	defer inf.Close()
	return inf.InferBatch(texts), nil
}

// CountKnownTokens reports how many of the text's tokens are in the model
// vocabulary — a cheap pre-check (no sampling) for whether Infer would
// return ErrNoKnownTokens.
func (m *Model) CountKnownTokens(text string) int {
	n := 0
	for _, tok := range textproc.Tokenize(text) {
		if _, ok := m.vocab.ID(tok); ok {
			n++
		}
	}
	return n
}

// Inferrer is a reusable inference session over a fitted model: the sweep
// schedule is pinned at construction and the worker pool is long-lived, so
// a serving loop pays the pool spawn once instead of per batch. Safe for
// concurrent use until Close.
//
// The session is reference-counted for hot-swap serving: Acquire/Release
// pin it across a unit of work, and Close (the owner's release) frees the
// worker pool only once every outstanding pin has been released. A registry
// can therefore swap a model's active Inferrer atomically and let the old
// handle drain behind in-flight requests instead of blocking or failing
// them.
type Inferrer struct {
	m *Model
	s *infer.Session
}

// NewInferrer builds a reusable inference session. Close it to release the
// worker pool. A session over a memory-mapped model holds its own reference
// to the mapping, released only when the session fully drains — so the
// model may be Closed while batches are still in flight, and the file is
// unmapped strictly after the last of them finishes.
func (m *Model) NewInferrer(opts InferOptions) (*Inferrer, error) {
	if m.backing != nil && !m.backing.retain() {
		return nil, errors.New("sourcelda: model is closed (its mapped bundle has been released)")
	}
	e, err := m.engine(opts)
	if err != nil {
		if m.backing != nil {
			m.backing.release()
		}
		return nil, err
	}
	s := infer.NewSession(e, opts.Workers)
	if m.backing != nil {
		s.SetOnDrained(m.backing.release)
	}
	return &Inferrer{m: m, s: s}, nil
}

// Model returns the fitted model this session scores against.
func (inf *Inferrer) Model() *Model { return inf.m }

// Acquire pins the session for a unit of work, returning false when it has
// already fully drained (Close called and every pin released). Pair every
// successful Acquire with exactly one Release.
func (inf *Inferrer) Acquire() bool { return inf.s.Acquire() }

// Release unpins one Acquire; the last release after Close frees the pool.
func (inf *Inferrer) Release() { inf.s.Release() }

// Close releases the owner's reference to the session. The worker pool is
// freed once no Acquire pins remain; until then in-flight batches finish
// normally. The Inferrer must not be used after Close except through still
// outstanding Acquire pins; Close is safe to call more than once.
func (inf *Inferrer) Close() { inf.s.Close() }

// Closed reports whether the session has fully drained and released its
// resources.
func (inf *Inferrer) Closed() bool { return inf.s.Closed() }

// Infer scores one document; see Model.Infer.
func (inf *Inferrer) Infer(text string) (*DocumentInference, error) {
	out := inf.InferBatch([]string{text})
	if out[0] == nil {
		return nil, ErrNoKnownTokens
	}
	return out[0], nil
}

// InferBatch scores many documents concurrently over the session pool; see
// Model.InferBatch. It never fails: entries are nil for documents with no
// in-vocabulary tokens.
func (inf *Inferrer) InferBatch(texts []string) []*DocumentInference {
	docs := make([][]int, len(texts))
	for i, text := range texts {
		docs[i] = encodeForInference(inf.m.vocab, text)
	}
	scored := inf.s.InferBatch(docs)
	out := make([]*DocumentInference, len(texts))
	for i, d := range scored {
		if d.Theta == nil {
			continue
		}
		out[i] = &DocumentInference{
			Topics:        d.Theta,
			KnownTokens:   d.Known,
			UnknownTokens: d.Unknown,
		}
	}
	return out
}

// encodeForInference tokenizes text against the training vocabulary,
// mapping out-of-vocabulary tokens to -1 (rather than dropping them as
// EncodeTokens does) so the inference engine can report how much of the
// document it actually conditioned on.
func encodeForInference(v *textproc.Vocabulary, text string) []int {
	tokens := textproc.Tokenize(text)
	out := make([]int, len(tokens))
	for i, tok := range tokens {
		if id, ok := v.ID(tok); ok {
			out[i] = id
		} else {
			out[i] = -1
		}
	}
	return out
}

// LabelerKind selects a post-hoc labeling technique.
type LabelerKind int

const (
	// LabelJSDivergence matches topics to articles by minimum JS divergence.
	LabelJSDivergence LabelerKind = iota
	// LabelTFIDFCosine is the paper's IR approach (IR-LDA when applied to
	// LDA topics).
	LabelTFIDFCosine
	// LabelCounting counts top-word overlap.
	LabelCounting
	// LabelPMI scores label candidates by pointwise mutual information.
	LabelPMI
)

// NewLabeler constructs a post-hoc labeler of the given kind over the
// corpus/source pair.
func NewLabeler(kind LabelerKind, c *Corpus, k *KnowledgeSource) (labeling.Labeler, error) {
	switch kind {
	case LabelJSDivergence:
		return labeling.NewJSLabeler(k.s, c.c.VocabSize(), knowledge.DefaultEpsilon), nil
	case LabelTFIDFCosine:
		return labeling.NewIRLabeler(k.s, c.c.VocabSize(), 10), nil
	case LabelCounting:
		return labeling.NewCountLabeler(k.s, 10), nil
	case LabelPMI:
		return labeling.NewPMILabeler(k.s, c.c, 10), nil
	default:
		return nil, fmt.Errorf("sourcelda: unknown labeler kind %d", kind)
	}
}
