module sourcelda

go 1.24
