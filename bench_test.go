// Benchmarks: one testing.B benchmark per paper table/figure (each drives
// the same harness as `cmd/experiments` in Quick mode, so `go test -bench`
// regenerates every artifact), plus kernel micro-benchmarks and the ablation
// benches called out in DESIGN.md §4.
package sourcelda

import (
	"fmt"
	"testing"

	"sourcelda/internal/core"
	"sourcelda/internal/experiments"
	"sourcelda/internal/infer"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/lda"
	"sourcelda/internal/parallel"
	"sourcelda/internal/rng"
	"sourcelda/internal/smoothing"
	"sourcelda/internal/synth"
)

// benchExperiment runs one paper artifact end to end per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("no experiment %q", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := e.Run(experiments.Config{Quick: true, Seed: int64(42 + i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Lines) == 0 {
			b.Fatal("no output")
		}
	}
}

func BenchmarkCaseStudy(b *testing.B) { benchExperiment(b, "case-study") }
func BenchmarkFig2(b *testing.B)      { benchExperiment(b, "fig2") }
func BenchmarkFig3(b *testing.B)      { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)      { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)      { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)      { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkTable1(b *testing.B)    { benchExperiment(b, "table1") }
func BenchmarkFig8a(b *testing.B)     { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B)     { benchExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B)     { benchExperiment(b, "fig8c") }
func BenchmarkFig8d(b *testing.B)     { benchExperiment(b, "fig8d") }
func BenchmarkFig8e(b *testing.B)     { benchExperiment(b, "fig8e") }
func BenchmarkFig8f(b *testing.B)     { benchExperiment(b, "fig8f") }

// benchCorpus builds a reusable mid-size workload for kernel benchmarks.
func benchCorpus(b *testing.B) (*synth.MedlineData, error) {
	b.Helper()
	return synth.MedlineLike(synth.MedlineOptions{
		NumTopics:  30,
		LiveTopics: 12,
		NumDocs:    120,
		AvgDocLen:  60,
		Alpha:      0.1,
		Mu:         0.7,
		Sigma:      0.3,
		Seed:       7,
	})
}

// BenchmarkGibbsSweepSourceLDA measures one full-model collapsed Gibbs sweep.
func BenchmarkGibbsSweepSourceLDA(b *testing.B) {
	data, err := benchCorpus(b)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.NewModel(data.Corpus, data.Source, core.Options{
		NumFreeTopics: 6, Alpha: 0.1, Beta: 0.01,
		LambdaMode: core.LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 7, Iterations: 1, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	tokens := data.Corpus.TotalTokens()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Run(1)
	}
	b.ReportMetric(float64(tokens), "tokens/sweep")
}

// BenchmarkGibbsSweepLDA measures a baseline LDA sweep on the same corpus.
func BenchmarkGibbsSweepLDA(b *testing.B) {
	data, err := benchCorpus(b)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := lda.Fit(data.Corpus, lda.Options{
			NumTopics: 12, Alpha: 0.1, Beta: 0.01, Iterations: 1, Seed: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkADLDAWorkers sweeps the document-sharded approximate parallel
// LDA (the §III-C4 contrast class) across worker counts.
func BenchmarkADLDAWorkers(b *testing.B) {
	data, err := benchCorpus(b)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 3, 6} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := lda.FitADLDA(data.Corpus, lda.ADLDAOptions{
					NumTopics: 12, Alpha: 0.1, Beta: 0.01,
					Iterations: 2, Seed: 3, Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSamplerKernels compares the three §III-C4 sampling kernels on a
// fixed probability vector size (the per-token cost of Algorithms 1–3).
func BenchmarkSamplerKernels(b *testing.B) {
	for _, T := range []int{64, 512, 4096} {
		probs := make([]float64, T)
		r := rng.New(5)
		for i := range probs {
			probs[i] = r.Float64()
		}
		compute := func(lo, hi int, out []float64) { copy(out, probs[lo:hi]) }
		for _, workers := range []int{1, 3, 6} {
			pool := parallel.NewPool(workers)
			samplers := []parallel.TopicSampler{
				parallel.NewSerial(),
				parallel.NewSimpleParallel(pool),
				parallel.NewPrefixSums(pool),
			}
			for _, s := range samplers {
				name := fmt.Sprintf("T=%d/workers=%d/%s", T, workers, s.Name())
				b.Run(name, func(b *testing.B) {
					u := 0.0
					for i := 0; i < b.N; i++ {
						u += 1.0 / float64(b.N)
						if u >= 1 {
							u = 0
						}
						s.Sample(T, compute, u)
					}
				})
			}
			pool.Close()
		}
	}
}

// BenchmarkSweepModes compares Gibbs sweep throughput (tokens/sec) across
// the corpus-traversal modes: the exact sequential sweep with each §III-C4
// kernel plus the sparse bucket-decomposed kernel, and the document-sharded
// data-parallel sweep at increasing shard counts. Sharded sweeps with S
// shards use S worker threads, so the series shows both the flat-state
// single-core gain and the multi-core scaling.
//
// The "skewed-T204" group is the sparse kernel's home turf — and its
// acceptance gate (≥1.5× over serial): 204 topics of which only a dozen
// generate the corpus, so after a few sweeps each token's mass concentrates
// on a handful of document- and word-active topics while the dense kernels
// keep paying K + S·P per token.
func BenchmarkSweepModes(b *testing.B) {
	small, err := benchCorpus(b)
	if err != nil {
		b.Fatal(err)
	}
	skewed, err := synth.MedlineLike(synth.MedlineOptions{
		NumTopics:  200,
		LiveTopics: 12,
		NumDocs:    60,
		AvgDocLen:  60,
		Alpha:      0.1,
		Mu:         0.7,
		Sigma:      0.3,
		Seed:       7,
	})
	if err != nil {
		b.Fatal(err)
	}
	base := core.Options{
		NumFreeTopics: 6, Alpha: 0.1, Beta: 0.01,
		LambdaMode: core.LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 7, Iterations: 1, Seed: 3,
	}
	type mode struct {
		name string
		data *synth.MedlineData
		set  func(*core.Options)
	}
	modes := []mode{
		{"sequential/serial", small, func(o *core.Options) {}},
		{"sequential/sparse", small, func(o *core.Options) { o.Sampler = core.SamplerSparse }},
		{"sequential/prefix-sums", small, func(o *core.Options) {
			o.Sampler = core.SamplerPrefixSums
			o.Threads = 4
		}},
		{"sequential/simple-parallel", small, func(o *core.Options) {
			o.Sampler = core.SamplerSimpleParallel
			o.Threads = 4
		}},
	}
	for _, shards := range []int{1, 2, 4, 8} {
		shards := shards
		modes = append(modes, mode{
			fmt.Sprintf("sharded/shards=%d", shards),
			small,
			func(o *core.Options) {
				o.SweepMode = core.SweepShardedDocs
				o.Shards = shards
				o.Threads = shards
			},
		})
	}
	modes = append(modes,
		mode{"skewed-T204/serial", skewed, func(o *core.Options) {}},
		mode{"skewed-T204/sparse", skewed, func(o *core.Options) { o.Sampler = core.SamplerSparse }},
		mode{"skewed-T204/sharded-sparse-4", skewed, func(o *core.Options) {
			o.Sampler = core.SamplerSparse
			o.SweepMode = core.SweepShardedDocs
			o.Shards = 4
			o.Threads = 4
		}},
	)
	for _, md := range modes {
		b.Run(md.name, func(b *testing.B) {
			opts := base
			md.set(&opts)
			m, err := core.NewModel(md.data.Corpus, md.data.Source, opts)
			if err != nil {
				b.Fatal(err)
			}
			defer m.Close()
			// Warm-up sweeps concentrate each token's topic support the way
			// a real mid-training sweep looks; without them the sparse
			// kernel is benchmarked on its worst case (uniformly random
			// initial assignments) and the dense kernels on their best.
			m.Run(3)
			tokens := md.data.Corpus.TotalTokens()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Run(1)
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(tokens)*float64(b.N)/secs, "tokens/sec")
			}
		})
	}
}

// benchInferModel fits a mid-size model once and builds held-out documents
// for the serving benchmarks.
func benchInferModel(b *testing.B) (*core.Frozen, [][]int) {
	b.Helper()
	data, err := benchCorpus(b)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Fit(data.Corpus, data.Source, core.Options{
		NumFreeTopics: 6, Alpha: 0.1, Beta: 0.01,
		LambdaMode: core.LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 7, Iterations: 20, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	// Held-out docs: reuse corpus token streams (the engine never sees the
	// training assignments, only the frozen conditionals).
	docs := make([][]int, 32)
	for i := range docs {
		docs[i] = data.Corpus.Docs[i%data.Corpus.NumDocs()].Words
	}
	return m.Freeze(), docs
}

// BenchmarkInfer measures single-document fold-in inference — the serving
// hot path of cmd/srcldad.
func BenchmarkInfer(b *testing.B) {
	frozen, docs := benchInferModel(b)
	e, err := infer.New(frozen, infer.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := e.Infer(docs[i%len(docs)]); d.Theta == nil {
			b.Fatal("no mixture")
		}
	}
}

// BenchmarkInferBatch measures batched inference throughput across worker
// counts (docs/sec over a 32-document batch).
func BenchmarkInferBatch(b *testing.B) {
	frozen, docs := benchInferModel(b)
	e, err := infer.New(frozen, infer.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			pool := parallel.NewPool(workers)
			defer pool.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.InferBatch(docs, pool)
			}
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(len(docs))*float64(b.N)/secs, "docs/sec")
			}
		})
	}
}

// BenchmarkAblationQuadrature sweeps the λ quadrature node count A
// (DESIGN.md ablation 1): accuracy of the integral vs per-token cost.
func BenchmarkAblationQuadrature(b *testing.B) {
	data, err := benchCorpus(b)
	if err != nil {
		b.Fatal(err)
	}
	for _, a := range []int{3, 7, 15, 31} {
		b.Run(fmt.Sprintf("A=%d", a), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := core.NewModel(data.Corpus, data.Source, core.Options{
					NumFreeTopics: 6, Alpha: 0.1, Beta: 0.01,
					LambdaMode: core.LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
					QuadraturePoints: a, Iterations: 1, Seed: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				m.Run(1)
				m.Close()
			}
		})
	}
}

// BenchmarkAblationDeltaRepresentation compares sparse powered-δ lookups
// against materializing dense vectors (DESIGN.md ablation 2): Dense() per
// topic is what a naive implementation would pay per quadrature point.
func BenchmarkAblationDeltaRepresentation(b *testing.B) {
	data, err := benchCorpus(b)
	if err != nil {
		b.Fatal(err)
	}
	v := data.Corpus.VocabSize()
	h := data.Source.Article(0).Hyperparams(v, knowledge.DefaultEpsilon)
	pd := h.Pow(0.7)
	words := data.Corpus.Docs[0].Words
	b.Run("sparse-lookup", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			for _, w := range words {
				sink += pd.Value(w)
			}
		}
		_ = sink
	})
	b.Run("dense-materialize", func(b *testing.B) {
		var sink float64
		for i := 0; i < b.N; i++ {
			dense := h.Pow(0.7).Dense()
			for _, w := range words {
				sink += dense[w]
			}
		}
		_ = sink
	})
}

// BenchmarkAblationSmoothing compares g(λ) estimation strategies
// (DESIGN.md ablation 3): Monte-Carlo vs the deterministic mean-field
// shortcut.
func BenchmarkAblationSmoothing(b *testing.B) {
	data, err := benchCorpus(b)
	if err != nil {
		b.Fatal(err)
	}
	v := data.Corpus.VocabSize()
	art := data.Source.Article(0)
	h := art.Hyperparams(v, knowledge.DefaultEpsilon)
	src := art.SmoothedDistribution(v, knowledge.DefaultEpsilon)
	b.Run("monte-carlo", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			smoothing.Estimate(h, src, smoothing.Config{GridPoints: 11, Samples: 30, Seed: 1})
		}
	})
	b.Run("mean-field", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			smoothing.Estimate(h, src, smoothing.Config{GridPoints: 11, MeanField: true, Seed: 1})
		}
	})
}

// BenchmarkAblationLambdaPosterior compares frozen prior-weighted λ
// quadrature against the per-topic posterior reweighting (DESIGN.md
// ablation; see core.Options.FreezeLambdaWeights).
func BenchmarkAblationLambdaPosterior(b *testing.B) {
	data, err := benchCorpus(b)
	if err != nil {
		b.Fatal(err)
	}
	for _, frozen := range []bool{false, true} {
		name := "posterior"
		if frozen {
			name = "frozen-prior"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := core.NewModel(data.Corpus, data.Source, core.Options{
					NumFreeTopics: 6, Alpha: 0.1, Beta: 0.01,
					LambdaMode: core.LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
					QuadraturePoints: 7, FreezeLambdaWeights: frozen,
					LambdaBurnIn: 1, Iterations: 1, Seed: 3,
				})
				if err != nil {
					b.Fatal(err)
				}
				m.Run(3)
				m.Close()
			}
		})
	}
}

// BenchmarkSupersetReduction measures the §III-C3 post-processing paths.
func BenchmarkSupersetReduction(b *testing.B) {
	data, err := benchCorpus(b)
	if err != nil {
		b.Fatal(err)
	}
	m, err := core.Fit(data.Corpus, data.Source, core.Options{
		NumFreeTopics: 6, Alpha: 0.1, Beta: 0.01,
		LambdaMode: core.LambdaFixed, Lambda: 1,
		Iterations: 20, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	res := m.Result()
	b.Run("by-doc-frequency", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res.ReduceByDocumentFrequency(2, 2)
		}
	})
	b.Run("to-k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res.ReduceToK(12)
		}
	})
}
