package sourcelda

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func fitFacadeModel(t *testing.T) *Model {
	t.Helper()
	c, k := buildFixture(t)
	m, err := Fit(c, k, Options{
		Lambda:     &LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 40,
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func sameInference(a, b *DocumentInference) bool {
	if a.KnownTokens != b.KnownTokens || a.UnknownTokens != b.UnknownTokens ||
		len(a.Topics) != len(b.Topics) {
		return false
	}
	for i := range a.Topics {
		if math.Float64bits(a.Topics[i]) != math.Float64bits(b.Topics[i]) {
			return false
		}
	}
	return true
}

// TestFlatBundleMatchesJSONBundle is the flat format's core guarantee at the
// facade: the flat and JSON bundles of the same model are interchangeable —
// identical provenance, identical topics, and bit-identical inference, on
// both the eager and the memory-mapped load paths.
func TestFlatBundleMatchesJSONBundle(t *testing.T) {
	m := fitFacadeModel(t)
	var jsonBuf, flatBuf bytes.Buffer
	if err := SaveBundleNamed(&jsonBuf, m, "school", "v3"); err != nil {
		t.Fatal(err)
	}
	if err := SaveBundleFlatNamed(&flatBuf, m, "school", "v3"); err != nil {
		t.Fatal(err)
	}

	jm, err := LoadBundle(bytes.NewReader(jsonBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	fm, err := LoadBundle(bytes.NewReader(flatBuf.Bytes())) // sniffed by magic
	if err != nil {
		t.Fatal(err)
	}
	defer fm.Close()
	path := filepath.Join(t.TempDir(), "school.bundle")
	if err := os.WriteFile(path, flatBuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mapped, err := LoadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()

	ji := jm.BundleInfo()
	for _, loaded := range []*Model{fm, mapped} {
		li := loaded.BundleInfo()
		if li.Name != ji.Name || li.Version != ji.Version ||
			li.ChainDigest != ji.ChainDigest || !li.TrainedAt.Equal(ji.TrainedAt) {
			t.Fatalf("BundleInfo differs between formats: %+v vs %+v", li, ji)
		}
		if loaded.NumTopics() != jm.NumTopics() {
			t.Fatal("topic count differs between formats")
		}
		jt, lt := jm.Topics(), loaded.Topics()
		for i := range jt {
			if jt[i].Label != lt[i].Label {
				t.Fatalf("topic %d label differs: %q vs %q", i, jt[i].Label, lt[i].Label)
			}
			jw, lw := jt[i].TopWords(5), lt[i].TopWords(5)
			for j := range jw {
				if jw[j] != lw[j] {
					t.Fatalf("topic %d top words differ between formats", i)
				}
			}
		}
	}

	texts := []string{
		"pencil ruler notebook",
		"baseball umpire inning",
		"paper glove pitcher eraser",
	}
	opts := InferOptions{Seed: 4}
	for _, text := range texts {
		want, err := jm.Infer(text, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, loaded := range []*Model{fm, mapped} {
			got, err := loaded.Infer(text, opts)
			if err != nil {
				t.Fatal(err)
			}
			if !sameInference(want, got) {
				t.Fatalf("flat-loaded model infers differently on %q", text)
			}
		}
	}
	wantBatch, err := jm.InferBatch(texts, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, loaded := range []*Model{fm, mapped} {
		gotBatch, err := loaded.InferBatch(texts, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range wantBatch {
			if !sameInference(wantBatch[i], gotBatch[i]) {
				t.Fatalf("batch document %d differs between formats", i)
			}
		}
	}
}

// TestMappedModelLifetime pins down the unmap discipline: closing a mapped
// model (a hot swap) while batches are in flight must not release the
// mapping; the mapping goes away only when the drained inference session
// closes, and never under a held pin. Run with -race this also proves the
// refcounting is data-race-free.
func TestMappedModelLifetime(t *testing.T) {
	m := fitFacadeModel(t)
	path := filepath.Join(t.TempDir(), "m.bundle")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveBundleFlatNamed(f, m, "m", "v1"); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded, err := LoadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Mapped() {
		t.Skip("mmap unavailable on this platform; lifetime path not exercised")
	}
	inf, err := loaded.NewInferrer(InferOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{"pencil ruler notebook", "baseball umpire inning"}
	want := inf.InferBatch(texts)

	if !inf.Acquire() {
		t.Fatal("could not pin a fresh inferrer")
	}
	// Close the model (what a hot swap does to the outgoing version) while
	// batches are in flight on its session.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			inf.InferBatch(texts)
		}()
	}
	if err := loaded.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if loaded.backing.fb.Closed() {
		t.Fatal("mapping released while the session was pinned")
	}
	// The pinned session still serves — from mapped pages, bit-identically.
	got := inf.InferBatch(texts)
	for i := range want {
		if !sameInference(want[i], got[i]) {
			t.Fatalf("document %d differs after the owner closed", i)
		}
	}
	inf.Close()
	if loaded.backing.fb.Closed() {
		t.Fatal("mapping released before the last pin was dropped")
	}
	inf.Release()
	if !loaded.backing.fb.Closed() {
		t.Fatal("mapping not released after the drained session closed")
	}
	// A fully closed mapped model refuses new sessions instead of serving
	// dangling pages.
	if _, err := loaded.NewInferrer(InferOptions{}); err == nil {
		t.Fatal("NewInferrer succeeded on a closed mapped model")
	}
	// Topic metadata survives the unmap (it lives on the heap), but word
	// distributions can no longer be materialized and render empty instead of
	// faulting on released pages.
	tops := loaded.Topics()
	if len(tops) != loaded.NumTopics() {
		t.Fatal("topic metadata lost after unmap")
	}
	if words := tops[0].TopWords(3); len(words) != 0 {
		t.Fatal("top words materialized from an unmapped model")
	}
}

// TestSaveBundleFlatRejectsFlatLoadedModel: a flat-loaded model carries no
// training mixtures or knowledge source, so re-saving it must fail loudly
// rather than write a lossy bundle.
func TestSaveBundleFlatRejectsFlatLoadedModel(t *testing.T) {
	m := fitFacadeModel(t)
	var flatBuf bytes.Buffer
	if err := SaveBundleFlat(&flatBuf, m); err != nil {
		t.Fatal(err)
	}
	fm, err := LoadBundle(bytes.NewReader(flatBuf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	defer fm.Close()
	var out bytes.Buffer
	if err := SaveBundleFlat(&out, fm); err == nil {
		t.Fatal("re-saving a flat-loaded model accepted")
	}
	if err := SaveBundle(&out, fm); err == nil {
		t.Fatal("JSON-saving a flat-loaded model accepted")
	}
}
