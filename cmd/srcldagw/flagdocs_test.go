package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sourcelda/internal/gateway"
)

// documentedFlags extracts the flag names from a "### `<cmd>` flags" table
// in a markdown file: rows of the form "| `-name` | ... |".
func documentedFlags(t *testing.T, path, section string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("cannot read %s: %v", path, err)
	}
	out := map[string]bool{}
	inSection := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "#") {
			inSection = strings.TrimSpace(line) == section
			continue
		}
		if !inSection || !strings.HasPrefix(line, "| `-") {
			continue
		}
		rest := strings.TrimPrefix(line, "| `-")
		name, _, ok := strings.Cut(rest, "`")
		if !ok {
			t.Fatalf("unparseable flag-table row %q", line)
		}
		out[name] = true
	}
	if len(out) == 0 {
		t.Fatalf("no flag table found under %q in %s", section, path)
	}
	return out
}

// TestFlagsDocumented diffs srcldagw's actual flag set against the table in
// docs/OPERATIONS.md, in both directions, so the docs cannot silently rot
// when a flag is added, renamed, or removed. CI runs this as its docs gate.
func TestFlagsDocumented(t *testing.T) {
	fs := flag.NewFlagSet("srcldagw", flag.ContinueOnError)
	defineFlags(fs)
	documented := documentedFlags(t, filepath.Join("..", "..", "docs", "OPERATIONS.md"), "### `srcldagw` flags")
	defined := map[string]bool{}
	fs.VisitAll(func(fl *flag.Flag) { defined[fl.Name] = true })
	for name := range defined {
		if !documented[name] {
			t.Errorf("flag -%s exists but is missing from the srcldagw table in docs/OPERATIONS.md", name)
		}
	}
	for name := range documented {
		if !defined[name] {
			t.Errorf("docs/OPERATIONS.md documents -%s, which srcldagw does not define", name)
		}
	}
}

func TestParseBackends(t *testing.T) {
	specs, err := parseBackends("r1=http://127.0.0.1:8081, r2=http://127.0.0.1:8082")
	if err != nil {
		t.Fatal(err)
	}
	want := []gateway.BackendSpec{
		{ID: "r1", URL: "http://127.0.0.1:8081"},
		{ID: "r2", URL: "http://127.0.0.1:8082"},
	}
	if len(specs) != len(want) {
		t.Fatalf("got %d specs, want %d", len(specs), len(want))
	}
	for i := range want {
		if specs[i] != want[i] {
			t.Errorf("spec %d = %+v, want %+v", i, specs[i], want[i])
		}
	}
	for _, bad := range []string{"", "r1", "=http://x", "r1=", ",,"} {
		if _, err := parseBackends(bad); err == nil {
			t.Errorf("parseBackends(%q) accepted invalid input", bad)
		}
	}
}
