// Command srcldagw is the horizontal serving gateway in front of srcldad
// replicas: one stateless process that makes N single-box model servers
// look like a single, larger, fault-tolerant one.
//
//	GET/POST on /v1/* → routed to a replica and proxied back
//	GET /metrics      → gateway + per-backend metrics (Prometheus text)
//	GET /healthz      → gateway liveness and backend availability
//	GET /readyz       → 503 until at least one backend is available
//
// Model names are consistent-hashed to a replica preference order (bounded
// load, so a hot model spills to ring neighbors); replicas are health
// checked actively (/readyz probes) and ejected passively on consecutive
// failures; failed tries are retried on the next replica under a retry
// budget, optionally hedged on latency; per-tenant token buckets shed
// abusive load with 429 + Retry-After.
//
//	srcldad -bundle model.bundle -addr :8081 -backend-id r1 &
//	srcldad -bundle model.bundle -addr :8082 -backend-id r2 &
//	srcldagw -backends r1=http://127.0.0.1:8081,r2=http://127.0.0.1:8082 -addr :8080
//	curl -s localhost:8080/v1/infer -d '{"text":"pencil ruler notebook"}'
//
// See docs/OPERATIONS.md for the topology, runbooks and alerting, and
// docs/API.md for the endpoint reference.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sourcelda/internal/gateway"
	"sourcelda/internal/obs"
)

// cliFlags holds every srcldagw flag, defined through defineFlags on an
// explicit FlagSet so the docs-drift test can enumerate them against the
// flag table in docs/OPERATIONS.md.
type cliFlags struct {
	backends       *string
	addr           *string
	defaultModel   *string
	vnodes         *int
	loadFactor     *float64
	healthInterval *time.Duration
	probeTimeout   *time.Duration
	ejectThreshold *int
	ejectBackoff   *time.Duration
	ejectMax       *time.Duration
	tryTimeout     *time.Duration
	maxTries       *int
	retryBudget    *float64
	retryBurst     *float64
	hedgeAfter     *time.Duration
	tenantRate     *float64
	tenantBurst    *float64
	tenantHeader   *string
	maxBody        *int64
	logFormat      *string
	logLevel       *string
	slowRequest    *time.Duration
	debugAddr      *string
}

func defineFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		backends:       fs.String("backends", "", "comma-separated replica list, each id=url (e.g. r1=http://10.0.0.1:8080,r2=http://10.0.0.2:8080); IDs are the consistent-hash identities — keep them stable across restarts and address changes"),
		addr:           fs.String("addr", ":8080", "listen address"),
		defaultModel:   fs.String("default-model", "default", "model name the unnamed routes /v1/infer and /v1/topics are routed by (must match the replicas' -default-model)"),
		vnodes:         fs.Int("vnodes", 160, "virtual nodes per backend on the hash ring"),
		loadFactor:     fs.Float64("load-factor", 1.25, "bounded-load factor: no backend holds more than ceil(factor*(inflight+1)/backends) in-flight requests before a hot model spills to its ring neighbors"),
		healthInterval: fs.Duration("health-interval", 2*time.Second, "active /readyz probe period (negative disables active checking; passive ejection still applies)"),
		probeTimeout:   fs.Duration("probe-timeout", time.Second, "timeout of one active health probe"),
		ejectThreshold: fs.Int("eject-threshold", 5, "consecutive try failures that passively eject a backend (negative disables passive ejection)"),
		ejectBackoff:   fs.Duration("eject-backoff", time.Second, "initial passive-ejection window; doubles per consecutive ejection"),
		ejectMax:       fs.Duration("eject-max-backoff", 30*time.Second, "ceiling of the passive-ejection backoff"),
		tryTimeout:     fs.Duration("try-timeout", 10*time.Second, "timeout of one upstream try (each retry and hedge gets its own)"),
		maxTries:       fs.Int("max-tries", 3, "maximum upstream tries per request: first attempt, retries and hedges together (also capped by the backend count)"),
		retryBudget:    fs.Float64("retry-budget", 0.2, "retry allowance earned per client request; retries and hedges spend from this budget so a failing fleet sees shed load, not a retry storm"),
		retryBurst:     fs.Float64("retry-burst", 10, "cap of the retry-budget bucket"),
		hedgeAfter:     fs.Duration("hedge-after", 0, "launch a tail-latency hedge to the next replica when a try has not answered after this long (default 0: disabled; safe because inference is deterministic and side-effect-free)"),
		tenantRate:     fs.Float64("tenant-rate", 0, "per-tenant admitted requests/second (default 0: no admission control)"),
		tenantBurst:    fs.Float64("tenant-burst", 0, "per-tenant burst size (default 0: twice -tenant-rate)"),
		tenantHeader:   fs.String("tenant-header", "X-Tenant", "request header naming the tenant; requests without it are keyed by client IP"),
		maxBody:        fs.Int64("max-body", 1<<20, "maximum client request body bytes"),
		logFormat:      fs.String("log-format", "text", "log output format: \"text\" (key=value lines) or \"json\" (one object per line, for log shippers)"),
		logLevel:       fs.String("log-level", "info", "minimum log level: debug, info, warn or error (per-request access logs are info)"),
		slowRequest:    fs.Duration("slow-request", time.Second, "log a warning with the upstream/gateway latency breakdown for requests slower than this (negative disables)"),
		debugAddr:      fs.String("debug-addr", "", "optional listen address for net/http/pprof and /debug/runtime gauges (default \"\": disabled; never expose publicly)"),
	}
}

// parseBackends parses the -backends value: comma-separated id=url pairs.
func parseBackends(s string) ([]gateway.BackendSpec, error) {
	var specs []gateway.BackendSpec
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, u, ok := strings.Cut(part, "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("backend %q: want id=url", part)
		}
		specs = append(specs, gateway.BackendSpec{ID: id, URL: u})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no backends given")
	}
	return specs, nil
}

func main() {
	f := defineFlags(flag.CommandLine)
	flag.Parse()
	specs, err := parseBackends(*f.backends)
	if err != nil {
		fmt.Fprintf(os.Stderr, "srcldagw: -backends: %v (example: -backends r1=http://127.0.0.1:8081,r2=http://127.0.0.1:8082)\n", err)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *f.logFormat, *f.logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srcldagw:", err)
		os.Exit(2)
	}

	g, err := gateway.New(gateway.Config{
		Backends:         specs,
		DefaultModel:     *f.defaultModel,
		VNodes:           *f.vnodes,
		LoadFactor:       *f.loadFactor,
		HealthInterval:   *f.healthInterval,
		ProbeTimeout:     *f.probeTimeout,
		EjectThreshold:   *f.ejectThreshold,
		EjectBackoff:     *f.ejectBackoff,
		EjectMaxBackoff:  *f.ejectMax,
		TryTimeout:       *f.tryTimeout,
		MaxTries:         *f.maxTries,
		RetryBudgetRatio: *f.retryBudget,
		RetryBudgetBurst: *f.retryBurst,
		HedgeAfter:       *f.hedgeAfter,
		TenantRate:       *f.tenantRate,
		TenantBurst:      *f.tenantBurst,
		TenantHeader:     *f.tenantHeader,
		MaxBody:          *f.maxBody,
		Logger:           logger,
		SlowRequest:      *f.slowRequest,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "srcldagw:", err)
		os.Exit(2)
	}
	defer g.Close()

	srv := &http.Server{
		Addr:              *f.addr,
		Handler:           g,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("gateway serving", "addr", *f.addr, "backends", len(specs), "default_model", *f.defaultModel)

	if *f.debugAddr != "" {
		debugMux := obs.NewDebugMux(func(w io.Writer) {
			obs.WriteRuntimeMetrics(w, "srcldagw", 0)
		})
		debugSrv := &http.Server{Addr: *f.debugAddr, Handler: debugMux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			logger.Info("debug listener", "addr", *f.debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "addr", *f.debugAddr, "error", err)
			}
		}()
		defer debugSrv.Close()
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	case <-sigCtx.Done():
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("shutdown failed", "error", err)
	}
}
