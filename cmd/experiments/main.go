// Command experiments regenerates the paper's tables and figures on the
// synthetic substitutes documented in DESIGN.md.
//
// Usage:
//
//	experiments -list            list experiment ids
//	experiments -run fig8a       run one experiment
//	experiments -run all         run everything in paper order
//	experiments -quick           use reduced test-scale workloads
//	experiments -seed 7          change the deterministic seed
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"sourcelda/internal/experiments"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list experiment ids and titles")
		run   = flag.String("run", "all", "experiment id to run, or 'all'")
		quick = flag.Bool("quick", false, "use reduced test-scale workloads")
		seed  = flag.Int64("seed", 42, "deterministic seed")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-11s %s\n", e.ID, e.Title)
		}
		return
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	var toRun []experiments.Experiment
	if *run == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.ByID(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; use -list\n", *run)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	failures := 0
	for _, e := range toRun {
		start := time.Now()
		rep, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: error: %v\n", e.ID, err)
			failures++
			continue
		}
		printReport(rep, time.Since(start))
		if !rep.ShapeOK {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "\n%d experiment(s) failed their shape checks\n", failures)
		os.Exit(1)
	}
}

func printReport(r *experiments.Report, elapsed time.Duration) {
	fmt.Printf("======================================================================\n")
	fmt.Printf("%s — %s  (%.1fs)\n", r.ID, r.Title, elapsed.Seconds())
	fmt.Printf("paper claim: %s\n", r.PaperClaim)
	fmt.Printf("parameters:  %s\n", r.Parameters)
	fmt.Printf("----------------------------------------------------------------------\n")
	for _, line := range r.Lines {
		fmt.Println(line)
	}
	if len(r.Metrics) > 0 {
		fmt.Printf("--- metrics ---\n")
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-40s %v\n", k, r.Metrics[k])
		}
	}
	fmt.Printf("--- shape checks ---\n")
	for _, n := range r.ShapeNotes {
		fmt.Println(n)
	}
	fmt.Println()
}
