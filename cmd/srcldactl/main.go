// Command srcldactl runs distributed AD-LDA-style Source-LDA training: one
// coordinator process partitions the corpus across N worker processes, each
// running local Gibbs sweeps against a stale snapshot of the global
// topic-word counts, with count deltas merged at sync boundaries.
//
//	-role coordinator  listens for workers, drives the epoch schedule,
//	                   merges deltas, assembles and saves the final chain
//	-role worker       dials the coordinator, trains its assigned shard,
//	                   checkpoints every sync boundary locally
//
// Both roles load the same corpus (verified by digest at join). A 1-worker
// run with -staleness 0 reproduces the serial srclda chain bit for bit;
// more workers trade sampling exactness for wall-clock scaling. Workers
// may die at any instant: the coordinator hands the shard to the next
// worker that connects, which resumes from the lost worker's last
// sync-boundary checkpoint, keeping the run's trajectory — and its final
// digest — unchanged.
//
//	srcldactl -role coordinator -workers 2 -epochs 100 -listen :7600 &
//	srcldactl -role worker -connect localhost:7600 -checkpoint-dir w1/ &
//	srcldactl -role worker -connect localhost:7600 -checkpoint-dir w2/ &
//
// See docs/OPERATIONS.md ("Distributed training") for the topology,
// worker-loss runbook and the full flag table.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sourcelda/internal/corpus"
	"sourcelda/internal/dtrain"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/obs"
	"sourcelda/internal/persist"
	"sourcelda/internal/synth"
	"sourcelda/internal/textproc"
)

// cliFlags holds every srcldactl flag, defined through defineFlags on an
// explicit FlagSet so the docs-drift test can enumerate them against the
// flag table in docs/OPERATIONS.md.
type cliFlags struct {
	role      *string
	corpusDir *string
	sourceDir *string
	seed      *int64

	// Coordinator: topology and schedule.
	listen    *string
	workers   *int
	epochs    *int
	staleness *int
	// Coordinator: chain shape (shipped to workers in the assign message).
	freeT   *int
	mu      *float64
	sigma   *float64
	lambda  *float64
	sampler *string
	sweep   *string
	shards  *int
	threads *int
	// Coordinator: fault detectors and outputs.
	ioTimeout    *time.Duration
	epochTimeout *time.Duration
	joinTimeout  *time.Duration
	saveCkpt     *string
	telemetryLog *string
	metricsAddr  *string

	// Worker.
	connect    *string
	ckptDir    *string
	ckptRetain *int
	workerID   *string

	logFormat *string
	logLevel  *string
	debugAddr *string
}

func defineFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		role:         fs.String("role", "coordinator", "process role: coordinator (listens, merges, assembles) or worker (dials, trains a shard)"),
		corpusDir:    fs.String("corpus", "", "directory of *.txt documents, one file per document; every worker and the coordinator must load identical data — verified by digest at join (default \"\": built-in synthetic demo corpus)"),
		sourceDir:    fs.String("source", "", "directory of *.txt knowledge articles, file name = topic label (default \"\": built-in synthetic demo source)"),
		seed:         fs.Int64("seed", 42, "base chain seed; worker shard i trains with seed+i, so identical inputs, partition and seed reproduce a run bit for bit (default 42)"),
		listen:       fs.String("listen", ":7600", "coordinator listen address for worker connections"),
		workers:      fs.Int("workers", 2, "coordinator: shard count N; every sync epoch waits for all N shards (default 2)"),
		epochs:       fs.Int("epochs", 100, "coordinator: sync boundaries to run; total sweeps per worker is epochs × max(1, staleness) (default 100)"),
		staleness:    fs.Int("staleness", 1, "coordinator: local sweeps each worker runs between sync boundaries; higher is faster but samples against staler counts (0 means 1) (default 1)"),
		freeT:        fs.Int("free", 5, "coordinator: unlabeled (free) topics learned alongside the knowledge source (default 5)"),
		mu:           fs.Float64("mu", 0.7, "coordinator: mean of the N(µ,σ) prior over the λ divergence exponent (default 0.7)"),
		sigma:        fs.Float64("sigma", 0.3, "coordinator: std dev of the λ prior, must be >= 0 (default 0.3)"),
		lambda:       fs.Float64("lambda", -1, "coordinator: fixed λ exponent in [0,1]; -1 integrates λ out by quadrature (default -1)"),
		sampler:      fs.String("sampler", "serial", "coordinator: per-token sampling kernel every worker uses: serial, sparse, prefix-sums, or simple-parallel (default serial)"),
		sweep:        fs.String("sweepmode", "sequential", "coordinator: in-worker sweep traversal: sequential or sharded-docs (default sequential)"),
		shards:       fs.Int("shards", 0, "coordinator: in-worker document shards for sharded-docs sweeps (0 means one per thread) (default 0)"),
		threads:      fs.Int("threads", 1, "coordinator: in-worker sampling threads (default 1)"),
		ioTimeout:    fs.Duration("io-timeout", 30*time.Second, "coordinator: bound on each control-frame read/write — handshakes and count broadcasts (default 30s)"),
		epochTimeout: fs.Duration("epoch-timeout", 5*time.Minute, "coordinator: how long to wait for one shard's epoch delta before declaring the worker hung and reassigning its shard (default 5m)"),
		joinTimeout:  fs.Duration("join-timeout", 5*time.Minute, "coordinator: how long to wait for a worker to connect when a shard needs one (default 5m)"),
		saveCkpt:     fs.String("save-checkpoint", "", "coordinator: write the assembled full-corpus chain as a checkpoint file srclda can -resume from (default \"\": don't)"),
		telemetryLog: fs.String("telemetry-log", "", "coordinator: append one JSON object per merged sync epoch (latency, merge bytes, worker lag, throughput) to this file (default \"\": off)"),
		metricsAddr:  fs.String("metrics-addr", "", "coordinator: optional listen address serving live srcldactl_* training gauges as Prometheus text (default \"\": off)"),
		connect:      fs.String("connect", "localhost:7600", "worker: coordinator address to dial"),
		ckptDir:      fs.String("checkpoint-dir", "dtrain-checkpoints", "worker: root directory for per-shard sync-boundary checkpoints; a replacement worker must see the same root to resume a lost shard (default dtrain-checkpoints)"),
		ckptRetain:   fs.Int("checkpoint-retain", 3, "worker: newest boundary checkpoints kept per shard; negative keeps all (default 3)"),
		workerID:     fs.String("worker-id", "", "worker: name used in coordinator logs (default \"\": host:pid)"),
		logFormat:    fs.String("log-format", "text", "log output format: \"text\" (key=value lines) or \"json\" (one object per line, for log shippers)"),
		logLevel:     fs.String("log-level", "info", "minimum log level: debug, info, warn or error (per-epoch worker progress is debug)"),
		debugAddr:    fs.String("debug-addr", "", "optional listen address for net/http/pprof and /debug/runtime gauges (default \"\": disabled; never expose publicly)"),
	}
}

func main() {
	f := defineFlags(flag.CommandLine)
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *f.logFormat, *f.logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srcldactl:", err)
		os.Exit(2)
	}
	if *f.debugAddr != "" {
		dbgSrv := &http.Server{
			Addr:              *f.debugAddr,
			Handler:           obs.NewDebugMux(func(w io.Writer) { obs.WriteRuntimeMetrics(w, "srcldactl", -1) }),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("debug listener", "addr", *f.debugAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "addr", *f.debugAddr, "error", err)
			}
		}()
		defer dbgSrv.Close()
	}

	c, src, err := loadData(*f.corpusDir, *f.sourceDir, *f.seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	switch *f.role {
	case "coordinator":
		err = runCoordinator(ctx, f, c, src, logger)
	case "worker":
		err = runWorker(ctx, f, c, src, logger)
	default:
		fmt.Fprintf(os.Stderr, "srcldactl: unknown -role %q (want coordinator or worker)\n", *f.role)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// specFromFlags builds the chain configuration the coordinator ships to
// every worker. Alpha and Beta use srclda's data-derived formulas
// (50/T, 200/V), so a 1-worker srcldactl chain is the exact chain
// srclda would train — and the saved checkpoint resumes there.
func specFromFlags(f *cliFlags, c *corpus.Corpus, src *knowledge.Source) dtrain.ChainSpec {
	spec := dtrain.ChainSpec{
		NumFreeTopics: *f.freeT,
		Alpha:         50.0 / float64(*f.freeT+src.Len()),
		Beta:          200.0 / float64(c.VocabSize()),
		Mu:            *f.mu,
		Sigma:         *f.sigma,
		LambdaMode:    "integrated",
		UseSmoothing:  true,
		Sampler:       *f.sampler,
		SweepMode:     *f.sweep,
		Shards:        *f.shards,
		Threads:       *f.threads,
		Seed:          *f.seed,
	}
	if *f.lambda >= 0 {
		spec.LambdaMode = "fixed"
		spec.Lambda = *f.lambda
	}
	return spec
}

func runCoordinator(ctx context.Context, f *cliFlags, c *corpus.Corpus, src *knowledge.Source, log *slog.Logger) error {
	var events io.Writer
	if *f.telemetryLog != "" {
		file, err := os.OpenFile(*f.telemetryLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		defer file.Close()
		events = file
	}
	metrics := dtrain.NewMetrics(events)
	if *f.metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metrics.Handler())
		msrv := &http.Server{Addr: *f.metricsAddr, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			log.Info("metrics listener", "addr", *f.metricsAddr)
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Error("metrics listener failed", "addr", *f.metricsAddr, "error", err)
			}
		}()
		defer msrv.Close()
	}

	ln, err := net.Listen("tcp", *f.listen)
	if err != nil {
		return err
	}
	res, err := dtrain.RunCoordinator(ctx, ln, dtrain.CoordinatorConfig{
		Corpus:       c,
		Source:       src,
		Spec:         specFromFlags(f, c, src),
		Workers:      *f.workers,
		Epochs:       *f.epochs,
		Staleness:    *f.staleness,
		Logger:       log,
		Metrics:      metrics,
		IOTimeout:    *f.ioTimeout,
		EpochTimeout: *f.epochTimeout,
		JoinTimeout:  *f.joinTimeout,
	})
	if err != nil {
		return err
	}
	defer res.Model.Close()
	if err := metrics.Err(); err != nil {
		log.Warn("telemetry log write failed", "error", err)
	}
	fmt.Printf("trained %d sweeps over %d docs with %d workers (staleness %d); model digest %#x\n",
		res.Checkpoint.Sweep, c.NumDocs(), *f.workers, max(1, *f.staleness), res.Digest)
	if *f.saveCkpt != "" {
		blob, err := persist.EncodeCheckpoint(res.Checkpoint)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*f.saveCkpt, blob, 0o644); err != nil {
			return err
		}
		fmt.Printf("assembled chain checkpoint written to %s\n", *f.saveCkpt)
	}
	return nil
}

func runWorker(ctx context.Context, f *cliFlags, c *corpus.Corpus, src *knowledge.Source, log *slog.Logger) error {
	id := *f.workerID
	if id == "" {
		host, _ := os.Hostname()
		id = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	conn, err := net.Dial("tcp", *f.connect)
	if err != nil {
		return err
	}
	return dtrain.RunWorker(ctx, conn, dtrain.WorkerConfig{
		Corpus:         c,
		Source:         src,
		CheckpointRoot: *f.ckptDir,
		Retain:         *f.ckptRetain,
		ID:             id,
		Logger:         log,
	})
}

// loadData mirrors srclda's corpus loading: directories of *.txt files, or
// the built-in synthetic demo so the command runs out of the box. Both
// roles must load identical data; the join handshake verifies this by
// corpus digest.
func loadData(corpusDir, sourceDir string, seed int64) (*corpus.Corpus, *knowledge.Source, error) {
	if corpusDir == "" && sourceDir == "" {
		data, err := synth.ReutersLike(synth.ReutersOptions{
			NumCategories: 30, LiveCategories: 12, NumDocs: 200, AvgDocLen: 60, Seed: seed,
		})
		if err != nil {
			return nil, nil, err
		}
		return data.Corpus, data.Source, nil
	}
	if corpusDir == "" || sourceDir == "" {
		return nil, nil, fmt.Errorf("-corpus and -source must be given together")
	}
	stop := textproc.DefaultStopwords()
	c := corpus.New()
	if err := eachTxt(corpusDir, func(name, text string) {
		c.AddText(name, text, stop)
	}); err != nil {
		return nil, nil, err
	}
	var articles []*knowledge.Article
	if err := eachTxt(sourceDir, func(name, text string) {
		label := strings.TrimSuffix(name, filepath.Ext(name))
		articles = append(articles, knowledge.NewArticleFromText(label, text, c.Vocab, stop, true))
	}); err != nil {
		return nil, nil, err
	}
	src, err := knowledge.NewSource(articles)
	if err != nil {
		return nil, nil, err
	}
	return c, src, nil
}

func eachTxt(dir string, fn func(name, text string)) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	found := false
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		fn(e.Name(), string(data))
		found = true
	}
	if !found {
		return fmt.Errorf("no *.txt files under %s", dir)
	}
	return nil
}
