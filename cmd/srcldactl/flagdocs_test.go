package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// documentedFlags extracts the flag names from a "### `<cmd>` flags" table
// in a markdown file: rows of the form "| `-name` | ... |".
func documentedFlags(t *testing.T, path, section string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("cannot read %s: %v", path, err)
	}
	out := map[string]bool{}
	inSection := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "#") {
			inSection = strings.TrimSpace(line) == section
			continue
		}
		if !inSection || !strings.HasPrefix(line, "| `-") {
			continue
		}
		rest := strings.TrimPrefix(line, "| `-")
		name, _, ok := strings.Cut(rest, "`")
		if !ok {
			t.Fatalf("unparseable flag-table row %q", line)
		}
		out[name] = true
	}
	if len(out) == 0 {
		t.Fatalf("no flag table found under %q in %s", section, path)
	}
	return out
}

// TestFlagsDocumented diffs srcldactl's actual flag set against the table in
// docs/OPERATIONS.md, in both directions, so the docs cannot silently rot
// when a flag is added, renamed, or removed. CI runs this as its docs gate.
func TestFlagsDocumented(t *testing.T) {
	fs := flag.NewFlagSet("srcldactl", flag.ContinueOnError)
	defineFlags(fs)
	documented := documentedFlags(t, filepath.Join("..", "..", "docs", "OPERATIONS.md"), "### `srcldactl` flags")
	defined := map[string]bool{}
	fs.VisitAll(func(fl *flag.Flag) { defined[fl.Name] = true })
	for name := range defined {
		if !documented[name] {
			t.Errorf("flag -%s exists but is missing from the srcldactl table in docs/OPERATIONS.md", name)
		}
	}
	for name := range documented {
		if !defined[name] {
			t.Errorf("docs/OPERATIONS.md documents -%s, which srcldactl does not define", name)
		}
	}
}

// TestSpecFromFlags pins the flag → ChainSpec mapping, in particular the
// λ mode switch: -lambda -1 integrates λ out, a value in [0,1] fixes it.
func TestSpecFromFlags(t *testing.T) {
	c, src, err := loadData("", "", 42)
	if err != nil {
		t.Fatal(err)
	}
	fs := flag.NewFlagSet("srcldactl", flag.ContinueOnError)
	f := defineFlags(fs)
	if err := fs.Parse([]string{"-free", "7", "-sampler", "sparse", "-sweepmode", "sharded-docs", "-shards", "4", "-seed", "99"}); err != nil {
		t.Fatal(err)
	}
	spec := specFromFlags(f, c, src)
	if spec.NumFreeTopics != 7 || spec.Sampler != "sparse" || spec.SweepMode != "sharded-docs" || spec.Shards != 4 || spec.Seed != 99 {
		t.Fatalf("spec did not pick up flags: %+v", spec)
	}
	if spec.LambdaMode != "integrated" {
		t.Fatalf("default lambda mode = %q, want integrated", spec.LambdaMode)
	}
	if _, err := spec.Options(spec.Seed); err != nil {
		t.Fatalf("flag-built spec fails validation: %v", err)
	}

	fs2 := flag.NewFlagSet("srcldactl", flag.ContinueOnError)
	f2 := defineFlags(fs2)
	if err := fs2.Parse([]string{"-lambda", "0.8"}); err != nil {
		t.Fatal(err)
	}
	spec2 := specFromFlags(f2, c, src)
	if spec2.LambdaMode != "fixed" || spec2.Lambda != 0.8 {
		t.Fatalf("-lambda 0.8 gave mode %q λ %g, want fixed 0.8", spec2.LambdaMode, spec2.Lambda)
	}
	if spec2.Alpha != 50.0/float64(5+src.Len()) || spec2.Beta != 200.0/float64(c.VocabSize()) {
		t.Fatalf("Alpha/Beta (%g, %g) do not match srclda's data-derived formulas", spec2.Alpha, spec2.Beta)
	}
}
