package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"sourcelda"
)

// config tunes the daemon's serving behaviour.
type config struct {
	// burnIn/samples/seed are the fold-in sweep schedule (see
	// sourcelda.InferOptions).
	burnIn, samples int
	seed            int64
	// workers bounds the goroutines scoring one coalesced batch.
	workers int
	// topN is the number of top topics reported per document.
	topN int
	// maxDocs caps the documents of one request; maxBody caps the request
	// body in bytes.
	maxDocs int
	maxBody int64
	// queueSize bounds the pending-document queue; a full queue sheds load
	// with 503 instead of letting latency grow without bound.
	queueSize int
	// batchWindow is how long the dispatcher waits to coalesce more
	// documents after the first arrives; maxBatch caps one coalesced batch.
	// Micro-batching amortizes worker fan-out across concurrent callers and
	// never changes results: a document's mixture is a pure function of
	// (model, seed, content), independent of how requests are batched.
	batchWindow time.Duration
	maxBatch    int
}

func (c *config) applyDefaults() {
	// burnIn and samples pass through unchanged: the sourcelda facade
	// defaults zeros, and a negative burnIn is the explicit no-burn-in
	// schedule.
	if c.workers < 1 {
		c.workers = 1
	}
	if c.topN < 1 {
		c.topN = 5
	}
	if c.maxDocs < 1 {
		c.maxDocs = 64
	}
	if c.maxBody <= 0 {
		c.maxBody = 1 << 20
	}
	if c.queueSize < 1 {
		c.queueSize = 256
	}
	if c.maxBatch < 1 {
		c.maxBatch = 32
	}
}

// job is one document awaiting inference; reply is buffered so the
// dispatcher never blocks on a caller that gave up. ctx is the submitting
// request's context: the dispatcher drops jobs whose context is already
// done (caller disconnected, or its request was 503'd mid-submit) instead
// of paying full inference for a reply nobody will read.
type job struct {
	text  string
	reply chan *sourcelda.DocumentInference
	ctx   context.Context
}

// server routes HTTP requests and owns the micro-batching dispatcher.
type server struct {
	model    *sourcelda.Model
	inferrer *sourcelda.Inferrer
	cfg      config
	jobs     chan job
	mux      *http.ServeMux
	start    time.Time

	// byIndex holds the model's topics in model-topic order, the order
	// every mixture array is aligned with.
	byIndex []sourcelda.Topic
}

var errOverloaded = errors.New("inference queue is full")

// newServer wraps a loaded model. It fails fast if the model cannot build
// its inference engine (e.g. a degenerate snapshot). Call close when done
// to release the inference worker pool.
func newServer(m *sourcelda.Model, cfg config) (*server, error) {
	cfg.applyDefaults()
	inferrer, err := m.NewInferrer(sourcelda.InferOptions{
		BurnIn:  cfg.burnIn,
		Samples: cfg.samples,
		Seed:    cfg.seed,
		Workers: cfg.workers,
	})
	if err != nil {
		return nil, fmt.Errorf("srcldad: model cannot serve inference: %w", err)
	}
	s := &server{
		model:    m,
		inferrer: inferrer,
		cfg:      cfg,
		jobs:     make(chan job, cfg.queueSize),
		mux:      http.NewServeMux(),
		start:    time.Now(),
	}
	tops := m.Topics()
	s.byIndex = make([]sourcelda.Topic, len(tops))
	for _, tp := range tops {
		s.byIndex[tp.Index] = tp
	}
	s.mux.HandleFunc("/v1/infer", s.handleInfer)
	s.mux.HandleFunc("/v1/topics", s.handleTopics)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// close releases the long-lived inference worker pool. Call it only after
// the dispatcher has stopped.
func (s *server) close() { s.inferrer.Close() }

// run is the dispatcher loop: it pulls the first pending document, waits up
// to batchWindow for more (from any caller), scores the coalesced batch
// over the bounded worker pool, and scatters results. It returns when ctx
// is canceled; cancel only after the HTTP server has drained its handlers,
// or in-flight requests would wait on replies that never come.
func (s *server) run(ctx context.Context) {
	for {
		var first job
		select {
		case <-ctx.Done():
			return
		case first = <-s.jobs:
		}
		batch := append(make([]job, 0, s.cfg.maxBatch), first)
		if s.cfg.batchWindow > 0 {
			timer := time.NewTimer(s.cfg.batchWindow)
		collect:
			for len(batch) < s.cfg.maxBatch {
				select {
				case j := <-s.jobs:
					batch = append(batch, j)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < s.cfg.maxBatch {
				select {
				case j := <-s.jobs:
					batch = append(batch, j)
				default:
					break drain
				}
			}
		}
		// Drop jobs whose request is already gone — a 503'd or disconnected
		// caller must not cost a full Gibbs run whose reply nobody reads.
		live := batch[:0]
		for _, j := range batch {
			if j.ctx.Err() == nil {
				live = append(live, j)
			}
		}
		if len(live) == 0 {
			continue
		}
		texts := make([]string, len(live))
		for i, j := range live {
			texts[i] = j.text
		}
		results := s.inferrer.InferBatch(texts)
		for i, j := range live {
			j.reply <- results[i]
		}
	}
}

// enqueue submits the documents to the shared dispatcher and waits for
// every reply (or the request context). A nil entry means the document had
// no in-vocabulary tokens. On any early return the derived context is
// canceled, which tells the dispatcher to drop this request's
// already-queued jobs unscored.
func (s *server) enqueue(reqCtx context.Context, texts []string) ([]*sourcelda.DocumentInference, error) {
	ctx, cancel := context.WithCancel(reqCtx)
	defer cancel()
	replies := make([]chan *sourcelda.DocumentInference, len(texts))
	for i, t := range texts {
		ch := make(chan *sourcelda.DocumentInference, 1)
		replies[i] = ch
		select {
		case s.jobs <- job{text: t, reply: ch, ctx: ctx}:
		default:
			return nil, errOverloaded
		}
	}
	out := make([]*sourcelda.DocumentInference, len(texts))
	for i, ch := range replies {
		select {
		case out[i] = <-ch:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// inferRequest is the POST /v1/infer body: exactly one of Text or
// Documents.
type inferRequest struct {
	Text      *string  `json:"text,omitempty"`
	Documents []string `json:"documents,omitempty"`
}

// decodeInferRequest parses and validates a /v1/infer body, returning the
// documents to score and whether the caller used the single-text form.
// Every rejection is a client error (4xx); it must never panic on
// malformed input (fuzzed).
func decodeInferRequest(body []byte, maxDocs int) (texts []string, single bool, err error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req inferRequest
	if err := dec.Decode(&req); err != nil {
		return nil, false, fmt.Errorf("invalid JSON body: %w", err)
	}
	// Trailing garbage after the JSON value is a malformed request.
	if dec.More() {
		return nil, false, errors.New("invalid JSON body: trailing data")
	}
	switch {
	case req.Text != nil && req.Documents != nil:
		return nil, false, errors.New(`provide exactly one of "text" or "documents"`)
	case req.Text != nil:
		if strings.TrimSpace(*req.Text) == "" {
			return nil, false, errors.New(`"text" must be non-empty`)
		}
		return []string{*req.Text}, true, nil
	case req.Documents != nil:
		if len(req.Documents) == 0 {
			return nil, false, errors.New(`"documents" must be non-empty`)
		}
		if len(req.Documents) > maxDocs {
			return nil, false, fmt.Errorf(`"documents" has %d entries; limit is %d`, len(req.Documents), maxDocs)
		}
		for i, d := range req.Documents {
			if strings.TrimSpace(d) == "" {
				return nil, false, fmt.Errorf("document %d is empty", i)
			}
		}
		return req.Documents, false, nil
	default:
		return nil, false, errors.New(`provide "text" or "documents"`)
	}
}

// topicJSON is one labeled topic weight in a response.
type topicJSON struct {
	Index  int     `json:"index"`
	Label  string  `json:"label"`
	Source bool    `json:"source"`
	Weight float64 `json:"weight"`
}

// inferredDocJSON is one document's scored mixture.
type inferredDocJSON struct {
	// TopTopics are the heaviest topics, descending.
	TopTopics []topicJSON `json:"top_topics"`
	// Mixture is the full distribution in model-topic order (aligned with
	// GET /v1/topics).
	Mixture       []float64 `json:"mixture"`
	KnownTokens   int       `json:"known_tokens"`
	UnknownTokens int       `json:"unknown_tokens"`
}

func (s *server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.maxBody))
	if err != nil {
		// Only the MaxBytesReader limit means the body was oversized; any
		// other read failure (client disconnect mid-upload, transport
		// error) must not claim 413.
		var maxErr *http.MaxBytesError
		switch {
		case errors.As(err, &maxErr):
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
		case r.Context().Err() != nil:
			// 499 "client closed request" (nginx convention): the client
			// went away mid-read, so no standard 4xx applies and nobody is
			// listening anyway — but access logs should not blame body size.
			writeError(w, 499, "client closed request")
		default:
			writeError(w, http.StatusBadRequest, "failed to read request body")
		}
		return
	}
	texts, single, err := decodeInferRequest(body, s.cfg.maxDocs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Reject unknown-word-only documents before queueing: the check is one
	// tokenization pass, so the 422 costs no sampling and no queue slots.
	for i, text := range texts {
		if s.model.CountKnownTokens(text) == 0 {
			writeError(w, http.StatusUnprocessableEntity,
				fmt.Sprintf("document %d has no tokens in the model vocabulary", i))
			return
		}
	}
	results, err := s.enqueue(r.Context(), texts)
	switch {
	case errors.Is(err, errOverloaded):
		writeError(w, http.StatusServiceUnavailable, errOverloaded.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	docs := make([]inferredDocJSON, len(results))
	for i, res := range results {
		if res == nil {
			// Defense in depth: the pre-check above already filtered these.
			writeError(w, http.StatusUnprocessableEntity,
				fmt.Sprintf("document %d has no tokens in the model vocabulary", i))
			return
		}
		docs[i] = s.renderDoc(res)
	}
	if single {
		writeJSON(w, http.StatusOK, map[string]any{"result": docs[0]})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"results": docs})
}

func (s *server) renderDoc(res *sourcelda.DocumentInference) inferredDocJSON {
	top := s.model.TopTopics(res, s.cfg.topN)
	out := inferredDocJSON{
		TopTopics:     make([]topicJSON, len(top)),
		Mixture:       res.Topics,
		KnownTokens:   res.KnownTokens,
		UnknownTokens: res.UnknownTokens,
	}
	for i, tp := range top {
		out.TopTopics[i] = topicJSON{
			Index: tp.Index, Label: tp.Label, Source: tp.IsSourceTopic, Weight: tp.Weight,
		}
	}
	return out
}

func (s *server) handleTopics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	type topicInfo struct {
		Index    int      `json:"index"`
		Label    string   `json:"label"`
		Source   bool     `json:"source"`
		Weight   float64  `json:"weight"`
		TopWords []string `json:"top_words"`
	}
	topics := make([]topicInfo, len(s.byIndex))
	for i, tp := range s.byIndex {
		topics[i] = topicInfo{
			Index:    tp.Index,
			Label:    tp.Label,
			Source:   tp.IsSourceTopic,
			Weight:   tp.Weight,
			TopWords: tp.TopWords(10),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"topics": topics})
}

func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"topics":         len(s.byIndex),
		"queue_depth":    len(s.jobs),
		"queue_capacity": cap(s.jobs),
		"uptime_seconds": time.Since(s.start).Seconds(),
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
