// Command srcldad serves a fitted Source-LDA model over HTTP as a
// document-tagging daemon. It loads a self-contained bundle (written by
// `srclda -save-bundle` or sourcelda.SaveBundle) and answers:
//
//	POST /v1/infer   {"text": "..."} or {"documents": ["...", ...]}
//	                 → labeled topic mixtures and top topics per document
//	GET  /v1/topics  → the model's labeled topics with top words
//	GET  /healthz    → liveness and queue depth
//
// Incoming text is tokenized server-side against the training vocabulary;
// unseen documents are scored by fold-in collapsed Gibbs with the trained
// topic-word statistics locked. Concurrent requests are micro-batched onto
// a bounded worker pool; because each document draws from a deterministic
// RNG stream keyed by (seed, content), batching never changes a response.
//
//	srclda -save-bundle model.bundle
//	srcldad -bundle model.bundle -addr :8080 &
//	curl -s localhost:8080/v1/infer -d '{"text":"pencil ruler notebook"}'
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sourcelda"
)

func main() {
	var (
		bundlePath  = flag.String("bundle", "", "serving bundle written by srclda -save-bundle (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "worker goroutines per inference batch (0 = GOMAXPROCS)")
		burnIn      = flag.Int("burnin", 20, "fold-in Gibbs burn-in sweeps per document")
		samples     = flag.Int("samples", 10, "post-burn-in sweeps averaged into each mixture")
		seed        = flag.Int64("seed", 42, "inference seed (responses are deterministic given seed and text)")
		topN        = flag.Int("top", 5, "top topics returned per document")
		maxDocs     = flag.Int("max-docs", 64, "maximum documents per request")
		maxBody     = flag.Int64("max-body", 1<<20, "maximum request body bytes")
		queueSize   = flag.Int("queue", 256, "pending-document queue bound (full queue sheds load with 503)")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "how long to coalesce concurrent documents into one batch")
		maxBatch    = flag.Int("max-batch", 32, "maximum coalesced batch size")
	)
	flag.Parse()
	if *bundlePath == "" {
		fmt.Fprintln(os.Stderr, "srcldad: -bundle is required (train one with: srclda -save-bundle model.bundle)")
		os.Exit(2)
	}
	if *workers <= 0 {
		*workers = runtime.GOMAXPROCS(0)
	}
	if *samples < 1 {
		fmt.Fprintln(os.Stderr, "srcldad: -samples must be at least 1")
		os.Exit(2)
	}
	if *burnIn < 0 {
		fmt.Fprintln(os.Stderr, "srcldad: -burnin must be non-negative")
		os.Exit(2)
	}
	if *burnIn == 0 {
		// Zero is the facade's "default" sentinel; a negative value is how
		// an explicit zero-burn-in schedule is requested.
		*burnIn = -1
	}

	f, err := os.Open(*bundlePath)
	exitOn(err)
	model, err := sourcelda.LoadBundle(f)
	f.Close()
	exitOn(err)

	s, err := newServer(model, config{
		burnIn:      *burnIn,
		samples:     *samples,
		seed:        *seed,
		workers:     *workers,
		topN:        *topN,
		maxDocs:     *maxDocs,
		maxBody:     *maxBody,
		queueSize:   *queueSize,
		batchWindow: *batchWindow,
		maxBatch:    *maxBatch,
	})
	exitOn(err)

	// The dispatcher outlives the listener: it is canceled only after
	// Shutdown has drained every in-flight handler, so no request waits on
	// a reply that will never come.
	dispatchCtx, stopDispatch := context.WithCancel(context.Background())
	defer stopDispatch()
	dispatchDone := make(chan struct{})
	go func() {
		s.run(dispatchCtx)
		close(dispatchDone)
	}()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("srcldad: serving %d labeled topics on %s (bundle %s)\n",
		len(s.byIndex), *addr, *bundlePath)

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		exitOn(err)
	case <-sigCtx.Done():
	}
	fmt.Println("srcldad: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "srcldad: shutdown:", err)
	}
	stopDispatch()
	<-dispatchDone
	s.close()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
