// Command srcldad serves fitted Source-LDA models over HTTP as a
// document-tagging daemon. One process serves many named, versioned model
// bundles (written by `srclda -save-bundle` or sourcelda.SaveBundle)
// concurrently, with zero-downtime hot swaps:
//
//	POST /v1/models/{name}/infer  → labeled topic mixtures per document
//	POST /v1/infer                → same, against the default model
//	POST /v1/models/{name}/feed   → stream documents into a learning model
//	POST /v1/feed                 → same, against the default model
//	GET  /v1/models/{name}/topics → the model's labeled topics with top words
//	GET  /v1/models               → list loaded models
//	PUT  /v1/models/{name}        → load or hot-swap a model (body = bundle)
//	DELETE /v1/models/{name}      → unload a model
//	GET  /metrics                 → per-model serving metrics (Prometheus text)
//	GET  /healthz                 → liveness and queue depth
//	GET  /readyz                  → readiness (503 until a model is loaded)
//
// Models come from -bundle (preloaded as the default model), the admin API,
// or -models-dir (a watched directory: dropping name.bundle in auto-loads
// it as "name"; replacing the file hot-swaps; removing it unloads).
// Hot swaps are atomic and drain the old model behind in-flight requests —
// no request is ever dropped or fails because of a swap.
//
// With -learn-chain the default model keeps learning while it serves: the
// flag loads a chain archive (sourcelda.SaveChainFile), documents POSTed to
// /v1/feed are folded into the live Gibbs chain by a background updater,
// and every -republish-every documents the updated chain is written back
// into -models-dir as a new bundle version, which the watcher hot-swaps.
// See the "Continuous learning" section of docs/OPERATIONS.md.
//
// Incoming text is tokenized server-side against each model's training
// vocabulary; unseen documents are scored by fold-in collapsed Gibbs with
// the trained topic-word statistics locked. Concurrent requests are
// micro-batched onto per-model bounded worker pools; because each document
// draws from a deterministic RNG stream keyed by (seed, content), batching
// and swapping never change a response.
//
//	srclda -save-bundle model.bundle
//	srcldad -bundle model.bundle -addr :8080 &
//	curl -s localhost:8080/v1/infer -d '{"text":"pencil ruler notebook"}'
//	curl -sT new.bundle localhost:8080/v1/models/default   # hot swap
//
// See docs/API.md for the endpoint reference and docs/OPERATIONS.md for
// rollout runbooks.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"sourcelda"
	"sourcelda/internal/obs"
	"sourcelda/internal/registry"
)

// cliFlags holds every srcldad flag. They are defined through defineFlags
// on an explicit FlagSet so the docs-drift test can enumerate them against
// the flag table in docs/OPERATIONS.md.
type cliFlags struct {
	bundle         *string
	modelsDir      *string
	watchInterval  *time.Duration
	defaultModel   *string
	learnChain     *string
	feedQueue      *int
	republishEvery *int
	compactAfter   *int
	addr           *string
	workers        *int
	burnIn         *int
	samples        *int
	seed           *int64
	topN           *int
	maxDocs        *int
	maxBody        *int64
	adminMaxBody   *int64
	queueSize      *int
	batchWindow    *time.Duration
	maxBatch       *int
	logFormat      *string
	logLevel       *string
	slowRequest    *time.Duration
	debugAddr      *string
	backendID      *string
}

func defineFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		bundle:         fs.String("bundle", "", "serving bundle preloaded as the default model at startup, gzip-JSON or flat (flat is memory-mapped) (default \"\": none; load via -models-dir or the admin API)"),
		modelsDir:      fs.String("models-dir", "", "directory watched for *.bundle files (either format, sniffed by magic): name.bundle auto-loads as model \"name\", changed files hot-swap, removed files unload (default \"\": no watcher)"),
		watchInterval:  fs.Duration("watch-interval", 2*time.Second, "poll interval of the -models-dir watcher (default 2s)"),
		defaultModel:   fs.String("default-model", "default", "model name the unnamed routes /v1/infer and /v1/topics alias (default \"default\")"),
		learnChain:     fs.String("learn-chain", "", "chain archive (sourcelda SaveChainFile; see examples/continuous) served as the default model with continuous learning: POST /v1/feed appends documents to the live chain and republishes into -models-dir (default \"\": feeding disabled)"),
		feedQueue:      fs.Int("feed-queue", 256, "feed ingest queue bound in documents (a batch that would overflow it is rejected whole with 429 and Retry-After)"),
		republishEvery: fs.Int("republish-every", 64, "fed documents between republishes of the learning model (each republish hot-swaps the served build)"),
		compactAfter:   fs.Int("compact-after", 0, "fed documents between compaction retrains of the learning chain (default 0: compaction disabled)"),
		addr:           fs.String("addr", ":8080", "listen address"),
		workers:        fs.Int("workers", 0, "worker goroutines per model's inference batch (0 = GOMAXPROCS)"),
		burnIn:         fs.Int("burnin", 20, "fold-in Gibbs burn-in sweeps per document"),
		samples:        fs.Int("samples", 10, "post-burn-in sweeps averaged into each mixture"),
		seed:           fs.Int64("seed", 42, "inference seed (responses are deterministic given model, seed and text)"),
		topN:           fs.Int("top", 5, "top topics returned per document"),
		maxDocs:        fs.Int("max-docs", 64, "maximum documents per request"),
		maxBody:        fs.Int64("max-body", 1<<20, "maximum inference request body bytes"),
		adminMaxBody:   fs.Int64("admin-max-body", 256<<20, "maximum uploaded bundle bytes on PUT /v1/models/{name}"),
		queueSize:      fs.Int("queue", 256, "per-model pending-document queue bound (full queue sheds load with 503)"),
		batchWindow:    fs.Duration("batch-window", 2*time.Millisecond, "how long to coalesce concurrent documents into one batch"),
		maxBatch:       fs.Int("max-batch", 32, "maximum coalesced batch size"),
		logFormat:      fs.String("log-format", "text", "log output format: \"text\" (key=value lines) or \"json\" (one object per line, for log shippers)"),
		logLevel:       fs.String("log-level", "info", "minimum log level: debug, info, warn or error (per-request access logs are info)"),
		slowRequest:    fs.Duration("slow-request", time.Second, "log a warning with the per-stage latency breakdown for requests slower than this (negative disables)"),
		debugAddr:      fs.String("debug-addr", "", "optional listen address for net/http/pprof and /debug/runtime gauges (default \"\": disabled; never expose publicly)"),
		backendID:      fs.String("backend-id", "", "replica identity echoed as an X-Backend header on every response, for gateway routing audits (default \"\": the hostname; \"none\" omits the header)"),
	}
}

func main() {
	f := defineFlags(flag.CommandLine)
	flag.Parse()
	if *f.bundle == "" && *f.modelsDir == "" {
		fmt.Fprintln(os.Stderr, "srcldad: provide -bundle and/or -models-dir (train one with: srclda -save-bundle model.bundle)")
		os.Exit(2)
	}
	if *f.workers <= 0 {
		*f.workers = runtime.GOMAXPROCS(0)
	}
	if *f.samples < 1 {
		fmt.Fprintln(os.Stderr, "srcldad: -samples must be at least 1")
		os.Exit(2)
	}
	if *f.burnIn < 0 {
		fmt.Fprintln(os.Stderr, "srcldad: -burnin must be non-negative")
		os.Exit(2)
	}
	if *f.burnIn == 0 {
		// Zero is the facade's "default" sentinel; a negative value is how
		// an explicit zero-burn-in schedule is requested.
		*f.burnIn = -1
	}
	logger, err := obs.NewLogger(os.Stderr, *f.logFormat, *f.logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srcldad:", err)
		os.Exit(2)
	}
	// Replica identity for the X-Backend response header: defaults to the
	// hostname (distinct per box in the common one-replica-per-host layout);
	// "none" opts out for deployments that must not leak topology.
	backendID := *f.backendID
	switch backendID {
	case "":
		if host, err := os.Hostname(); err == nil {
			backendID = host
		}
	case "none":
		backendID = ""
	}

	reg := registry.New(registry.Config{
		Infer: sourcelda.InferOptions{
			BurnIn:  *f.burnIn,
			Samples: *f.samples,
			Seed:    *f.seed,
			Workers: *f.workers,
		},
		TopN:         *f.topN,
		MaxDocs:      *f.maxDocs,
		MaxBody:      *f.maxBody,
		AdminMaxBody: *f.adminMaxBody,
		QueueSize:    *f.queueSize,
		BatchWindow:  *f.batchWindow,
		MaxBatch:     *f.maxBatch,
		DefaultModel: *f.defaultModel,
		Logger:       logger,
		SlowRequest:  *f.slowRequest,
		BackendID:    backendID,
	})

	if *f.bundle != "" {
		// LoadBundleFile sniffs the format: flat bundles are memory-mapped
		// and serve zero-copy, JSON bundles decode as before.
		model, err := sourcelda.LoadBundleFile(*f.bundle)
		exitOn(err)
		res, err := reg.Load(*f.defaultModel, "", model)
		if err != nil {
			model.Close()
			exitOn(err)
		}
		logger.Info("preloaded bundle", "model", res.Name, "version", res.Version, "path", *f.bundle)
	}

	if *f.learnChain != "" {
		if *f.modelsDir == "" {
			fmt.Fprintln(os.Stderr, "srcldad: -learn-chain requires -models-dir (the learner republishes bundles there)")
			os.Exit(2)
		}
		rt, err := sourcelda.LoadChainRuntimeFile(*f.learnChain)
		exitOn(err)
		// The registry's learners stop before the runtime closes (reg.Close
		// runs before this deferred Close), so no updater races a dead chain.
		defer rt.Close()
		exitOn(reg.AttachLearner(*f.defaultModel, rt, registry.LearnerConfig{
			QueueSize:      *f.feedQueue,
			RepublishEvery: *f.republishEvery,
			CompactAfter:   *f.compactAfter,
			ModelsDir:      *f.modelsDir,
		}))
		logger.Info("continuous learning enabled",
			"model", *f.defaultModel, "chain", *f.learnChain,
			"chain_docs", rt.Docs(), "chain_sweeps", rt.Sweeps(),
			"feed_queue", *f.feedQueue, "republish_every", *f.republishEvery,
			"compact_after", *f.compactAfter)
	}

	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	if *f.modelsDir != "" {
		w := registry.NewWatcher(reg, *f.modelsDir, *f.watchInterval)
		// One synchronous scan before the listener starts, so bundles
		// already in the directory serve from the first request. The
		// learner's attach-time publish lands in this scan too, so a
		// -learn-chain model serves immediately.
		if err := w.Scan(); err != nil {
			exitOn(err)
		}
		go w.Run(watchCtx)
	}

	srv := &http.Server{
		Addr:              *f.addr,
		Handler:           registry.NewServer(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("serving", "addr", *f.addr, "models", len(reg.Names()), "default_model", *f.defaultModel)

	// The opt-in debug listener exposes pprof and process runtime gauges
	// (including the mapped-bundle footprint) on a separate address, so the
	// profiling surface never shares a port with production traffic.
	if *f.debugAddr != "" {
		debugMux := obs.NewDebugMux(func(w io.Writer) {
			var mapped int64
			for _, mi := range reg.ListInfo() {
				mapped += mi.MappedBytes
			}
			obs.WriteRuntimeMetrics(w, "srcldad", mapped)
		})
		debugSrv := &http.Server{Addr: *f.debugAddr, Handler: debugMux, ReadHeaderTimeout: 5 * time.Second}
		go func() {
			logger.Info("debug listener", "addr", *f.debugAddr)
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "addr", *f.debugAddr, "error", err)
			}
		}()
		defer debugSrv.Close()
	}

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		exitOn(err)
	case <-sigCtx.Done():
	}
	logger.Info("shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		logger.Error("shutdown failed", "error", err)
	}
	// The registry is closed only after Shutdown has drained in-flight
	// handlers, so no request waits on a dispatcher that has stopped.
	stopWatch()
	reg.Close()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}
