package main

import (
	"bufio"
	"encoding/json"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// TestMain doubles the test binary as the srclda binary: with
// SRCLDA_RUN_MAIN=1 it runs main() against os.Args, so the telemetry tests
// exercise the real CLI end to end without a separate go build.
func TestMain(m *testing.M) {
	if os.Getenv("SRCLDA_RUN_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// writeTinyData writes a corpus and knowledge source small enough that a
// sweep costs microseconds, so a 200-sweep chain finishes instantly.
func writeTinyData(t *testing.T) (corpusDir, sourceDir string) {
	t.Helper()
	corpusDir, sourceDir = t.TempDir(), t.TempDir()
	docs := []string{
		"pencil ruler eraser pencil notebook paper",
		"baseball umpire pitcher baseball inning glove",
		"pencil paper notebook ruler ruler eraser",
		"glove inning baseball umpire pitcher glove",
	}
	for i, text := range docs {
		path := filepath.Join(corpusDir, "doc"+string(rune('a'+i))+".txt")
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	articles := map[string]string{
		"School Supplies": strings.Repeat("pencil ruler eraser notebook paper ", 10),
		"Baseball":        strings.Repeat("baseball umpire pitcher inning glove ", 10),
	}
	for label, text := range articles {
		if err := os.WriteFile(filepath.Join(sourceDir, label+".txt"), []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return corpusDir, sourceDir
}

// runSrclda starts the re-exec'd CLI with stderr captured to a file.
func runSrclda(t *testing.T, stderrPath string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "SRCLDA_RUN_MAIN=1")
	stderr, err := os.Create(stderrPath)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { stderr.Close() })
	cmd.Stderr = stderr
	return cmd
}

// TestTelemetryLogOnePerSweep is the trainer half of the acceptance
// criterion: a 200-sweep chain with -telemetry-log emits exactly one JSONL
// event per sweep, each carrying the log-likelihood (tracing is implied),
// throughput, wall time, and — on checkpoint sweeps — the write latency.
func TestTelemetryLogOnePerSweep(t *testing.T) {
	corpusDir, sourceDir := writeTinyData(t)
	workDir := t.TempDir()
	telemetry := filepath.Join(workDir, "train.jsonl")
	ckptDir := filepath.Join(workDir, "ckpts")

	cmd := runSrclda(t, filepath.Join(workDir, "stderr.log"),
		"-corpus", corpusDir, "-source", sourceDir,
		"-iters", "200", "-free", "1", "-seed", "7",
		"-telemetry-log", telemetry,
		"-checkpoint-dir", ckptDir, "-checkpoint-every", "50",
	)
	cmd.Stdout = nil // topic printout is irrelevant here
	if err := cmd.Run(); err != nil {
		data, _ := os.ReadFile(filepath.Join(workDir, "stderr.log"))
		t.Fatalf("srclda run failed: %v\nstderr:\n%s", err, data)
	}

	f, err := os.Open(telemetry)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	type event struct {
		Sweep             int      `json:"sweep"`
		TotalSweeps       int      `json:"total_sweeps"`
		LogLikelihood     *float64 `json:"log_likelihood"`
		TokensPerSec      float64  `json:"tokens_per_sec"`
		SweepSeconds      float64  `json:"sweep_seconds"`
		CheckpointSeconds *float64 `json:"checkpoint_seconds"`
		CheckpointPath    string   `json:"checkpoint_path"`
		Kernel            string   `json:"kernel"`
	}
	var events []event
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v (%q)", len(events)+1, err, sc.Text())
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 200 {
		t.Fatalf("%d telemetry events for a 200-sweep chain, want exactly 200", len(events))
	}
	for i, ev := range events {
		if ev.Sweep != i+1 || ev.TotalSweeps != 200 {
			t.Fatalf("event %d: sweep %d/%d, want %d/200", i, ev.Sweep, ev.TotalSweeps, i+1)
		}
		if ev.LogLikelihood == nil {
			t.Fatalf("event %d missing log_likelihood (telemetry implies tracing)", i)
		}
		if math.IsNaN(*ev.LogLikelihood) || math.IsInf(*ev.LogLikelihood, 0) {
			t.Fatalf("event %d log-likelihood %v is not finite", i, *ev.LogLikelihood)
		}
		if ev.SweepSeconds < 0 || ev.TokensPerSec < 0 {
			t.Fatalf("event %d has negative timings: %+v", i, ev)
		}
		if ev.Kernel != "serial" {
			t.Fatalf("event %d kernel %q, want serial (single-threaded default)", i, ev.Kernel)
		}
		wantCkpt := ev.Sweep%50 == 0
		if gotCkpt := ev.CheckpointPath != ""; gotCkpt != wantCkpt {
			t.Fatalf("event %d (sweep %d): checkpoint path %q, want checkpoint=%v",
				i, ev.Sweep, ev.CheckpointPath, wantCkpt)
		}
		if wantCkpt && (ev.CheckpointSeconds == nil || *ev.CheckpointSeconds < 0) {
			t.Fatalf("checkpoint sweep %d missing write latency", ev.Sweep)
		}
	}
}

// TestMetricsAddrLiveGauges is the other trainer half: while a long chain
// is running, -metrics-addr serves live Prometheus gauges. The chain is
// given far more sweeps than it will complete; the test scrapes mid-run and
// then kills it.
func TestMetricsAddrLiveGauges(t *testing.T) {
	corpusDir, sourceDir := writeTinyData(t)
	workDir := t.TempDir()
	stderrPath := filepath.Join(workDir, "stderr.log")

	cmd := runSrclda(t, stderrPath,
		"-corpus", corpusDir, "-source", sourceDir,
		"-iters", "50000000", "-free", "1", "-seed", "7",
		"-metrics-addr", "127.0.0.1:0", "-log-format", "json",
	)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The "metrics listener" log line carries the resolved port.
	addrRe := regexp.MustCompile(`"msg":"metrics listener".*"addr":"([^"]+)"`)
	var addr string
	deadline := time.Now().Add(15 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			data, _ := os.ReadFile(stderrPath)
			t.Fatalf("metrics listener never announced itself; stderr:\n%s", data)
		}
		data, _ := os.ReadFile(stderrPath)
		if m := addrRe.FindSubmatch(data); m != nil {
			addr = string(m[1])
		} else {
			time.Sleep(10 * time.Millisecond)
		}
	}

	// Scrape until the first sweep has landed in the gauges.
	for {
		if time.Now().After(deadline) {
			t.Fatal("gauges never reported a completed sweep")
		}
		resp, err := http.Get("http://" + addr + "/metrics")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		var sb strings.Builder
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			sb.WriteString(sc.Text())
			sb.WriteString("\n")
		}
		resp.Body.Close()
		body := sb.String()
		for _, want := range []string{
			"srclda_sweep ", "srclda_total_sweeps 50000000",
			"srclda_tokens_per_sec ", "srclda_sweeps_total ", "srclda_goroutines ",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("metrics body missing %q:\n%s", want, body)
			}
		}
		if strings.Contains(body, "srclda_sweep 0\n") {
			time.Sleep(10 * time.Millisecond)
			continue // no sweep recorded yet; scrape again
		}
		if !strings.Contains(body, "srclda_log_likelihood ") {
			t.Fatalf("live gauges missing log-likelihood after a sweep:\n%s", body)
		}
		return
	}
}
