// Command srclda trains a topic model over a corpus directory with a
// knowledge-source directory and prints labeled topics.
//
// Corpus layout: every *.txt file under -corpus is one document; every
// *.txt file under -source is one knowledge article whose file name (minus
// extension) is the topic label. Without -corpus/-source the built-in
// Reuters-like synthetic scenario is used, so the command is runnable out
// of the box:
//
//	srclda                          # synthetic demo
//	srclda -model lda -topics 20    # baseline LDA on the demo corpus
//	srclda -corpus docs/ -source wiki/ -free 10 -iters 500
//	srclda -save-bundle model.bundle   # emit a serving bundle for srcldad
//	srclda -save-bundle model.bundle -bundle-format flat   # mmap-able flat bundle
//	srclda -convert-bundle old.bundle -save-bundle new.bundle -bundle-format flat
//
// Long runs can checkpoint periodically and resume after a crash with the
// exact same chain (pass the same data and chain flags; -iters is the
// run's total target):
//
//	srclda -iters 1000 -checkpoint-dir ckpts/ -checkpoint-every 50
//	srclda -iters 1000 -checkpoint-dir ckpts/ -resume ckpts/   # newest wins
//
// Training is observable in flight: -telemetry-log appends one JSON event
// per completed sweep (log-likelihood, tokens/sec, sweep and checkpoint
// latency), -metrics-addr serves the same state as live Prometheus gauges,
// and -debug-addr exposes net/http/pprof for profiling a running chain:
//
//	srclda -iters 2000 -telemetry-log train.jsonl -metrics-addr :9090
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"sourcelda/internal/core"
	"sourcelda/internal/corpus"
	"sourcelda/internal/ctm"
	"sourcelda/internal/eda"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/labeling"
	"sourcelda/internal/lda"
	"sourcelda/internal/obs"
	"sourcelda/internal/persist"
	"sourcelda/internal/synth"
	"sourcelda/internal/textproc"
)

// cliFlags holds every srclda flag. They are defined through defineFlags on
// an explicit FlagSet so the docs-drift test can enumerate them against the
// flag table in docs/OPERATIONS.md.
type cliFlags struct {
	corpusDir, sourceDir      *string
	model                     *string
	freeT, topics, iters      *int
	seed                      *int64
	mu, sigma, lambda         *float64
	threads, shards           *int
	sampler, sweep            *string
	topN, minDocs             *int
	saveTo, bundleTo          *string
	bundleName, bundleVersion *string
	bundleFormat              *string
	convertBundle             *string
	ckptDir                   *string
	ckptEvery, ckptKeep       *int
	resume                    *string
	logFormat, logLevel       *string
	telemetryLog              *string
	metricsAddr, debugAddr    *string
}

func defineFlags(fs *flag.FlagSet) *cliFlags {
	return &cliFlags{
		corpusDir:     fs.String("corpus", "", "directory of *.txt documents, one file per document (default \"\": built-in synthetic demo corpus)"),
		sourceDir:     fs.String("source", "", "directory of *.txt knowledge articles, file name = topic label (default \"\": built-in synthetic demo source)"),
		model:         fs.String("model", "srclda", "model to train: srclda, lda, eda, or ctm (default srclda)"),
		freeT:         fs.Int("free", 5, "unlabeled (free) topics learned alongside the knowledge source, for srclda/ctm (default 5)"),
		topics:        fs.Int("topics", 20, "topic count for the lda baseline only (default 20)"),
		iters:         fs.Int("iters", 300, "total Gibbs sweeps; with -resume, the run's overall target including already-completed sweeps (default 300)"),
		seed:          fs.Int64("seed", 42, "chain seed; identical inputs and seed reproduce a run bit for bit (default 42)"),
		mu:            fs.Float64("mu", 0.7, "mean of the N(µ,σ) prior over the λ divergence exponent (default 0.7)"),
		sigma:         fs.Float64("sigma", 0.3, "std dev of the λ prior, must be >= 0 (default 0.3)"),
		lambda:        fs.Float64("lambda", -1, "fixed λ exponent in [0,1]; -1 integrates λ out by quadrature (default -1)"),
		threads:       fs.Int("threads", 1, "worker threads; > 1 enables Algorithm 3 parallel sampling, and bounds shard workers in sharded mode (default 1)"),
		sampler:       fs.String("sampler", "auto", "per-token sampling kernel: auto, serial, sparse, prefix-sums, or simple-parallel; auto picks serial, or simple-parallel when -threads > 1 (default auto)"),
		sweep:         fs.String("sweepmode", "sequential", "sweep traversal: sequential (exact collapsed Gibbs) or sharded (document-sharded data-parallel) (default sequential)"),
		shards:        fs.Int("shards", 0, "document shards for sharded sweeps; > 0 implies -sweepmode=sharded, 0 means one per thread (default 0)"),
		topN:          fs.Int("top", 10, "words printed per topic (default 10)"),
		minDocs:       fs.Int("mindocs", 2, "superset reduction: minimum documents a discovered topic must appear in to be printed (default 2)"),
		saveTo:        fs.String("save", "", "write the fitted srclda snapshot to this JSON file (default \"\": don't)"),
		bundleTo:      fs.String("save-bundle", "", "write a self-contained serving bundle (vocabulary + source + snapshot) for cmd/srcldad to this file (default \"\": don't)"),
		bundleName:    fs.String("bundle-name", "", "logical model name embedded in the bundle written by -save-bundle; the srcldad models-dir watcher and admin API key rollouts on it (default \"\": unnamed)"),
		bundleVersion: fs.String("bundle-version", "", "version string embedded in the bundle written by -save-bundle, distinguishing successive builds of the same model (default \"\": unversioned)"),
		bundleFormat:  fs.String("bundle-format", "json", "format -save-bundle and -convert-bundle write: json (gzip JSON, retrainable archive) or flat (mmap-able zero-copy binary srcldad loads in O(1)) (default json)"),
		convertBundle: fs.String("convert-bundle", "", "convert this existing gzip-JSON bundle to -bundle-format, write it to -save-bundle, and exit without training (default \"\": train normally)"),
		ckptDir:       fs.String("checkpoint-dir", "", "directory for periodic training checkpoints, created if missing (default \"\": checkpointing off)"),
		ckptEvery:     fs.Int("checkpoint-every", 50, "sweeps between checkpoints; each write is atomic (temp file + fsync + rename) (default 50)"),
		ckptKeep:      fs.Int("checkpoint-retain", 3, "newest checkpoints kept per directory; negative keeps all (default 3)"),
		resume:        fs.String("resume", "", "checkpoint file — or checkpoint directory, newest wins — to resume training from; requires the run's original data and chain flags (default \"\": fresh run)"),
		logFormat:     fs.String("log-format", "text", "log output format: \"text\" (key=value lines) or \"json\" (one object per line, for log shippers)"),
		logLevel:      fs.String("log-level", "info", "minimum log level: debug, info, warn or error (checkpoint and resume events are info)"),
		telemetryLog:  fs.String("telemetry-log", "", "append one JSON object per completed sweep (log-likelihood, tokens/sec, sweep and checkpoint latency) to this file; enables per-sweep likelihood tracing (default \"\": off)"),
		metricsAddr:   fs.String("metrics-addr", "", "optional listen address serving live training gauges (sweep progress, likelihood, throughput) as Prometheus text (default \"\": off)"),
		debugAddr:     fs.String("debug-addr", "", "optional listen address for net/http/pprof and /debug/runtime gauges (default \"\": disabled; never expose publicly)"),
	}
}

func main() {
	f := defineFlags(flag.CommandLine)
	corpusDir, sourceDir, model := f.corpusDir, f.sourceDir, f.model
	freeT, topics, iters, seed := f.freeT, f.topics, f.iters, f.seed
	mu, sigma, lambda := f.mu, f.sigma, f.lambda
	threads, sampler, sweep, shards := f.threads, f.sampler, f.sweep, f.shards
	topN, minDocs, saveTo, bundleTo := f.topN, f.minDocs, f.saveTo, f.bundleTo
	ckptDir, ckptEvery, ckptKeep, resume := f.ckptDir, f.ckptEvery, f.ckptKeep, f.resume
	flag.Parse()

	if *f.bundleFormat != "json" && *f.bundleFormat != "flat" {
		fmt.Fprintf(os.Stderr, "unknown bundle format %q (want json or flat)\n", *f.bundleFormat)
		os.Exit(2)
	}
	logger, err := obs.NewLogger(os.Stderr, *f.logFormat, *f.logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "srclda:", err)
		os.Exit(2)
	}
	// The opt-in debug listener profiles a running chain without touching
	// its output; it serves pprof plus process runtime gauges.
	if *f.debugAddr != "" {
		dbgSrv := &http.Server{
			Addr:              *f.debugAddr,
			Handler:           obs.NewDebugMux(func(w io.Writer) { obs.WriteRuntimeMetrics(w, "srclda", -1) }),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("debug listener", "addr", *f.debugAddr)
			if err := dbgSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Error("debug listener failed", "addr", *f.debugAddr, "error", err)
			}
		}()
		defer dbgSrv.Close()
	}
	// Conversion mode: no training, no corpus — just re-encode an existing
	// bundle and exit.
	if *f.convertBundle != "" {
		if *bundleTo == "" {
			fmt.Fprintln(os.Stderr, "-convert-bundle needs -save-bundle OUT for the converted file")
			os.Exit(2)
		}
		exitOn(convertBundle(*f.convertBundle, *bundleTo, *f.bundleFormat))
		fmt.Printf("converted %s -> %s (%s format)\n", *f.convertBundle, *bundleTo, *f.bundleFormat)
		return
	}

	// Validate up front so a typo'd mode fails for every -model, not just
	// srclda (the only model the sweep flags apply to).
	if *sweep != "sequential" && *sweep != "sharded" {
		fmt.Fprintf(os.Stderr, "unknown sweep mode %q (want sequential or sharded)\n", *sweep)
		os.Exit(2)
	}
	samplerKinds := map[string]core.SamplerKind{
		"serial":          core.SamplerSerial,
		"sparse":          core.SamplerSparse,
		"prefix-sums":     core.SamplerPrefixSums,
		"simple-parallel": core.SamplerSimpleParallel,
	}
	if _, ok := samplerKinds[*sampler]; !ok && *sampler != "auto" {
		fmt.Fprintf(os.Stderr, "unknown sampler %q (want auto, serial, sparse, prefix-sums, or simple-parallel)\n", *sampler)
		os.Exit(2)
	}
	sweepSet, threadsSet := false, false
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "sweepmode":
			sweepSet = true
		case "threads":
			threadsSet = true
		}
	})
	// -shards alone implies the sharded mode, matching the sourcelda
	// facade's Shards semantics; pairing it with an explicit sequential
	// request is a contradiction worth stopping on.
	if *shards > 0 && *sweep == "sequential" {
		if sweepSet {
			fmt.Fprintln(os.Stderr, "-shards requires -sweepmode=sharded")
			os.Exit(2)
		}
		*sweep = "sharded"
	}
	if (*sweep == "sharded" || *shards > 0) && *model != "srclda" {
		fmt.Fprintf(os.Stderr, "note: -sweepmode/-shards only apply to -model srclda; ignored for %q\n", *model)
	}
	if (*ckptDir != "" || *resume != "") && *model != "srclda" {
		fmt.Fprintf(os.Stderr, "-checkpoint-dir and -resume only apply to -model srclda (got %q)\n", *model)
		os.Exit(2)
	}
	if (*f.telemetryLog != "" || *f.metricsAddr != "") && *model != "srclda" {
		fmt.Fprintf(os.Stderr, "-telemetry-log and -metrics-addr only apply to -model srclda (got %q)\n", *model)
		os.Exit(2)
	}
	if *ckptEvery < 1 {
		fmt.Fprintf(os.Stderr, "-checkpoint-every is %d; it must be >= 1 sweep\n", *ckptEvery)
		os.Exit(2)
	}

	c, src, err := loadData(*corpusDir, *sourceDir, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
	fmt.Printf("corpus: %d docs, %d tokens, vocabulary %d; knowledge source: %d articles\n\n",
		c.NumDocs(), c.TotalTokens(), c.VocabSize(), src.Len())

	switch *model {
	case "srclda":
		opts := core.Options{
			NumFreeTopics:    *freeT,
			Alpha:            50.0 / float64(*freeT+src.Len()),
			Beta:             200.0 / float64(c.VocabSize()),
			Mu:               *mu,
			Sigma:            *sigma,
			QuadraturePoints: 9,
			UseSmoothing:     true,
			Iterations:       *iters,
			Seed:             *seed,
			Threads:          *threads,
		}
		if *lambda >= 0 {
			opts.LambdaMode = core.LambdaFixed
			opts.Lambda = *lambda
		} else {
			opts.LambdaMode = core.LambdaIntegrated
		}
		if *threads > 1 {
			opts.Sampler = core.SamplerSimpleParallel
		}
		if *sweep == "sharded" {
			opts.SweepMode = core.SweepShardedDocs
			opts.Shards = *shards
			opts.Sampler = core.SamplerSerial
			// Default the pool to one worker per shard (capped at docs and
			// CPUs) so -shards alone actually sweeps in parallel; an
			// explicit -threads stays a hard resource bound.
			if !threadsSet {
				opts.Threads = core.DefaultShardWorkers(*shards, c.NumDocs())
			}
		}
		// An explicit -sampler overrides the -threads/-sweepmode-derived
		// default. "auto" keeps it, so existing flag combinations keep the
		// exact chains (and checkpoint digests) they produced before.
		if kind, ok := samplerKinds[*sampler]; ok {
			opts.Sampler = kind
		}
		// Telemetry: one JSONL event per sweep and/or live Prometheus gauges.
		// It implies likelihood tracing; Options.ChainDigest excludes the
		// tracing knob, so a telemetry run resumes a non-telemetry chain (and
		// vice versa) without a digest mismatch.
		var recorder *obs.TrainingRecorder
		if *f.telemetryLog != "" || *f.metricsAddr != "" {
			var sink io.Writer
			if *f.telemetryLog != "" {
				tf, err := os.Create(*f.telemetryLog)
				exitOn(err)
				defer tf.Close()
				sink = tf
			}
			recorder = obs.NewTrainingRecorder(sink)
			opts.TraceLikelihood = true
		}
		if *f.metricsAddr != "" {
			// Bind before training starts: a bad address should stop the run
			// immediately, and the log carries the resolved port (so ":0"
			// works for tests and for avoiding collisions).
			mln, err := net.Listen("tcp", *f.metricsAddr)
			exitOn(err)
			logger.Info("metrics listener", "addr", mln.Addr().String())
			msrv := &http.Server{Handler: recorder.MetricsHandler(), ReadHeaderTimeout: 5 * time.Second}
			go func() {
				if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed {
					logger.Error("metrics listener failed", "addr", mln.Addr().String(), "error", err)
				}
			}()
			defer msrv.Close()
		}
		var m *core.Model
		var err error
		if *resume != "" {
			var ck *core.Checkpoint
			ck, err = persist.LoadCheckpointFile(*resume)
			exitOn(err)
			m, err = core.Restore(c, src, opts, ck)
			exitOn(err)
			logger.Info("resumed from checkpoint", "path", *resume, "sweep", m.Sweeps(), "total_sweeps", *iters)
		} else {
			m, err = core.NewModel(c, src, opts)
			exitOn(err)
		}
		defer m.Close()
		var cw *persist.CheckpointWriter
		if *ckptDir != "" {
			cw, err = persist.NewCheckpointWriter(*ckptDir, *ckptKeep)
			exitOn(err)
		}
		var hook core.SweepHook
		if cw != nil || recorder != nil {
			kernel := opts.Sampler.String()
			totalTokens := c.TotalTokens()
			hook = func(sweepIdx int, cm *core.Model) error {
				var ckSecs *float64
				ckPath := ""
				if cw != nil && sweepIdx%*ckptEvery == 0 {
					start := time.Now()
					path, err := cw.Write(cm.Checkpoint())
					if err != nil {
						return err
					}
					secs := time.Since(start).Seconds()
					ckSecs, ckPath = &secs, path
					logger.Info("checkpoint written",
						"sweep", sweepIdx, "total_sweeps", *iters,
						"path", path, "write_seconds", secs)
				}
				if recorder == nil {
					return nil
				}
				ev := obs.SweepEvent{
					Time:              time.Now(),
					Sweep:             sweepIdx,
					TotalSweeps:       *iters,
					Kernel:            kernel,
					CheckpointSeconds: ckSecs,
					CheckpointPath:    ckPath,
				}
				if n := len(cm.IterationTimes); n > 0 {
					ev.SweepSeconds = cm.IterationTimes[n-1].Seconds()
					if ev.SweepSeconds > 0 {
						ev.TokensPerSec = float64(totalTokens) / ev.SweepSeconds
					}
				}
				if n := len(cm.LikelihoodTrace); n > 0 {
					ll := cm.LikelihoodTrace[n-1]
					ev.LogLikelihood = &ll
				}
				recorder.Record(ev)
				return nil
			}
		}
		if remaining := *iters - m.Sweeps(); remaining > 0 {
			exitOn(m.RunWithHook(remaining, hook))
		}
		// Telemetry write failures never abort training; report them here.
		exitOn(recorder.Err())
		res := m.Result()
		fmt.Printf("discovered labeled topics (≥%d docs):\n", *minDocs)
		printTopics(c, res.Phi, res.Labels, res.TokenCounts, res.DocFrequencies, *minDocs, *topN)
		if *saveTo != "" {
			f, err := os.Create(*saveTo)
			exitOn(err)
			exitOn(persist.SaveResult(f, res))
			exitOn(f.Close())
			fmt.Printf("\nsnapshot written to %s\n", *saveTo)
		}
		if *bundleTo != "" {
			out, err := os.Create(*bundleTo)
			exitOn(err)
			meta := &persist.BundleMeta{
				Name:        *f.bundleName,
				Version:     *f.bundleVersion,
				ChainDigest: fmt.Sprintf("%016x", opts.ChainDigest()),
				TrainedAt:   time.Now().UTC().Truncate(time.Second),
			}
			if *f.bundleFormat == "flat" {
				exitOn(persist.SaveBundleFlat(out, c.Vocab.Words(), src, res, meta))
			} else {
				exitOn(persist.SaveBundleMeta(out, c.Vocab.Words(), src, res, meta))
			}
			exitOn(out.Close())
			fmt.Printf("\nserving bundle written to %s (serve it: srcldad -bundle %s)\n", *bundleTo, *bundleTo)
		}
	case "lda":
		m, err := lda.Fit(c, lda.Options{
			NumTopics:  *topics,
			Alpha:      50.0 / float64(*topics),
			Beta:       200.0 / float64(c.VocabSize()),
			Iterations: *iters,
			Seed:       *seed,
		})
		exitOn(err)
		// IR-LDA: post-hoc labeling with the TF-IDF/cosine retriever.
		labels := make([]string, *topics)
		ir := labeling.NewIRLabeler(src, c.VocabSize(), 10)
		for t, a := range labeling.LabelAll(ir, m.Phi()) {
			labels[t] = src.Label(a) + " (IR)"
		}
		counts := make([]int, *topics)
		for _, tot := range m.Assignments() {
			for _, k := range tot {
				counts[k]++
			}
		}
		printTopics(c, m.Phi(), labels, counts, nil, 0, *topN)
	case "eda":
		m, err := eda.Fit(c, src, eda.Options{Alpha: 0.5, Iterations: *iters, Seed: *seed})
		exitOn(err)
		counts := make([]int, m.NumTopics())
		for _, tot := range m.Assignments() {
			for _, k := range tot {
				counts[k]++
			}
		}
		printTopics(c, m.Phi(), m.Labels(), counts, nil, 0, *topN)
	case "ctm":
		m, err := ctm.Fit(c, src, ctm.Options{
			NumFreeTopics: *freeT, Alpha: 0.5, Beta: 0.01,
			Iterations: *iters, Seed: *seed,
		})
		exitOn(err)
		counts := make([]int, m.NumTopics())
		for _, tot := range m.Assignments() {
			for _, k := range tot {
				counts[k]++
			}
		}
		printTopics(c, m.Phi(), m.Labels(), counts, nil, 0, *topN)
	default:
		fmt.Fprintf(os.Stderr, "unknown model %q\n", *model)
		os.Exit(2)
	}
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
		os.Exit(1)
	}
}

// convertBundle re-encodes an existing gzip-JSON bundle into the requested
// format. Flat input is rejected: the flat format is a one-way serving
// artifact (no knowledge source, no training mixtures), so there is nothing
// to convert it back from — keep the JSON original.
func convertBundle(in, out, format string) error {
	src, err := os.Open(in)
	if err != nil {
		return err
	}
	defer src.Close()
	var magic [8]byte
	if n, _ := src.Read(magic[:]); persist.IsFlatBundle(magic[:n]) {
		return fmt.Errorf("%s is already a flat bundle; conversion reads gzip-JSON bundles (flat bundles cannot be converted back — keep the JSON original)", in)
	}
	if _, err := src.Seek(0, io.SeekStart); err != nil {
		return err
	}
	dst, err := os.Create(out)
	if err != nil {
		return err
	}
	switch format {
	case "flat":
		err = persist.ConvertBundleToFlat(src, dst)
	default: // json: decode + re-encode, normalizing a hand-edited bundle
		var b *persist.Bundle
		if b, err = persist.LoadBundle(src); err == nil {
			err = persist.SaveBundleMeta(dst, b.Vocab.Words(), b.Source, b.Result, b.Meta)
		}
	}
	if err != nil {
		dst.Close()
		os.Remove(out)
		return err
	}
	return dst.Close()
}

// loadData reads the corpus and knowledge source from directories, or
// builds the synthetic Reuters-like demo when paths are empty.
func loadData(corpusDir, sourceDir string, seed int64) (*corpus.Corpus, *knowledge.Source, error) {
	if corpusDir == "" && sourceDir == "" {
		data, err := synth.ReutersLike(synth.ReutersOptions{
			NumCategories: 30, LiveCategories: 12, NumDocs: 200, AvgDocLen: 60, Seed: seed,
		})
		if err != nil {
			return nil, nil, err
		}
		return data.Corpus, data.Source, nil
	}
	if corpusDir == "" || sourceDir == "" {
		return nil, nil, fmt.Errorf("-corpus and -source must be given together")
	}
	stop := textproc.DefaultStopwords()
	c := corpus.New()
	if err := eachTxt(corpusDir, func(name, text string) {
		c.AddText(name, text, stop)
	}); err != nil {
		return nil, nil, err
	}
	var articles []*knowledge.Article
	if err := eachTxt(sourceDir, func(name, text string) {
		label := strings.TrimSuffix(name, filepath.Ext(name))
		articles = append(articles, knowledge.NewArticleFromText(label, text, c.Vocab, stop, true))
	}); err != nil {
		return nil, nil, err
	}
	src, err := knowledge.NewSource(articles)
	if err != nil {
		return nil, nil, err
	}
	return c, src, nil
}

func eachTxt(dir string, fn func(name, text string)) error {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	found := false
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".txt") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		fn(e.Name(), string(data))
		found = true
	}
	if !found {
		return fmt.Errorf("no *.txt files in %s", dir)
	}
	return nil
}

// printTopics renders topics sorted by token count; when minDocs > 0 only
// topics meeting the document-frequency threshold are shown.
func printTopics(c *corpus.Corpus, phis [][]float64, labels []string, tokenCounts, docFreq []int, minDocs, topN int) {
	order := make([]int, len(phis))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(i, j int) bool {
		return tokenCounts[order[i]] > tokenCounts[order[j]]
	})
	for _, t := range order {
		if tokenCounts[t] == 0 {
			continue
		}
		if minDocs > 0 && docFreq != nil && docFreq[t] < minDocs {
			continue
		}
		ids := textproc.TopWords(phis[t], topN)
		words := make([]string, len(ids))
		for i, id := range ids {
			words[i] = c.Vocab.Word(id)
		}
		fmt.Printf("%-28s (%6d tokens)  %s\n", labels[t], tokenCounts[t], strings.Join(words, ", "))
	}
}
