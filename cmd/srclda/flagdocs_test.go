package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// documentedFlags extracts the flag names from a "### `<cmd>` flags" table
// in a markdown file: rows of the form "| `-name` | ... |".
func documentedFlags(t *testing.T, path, section string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("cannot read %s: %v", path, err)
	}
	out := map[string]bool{}
	inSection := false
	for _, line := range strings.Split(string(data), "\n") {
		if strings.HasPrefix(line, "#") {
			inSection = strings.TrimSpace(line) == section
			continue
		}
		if !inSection || !strings.HasPrefix(line, "| `-") {
			continue
		}
		rest := strings.TrimPrefix(line, "| `-")
		name, _, ok := strings.Cut(rest, "`")
		if !ok {
			t.Fatalf("unparseable flag-table row %q", line)
		}
		out[name] = true
	}
	if len(out) == 0 {
		t.Fatalf("no flag table found under %q in %s", section, path)
	}
	return out
}

// checkFlagDocs asserts the defined flag set and the documented flag table
// match exactly, in both directions — CI runs this, so the table cannot
// silently rot when a flag is added, renamed, or removed.
func checkFlagDocs(t *testing.T, fs *flag.FlagSet, docPath, section string) {
	t.Helper()
	documented := documentedFlags(t, docPath, section)
	defined := map[string]bool{}
	fs.VisitAll(func(fl *flag.Flag) { defined[fl.Name] = true })
	for name := range defined {
		if !documented[name] {
			t.Errorf("flag -%s exists but is missing from the %s table in %s", name, section, docPath)
		}
	}
	for name := range documented {
		if !defined[name] {
			t.Errorf("%s documents -%s, which the binary does not define", docPath, name)
		}
	}
}

// TestFlagsDocumented diffs srclda's actual flag set against the table in
// docs/OPERATIONS.md.
func TestFlagsDocumented(t *testing.T) {
	fs := flag.NewFlagSet("srclda", flag.ContinueOnError)
	defineFlags(fs)
	checkFlagDocs(t, fs, filepath.Join("..", "..", "docs", "OPERATIONS.md"), "### `srclda` flags")
}
