package sourcelda

import (
	"strings"
	"testing"
)

func buildFixture(t *testing.T) (*Corpus, *KnowledgeSource) {
	t.Helper()
	b := NewCorpusBuilder()
	for i := 0; i < 10; i++ {
		b.AddDocument("school", "pencil ruler eraser pencil notebook paper")
		b.AddDocument("ball", "baseball umpire pitcher baseball inning glove")
	}
	b.AddKnowledgeArticle("School Supplies",
		strings.Repeat("pencil pencil ruler eraser notebook paper paper ", 20))
	b.AddKnowledgeArticle("Baseball",
		strings.Repeat("baseball baseball umpire pitcher inning glove ", 20))
	c, k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, k
}

func TestBuilder(t *testing.T) {
	c, k := buildFixture(t)
	if c.NumDocuments() != 20 {
		t.Fatalf("docs = %d", c.NumDocuments())
	}
	if k.NumArticles() != 2 {
		t.Fatalf("articles = %d", k.NumArticles())
	}
	if c.VocabularySize() == 0 || c.TotalTokens() != 120 {
		t.Fatalf("vocab %d tokens %d", c.VocabularySize(), c.TotalTokens())
	}
	labels := k.Labels()
	if labels[0] != "School Supplies" || labels[1] != "Baseball" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestBuilderRejectsDuplicateLabels(t *testing.T) {
	b := NewCorpusBuilder()
	b.AddDocument("d", "x y z")
	b.AddKnowledgeArticle("A", "x x")
	b.AddKnowledgeArticle("A", "y y")
	if _, _, err := b.Build(); err == nil {
		t.Fatal("duplicate labels accepted")
	}
}

func TestBuilderStopwords(t *testing.T) {
	b := NewCorpusBuilder()
	b.AddDocument("d", "the pencil and the ruler")
	c, _, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.TotalTokens() != 2 {
		t.Fatalf("tokens = %d, want stopwords removed", c.TotalTokens())
	}
	b2 := NewCorpusBuilder()
	b2.SetStopwords(nil)
	b2.AddDocument("d", "the pencil and the ruler")
	c2, _, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c2.TotalTokens() != 5 {
		t.Fatalf("tokens = %d, want all 5 with filtering disabled", c2.TotalTokens())
	}
}

func TestFitAndTopics(t *testing.T) {
	c, k := buildFixture(t)
	m, err := Fit(c, k, Options{
		FreeTopics: 1,
		Lambda:     &LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 100,
		Seed:       7,
	})
	if err != nil {
		t.Fatal(err)
	}
	topics := m.Topics()
	if len(topics) != 3 {
		t.Fatalf("topics = %d", len(topics))
	}
	// Weights sorted descending and sum ≈ 1.
	var sum float64
	for i, tp := range topics {
		sum += tp.Weight
		if i > 0 && tp.Weight > topics[i-1].Weight {
			t.Fatal("topics not sorted by weight")
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("weights sum %v", sum)
	}
	// The two source topics should dominate and carry the right words.
	var school *Topic
	for i := range topics {
		if topics[i].Label == "School Supplies" {
			school = &topics[i]
		}
	}
	if school == nil {
		t.Fatal("no School Supplies topic")
	}
	if !school.IsSourceTopic {
		t.Fatal("School Supplies should be a source topic")
	}
	top := school.TopWords(3)
	found := false
	for _, w := range top {
		if w == "pencil" {
			found = true
		}
	}
	if !found {
		t.Fatalf("School Supplies top words %v lack pencil", top)
	}
	if school.Probability("pencil") <= school.Probability("baseball") {
		t.Fatal("pencil should outweigh baseball under School Supplies")
	}
	if school.Probability("no-such-word") != 0 {
		t.Fatal("unknown word should be 0")
	}
}

func TestFitDefaults(t *testing.T) {
	// Zero-value options must work end to end (integrated λ, paper priors).
	c, k := buildFixture(t)
	m, err := Fit(c, k, Options{Iterations: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Topics()); got != 2 {
		t.Fatalf("topics = %d", got)
	}
}

func TestFitNilArguments(t *testing.T) {
	c, k := buildFixture(t)
	if _, err := Fit(nil, k, Options{Iterations: 1}); err == nil {
		t.Fatal("nil corpus accepted")
	}
	if _, err := Fit(c, nil, Options{Iterations: 1}); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestDocumentTopics(t *testing.T) {
	c, k := buildFixture(t)
	m, err := Fit(c, k, Options{
		Lambda:     &LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 50,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	theta, err := m.DocumentTopics(0)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range theta {
		sum += p
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("θ sums to %v", sum)
	}
	if _, err := m.DocumentTopics(-1); err == nil {
		t.Fatal("negative index accepted")
	}
	if _, err := m.DocumentTopics(999); err == nil {
		t.Fatal("out-of-range index accepted")
	}
}

func TestDiscoveredTopics(t *testing.T) {
	c, k := buildFixture(t)
	m, err := Fit(c, k, Options{
		Lambda:     &LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 60,
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}
	disc := m.DiscoveredTopics(1)
	if len(disc) == 0 {
		t.Fatal("nothing discovered on a fully-covered corpus")
	}
	if len(m.DiscoveredTopics(1_000_000)) != 0 {
		t.Fatal("impossible threshold discovered topics")
	}
}

func TestThreadedFitMatchesSerial(t *testing.T) {
	c, k := buildFixture(t)
	opts := Options{
		Lambda:     &LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 15,
		Seed:       9,
	}
	serial, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Threads = 3
	threaded, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Raw().Assignments, threaded.Raw().Assignments
	for d := range a {
		for i := range a[d] {
			if a[d][i] != b[d][i] {
				t.Fatal("threaded fit diverged from serial with same seed")
			}
		}
	}
}

func TestShardedFitMatchesSerialWithOneShard(t *testing.T) {
	c, k := buildFixture(t)
	opts := Options{
		Lambda:     &LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 15,
		Seed:       9,
	}
	serial, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Shards = 1
	sharded, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Raw().Assignments, sharded.Raw().Assignments
	for d := range a {
		for i := range a[d] {
			if a[d][i] != b[d][i] {
				t.Fatal("one-shard sharded fit diverged from serial with same seed")
			}
		}
	}
	// Multi-shard fits must run and keep every token assigned.
	opts.Shards = 4
	multi, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	var tokens int
	for _, n := range multi.Raw().TokenCounts {
		tokens += n
	}
	if tokens != c.TotalTokens() {
		t.Fatalf("sharded fit lost tokens: %d of %d", tokens, c.TotalTokens())
	}
}

func TestSparseSamplerFit(t *testing.T) {
	c, k := buildFixture(t)
	opts := Options{
		Lambda:     &LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 30,
		Seed:       9,
		Sampler:    SamplerSparse,
	}
	m1, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The sparse chain is deterministic given the seed.
	m2, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := m1.Raw().Assignments, m2.Raw().Assignments
	for d := range a {
		for i := range a[d] {
			if a[d][i] != b[d][i] {
				t.Fatal("sparse fit is not deterministic with a fixed seed")
			}
		}
	}
	// It still recovers the planted topics on the trivially-separable
	// fixture, and keeps every token assigned.
	var tokens int
	for _, n := range m1.Raw().TokenCounts {
		tokens += n
	}
	if tokens != c.TotalTokens() {
		t.Fatalf("sparse fit lost tokens: %d of %d", tokens, c.TotalTokens())
	}
	for _, topic := range m1.Topics() {
		if topic.Weight == 0 {
			continue
		}
		words := topic.TopWords(3)
		if len(words) == 0 {
			t.Fatalf("topic %q has no top words", topic.Label)
		}
	}
	// An explicit SamplerSerial must reproduce the SamplerAuto chain at
	// Threads <= 1: auto is documented as the historical serial default.
	base := Options{Lambda: &LambdaPrior{Fixed: true, Lambda: 1}, Iterations: 10, Seed: 4}
	auto, err := Fit(c, k, base)
	if err != nil {
		t.Fatal(err)
	}
	base.Sampler = SamplerSerial
	explicit, err := Fit(c, k, base)
	if err != nil {
		t.Fatal(err)
	}
	a, b = auto.Raw().Assignments, explicit.Raw().Assignments
	for d := range a {
		for i := range a[d] {
			if a[d][i] != b[d][i] {
				t.Fatal("explicit SamplerSerial diverged from SamplerAuto")
			}
		}
	}
}

func TestLabelers(t *testing.T) {
	c, k := buildFixture(t)
	for _, kind := range []LabelerKind{LabelJSDivergence, LabelTFIDFCosine, LabelCounting, LabelPMI} {
		l, err := NewLabeler(kind, c, k)
		if err != nil {
			t.Fatalf("kind %d: %v", kind, err)
		}
		if l == nil {
			t.Fatalf("kind %d: nil labeler", kind)
		}
	}
	if _, err := NewLabeler(LabelerKind(99), c, k); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestWrapHelpers(t *testing.T) {
	c, k := buildFixture(t)
	if WrapCorpus(c.Internal()).NumDocuments() != c.NumDocuments() {
		t.Fatal("WrapCorpus round trip failed")
	}
	if WrapKnowledgeSource(k.Internal()).NumArticles() != k.NumArticles() {
		t.Fatal("WrapKnowledgeSource round trip failed")
	}
}
