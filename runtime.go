package sourcelda

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"sourcelda/internal/core"
	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/persist"
	"sourcelda/internal/textproc"
)

// Runtime is a continuously learning Source-LDA chain: where Fit trains and
// exports an immutable Model, FitRuntime trains and keeps the Gibbs chain
// warm, so streamed documents can be folded in as real count updates
// (Append), point-in-time Models can be snapshotted for serving at any
// moment (Snapshot), and the chain can be consolidated by a full retrain
// from its own checkpoint (Compact). This collapses the old frozen/warm
// split — the same counts that back the latest published snapshot absorb
// the next streamed document.
//
// All methods are safe for concurrent use: one mutex serializes every chain
// mutation, which is exactly the discipline core.ChainRuntime requires.
// Determinism survives the wrapper — appends draw from the chain's
// checkpointed RNG stream, so SaveChain → LoadChainRuntime → Append yields
// the same chain the uninterrupted runtime would have.
type Runtime struct {
	mu       sync.Mutex
	c        *corpus.Corpus
	k        *knowledge.Source
	vocab    *textproc.Vocabulary
	opts     Options
	coreOpts core.Options
	chain    *core.Model
	appended int
	closed   bool
}

// ErrRuntimeClosed reports use of a Runtime after Close.
var ErrRuntimeClosed = errors.New("sourcelda: runtime is closed")

// FitRuntime trains Source-LDA exactly as Fit does — same options, same
// chain, same digest — but returns the live runtime instead of discarding
// the chain behind an immutable Model. Progress reporting and training
// checkpoints work as in Fit. The runtime holds a private copy of the
// corpus document list, so appended documents never mutate the caller's
// Corpus handle. Close the runtime when done.
func FitRuntime(c *Corpus, k *KnowledgeSource, opts Options) (*Runtime, error) {
	if c == nil || k == nil {
		return nil, errors.New("sourcelda: nil corpus or knowledge source")
	}
	private := &corpus.Corpus{
		Docs:  append([]*corpus.Document(nil), c.c.Docs...),
		Vocab: c.c.Vocab,
	}
	pc := &Corpus{c: private}
	coreOpts := coreOptions(pc, k, opts)
	m, err := core.NewModel(private, k.s, coreOpts)
	if err != nil {
		return nil, err
	}
	if err := runTraining(m, pc, opts, coreOpts.Iterations); err != nil {
		m.Close()
		return nil, err
	}
	return &Runtime{
		c:        private,
		k:        k.s,
		vocab:    private.Vocab,
		opts:     opts,
		coreOpts: coreOpts,
		chain:    m,
	}, nil
}

// Append tokenizes each text against the training vocabulary, drops
// out-of-vocabulary tokens, and folds the surviving documents into the warm
// chain with foldInSweeps document-local Gibbs sweeps each (see
// core.ChainRuntime.AppendDocs). Texts left with no in-vocabulary tokens
// are skipped, mirroring inference. It returns how many documents were
// actually appended.
func (rt *Runtime) Append(texts []string, foldInSweeps int) (int, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, ErrRuntimeClosed
	}
	docs := make([]*corpus.Document, 0, len(texts))
	for _, text := range texts {
		ids := encodeForInference(rt.vocab, text)
		words := make([]int, 0, len(ids))
		for _, id := range ids {
			if id >= 0 {
				words = append(words, id)
			}
		}
		if len(words) == 0 {
			continue
		}
		docs = append(docs, &corpus.Document{
			Name:  fmt.Sprintf("fed-%d", rt.appended+len(docs)),
			Words: words,
		})
	}
	if len(docs) == 0 {
		return 0, nil
	}
	if err := rt.chain.AppendDocs(docs, foldInSweeps); err != nil {
		return 0, err
	}
	rt.appended += len(docs)
	return len(docs), nil
}

// Snapshot publishes the chain's current state as an immutable Model — the
// republish primitive of continuous learning. The model's inference view is
// the runtime's own frozen snapshot (core.ChainRuntime.Freeze), so serving
// reads a point-in-time view of the very counts later Appends keep
// updating. The snapshot shares nothing mutable with the runtime.
func (rt *Runtime) Snapshot() (*Model, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, ErrRuntimeClosed
	}
	f := rt.chain.Freeze()
	m := &Model{res: rt.chain.Result(), vocab: rt.vocab, source: rt.k, info: trainedInfo(rt.coreOpts)}
	m.frozenOnce.Do(func() { m.frozen = f })
	return m, nil
}

// NewInferrer snapshots the chain and opens a reusable inference session
// over the snapshot; see Model.NewInferrer.
func (rt *Runtime) NewInferrer(opts InferOptions) (*Inferrer, error) {
	m, err := rt.Snapshot()
	if err != nil {
		return nil, err
	}
	return m.NewInferrer(opts)
}

// Compact consolidates the chain: it checkpoints, rebuilds a fresh chain
// from the checkpoint (count slabs recomputed exactly from the
// assignments), and retrains it for the given number of full-corpus sweeps
// so appended documents finally influence the rest of the corpus — the
// heavyweight counterpart to Append's document-local fold-in. The rebuilt
// chain continues the same checkpoint/digest lineage: its options digest is
// unchanged, and with sweeps == 0 its state is bit-identical to the chain
// it replaced.
func (rt *Runtime) Compact(sweeps int) error {
	if sweeps < 0 {
		return fmt.Errorf("sourcelda: compaction sweep count %d is negative", sweeps)
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return ErrRuntimeClosed
	}
	fresh, err := core.Restore(rt.c, rt.k, rt.coreOpts, rt.chain.Checkpoint())
	if err != nil {
		return err
	}
	if sweeps > 0 {
		fresh.Run(sweeps)
	}
	old := rt.chain
	rt.chain = fresh
	old.Close()
	return nil
}

// HeldOutPerplexity scores held-out raw texts against the chain's current
// state (lower is better; see core.ChainRuntime.HeldOutPerplexity).
// Out-of-vocabulary tokens are dropped; texts with no surviving tokens are
// skipped. Comparing the value before and after feeding the same texts
// measures what continuous learning bought.
func (rt *Runtime) HeldOutPerplexity(texts []string, iterations, burnIn int, seed int64) (float64, error) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return 0, ErrRuntimeClosed
	}
	test := corpus.NewWithVocab(rt.vocab)
	for i, text := range texts {
		ids := encodeForInference(rt.vocab, text)
		words := make([]int, 0, len(ids))
		for _, id := range ids {
			if id >= 0 {
				words = append(words, id)
			}
		}
		if len(words) == 0 {
			continue
		}
		test.AddDocument(&corpus.Document{Name: fmt.Sprintf("held-out-%d", i), Words: words})
	}
	return rt.chain.HeldOutPerplexity(test, iterations, burnIn, seed)
}

// Docs returns the number of documents the chain currently covers,
// including appended ones.
func (rt *Runtime) Docs() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.chain.NumDocs()
}

// AppendedDocs returns how many documents Append has folded in.
func (rt *Runtime) AppendedDocs() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.appended
}

// Sweeps returns the number of completed full-corpus sweeps.
func (rt *Runtime) Sweeps() int {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.chain.Sweeps()
}

// ChainDigest returns the 16-hex-digit chain-options fingerprint — constant
// across Append, Compact and SaveChain/LoadChainRuntime round-trips, which
// is what makes a republished bundle traceable to its training lineage.
func (rt *Runtime) ChainDigest() string {
	return fmt.Sprintf("%016x", rt.coreOpts.ChainDigest())
}

// Close releases the chain. Further method calls fail with ErrRuntimeClosed.
func (rt *Runtime) Close() error {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil
	}
	rt.closed = true
	rt.chain.Close()
	return nil
}

// chainArchiveFormat tags SaveChain output.
const chainArchiveFormat = "sourcelda-chain-v1"

// chainArchiveOptions mirrors the chain-shaping subset of Options — the
// fields a loaded runtime needs to rebuild the identical chain. The func
// fields (Progress, Checkpoint) are deliberately absent: they shape
// reporting, not the chain.
type chainArchiveOptions struct {
	FreeTopics      int          `json:"free_topics"`
	Alpha           float64      `json:"alpha,omitempty"`
	Beta            float64      `json:"beta,omitempty"`
	Lambda          *LambdaPrior `json:"lambda,omitempty"`
	Iterations      int          `json:"iterations,omitempty"`
	Seed            int64        `json:"seed,omitempty"`
	Threads         int          `json:"threads,omitempty"`
	Sampler         Sampler      `json:"sampler,omitempty"`
	Shards          int          `json:"shards,omitempty"`
	TraceLikelihood bool         `json:"trace_likelihood,omitempty"`
}

type chainArchiveHeader struct {
	Format   string              `json:"format"`
	Options  chainArchiveOptions `json:"options"`
	Appended int                 `json:"appended_docs"`
}

func (o chainArchiveOptions) facade() Options {
	return Options{
		FreeTopics:      o.FreeTopics,
		Alpha:           o.Alpha,
		Beta:            o.Beta,
		Lambda:          o.Lambda,
		Iterations:      o.Iterations,
		Seed:            o.Seed,
		Threads:         o.Threads,
		Sampler:         o.Sampler,
		Shards:          o.Shards,
		TraceLikelihood: o.TraceLikelihood,
	}
}

// writeSection frames one archive section as a little-endian uint64 length
// plus payload, so binary sections (the checkpoint frame) can follow JSON
// ones without delimiter ambiguity.
func writeSection(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// maxChainSectionBytes bounds a single archive section (1 GiB) so a
// corrupted length prefix cannot trigger an absurd allocation.
const maxChainSectionBytes = 1 << 30

func readSection(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	if n > maxChainSectionBytes {
		return nil, fmt.Errorf("sourcelda: chain archive section of %d bytes exceeds the %d-byte limit", n, maxChainSectionBytes)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// SaveChain archives the complete learning state — corpus (including
// appended documents), knowledge source, chain-shaping options and a full
// chain checkpoint — as one gzip stream. LoadChainRuntime reconstructs a
// runtime that continues this chain bit for bit, so a serving process can
// hand its warm chain to a successor instead of retraining.
func (rt *Runtime) SaveChain(w io.Writer) error {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return ErrRuntimeClosed
	}
	ck := rt.chain.Checkpoint()
	docs := append([]*corpus.Document(nil), rt.c.Docs...)
	header := chainArchiveHeader{
		Format: chainArchiveFormat,
		Options: chainArchiveOptions{
			FreeTopics:      rt.opts.FreeTopics,
			Alpha:           rt.opts.Alpha,
			Beta:            rt.opts.Beta,
			Lambda:          rt.opts.Lambda,
			Iterations:      rt.opts.Iterations,
			Seed:            rt.opts.Seed,
			Threads:         rt.opts.Threads,
			Sampler:         rt.opts.Sampler,
			Shards:          rt.opts.Shards,
			TraceLikelihood: rt.opts.TraceLikelihood,
		},
		Appended: rt.appended,
	}
	src := rt.k
	vocab := rt.vocab
	rt.mu.Unlock()

	snapshot := &corpus.Corpus{Docs: docs, Vocab: vocab}
	gz := gzip.NewWriter(w)
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(header); err != nil {
		return err
	}
	if err := writeSection(gz, buf.Bytes()); err != nil {
		return err
	}
	buf.Reset()
	if err := persist.SaveCorpus(&buf, snapshot); err != nil {
		return err
	}
	if err := writeSection(gz, buf.Bytes()); err != nil {
		return err
	}
	buf.Reset()
	if err := persist.SaveSource(&buf, src); err != nil {
		return err
	}
	if err := writeSection(gz, buf.Bytes()); err != nil {
		return err
	}
	buf.Reset()
	if err := persist.SaveCheckpoint(&buf, ck); err != nil {
		return err
	}
	if err := writeSection(gz, buf.Bytes()); err != nil {
		return err
	}
	return gz.Close()
}

// SaveChainFile writes a chain archive atomically: to a temp file in the
// destination directory, then renamed into place.
func (rt *Runtime) SaveChainFile(path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".chain-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := rt.SaveChain(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadChainRuntime reconstructs a warm runtime from a SaveChain archive.
// The restored chain continues the archived one bit for bit: same counts,
// same assignments, same RNG stream positions, same options digest.
func LoadChainRuntime(r io.Reader) (*Runtime, error) {
	gz, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("sourcelda: chain archive: %w", err)
	}
	defer gz.Close()
	headerRaw, err := readSection(gz)
	if err != nil {
		return nil, fmt.Errorf("sourcelda: chain archive header: %w", err)
	}
	var header chainArchiveHeader
	if err := json.Unmarshal(headerRaw, &header); err != nil {
		return nil, fmt.Errorf("sourcelda: chain archive header: %w", err)
	}
	if header.Format != chainArchiveFormat {
		return nil, fmt.Errorf("sourcelda: unsupported chain archive format %q", header.Format)
	}
	corpusRaw, err := readSection(gz)
	if err != nil {
		return nil, fmt.Errorf("sourcelda: chain archive corpus: %w", err)
	}
	c, err := persist.LoadCorpus(bytes.NewReader(corpusRaw))
	if err != nil {
		return nil, err
	}
	sourceRaw, err := readSection(gz)
	if err != nil {
		return nil, fmt.Errorf("sourcelda: chain archive source: %w", err)
	}
	src, err := persist.LoadSource(bytes.NewReader(sourceRaw))
	if err != nil {
		return nil, err
	}
	ckRaw, err := readSection(gz)
	if err != nil {
		return nil, fmt.Errorf("sourcelda: chain archive checkpoint: %w", err)
	}
	ck, err := persist.LoadCheckpoint(bytes.NewReader(ckRaw))
	if err != nil {
		return nil, err
	}
	opts := header.Options.facade()
	coreOpts := coreOptions(&Corpus{c: c}, &KnowledgeSource{s: src}, opts)
	chain, err := core.Restore(c, src, coreOpts, ck)
	if err != nil {
		return nil, err
	}
	return &Runtime{
		c:        c,
		k:        src,
		vocab:    c.Vocab,
		opts:     opts,
		coreOpts: coreOpts,
		chain:    chain,
		appended: header.Appended,
	}, nil
}

// LoadChainRuntimeFile loads a chain archive from disk.
func LoadChainRuntimeFile(path string) (*Runtime, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadChainRuntime(f)
}
