package sourcelda

import (
	"errors"
	"math"
	"testing"
)

func fitFixtureModel(t *testing.T, opts Options) *Model {
	t.Helper()
	c, k := buildFixture(t)
	m, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInferHeldOutText(t *testing.T) {
	m := fitFixtureModel(t, Options{
		Lambda: &LambdaPrior{Fixed: true, Lambda: 1}, Iterations: 60, Seed: 7,
	})
	inf, err := m.Infer("pencil ruler notebook eraser pencil unseenword", InferOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if inf.KnownTokens != 5 || inf.UnknownTokens != 1 {
		t.Fatalf("known=%d unknown=%d", inf.KnownTokens, inf.UnknownTokens)
	}
	var sum float64
	for _, p := range inf.Topics {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mixture sums to %v", sum)
	}
	top := m.TopTopics(inf, 1)
	if len(top) != 1 || top[0].Label != "School Supplies" {
		t.Fatalf("school text tagged %v", top)
	}
	if !top[0].IsSourceTopic {
		t.Fatal("top topic should be labeled (source) topic")
	}

	// Same labeled topic set as training, in model order.
	if len(inf.Topics) != len(m.Raw().Labels) {
		t.Fatal("mixture not over the training topic set")
	}

	// Deterministic given the seed.
	again, err := m.Infer("pencil ruler notebook eraser pencil unseenword", InferOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range inf.Topics {
		if inf.Topics[i] != again.Topics[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestInferNoKnownTokens(t *testing.T) {
	m := fitFixtureModel(t, Options{
		Lambda: &LambdaPrior{Fixed: true, Lambda: 1}, Iterations: 20, Seed: 1,
	})
	if _, err := m.Infer("zzz qqq completely unseen", InferOptions{}); !errors.Is(err, ErrNoKnownTokens) {
		t.Fatalf("err = %v, want ErrNoKnownTokens", err)
	}
	if _, err := m.Infer("", InferOptions{}); !errors.Is(err, ErrNoKnownTokens) {
		t.Fatalf("empty text err = %v, want ErrNoKnownTokens", err)
	}
	// Batch: unknown-only entries come back nil, known entries still score.
	out, err := m.InferBatch([]string{"pencil ruler", "zzz qqq"}, InferOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] == nil || out[1] != nil {
		t.Fatalf("batch = [%v, %v], want [result, nil]", out[0], out[1])
	}
}

// TestInferBatchMatchesSingle is the facade-level acceptance criterion:
// InferBatch of N documents matches N independent Infer calls bit-for-bit,
// at any worker count.
func TestInferBatchMatchesSingle(t *testing.T) {
	m := fitFixtureModel(t, Options{
		Lambda: &LambdaPrior{Fixed: true, Lambda: 1}, Iterations: 40, Seed: 7,
	})
	texts := []string{
		"pencil ruler eraser",
		"baseball umpire inning glove baseball",
		"pencil baseball notebook pitcher",
		"paper paper pencil",
	}
	opts := InferOptions{Seed: 11}
	singles := make([]*DocumentInference, len(texts))
	for i, text := range texts {
		var err error
		singles[i], err = m.Infer(text, opts)
		if err != nil {
			t.Fatal(err)
		}
	}
	for _, workers := range []int{1, 3} {
		opts.Workers = workers
		batch, err := m.InferBatch(texts, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range texts {
			for topic := range singles[i].Topics {
				if batch[i].Topics[topic] != singles[i].Topics[topic] {
					t.Fatalf("workers=%d doc %d diverged from single Infer", workers, i)
				}
			}
		}
	}
}
