package sourcelda

import (
	"path/filepath"
	"reflect"
	"testing"
)

func fitRuntimeFixture(t *testing.T) *Runtime {
	t.Helper()
	c, k := buildFixture(t)
	rt, err := FitRuntime(c, k, Options{FreeTopics: 1, Iterations: 40, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

func TestRuntimeAppendAndSnapshot(t *testing.T) {
	rt := fitRuntimeFixture(t)
	before := rt.Docs()
	digest := rt.ChainDigest()

	pre, err := rt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	texts := []string{
		"pencil ruler notebook eraser paper pencil",
		"baseball pitcher umpire glove inning baseball",
		"quasar neutrino", // no in-vocabulary tokens: skipped, not an error
	}
	n, err := rt.Append(texts, 3)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("appended %d docs, want 2", n)
	}
	if rt.Docs() != before+2 || rt.AppendedDocs() != 2 {
		t.Fatalf("docs %d appended %d, want %d and 2", rt.Docs(), rt.AppendedDocs(), before+2)
	}
	if rt.ChainDigest() != digest {
		t.Fatalf("append changed chain digest %s -> %s", digest, rt.ChainDigest())
	}

	// The pre-feed snapshot is isolated from the mutation; a fresh snapshot
	// serves the grown chain, and both infer cleanly.
	post, err := rt.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Model{pre, post} {
		d, err := m.Infer("pencil ruler eraser", InferOptions{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		if d.KnownTokens != 3 {
			t.Fatalf("known tokens %d, want 3", d.KnownTokens)
		}
	}
	if pre.BundleInfo().ChainDigest != post.BundleInfo().ChainDigest {
		t.Fatal("snapshots disagree on chain digest")
	}

	inf, err := rt.NewInferrer(InferOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer inf.Close()
	if _, err := inf.Infer("baseball umpire"); err != nil {
		t.Fatal(err)
	}
}

func TestRuntimeFeedImprovesHeldOutPerplexity(t *testing.T) {
	rt := fitRuntimeFixture(t)
	held := []string{
		"pencil pencil baseball ruler umpire notebook pitcher paper glove eraser",
		"baseball pencil inning ruler glove notebook umpire paper pitcher eraser",
	}
	p0, err := rt.HeldOutPerplexity(held, 30, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := rt.Append(held, 5); err != nil {
			t.Fatal(err)
		}
	}
	if err := rt.Compact(10); err != nil {
		t.Fatal(err)
	}
	p1, err := rt.HeldOutPerplexity(held, 30, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !(p1 < p0) {
		t.Fatalf("feeding held-out docs did not improve their perplexity: before %v after %v", p0, p1)
	}
}

func TestRuntimeCompactPreservesLineage(t *testing.T) {
	rt := fitRuntimeFixture(t)
	if _, err := rt.Append([]string{"pencil ruler baseball umpire"}, 2); err != nil {
		t.Fatal(err)
	}
	digest := rt.ChainDigest()
	before := rt.chain.Checkpoint()

	// A zero-sweep compaction is a pure rebuild: bit-identical state.
	if err := rt.Compact(0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rt.chain.Checkpoint(), before) {
		t.Fatal("zero-sweep compaction changed chain state")
	}

	sweeps := rt.Sweeps()
	if err := rt.Compact(5); err != nil {
		t.Fatal(err)
	}
	if rt.Sweeps() != sweeps+5 {
		t.Fatalf("compaction ran to sweep %d, want %d", rt.Sweeps(), sweeps+5)
	}
	if rt.ChainDigest() != digest {
		t.Fatalf("compaction broke digest lineage %s -> %s", digest, rt.ChainDigest())
	}
	if err := rt.Compact(-1); err == nil {
		t.Fatal("negative compaction sweeps accepted")
	}
}

func TestRuntimeChainArchiveRoundTrip(t *testing.T) {
	rt := fitRuntimeFixture(t)
	if _, err := rt.Append([]string{"pencil notebook eraser", "baseball glove inning"}, 2); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.chain")
	if err := rt.SaveChainFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadChainRuntimeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()

	if loaded.Docs() != rt.Docs() || loaded.Sweeps() != rt.Sweeps() || loaded.AppendedDocs() != rt.AppendedDocs() {
		t.Fatalf("loaded runtime shape %d/%d/%d, want %d/%d/%d",
			loaded.Docs(), loaded.Sweeps(), loaded.AppendedDocs(),
			rt.Docs(), rt.Sweeps(), rt.AppendedDocs())
	}
	if loaded.ChainDigest() != rt.ChainDigest() {
		t.Fatalf("archive changed chain digest %s -> %s", rt.ChainDigest(), loaded.ChainDigest())
	}

	// Continuation determinism: both runtimes absorb the same stream and
	// must land on bit-identical chains.
	stream := []string{"pencil pencil umpire ruler", "baseball eraser pitcher paper"}
	if _, err := rt.Append(stream, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := loaded.Append(stream, 3); err != nil {
		t.Fatal(err)
	}
	a, b := rt.chain.Checkpoint(), loaded.chain.Checkpoint()
	a.IterationTimes, b.IterationTimes = nil, nil
	if !reflect.DeepEqual(a, b) {
		t.Fatal("archive round-trip diverged on continued appends")
	}
}

func TestRuntimeClosed(t *testing.T) {
	rt := fitRuntimeFixture(t)
	if err := rt.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Close(); err != nil {
		t.Fatal("second close errored")
	}
	if _, err := rt.Append([]string{"pencil"}, 1); err != ErrRuntimeClosed {
		t.Fatalf("Append after close: %v", err)
	}
	if _, err := rt.Snapshot(); err != ErrRuntimeClosed {
		t.Fatalf("Snapshot after close: %v", err)
	}
	if err := rt.Compact(1); err != ErrRuntimeClosed {
		t.Fatalf("Compact after close: %v", err)
	}
	if _, err := rt.HeldOutPerplexity([]string{"pencil"}, 10, 2, 1); err != ErrRuntimeClosed {
		t.Fatalf("HeldOutPerplexity after close: %v", err)
	}
	if err := rt.SaveChainFile(filepath.Join(t.TempDir(), "x.chain")); err != ErrRuntimeClosed {
		t.Fatalf("SaveChainFile after close: %v", err)
	}
}
