package sourcelda

import (
	"bytes"
	"strings"
	"testing"

	"sourcelda/internal/persist"
)

func TestSaveLoadCorpusAndSource(t *testing.T) {
	c, k := buildFixture(t)
	var cb, kb bytes.Buffer
	if err := SaveCorpus(&cb, c); err != nil {
		t.Fatal(err)
	}
	if err := SaveKnowledgeSource(&kb, k); err != nil {
		t.Fatal(err)
	}
	c2, err := LoadCorpus(&cb)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := LoadKnowledgeSource(&kb)
	if err != nil {
		t.Fatal(err)
	}
	if c2.NumDocuments() != c.NumDocuments() || c2.TotalTokens() != c.TotalTokens() {
		t.Fatal("corpus changed in round trip")
	}
	if strings.Join(k2.Labels(), ",") != strings.Join(k.Labels(), ",") {
		t.Fatal("labels changed in round trip")
	}
	vocab := c2.Vocabulary()
	if len(vocab) != c.VocabularySize() {
		t.Fatalf("vocabulary size %d, want %d", len(vocab), c.VocabularySize())
	}
	// A model trained on the loaded pair behaves identically to one trained
	// on the originals (same seed).
	opts := Options{Lambda: &LambdaPrior{Fixed: true, Lambda: 1}, Iterations: 20, Seed: 5}
	m1, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(c2, k2, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, b := m1.Raw().Assignments, m2.Raw().Assignments
	for d := range a {
		for i := range a[d] {
			if a[d][i] != b[d][i] {
				t.Fatal("loaded pair trains differently")
			}
		}
	}
}

func TestSaveLoadModel(t *testing.T) {
	c, k := buildFixture(t)
	m, err := Fit(c, k, Options{
		Lambda:     &LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 50,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf, c, k)
	if err != nil {
		t.Fatal(err)
	}
	orig := m.Topics()
	loaded := back.Topics()
	if len(orig) != len(loaded) {
		t.Fatal("topic count changed")
	}
	for i := range orig {
		if orig[i].Label != loaded[i].Label {
			t.Fatalf("topic %d label %q → %q", i, orig[i].Label, loaded[i].Label)
		}
		ow, lw := orig[i].TopWords(3), loaded[i].TopWords(3)
		for j := range ow {
			if ow[j] != lw[j] {
				t.Fatal("top words changed")
			}
		}
	}
}

func TestLoadModelRejectsMismatchedCorpus(t *testing.T) {
	c, k := buildFixture(t)
	m, err := Fit(c, k, Options{
		Lambda: &LambdaPrior{Fixed: true, Lambda: 1}, Iterations: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	// A corpus with a different vocabulary must be rejected.
	other := NewCorpusBuilder()
	other.AddDocument("d", "completely different words here")
	oc, ok2, err := other.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModel(&buf, oc, ok2); err == nil {
		t.Fatal("mismatched corpus accepted")
	}
}

// TestBundleRoundTrip covers the full deployment cycle through the public
// facade — train (with document-sharded parallel sweeps), SaveBundle,
// LoadBundle, Infer — and checks the reloaded model is interchangeable with
// the original.
func TestBundleRoundTrip(t *testing.T) {
	c, k := buildFixture(t)
	m, err := Fit(c, k, Options{
		Lambda:     &LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 40,
		Seed:       9,
		Shards:     2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveBundle(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig, loaded := m.Topics(), back.Topics()
	if len(orig) != len(loaded) {
		t.Fatal("topic count changed")
	}
	for i := range orig {
		if orig[i].Label != loaded[i].Label {
			t.Fatalf("topic %d label %q → %q", i, orig[i].Label, loaded[i].Label)
		}
		ow, lw := orig[i].TopWords(3), loaded[i].TopWords(3)
		for j := range ow {
			if ow[j] != lw[j] {
				t.Fatal("top words changed through the bundle")
			}
		}
	}
	// Fold-in inference through the reloaded bundle matches the original
	// model bit-for-bit (same frozen conditionals, same seed, same stream).
	opts := InferOptions{Seed: 4}
	a, err := m.Infer("pencil ruler notebook", opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := back.Infer("pencil ruler notebook", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Topics {
		if a.Topics[i] != b.Topics[i] {
			t.Fatal("bundle-loaded model infers differently")
		}
	}
	if _, err := LoadBundle(bytes.NewReader([]byte("not a bundle"))); err == nil {
		t.Fatal("garbage bundle accepted")
	}
	if err := SaveBundle(&buf, nil); err == nil {
		t.Fatal("nil model accepted")
	}
}

// TestLoadModelRejectsTamperedSnapshot covers the validation satellite: a
// snapshot whose theta widths, label count, or source indices disagree with
// the corpus/knowledge source must fail at load, not panic later.
func TestLoadModelRejectsTamperedSnapshot(t *testing.T) {
	c, k := buildFixture(t)
	m, err := Fit(c, k, Options{
		Lambda: &LambdaPrior{Fixed: true, Lambda: 1}, Iterations: 5, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	tamper := func(name string, mutate func(*Result)) {
		t.Helper()
		var buf bytes.Buffer
		if err := SaveModel(&buf, m); err != nil {
			t.Fatal(err)
		}
		res, err := persist.LoadResult(&buf)
		if err != nil {
			t.Fatal(err)
		}
		mutate(res)
		buf.Reset()
		if err := persist.SaveResult(&buf, res); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadModel(&buf, c, k); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	tamper("truncated theta row", func(r *Result) { r.Theta[0] = r.Theta[0][:1] })
	tamper("dropped label", func(r *Result) {
		r.Labels = r.Labels[:1]
		r.SourceIndices = r.SourceIndices[:1]
	})
	tamper("out-of-range source index", func(r *Result) { r.SourceIndices[0] = k.NumArticles() + 5 })
	tamper("missing token counts", func(r *Result) { r.TokenCounts = nil })
}

func TestNilArguments(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCorpus(&buf, nil); err == nil {
		t.Error("nil corpus accepted")
	}
	if err := SaveKnowledgeSource(&buf, nil); err == nil {
		t.Error("nil source accepted")
	}
	if err := SaveModel(&buf, nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := LoadModel(&buf, nil, nil); err == nil {
		t.Error("nil corpus/source accepted in LoadModel")
	}
	if _, err := SelectLambdaPrior(nil, nil, Options{}, nil, nil); err == nil {
		t.Error("nil inputs accepted in SelectLambdaPrior")
	}
}

func TestSelectLambdaPrior(t *testing.T) {
	c, k := buildFixture(t)
	res, err := SelectLambdaPrior(c, k, Options{FreeTopics: 1, Seed: 3},
		[]float64{0.3, 0.9}, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Surface) != 2 {
		t.Fatalf("surface has %d points, want 2", len(res.Surface))
	}
	if res.Perplexity <= 1 {
		t.Fatalf("perplexity %v", res.Perplexity)
	}
	if res.Mu != 0.3 && res.Mu != 0.9 {
		t.Fatalf("selected µ=%v off the grid", res.Mu)
	}
	for _, p := range res.Surface {
		if p[2] < res.Perplexity {
			t.Fatal("selected pair is not the minimum")
		}
	}
}
