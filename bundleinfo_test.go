package sourcelda

import (
	"bytes"
	"strings"
	"testing"
)

func bundleFixture(t *testing.T) (*Corpus, *KnowledgeSource) {
	t.Helper()
	b := NewCorpusBuilder()
	for i := 0; i < 6; i++ {
		b.AddDocument("school", "pencil ruler eraser pencil notebook paper")
		b.AddDocument("ball", "baseball umpire pitcher baseball inning glove")
	}
	b.AddKnowledgeArticle("School Supplies", strings.Repeat("pencil ruler eraser notebook paper ", 10))
	b.AddKnowledgeArticle("Baseball", strings.Repeat("baseball umpire pitcher inning glove ", 10))
	c, k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return c, k
}

// TestBundleInfoProvenance: Fit stamps chain digest + training time; a
// named bundle carries name/version through a round trip; the digest is a
// pure function of the chain options (same options → same digest, changed
// chain-shaping option → different digest).
func TestBundleInfoProvenance(t *testing.T) {
	c, k := bundleFixture(t)
	opts := Options{Iterations: 20, Seed: 3}
	m, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	info := m.BundleInfo()
	if len(info.ChainDigest) != 16 {
		t.Fatalf("chain digest %q, want 16 hex digits", info.ChainDigest)
	}
	if info.TrainedAt.IsZero() {
		t.Fatal("TrainedAt not stamped")
	}
	if info.Name != "" || info.Version != "" {
		t.Fatalf("unnamed model carries identity %+v", info)
	}

	var buf bytes.Buffer
	if err := SaveBundleNamed(&buf, m, "newswire", "2026-07-28.1"); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := back.BundleInfo()
	if got.Name != "newswire" || got.Version != "2026-07-28.1" {
		t.Fatalf("identity lost: %+v", got)
	}
	if got.ChainDigest != info.ChainDigest {
		t.Fatalf("digest changed in round trip: %q vs %q", got.ChainDigest, info.ChainDigest)
	}
	if !got.TrainedAt.Equal(info.TrainedAt) {
		t.Fatalf("trained-at changed in round trip: %v vs %v", got.TrainedAt, info.TrainedAt)
	}

	// Same chain options → same digest; a chain-shaping change → different.
	m2, err := Fit(c, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	if m2.BundleInfo().ChainDigest != info.ChainDigest {
		t.Fatal("identical chain options produced different digests")
	}
	m3, err := Fit(c, k, Options{Iterations: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if m3.BundleInfo().ChainDigest == info.ChainDigest {
		t.Fatal("different seed produced the same chain digest")
	}
}

// TestSaveBundlePreservesLoadedInfo: re-saving a loaded named bundle with
// plain SaveBundle keeps its identity (SaveBundle writes the model's own
// provenance).
func TestSaveBundlePreservesLoadedInfo(t *testing.T) {
	c, k := bundleFixture(t)
	m, err := Fit(c, k, Options{Iterations: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveBundleNamed(&buf, m, "a", "v9"); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := SaveBundle(&again, loaded); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(&again)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.BundleInfo(); got.Name != "a" || got.Version != "v9" {
		t.Fatalf("re-save dropped identity: %+v", got)
	}
}
