// Command benchgw is the gateway saturation gate: it boots a real
// two-replica cluster behind a gateway, drives it past its per-tenant
// admission rate, and verifies overload degrades the way the runbook
// promises — admitted requests answer 200, shed requests answer 429/503
// with a whole-second Retry-After, nothing else ever escapes, and the full
// gateway+replica lifecycle leaks no goroutines:
//
//	go run ./examples/benchgw -out BENCH_gateway.json
//
// The JSON report (throughput, latency quantiles, shed breakdown, goroutine
// accounting) is archived per commit by CI so the trend is visible in
// artifact history.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"sourcelda"
	"sourcelda/internal/gateway"
	"sourcelda/internal/obs"
	"sourcelda/internal/registry"
)

type report struct {
	Replicas      int     `json:"replicas"`
	Workers       int     `json:"workers"`
	Requests      int     `json:"requests"`
	TenantRate    float64 `json:"tenant_rate_per_s"`
	OK            int     `json:"ok"`
	RateLimited   int     `json:"rate_limited_429"`
	Unavailable   int     `json:"unavailable_503"`
	Unexpected    int     `json:"unexpected_status"`
	BadRetryAfter int     `json:"bad_retry_after"`
	DurationMs    float64 `json:"duration_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	OKP50Ms       float64 `json:"ok_p50_ms"`
	OKP99Ms       float64 `json:"ok_p99_ms"`
	GoroutinesAt0 int     `json:"goroutines_before"`
	GoroutinesEnd int     `json:"goroutines_after_teardown"`
	GoroutineLeak bool    `json:"goroutine_leak"`
}

func main() {
	out := flag.String("out", "BENCH_gateway.json", "file the JSON report is written to")
	requests := flag.Int("requests", 2000, "total requests offered")
	workers := flag.Int("workers", 32, "concurrent client workers")
	rate := flag.Float64("tenant-rate", 100, "admitted requests/second for the bench tenant (offered load must exceed it)")
	flag.Parse()
	if err := run(*out, *requests, *workers, *rate); err != nil {
		fmt.Fprintln(os.Stderr, "benchgw FAILED:", err)
		os.Exit(1)
	}
}

func run(out string, requests, workers int, rate float64) error {
	bundle, err := trainBundle()
	if err != nil {
		return err
	}
	r := report{Replicas: 2, Workers: workers, Requests: requests, TenantRate: rate}
	r.GoroutinesAt0 = runtime.NumGoroutine()

	// Two real replicas: registry + HTTP listener each, loaded from the same
	// bundle bytes (never a shared model instance).
	var regs []*registry.Registry
	var servers []*httptest.Server
	var specs []gateway.BackendSpec
	for i := 0; i < r.Replicas; i++ {
		reg := registry.New(registry.Config{BackendID: fmt.Sprintf("bench-%d", i), Logger: obs.Discard()})
		m, err := sourcelda.LoadBundle(strings.NewReader(string(bundle)))
		if err != nil {
			return err
		}
		if _, err := reg.Load(reg.DefaultModel(), "v1", m); err != nil {
			m.Close()
			return err
		}
		srv := httptest.NewServer(registry.NewServer(reg))
		regs = append(regs, reg)
		servers = append(servers, srv)
		specs = append(specs, gateway.BackendSpec{ID: fmt.Sprintf("bench-%d", i), URL: srv.URL})
	}

	g, err := gateway.New(gateway.Config{
		Backends:       specs,
		HealthInterval: 100 * time.Millisecond,
		TenantRate:     rate,
		TenantBurst:    rate / 5,
	})
	if err != nil {
		return err
	}
	gw := httptest.NewServer(g)

	payload := `{"text":"pencil ruler eraser notebook paper baseball umpire pitcher inning glove"}`
	var mu sync.Mutex
	var okLatencies []float64
	var wg sync.WaitGroup
	perWorker := requests / workers
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			defer client.CloseIdleConnections()
			for i := 0; i < perWorker; i++ {
				t0 := time.Now()
				req, _ := http.NewRequest(http.MethodPost, gw.URL+"/v1/infer", strings.NewReader(payload))
				req.Header.Set("Content-Type", "application/json")
				req.Header.Set("X-Tenant", "bench")
				resp, err := client.Do(req)
				if err != nil {
					mu.Lock()
					r.Unexpected++
					mu.Unlock()
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				d := time.Since(t0)
				mu.Lock()
				switch resp.StatusCode {
				case http.StatusOK:
					r.OK++
					okLatencies = append(okLatencies, float64(d)/float64(time.Millisecond))
				case http.StatusTooManyRequests:
					r.RateLimited++
					checkRetryAfter(&r, resp)
				case http.StatusServiceUnavailable:
					r.Unavailable++
					checkRetryAfter(&r, resp)
				default:
					r.Unexpected++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	r.DurationMs = float64(elapsed) / float64(time.Millisecond)
	r.ThroughputRPS = float64(workers*perWorker) / elapsed.Seconds()
	r.OKP50Ms = quantile(okLatencies, 0.50)
	r.OKP99Ms = quantile(okLatencies, 0.99)

	// Full teardown, then require the goroutine count back at the baseline
	// (network teardown is asynchronous; poll with a deadline).
	gw.Close()
	g.Close()
	for i := range servers {
		servers[i].Close()
		regs[i].Close()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		r.GoroutinesEnd = runtime.NumGoroutine()
		if r.GoroutinesEnd <= r.GoroutinesAt0+3 {
			break
		}
		if time.Now().After(deadline) {
			r.GoroutineLeak = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchgw: %d ok, %d rate-limited, %d unavailable in %.0fms (%.0f rps offered, ok p50 %.1fms p99 %.1fms) -> %s\n",
		r.OK, r.RateLimited, r.Unavailable, r.DurationMs, r.ThroughputRPS, r.OKP50Ms, r.OKP99Ms, out)

	switch {
	case r.Unexpected > 0:
		return fmt.Errorf("%d requests failed with unexpected status or transport error", r.Unexpected)
	case r.BadRetryAfter > 0:
		return fmt.Errorf("%d shed responses had a missing or malformed Retry-After", r.BadRetryAfter)
	case r.OK == 0:
		return fmt.Errorf("no request was admitted; admission control is over-shedding")
	case r.RateLimited == 0:
		return fmt.Errorf("no request was rate limited; the bench did not reach saturation")
	case r.GoroutineLeak:
		return fmt.Errorf("goroutine leak: %d before, %d after teardown", r.GoroutinesAt0, r.GoroutinesEnd)
	}
	return nil
}

// checkRetryAfter validates the shed contract: whole seconds, at least 1.
// Caller holds the report mutex.
func checkRetryAfter(r *report, resp *http.Response) {
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		r.BadRetryAfter++
	}
}

func quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// trainBundle fits the small two-topic bench model and serializes it.
func trainBundle() ([]byte, error) {
	b := sourcelda.NewCorpusBuilder()
	for i := 0; i < 10; i++ {
		b.AddDocument("school", "pencil ruler eraser pencil notebook paper")
		b.AddDocument("ball", "baseball umpire pitcher baseball inning glove")
	}
	b.AddKnowledgeArticle("School Supplies",
		strings.Repeat("pencil pencil ruler eraser notebook paper paper ", 20))
	b.AddKnowledgeArticle("Baseball",
		strings.Repeat("baseball baseball umpire pitcher inning glove ", 20))
	c, k, err := b.Build()
	if err != nil {
		return nil, err
	}
	m, err := sourcelda.Fit(c, k, sourcelda.Options{
		Lambda:     &sourcelda.LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 60,
		Seed:       1,
	})
	if err != nil {
		return nil, err
	}
	var buf strings.Builder
	if err := sourcelda.SaveBundle(&buf, m); err != nil {
		return nil, err
	}
	return []byte(buf.String()), nil
}
