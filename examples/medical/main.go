// Medical: the paper's §IV-D evaluation protocol on the MedlinePlus-style
// synthetic dictionary — the motivating clinical-informatics use case from
// the paper's introduction (labeling topics in clinical text against a
// medical knowledge source).
//
// A ground-truth corpus is generated from a subset of a large medical topic
// dictionary via the Source-LDA generative model; all four models (SRC-LDA,
// EDA, CTM, LDA) are fit blind and scored by token classification accuracy
// and sorted JS divergence of the document mixtures.
//
// Run: go run ./examples/medical
package main

import (
	"fmt"
	"log"

	"sourcelda/internal/core"
	"sourcelda/internal/ctm"
	"sourcelda/internal/eda"
	"sourcelda/internal/eval"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/labeling"
	"sourcelda/internal/lda"
	"sourcelda/internal/synth"
)

func main() {
	const (
		B     = 60 // dictionary size (paper: 578)
		live  = 25 // topics actually present (paper: 100)
		free  = 12
		iters = 120
	)
	data, err := synth.MedlineLike(synth.MedlineOptions{
		NumTopics:  B,
		LiveTopics: live,
		NumDocs:    300,
		AvgDocLen:  80,
		Alpha:      0.1,
		Mu:         0.7,
		Sigma:      0.3,
		Seed:       5,
	})
	if err != nil {
		log.Fatal(err)
	}
	c, src := data.Corpus, data.Source
	fmt.Printf("medical corpus: %d docs, %d tokens; dictionary: %d topics (%d live)\n",
		c.NumDocs(), c.TotalTokens(), src.Len(), live)
	fmt.Printf("live topics include: %s, %s, %s, ...\n\n",
		src.Label(data.Live[0]), src.Label(data.Live[1]), src.Label(data.Live[2]))

	truthTheta := data.Generated.TruthThetaOverActive()
	score := func(name string, assignments [][]int, mapping []int, theta [][]float64) {
		res, err := eval.ClassifyTokens(c, assignments, mapping)
		if err != nil {
			log.Fatal(err)
		}
		js, err := eval.SortedThetaJS(theta, truthTheta)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s accuracy %5.1f%%   Σ sorted JS(θ) %7.2f\n", name, res.Accuracy()*100, js)
	}

	fmt.Println("mixed regime (models see the full dictionary, not the live subset):")

	srcModel, err := core.Fit(c, src, core.Options{
		NumFreeTopics:    free,
		Alpha:            0.1,
		Beta:             0.01,
		LambdaMode:       core.LambdaIntegrated,
		Mu:               0.7,
		Sigma:            0.3,
		QuadraturePoints: 7,
		UseSmoothing:     true,
		PruneDeadTopics:  true,
		PruneMinDocs:     12,
		PruneMinTokens:   3,
		Iterations:       iters,
		Seed:             21,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srcModel.Close()
	mapping := make([]int, srcModel.NumTopics())
	for t := range mapping {
		mapping[t] = srcModel.SourceIndex(t)
	}
	reduced := srcModel.Result().ReduceToK(live)
	score("SRC-LDA", srcModel.Assignments(), mapping, reduced.Result.Theta)

	// λ posterior diagnostics: how much is each live topic estimated to
	// deviate from its dictionary entry?
	means := srcModel.LambdaPosteriorMeans()
	var lo, hi = 1.0, 0.0
	for _, m := range means {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	fmt.Printf("  (per-topic λ posterior means span [%.2f, %.2f])\n", lo, hi)

	edaModel, err := eda.Fit(c, src, eda.Options{Alpha: 0.1, Iterations: iters, Seed: 22})
	if err != nil {
		log.Fatal(err)
	}
	identity := make([]int, B)
	for i := range identity {
		identity[i] = i
	}
	score("EDA", edaModel.Assignments(), identity, edaModel.Theta())

	ctmModel, err := ctm.Fit(c, src, ctm.Options{
		NumFreeTopics: free, Alpha: 0.1, Beta: 0.01, Iterations: iters, Seed: 23,
	})
	if err != nil {
		log.Fatal(err)
	}
	cmapping := make([]int, ctmModel.NumTopics())
	for t := range cmapping {
		cmapping[t] = ctmModel.ConceptIndex(t)
	}
	score("CTM", ctmModel.Assignments(), cmapping, ctmModel.Theta())

	ldaModel, err := lda.Fit(c, lda.Options{
		NumTopics: live, Alpha: 0.1, Beta: 0.01, Iterations: iters, Seed: 24,
	})
	if err != nil {
		log.Fatal(err)
	}
	js := labeling.NewJSLabeler(src, c.VocabSize(), knowledge.DefaultEpsilon)
	score("LDA", ldaModel.Assignments(), labeling.LabelAll(js, ldaModel.Phi()), ldaModel.Theta())

	fmt.Println("\npaper Fig. 8 shape: SRC-LDA leads accuracy and has the lowest θ divergence;")
	fmt.Println("run cmd/experiments -run fig8a for the shape-checked version of this comparison.")
}
