// Command serving is a runnable walkthrough of the multi-model serving
// lifecycle (docs/OPERATIONS.md, docs/API.md):
//
//  1. train two models and write them as named, versioned bundles;
//  2. start one serving daemon (the same registry + HTTP stack cmd/srcldad
//     wires) with a watched models directory;
//  3. tag documents against the auto-loaded model;
//  4. hot-swap it to the second build over the admin API while requests
//     are in flight, verifying zero failures and that post-swap responses
//     match the new model;
//  5. scrape /metrics and check the per-model counters add up.
//
// Run it from the repository root:
//
//	go run ./examples/serving
//
// It exits non-zero on any deviation, so CI runs it as a serving smoke
// test alongside the unit suite.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"sourcelda"
	"sourcelda/internal/registry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "serving example FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("\nserving example PASSED")
}

func run() error {
	// ---- 1. Train two builds of the "stationery vs sports" tagger. ----
	// The second build adds a free topic: a visibly different model (its
	// mixtures are 3 wide, not 2) standing in for "retrained against an
	// updated knowledge source".
	fmt.Println("== training two bundles ==")
	v1, err := train(1, 0)
	if err != nil {
		return err
	}
	v2, err := train(2, 1)
	if err != nil {
		return err
	}

	dir, err := os.MkdirTemp("", "srclda-serving-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	modelsDir := filepath.Join(dir, "models")
	if err := os.Mkdir(modelsDir, 0o755); err != nil {
		return err
	}
	// Atomic drop: write to a temp name, rename into place — the pattern
	// the watcher documentation prescribes.
	if err := writeBundle(filepath.Join(modelsDir, "tagger.bundle"), v1, "tagger", "v1"); err != nil {
		return err
	}
	fmt.Println("wrote", filepath.Join(modelsDir, "tagger.bundle"), "(version v1)")

	// ---- 2. Start the daemon: registry + watcher + HTTP, as srcldad. ----
	reg := registry.New(registry.Config{
		Infer:        sourcelda.InferOptions{Seed: 42},
		DefaultModel: "tagger",
		BatchWindow:  time.Millisecond,
		Logger:       slog.New(slog.NewTextHandler(os.Stdout, nil)),
	})
	defer reg.Close()
	watcher := registry.NewWatcher(reg, modelsDir, 100*time.Millisecond)
	if err := watcher.Scan(); err != nil { // synchronous boot scan
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go watcher.Run(ctx)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: registry.NewServer(reg)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("daemon serving on", base)

	// ---- 3. Tag documents against the watched-in model. ----
	fmt.Println("\n== tagging against v1 ==")
	texts := []string{
		"pencil ruler notebook eraser",
		"baseball umpire inning glove",
	}
	v1Responses := make(map[string]string)
	for _, text := range texts {
		body, err := infer(base, "tagger", text)
		if err != nil {
			return err
		}
		v1Responses[text] = body
		fmt.Printf("  %-32q → %s\n", text, topLabel(body))
	}

	// ---- 4. Hot-swap to v2 over the admin API, under load. ----
	fmt.Println("\n== hot-swapping to v2 under load ==")
	var wg sync.WaitGroup
	failures := make(chan error, 64)
	requests := 0
	for _, text := range texts {
		for i := 0; i < 8; i++ {
			requests++
			wg.Add(1)
			go func(text string) {
				defer wg.Done()
				if _, err := infer(base, "tagger", text); err != nil {
					failures <- err
				}
			}(text)
		}
	}
	var bundle bytes.Buffer
	if err := sourcelda.SaveBundleNamed(&bundle, v2, "tagger", "v2"); err != nil {
		return err
	}
	req, err := http.NewRequest(http.MethodPut, base+"/v1/models/tagger?version=v2", &bundle)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	swapBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("swap PUT: %d %s", resp.StatusCode, swapBody)
	}
	fmt.Println("  swap acknowledged:", strings.TrimSpace(string(swapBody)))
	wg.Wait()
	close(failures)
	for err := range failures {
		return fmt.Errorf("request failed during hot swap: %w", err)
	}
	fmt.Printf("  %d concurrent requests across the swap, zero failures\n", requests)

	// Post-swap responses come from v2: distinguishable from v1's.
	for _, text := range texts {
		body, err := infer(base, "tagger", text)
		if err != nil {
			return err
		}
		if body == v1Responses[text] {
			return fmt.Errorf("post-swap response for %q identical to v1's; swap had no effect", text)
		}
		fmt.Printf("  %-32q → %s (v2)\n", text, topLabel(body))
	}
	if err := expectVersion(base, "tagger", "v2"); err != nil {
		return err
	}

	// The watcher picks up a second model dropped next to the first.
	fmt.Println("\n== dropping a second model into the watched dir ==")
	if err := writeBundle(filepath.Join(modelsDir, "sports.bundle"), v1, "sports", "s1"); err != nil {
		return err
	}
	if err := waitFor(base, "sports"); err != nil {
		return err
	}
	fmt.Println("  sports.bundle auto-loaded; one process now serves both models")

	// ---- 5. Scrape /metrics and reconcile the counters. ----
	fmt.Println("\n== scraping /metrics ==")
	metrics, err := scrape(base)
	if err != nil {
		return err
	}
	want := float64(len(texts) + requests + len(texts)) // v1 probes + load + v2 probes
	got := metrics[`srcldad_requests_total{model="tagger",code="200"}`]
	if got != want {
		return fmt.Errorf("tagger 200s = %v, want %v", got, want)
	}
	if swaps := metrics[`srcldad_model_swaps_total{model="tagger"}`]; swaps != 1 {
		return fmt.Errorf("swap counter = %v, want 1", swaps)
	}
	if loaded := metrics[`srcldad_models_loaded`]; loaded != 2 {
		return fmt.Errorf("models loaded = %v, want 2", loaded)
	}
	fmt.Printf("  requests_total{tagger,200} = %.0f (matches the %0.f sent)\n", got, want)
	fmt.Printf("  model_swaps_total{tagger}  = 1, models_loaded = 2\n")
	// Latency is exposed as a fixed-bucket histogram; mean = sum/count.
	sum := metrics[`srcldad_request_latency_seconds_sum{model="tagger"}`]
	count := metrics[`srcldad_request_latency_seconds_count{model="tagger"}`]
	if count != want {
		return fmt.Errorf("latency histogram count = %v, want %v", count, want)
	}
	fmt.Printf("  mean latency               = %.1fms over %.0f requests\n", sum/count*1000, count)
	return nil
}

// train fits one build of the demo model.
func train(seed int64, freeTopics int) (*sourcelda.Model, error) {
	b := sourcelda.NewCorpusBuilder()
	for i := 0; i < 10; i++ {
		b.AddDocument("school", "pencil ruler eraser pencil notebook paper")
		b.AddDocument("ball", "baseball umpire pitcher baseball inning glove")
	}
	b.AddKnowledgeArticle("School Supplies",
		strings.Repeat("pencil pencil ruler eraser notebook paper paper ", 20))
	b.AddKnowledgeArticle("Baseball",
		strings.Repeat("baseball baseball umpire pitcher inning glove ", 20))
	c, k, err := b.Build()
	if err != nil {
		return nil, err
	}
	return sourcelda.Fit(c, k, sourcelda.Options{
		FreeTopics: freeTopics,
		Lambda:     &sourcelda.LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 60,
		Seed:       seed,
	})
}

// writeBundle writes a named bundle atomically into the watched directory.
func writeBundle(path string, m *sourcelda.Model, name, version string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := sourcelda.SaveBundleNamed(f, m, name, version); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// infer POSTs one document and returns the raw response body.
func infer(base, model, text string) (string, error) {
	body := fmt.Sprintf(`{"text":%q}`, text)
	resp, err := http.Post(base+"/v1/models/"+model+"/infer", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("infer %q: %d %s", text, resp.StatusCode, data)
	}
	return string(data), nil
}

// topLabel extracts the heaviest topic's label from an infer response.
func topLabel(body string) string {
	var out struct {
		Result struct {
			TopTopics []struct {
				Label  string  `json:"label"`
				Weight float64 `json:"weight"`
			} `json:"top_topics"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil || len(out.Result.TopTopics) == 0 {
		return "?"
	}
	t := out.Result.TopTopics[0]
	return fmt.Sprintf("%s (%.2f)", t.Label, t.Weight)
}

// expectVersion asserts the model's active version over the admin API.
func expectVersion(base, model, version string) error {
	resp, err := http.Get(base + "/v1/models/" + model)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var info struct {
		Version string `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return err
	}
	if info.Version != version {
		return fmt.Errorf("model %s serving version %q, want %q", model, info.Version, version)
	}
	return nil
}

// waitFor polls until the named model is loaded (the watcher's poll
// interval is 100ms, so this resolves quickly).
func waitFor(base, model string) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/models/" + model)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("model %s never appeared", model)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// scrape parses /metrics into metric{labels} → value.
func scrape(base string) (map[string]float64, error) {
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(string(data), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err == nil {
			out[key] = f
		}
	}
	return out, nil
}
