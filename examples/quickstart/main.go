// Quickstart: the paper's §I case study, end to end on the public API.
//
// Two three-word documents are modeled with two knowledge articles (School
// Supplies and Baseball). Plain LDA cannot reliably separate "pencil,
// pencil, umpire" from "ruler, ruler, baseball" into the right topics;
// Source-LDA uses the articles' word distributions as priors and recovers
// the ideal labeled assignments.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"

	"sourcelda"
)

const schoolArticle = `
pencil pencil pencil pencil pencil eraser eraser ruler ruler ruler notebook
notebook paper paper pen pen laptop book book backpack crayon marker glue
scissors classroom student school school supplies stationery binder folder
pencil ruler eraser paper`

const baseballArticle = `
baseball baseball baseball baseball pitcher pitcher batter batter umpire
umpire inning inning catcher outfield infield run bases stolen league league
stadium fans glove bat bat ball ball strike pitch team game game season
player players baseball umpire`

func main() {
	builder := sourcelda.NewCorpusBuilder()
	builder.AddDocument("d1", "pencil pencil umpire")
	builder.AddDocument("d2", "ruler ruler baseball")
	builder.AddKnowledgeArticle("School Supplies", strings.Repeat(schoolArticle, 3))
	builder.AddKnowledgeArticle("Baseball", strings.Repeat(baseballArticle, 3))

	corpus, source, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d documents, %d tokens, %d distinct words\n",
		corpus.NumDocuments(), corpus.TotalTokens(), corpus.VocabularySize())
	fmt.Printf("knowledge source: %v\n\n", source.Labels())

	model, err := sourcelda.Fit(corpus, source, sourcelda.Options{
		Lambda:     &sourcelda.LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 300,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("fitted topics (by corpus weight):")
	for _, topic := range model.Topics() {
		fmt.Printf("  %-16s weight=%.2f  top words: %s\n",
			topic.Label, topic.Weight, strings.Join(topic.TopWords(4), ", "))
	}

	fmt.Println("\nper-document topic mixtures:")
	for d := 0; d < corpus.NumDocuments(); d++ {
		theta, err := model.DocumentTopics(d)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  d%d: %v\n", d+1, compact(theta))
	}

	fmt.Println("\nideal outcome: pencil/ruler → School Supplies, umpire/baseball → Baseball")
}

func compact(xs []float64) []string {
	out := make([]string, len(xs))
	for i, x := range xs {
		out[i] = fmt.Sprintf("%.2f", x)
	}
	return out
}
