// Tuning: the paper's §III-C5a parameter-selection workflow plus model
// persistence.
//
// §IV-C sets µ and σ "by experimentally finding a local minimum value of
// perplexity". This example runs that grid search on a synthetic newswire
// corpus, prints the perplexity surface, refits with the selected prior,
// inspects the per-topic λ posteriors, and round-trips the fitted model
// through the JSON persistence layer.
//
// Run: go run ./examples/tuning
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"sourcelda/internal/core"
	"sourcelda/internal/persist"
	"sourcelda/internal/synth"
	"sourcelda/internal/textproc"
)

func main() {
	data, err := synth.ReutersLike(synth.ReutersOptions{
		NumCategories:  24,
		LiveCategories: 10,
		NumDocs:        200,
		AvgDocLen:      60,
		Seed:           3,
	})
	if err != nil {
		log.Fatal(err)
	}
	c, src := data.Corpus, data.Source
	fmt.Printf("corpus: %d docs, %d tokens; knowledge source: %d categories\n\n",
		c.NumDocs(), c.TotalTokens(), src.Len())

	// Grid-search (µ, σ) by held-out perplexity (§III-C5a).
	sel, err := core.SelectParameters(c, src, core.Options{
		NumFreeTopics: 4,
		Alpha:         0.5,
		Beta:          0.01,
		UseSmoothing:  true,
	}, core.ParameterGrid{
		Mus:                  []float64{0.3, 0.5, 0.7, 0.9},
		Sigmas:               []float64{0.1, 0.3},
		TrainIterations:      60,
		PerplexityIterations: 25,
		Seed:                 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("perplexity surface:")
	fmt.Printf("  %-6s %-6s %s\n", "µ", "σ", "perplexity")
	for _, cand := range sel.Candidates {
		marker := ""
		if cand == sel.Best {
			marker = "   ← selected"
		}
		fmt.Printf("  %-6.1f %-6.1f %-10.1f%s\n", cand.Mu, cand.Sigma, cand.Perplexity, marker)
	}
	fmt.Printf("\n(the paper's Reuters run selected µ=0.7, σ=0.3 this way)\n\n")

	// Refit on the full corpus with the selected prior.
	m, err := core.Fit(c, src, core.Options{
		NumFreeTopics:   4,
		Alpha:           0.5,
		Beta:            0.01,
		LambdaMode:      core.LambdaIntegrated,
		Mu:              sel.Best.Mu,
		Sigma:           sel.Best.Sigma,
		UseSmoothing:    true,
		PruneDeadTopics: true,
		PruneMinDocs:    10,
		Iterations:      150,
		Seed:            17,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	// λ posterior diagnostics per discovered topic.
	res := m.Result()
	lams := m.LambdaPosteriorMeans()
	fmt.Println("discovered topics with λ posterior means (1 = conforming to its article):")
	shown := 0
	for s := 0; s < src.Len() && shown < 6; s++ {
		t := m.NumFreeTopics() + s
		if res.DocFrequencies[t] < 10 {
			continue
		}
		ids := textproc.TopWords(res.Phi[t], 5)
		words := make([]string, len(ids))
		for i, id := range ids {
			words[i] = c.Vocab.Word(id)
		}
		fmt.Printf("  %-24s λ̄=%.2f  %s\n", src.Label(s), lams[s], strings.Join(words, ", "))
		shown++
	}

	// Persist the fitted snapshot and reload it.
	var buf bytes.Buffer
	if err := persist.SaveResult(&buf, res); err != nil {
		log.Fatal(err)
	}
	size := buf.Len()
	back, err := persist.LoadResult(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npersisted snapshot: %d bytes JSON; reloaded %d topics, reduction to 10 gives %d\n",
		size, back.NumTopics(), len(back.ReduceToK(10).Result.Phi))
}
