// Command benchbundle measures model-load cost across the two bundle
// formats and writes the numbers as machine-readable JSON, so CI can keep a
// BENCH_bundle.json artifact per commit and loading-performance regressions
// are visible in history rather than anecdotes:
//
//	go run ./examples/benchbundle -out BENCH_bundle.json
//
// It builds one synthetic model (default 64 topics × 8000 words; -t/-v to
// resize), writes it as a gzip-JSON bundle and as a flat bundle, then times
//
//   - the JSON decode plus the frozen-view transpose (what serving a JSON
//     bundle actually costs),
//   - the eager flat decode, and
//   - the memory-mapped flat load (O(1) in the conditional slab);
//
// and finally loads -models mapped copies side by side to report the resident
// heap cost per loaded-but-idle model — the multi-tenant number the flat
// format exists for.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"sourcelda/internal/core"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/persist"
	"sourcelda/internal/textproc"
)

type report struct {
	Topics            int     `json:"topics"`
	VocabWords        int     `json:"vocab_words"`
	JSONFileBytes     int     `json:"json_file_bytes"`
	FlatFileBytes     int     `json:"flat_file_bytes"`
	JSONLoadNs        int64   `json:"json_load_ns"`
	FlatLoadNs        int64   `json:"flat_load_ns"`
	MappedLoadNs      int64   `json:"mapped_load_ns"`
	MappedVsJSON      float64 `json:"speedup_mapped_vs_json"`
	Models            int     `json:"models"`
	HeapBytesPerModel int64   `json:"heap_bytes_per_model"`
}

func main() {
	out := flag.String("out", "BENCH_bundle.json", "file the JSON report is written to")
	T := flag.Int("t", 64, "synthetic model topic count")
	V := flag.Int("v", 8000, "synthetic model vocabulary size")
	models := flag.Int("models", 50, "mapped models loaded side by side for the memory measurement")
	flag.Parse()
	if err := run(*out, *T, *V, *models); err != nil {
		fmt.Fprintln(os.Stderr, "benchbundle FAILED:", err)
		os.Exit(1)
	}
}

func run(out string, T, V, models int) error {
	words, src, res := synthModel(T, V)

	dir, err := os.MkdirTemp("", "benchbundle-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	var jsonBuf, flatBuf bytes.Buffer
	if err := persist.SaveBundleMeta(&jsonBuf, words, src, res, nil); err != nil {
		return err
	}
	if err := persist.SaveBundleFlat(&flatBuf, words, src, res, nil); err != nil {
		return err
	}
	flatPath := filepath.Join(dir, "model.bundle")
	if err := os.WriteFile(flatPath, flatBuf.Bytes(), 0o644); err != nil {
		return err
	}

	r := report{
		Topics:        T,
		VocabWords:    V,
		JSONFileBytes: jsonBuf.Len(),
		FlatFileBytes: flatBuf.Len(),
		Models:        models,
	}
	r.JSONLoadNs, err = medianNs(3, func() error {
		b, err := persist.LoadBundle(bytes.NewReader(jsonBuf.Bytes()))
		if err != nil {
			return err
		}
		// The JSON path still has to build the serving view.
		_, err = core.NewFrozen(b.Result)
		return err
	})
	if err != nil {
		return fmt.Errorf("json load: %w", err)
	}
	r.FlatLoadNs, err = medianNs(5, func() error {
		fb, err := persist.LoadBundleFlat(bytes.NewReader(flatBuf.Bytes()))
		if err != nil {
			return err
		}
		return fb.Close()
	})
	if err != nil {
		return fmt.Errorf("flat load: %w", err)
	}
	r.MappedLoadNs, err = medianNs(9, func() error {
		fb, err := persist.LoadBundleMapped(flatPath)
		if err != nil {
			return err
		}
		return fb.Close()
	})
	if err != nil {
		return fmt.Errorf("mapped load: %w", err)
	}
	if r.MappedLoadNs > 0 {
		r.MappedVsJSON = float64(r.JSONLoadNs) / float64(r.MappedLoadNs)
	}

	heap, err := heapPerModel(flatPath, models)
	if err != nil {
		return fmt.Errorf("memory measurement: %w", err)
	}
	r.HeapBytesPerModel = heap

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchbundle: T=%d V=%d  json %.2fms  flat %.2fms  mapped %.3fms (%.0fx vs json)  heap/model %.1f KiB  -> %s\n",
		T, V,
		float64(r.JSONLoadNs)/1e6, float64(r.FlatLoadNs)/1e6, float64(r.MappedLoadNs)/1e6,
		r.MappedVsJSON, float64(r.HeapBytesPerModel)/1024, out)
	return nil
}

// medianNs runs fn n times and returns the median wall time — one slow run
// (page-cache warmup, GC pause) must not skew a number CI archives.
func medianNs(n int, fn func() error) (int64, error) {
	times := make([]int64, n)
	for i := range times {
		start := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		times[i] = time.Since(start).Nanoseconds()
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[n/2], nil
}

// heapPerModel loads n mapped models side by side and reports the per-model
// heap growth. The conditional slabs stay in the shared page cache, so this
// should track only the decoded metadata (vocabulary, labels, counts).
func heapPerModel(path string, n int) (int64, error) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	bundles := make([]*persist.FlatBundle, n)
	for i := range bundles {
		fb, err := persist.LoadBundleMapped(path)
		if err != nil {
			return 0, err
		}
		bundles[i] = fb
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	heap := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	for _, fb := range bundles {
		fb.Close()
	}
	runtime.KeepAlive(bundles)
	if heap < 0 {
		heap = 0
	}
	return heap / int64(n), nil
}

// synthModel builds a deterministic synthetic model of the given shape: big
// enough to exercise real load costs without paying for training. The topic
// rows come from a fixed linear congruential stream, so every run (and every
// CI machine) measures identical bytes.
func synthModel(T, V int) ([]string, *knowledge.Source, *core.Result) {
	words := make([]string, V)
	vocab := textproc.NewVocabulary()
	for i := range words {
		words[i] = fmt.Sprintf("w%06d", i)
		vocab.Add(words[i])
	}
	a := knowledge.NewArticleFromText("S1", words[0]+" "+words[1], vocab, nil, true)
	b := knowledge.NewArticleFromText("S2", words[2]+" "+words[3], vocab, nil, true)
	src := knowledge.MustNewSource([]*knowledge.Article{a, b})

	state := uint64(0x9E3779B97F4A7C15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11)/float64(1<<53) + 1e-12
	}
	res := &core.Result{
		Phi:            make([][]float64, T),
		Labels:         make([]string, T),
		SourceIndices:  make([]int, T),
		TokenCounts:    make([]int, T),
		DocFrequencies: make([]int, T),
		NumFreeTopics:  T,
		Alpha:          0.5,
	}
	for t := 0; t < T; t++ {
		row := make([]float64, V)
		sum := 0.0
		for w := range row {
			row[w] = next()
			sum += row[w]
		}
		for w := range row {
			row[w] /= sum
		}
		res.Phi[t] = row
		res.Labels[t] = fmt.Sprintf("topic-%d", t)
		res.SourceIndices[t] = -1
		res.TokenCounts[t] = t + 1
		res.DocFrequencies[t] = 1
	}
	return words, src, res
}
