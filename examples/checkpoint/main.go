// Checkpoint walkthrough: train with periodic checkpoints, "crash" mid-run
// via the progress hook, resume from disk, and verify the resumed model is
// bit-for-bit identical to one from an uninterrupted run.
//
// This is the crash-recovery story for long fits: a multi-hour chain killed
// at sweep 900 of 1000 loses only the sweeps since its last checkpoint, and
// the recovered model is provably the same one the uninterrupted run would
// have produced — not a restart, not an approximation.
//
// Run: go run ./examples/checkpoint
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"sourcelda"
)

const (
	totalSweeps     = 60
	checkpointEvery = 15
	crashAfterSweep = 40 // between checkpoints: sweeps 31–40 will be re-run
)

func buildData() (*sourcelda.Corpus, *sourcelda.KnowledgeSource) {
	builder := sourcelda.NewCorpusBuilder()
	for i := 0; i < 12; i++ {
		builder.AddDocument("school", "pencil ruler eraser pencil notebook paper binder")
		builder.AddDocument("ball", "baseball umpire pitcher baseball inning glove strike")
		builder.AddDocument("mixed", "pencil baseball notebook umpire paper inning")
	}
	builder.AddKnowledgeArticle("School Supplies",
		strings.Repeat("pencil pencil ruler eraser notebook paper paper binder crayon ", 20))
	builder.AddKnowledgeArticle("Baseball",
		strings.Repeat("baseball baseball umpire pitcher inning glove strike bat ", 20))
	corpus, source, err := builder.Build()
	if err != nil {
		log.Fatal(err)
	}
	return corpus, source
}

func main() {
	corpus, source := buildData()
	dir, err := os.MkdirTemp("", "sourcelda-checkpoints-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	opts := sourcelda.Options{
		FreeTopics:      1,
		Iterations:      totalSweeps,
		Seed:            2026,
		TraceLikelihood: true,
	}

	// Reference: one uninterrupted run.
	reference, err := sourcelda.Fit(corpus, source, opts)
	if err != nil {
		log.Fatal(err)
	}

	// Interrupted run: checkpoint every 15 sweeps, and simulate a crash
	// after sweep 40 by returning ErrStopTraining from the progress hook (a
	// real crash — OOM kill, node preemption — just loses the process; the
	// checkpoint files on disk are the same either way thanks to the
	// atomic write-then-rename protocol).
	crashed := opts
	crashed.Checkpoint = &sourcelda.Checkpointing{Dir: dir, EverySweeps: checkpointEvery}
	crashed.Progress = func(p sourcelda.Progress) error {
		if p.CheckpointPath != "" {
			fmt.Printf("sweep %3d/%d  %8.1f tokens/sec  log-likelihood %.2f  checkpoint → %s\n",
				p.Sweep, p.TotalSweeps, p.TokensPerSec, p.LogLikelihood, p.CheckpointPath)
		}
		if p.Sweep == crashAfterSweep {
			fmt.Printf("sweep %3d/%d  simulating a crash\n", p.Sweep, p.TotalSweeps)
			return sourcelda.ErrStopTraining
		}
		return nil
	}
	if _, err := sourcelda.Fit(corpus, source, crashed); err != nil {
		log.Fatal(err)
	}

	// Recovery: point Resume at the checkpoint directory (the newest
	// checkpoint wins — here sweep 30) with the run's original options.
	// Training continues at sweep 31 and finishes the remaining sweeps.
	fmt.Printf("\nresuming from %s\n", dir)
	resumed, err := sourcelda.Resume(dir, corpus, source, opts)
	if err != nil {
		log.Fatal(err)
	}

	// The resumed model must match the uninterrupted one exactly.
	assertSame(reference, resumed)
	fmt.Println("\nresumed model is bit-for-bit identical to the uninterrupted run:")
	for _, topic := range resumed.Topics() {
		fmt.Printf("  %-16s weight=%.2f  top words: %s\n",
			topic.Label, topic.Weight, strings.Join(topic.TopWords(4), ", "))
	}
}

// assertSame compares every deterministic field of the two fitted results;
// any divergence is a bug in the checkpoint subsystem.
func assertSame(a, b *sourcelda.Model) {
	ra, rb := a.Raw(), b.Raw()
	for d := range ra.Assignments {
		for i := range ra.Assignments[d] {
			if ra.Assignments[d][i] != rb.Assignments[d][i] {
				log.Fatalf("assignment diverged at doc %d token %d", d, i)
			}
		}
	}
	for t := range ra.Phi {
		for w := range ra.Phi[t] {
			if ra.Phi[t][w] != rb.Phi[t][w] {
				log.Fatalf("φ diverged at topic %d word %d", t, w)
			}
		}
	}
	for d := range ra.Theta {
		for t := range ra.Theta[d] {
			if ra.Theta[d][t] != rb.Theta[d][t] {
				log.Fatalf("θ diverged at doc %d topic %d", d, t)
			}
		}
	}
	for i := range ra.LikelihoodTrace {
		if la, lb := ra.LikelihoodTrace[i], rb.LikelihoodTrace[i]; la != lb && !(math.IsNaN(la) && math.IsNaN(lb)) {
			log.Fatalf("likelihood trace diverged at sweep %d: %v != %v", i+1, la, lb)
		}
	}
}
