// Command benchdtrain is the distributed-training gate: it stands up real
// in-process dtrain clusters — coordinator, wire protocol, worker chains —
// and measures the two trade-offs AD-LDA makes:
//
//   - throughput scaling: tokens/sec at 1, 2, 4 and 8 workers, same chain
//   - staleness cost: held-out perplexity when workers sync every sweep
//     versus every 5 or 10 sweeps, at the same total sweep budget
//
// It also re-verifies the determinism contract outside the test tree (same
// cluster twice → same digest) and accounts for goroutines across full
// cluster teardown:
//
//	go run ./examples/benchdtrain -out BENCH_dtrain.json
//
// The JSON report is archived per commit by CI so scaling and staleness
// trends are visible in artifact history.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"sourcelda/internal/corpus"
	"sourcelda/internal/dtrain"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/synth"
)

type scalingPoint struct {
	Workers      int     `json:"workers"`
	Seconds      float64 `json:"seconds"`
	TokensPerSec float64 `json:"tokens_per_sec"`
	Speedup      float64 `json:"speedup_vs_1"`
	Digest       string  `json:"digest"`
}

type stalenessPoint struct {
	Staleness   int     `json:"staleness"`
	Epochs      int     `json:"epochs"`
	TotalSweeps int     `json:"total_sweeps"`
	Perplexity  float64 `json:"held_out_perplexity"`
}

type report struct {
	Docs           int              `json:"docs"`
	Tokens         int              `json:"tokens"`
	Vocab          int              `json:"vocab"`
	SweepsPerRun   int              `json:"sweeps_per_run"`
	Scaling        []scalingPoint   `json:"scaling"`
	Staleness      []stalenessPoint `json:"staleness"`
	Reproducible   bool             `json:"digest_reproducible"`
	GoroutinesAt0  int              `json:"goroutines_before"`
	GoroutinesEnd  int              `json:"goroutines_after_teardown"`
	GoroutineLeak  bool             `json:"goroutine_leak"`
	TotalElapsedMs float64          `json:"total_elapsed_ms"`
}

func main() {
	out := flag.String("out", "BENCH_dtrain.json", "file the JSON report is written to")
	sweeps := flag.Int("sweeps", 20, "total Gibbs sweeps per run (shared by every scaling and staleness point)")
	flag.Parse()
	if err := run(*out, *sweeps); err != nil {
		fmt.Fprintln(os.Stderr, "benchdtrain FAILED:", err)
		os.Exit(1)
	}
}

func run(out string, sweeps int) error {
	start := time.Now()
	data, err := synth.ReutersLike(synth.ReutersOptions{
		NumCategories: 20, LiveCategories: 10, NumDocs: 160, AvgDocLen: 40, Seed: 7,
	})
	if err != nil {
		return err
	}
	// Hold out the tail of the corpus for perplexity; train on the rest.
	const heldOut = 32
	train := corpus.NewWithVocab(data.Corpus.Vocab)
	train.Docs = data.Corpus.Docs[:data.Corpus.NumDocs()-heldOut]
	test := corpus.NewWithVocab(data.Corpus.Vocab)
	test.Docs = data.Corpus.Docs[data.Corpus.NumDocs()-heldOut:]

	r := report{
		Docs:          train.NumDocs(),
		Tokens:        train.TotalTokens(),
		Vocab:         train.VocabSize(),
		SweepsPerRun:  sweeps,
		GoroutinesAt0: runtime.NumGoroutine(),
	}

	// Throughput scaling at staleness 1: epochs = sweeps, every worker count
	// trains the same total schedule.
	var base float64
	for _, w := range []int{1, 2, 4, 8} {
		elapsed, res, err := runCluster(train, data.Source, w, sweeps, 1)
		if err != nil {
			return fmt.Errorf("scaling run with %d workers: %w", w, err)
		}
		res.Model.Close()
		p := scalingPoint{
			Workers:      w,
			Seconds:      elapsed.Seconds(),
			TokensPerSec: float64(train.TotalTokens()) * float64(sweeps) / elapsed.Seconds(),
			Digest:       fmt.Sprintf("%#x", res.Digest),
		}
		if w == 1 {
			base = elapsed.Seconds()
		}
		p.Speedup = base / elapsed.Seconds()
		r.Scaling = append(r.Scaling, p)
		fmt.Printf("workers %d: %.2fs, %.0f tokens/sec (%.2fx)\n", w, p.Seconds, p.TokensPerSec, p.Speedup)
	}

	// Reproducibility outside the test tree: same cluster twice, same digest.
	_, resA, err := runCluster(train, data.Source, 4, sweeps/2, 1)
	if err != nil {
		return err
	}
	resA.Model.Close()
	_, resB, err := runCluster(train, data.Source, 4, sweeps/2, 1)
	if err != nil {
		return err
	}
	resB.Model.Close()
	r.Reproducible = resA.Digest == resB.Digest
	if !r.Reproducible {
		return fmt.Errorf("two identical 4-worker runs diverged: %#x vs %#x", resA.Digest, resB.Digest)
	}

	// Staleness cost: same total sweep budget, fewer sync boundaries.
	for _, st := range []int{1, 5, 10} {
		epochs := sweeps / st
		if epochs < 1 {
			epochs = 1
		}
		_, res, err := runCluster(train, data.Source, 4, epochs, st)
		if err != nil {
			return fmt.Errorf("staleness-%d run: %w", st, err)
		}
		ppx, err := res.Model.HeldOutPerplexity(test, 30, 15, 1234)
		res.Model.Close()
		if err != nil {
			return fmt.Errorf("staleness-%d perplexity: %w", st, err)
		}
		r.Staleness = append(r.Staleness, stalenessPoint{
			Staleness: st, Epochs: epochs, TotalSweeps: epochs * st, Perplexity: ppx,
		})
		fmt.Printf("staleness %d (%d epochs): held-out perplexity %.1f\n", st, epochs, ppx)
	}

	// Teardown accounting: everything above ran and closed real clusters.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > r.GoroutinesAt0+2 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	r.GoroutinesEnd = runtime.NumGoroutine()
	r.GoroutineLeak = r.GoroutinesEnd > r.GoroutinesAt0+2
	r.TotalElapsedMs = float64(time.Since(start).Milliseconds())
	if r.GoroutineLeak {
		return fmt.Errorf("goroutine leak: %d before, %d after teardown", r.GoroutinesAt0, r.GoroutinesEnd)
	}

	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s\n", out)
	return nil
}

// runCluster trains one in-process dtrain cluster to completion and returns
// its wall time and result.
func runCluster(c *corpus.Corpus, src *knowledge.Source, workers, epochs, staleness int) (time.Duration, *dtrain.Result, error) {
	root, err := os.MkdirTemp("", "benchdtrain-*")
	if err != nil {
		return 0, nil, err
	}
	defer os.RemoveAll(root)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln := dtrain.NewPipeListener()
	spec := dtrain.ChainSpec{
		NumFreeTopics:    5,
		Alpha:            0.2,
		Beta:             0.01,
		LambdaMode:       "integrated",
		Mu:               0.7,
		Sigma:            0.3,
		QuadraturePoints: 5,
		UseSmoothing:     true,
		Seed:             11,
	}
	workerErrs := make(chan error, workers)
	for i := 0; i < workers; i++ {
		id := fmt.Sprintf("bench-worker-%d", i)
		go func() {
			conn, err := ln.Dial()
			if err != nil {
				workerErrs <- err
				return
			}
			workerErrs <- dtrain.RunWorker(ctx, conn, dtrain.WorkerConfig{
				Corpus:         c,
				Source:         src,
				CheckpointRoot: root,
				ID:             id,
			})
		}()
	}
	start := time.Now()
	res, err := dtrain.RunCoordinator(ctx, ln, dtrain.CoordinatorConfig{
		Corpus:    c,
		Source:    src,
		Spec:      spec,
		Workers:   workers,
		Epochs:    epochs,
		Staleness: staleness,
	})
	elapsed := time.Since(start)
	if err != nil {
		return 0, nil, err
	}
	cancel()
	for i := 0; i < workers; i++ {
		<-workerErrs
	}
	if res.Model == nil {
		return 0, nil, fmt.Errorf("coordinator returned no model")
	}
	return elapsed, res, nil
}
