// Command benchobs is the observability-overhead gate: it drives the
// serving fast path (Server.ServeHTTP, single-document inference) with the
// tracing middleware on and off, writes the numbers as machine-readable
// JSON, and exits non-zero if observability costs more than the threshold:
//
//	go run ./examples/benchobs -out BENCH_obs.json
//
// The two configurations are measured as back-to-back pairs in alternating
// order and compared by the median of per-pair deltas: machine noise drifts
// over seconds, but within one pair both configurations see the same
// machine, so the per-pair delta isolates the middleware cost and the
// median discards pairs a GC pause or noisy neighbor landed on. A noise
// burst outlasting a whole measurement can still inflate the estimate —
// never deflate it — so the gate takes the best of a few attempts and only
// fails when every attempt exceeds the threshold. CI archives
// BENCH_obs.json per commit so the trend is visible in artifact history.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"sourcelda"
	"sourcelda/internal/registry"
)

type report struct {
	IterationsPerBatch int     `json:"iterations_per_batch"`
	Batches            int     `json:"batches"`
	TracingOnNs        int64   `json:"tracing_on_ns_per_request"`
	TracingOffNs       int64   `json:"tracing_off_ns_per_request"`
	OverheadNs         int64   `json:"overhead_ns_per_request"`
	OverheadPct        float64 `json:"overhead_pct"`
	ThresholdPct       float64 `json:"threshold_pct"`
}

func main() {
	out := flag.String("out", "BENCH_obs.json", "file the JSON report is written to")
	iters := flag.Int("iters", 1000, "requests per measurement batch")
	batches := flag.Int("batches", 11, "measurement pairs (median per-pair delta wins)")
	threshold := flag.Float64("threshold", 2.0, "maximum tolerated observability overhead in percent")
	flag.Parse()
	if err := run(*out, *iters, *batches, *threshold); err != nil {
		fmt.Fprintln(os.Stderr, "benchobs FAILED:", err)
		os.Exit(1)
	}
}

func run(out string, iters, batches int, threshold float64) error {
	model, err := train()
	if err != nil {
		return err
	}
	newServer := func(disableTracing bool) (*registry.Server, *registry.Registry, error) {
		reg := registry.New(registry.Config{
			DisableTracing: disableTracing,
			BatchWindow:    0, // measure request cost, not the coalescing idle-wait
		})
		m, err := clone(model)
		if err != nil {
			reg.Close()
			return nil, nil, err
		}
		if _, err := reg.Load(reg.DefaultModel(), "v1", m); err != nil {
			reg.Close()
			return nil, nil, err
		}
		return registry.NewServer(reg), reg, nil
	}
	// A representative document — a few dozen tokens, like real tagging
	// traffic — so the overhead ratio is measured against a realistic
	// request cost, not a degenerate four-word probe.
	payload := []byte(`{"text":"pencil ruler eraser pencil notebook paper baseball umpire pitcher baseball inning glove pencil paper notebook ruler eraser paper glove inning baseball umpire pitcher glove pencil ruler notebook eraser paper pencil"}`)
	batch := func(srv *registry.Server, n int) (int64, error) {
		runtime.GC()
		start := time.Now()
		for i := 0; i < n; i++ {
			req := httptest.NewRequest("POST", "/v1/infer", bytes.NewReader(payload))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != 200 {
				return 0, fmt.Errorf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
		return time.Since(start).Nanoseconds() / int64(n), nil
	}

	// measure builds a fresh pair of servers, warms both, and runs the
	// paired batches. Construction order is a parameter because heap layout
	// follows allocation order and can hand whichever server was built first
	// a persistent percent-level advantage — alternating the order across
	// attempts flips that bias so the best attempt cancels it.
	measure := func(onFirst bool) (offMed, deltaMed int64, err error) {
		var onSrv, offSrv *registry.Server
		var onReg, offReg *registry.Registry
		if onFirst {
			if onSrv, onReg, err = newServer(false); err != nil {
				return 0, 0, err
			}
			if offSrv, offReg, err = newServer(true); err != nil {
				onReg.Close()
				return 0, 0, err
			}
		} else {
			if offSrv, offReg, err = newServer(true); err != nil {
				return 0, 0, err
			}
			if onSrv, onReg, err = newServer(false); err != nil {
				offReg.Close()
				return 0, 0, err
			}
		}
		defer onReg.Close()
		defer offReg.Close()
		// Warm both paths (lazy frozen-view build, allocator steady state)
		// before any measured batch.
		if _, err = batch(onSrv, iters); err != nil {
			return 0, 0, err
		}
		if _, err = batch(offSrv, iters); err != nil {
			return 0, 0, err
		}
		offNs := make([]int64, 0, batches)
		deltas := make([]int64, 0, batches)
		for b := 0; b < batches; b++ {
			// Alternate which configuration runs first so a systematic
			// first-in-pair advantage (cache warmth, timer drift) cancels
			// across pairs instead of biasing every delta the same way.
			var on, off int64
			if b%2 == 0 {
				if on, err = batch(onSrv, iters); err != nil {
					return 0, 0, err
				}
				if off, err = batch(offSrv, iters); err != nil {
					return 0, 0, err
				}
			} else {
				if off, err = batch(offSrv, iters); err != nil {
					return 0, 0, err
				}
				if on, err = batch(onSrv, iters); err != nil {
					return 0, 0, err
				}
			}
			offNs = append(offNs, off)
			deltas = append(deltas, on-off)
		}
		return median(offNs), median(deltas), nil
	}

	const attempts = 3
	r := report{
		IterationsPerBatch: iters,
		Batches:            batches,
		ThresholdPct:       threshold,
	}
	for a := 0; a < attempts; a++ {
		offMed, deltaMed, err := measure(a%2 == 0)
		if err != nil {
			return err
		}
		pct := 100 * float64(deltaMed) / float64(offMed)
		if a == 0 || pct < r.OverheadPct {
			r.TracingOffNs, r.OverheadNs, r.OverheadPct = offMed, deltaMed, pct
		}
		if r.OverheadPct <= threshold {
			break
		}
		fmt.Fprintf(os.Stderr, "benchobs: attempt %d over threshold (%+.2f%%), retrying\n", a+1, pct)
	}
	r.TracingOnNs = r.TracingOffNs + r.OverheadNs

	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("benchobs: tracing off %.1fµs  overhead %+dns %+.2f%% (threshold %.1f%%)  -> %s\n",
		float64(r.TracingOffNs)/1e3, r.OverheadNs, r.OverheadPct, threshold, out)
	if r.OverheadPct > threshold {
		return fmt.Errorf("observability overhead %.2f%% exceeds the %.1f%% threshold", r.OverheadPct, threshold)
	}
	return nil
}

func median(xs []int64) int64 {
	sorted := append([]int64(nil), xs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// train fits one small model; clone() round-trips it through a bundle so
// the two registries never share a model instance.
func train() (*sourcelda.Model, error) {
	b := sourcelda.NewCorpusBuilder()
	for i := 0; i < 10; i++ {
		b.AddDocument("school", "pencil ruler eraser pencil notebook paper")
		b.AddDocument("ball", "baseball umpire pitcher baseball inning glove")
	}
	b.AddKnowledgeArticle("School Supplies",
		strings.Repeat("pencil pencil ruler eraser notebook paper paper ", 20))
	b.AddKnowledgeArticle("Baseball",
		strings.Repeat("baseball baseball umpire pitcher inning glove ", 20))
	c, k, err := b.Build()
	if err != nil {
		return nil, err
	}
	return sourcelda.Fit(c, k, sourcelda.Options{
		Lambda:     &sourcelda.LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 60,
		Seed:       1,
	})
}

func clone(m *sourcelda.Model) (*sourcelda.Model, error) {
	var buf bytes.Buffer
	if err := sourcelda.SaveBundle(&buf, m); err != nil {
		return nil, err
	}
	return sourcelda.LoadBundle(&buf)
}
