// Newswire: the paper's Reuters-21578 labeling scenario (§IV-C, Table I) on
// the synthetic newswire substitute.
//
// A 2,000-document-style corpus is generated from a subset of an 80-category
// knowledge superset. Source-LDA models the corpus with the full superset
// plus free topics and reports which labeled topics it discovered; IR-LDA
// (plain LDA + TF-IDF/cosine labeling) and the Concept-Topic Model are run
// for comparison, reproducing the Table I word lists side by side.
//
// Run: go run ./examples/newswire
package main

import (
	"fmt"
	"log"
	"strings"

	"sourcelda"
	"sourcelda/internal/core"
	"sourcelda/internal/ctm"
	"sourcelda/internal/labeling"
	"sourcelda/internal/lda"
	"sourcelda/internal/synth"
	"sourcelda/internal/textproc"
)

func main() {
	data, err := synth.ReutersLike(synth.ReutersOptions{
		NumCategories:  40,
		LiveCategories: 18,
		NumDocs:        300,
		AvgDocLen:      70,
		Seed:           11,
	})
	if err != nil {
		log.Fatal(err)
	}
	c, src := data.Corpus, data.Source
	fmt.Printf("newswire corpus: %d docs, %d tokens; knowledge superset: %d categories (%d live)\n\n",
		c.NumDocs(), c.TotalTokens(), src.Len(), len(data.Live))

	const freeTopics = 8
	iters := 200

	// Source-LDA over the full superset.
	srcModel, err := core.Fit(c, src, core.Options{
		NumFreeTopics:    freeTopics,
		Alpha:            0.5,
		Beta:             0.01,
		LambdaMode:       core.LambdaIntegrated,
		Mu:               0.7,
		Sigma:            0.3,
		QuadraturePoints: 7,
		UseSmoothing:     true,
		Iterations:       iters,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srcModel.Close()
	res := srcModel.Result()

	// IR-LDA baseline.
	ldaModel, err := lda.Fit(c, lda.Options{
		NumTopics: len(data.Live) + freeTopics, Alpha: 0.5, Beta: 0.01,
		Iterations: iters, Seed: 2,
	})
	if err != nil {
		log.Fatal(err)
	}
	ir := labeling.NewIRLabeler(src, c.VocabSize(), 10)
	irLabels := labeling.LabelAll(ir, ldaModel.Phi())

	// CTM baseline.
	ctmModel, err := ctm.Fit(c, src, ctm.Options{
		NumFreeTopics: freeTopics, Alpha: 0.5, Beta: 0.01,
		Iterations: iters, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	discovered := res.DiscoveredSourceTopics(4, 2)
	fmt.Printf("Source-LDA discovered %d labeled topics; CTM passed %d concepts through\n\n",
		len(discovered), len(ctmModel.DiscoveredConcepts(4, 2)))

	top := func(phi []float64) string {
		ids := textproc.TopWords(phi, 10)
		words := make([]string, len(ids))
		for i, id := range ids {
			words[i] = c.Vocab.Word(id)
		}
		return strings.Join(words, ", ")
	}

	shown := 0
	for _, label := range discovered {
		if shown == 3 {
			break
		}
		art, _ := src.IndexOf(label)
		fmt.Printf("== %s ==\n", label)
		fmt.Printf("  SRC-LDA: %s\n", top(res.Phi[freeTopics+art]))
		irTopic := -1
		for t, a := range irLabels {
			if a == art {
				irTopic = t
				break
			}
		}
		if irTopic >= 0 {
			fmt.Printf("  IR-LDA:  %s\n", top(ldaModel.Phi()[irTopic]))
		} else {
			fmt.Printf("  IR-LDA:  (no LDA topic mapped to this label)\n")
		}
		fmt.Printf("  CTM:     %s\n\n", top(ctmModel.Phi()[freeTopics+art]))
		shown++
	}

	// The same corpus through the public facade, for comparison.
	pub := sourcelda.WrapCorpus(c)
	pubSrc := sourcelda.WrapKnowledgeSource(src)
	m, err := sourcelda.Fit(pub, pubSrc, sourcelda.Options{
		FreeTopics: freeTopics,
		Iterations: 100,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top discovered topics via the public API:")
	for i, tp := range m.DiscoveredTopics(4) {
		if i == 5 {
			break
		}
		fmt.Printf("  %-28s weight=%.3f  %s\n", tp.Label, tp.Weight, strings.Join(tp.TopWords(6), ", "))
	}
}
