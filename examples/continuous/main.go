// Command continuous is a runnable walkthrough of the continuous-learning
// lifecycle (docs/OPERATIONS.md "Continuous learning", docs/API.md /feed):
//
//  1. train a warm chain with sourcelda.FitRuntime and archive it with
//     SaveChainFile — the artifact srcldad's -learn-chain flag consumes;
//  2. reload the archive (LoadChainRuntimeFile) and measure the chain's
//     held-out perplexity on a document stream it has never seen;
//  3. start the serving stack cmd/srcldad wires — registry + learner +
//     watcher + HTTP — with the reloaded chain learning behind the
//     default model;
//  4. stream the documents through POST /v1/feed while concurrent
//     inference load runs, honoring 429 backpressure, until the learner
//     republishes and the watcher hot-swaps the served model — with zero
//     failed requests across the swap;
//  5. verify digest lineage (trained chain == served bundle, through
//     appends and a compaction retrain) and that the fed chain now
//     explains its own stream better than the pre-feed chain did;
//  6. write feed throughput and update-latency numbers to a JSON report.
//
// Run it from the repository root:
//
//	go run ./examples/continuous -out BENCH_feed.json
//
// It exits non-zero on any deviation, so CI runs it as the continuous
// learning smoke test and archives the report per commit.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sourcelda"
	"sourcelda/internal/registry"
)

type report struct {
	FedDocs          int     `json:"fed_docs"`
	FeedWallNs       int64   `json:"feed_wall_ns"`
	DocsPerSec       float64 `json:"docs_per_sec"`
	Republishes      uint64  `json:"republishes"`
	Compactions      uint64  `json:"compactions"`
	Swaps            uint64  `json:"swaps"`
	UpdateMeanMs     float64 `json:"update_mean_ms"`
	InferServed      uint64  `json:"infer_requests_served"`
	InferFailed      uint64  `json:"infer_requests_failed"`
	PerplexityBefore float64 `json:"perplexity_before"`
	PerplexityAfter  float64 `json:"perplexity_after"`
}

func main() {
	out := flag.String("out", "BENCH_feed.json", "file the JSON report is written to")
	flag.Parse()
	if err := run(*out); err != nil {
		fmt.Fprintln(os.Stderr, "continuous example FAILED:", err)
		os.Exit(1)
	}
	fmt.Println("\ncontinuous example PASSED")
}

func run(out string) error {
	dir, err := os.MkdirTemp("", "srclda-continuous-example")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	// ---- 1. Train a warm chain and archive it. ----
	fmt.Println("== training a warm chain ==")
	b := sourcelda.NewCorpusBuilder()
	for i := 0; i < 10; i++ {
		b.AddDocument("school", "pencil ruler eraser pencil notebook paper")
		b.AddDocument("ball", "baseball umpire pitcher baseball inning glove")
	}
	b.AddKnowledgeArticle("School Supplies",
		strings.Repeat("pencil pencil ruler eraser notebook paper paper ", 20))
	b.AddKnowledgeArticle("Baseball",
		strings.Repeat("baseball baseball umpire pitcher inning glove ", 20))
	c, k, err := b.Build()
	if err != nil {
		return err
	}
	trained, err := sourcelda.FitRuntime(c, k, sourcelda.Options{
		FreeTopics: 1,
		Lambda:     &sourcelda.LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 40,
		Seed:       21,
	})
	if err != nil {
		return err
	}
	chainPath := filepath.Join(dir, "tagger.chain")
	if err := trained.SaveChainFile(chainPath); err != nil {
		trained.Close()
		return err
	}
	if err := trained.Close(); err != nil {
		return err
	}
	fmt.Println("wrote", chainPath, "(the artifact srcldad -learn-chain consumes)")

	// ---- 2. Reload and baseline the chain on an unseen stream. ----
	rt, err := sourcelda.LoadChainRuntimeFile(chainPath)
	if err != nil {
		return err
	}
	defer rt.Close()
	digest := rt.ChainDigest()
	stream := []string{
		"pencil pencil baseball ruler umpire notebook pitcher paper glove eraser",
		"baseball pencil inning ruler glove notebook umpire paper pitcher eraser",
	}
	p0, err := rt.HeldOutPerplexity(stream, 30, 10, 99)
	if err != nil {
		return err
	}
	fmt.Printf("pre-feed held-out perplexity on the stream: %.2f\n", p0)

	// ---- 3. Serve it with a learner attached, as srcldad -learn-chain. ----
	modelsDir := filepath.Join(dir, "models")
	if err := os.Mkdir(modelsDir, 0o755); err != nil {
		return err
	}
	// Warn-level logger: the concurrent load below would otherwise emit
	// hundreds of per-request INFO lines and drown the walkthrough output.
	reg := registry.New(registry.Config{
		Infer:        sourcelda.InferOptions{Seed: 42},
		DefaultModel: "tagger",
		Logger:       slog.New(slog.NewTextHandler(os.Stdout, &slog.HandlerOptions{Level: slog.LevelWarn})),
	})
	defer reg.Close()
	if err := reg.AttachLearner("tagger", rt, registry.LearnerConfig{
		ModelsDir:      modelsDir,
		QueueSize:      64,
		RepublishEvery: 6,
		CompactAfter:   10,
		CompactSweeps:  5,
		FoldInSweeps:   5,
	}); err != nil {
		return err
	}
	watcher := registry.NewWatcher(reg, modelsDir, 100*time.Millisecond)
	if err := watcher.Scan(); err != nil { // picks up the attach-time bundle
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go watcher.Run(ctx)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: registry.NewServer(reg)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Println("\n== daemon serving on", base, "==")

	// ---- 4. Feed the stream under concurrent inference load. ----
	var failed, served atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := []byte(`{"text": "pencil ruler baseball umpire notebook"}`)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/v1/models/tagger/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				} else {
					served.Add(1)
				}
			}
		}()
	}

	feedBody, err := json.Marshal(map[string]any{"documents": stream})
	if err != nil {
		return err
	}
	const batches = 10
	fedDocs := 0
	feedStart := time.Now()
	for fed := 0; fed < batches; {
		resp, err := http.Post(base+"/v1/feed", "application/json", bytes.NewReader(feedBody))
		if err != nil {
			return err
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			fed++
			fedDocs += len(stream)
		case http.StatusTooManyRequests:
			// Backpressure, not failure: honor Retry-After and resend.
			if resp.Header.Get("Retry-After") == "" {
				return fmt.Errorf("429 without Retry-After")
			}
			time.Sleep(20 * time.Millisecond)
		default:
			return fmt.Errorf("feed returned %d", resp.StatusCode)
		}
	}
	if err := waitFor("feed queue drain", func() bool {
		fi, err := reg.FeedInfo("tagger")
		return err == nil && fi.QueueDepth == 0 && fi.Docs == uint64(fedDocs)
	}); err != nil {
		return err
	}
	feedWall := time.Since(feedStart)
	fmt.Printf("fed %d documents in %v (%.0f docs/s absorbed into the live chain)\n",
		fedDocs, feedWall.Round(time.Millisecond), float64(fedDocs)/feedWall.Seconds())

	// The attach-time bundle is already version "feed-0", so the version
	// prefix alone can't prove a swap — wait for the swap counter while the
	// inference load is still running, so zero-failures spans a real swap.
	if err := waitFor("watcher hot-swap to a republished build", func() bool {
		mi, err := reg.Info("tagger")
		return err == nil && mi.Stats.Swaps >= 1 &&
			strings.HasPrefix(mi.Version, "feed-") && mi.Version != "feed-0"
	}); err != nil {
		return err
	}
	close(stop)
	wg.Wait()
	if n := failed.Load(); n != 0 {
		return fmt.Errorf("%d inference requests failed across the hot swap (%d served)", n, served.Load())
	}
	if served.Load() == 0 {
		return fmt.Errorf("no inference requests served during the feed window")
	}
	fmt.Printf("%d concurrent requests across the republish/hot-swap window, zero failures\n", served.Load())

	// ---- 5. Lineage and learning checks. ----
	fi, err := reg.FeedInfo("tagger")
	if err != nil {
		return err
	}
	mi, err := reg.Info("tagger")
	if err != nil {
		return err
	}
	if fi.Republishes < 1 || fi.Compactions < 1 {
		return fmt.Errorf("republishes=%d compactions=%d, want at least one of each", fi.Republishes, fi.Compactions)
	}
	if rt.ChainDigest() != digest {
		return fmt.Errorf("chain digest drifted %s -> %s", digest, rt.ChainDigest())
	}
	if mi.Bundle.ChainDigest != digest {
		return fmt.Errorf("served bundle digest %s, want chain lineage %s", mi.Bundle.ChainDigest, digest)
	}
	fmt.Printf("serving version %s; digest lineage intact through %d republishes and %d compactions\n",
		mi.Version, fi.Republishes, fi.Compactions)

	p1, err := rt.HeldOutPerplexity(stream, 30, 10, 99)
	if err != nil {
		return err
	}
	if !(p1 < p0) {
		return fmt.Errorf("streamed docs' perplexity did not improve: before %v after %v", p0, p1)
	}
	fmt.Printf("post-feed held-out perplexity on the stream: %.2f (improved from %.2f)\n", p1, p0)

	// ---- 6. Machine-readable report for the CI artifact trail. ----
	rep := report{
		FedDocs:          fedDocs,
		FeedWallNs:       feedWall.Nanoseconds(),
		DocsPerSec:       float64(fedDocs) / feedWall.Seconds(),
		Republishes:      fi.Republishes,
		Compactions:      fi.Compactions,
		Swaps:            mi.Stats.Swaps,
		InferServed:      served.Load(),
		InferFailed:      failed.Load(),
		PerplexityBefore: p0,
		PerplexityAfter:  p1,
	}
	if fi.UpdateLatency.Count > 0 {
		rep.UpdateMeanMs = fi.UpdateLatency.Sum / float64(fi.UpdateLatency.Count) * 1000
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Println("wrote", out)
	return nil
}

// waitFor polls cond; the watcher interval is 100ms and updates are
// per-batch, so every condition here resolves well inside the deadline.
func waitFor(what string, cond func() bool) error {
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
	return nil
}
