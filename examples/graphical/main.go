// Graphical: the paper's §IV-A pixel-topic experiment with live ASCII
// visualization.
//
// Ten 5×5 row/column topics are augmented by random pixel swaps and hidden;
// a corpus is generated from the augmented topics; Source-LDA receives only
// the *original* topics as its knowledge source and must discover — and
// correctly label — the augmented versions (something EDA cannot do because
// its φ is frozen, and CTM cannot because the swapped pixel is outside each
// concept's word set).
//
// Run: go run ./examples/graphical
package main

import (
	"fmt"
	"log"

	"sourcelda/internal/core"
	"sourcelda/internal/pixel"
	"sourcelda/internal/rng"
	"sourcelda/internal/stats"
)

func main() {
	gen := rng.New(13)
	orig := pixel.OriginalTopics()
	aug := pixel.Augment(orig, gen)

	fmt.Println("original topics (the knowledge source):")
	fmt.Println(pixel.RenderRow(orig[:5]))
	fmt.Println()
	fmt.Println(pixel.RenderRow(orig[5:]))
	fmt.Println()
	fmt.Println("augmented topics (hidden; used to generate the corpus):")
	fmt.Println(pixel.RenderRow(aug[:5]))
	fmt.Println()
	fmt.Println(pixel.RenderRow(aug[5:]))

	corpus := pixel.GenerateCorpus(aug, 1500, 25, 1, gen)
	source := pixel.KnowledgeSource(orig, 500)
	fmt.Printf("\ncorpus: %d documents × 25 tokens\n", corpus.NumDocs())

	snapshots := map[int]bool{0: true, 19: true, 99: true, 299: true}
	m, err := core.Fit(corpus, source, core.Options{
		Alpha:            1,
		LambdaMode:       core.LambdaIntegrated,
		Mu:               0.7,
		Sigma:            0.3,
		QuadraturePoints: 5,
		UseSmoothing:     true,
		Iterations:       300,
		Seed:             99,
		TraceLikelihood:  true,
		OnIteration: func(iter int, m *core.Model) {
			if !snapshots[iter] {
				return
			}
			phi := m.Phi()
			fmt.Printf("\nafter iteration %d (log-likelihood %.0f):\n",
				iter+1, m.LikelihoodTrace[len(m.LikelihoodTrace)-1])
			fmt.Println(pixel.RenderRow(asTopics(phi[:5])))
			fmt.Println()
			fmt.Println(pixel.RenderRow(asTopics(phi[5:10])))
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer m.Close()

	phi := m.Phi()
	var total float64
	for t := 0; t < pixel.NumTopics; t++ {
		total += stats.JSDivergence(phi[t], smooth(aug[t]))
	}
	fmt.Printf("\naverage JS divergence to the hidden augmented topics: %.4f (paper: 0.012)\n",
		total/float64(pixel.NumTopics))
	fmt.Println("each topic above should show the *augmented* pattern while keeping its original label.")
}

func asTopics(phi [][]float64) []pixel.Topic {
	out := make([]pixel.Topic, len(phi))
	for i, row := range phi {
		out[i] = pixel.Topic(row)
	}
	return out
}

func smooth(t pixel.Topic) []float64 {
	out := make([]float64, len(t))
	var norm float64
	for w, p := range t {
		out[w] = p + 0.01
		norm += out[w]
	}
	for w := range out {
		out[w] /= norm
	}
	return out
}
