package core

import (
	"math"
	"strings"
	"testing"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
)

func selectFixture(t *testing.T) (*corpus.Corpus, *knowledge.Source) {
	t.Helper()
	c := corpus.New()
	for i := 0; i < 20; i++ {
		c.AddText("s", "pencil ruler eraser pencil notebook paper pencil ruler", nil)
		c.AddText("b", "baseball umpire pitcher baseball inning glove baseball umpire", nil)
	}
	school := knowledge.NewArticleFromText("School Supplies",
		strings.Repeat("pencil pencil pencil ruler ruler eraser notebook paper ", 25), c.Vocab, nil, true)
	ball := knowledge.NewArticleFromText("Baseball",
		strings.Repeat("baseball baseball baseball umpire umpire pitcher inning glove ", 25), c.Vocab, nil, true)
	return c, knowledge.MustNewSource([]*knowledge.Article{school, ball})
}

func TestSelectParameters(t *testing.T) {
	c, src := selectFixture(t)
	sel, err := SelectParameters(c, src, Options{Alpha: 0.5, Beta: 0.01}, ParameterGrid{
		Mus:                  []float64{0.3, 0.9},
		Sigmas:               []float64{0.2, 0.5},
		TrainIterations:      30,
		PerplexityIterations: 20,
		Seed:                 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Candidates) != 4 {
		t.Fatalf("evaluated %d candidates, want 4", len(sel.Candidates))
	}
	for _, cand := range sel.Candidates {
		if cand.Perplexity <= 1 || math.IsNaN(cand.Perplexity) {
			t.Fatalf("candidate µ=%v σ=%v has degenerate perplexity %v",
				cand.Mu, cand.Sigma, cand.Perplexity)
		}
		if cand.Perplexity < sel.Best.Perplexity {
			t.Fatalf("Best (%v) is not minimal: candidate %v", sel.Best.Perplexity, cand.Perplexity)
		}
	}
	// The best pair must come from the grid.
	found := false
	for _, mu := range []float64{0.3, 0.9} {
		for _, sg := range []float64{0.2, 0.5} {
			if sel.Best.Mu == mu && sel.Best.Sigma == sg {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("best (µ=%v, σ=%v) not on the grid", sel.Best.Mu, sel.Best.Sigma)
	}
}

func TestSelectParametersDeterministic(t *testing.T) {
	c, src := selectFixture(t)
	grid := ParameterGrid{
		Mus: []float64{0.5}, Sigmas: []float64{0.3},
		TrainIterations: 15, PerplexityIterations: 10, Seed: 9,
	}
	a, err := SelectParameters(c, src, Options{Alpha: 0.5, Beta: 0.01}, grid)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SelectParameters(c, src, Options{Alpha: 0.5, Beta: 0.01}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Perplexity != b.Best.Perplexity {
		t.Fatal("same seed produced different grid results")
	}
}

func TestSelectParametersValidation(t *testing.T) {
	_, src := selectFixture(t)
	tiny := corpus.New()
	tiny.AddText("only", "word", nil)
	if _, err := SelectParameters(tiny, src, Options{}, ParameterGrid{}); err == nil {
		t.Fatal("single-document corpus accepted")
	}
}

func TestReduceByClustering(t *testing.T) {
	c, src := selectFixture(t)
	m, err := Fit(c, src, Options{
		NumFreeTopics: 2,
		Alpha:         0.5,
		LambdaMode:    LambdaFixed, Lambda: 1,
		Iterations: 50, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res := m.Result()
	red, err := res.ReduceByClustering(2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(red.Centroids) != 2 || len(red.Membership) != res.NumTopics() || len(red.Labels) != 2 {
		t.Fatalf("shapes: %d centroids, %d members, %d labels",
			len(red.Centroids), len(red.Membership), len(red.Labels))
	}
	for k, centroid := range red.Centroids {
		var s float64
		for _, p := range centroid {
			s += p
		}
		if math.Abs(s-1) > 1e-6 {
			t.Fatalf("centroid %d sums to %v", k, s)
		}
	}
	// The two dominant source topics should end in different clusters, so
	// both labels should be source labels.
	seen := map[string]bool{}
	for _, l := range red.Labels {
		seen[l] = true
	}
	if !seen["School Supplies"] || !seen["Baseball"] {
		t.Fatalf("cluster labels %v should carry both source labels", red.Labels)
	}
	// Bounds checks.
	if _, err := res.ReduceByClustering(0, 1); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := res.ReduceByClustering(99, 1); err == nil {
		t.Fatal("k>T accepted")
	}
}
