package core

import (
	"strings"
	"testing"
)

// TestSetGlobalCountsZeroOverlayIsIdentity pins the N=1 distributed
// contract: installing global counts that equal the chain's own counts (the
// overlay is zero) must not change the sampled sequence — in every sweep
// mode and with the sparse kernel, whose nonzero lists are rebuilt by the
// install.
func TestSetGlobalCountsZeroOverlayIsIdentity(t *testing.T) {
	data := sweepFixture(t)
	base := Options{
		NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, UseSmoothing: true,
		Iterations: 12, Seed: 99,
	}
	variants := []struct {
		name string
		set  func(*Options)
	}{
		{"sequential", func(o *Options) {}},
		{"sequential-sparse", func(o *Options) { o.Sampler = SamplerSparse }},
		{"sharded-multi", func(o *Options) { o.SweepMode = SweepShardedDocs; o.Shards = 4; o.Threads = 4 }},
	}
	for _, v := range variants {
		opts := base
		v.set(&opts)

		plain, err := NewModel(data.Corpus, data.Source, opts)
		if err != nil {
			t.Fatal(err)
		}
		plain.Run(12)

		overlaid, err := NewModel(data.Corpus, data.Source, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 12; i += 4 {
			// own counts as the "global" slab: external is identically zero.
			if err := overlaid.SetGlobalCounts(overlaid.OwnWordTopicCounts()); err != nil {
				t.Fatalf("%s: SetGlobalCounts: %v", v.name, err)
			}
			overlaid.Run(4)
		}
		assignmentsEqual(t, v.name, overlaid.Assignments(), plain.Assignments())
		plain.Close()
		overlaid.Close()
	}
}

// TestExternalOverlaySurvivesSweeps checks the bookkeeping invariants of a
// genuinely nonzero overlay: the live slabs hold own + external at every
// boundary, OwnWordTopicCounts subtracts the overlay exactly (it always
// matches a from-scratch rebuild over the assignments), per-word deltas
// between boundaries sum to zero (tokens move between topics, never appear
// or vanish), and the sharded barrier does not drop the overlay.
func TestExternalOverlaySurvivesSweeps(t *testing.T) {
	data := sweepFixture(t)
	for _, mode := range []struct {
		name string
		set  func(*Options)
	}{
		{"sequential", func(o *Options) {}},
		{"sharded-multi", func(o *Options) { o.SweepMode = SweepShardedDocs; o.Shards = 3; o.Threads = 3 }},
	} {
		opts := Options{
			NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
			LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
			QuadraturePoints: 5, UseSmoothing: true,
			Iterations: 8, Seed: 7,
		}
		mode.set(&opts)
		m, err := NewModel(data.Corpus, data.Source, opts)
		if err != nil {
			t.Fatal(err)
		}

		// A synthetic second worker: every (word, topic) pair contributes
		// (w+t) mod 3 external tokens.
		own := m.OwnWordTopicCounts()
		global := make([]int32, len(own))
		extTotal := make([]int32, m.T)
		for i, o := range own {
			e := int32((i/m.T + i%m.T) % 3)
			global[i] = o + e
			extTotal[i%m.T] += e
		}
		if err := m.SetGlobalCounts(global); err != nil {
			t.Fatalf("%s: SetGlobalCounts: %v", mode.name, err)
		}

		before := m.OwnWordTopicCounts()
		m.Run(8)
		after := m.OwnWordTopicCounts()

		// Own counts must match a from-scratch rebuild over the assignments.
		fresh := newCountStore(m.V, m.D, m.T)
		for d, doc := range m.c.Docs {
			for i, w := range doc.Words {
				fresh.wordTopic[w*m.T+m.z[d][i]]++
				fresh.topicTotal[m.z[d][i]]++
			}
		}
		for i := range after {
			if after[i] != fresh.wordTopic[i] {
				t.Fatalf("%s: own count %d is %d; rebuild from assignments gives %d",
					mode.name, i, after[i], fresh.wordTopic[i])
			}
			// Live slab = own + external at the boundary.
			if want := after[i] + m.ext.wordTopic[i]; m.counts.wordTopic[i] != want {
				t.Fatalf("%s: live count %d is %d, want own+ext = %d", mode.name, i, m.counts.wordTopic[i], want)
			}
		}
		for t2 := 0; t2 < m.T; t2++ {
			if want := fresh.topicTotal[t2] + extTotal[t2]; m.counts.topicTotal[t2] != want {
				t.Fatalf("%s: live topic total %d is %d, want own+ext = %d",
					mode.name, t2, m.counts.topicTotal[t2], want)
			}
		}
		// Per-word token conservation of the delta.
		for w := 0; w < m.V; w++ {
			var sum int32
			for t2 := 0; t2 < m.T; t2++ {
				sum += after[w*m.T+t2] - before[w*m.T+t2]
			}
			if sum != 0 {
				t.Fatalf("%s: word %d delta sums to %d tokens, want 0", mode.name, w, sum)
			}
		}
		m.Close()
	}
}

func TestSetGlobalCountsValidation(t *testing.T) {
	data := sweepFixture(t)
	opts := Options{
		NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, Iterations: 4, Seed: 1,
	}
	m, err := NewModel(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if err := m.SetGlobalCounts(make([]int32, 3)); err == nil || !strings.Contains(err.Error(), "entries") {
		t.Fatalf("wrong-length global slab not rejected: %v", err)
	}
	below := m.OwnWordTopicCounts()
	// Find a nonzero own count and undershoot it.
	for i := range below {
		if below[i] > 0 {
			below[i]--
			break
		}
	}
	if err := m.SetGlobalCounts(below); err == nil || !strings.Contains(err.Error(), "below") {
		t.Fatalf("global slab below own counts not rejected: %v", err)
	}
}
