package core

import (
	"math"
	"testing"
	"testing/quick"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/rng"
)

// TestSingleWordVocabulary: the degenerate smallest possible problem must
// not panic or produce non-finite distributions.
func TestSingleWordVocabulary(t *testing.T) {
	c := corpus.New()
	c.AddText("d", "word word word", nil)
	art := knowledge.NewArticleFromText("Only", "word word", c.Vocab, nil, true)
	src := knowledge.MustNewSource([]*knowledge.Article{art})
	m, err := Fit(c, src, Options{LambdaMode: LambdaFixed, Lambda: 1, Iterations: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	phi := m.Phi()
	if math.Abs(phi[0][0]-1) > 1e-9 {
		t.Fatalf("single-word φ = %v, want 1", phi[0][0])
	}
}

// TestArticleWithNoCorpusWords: a knowledge article entirely outside the
// corpus vocabulary degenerates to the ε-uniform prior but must stay usable.
func TestArticleWithNoCorpusWords(t *testing.T) {
	c := corpus.New()
	c.AddText("d1", "alpha beta alpha gamma", nil)
	c.AddText("d2", "beta beta gamma alpha", nil)
	empty := &knowledge.Article{Label: "Unrelated", Counts: map[int]int{}}
	related := knowledge.NewArticleFromText("Related",
		"alpha alpha beta beta gamma gamma alpha beta", c.Vocab, nil, true)
	src := knowledge.MustNewSource([]*knowledge.Article{related, empty})
	m, err := Fit(c, src, Options{LambdaMode: LambdaFixed, Lambda: 1, Iterations: 40, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	// The related topic should dominate: its prior matches the corpus, the
	// empty article offers only ε-mass.
	counts := m.TokensPerTopic()
	if counts[0] <= counts[1] {
		t.Fatalf("related topic holds %d tokens vs unrelated %d", counts[0], counts[1])
	}
	for _, row := range m.Phi() {
		for _, p := range row {
			if math.IsNaN(p) || p < 0 {
				t.Fatal("invalid φ entry")
			}
		}
	}
}

// TestEmptyDocumentsTolerated: zero-length documents must flow through
// fitting and θ computation.
func TestEmptyDocumentsTolerated(t *testing.T) {
	c := corpus.New()
	c.AddText("d1", "alpha beta alpha", nil)
	c.AddDocument(&corpus.Document{Name: "empty"})
	c.AddText("d2", "beta beta alpha", nil)
	art := knowledge.NewArticleFromText("A", "alpha alpha beta", c.Vocab, nil, true)
	src := knowledge.MustNewSource([]*knowledge.Article{art})
	m, err := Fit(c, src, Options{LambdaMode: LambdaFixed, Lambda: 1, Iterations: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	theta := m.Theta()
	var s float64
	for _, p := range theta[1] { // the empty document
		if math.IsNaN(p) {
			t.Fatal("NaN in empty-document θ")
		}
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("empty-document θ sums to %v", s)
	}
}

// TestCountsInvariantUnderRandomOptions: after any number of sweeps under
// randomized valid options, the count matrices must exactly agree with the
// assignment vector — the core structural invariant of collapsed Gibbs.
func TestCountsInvariantUnderRandomOptions(t *testing.T) {
	cs := caseStudyFixture()
	f := func(seed int64) bool {
		r := rng.New(seed)
		opts := Options{
			NumFreeTopics: r.Intn(3),
			Alpha:         0.1 + r.Float64(),
			Beta:          0.01 + r.Float64()*0.2,
			Iterations:    1 + r.Intn(8),
			Seed:          seed,
		}
		if r.Bernoulli(0.5) {
			opts.LambdaMode = LambdaFixed
			opts.Lambda = r.Float64()
		} else {
			opts.LambdaMode = LambdaIntegrated
			opts.Mu = r.Float64()
			opts.Sigma = 0.1 + r.Float64()
			opts.QuadraturePoints = 3 + r.Intn(5)
			opts.UseSmoothing = r.Bernoulli(0.5)
		}
		if r.Bernoulli(0.3) {
			opts.PruneDeadTopics = true
			opts.PruneAfter = 2
		}
		m, err := Fit(cs.Corpus, cs.Source, opts)
		if err != nil {
			return false
		}
		defer m.Close()
		// Rebuild counts from assignments.
		T := m.NumTopics()
		wantTotals := make([]int, T)
		for d, doc := range cs.Corpus.Docs {
			perDoc := make([]int, T)
			for i := range doc.Words {
				k := m.Assignments()[d][i]
				if k < 0 || k >= T {
					return false
				}
				perDoc[k]++
				wantTotals[k]++
			}
			theta := m.Theta()[d]
			var s float64
			for _, p := range theta {
				s += p
			}
			if math.Abs(s-1) > 1e-9 {
				return false
			}
		}
		got := m.TokensPerTopic()
		for k := range got {
			if got[k] != wantTotals[k] {
				return false
			}
		}
		// φ rows normalized and finite.
		for _, row := range m.Phi() {
			var s float64
			for _, p := range row {
				if p < 0 || math.IsNaN(p) {
					return false
				}
				s += p
			}
			if math.Abs(s-1) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPruningNeverKillsEverything: even absurd thresholds must leave at
// least one enabled topic and all tokens assigned.
func TestPruningNeverKillsEverything(t *testing.T) {
	cs := caseStudyFixture()
	m, err := Fit(cs.Corpus, cs.Source, Options{
		LambdaMode: LambdaFixed, Lambda: 1,
		PruneDeadTopics: true,
		PruneAfter:      2,
		PruneMinDocs:    1_000_000,
		Iterations:      20,
		Seed:            5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	enabled := 0
	for _, dead := range m.DisabledTopics() {
		if !dead {
			enabled++
		}
	}
	if enabled == 0 {
		t.Fatal("pruning eliminated every topic")
	}
	var total int
	for _, n := range m.TokensPerTopic() {
		total += n
	}
	if total != cs.Corpus.TotalTokens() {
		t.Fatalf("tokens lost during pruning: %d of %d", total, cs.Corpus.TotalTokens())
	}
}

// TestPruningEliminatesDeadTopic: a source topic with no corpus support
// must be eliminated and keep zero tokens afterwards.
func TestPruningEliminatesDeadTopic(t *testing.T) {
	c := corpus.New()
	for i := 0; i < 20; i++ {
		c.AddText("d", "alpha beta alpha beta gamma gamma", nil)
	}
	live := knowledge.NewArticleFromText("Live", "alpha alpha beta beta gamma gamma", c.Vocab, nil, true)
	dead := knowledge.NewArticleFromText("Dead", "delta delta epsilon epsilon", c.Vocab, nil, true)
	src := knowledge.MustNewSource([]*knowledge.Article{live, dead})
	m, err := Fit(c, src, Options{
		LambdaMode: LambdaFixed, Lambda: 1,
		PruneDeadTopics: true,
		PruneAfter:      5,
		PruneMinDocs:    5,
		PruneMinTokens:  2,
		Iterations:      30,
		Seed:            6,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	disabled := m.DisabledTopics()
	if !disabled[1] {
		t.Fatal("dead topic survived pruning")
	}
	if disabled[0] {
		t.Fatal("live topic was pruned")
	}
	if m.TokensPerTopic()[1] != 0 {
		t.Fatalf("disabled topic still holds %d tokens", m.TokensPerTopic()[1])
	}
}

// TestRunExtendsChainDeterministically: Run(a) then Run(b) equals Run(a+b).
func TestRunExtendsChainDeterministically(t *testing.T) {
	cs := caseStudyFixture()
	opts := Options{LambdaMode: LambdaFixed, Lambda: 1, Iterations: 1, Seed: 11}
	m1, err := NewModel(cs.Corpus, cs.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	m1.Run(4)
	m1.Run(6)

	m2, err := NewModel(cs.Corpus, cs.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	m2.Run(10)

	for d := range m1.Assignments() {
		for i := range m1.Assignments()[d] {
			if m1.Assignments()[d][i] != m2.Assignments()[d][i] {
				t.Fatal("split Run diverged from single Run")
			}
		}
	}
}
