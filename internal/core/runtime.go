package core

import (
	"fmt"
	"time"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/parallel"
	"sourcelda/internal/rng"
)

// ChainRuntime is the mutable state of one Source-LDA collapsed Gibbs chain:
// count slabs, per-token assignments, λ-quadrature state, sampling views and
// deterministic RNG streams. It is the single source of truth every chain
// mutation drives — full training sweeps (Model.Run), prune-time resampling,
// checkpoint capture/restore, AND the incremental AppendDocs path that folds
// streamed documents into a warm chain — so a served model can keep learning
// after training instead of being a one-way export.
//
// The read side is Freeze: a frozen conditional slab snapshotted from the
// runtime's current counts, which internal/infer scores against while the
// runtime continues to mutate. Snapshot-then-mutate replaces the old
// train-once/serve-forever split: the same counts that answered the last
// inference request absorb the next streamed document.
//
// A ChainRuntime is NOT safe for concurrent mutation: sweeps, AppendDocs and
// Checkpoint must be serialized by the caller (the facade's Runtime wrapper
// does this with one mutex).
type ChainRuntime struct {
	opts Options
	c    *corpus.Corpus
	src  *knowledge.Source
	r    *rng.RNG

	// K free topics occupy indices [0, K); the S = src.Len() source topics
	// occupy [K, T). T = K + S.
	K, S, T int
	V, D    int

	// counts holds the flat word-topic / document-topic slabs; z the
	// per-token assignments ([D][tokens]).
	counts *countStore
	z      [][]int
	// delta holds the precomputed λ-quadrature state of the source topics.
	delta *deltaStore

	pool       *parallel.Pool
	sampler    parallel.TopicSampler
	sweepCount int
	// disabled marks topics eliminated by in-inference superset reduction
	// (§III-C3); disabled topics sample with probability zero.
	disabled []bool

	// seq is the sampling view over the global count slabs used by the
	// sequential sweep mode, token resampling during pruning, and AppendDocs.
	seq *gibbsView
	// streams are the deterministic RNG streams tokens draw from: stream 0
	// for sequential sweeps (plus pruning and AppendDocs), stream i for
	// document shard i.
	streams []*rng.RNG
	// shards are the per-shard working states of SweepShardedDocs.
	shards []*shardView

	// ext is the distributed-training overlay: topic-word counts contributed
	// by other workers' shards, installed by SetGlobalCounts and re-added at
	// every bulk count rebuild. Nil outside distributed training.
	ext *externalCounts

	// LikelihoodTrace holds the collapsed joint log-likelihood per sweep
	// when tracing is enabled.
	LikelihoodTrace []float64
	// IterationTimes holds per-sweep wall-clock durations (Fig. 8(f)).
	IterationTimes []time.Duration
}

// NumDocs returns the number of documents the chain currently covers,
// including documents folded in by AppendDocs.
func (m *ChainRuntime) NumDocs() int { return m.D }

// AppendDocs folds new documents into the warm chain: each document is
// appended to the corpus, its tokens are initialized from the current
// conditionals, and foldInSweeps in-place Gibbs sweeps over just that
// document refine its assignments against the live global counts — real
// count updates, not the read-only fold-in of internal/infer. Word ids must
// already be interned in the training vocabulary (ids in [0, V)); callers
// drop out-of-vocabulary tokens first, exactly as serving inference does.
//
// The initialization draw for a token of word w samples topics proportional
// to α·Cond(w) — the same distribution internal/infer's estimator starts
// from — because the new document's topic counts are all zero at that point.
// AppendDocs is therefore the literal promotion of fold-in inference into
// count updates: identical first draw, but the result is written back into
// the chain instead of discarded.
//
// Determinism: every draw consumes exactly one uniform from stream 0 (the
// sequential/pruning stream, whose position checkpoints capture), and
// documents are processed strictly one at a time — grow, initialize, fold
// in, then the next — so appending N documents in one call is bit-identical
// to N single-document calls, and append → Checkpoint → Restore round-trips
// exactly.
//
// foldInSweeps must be ≥ 0; 0 means initialization only. Empty documents are
// rejected — callers that filter out-of-vocabulary tokens must also drop
// documents left with no tokens.
func (m *ChainRuntime) AppendDocs(docs []*corpus.Document, foldInSweeps int) error {
	if foldInSweeps < 0 {
		return fmt.Errorf("core: fold-in sweep count %d is negative", foldInSweeps)
	}
	for n, doc := range docs {
		if doc == nil {
			return fmt.Errorf("core: appended document %d is nil", n)
		}
		if len(doc.Words) == 0 {
			return fmt.Errorf("core: appended document %d has no tokens", n)
		}
		for _, w := range doc.Words {
			if w < 0 || w >= m.V {
				return fmt.Errorf("core: appended document %d has word id %d outside the training vocabulary (size %d)", n, w, m.V)
			}
		}
	}
	v := m.seq
	if v.sparse != nil && v.sparse.listsStale {
		// Multi-shard sweeps leave the sequential view's nonzero lists stale
		// at the barrier; appends draw through them, so refresh first —
		// exactly as prune-time resampling does.
		v.sparse.rebuildLists()
	}
	r := m.streams[0]
	for _, doc := range docs {
		if v.sparse != nil {
			// Pin the accumulated bucket totals to their canonical
			// recomputation before every document, the same boundary resync
			// sweeps perform: a chain restored from a checkpoint rebuilds the
			// totals fresh, so without this pin the restored chain's next
			// append could diverge in float accumulation order — and a batched
			// append would diverge from one-at-a-time calls.
			v.sparse.resyncTotals()
		}
		d := m.D
		m.c.AddDocument(doc)
		m.counts.appendDoc(len(doc.Words))
		m.D++
		zd := make([]int, len(doc.Words))
		m.z = append(m.z, zd)
		v.setDoc(m.counts.docRow(d))
		// Initialization: place each token with the full dec→fill→inc
		// protocol minus the dec (there is no previous assignment to remove).
		// With the document row still empty, fill's conditional reduces to
		// α·Cond(w) per topic — the frozen estimator's starting distribution.
		for i, w := range doc.Words {
			v.setToken(w)
			zd[i] = m.sampler.Sample(v.T, v.fillFn, r.Float64())
			v.inc(zd[i])
		}
		// Fold-in: in-place Gibbs over just this document against the live
		// global counts, the warm-update analogue of a training sweep.
		for s := 0; s < foldInSweeps; s++ {
			for i, w := range doc.Words {
				v.resample(zd, i, w, m.sampler, r)
			}
		}
	}
	m.rebalanceShards()
	return nil
}

// rebalanceShards re-partitions the document shards after the corpus grew.
// Shard views hold no per-document state between sweeps (non-aliasing views
// re-copy the global slabs at every sweep barrier), so updating the [lo, hi)
// ranges in place is sufficient while the stream count is unchanged. The
// count can only grow when the original corpus was smaller than the
// configured shard count (numStreams caps at D); new streams start fresh at
// position 0, which is deterministic regardless of how appends were batched.
func (m *ChainRuntime) rebalanceShards() {
	if m.opts.SweepMode != SweepShardedDocs || len(m.shards) == 0 {
		return
	}
	nStreams := m.opts.numStreams(m.D)
	if nStreams == len(m.shards) {
		for i, sh := range m.shards {
			sh.lo, sh.hi = i*m.D/nStreams, (i+1)*m.D/nStreams
		}
		return
	}
	for i := len(m.streams); i < nStreams; i++ {
		m.streams = append(m.streams, rng.NewStream(m.opts.Seed, int64(i)))
	}
	m.buildShards(nStreams)
}

// Source returns the knowledge source the chain was built over.
func (m *ChainRuntime) Source() *knowledge.Source { return m.src }

// Options returns a copy of the chain's effective (defaulted) options.
func (m *ChainRuntime) Options() Options { return m.opts }
