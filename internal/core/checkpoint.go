package core

import (
	"fmt"
	"time"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
)

// Checkpoint is a complete snapshot of a chain's mutable state at a sweep
// boundary. Together with the corpus, knowledge source and Options the chain
// was built from — none of which a checkpoint stores — it reconstructs a
// live Model via Restore such that continuing for the remaining sweeps is
// bit-for-bit identical to a run that was never interrupted, in both the
// sequential and document-sharded sweep modes.
//
// Only genuinely mutable state is captured. The count slabs are rebuilt from
// the per-token assignments (they are a pure function of Z and the corpus),
// and the δ^g(λ) quadrature values are rebuilt from the knowledge source, so
// a checkpoint's size is dominated by one int32 per corpus token.
//
// The identity fields (Seed, OptionsDigest, dimension counts, DocLengths)
// exist so Restore can refuse a checkpoint that was written under a
// different corpus, source, or chain configuration instead of silently
// producing a chain that neither run describes.
type Checkpoint struct {
	// Sweep is the number of completed sweeps (the global 1-based index of
	// the last finished sweep).
	Sweep int
	// Seed is the chain seed the checkpoint was captured under.
	Seed int64
	// OptionsDigest fingerprints every chain-shaping option (Options.chainDigest).
	OptionsDigest uint64
	// NumFreeTopics (K), NumSourceTopics (S), VocabSize (V) and NumDocs (D)
	// pin the model dimensions.
	NumFreeTopics   int
	NumSourceTopics int
	VocabSize       int
	NumDocs         int
	// DocLengths[d] is the token count of document d; it both validates the
	// corpus identity and delimits documents inside the flat Z vector.
	DocLengths []int32
	// Z holds every token's topic assignment, documents concatenated in
	// corpus order.
	Z []int32
	// LambdaWeights is the flattened (topic, quadrature-node) λ posterior
	// weight matrix of the source topics (S × P, node fastest).
	LambdaWeights []float64
	// Disabled marks topics eliminated by in-inference superset reduction.
	Disabled []bool
	// StreamPos[i] is the number of source steps RNG stream i has consumed;
	// Restore fast-forwards fresh streams to these positions (rng.Skip).
	StreamPos []uint64
	// LikelihoodTrace and IterationTimes carry the per-sweep traces so a
	// resumed run's Result has full-length histories. Restored iteration
	// times are historical wall-clock readings: they are the one Result
	// field that is not bit-reproducible across interrupted runs.
	LikelihoodTrace []float64
	IterationTimes  []time.Duration
}

// Checkpoint captures the chain's current state. Call it only between
// sweeps — from a SweepHook, or after Run returns — never concurrently with
// one. The returned snapshot shares nothing with the model and stays valid
// after further sweeps.
func (m *ChainRuntime) Checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Sweep:           m.sweepCount,
		Seed:            m.opts.Seed,
		OptionsDigest:   m.opts.chainDigest(),
		NumFreeTopics:   m.K,
		NumSourceTopics: m.S,
		VocabSize:       m.V,
		NumDocs:         m.D,
		LambdaWeights:   append([]float64(nil), m.delta.weights...),
		Disabled:        append([]bool(nil), m.disabled...),
		LikelihoodTrace: append([]float64(nil), m.LikelihoodTrace...),
		IterationTimes:  append([]time.Duration(nil), m.IterationTimes...),
	}
	total := 0
	ck.DocLengths = make([]int32, m.D)
	for d, zd := range m.z {
		ck.DocLengths[d] = int32(len(zd))
		total += len(zd)
	}
	ck.Z = make([]int32, 0, total)
	for _, zd := range m.z {
		for _, t := range zd {
			ck.Z = append(ck.Z, int32(t))
		}
	}
	ck.StreamPos = make([]uint64, len(m.streams))
	for i, s := range m.streams {
		ck.StreamPos[i] = s.Pos()
	}
	return ck
}

// Restore reconstructs a live chain from a checkpoint captured on the same
// corpus, knowledge source and chain options. The assignments, count slabs,
// λ posterior weights, pruning flags, sweep counter, traces and RNG stream
// positions all match the capturing model exactly, so RunWithHook for the
// remaining sweeps continues the original chain bit for bit.
//
// Restore validates the checkpoint against its inputs and fails with a
// descriptive error on any mismatch: different dimensions, per-document
// lengths, out-of-range assignments, or a chain-options digest that differs
// from opts (e.g. a changed seed, prior, or sweep mode).
func Restore(c *corpus.Corpus, src *knowledge.Source, opts Options, ck *Checkpoint) (*Model, error) {
	m, err := newUninitializedModel(c, src, opts)
	if err != nil {
		return nil, err
	}
	if err := m.validateCheckpoint(ck); err != nil {
		return nil, err
	}
	i := 0
	for d := range m.z {
		zd := m.z[d]
		words := c.Docs[d].Words
		for j := range zd {
			t := int(ck.Z[i])
			i++
			zd[j] = t
			m.counts.add(d, words[j], t)
		}
	}
	copy(m.delta.weights, ck.LambdaWeights)
	copy(m.disabled, ck.Disabled)
	m.sweepCount = ck.Sweep
	m.LikelihoodTrace = append([]float64(nil), ck.LikelihoodTrace...)
	m.IterationTimes = append([]time.Duration(nil), ck.IterationTimes...)
	// Views cache reciprocal denominators from the counts, λ weights and
	// disabled flags, so they are built only now that all three are restored.
	m.buildViews()
	for s, stream := range m.streams {
		stream.Skip(ck.StreamPos[s])
	}
	return m, nil
}

// validateCheckpoint cross-checks a checkpoint against the freshly-built
// (still empty) model, naming the offending field on mismatch.
func (m *ChainRuntime) validateCheckpoint(ck *Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("core: nil checkpoint")
	}
	if ck.Sweep < 0 {
		return fmt.Errorf("core: checkpoint sweep count %d is negative", ck.Sweep)
	}
	// The CRC in the persist frame is integrity, not authentication, and
	// Restore replays stream positions one source step at a time — so both
	// the sweep count and the positions need magnitude bounds or a crafted
	// (or badly corrupted) checkpoint could make resume spin for centuries
	// inside rng.Skip with no error.
	if ck.Sweep > maxCheckpointSweeps {
		return fmt.Errorf("core: checkpoint sweep count %d exceeds the %d-sweep limit", ck.Sweep, maxCheckpointSweeps)
	}
	if ck.Seed != m.opts.Seed {
		return fmt.Errorf("core: checkpoint was captured with seed %d; Options.Seed is %d", ck.Seed, m.opts.Seed)
	}
	if d := m.opts.chainDigest(); ck.OptionsDigest != d {
		return fmt.Errorf("core: checkpoint chain-options digest %#x does not match the supplied Options (%#x); resume with the options the run was started with", ck.OptionsDigest, d)
	}
	if ck.NumFreeTopics != m.K || ck.NumSourceTopics != m.S {
		return fmt.Errorf("core: checkpoint has %d free + %d source topics; model has %d + %d",
			ck.NumFreeTopics, ck.NumSourceTopics, m.K, m.S)
	}
	if ck.VocabSize != m.V {
		return fmt.Errorf("core: checkpoint vocabulary size %d does not match corpus vocabulary %d", ck.VocabSize, m.V)
	}
	if ck.NumDocs != m.D || len(ck.DocLengths) != m.D {
		return fmt.Errorf("core: checkpoint covers %d documents (%d lengths); corpus has %d",
			ck.NumDocs, len(ck.DocLengths), m.D)
	}
	total := 0
	for d, n := range ck.DocLengths {
		if int(n) != len(m.c.Docs[d].Words) {
			return fmt.Errorf("core: checkpoint document %d has %d tokens; corpus document has %d",
				d, n, len(m.c.Docs[d].Words))
		}
		total += int(n)
	}
	if len(ck.Z) != total {
		return fmt.Errorf("core: checkpoint has %d assignments for %d corpus tokens", len(ck.Z), total)
	}
	for i, t := range ck.Z {
		if t < 0 || int(t) >= m.T {
			return fmt.Errorf("core: checkpoint assignment %d is topic %d; model has %d topics", i, t, m.T)
		}
	}
	if want := m.S * m.delta.P; len(ck.LambdaWeights) != want {
		return fmt.Errorf("core: checkpoint has %d λ weights; model expects %d (S=%d topics × P=%d nodes)",
			len(ck.LambdaWeights), want, m.S, m.delta.P)
	}
	if len(ck.Disabled) != m.T {
		return fmt.Errorf("core: checkpoint has %d disabled flags for %d topics", len(ck.Disabled), m.T)
	}
	if want := m.opts.numStreams(m.D); len(ck.StreamPos) != want {
		return fmt.Errorf("core: checkpoint has %d RNG stream positions; this configuration uses %d streams",
			len(ck.StreamPos), want)
	}
	// A stream position can never exceed the draws the chain could have
	// made: roughly one source step per token per sweep for sampling, the
	// same again for prune-time resampling, with generous headroom for the
	// samplers' internal rejection loops and for AppendDocs fold-in (one
	// draw per token to place plus one per fold-in sweep, against a total
	// that already includes the appended tokens). float64 sidesteps
	// overflow; the precision loss is irrelevant at a ×8 margin.
	limit := 8 * (float64(total) + 1) * (float64(ck.Sweep) + 1)
	for i, p := range ck.StreamPos {
		if float64(p) > limit {
			return fmt.Errorf("core: checkpoint stream %d position %d is implausible for %d tokens over %d sweeps",
				i, p, total, ck.Sweep)
		}
	}
	return nil
}

// maxCheckpointSweeps bounds how many completed sweeps a checkpoint may
// claim — far beyond any real chain (the paper's runs are in the
// thousands), but small enough that the stream-position plausibility bound
// it feeds stays meaningful against crafted files.
const maxCheckpointSweeps = 1 << 30
