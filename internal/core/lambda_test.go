package core

import (
	"math"
	"strings"
	"testing"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
)

// lambdaFixture builds a two-topic corpus where topic A's documents follow
// its article's frequency profile exactly (a conforming, λ≈1 topic) while
// topic B's documents invert its article's profile (a deviating, low-λ
// topic). Both articles share the same word set, so only frequency profiles
// distinguish them — the regime where the λ posterior matters.
func lambdaFixture(t *testing.T) (*corpus.Corpus, *knowledge.Source) {
	t.Helper()
	c := corpus.New()
	for i := 0; i < 30; i++ {
		// Follows article A's profile (alpha-heavy).
		c.AddText("a", "alpha alpha alpha alpha beta beta gamma delta", nil)
		// Inverts article B's profile (article says epsilon-heavy; corpus
		// is heavy on theta).
		c.AddText("b", "theta theta theta theta eta eta zeta epsilon", nil)
	}
	artA := knowledge.NewArticleFromText("Conforming",
		strings.Repeat("alpha alpha alpha alpha beta beta gamma delta ", 40), c.Vocab, nil, true)
	artB := knowledge.NewArticleFromText("Deviating",
		strings.Repeat("epsilon epsilon epsilon epsilon zeta zeta eta theta ", 40), c.Vocab, nil, true)
	return c, knowledge.MustNewSource([]*knowledge.Article{artA, artB})
}

func TestLambdaPosteriorSeparatesConformingFromDeviating(t *testing.T) {
	c, src := lambdaFixture(t)
	m, err := Fit(c, src, Options{
		Alpha:            0.5,
		LambdaMode:       LambdaIntegrated,
		Mu:               0.5,
		Sigma:            1.0,
		QuadraturePoints: 9,
		LambdaBurnIn:     5,
		Iterations:       60,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	means := m.LambdaPosteriorMeans()
	if len(means) != 2 {
		t.Fatalf("means = %v", means)
	}
	for i, mu := range means {
		if mu < 0 || mu > 1 {
			t.Fatalf("posterior mean %d = %v outside [0,1]", i, mu)
		}
	}
	if means[0] <= means[1] {
		t.Fatalf("conforming topic's λ posterior (%v) should exceed the deviating topic's (%v)",
			means[0], means[1])
	}
}

func TestFreezeLambdaWeightsKeepsPrior(t *testing.T) {
	c, src := lambdaFixture(t)
	m, err := Fit(c, src, Options{
		Alpha:               0.5,
		LambdaMode:          LambdaIntegrated,
		Mu:                  0.5,
		Sigma:               1.0,
		QuadraturePoints:    9,
		FreezeLambdaWeights: true,
		Iterations:          30,
		Seed:                3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	means := m.LambdaPosteriorMeans()
	// With frozen weights both topics keep the identical prior mean.
	if math.Abs(means[0]-means[1]) > 1e-12 {
		t.Fatalf("frozen weights should be identical across topics: %v", means)
	}
}

func TestPosteriorLambdaImprovesDeviatingTopicFit(t *testing.T) {
	// The deviating topic's φ should track the corpus (theta-heavy), not
	// the article (epsilon-heavy), once the λ posterior relaxes its prior.
	c, src := lambdaFixture(t)
	m, err := Fit(c, src, Options{
		Alpha:            0.5,
		LambdaMode:       LambdaIntegrated,
		Mu:               0.5,
		Sigma:            1.0,
		QuadraturePoints: 9,
		LambdaBurnIn:     5,
		Iterations:       80,
		Seed:             7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	phi := m.Phi()
	thetaW, _ := c.Vocab.ID("theta")
	epsilonW, _ := c.Vocab.ID("epsilon")
	devTopic := m.NumFreeTopics() + 1
	if phi[devTopic][thetaW] <= phi[devTopic][epsilonW] {
		t.Fatalf("deviating topic still follows its article: theta=%v epsilon=%v",
			phi[devTopic][thetaW], phi[devTopic][epsilonW])
	}
}

func TestReduceToK(t *testing.T) {
	cs := caseStudyFixture()
	m, err := Fit(cs.Corpus, cs.Source, Options{
		NumFreeTopics: 2,
		LambdaMode:    LambdaFixed, Lambda: 1,
		Iterations: 40, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res := m.Result()
	red := res.ReduceToK(2)
	if len(red.Result.Phi) != 2 {
		t.Fatalf("kept %d topics, want 2", len(red.Result.Phi))
	}
	// The kept topics must be the ones with the most tokens.
	minKept := red.Result.TokenCounts[0]
	for _, n := range red.Result.TokenCounts {
		if n < minKept {
			minKept = n
		}
	}
	for t2, n := range res.TokenCounts {
		if red.OldToNew[t2] == -1 && n > minKept {
			t.Fatalf("dropped topic %d has %d tokens > kept minimum %d", t2, n, minKept)
		}
	}
	// θ renormalized.
	for d, row := range red.Result.Theta {
		var s float64
		for _, p := range row {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("reduced θ[%d] sums to %v", d, s)
		}
	}
	// k ≥ T is the identity.
	same := res.ReduceToK(99)
	if len(same.Result.Phi) != res.NumTopics() {
		t.Fatal("over-large k should keep everything")
	}
	for i, t2 := range same.OldToNew {
		if t2 != i {
			t.Fatal("identity mapping expected")
		}
	}
}
