package core

import (
	"errors"
	"fmt"
	"math"

	"sourcelda/internal/corpus"
	"sourcelda/internal/rng"
)

// HeldOutPerplexity estimates test-set perplexity by latent-variable
// estimation via Gibbs sampling on the held-out documents (§III-C5a): test
// tokens are resampled with the trained chain's counts held fixed,
//
//	P(z̃_i=j) ∝ (n^wi_j + ñ^wi_-i,j + β)/(n^·_j + ñ^·_-i,j + Wβ) · (ñ^di_-i,j + α)/(ñ^di_-i + Kα)
//
// for free topics, and the δ-prior analogue (with λ quadrature) for source
// topics. After burnIn sweeps the remaining sweeps average the held-out θ̃;
// perplexity is exp(−Σ log p(w̃)/Ñ) with p(w̃) = Σ_t θ̃_d,t φ_t,w and φ the
// trained model's Eq. 4 estimate.
//
// iterations ≤ 0 defaults to 50 sweeps. burnIn must be non-negative and
// strictly smaller than the (defaulted) iteration count — a schedule with no
// post-burn-in sweeps has nothing to average and is rejected rather than
// silently rewritten.
func (m *ChainRuntime) HeldOutPerplexity(test *corpus.Corpus, iterations, burnIn int, seed int64) (float64, error) {
	if test == nil || test.NumDocs() == 0 {
		return 0, errors.New("core: empty held-out corpus")
	}
	if test.VocabSize() != m.V {
		return 0, errors.New("core: held-out corpus must share the training vocabulary")
	}
	if iterations <= 0 {
		iterations = 50
	}
	if burnIn < 0 {
		return 0, fmt.Errorf("core: held-out burn-in %d is negative", burnIn)
	}
	if burnIn >= iterations {
		return 0, fmt.Errorf("core: held-out burn-in %d leaves no sampling sweeps out of %d iterations; burnIn must be < iterations", burnIn, iterations)
	}
	samples := iterations - burnIn
	r := rng.New(seed)
	o := &m.opts
	alpha, beta := o.Alpha, o.Beta
	vBeta := float64(m.V) * beta

	D := test.NumDocs()
	ztil := make([][]int, D)
	ndTil := make([][]int, D)
	ndsumTil := make([]int, D)
	nwTil := make(map[int][]int) // test word-topic counts, sparse over words
	nwsumTil := make([]int, m.T)

	wordCounts := func(w int) []int {
		row, ok := nwTil[w]
		if !ok {
			row = make([]int, m.T)
			nwTil[w] = row
		}
		return row
	}

	// Random initialization of test assignments.
	for d, doc := range test.Docs {
		ztil[d] = make([]int, len(doc.Words))
		ndTil[d] = make([]int, m.T)
		for i, w := range doc.Words {
			k := r.Intn(m.T)
			ztil[d][i] = k
			ndTil[d][k]++
			ndsumTil[d]++
			wordCounts(w)[k]++
			nwsumTil[k]++
		}
	}

	probs := make([]float64, m.T)
	thetaSum := make([][]float64, D)
	for d := range thetaSum {
		thetaSum[d] = make([]float64, m.T)
	}

	for iter := 0; iter < iterations; iter++ {
		for d, doc := range test.Docs {
			nd := ndTil[d]
			for i, w := range doc.Words {
				old := ztil[d][i]
				nww := wordCounts(w)
				nww[old]--
				nd[old]--
				nwsumTil[old]--

				trainW := m.counts.wordRow(w)
				for t := 0; t < m.T; t++ {
					docPart := float64(nd[t]) + alpha
					combinedW := float64(int(trainW[t]) + nww[t])
					combinedSum := float64(int(m.counts.topicTotal[t]) + nwsumTil[t])
					if t < m.K {
						probs[t] = (combinedW + beta) / (combinedSum + vBeta) * docPart
					} else {
						s := t - m.K
						probs[t] = m.delta.wordProb(s, m.delta.values(s, w), combinedW, combinedSum) * docPart
					}
				}
				k := r.Categorical(probs)
				ztil[d][i] = k
				nww[k]++
				nd[k]++
				nwsumTil[k]++
			}
		}
		if iter >= burnIn {
			tAlpha := float64(m.T) * alpha
			for d := range test.Docs {
				den := float64(ndsumTil[d]) + tAlpha
				for t := 0; t < m.T; t++ {
					thetaSum[d][t] += (float64(ndTil[d][t]) + alpha) / den
				}
			}
		}
	}
	// Normalize θ̃ once: burnIn < iterations guarantees samples ≥ 1, and the
	// per-token scoring loop below then reads plain averages instead of
	// dividing inside its inner loop.
	inv := 1 / float64(samples)
	for d := range thetaSum {
		for t := range thetaSum[d] {
			thetaSum[d][t] *= inv
		}
	}

	phi := m.Phi()
	var logSum float64
	var tokens int
	for d, doc := range test.Docs {
		for _, w := range doc.Words {
			var p float64
			for t := 0; t < m.T; t++ {
				p += thetaSum[d][t] * phi[t][w]
			}
			if p <= 0 {
				p = math.SmallestNonzeroFloat64
			}
			logSum += math.Log(p)
			tokens++
		}
	}
	if tokens == 0 {
		return 0, errors.New("core: held-out corpus has no tokens")
	}
	return math.Exp(-logSum / float64(tokens)), nil
}
