package core

import (
	"math"
	"reflect"
	"testing"
	"time"
)

// resultsEqualModuloTimes compares two Results for bit-for-bit equality of
// everything deterministic. IterationTimes are wall-clock readings — the one
// field that legitimately differs between an uninterrupted run and a
// checkpoint/resume pair — so only their lengths are compared.
func resultsEqualModuloTimes(t *testing.T, name string, got, want *Result) {
	t.Helper()
	if len(got.IterationTimes) != len(want.IterationTimes) {
		t.Fatalf("%s: iteration-time trace length %d, want %d",
			name, len(got.IterationTimes), len(want.IterationTimes))
	}
	g, w := *got, *want
	g.IterationTimes, w.IterationTimes = nil, nil
	if !reflect.DeepEqual(&g, &w) {
		t.Fatalf("%s: resumed result differs from uninterrupted run", name)
	}
}

// TestCheckpointResumeEqualsUninterrupted is the subsystem's core contract:
// training T sweeps in one go and training t sweeps, checkpointing,
// restoring, and training the remaining T−t must produce bit-for-bit
// identical results — in the sequential mode and in the document-sharded
// mode (both the exact single-shard and the approximate multi-shard chains),
// with λ posterior reweighting, pruning and likelihood tracing all active.
func TestCheckpointResumeEqualsUninterrupted(t *testing.T) {
	data := sweepFixture(t)
	base := Options{
		NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, UseSmoothing: true,
		PruneDeadTopics: true, PruneAfter: 8, PruneEvery: 5,
		Iterations: 24, Seed: 4242,
		TraceLikelihood: true,
	}
	variants := []struct {
		name string
		set  func(*Options)
	}{
		{"sequential", func(o *Options) {}},
		{"sharded-one-shard", func(o *Options) { o.SweepMode = SweepShardedDocs; o.Shards = 1 }},
		{"sharded-multi", func(o *Options) { o.SweepMode = SweepShardedDocs; o.Shards = 4; o.Threads = 4 }},
	}
	// Split points include one before and one after the λ burn-in and prune
	// thresholds, so resume crosses every schedule boundary at least once.
	splits := []int{5, 12, 23}
	for _, v := range variants {
		opts := base
		v.set(&opts)
		full, err := Fit(data.Corpus, data.Source, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := full.Result()
		full.Close()

		for _, split := range splits {
			m, err := NewModel(data.Corpus, data.Source, opts)
			if err != nil {
				t.Fatal(err)
			}
			m.Run(split)
			ck := m.Checkpoint()
			m.Close()
			if ck.Sweep != split {
				t.Fatalf("%s: checkpoint records sweep %d, want %d", v.name, ck.Sweep, split)
			}

			resumed, err := Restore(data.Corpus, data.Source, opts, ck)
			if err != nil {
				t.Fatalf("%s split %d: restore: %v", v.name, split, err)
			}
			if resumed.Sweeps() != split {
				t.Fatalf("%s: restored model at sweep %d, want %d", v.name, resumed.Sweeps(), split)
			}
			resumed.Run(opts.Iterations - split)
			resultsEqualModuloTimes(t, v.name, resumed.Result(), want)
			resumed.Close()
		}
	}
}

// TestRunWithHookStops checks the early-stop contract: the hook sees global
// 1-based sweep indices, ErrStopTraining halts the run immediately and is
// returned verbatim, and the stopped chain checkpoints/resumes cleanly.
func TestRunWithHookStops(t *testing.T) {
	data := sweepFixture(t)
	opts := Options{
		NumFreeTopics: 2, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaFixed, Lambda: 0.8,
		Iterations: 20, Seed: 7,
	}
	m, err := NewModel(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	var seen []int
	err = m.RunWithHook(20, func(sweep int, mm *Model) error {
		seen = append(seen, sweep)
		if sweep == 6 {
			return ErrStopTraining
		}
		return nil
	})
	if err != ErrStopTraining {
		t.Fatalf("RunWithHook returned %v, want ErrStopTraining", err)
	}
	if m.Sweeps() != 6 {
		t.Fatalf("stopped chain at sweep %d, want 6", m.Sweeps())
	}
	for i, s := range seen {
		if s != i+1 {
			t.Fatalf("hook saw sweep %d at call %d, want %d", s, i, i+1)
		}
	}

	// The stopped chain resumes into the same trajectory as a straight run.
	full, err := Fit(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	resumed, err := Restore(data.Corpus, data.Source, opts, m.Checkpoint())
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	resumed.Run(20 - 6)
	assignmentsEqual(t, "resume-after-stop", resumed.Assignments(), full.Assignments())
}

// TestCheckpointIsDeepCopy: a captured checkpoint must not alias live chain
// state — further sweeps cannot mutate it.
func TestCheckpointIsDeepCopy(t *testing.T) {
	data := sweepFixture(t)
	opts := Options{
		NumFreeTopics: 2, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, Seed: 3, Iterations: 10,
	}
	m, err := NewModel(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Run(4)
	ck := m.Checkpoint()
	snap := m.Checkpoint()
	m.Run(6)
	if !reflect.DeepEqual(ck, snap) {
		t.Fatal("checkpoint mutated by sweeps after capture")
	}
}

// TestRestoreRejectsMismatches: every identity field a checkpoint carries
// must be enforced on restore, each with a descriptive error.
func TestRestoreRejectsMismatches(t *testing.T) {
	data := sweepFixture(t)
	opts := Options{
		NumFreeTopics: 2, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, Seed: 12, Iterations: 6,
		SweepMode: SweepShardedDocs, Shards: 3,
	}
	m, err := NewModel(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(6)
	good := m.Checkpoint()
	m.Close()

	if _, err := Restore(data.Corpus, data.Source, opts, good); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}
	if _, err := Restore(data.Corpus, data.Source, opts, nil); err == nil {
		t.Fatal("nil checkpoint accepted")
	}

	cases := []struct {
		name   string
		mutate func(ck *Checkpoint, o *Options)
	}{
		{"different seed", func(ck *Checkpoint, o *Options) { o.Seed = 13 }},
		{"different prior", func(ck *Checkpoint, o *Options) { o.Mu = 0.9 }},
		{"different sweep mode", func(ck *Checkpoint, o *Options) { o.SweepMode = SweepSequential }},
		{"different shard count", func(ck *Checkpoint, o *Options) { o.Shards = 2 }},
		{"negative sweep", func(ck *Checkpoint, o *Options) { ck.Sweep = -1 }},
		{"topic out of range", func(ck *Checkpoint, o *Options) { ck.Z[0] = int32(2 + data.Source.Len()) }},
		{"negative topic", func(ck *Checkpoint, o *Options) { ck.Z[0] = -1 }},
		{"truncated assignments", func(ck *Checkpoint, o *Options) { ck.Z = ck.Z[:len(ck.Z)-1] }},
		{"document length drift", func(ck *Checkpoint, o *Options) { ck.DocLengths[0]++ }},
		{"missing doc lengths", func(ck *Checkpoint, o *Options) { ck.DocLengths = ck.DocLengths[:1] }},
		{"wrong λ weight count", func(ck *Checkpoint, o *Options) { ck.LambdaWeights = ck.LambdaWeights[:3] }},
		{"wrong disabled count", func(ck *Checkpoint, o *Options) { ck.Disabled = ck.Disabled[:1] }},
		{"wrong stream count", func(ck *Checkpoint, o *Options) { ck.StreamPos = ck.StreamPos[:1] }},
		{"dimension drift", func(ck *Checkpoint, o *Options) { ck.VocabSize++ }},
		{"doc count drift", func(ck *Checkpoint, o *Options) { ck.NumDocs++ }},
		{"absurd stream position", func(ck *Checkpoint, o *Options) { ck.StreamPos[0] = math.MaxUint64 }},
		{"absurd sweep count", func(ck *Checkpoint, o *Options) { ck.Sweep = 1 << 40 }},
	}
	for _, tc := range cases {
		ck := *good
		ck.Z = append([]int32(nil), good.Z...)
		ck.DocLengths = append([]int32(nil), good.DocLengths...)
		ck.LambdaWeights = append([]float64(nil), good.LambdaWeights...)
		ck.Disabled = append([]bool(nil), good.Disabled...)
		ck.StreamPos = append([]uint64(nil), good.StreamPos...)
		o := opts
		tc.mutate(&ck, &o)
		if _, err := Restore(data.Corpus, data.Source, o, &ck); err == nil {
			t.Errorf("%s: tampered checkpoint accepted", tc.name)
		}
	}
}

// TestCheckpointTracesRestored: likelihood and timing traces must carry over
// so a resumed run's Result has full-length histories.
func TestCheckpointTracesRestored(t *testing.T) {
	data := sweepFixture(t)
	opts := Options{
		NumFreeTopics: 2, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaFixed, Lambda: 1,
		Seed: 21, Iterations: 10, TraceLikelihood: true,
	}
	m, err := NewModel(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	m.Run(4)
	ck := m.Checkpoint()
	m.Close()
	if len(ck.LikelihoodTrace) != 4 || len(ck.IterationTimes) != 4 {
		t.Fatalf("checkpoint traces %d/%d, want 4/4", len(ck.LikelihoodTrace), len(ck.IterationTimes))
	}
	resumed, err := Restore(data.Corpus, data.Source, opts, ck)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	resumed.Run(6)
	if len(resumed.LikelihoodTrace) != 10 {
		t.Fatalf("resumed likelihood trace has %d entries, want 10", len(resumed.LikelihoodTrace))
	}
	if len(resumed.IterationTimes) != 10 {
		t.Fatalf("resumed timing trace has %d entries, want 10", len(resumed.IterationTimes))
	}
	var zero time.Duration
	for i, d := range resumed.IterationTimes {
		if d < zero {
			t.Fatalf("iteration time %d negative: %v", i, d)
		}
	}
}
