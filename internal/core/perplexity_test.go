package core

import (
	"strings"
	"testing"
)

// TestHeldOutPerplexityRejectsBadSchedule is the regression test for the
// silent burn-in remap: burnIn >= iterations used to be rewritten to
// iterations/2 instead of rejected, so a caller asking for an impossible
// schedule got a different one without noticing.
func TestHeldOutPerplexityRejectsBadSchedule(t *testing.T) {
	data := sweepFixture(t)
	m, err := Fit(data.Corpus, data.Source, Options{
		NumFreeTopics: 2, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaFixed, Lambda: 0.8,
		Iterations: 5, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	cases := []struct {
		name               string
		iterations, burnIn int
	}{
		{"burn-in-equals-iterations", 20, 20},
		{"burn-in-exceeds-iterations", 20, 21},
		{"negative-burn-in", 20, -1},
		// iterations <= 0 defaults to 50 sweeps; a burn-in of 50 still
		// leaves no sampling sweeps and must be rejected against the
		// defaulted count, not the literal zero.
		{"burn-in-swallows-defaulted-iterations", 0, 50},
	}
	for _, c := range cases {
		if _, err := m.HeldOutPerplexity(data.Corpus, c.iterations, c.burnIn, 1); err == nil {
			t.Fatalf("%s: HeldOutPerplexity(iterations=%d, burnIn=%d) succeeded; want an error",
				c.name, c.iterations, c.burnIn)
		} else if !strings.Contains(err.Error(), "burn-in") {
			t.Fatalf("%s: error %q does not name the burn-in", c.name, err)
		}
	}

	// The boundary schedule (one sampling sweep) must still work, as must a
	// zero burn-in.
	if _, err := m.HeldOutPerplexity(data.Corpus, 3, 2, 1); err != nil {
		t.Fatalf("burnIn=iterations-1 rejected: %v", err)
	}
	if _, err := m.HeldOutPerplexity(data.Corpus, 3, 0, 1); err != nil {
		t.Fatalf("zero burn-in rejected: %v", err)
	}
}
