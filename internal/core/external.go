package core

import "fmt"

// Distributed AD-LDA support (Newman et al.): in a multi-worker run each
// worker owns a contiguous document shard and samples against the merged
// GLOBAL topic-word counts — its own tokens' counts plus everything the
// other shards contributed at the last sync boundary. This file is the core
// half of that contract: an external-counts overlay a coordinator installs
// between epochs, and the own-counts accessor it reads deltas from.
//
// The overlay is deliberately invisible to the sampling kernels. The live
// wordTopic/topicTotal slabs simply hold own + external, and every bulk
// rebuild (the sharded sweep barrier) re-adds the overlay on top of the
// assignment-derived own counts. Document-topic counts are never overlaid:
// each worker owns its documents' rows exclusively, exactly as shards do
// within one process.
//
// When the overlay is zero — one worker, or a chain that never saw
// SetGlobalCounts — the slabs hold exactly the serial chain's values, so a
// single-worker distributed run is bit-identical to the serial chain.

// externalCounts is the other-shards contribution currently folded into the
// live count slabs.
type externalCounts struct {
	wordTopic  []int32 // V×T, topic fastest — mirrors countStore.wordTopic
	topicTotal []int32 // T — per-topic sums of wordTopic
}

// SetGlobalCounts installs merged global topic-word counts (flat V×T, topic
// index fastest, the layout of Checkpoint.Z's companion slabs) as the
// chain's sampling basis. The chain's own contribution is recomputed from
// its assignments; the difference global − own becomes the external overlay.
// Call it only between sweeps, never concurrently with one.
//
// Every entry of global must be ≥ the chain's own count for that (word,
// topic) pair — true by construction when global is the sum of all workers'
// own counts at the boundary this worker last reported. A violation means
// the caller merged counts from a different epoch than the chain is at; the
// chain's counts are left in an unspecified state and the chain must be
// abandoned.
func (m *ChainRuntime) SetGlobalCounts(global []int32) error {
	if len(global) != m.V*m.T {
		return fmt.Errorf("core: global counts have %d entries; model expects %d (V=%d × T=%d)", len(global), m.V*m.T, m.V, m.T)
	}
	if m.ext == nil {
		m.ext = &externalCounts{
			wordTopic:  make([]int32, m.V*m.T),
			topicTotal: make([]int32, m.T),
		}
	}
	// Own contribution, fresh from the assignments.
	m.counts.rebuildFromAssignments(m.c.Docs, m.z)
	ext := m.ext
	clear(ext.topicTotal)
	wt := m.counts.wordTopic
	for i, g := range global {
		e := g - wt[i]
		if e < 0 {
			return fmt.Errorf("core: global count %d for word %d topic %d is below this chain's own count %d — counts merged at a different epoch than the chain is at", g, i/m.T, i%m.T, wt[i])
		}
		ext.wordTopic[i] = e
		ext.topicTotal[i%m.T] += e
	}
	copy(wt, global)
	for t, e := range ext.topicTotal {
		m.counts.topicTotal[t] += e
	}
	// The slabs were bulk-overwritten under the sequential view: refresh its
	// cached denominators, and its sparse nonzero lists eagerly (sequential
	// sweeps draw through them immediately; shard views re-copy and rebuild
	// at their own sweep barrier).
	m.seq.rebuildDenoms()
	if m.seq.sparse != nil {
		m.seq.sparse.rebuildLists()
	}
	return nil
}

// rebuildCounts is the bulk count reconciliation: own counts are rebuilt
// from the assignments and the external overlay, if any, is re-added on top.
// The sharded sweep barrier uses it in place of a bare rebuildFromAssignments
// so multi-shard sweeps inside a distributed worker don't drop the overlay.
func (m *ChainRuntime) rebuildCounts() {
	m.counts.rebuildFromAssignments(m.c.Docs, m.z)
	if m.ext == nil {
		return
	}
	wt := m.counts.wordTopic
	for i, e := range m.ext.wordTopic {
		wt[i] += e
	}
	for t, e := range m.ext.topicTotal {
		m.counts.topicTotal[t] += e
	}
}

// OwnWordTopicCounts returns a fresh copy of the chain's own topic-word
// counts — the contribution of this chain's tokens only, excluding any
// external overlay — as a flat V×T slab, topic index fastest. Subtracting
// two snapshots taken at consecutive sync boundaries yields exactly the
// count delta this worker's sweeps produced between them.
func (m *ChainRuntime) OwnWordTopicCounts() []int32 {
	own := make([]int32, len(m.counts.wordTopic))
	copy(own, m.counts.wordTopic)
	if m.ext != nil {
		for i, e := range m.ext.wordTopic {
			own[i] -= e
		}
	}
	return own
}
