package core

import "sourcelda/internal/corpus"

// countStore holds a Gibbs chain's sufficient statistics as flat,
// cache-friendly slabs. The seed implementation kept [][]int matrices — one
// pointer dereference per row plus a full int per counter; this store packs
// everything into four contiguous int32 slabs so the per-token hot path
// touches plain offsets:
//
//	wordTopic[w*T + t]  — tokens of word w assigned to topic t
//	docTopic[d*T + t]   — tokens of document d assigned to topic t
//	topicTotal[t]       — tokens assigned to topic t (Σ_w wordTopic)
//	docTotal[d]         — tokens of document d (fixed after initialization)
//
// Rows are laid out with the topic index fastest so the inner loop of the
// collapsed conditional — "for every topic t, given this token's word and
// document" — walks both count rows with unit stride. int32 halves memory
// bandwidth against int; a single topic would need 2^31 assigned tokens to
// overflow, far beyond what fits in memory.
type countStore struct {
	V, D, T    int
	wordTopic  []int32
	docTopic   []int32
	topicTotal []int32
	docTotal   []int32
}

func newCountStore(V, D, T int) *countStore {
	return &countStore{
		V: V, D: D, T: T,
		wordTopic:  make([]int32, V*T),
		docTopic:   make([]int32, D*T),
		topicTotal: make([]int32, T),
		docTotal:   make([]int32, D),
	}
}

// wordRow returns the T-length counts of word w, one entry per topic.
func (cs *countStore) wordRow(w int) []int32 {
	return cs.wordTopic[w*cs.T : (w+1)*cs.T : (w+1)*cs.T]
}

// docRow returns the T-length counts of document d, one entry per topic.
func (cs *countStore) docRow(d int) []int32 {
	return cs.docTopic[d*cs.T : (d+1)*cs.T : (d+1)*cs.T]
}

// add counts one token of word w in document d under topic t during
// initialization.
func (cs *countStore) add(d, w, t int) {
	cs.wordTopic[w*cs.T+t]++
	cs.docTopic[d*cs.T+t]++
	cs.topicTotal[t]++
	cs.docTotal[d]++
}

// appendDoc grows the document-side slabs by one document of the given token
// count. The new docTopic row starts zeroed (its tokens are placed by the
// caller through inc, which — unlike add — never touches docTotal, so the
// total is written up front). Word-side slabs are untouched: their size
// depends only on V and T, which appending documents never changes.
func (cs *countStore) appendDoc(tokens int) {
	cs.docTopic = append(cs.docTopic, make([]int32, cs.T)...)
	cs.docTotal = append(cs.docTotal, int32(tokens))
	cs.D++
}

// rebuildFromAssignments recomputes wordTopic and topicTotal from the
// per-token assignments — the shard-barrier reconciliation of the sharded
// sweep mode. Document-topic counts are not touched: each shard owns its
// documents' rows exclusively and keeps them exact in place.
func (cs *countStore) rebuildFromAssignments(docs []*corpus.Document, z [][]int) {
	clear(cs.wordTopic)
	clear(cs.topicTotal)
	for d := range docs {
		zd := z[d]
		for i, w := range docs[d].Words {
			t := zd[i]
			cs.wordTopic[w*cs.T+t]++
			cs.topicTotal[t]++
		}
	}
}
