package core

import (
	"math"
	"testing"

	"sourcelda/internal/rng"
	"sourcelda/internal/synth"
)

// sparseConfigs is the model matrix the sparse-vs-dense property tests run
// over: free topics present and absent, fixed and integrated λ, smoothing on
// and off, pruning active, and both sweep modes.
func sparseConfigs() []struct {
	name string
	set  func(*Options)
} {
	return []struct {
		name string
		set  func(*Options)
	}{
		{"integrated", func(o *Options) {}},
		{"no-free-topics", func(o *Options) { o.NumFreeTopics = 0 }},
		{"fixed-lambda", func(o *Options) { o.LambdaMode = LambdaFixed; o.Lambda = 0.8 }},
		{"smoothing", func(o *Options) { o.UseSmoothing = true }},
		{"pruning", func(o *Options) {
			o.PruneDeadTopics = true
			o.PruneAfter = 4
			o.PruneEvery = 3
			o.PruneMinDocs = 3
		}},
		{"sharded", func(o *Options) {
			o.SweepMode = SweepShardedDocs
			o.Shards = 4
			o.Threads = 2
		}},
		{"sharded-pruning", func(o *Options) {
			o.SweepMode = SweepShardedDocs
			o.Shards = 3
			o.PruneDeadTopics = true
			o.PruneAfter = 4
			o.PruneEvery = 3
			o.PruneMinDocs = 3
		}},
	}
}

func sparseBaseOptions(seed int64) Options {
	return Options{
		NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, Iterations: 10, Seed: seed,
		Sampler: SamplerSparse,
	}
}

// checkViewAgainstDense asserts, for every token of documents [lo, hi), that
// the sparse bucket reconstruction matches the dense conditional within tol,
// and that the incrementally-maintained bucket totals match recomputation.
func checkViewAgainstDense(t *testing.T, name string, m *Model, v *gibbsView, lo, hi int, tol float64) {
	t.Helper()
	dense := make([]float64, m.T)
	sparse := make([]float64, m.T)
	checked := 0
	for d := lo; d < hi; d++ {
		v.setDoc(m.counts.docRow(d))
		zd := m.z[d]
		for i, w := range m.c.Docs[d].Words {
			v.setToken(w)
			v.dec(zd[i])
			v.fill(0, m.T, dense)
			v.sparse.fillFromBuckets(sparse)
			for k := 0; k < m.T; k++ {
				if diff := math.Abs(dense[k] - sparse[k]); diff > tol*(1+math.Abs(dense[k])) {
					t.Fatalf("%s: doc %d token %d topic %d: dense %v vs sparse %v (diff %v)",
						name, d, i, k, dense[k], sparse[k], diff)
				}
			}
			v.inc(zd[i])
			checked++
		}
	}
	if checked == 0 {
		t.Fatalf("%s: no tokens checked", name)
	}

	var freeSmooth float64
	for k := 0; k < v.K; k++ {
		freeSmooth += v.alpha * v.beta * v.freeDen[k]
	}
	if diff := math.Abs(freeSmooth - v.sparse.freeSmooth); diff > tol*(1+freeSmooth) {
		t.Fatalf("%s: freeSmooth drifted: incremental %v vs recomputed %v", name, v.sparse.freeSmooth, freeSmooth)
	}
	var srcSmooth float64
	for s := 0; s < v.S; s++ {
		srcSmooth += v.alpha * v.sparse.srcD[s]
	}
	if diff := math.Abs(srcSmooth - v.sparse.srcSmooth); diff > tol*(1+srcSmooth) {
		t.Fatalf("%s: srcSmooth drifted: incremental %v vs recomputed %v", name, v.sparse.srcSmooth, srcSmooth)
	}
}

// TestSparseConditionalMatchesDense is the tentpole's correctness property:
// after real sweeps (λ reweighting, pruning, sharding all in play), the
// bucket decomposition must reproduce the dense per-topic conditional of
// gibbsView.fill within 1e-9 for every token — in the sequential view and in
// every shard's private view.
func TestSparseConditionalMatchesDense(t *testing.T) {
	const tol = 1e-9
	for _, seed := range []int64{3, 17} {
		data, err := synth.MedlineLike(synth.MedlineOptions{
			NumTopics:  9,
			LiveTopics: 5,
			NumDocs:    20,
			AvgDocLen:  25,
			Alpha:      0.2,
			Mu:         0.7,
			Sigma:      0.3,
			Seed:       seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range sparseConfigs() {
			opts := sparseBaseOptions(seed)
			cfg.set(&opts)
			m, err := NewModel(data.Corpus, data.Source, opts)
			if err != nil {
				t.Fatal(err)
			}
			m.Run(opts.Iterations)
			if len(m.shards) > 1 {
				// Each shard's private slab is internally consistent for the
				// shard's own documents: the view saw every local update.
				for _, sh := range m.shards {
					checkViewAgainstDense(t, cfg.name, m, sh.view, sh.lo, sh.hi, tol)
				}
			} else {
				checkViewAgainstDense(t, cfg.name, m, m.seq, 0, m.D, tol)
			}
			m.Close()
		}
	}
}

// TestSparseDrawMatchesDenseDistribution pins the draw itself: over a
// stratified grid of uniform variates, the topics selected by the bucket
// walk must land with the same frequencies as the dense conditional's
// normalized probabilities. The grid is deterministic, so the per-topic
// discrepancy is bounded by (intervals per topic)/n — well under the 0.005
// assertion — and the test cannot flake.
func TestSparseDrawMatchesDenseDistribution(t *testing.T) {
	data, err := synth.MedlineLike(synth.MedlineOptions{
		NumTopics: 7, LiveTopics: 4, NumDocs: 12, AvgDocLen: 20,
		Alpha: 0.2, Mu: 0.7, Sigma: 0.3, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := sparseBaseOptions(5)
	opts.NumFreeTopics = 2
	m, err := NewModel(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	m.Run(8)

	v := m.seq
	dense := make([]float64, m.T)
	const n = 4000
	r := rng.New(99)
	for trial := 0; trial < 5; trial++ {
		d := r.Intn(m.D)
		if len(m.z[d]) == 0 {
			continue
		}
		i := r.Intn(len(m.z[d]))
		w := m.c.Docs[d].Words[i]
		v.setDoc(m.counts.docRow(d))
		v.setToken(w)
		v.dec(m.z[d][i])

		v.fill(0, m.T, dense)
		var total float64
		for _, p := range dense {
			total += p
		}
		freq := make([]float64, m.T)
		for g := 0; g < n; g++ {
			u := (float64(g) + 0.5) / n
			k, ok := v.sparse.draw(u)
			if !ok {
				t.Fatalf("draw reported degenerate mass with total %v", total)
			}
			if dense[k] <= 0 {
				t.Fatalf("draw selected topic %d with zero dense mass", k)
			}
			freq[k] += 1.0 / n
		}
		for k := 0; k < m.T; k++ {
			if diff := math.Abs(freq[k] - dense[k]/total); diff > 0.005 {
				t.Fatalf("topic %d drawn with frequency %v, dense probability %v", k, freq[k], dense[k]/total)
			}
		}
		v.inc(m.z[d][i])
	}
}

// TestSparseChainConsistency runs full sparse chains (sequential and
// multi-shard) and checks the global invariants: counts match assignments,
// every token is accounted for, and the likelihood does not degrade.
func TestSparseChainConsistency(t *testing.T) {
	data := sweepFixture(t)
	for _, cfg := range []struct {
		name string
		set  func(*Options)
	}{
		{"sequential", func(o *Options) {}},
		{"sharded", func(o *Options) { o.SweepMode = SweepShardedDocs; o.Shards = 5; o.Threads = 3 }},
	} {
		opts := Options{
			NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
			LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
			QuadraturePoints: 5, Iterations: 20, Seed: 11,
			Sampler: SamplerSparse, TraceLikelihood: true,
			PruneDeadTopics: true, PruneAfter: 8, PruneEvery: 5,
		}
		cfg.set(&opts)
		m, err := Fit(data.Corpus, data.Source, opts)
		if err != nil {
			t.Fatal(err)
		}
		wantWord := make([]int32, m.V*m.T)
		wantTotal := make([]int32, m.T)
		for d, doc := range data.Corpus.Docs {
			for i, w := range doc.Words {
				k := m.z[d][i]
				wantWord[w*m.T+k]++
				wantTotal[k]++
			}
		}
		for i, n := range wantWord {
			if m.counts.wordTopic[i] != n {
				t.Fatalf("%s: wordTopic[%d] = %d, want %d", cfg.name, i, m.counts.wordTopic[i], n)
			}
		}
		for k, n := range wantTotal {
			if m.counts.topicTotal[k] != n {
				t.Fatalf("%s: topicTotal[%d] = %d, want %d", cfg.name, k, m.counts.topicTotal[k], n)
			}
		}
		trace := m.LikelihoodTrace
		if last, first := trace[len(trace)-1], trace[0]; last < first-1e-9 {
			t.Fatalf("%s: sparse chain degraded the likelihood: %v → %v", cfg.name, first, last)
		}
		m.Close()
	}
}

// TestSparseSequentialEqualsOneShard pins the sparse analogue of the
// sharded-mode exactness contract: one shard with the sparse kernel IS the
// sequential sparse chain.
func TestSparseSequentialEqualsOneShard(t *testing.T) {
	data := sweepFixture(t)
	base := Options{
		NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, Iterations: 15, Seed: 4242,
		Sampler: SamplerSparse,
	}
	ref, err := Fit(data.Corpus, data.Source, base)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	opts := base
	opts.SweepMode = SweepShardedDocs
	opts.Shards = 1
	opts.Threads = 4
	m, err := Fit(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	assignmentsEqual(t, "sparse-one-shard", m.Assignments(), ref.Assignments())
}

// TestSparseShardedDeterministic: the multi-shard sparse chain is a pure
// function of (seed, shard count), exactly like the dense one.
func TestSparseShardedDeterministic(t *testing.T) {
	data := sweepFixture(t)
	opts := Options{
		NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, Iterations: 12, Seed: 77,
		SweepMode: SweepShardedDocs, Shards: 4, Threads: 4,
		Sampler: SamplerSparse,
	}
	m1, err := Fit(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	m2, err := Fit(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	assignmentsEqual(t, "second sparse run", m2.Assignments(), m1.Assignments())
}

// TestSparseCheckpointResume extends the checkpoint contract to the sparse
// kernel: the bucket state is a pure function of the counts, so restoring
// mid-run and finishing must be bit-identical to an uninterrupted sparse run
// in both sweep modes.
func TestSparseCheckpointResume(t *testing.T) {
	data := sweepFixture(t)
	base := Options{
		NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, UseSmoothing: true,
		PruneDeadTopics: true, PruneAfter: 8, PruneEvery: 5,
		Iterations: 24, Seed: 4242,
		Sampler: SamplerSparse, TraceLikelihood: true,
	}
	variants := []struct {
		name string
		set  func(*Options)
	}{
		{"sequential", func(o *Options) {}},
		{"sharded-multi", func(o *Options) { o.SweepMode = SweepShardedDocs; o.Shards = 4; o.Threads = 4 }},
	}
	for _, v := range variants {
		opts := base
		v.set(&opts)
		full, err := Fit(data.Corpus, data.Source, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := full.Result()
		full.Close()
		for _, split := range []int{5, 12, 23} {
			m, err := NewModel(data.Corpus, data.Source, opts)
			if err != nil {
				t.Fatal(err)
			}
			m.Run(split)
			ck := m.Checkpoint()
			m.Close()
			resumed, err := Restore(data.Corpus, data.Source, opts, ck)
			if err != nil {
				t.Fatalf("%s split %d: restore: %v", v.name, split, err)
			}
			resumed.Run(opts.Iterations - split)
			resultsEqualModuloTimes(t, v.name+"-sparse", resumed.Result(), want)
			resumed.Close()
		}
	}
}

// TestPrunedTopicNeverRegainsTokens is the regression test for the
// degenerate-fallback bug: rng.Categorical and the kernels' searchTarget
// used to fall back to a uniform draw over ALL indices on zero/NaN total
// mass, which could assign a token to a pruned (probability-zero) topic and
// silently resurrect it. The fallbacks are now restricted to positive-mass
// support, so once a topic is pruned it must stay empty for the rest of the
// chain — under every sampling kernel.
func TestPrunedTopicNeverRegainsTokens(t *testing.T) {
	data := sweepFixture(t)
	for _, kind := range []SamplerKind{SamplerSerial, SamplerSparse, SamplerPrefixSums, SamplerSimpleParallel} {
		opts := Options{
			NumFreeTopics: 2, Alpha: 0.2, Beta: 0.01,
			LambdaMode: LambdaFixed, Lambda: 0.8,
			Iterations: 30, Seed: 13,
			Sampler: kind, Threads: 2,
			// Aggressive schedule so several topics are pruned early and the
			// chain keeps sweeping long after.
			PruneDeadTopics: true, PruneAfter: 5, PruneEvery: 2,
			PruneMinDocs: 4, PruneMinTokens: 2,
		}
		m, err := NewModel(data.Corpus, data.Source, opts)
		if err != nil {
			t.Fatal(err)
		}
		pruned := false
		err = m.RunWithHook(opts.Iterations, func(sweep int, cm *Model) error {
			counts := cm.TokensPerTopic()
			for k, dead := range cm.DisabledTopics() {
				if !dead {
					continue
				}
				pruned = true
				if counts[k] != 0 {
					t.Fatalf("%v: sweep %d: pruned topic %d holds %d tokens", kind, sweep, k, counts[k])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if !pruned {
			t.Fatalf("%v: pruning never triggered; the regression is unexercised", kind)
		}
		m.Close()
	}
}

// TestSparseSamplerName pins the enum surface.
func TestSparseSamplerName(t *testing.T) {
	if SamplerSparse.String() != "sparse" {
		t.Fatalf("SamplerSparse renders as %q", SamplerSparse)
	}
}
