package core

import (
	"errors"
	"fmt"
)

// Frozen is an immutable sampling view over a fitted model, the input to
// fold-in inference on unseen documents (internal/infer): the per-(word,
// topic) conditionals P(w|t) implied by the locked topic-word counts,
// flattened into one topic-fastest slab so the fold-in inner loop — "for
// every topic t, given this token's word" — walks a contiguous row exactly
// like the training sweep walks the count slabs.
//
// For free topics the conditional is the symmetric-β estimate
// (n_wt + β)/(n_t + Vβ); for source topics it is the λ-quadrature estimate
// of Eq. 4 evaluated from the CSR δ^e store. Both are constants once the
// counts are frozen, so they are materialized at freeze time and the
// serving hot path pays one multiply-add per topic with no quadrature, map
// probe, or division.
//
// A Frozen is safe for concurrent use: every field is written once at
// construction and only read afterwards.
type Frozen struct {
	// T and V are the topic and vocabulary counts.
	T, V int
	// Alpha is the symmetric document-topic prior used when folding in.
	Alpha float64
	// Labels[t] names each topic, as in Result.
	Labels []string
	// SourceIndices[t] is the knowledge-source article index, -1 for free
	// topics.
	SourceIndices []int

	// cond[w*T+t] = P(w | t) under the frozen counts.
	cond []float64
}

// Freeze snapshots the chain runtime's count slabs and δ-quadrature store
// into a frozen inference view — the point-in-time snapshot serving reads
// while the runtime keeps learning. The result is decoupled from the chain:
// further sweeps, AppendDocs calls or Close do not affect it.
func (m *ChainRuntime) Freeze() *Frozen {
	f, err := newFrozen(m.Phi(), m.Labels(), m.sourceIndices(), m.opts.Alpha)
	if err != nil {
		// Phi/Labels of a constructed model are consistent by construction.
		panic(fmt.Sprintf("core: Freeze on inconsistent model: %v", err))
	}
	return f
}

func (m *ChainRuntime) sourceIndices() []int {
	out := make([]int, m.T)
	for t := 0; t < m.T; t++ {
		out[t] = m.SourceIndex(t)
	}
	return out
}

// NewFrozen builds a frozen inference view from a result snapshot (e.g. one
// reloaded through persist), validating shape consistency. A zero
// res.Alpha — snapshots written before the field existed — falls back to
// the paper default 50/T.
func NewFrozen(res *Result) (*Frozen, error) {
	if res == nil || len(res.Phi) == 0 {
		return nil, errors.New("core: frozen view needs a non-empty result")
	}
	alpha := res.Alpha
	if alpha <= 0 {
		alpha = 50.0 / float64(len(res.Phi))
	}
	return newFrozen(res.Phi, res.Labels, res.SourceIndices, alpha)
}

func newFrozen(phi [][]float64, labels []string, sourceIndices []int, alpha float64) (*Frozen, error) {
	T := len(phi)
	if T == 0 {
		return nil, errors.New("core: frozen view needs at least one topic")
	}
	if len(labels) != T || len(sourceIndices) != T {
		return nil, fmt.Errorf("core: frozen view shape mismatch: %d topics, %d labels, %d source indices",
			T, len(labels), len(sourceIndices))
	}
	V := len(phi[0])
	if V == 0 {
		return nil, errors.New("core: frozen view needs a non-empty vocabulary")
	}
	f := &Frozen{
		T:             T,
		V:             V,
		Alpha:         alpha,
		Labels:        append([]string(nil), labels...),
		SourceIndices: append([]int(nil), sourceIndices...),
		cond:          make([]float64, V*T),
	}
	for t, row := range phi {
		if len(row) != V {
			return nil, fmt.Errorf("core: frozen view phi row %d has %d entries, want %d", t, len(row), V)
		}
		for w, p := range row {
			f.cond[w*T+t] = p
		}
	}
	return f, nil
}

// FrozenFromCond builds a frozen inference view directly over an externally
// owned cond slab laid out topic-fastest (cond[w*T+t] = P(w|t)) — the layout
// NewFrozen materializes and the flat bundle format stores verbatim, so a
// memory-mapped slab can serve with zero copies. The slab is adopted, not
// copied: the caller owns its lifetime and must keep it readable (not
// unmapped) until every user of the view is done. Labels and source indices
// are copied, so only cond carries the external lifetime. A non-positive
// alpha falls back to the paper default 50/T, matching NewFrozen.
func FrozenFromCond(cond []float64, T, V int, labels []string, sourceIndices []int, alpha float64) (*Frozen, error) {
	if T < 1 || V < 1 {
		return nil, fmt.Errorf("core: frozen view needs positive dimensions, got T=%d V=%d", T, V)
	}
	if len(cond) != T*V {
		return nil, fmt.Errorf("core: cond slab has %d entries, want T*V = %d*%d", len(cond), T, V)
	}
	if len(labels) != T || len(sourceIndices) != T {
		return nil, fmt.Errorf("core: frozen view shape mismatch: %d topics, %d labels, %d source indices",
			T, len(labels), len(sourceIndices))
	}
	if alpha <= 0 {
		alpha = 50.0 / float64(T)
	}
	return &Frozen{
		T:             T,
		V:             V,
		Alpha:         alpha,
		Labels:        append([]string(nil), labels...),
		SourceIndices: append([]int(nil), sourceIndices...),
		cond:          cond,
	}, nil
}

// Cond returns word w's T-length conditional row P(w | t); do not mutate.
func (f *Frozen) Cond(w int) []float64 {
	return f.cond[w*f.T : (w+1)*f.T : (w+1)*f.T]
}

// TopicRow materializes topic t's word distribution φ_t as a fresh heap
// slice (out[w] = P(w|t)). It is the transpose of one cond column — O(V) —
// used to rebuild per-topic rows lazily from a view whose slab lives in a
// memory-mapped bundle.
func (f *Frozen) TopicRow(t int) []float64 {
	out := make([]float64, f.V)
	for w := 0; w < f.V; w++ {
		out[w] = f.cond[w*f.T+t]
	}
	return out
}
