package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/smoothing"
)

// LambdaMode selects how the divergence exponent λ is treated.
type LambdaMode int

const (
	// LambdaFixed uses a single fixed exponent (Options.Lambda) for every
	// source topic: δ^λ. λ = 1 reproduces the bijective/known-mixture
	// models exactly as written in §III-A/B.
	LambdaFixed LambdaMode = iota
	// LambdaIntegrated places N(µ, σ) over λ and integrates it out of the
	// collapsed Gibbs equations by numeric quadrature (§III-C2, Eq. 3–4).
	LambdaIntegrated
)

// String implements fmt.Stringer.
func (m LambdaMode) String() string {
	switch m {
	case LambdaFixed:
		return "fixed"
	case LambdaIntegrated:
		return "integrated"
	default:
		return fmt.Sprintf("LambdaMode(%d)", int(m))
	}
}

// SamplerKind selects the topic-sampling kernel.
type SamplerKind int

const (
	// SamplerSerial is Algorithm 1's sequential inner loop.
	SamplerSerial SamplerKind = iota
	// SamplerSimpleParallel is Algorithm 3 (chunked scan).
	SamplerSimpleParallel
	// SamplerPrefixSums is Algorithm 2 (Blelloch scan).
	SamplerPrefixSums
	// SamplerSparse is the SparseLDA-style bucket-decomposed kernel (Yao,
	// Mimno & McCallum, KDD 2009, adapted to Source-LDA's quadrature
	// topics): the per-token conditional is split into cached
	// smoothing/default-δ totals plus sparse document and word buckets, so
	// a draw costs O(token sparsity) instead of O(K + S·P). It samples the
	// exact same conditional as the dense kernels — only the arithmetic
	// path differs, so it draws a different (equally valid) chain for the
	// same seed. Single-threaded per token; composes with both sweep modes.
	SamplerSparse
)

// String implements fmt.Stringer.
func (k SamplerKind) String() string {
	switch k {
	case SamplerSerial:
		return "serial"
	case SamplerSimpleParallel:
		return "simple-parallel"
	case SamplerPrefixSums:
		return "prefix-sums"
	case SamplerSparse:
		return "sparse"
	default:
		return fmt.Sprintf("SamplerKind(%d)", int(k))
	}
}

// SweepMode selects how a Gibbs sweep traverses the corpus.
type SweepMode int

const (
	// SweepSequential resamples tokens one at a time against the live
	// global counts — exact collapsed Gibbs (Algorithm 1). The configured
	// SamplerKind may parallelize within one token's topic vector
	// (§III-C4), but tokens are strictly ordered.
	SweepSequential SweepMode = iota
	// SweepShardedDocs partitions documents into Options.Shards contiguous
	// shards swept concurrently, each against a private copy of the
	// word-topic counts taken at the sweep barrier and reconciled
	// afterwards (AD-LDA style; Newman et al., "Distributed inference for
	// latent Dirichlet allocation"). With more than one shard the chain is
	// an approximation — counts are stale across shards within a sweep —
	// but sweeps scale across cores instead of across topics. With exactly
	// one shard the chain is identical to SweepSequential with the serial
	// kernel. Each shard draws from its own deterministic RNG stream, so
	// results depend on the shard count but never on worker scheduling.
	SweepShardedDocs
)

// String implements fmt.Stringer.
func (s SweepMode) String() string {
	switch s {
	case SweepSequential:
		return "sequential"
	case SweepShardedDocs:
		return "sharded-docs"
	default:
		return fmt.Sprintf("SweepMode(%d)", int(s))
	}
}

// Options configures a Source-LDA fit. The zero value is not valid; use the
// documented defaults.
type Options struct {
	// NumFreeTopics is K, the number of unlabeled topics with symmetric β
	// priors. 0 gives the bijective model of §III-A; the paper's full model
	// mixes K free topics with the knowledge-source superset.
	NumFreeTopics int
	// Alpha is the symmetric document-topic prior (paper default 50/T).
	Alpha float64
	// Beta is the symmetric word prior for free topics (paper default
	// 200/V).
	Beta float64
	// Epsilon is the Definition 3 smoothing mass added to source counts.
	// Default knowledge.DefaultEpsilon.
	Epsilon float64
	// LambdaMode selects fixed vs integrated λ treatment.
	LambdaMode LambdaMode
	// Lambda is the fixed exponent in [0, 1] used when LambdaMode ==
	// LambdaFixed. Set 1 for the raw-count priors of §III-A/B; 0 flattens
	// the prior entirely (every hyperparameter becomes 1). The zero value
	// therefore means a fully-relaxed prior, not "default".
	Lambda float64
	// Mu and Sigma parameterize the Gaussian prior over λ for
	// LambdaIntegrated (paper values: 0.7 and 0.3 for the mixed
	// experiments).
	Mu, Sigma float64
	// QuadraturePoints is A, the number of λ quadrature nodes used to
	// integrate λ out (Eq. 3). Default 9.
	QuadraturePoints int
	// LambdaBurnIn is the number of initial sweeps during which the λ
	// quadrature keeps its prior weights before per-topic posterior
	// reweighting engages (the early count matrices are too noisy to judge
	// conformance). Default 10.
	LambdaBurnIn int
	// FreezeLambdaWeights disables the per-topic λ posterior reweighting.
	// By default (false) the quadrature-node weights of each source topic
	// are updated every sweep to N(µ,σ)-prior × collapsed likelihood of the
	// topic's current counts — the Gibbs treatment of the per-topic latent
	// λ_t in the model's plate diagram (Fig. 1(b)), which lets conforming
	// topics keep sharp priors while deviating topics relax theirs. When
	// frozen, the static prior weights are used for every topic (the
	// literal reading of Eq. 3's integrand); the ablation benches compare
	// the two.
	FreezeLambdaWeights bool
	// UseSmoothing applies the g(λ) linearization of §III-C2 to quadrature
	// nodes (and to Lambda in fixed mode).
	UseSmoothing bool
	// SmoothingConfig configures g estimation. A zero value defaults to the
	// fast deterministic mean-field estimator with an 11-point grid.
	SmoothingConfig smoothing.Config
	// PruneDeadTopics enables §III-C3's in-inference superset reduction:
	// source topics assigned in too few documents are eliminated during
	// sampling ("during the inference we eliminate topics which are not
	// assigned to any documents") and their tokens resampled over the
	// surviving topics. Without it, dead superset topics keep soaking up
	// probability mass for shared vocabulary. Free topics are never pruned.
	PruneDeadTopics bool
	// PruneAfter is the first sweep (1-based) at which pruning may run;
	// earlier sweeps are too noisy to judge. Default 20.
	PruneAfter int
	// PruneEvery re-runs the pruning check this many sweeps after the
	// first. Default 10.
	PruneEvery int
	// PruneMinDocs is the minimum number of documents (each with at least
	// PruneMinTokens tokens in the topic) a source topic needs to survive.
	// Default 2.
	PruneMinDocs int
	// PruneMinTokens is the per-document token threshold used by the
	// document-frequency count. Default 2.
	PruneMinTokens int
	// Iterations is the number of collapsed Gibbs sweeps. Default 1000.
	Iterations int
	// Seed seeds the sampler chain.
	Seed int64
	// Sampler selects the per-token sampling kernel. Default SamplerSerial.
	// SweepShardedDocs honors SamplerSparse per shard; the parallel scan
	// kernels are ignored for the sweep itself (each shard scans serially)
	// but still used for token resampling during pruning.
	Sampler SamplerKind
	// Threads is the worker count shared by the parallel kernels (the
	// paper's P) and the sharded sweep mode. Default 1.
	Threads int
	// SweepMode selects how sweeps traverse the corpus. Default
	// SweepSequential (exact collapsed Gibbs).
	SweepMode SweepMode
	// Shards is the number of document shards for SweepShardedDocs; it is
	// capped at the document count. Default Threads, so selecting the
	// sharded mode with N threads shards the corpus N ways.
	Shards int
	// TraceLikelihood records the collapsed joint log-likelihood after each
	// sweep (the Fig. 6 trace).
	TraceLikelihood bool
	// OnIteration, when non-nil, runs after each sweep with the 0-based
	// sweep index; it may inspect the model but must not mutate it.
	OnIteration func(iter int, m *Model)
}

// DefaultShardWorkers returns the default worker count for a sharded sweep
// over docs documents given a requested shard count: one worker per shard,
// capped at the document count (shards beyond it never sample) and the CPU
// count (extra workers only add scheduling overhead). A non-positive shard
// request means "as many as useful". The sourcelda façade and the srclda
// CLI both derive their defaults from this so the two entry points never
// diverge.
func DefaultShardWorkers(shards, docs int) int {
	if shards <= 0 || shards > docs {
		shards = docs
	}
	if n := runtime.NumCPU(); shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// lambdaBurnIn returns the effective burn-in before λ posterior updates.
func (o *Options) lambdaBurnIn() int {
	if o.LambdaBurnIn > 0 {
		return o.LambdaBurnIn
	}
	return 10
}

// numStreams returns the number of deterministic RNG streams a chain over D
// documents draws from: one for the sequential mode, one per document shard
// (capped at D) for SweepShardedDocs. Options must already have defaults
// applied. Checkpoint capture and restore both size their stream-position
// vectors with this, so the two can never disagree with NewModel.
func (o *Options) numStreams(D int) int {
	if o.SweepMode != SweepShardedDocs {
		return 1
	}
	n := o.Shards
	if n > D {
		n = D
	}
	if n < 1 {
		n = 1
	}
	return n
}

// NumStreams returns how many deterministic RNG streams a chain with these
// options over D documents draws from, after applying defaults to a copy —
// the length a Checkpoint.StreamPos vector must have. Distributed-training
// assembly uses it to build a synthetic full-corpus checkpoint from worker
// shard states.
func (o Options) NumStreams(D int) int {
	o.applyDefaults()
	return o.numStreams(D)
}

// ChainDigest returns the chain-shaping options fingerprint after applying
// defaults to a copy — the same digest checkpoints embed as
// Checkpoint.OptionsDigest. Serving bundles record it so a deployed model
// can always be traced back to the exact chain configuration that trained
// it (and so two bundles can be compared for chain compatibility without
// re-reading the training command).
func (o Options) ChainDigest() uint64 {
	o.applyDefaults()
	return o.chainDigest()
}

// chainDigest hashes every option that influences the Gibbs chain's random
// trajectory — priors, λ treatment, quadrature size, prune and burn-in
// schedules, seed, kernel and sweep mode. Checkpoints embed the digest so a
// resume under different chain options (which would silently produce a
// chain neither run describes) fails loudly instead. Resource-only knobs
// (Threads, Iterations) are deliberately excluded: they change scheduling
// and duration, never the sampled sequence. Options must already have
// defaults applied.
func (o *Options) chainDigest() uint64 {
	// Shards only shapes the chain in the sharded mode (it sets the stream
	// count and document partition); in sequential mode its defaulted value
	// tracks Threads, which must not perturb the digest.
	shards := 0
	if o.SweepMode == SweepShardedDocs {
		shards = o.Shards
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "chain-v1|%d|%v|%v|%v|%d|%v|%v|%v|%d|%d|%v|%v|%+v|%v|%d|%d|%d|%d|%d|%d|%d|%d",
		o.NumFreeTopics, o.Alpha, o.Beta, o.Epsilon, o.LambdaMode, o.Lambda, o.Mu, o.Sigma,
		o.QuadraturePoints, o.lambdaBurnIn(), o.FreezeLambdaWeights, o.UseSmoothing, o.SmoothingConfig,
		o.PruneDeadTopics, o.PruneAfter, o.PruneEvery, o.PruneMinDocs, o.PruneMinTokens,
		o.Seed, o.Sampler, o.SweepMode, shards)
	return h.Sum64()
}

func (o *Options) applyDefaults() {
	if o.Alpha == 0 {
		o.Alpha = 0.5
	}
	if o.Beta == 0 {
		o.Beta = 0.01
	}
	if o.Epsilon == 0 {
		o.Epsilon = knowledge.DefaultEpsilon
	}
	if o.QuadraturePoints <= 0 {
		o.QuadraturePoints = 9
	}
	if o.PruneAfter <= 0 {
		o.PruneAfter = 20
	}
	if o.PruneEvery <= 0 {
		o.PruneEvery = 10
	}
	if o.PruneMinDocs <= 0 {
		o.PruneMinDocs = 2
	}
	if o.PruneMinTokens <= 0 {
		o.PruneMinTokens = 2
	}
	if o.Iterations <= 0 {
		o.Iterations = 1000
	}
	if o.Threads <= 0 {
		o.Threads = 1
	}
	if o.Shards <= 0 {
		o.Shards = o.Threads
	}
	if o.SmoothingConfig.GridPoints == 0 && o.SmoothingConfig.Samples == 0 {
		o.SmoothingConfig = smoothing.Config{GridPoints: 11, MeanField: true, Seed: o.Seed}
	}
}

func (o *Options) validate(c *corpus.Corpus, src *knowledge.Source) error {
	if c == nil || c.NumDocs() == 0 {
		return errors.New("core: corpus is empty; it must contain at least one document")
	}
	if c.VocabSize() == 0 {
		return errors.New("core: corpus vocabulary is empty; documents must contain at least one token")
	}
	if src == nil || src.Len() == 0 {
		return errors.New("core: knowledge source is empty; it must contain at least one labeled article (use package lda for unsupervised modeling)")
	}
	if o.NumFreeTopics < 0 {
		return fmt.Errorf("core: Options.NumFreeTopics is %d; it must be >= 0", o.NumFreeTopics)
	}
	if o.Alpha <= 0 {
		return fmt.Errorf("core: Options.Alpha is %v; the document-topic prior must be > 0", o.Alpha)
	}
	if o.Beta <= 0 {
		return fmt.Errorf("core: Options.Beta is %v; the free-topic word prior must be > 0", o.Beta)
	}
	if o.Epsilon <= 0 {
		return fmt.Errorf("core: Options.Epsilon is %v; the Definition 3 smoothing mass must be > 0", o.Epsilon)
	}
	if o.LambdaMode == LambdaFixed && (o.Lambda < 0 || o.Lambda > 1) {
		return fmt.Errorf("core: Options.Lambda is %v; a fixed λ exponent must lie in [0, 1]", o.Lambda)
	}
	if o.LambdaMode == LambdaIntegrated && o.Sigma < 0 {
		return fmt.Errorf("core: Options.Sigma is %v; the λ prior standard deviation must be >= 0", o.Sigma)
	}
	return nil
}
