package core

import (
	"sort"
	"time"
)

// Result is an immutable snapshot of a fitted model: distributions, labels,
// assignment statistics and traces. It is the hand-off type consumed by the
// labeling and evaluation packages.
type Result struct {
	// Phi[t][w] is the topic-word distribution (Eq. 4 for source topics).
	Phi [][]float64
	// Theta[d][t] is the document-topic distribution (Eq. 1).
	Theta [][]float64
	// Labels[t] names each topic: "topic-<i>" for free topics, the
	// knowledge-source label otherwise.
	Labels []string
	// SourceIndices[t] is the knowledge-source article index for source
	// topics, -1 for free topics.
	SourceIndices []int
	// NumFreeTopics is K.
	NumFreeTopics int
	// Alpha is the symmetric document-topic prior the model was fitted
	// with; fold-in inference on unseen documents reuses it. Zero in
	// snapshots written before the field existed.
	Alpha float64
	// Assignments[d][i] is the final topic of token i of document d, in the
	// model's topic indexing (free topics first).
	Assignments [][]int
	// TokenCounts[t] is the number of tokens assigned to topic t.
	TokenCounts []int
	// DocFrequencies[t] is the number of documents with ≥1 token in t.
	DocFrequencies []int
	// LikelihoodTrace and IterationTimes mirror the model's traces.
	LikelihoodTrace []float64
	IterationTimes  []time.Duration
}

// Result snapshots the current chain state.
func (m *Model) Result() *Result {
	r := &Result{
		Phi:           m.Phi(),
		Theta:         m.Theta(),
		Labels:        m.Labels(),
		NumFreeTopics: m.K,
		Alpha:         m.opts.Alpha,
		TokenCounts:   m.TokensPerTopic(),
	}
	r.SourceIndices = make([]int, m.T)
	for t := 0; t < m.T; t++ {
		r.SourceIndices[t] = m.SourceIndex(t)
	}
	r.Assignments = make([][]int, m.D)
	for d := range m.z {
		row := make([]int, len(m.z[d]))
		copy(row, m.z[d])
		r.Assignments[d] = row
	}
	r.DocFrequencies = m.TopicDocumentFrequencies(1)
	r.LikelihoodTrace = append([]float64(nil), m.LikelihoodTrace...)
	r.IterationTimes = append([]time.Duration(nil), m.IterationTimes...)
	return r
}

// NumTopics returns the number of topics in the snapshot.
func (r *Result) NumTopics() int { return len(r.Phi) }

// Reduction maps a full-topic-set Result onto a reduced topic set after
// superset topic reduction (§III-C3).
type Reduction struct {
	// Result is the reduced snapshot: Phi/Theta/Labels cover only surviving
	// topics; Theta rows are renormalized.
	Result *Result
	// OldToNew[t] is the surviving index of original topic t, or -1.
	OldToNew []int
	// Kept lists surviving original indices in order.
	Kept []int
}

// ReduceByDocumentFrequency keeps every free topic and every source topic
// assigned (with at least minTokens tokens) in at least minDocs documents,
// dropping the rest — the document-frequency thresholding the paper applies
// "with the goal of capturing topics that were frequently occurring in the
// corpus" (§III-C3). Assignments retain original indexing; use OldToNew to
// translate.
func (r *Result) ReduceByDocumentFrequency(minDocs, minTokens int) *Reduction {
	if minDocs < 1 {
		minDocs = 1
	}
	T := r.NumTopics()
	df := r.DocFrequencies
	if minTokens > 1 {
		df = docFrequencies(r.Assignments, T, minTokens)
	}
	kept := make([]int, 0, T)
	oldToNew := make([]int, T)
	for t := 0; t < T; t++ {
		if r.SourceIndices[t] < 0 || df[t] >= minDocs {
			oldToNew[t] = len(kept)
			kept = append(kept, t)
		} else {
			oldToNew[t] = -1
		}
	}
	out := &Result{
		NumFreeTopics:   r.NumFreeTopics,
		Assignments:     r.Assignments,
		LikelihoodTrace: r.LikelihoodTrace,
		IterationTimes:  r.IterationTimes,
	}
	out.Phi = make([][]float64, len(kept))
	out.Labels = make([]string, len(kept))
	out.SourceIndices = make([]int, len(kept))
	out.TokenCounts = make([]int, len(kept))
	out.DocFrequencies = make([]int, len(kept))
	for n, t := range kept {
		out.Phi[n] = r.Phi[t]
		out.Labels[n] = r.Labels[t]
		out.SourceIndices[n] = r.SourceIndices[t]
		out.TokenCounts[n] = r.TokenCounts[t]
		out.DocFrequencies[n] = r.DocFrequencies[t]
	}
	out.Theta = make([][]float64, len(r.Theta))
	for d, row := range r.Theta {
		nrow := make([]float64, len(kept))
		var total float64
		for n, t := range kept {
			nrow[n] = row[t]
			total += row[t]
		}
		if total > 0 {
			inv := 1 / total
			for n := range nrow {
				nrow[n] *= inv
			}
		}
		out.Theta[d] = nrow
	}
	return &Reduction{Result: out, OldToNew: oldToNew, Kept: kept}
}

// docFrequencies counts documents with ≥ minTokens tokens per topic.
func docFrequencies(assignments [][]int, T, minTokens int) []int {
	df := make([]int, T)
	counts := make([]int, T)
	for _, doc := range assignments {
		for i := range counts {
			counts[i] = 0
		}
		for _, t := range doc {
			if t >= 0 && t < T {
				counts[t]++
			}
		}
		for t, n := range counts {
			if n >= minTokens {
				df[t]++
			}
		}
	}
	return df
}

// ReduceToK keeps exactly k topics — those with the most assigned tokens —
// and renormalizes every document mixture over them. This is the §III-C3
// guarantee ("the collapsed Gibbs algorithm is guaranteed to produce K
// topics"): after document-frequency elimination the remaining topics are
// reduced to the requested K. If k ≥ the current topic count the snapshot
// is returned unchanged inside a trivial Reduction.
func (r *Result) ReduceToK(k int) *Reduction {
	T := r.NumTopics()
	if k >= T {
		oldToNew := make([]int, T)
		kept := make([]int, T)
		for t := range oldToNew {
			oldToNew[t] = t
			kept[t] = t
		}
		return &Reduction{Result: r, OldToNew: oldToNew, Kept: kept}
	}
	order := make([]int, T)
	for t := range order {
		order[t] = t
	}
	sort.SliceStable(order, func(i, j int) bool {
		return r.TokenCounts[order[i]] > r.TokenCounts[order[j]]
	})
	keep := make(map[int]bool, k)
	for _, t := range order[:k] {
		keep[t] = true
	}
	kept := make([]int, 0, k)
	oldToNew := make([]int, T)
	for t := 0; t < T; t++ {
		if keep[t] {
			oldToNew[t] = len(kept)
			kept = append(kept, t)
		} else {
			oldToNew[t] = -1
		}
	}
	out := &Result{
		NumFreeTopics:   r.NumFreeTopics,
		Assignments:     r.Assignments,
		LikelihoodTrace: r.LikelihoodTrace,
		IterationTimes:  r.IterationTimes,
	}
	out.Phi = make([][]float64, len(kept))
	out.Labels = make([]string, len(kept))
	out.SourceIndices = make([]int, len(kept))
	out.TokenCounts = make([]int, len(kept))
	out.DocFrequencies = make([]int, len(kept))
	for n, t := range kept {
		out.Phi[n] = r.Phi[t]
		out.Labels[n] = r.Labels[t]
		out.SourceIndices[n] = r.SourceIndices[t]
		out.TokenCounts[n] = r.TokenCounts[t]
		out.DocFrequencies[n] = r.DocFrequencies[t]
	}
	out.Theta = make([][]float64, len(r.Theta))
	for d, row := range r.Theta {
		nrow := make([]float64, len(kept))
		var total float64
		for n, t := range kept {
			nrow[n] = row[t]
			total += row[t]
		}
		if total > 0 {
			inv := 1 / total
			for n := range nrow {
				nrow[n] *= inv
			}
		}
		out.Theta[d] = nrow
	}
	return &Reduction{Result: out, OldToNew: oldToNew, Kept: kept}
}

// DiscoveredSourceTopics returns the labels of source topics that survive a
// document-frequency threshold — the paper's "discovered labeled topics"
// count for Table I (Source-LDA discovered 15, CTM 6).
func (r *Result) DiscoveredSourceTopics(minDocs, minTokens int) []string {
	red := r.ReduceByDocumentFrequency(minDocs, minTokens)
	var out []string
	for _, t := range red.Kept {
		if r.SourceIndices[t] >= 0 {
			out = append(out, r.Labels[t])
		}
	}
	return out
}
