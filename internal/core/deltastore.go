package core

import (
	"math"

	"sourcelda/internal/knowledge"
	"sourcelda/internal/smoothing"
)

// deltaStore materializes the λ-quadrature state of every source topic —
// the (δ_w)^{e_p} values and totals the Gibbs inner loop needs (§III-C's
// "Calculate g_t" preamble in Algorithm 1) — into flat arrays indexed by
// (topic, node) and a word-major CSR block for the sparse per-word values.
//
// The seed held this state as one map[int][]float64 per topic, costing a
// map probe (hash + bucket chase) per source topic per token. Here the
// sparse structure is compressed rows over words:
//
//	wordStart[w] .. wordStart[w+1] — the entry range of word w
//	entryTopic[e]                  — the source topic of entry e, ascending
//	                                 within each word's range
//	vals[e*P + p]                  — the P quadrature values (δ_w)^{e_p}
//
// One token's inner loop walks its word's entry range once, in topic order,
// in lockstep with the topic loop — no hashing, no per-entry search, and
// memory stays O(nnz) (article-supported words only) like the seed's maps,
// not O(V·S). Unsupported (word, topic) pairs share the per-topic defaults
// row ε^{e_p}. All (s, p) matrices are flattened s*P+p. Everything except
// weights is fixed for the whole chain because δ derives from the knowledge
// source, not the corpus; weights carries the current λ posterior per topic
// (prior mass reweighted each sweep unless Options.FreezeLambdaWeights).
type deltaStore struct {
	S, P, V int

	// nodes[p] is the raw λ quadrature node, shared by every topic.
	nodes []float64
	// priorLogW[p] is log of the normalized N(µ,σ) node mass, shared.
	priorLogW []float64
	// exponents[s*P+p] = g_s(node_p) (or node_p without smoothing).
	exponents []float64
	// weights[s*P+p] is the topic's current normalized quadrature weight.
	weights []float64
	// totals[s*P+p] = Σ_a (δ_a)^{e_p} over the whole vocabulary.
	totals []float64
	// defaults[s*P+p] = ε^{e_p}, the value row of unsupported words.
	defaults []float64

	wordStart  []int32
	entryTopic []int32
	vals       []float64

	// hyper[s] is retained for the collapsed likelihood (LogLikelihood),
	// which re-powers δ at the posterior-mean exponent.
	hyper []*knowledge.Hyperparams
}

// newDeltaStore precomputes the quadrature state for every article of src.
func newDeltaStore(src *knowledge.Source, V int, o *Options) *deltaStore {
	var nodes, weights []float64
	if o.LambdaMode == LambdaIntegrated {
		nodes, weights = quadratureNodes(o.Mu, o.Sigma, o.QuadraturePoints)
	} else {
		nodes, weights = []float64{o.Lambda}, []float64{1}
	}
	S, P := src.Len(), len(nodes)
	ds := &deltaStore{
		S: S, P: P, V: V,
		nodes:     append([]float64(nil), nodes...),
		priorLogW: make([]float64, P),
		exponents: make([]float64, S*P),
		weights:   make([]float64, S*P),
		totals:    make([]float64, S*P),
		defaults:  make([]float64, S*P),
		hyper:     make([]*knowledge.Hyperparams, S),
	}
	for p, w := range weights {
		if w <= 0 {
			ds.priorLogW[p] = math.Inf(-1)
		} else {
			ds.priorLogW[p] = math.Log(w)
		}
	}

	// Pass 1: per-topic hyperparameters and g estimation; count per-word
	// support to size the CSR block.
	gs := make([]*smoothing.G, S)
	counts := make([]int32, V+1)
	nnz := 0
	for s := 0; s < S; s++ {
		art := src.Article(s)
		h := art.Hyperparams(V, o.Epsilon)
		ds.hyper[s] = h
		if o.UseSmoothing {
			cfg := o.SmoothingConfig
			cfg.Seed = o.SmoothingConfig.Seed + int64(s)
			gs[s] = smoothing.Estimate(h, art.SmoothedDistribution(V, o.Epsilon), cfg)
		} else {
			gs[s] = smoothing.Identity()
		}
		copy(ds.weights[s*P:(s+1)*P], weights)
		for _, w := range h.PresentWords() {
			counts[w+1]++
			nnz++
		}
	}

	// Exclusive prefix sums give each word its entry range; iterating
	// topics in ascending order below keeps every range topic-sorted.
	ds.wordStart = counts
	for w := 0; w < V; w++ {
		ds.wordStart[w+1] += ds.wordStart[w]
	}
	ds.entryTopic = make([]int32, nnz)
	ds.vals = make([]float64, nnz*P)
	next := make([]int32, V)
	copy(next, ds.wordStart[:V])

	// Pass 2: powered values per node. Every node of one topic shares the
	// same present-word set, in ascending word order, so entry ids are
	// assigned on the first node and reused (in the same order) on the rest.
	entryIDs := make([]int32, 0, 256)
	for s := 0; s < S; s++ {
		h := ds.hyper[s]
		entryIDs = entryIDs[:0]
		for p, node := range nodes {
			e := node
			if o.UseSmoothing {
				e = gs[s].Eval(node)
			}
			ds.exponents[s*P+p] = e
			pd := h.Pow(e)
			ds.defaults[s*P+p] = pd.Default
			ds.totals[s*P+p] = pd.Total
			if p == 0 {
				pd.ForEachPresent(func(w int, v float64) {
					id := next[w]
					next[w]++
					ds.entryTopic[id] = int32(s)
					ds.vals[int(id)*P] = v
					entryIDs = append(entryIDs, id)
				})
				continue
			}
			i := 0
			pd.ForEachPresent(func(w int, v float64) {
				ds.vals[int(entryIDs[i])*P+p] = v
				i++
			})
		}
	}
	return ds
}

// wordEntries returns word w's CSR window: the supporting topic ids (in
// ascending order) and the entry index of the first.
func (ds *deltaStore) wordEntries(w int) (topics []int32, base int) {
	lo, hi := ds.wordStart[w], ds.wordStart[w+1]
	return ds.entryTopic[lo:hi], int(lo)
}

// searchTopic returns the first index of sup whose topic id is >= s — the
// lower bound over a word's (ascending) supporting-topic window, shared by
// the sweep hot path's cursor positioning and the cold-path lookups.
func searchTopic(sup []int32, s int) int {
	lo, hi := 0, len(sup)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(sup[mid]) < s {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// values returns the P quadrature values (δ_w)^{e_p} for word w under
// source topic s — the word's value row, or the topic's defaults row. It
// binary-searches the word's support window and is meant for the cold
// paths (initialization, Phi, likelihoods); the sweep hot path walks the
// window in lockstep with the topic loop instead.
func (ds *deltaStore) values(s, w int) []float64 {
	sup, base := ds.wordEntries(w)
	if i := searchTopic(sup, s); i < len(sup) && int(sup[i]) == s {
		e := base + i
		return ds.vals[e*ds.P : (e+1)*ds.P]
	}
	return ds.defaults[s*ds.P : (s+1)*ds.P]
}

// wordProb returns P(w | source topic s) under the collapsed conditional
// given nw (tokens of w in the topic, excluding the current token) and nsum
// (total tokens in the topic): the λ-integral of Eq. 3 evaluated by
// quadrature, or the single fixed-λ ratio of §III-A.
func (ds *deltaStore) wordProb(s int, vals []float64, nw, nsum float64) float64 {
	base := s * ds.P
	if ds.P == 1 {
		return (nw + vals[0]) / (nsum + ds.totals[base])
	}
	var p float64
	for i, v := range vals {
		p += ds.weights[base+i] * (nw + v) / (nsum + ds.totals[base+i])
	}
	return p
}

// topicWeights returns the quadrature weight row of source topic s.
func (ds *deltaStore) topicWeights(s int) []float64 {
	return ds.weights[s*ds.P : (s+1)*ds.P]
}
