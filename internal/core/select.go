package core

import (
	"errors"
	"fmt"

	"sourcelda/internal/cluster"
	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/rng"
)

// ParameterGrid is the search space for SelectParameters.
type ParameterGrid struct {
	// Mus and Sigmas are the candidate λ-prior parameters. Defaults:
	// µ ∈ {0.3, 0.5, 0.7, 0.9}, σ ∈ {0.1, 0.3, 0.5}.
	Mus, Sigmas []float64
	// HeldOutFraction of documents goes to the validation split. Default 0.2.
	HeldOutFraction float64
	// TrainIterations per candidate fit. Default 100.
	TrainIterations int
	// PerplexityIterations for held-out Gibbs estimation. Default 30.
	PerplexityIterations int
	// Seed drives the split and the candidate fits.
	Seed int64
}

func (g ParameterGrid) withDefaults() ParameterGrid {
	if len(g.Mus) == 0 {
		g.Mus = []float64{0.3, 0.5, 0.7, 0.9}
	}
	if len(g.Sigmas) == 0 {
		g.Sigmas = []float64{0.1, 0.3, 0.5}
	}
	if g.HeldOutFraction <= 0 || g.HeldOutFraction >= 1 {
		g.HeldOutFraction = 0.2
	}
	if g.TrainIterations <= 0 {
		g.TrainIterations = 100
	}
	if g.PerplexityIterations <= 0 {
		g.PerplexityIterations = 30
	}
	return g
}

// Candidate is one evaluated (µ, σ) pair.
type Candidate struct {
	Mu, Sigma  float64
	Perplexity float64
}

// Selection is the outcome of a grid search.
type Selection struct {
	// Best is the minimum-perplexity candidate.
	Best Candidate
	// Candidates lists every evaluated pair, in evaluation order.
	Candidates []Candidate
}

// SelectParameters performs the §III-C5a parameter selection the paper's
// Reuters experiment uses ("µ and σ were determined by experimentally
// finding a local minimum value of perplexity"): the corpus is split, every
// (µ, σ) pair on the grid is fit on the training side with the options in
// base (LambdaMode forced to LambdaIntegrated), held-out perplexity is
// estimated by Gibbs sampling, and the minimizing pair is returned.
//
// The paper cautions — and Fig. 7 demonstrates — that perplexity is an
// imperfect proxy for downstream quality; the returned Candidates let
// callers inspect the whole surface.
func SelectParameters(c *corpus.Corpus, src *knowledge.Source, base Options, grid ParameterGrid) (*Selection, error) {
	if c == nil || c.NumDocs() < 2 {
		return nil, errors.New("core: need at least two documents to split")
	}
	grid = grid.withDefaults()
	train, test := c.Split(grid.HeldOutFraction, rng.New(grid.Seed))
	sel := &Selection{}
	best := Candidate{Perplexity: -1}
	for _, mu := range grid.Mus {
		for _, sigma := range grid.Sigmas {
			opts := base
			opts.LambdaMode = LambdaIntegrated
			opts.Mu, opts.Sigma = mu, sigma
			opts.Iterations = grid.TrainIterations
			opts.Seed = grid.Seed
			m, err := Fit(train, src, opts)
			if err != nil {
				return nil, fmt.Errorf("core: grid fit µ=%v σ=%v: %w", mu, sigma, err)
			}
			ppx, err := m.HeldOutPerplexity(test, grid.PerplexityIterations,
				grid.PerplexityIterations/2, grid.Seed+1)
			m.Close()
			if err != nil {
				return nil, fmt.Errorf("core: grid perplexity µ=%v σ=%v: %w", mu, sigma, err)
			}
			cand := Candidate{Mu: mu, Sigma: sigma, Perplexity: ppx}
			sel.Candidates = append(sel.Candidates, cand)
			if best.Perplexity < 0 || ppx < best.Perplexity {
				best = cand
			}
		}
	}
	sel.Best = best
	return sel, nil
}

// ClusterReduction is the k-means alternative of §III-C3: instead of (or
// after) document-frequency thresholding, the fitted topic-word rows are
// clustered with JS-divergence k-means down to exactly k centroids.
type ClusterReduction struct {
	// Centroids[k] is a merged topic-word distribution.
	Centroids [][]float64
	// Membership[t] is the cluster of original topic t.
	Membership []int
	// Labels[k] names each centroid by the label of its heaviest member
	// (by token count).
	Labels []string
}

// ReduceByClustering clusters the snapshot's topics to exactly k merged
// topics ("we then can use a clustering algorithm (such as k-means, JS
// divergence) to further reduce the modeled topics and give a total of K
// topics", §III-C3).
func (r *Result) ReduceByClustering(k int, seed int64) (*ClusterReduction, error) {
	if k < 1 || k > r.NumTopics() {
		return nil, fmt.Errorf("core: cluster count %d outside [1, %d]", k, r.NumTopics())
	}
	res, err := cluster.KMeansJS(r.Phi, cluster.Options{K: k, Seed: seed})
	if err != nil {
		return nil, err
	}
	out := &ClusterReduction{
		Centroids:  res.Centroids,
		Membership: res.Assignment,
		Labels:     make([]string, k),
	}
	heaviest := make([]int, k)
	for i := range heaviest {
		heaviest[i] = -1
	}
	for t, cl := range res.Assignment {
		if heaviest[cl] == -1 || r.TokenCounts[t] > r.TokenCounts[heaviest[cl]] {
			heaviest[cl] = t
		}
	}
	for cl, t := range heaviest {
		if t >= 0 {
			out.Labels[cl] = r.Labels[t]
		}
	}
	return out, nil
}
