package core

import (
	"sourcelda/internal/parallel"
	"sourcelda/internal/rng"
)

// gibbsView is the working state one goroutine sweeps with: the count slabs
// it samples against (the global slabs for the sequential mode, shard-local
// copies in sharded mode), cached per-topic denominators, and the current
// token's row pointers. Its fill method evaluates the collapsed conditional
// of Eq. 2/3 for a topic range with direct slice indexing — no closure call
// per topic, no map probe per word, and no division in the token loop.
//
// The denominator caches are the key: the conditional divides by
// (n_t + Vβ) for free topics and (n_t + Σδ^{e_p}) per quadrature node for
// source topics, yet a resampled token changes n_t for only two topics.
// Caching the reciprocals and refreshing just those two rows replaces
// K + S·P divisions per token with at most 2·P.
type gibbsView struct {
	m          *ChainRuntime
	K, T, S, P int
	alpha      float64
	beta       float64
	vBeta      float64

	wordTopic  []int32
	topicTotal []int32

	// freeDen[t] = 1/(topicTotal[t] + Vβ) for free topics t < K — the
	// cached smoothing denominator of Eq. 2; 0 when the topic is disabled.
	freeDen []float64
	// wInv[s*P+p] = weights[s*P+p] / (topicTotal[K+s] + totals[s*P+p]),
	// the quadrature weight pre-divided by its node denominator, so one
	// source-topic probability is a P-term multiply-accumulate; 0 when the
	// topic is disabled.
	wInv []float64

	// Per-token state, set by setToken and the caller before fill runs.
	tokenRow []int32 // wordTopic row of the current word
	supRow   []int32 // supporting source topics of the current word (CSR)
	supBase  int     // deltaStore entry index of supRow[0]
	docRow   []int32 // docTopic row of the current document
	curWord  int     // word id of the current token

	// sparse holds the bucket-decomposed totals and nonzero lists of the
	// SparseLDA-style sampler (see sparse.go); nil unless Options.Sampler
	// is SamplerSparse. When set, dec/inc/refreshTopic keep it current in
	// O(1)/O(P) per count change.
	sparse *sparseState

	// fillFn is the method value bound once so sampling allocates no
	// closure per token.
	fillFn parallel.FillFunc
}

func newGibbsView(m *ChainRuntime, wordTopic, topicTotal []int32, useSparse bool) *gibbsView {
	v := &gibbsView{
		m: m, K: m.K, T: m.T, S: m.S, P: m.delta.P,
		alpha: m.opts.Alpha, beta: m.opts.Beta,
		vBeta:      float64(m.V) * m.opts.Beta,
		wordTopic:  wordTopic,
		topicTotal: topicTotal,
		freeDen:    make([]float64, m.K),
		wInv:       make([]float64, m.S*m.delta.P),
	}
	v.fillFn = v.fill
	if useSparse {
		v.sparse = newSparseState(v)
	}
	v.rebuildDenoms()
	if useSparse {
		// The slabs may already hold a restored chain's counts; derive the
		// nonzero lists from them.
		v.sparse.rebuildLists()
	}
	return v
}

// fill implements parallel.FillFunc for the current token: out[i] is the
// unnormalized P(z = lo+i | …) of Eq. 2 (free topics) or Eq. 3 with λ
// integrated by quadrature (source topics). Disabled topics fall out with
// probability zero because their cached denominators are zeroed.
func (v *gibbsView) fill(lo, hi int, out []float64) {
	row, doc := v.tokenRow, v.docRow
	t := lo
	for ; t < hi && t < v.K; t++ {
		out[t-lo] = (float64(row[t]) + v.beta) * v.freeDen[t] * (float64(doc[t]) + v.alpha)
	}
	P := v.P
	ds := v.m.delta
	// The word's supporting topics (supRow) are ascending, as is the topic
	// loop: advance a cursor in lockstep instead of searching per topic.
	// Chunked fills (parallel kernels) start mid-range, so position the
	// cursor once per call with a binary search.
	sup := v.supRow
	idx := 0
	if s0 := t - v.K; s0 > 0 {
		idx = searchTopic(sup, s0)
	}
	for ; t < hi; t++ {
		s := t - v.K
		var vals []float64
		if idx < len(sup) && int(sup[idx]) == s {
			e := v.supBase + idx
			vals = ds.vals[e*P : (e+1)*P]
			idx++
		} else {
			vals = ds.defaults[s*P : (s+1)*P]
		}
		wi := v.wInv[s*P : (s+1)*P]
		nw := float64(row[t])
		var acc float64
		for p := 0; p < P; p++ {
			acc += (nw + vals[p]) * wi[p]
		}
		out[t-lo] = acc * (float64(doc[t]) + v.alpha)
	}
}

// setToken points the view at word w's count row and sparse-value window.
func (v *gibbsView) setToken(w int) {
	v.curWord = w
	v.tokenRow = v.wordTopic[w*v.T : (w+1)*v.T : (w+1)*v.T]
	v.supRow, v.supBase = v.m.delta.wordEntries(w)
}

// setDoc points the view at a document's count row and, for the sparse
// sampler, rebuilds the document bucket's nonzero-topic list.
func (v *gibbsView) setDoc(row []int32) {
	v.docRow = row
	if v.sparse != nil {
		v.sparse.setDoc(row)
	}
}

// resample redraws token i of zd — a token of word w in the document whose
// counts docRow currently points at — with the given kernel and RNG stream.
// This is the one place the dec → fill → inc protocol lives; the sequential
// sweep, the sharded sweep, and prune resampling all go through it.
func (v *gibbsView) resample(zd []int, i, w int, sampler parallel.TopicSampler, r *rng.RNG) {
	v.setToken(w)
	v.dec(zd[i])
	zd[i] = sampler.Sample(v.T, v.fillFn, r.Float64())
	v.inc(zd[i])
}

// dec removes the current token from topic t; setToken and docRow must be
// current. inc is its inverse.
func (v *gibbsView) dec(t int) {
	v.tokenRow[t]--
	v.docRow[t]--
	v.topicTotal[t]--
	if v.sparse != nil {
		v.sparse.noteDec(v.curWord, t)
	}
	v.refreshTopic(t)
}

func (v *gibbsView) inc(t int) {
	v.tokenRow[t]++
	v.docRow[t]++
	v.topicTotal[t]++
	if v.sparse != nil {
		v.sparse.noteInc(v.curWord, t)
	}
	v.refreshTopic(t)
}

// refreshTopic recomputes topic t's cached denominators after its total
// changed (or its disabled flag / quadrature weights did), keeping the
// sparse bucket totals in step with the same change.
func (v *gibbsView) refreshTopic(t int) {
	if t < v.K {
		den := 0.0
		if !v.m.disabled[t] {
			den = 1 / (float64(v.topicTotal[t]) + v.vBeta)
		}
		if v.sparse != nil {
			v.sparse.freeSmooth += v.alpha * v.beta * (den - v.freeDen[t])
		}
		v.freeDen[t] = den
		return
	}
	s := t - v.K
	base := s * v.P
	wi := v.wInv[base : base+v.P]
	if v.m.disabled[t] {
		clear(wi)
	} else {
		ds := v.m.delta
		tot := float64(v.topicTotal[t])
		for p := range wi {
			wi[p] = ds.weights[base+p] / (tot + ds.totals[base+p])
		}
	}
	if v.sparse != nil {
		v.sparse.refreshSource(s)
	}
}

// rebuildDenoms refreshes every topic's cached denominators — needed after
// bulk count changes (shard reconciliation), λ posterior reweighting, and
// topic pruning — and resyncs the sparse bucket totals to the fresh
// per-topic values. It does NOT rescan the word-topic slab: the sparse
// nonzero lists are maintained incrementally and only go stale where the
// slab itself is bulk overwritten, which those sites handle explicitly
// (rebuildLists / listsStale).
func (v *gibbsView) rebuildDenoms() {
	for t := 0; t < v.T; t++ {
		v.refreshTopic(t)
	}
	if v.sparse != nil {
		v.sparse.resyncTotals()
	}
}

// shardView is one document shard of the sharded sweep mode: a gibbsView
// over private copies of the word-topic slabs, an in-shard sampler (serial,
// or sparse when SamplerSparse is selected), and the shard's own
// deterministic RNG stream.
type shardView struct {
	view    *gibbsView
	sampler parallel.TopicSampler
	r       *rng.RNG
	lo, hi  int // document range [lo, hi)
}

// sweepRange resamples every token of documents [lo, hi) through view v
// with the given kernel and RNG stream — the one corpus-traversal loop the
// sequential sweep and every shard share.
func (m *ChainRuntime) sweepRange(v *gibbsView, lo, hi int, sampler parallel.TopicSampler, r *rng.RNG) {
	for d := lo; d < hi; d++ {
		v.setDoc(m.counts.docRow(d))
		zd := m.z[d]
		for i, w := range m.c.Docs[d].Words {
			v.resample(zd, i, w, sampler, r)
		}
	}
}

// sweepSequential is Algorithm 1's corpus loop: tokens are resampled one at
// a time against the live global counts, so the chain is exact collapsed
// Gibbs. The configured kernel (serial, prefix-sum, or simple-parallel)
// parallelizes — at most — within one token's topic vector (§III-C4).
func (m *ChainRuntime) sweepSequential() {
	m.sweepRange(m.seq, 0, m.D, m.sampler, m.streams[0])
}

// sweepSharded is the document-sharded data-parallel sweep (AD-LDA style,
// Newman et al.): every shard resamples its documents against a private
// copy of the word-topic counts taken at the sweep barrier, and the global
// counts are rebuilt from the assignments afterwards. With more than one
// shard the chain is an approximation of collapsed Gibbs (counts are stale
// within a sweep across shards); with exactly one shard it IS the
// sequential chain — same seed, same assignments — because the single
// shard's copy sees every one of its own updates.
//
// Determinism: shard i always covers the same document range and draws from
// the same rng.NewStream(seed, i) stream, so results depend on the shard
// count but never on worker scheduling.
func (m *ChainRuntime) sweepSharded() {
	if len(m.shards) == 1 {
		// A single shard IS the sequential chain: its view aliases the
		// global slabs (see NewModel), so there is no copy, no barrier
		// rebuild — just the shard's serial kernel and RNG stream, which
		// match the sequential mode's defaults.
		m.runShard(m.shards[0])
		return
	}
	m.pool.Run(len(m.shards), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			m.runShard(m.shards[i])
		}
	})
	// Shard barrier: fold every shard's local deltas back into the global
	// store. Rebuilding from assignments is equivalent to summing the
	// per-shard deltas (each token's reassignment is -1/+1 on its word row)
	// and touches each token once, deterministically. rebuildCounts re-adds
	// the distributed external overlay, which the assignments don't cover.
	m.rebuildCounts()
	m.seq.rebuildDenoms()
	if m.seq.sparse != nil {
		// The global slab was just rewritten underneath the sequential
		// view's nonzero lists. Their only consumer here is prune-time
		// resampling, so defer the O(V·T) rescan until pruning asks.
		m.seq.sparse.listsStale = true
	}
}

func (m *ChainRuntime) runShard(sh *shardView) {
	v := sh.view
	if v != m.seq {
		copy(v.wordTopic, m.counts.wordTopic)
		copy(v.topicTotal, m.counts.topicTotal)
		v.rebuildDenoms()
		if v.sparse != nil {
			// The slab copy invalidated the shard's nonzero lists.
			v.sparse.rebuildLists()
		}
	}
	m.sweepRange(v, sh.lo, sh.hi, sh.sampler, sh.r)
}
