package core

import (
	"math"
	"strings"
	"testing"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/stats"
	"sourcelda/internal/synth"
)

// caseStudyFixture builds the §I case-study data.
func caseStudyFixture() *synth.CaseStudyData { return synth.CaseStudy() }

func TestValidation(t *testing.T) {
	cs := caseStudyFixture()
	bad := []Options{
		{NumFreeTopics: -1},
		{Alpha: -1},
		{LambdaMode: LambdaFixed, Lambda: 2},
		{LambdaMode: LambdaIntegrated, Mu: 0.5, Sigma: -1},
	}
	for i, o := range bad {
		o.Iterations = 1
		if _, err := Fit(cs.Corpus, cs.Source, o); err == nil {
			t.Errorf("case %d: invalid options accepted: %+v", i, o)
		}
	}
	if _, err := Fit(nil, cs.Source, Options{Iterations: 1}); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := Fit(cs.Corpus, nil, Options{Iterations: 1}); err == nil {
		t.Error("nil source accepted")
	}
}

func TestCaseStudyIdealAssignments(t *testing.T) {
	// The paper's §I motivating claim: with the School Supplies and
	// Baseball articles as prior knowledge, Source-LDA should put pencil
	// and ruler under School Supplies and umpire and baseball under
	// Baseball — the "ideal solution" LDA cannot reliably find.
	cs := caseStudyFixture()
	m, err := Fit(cs.Corpus, cs.Source, Options{
		NumFreeTopics: 0, // bijective: exactly the two known topics
		Alpha:         0.5,
		LambdaMode:    LambdaFixed,
		Lambda:        1,
		Iterations:    200,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	school := m.K + cs.SchoolSupplies
	baseball := m.K + cs.Baseball
	z := m.Assignments()
	// d1 = pencil, pencil, umpire; d2 = ruler, ruler, baseball.
	if z[0][0] != school || z[0][1] != school {
		t.Errorf("pencil tokens assigned to %d/%d, want School Supplies (%d)", z[0][0], z[0][1], school)
	}
	if z[0][2] != baseball {
		t.Errorf("umpire assigned to %d, want Baseball (%d)", z[0][2], baseball)
	}
	if z[1][0] != school || z[1][1] != school {
		t.Errorf("ruler tokens assigned to %d/%d, want School Supplies (%d)", z[1][0], z[1][1], school)
	}
	if z[1][2] != baseball {
		t.Errorf("baseball assigned to %d, want Baseball (%d)", z[1][2], baseball)
	}
}

func TestPhiThetaNormalized(t *testing.T) {
	cs := caseStudyFixture()
	for _, mode := range []LambdaMode{LambdaFixed, LambdaIntegrated} {
		m, err := Fit(cs.Corpus, cs.Source, Options{
			NumFreeTopics: 2,
			LambdaMode:    mode,
			Lambda:        0.8,
			Mu:            0.7, Sigma: 0.3,
			QuadraturePoints: 5,
			Iterations:       15,
			Seed:             1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for k, row := range m.Phi() {
			var s float64
			for _, p := range row {
				if p < 0 {
					t.Fatalf("mode %v: negative φ[%d]", mode, k)
				}
				s += p
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("mode %v: φ[%d] sums to %v", mode, k, s)
			}
		}
		for d, row := range m.Theta() {
			var s float64
			for _, p := range row {
				s += p
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("mode %v: θ[%d] sums to %v", mode, d, s)
			}
		}
		m.Close()
	}
}

func TestLambdaOneConformsToSource(t *testing.T) {
	// With λ = 1 and a corpus drawn from the source distribution, φ should
	// hug the source distribution (Fig. 2's premise).
	cs := caseStudyFixture()
	m, err := Fit(cs.Corpus, cs.Source, Options{
		LambdaMode: LambdaFixed, Lambda: 1, Alpha: 0.5,
		Iterations: 100, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	phi := m.Phi()
	V := cs.Corpus.VocabSize()
	for s := 0; s < cs.Source.Len(); s++ {
		src := cs.Source.Article(s).SmoothedDistribution(V, knowledge.DefaultEpsilon)
		js := stats.JSDivergence(phi[m.K+s], src)
		if js > 0.1 {
			t.Errorf("topic %d: JS to source %v, want < 0.1 at λ=1", s, js)
		}
	}
}

func TestLambdaZeroIgnoresSourceShape(t *testing.T) {
	// λ = 0 flattens δ to all-ones: φ is then driven by corpus counts, not
	// the source. The divergence from the source should exceed the λ = 1
	// divergence (the relaxation the paper designs λ for).
	cs := caseStudyFixture()
	fit := func(lambda float64) float64 {
		m, err := Fit(cs.Corpus, cs.Source, Options{
			LambdaMode: LambdaFixed, Lambda: lambda, Alpha: 0.5,
			Iterations: 100, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		V := cs.Corpus.VocabSize()
		var total float64
		for s := 0; s < cs.Source.Len(); s++ {
			src := cs.Source.Article(s).SmoothedDistribution(V, knowledge.DefaultEpsilon)
			total += stats.JSDivergence(m.Phi()[m.K+s], src)
		}
		return total
	}
	if js0, js1 := fit(0), fit(1); js0 <= js1 {
		t.Fatalf("JS at λ=0 (%v) should exceed JS at λ=1 (%v)", js0, js1)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	cs := caseStudyFixture()
	opts := Options{
		NumFreeTopics: 1, LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, Iterations: 10, Seed: 99,
	}
	m1, err := Fit(cs.Corpus, cs.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	m2, err := Fit(cs.Corpus, cs.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	z1, z2 := m1.Assignments(), m2.Assignments()
	for d := range z1 {
		for i := range z1[d] {
			if z1[d][i] != z2[d][i] {
				t.Fatal("same options+seed produced different chains")
			}
		}
	}
}

func TestParallelSamplersMatchSerial(t *testing.T) {
	// The §III-C4 exactness guarantee carried through the full model: with
	// identical seeds, Algorithm 2 and Algorithm 3 kernels must reproduce
	// the serial chain token for token.
	cs := caseStudyFixture()
	base := Options{
		NumFreeTopics: 1, LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, Iterations: 20, Seed: 1234,
	}
	serialOpts := base
	serialOpts.Sampler = SamplerSerial
	ref, err := Fit(cs.Corpus, cs.Source, serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	for _, kind := range []SamplerKind{SamplerSimpleParallel, SamplerPrefixSums} {
		for _, threads := range []int{1, 2, 4} {
			o := base
			o.Sampler = kind
			o.Threads = threads
			m, err := Fit(cs.Corpus, cs.Source, o)
			if err != nil {
				t.Fatal(err)
			}
			for d := range ref.Assignments() {
				for i := range ref.Assignments()[d] {
					if m.Assignments()[d][i] != ref.Assignments()[d][i] {
						t.Fatalf("%v threads=%d diverged from serial at doc %d token %d",
							kind, threads, d, i)
					}
				}
			}
			m.Close()
		}
	}
}

func TestMixtureRecoversUnknownTopic(t *testing.T) {
	// Build a corpus mixing a source topic with an unknown topic the
	// knowledge source does not cover; the free topic should absorb the
	// unknown vocabulary (§III-B's purpose).
	c := corpus.New()
	for i := 0; i < 25; i++ {
		c.AddText("known", "pencil ruler eraser pencil ruler eraser notebook paper", nil)
		c.AddText("unknown", "quasar nebula pulsar quasar nebula pulsar galaxy photon", nil)
	}
	// A realistic knowledge article carries enough pseudo-counts (the paper
	// uses whole Wikipedia articles) to anchor the source topic; repeat the
	// text so δ is comparable to the corpus token mass.
	school := knowledge.NewArticleFromText("School Supplies",
		strings.Repeat("pencil pencil pencil ruler ruler eraser eraser notebook paper paper ", 30),
		c.Vocab, nil, true)
	src := knowledge.MustNewSource([]*knowledge.Article{school})
	m, err := Fit(c, src, Options{
		NumFreeTopics: 1,
		Alpha:         0.5,
		LambdaMode:    LambdaFixed,
		Lambda:        1,
		Iterations:    150,
		Seed:          17,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	phi := m.Phi()
	quasar, _ := c.Vocab.ID("quasar")
	pencil, _ := c.Vocab.ID("pencil")
	// Free topic (index 0) should carry the astronomy words.
	if phi[0][quasar] < 0.05 {
		t.Errorf("free topic gives quasar %v, want it to absorb unknown vocabulary", phi[0][quasar])
	}
	// Source topic should hold the school words.
	if phi[1][pencil] < 0.05 {
		t.Errorf("source topic gives pencil %v", phi[1][pencil])
	}
	// Tokens of the unknown documents should mostly use the free topic.
	var freeTokens, total int
	for d, doc := range c.Docs {
		if doc.Name != "unknown" {
			continue
		}
		for _, k := range m.Assignments()[d] {
			total++
			if k == 0 {
				freeTokens++
			}
		}
	}
	if frac := float64(freeTokens) / float64(total); frac < 0.7 {
		t.Errorf("unknown tokens on free topic: %v, want ≥ 0.7", frac)
	}
}

func TestQuadratureNodes(t *testing.T) {
	nodes, weights := quadratureNodes(0.5, 0.2, 9)
	if len(nodes) != 9 || len(weights) != 9 {
		t.Fatal("wrong node count")
	}
	var wsum float64
	for i, w := range weights {
		if w < 0 {
			t.Fatal("negative weight")
		}
		if nodes[i] <= 0 || nodes[i] >= 1 {
			t.Fatalf("node %v outside (0,1)", nodes[i])
		}
		wsum += w
	}
	if math.Abs(wsum-1) > 1e-12 {
		t.Fatalf("weights sum to %v", wsum)
	}
	// Weight mass should peak near µ.
	mid := weights[4]
	if weights[0] >= mid || weights[8] >= mid {
		t.Fatal("weights should peak near the mean")
	}
	// σ = 0 degenerates to one node at clamp(µ).
	nodes, weights = quadratureNodes(1.7, 0, 9)
	if len(nodes) != 1 || nodes[0] != 1 || weights[0] != 1 {
		t.Fatalf("σ=0 nodes = %v, weights = %v", nodes, weights)
	}
}

func TestTopicDocumentFrequenciesAndTokens(t *testing.T) {
	cs := caseStudyFixture()
	m, err := Fit(cs.Corpus, cs.Source, Options{
		LambdaMode: LambdaFixed, Lambda: 1, Iterations: 50, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	df := m.TopicDocumentFrequencies(1)
	var totalTokens int
	for _, n := range m.TokensPerTopic() {
		totalTokens += n
	}
	if totalTokens != cs.Corpus.TotalTokens() {
		t.Fatalf("token totals %d, want %d", totalTokens, cs.Corpus.TotalTokens())
	}
	for _, f := range df {
		if f < 0 || f > cs.Corpus.NumDocs() {
			t.Fatalf("doc frequency %d out of range", f)
		}
	}
}

func TestLabelsAndSourceIndex(t *testing.T) {
	cs := caseStudyFixture()
	m, err := Fit(cs.Corpus, cs.Source, Options{
		NumFreeTopics: 2, LambdaMode: LambdaFixed, Lambda: 1, Iterations: 5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	labels := m.Labels()
	if labels[0] != "topic-0" || labels[1] != "topic-1" {
		t.Fatalf("free labels = %v", labels[:2])
	}
	if labels[2] != "School Supplies" || labels[3] != "Baseball" {
		t.Fatalf("source labels = %v", labels[2:])
	}
	if m.SourceIndex(0) != -1 || m.SourceIndex(2) != 0 || m.SourceIndex(3) != 1 {
		t.Fatal("SourceIndex mapping wrong")
	}
}

func TestLikelihoodTraceImproves(t *testing.T) {
	cs := caseStudyFixture()
	m, err := Fit(cs.Corpus, cs.Source, Options{
		LambdaMode: LambdaFixed, Lambda: 1, Iterations: 40, Seed: 8,
		TraceLikelihood: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	trace := m.LikelihoodTrace
	if len(trace) != 40 {
		t.Fatalf("trace length %d", len(trace))
	}
	// Prior-based initialization can start tiny corpora at the optimum
	// already; require only that the chain does not degrade beyond
	// round-off.
	if trace[len(trace)-1] < trace[0]-1e-9 {
		t.Fatalf("likelihood decreased: %v → %v", trace[0], trace[len(trace)-1])
	}
	for _, ll := range trace {
		if math.IsNaN(ll) || math.IsInf(ll, 0) {
			t.Fatal("non-finite likelihood")
		}
	}
}

func TestResultSnapshotIndependence(t *testing.T) {
	cs := caseStudyFixture()
	m, err := Fit(cs.Corpus, cs.Source, Options{
		LambdaMode: LambdaFixed, Lambda: 1, Iterations: 5, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res := m.Result()
	orig := res.Assignments[0][0]
	m.Run(10) // extend the chain; snapshot must not change
	if res.Assignments[0][0] != orig {
		t.Fatal("Result shares assignment storage with the live chain")
	}
	if res.NumTopics() != m.NumTopics() {
		t.Fatal("topic count mismatch")
	}
}

func TestReduceByDocumentFrequency(t *testing.T) {
	cs := caseStudyFixture()
	m, err := Fit(cs.Corpus, cs.Source, Options{
		NumFreeTopics: 1, LambdaMode: LambdaFixed, Lambda: 1,
		Iterations: 60, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res := m.Result()
	// Impossible threshold: all source topics dropped, free topics kept.
	red := res.ReduceByDocumentFrequency(10_000, 1)
	if len(red.Result.Phi) != res.NumFreeTopics {
		t.Fatalf("kept %d topics, want only the %d free topics", len(red.Result.Phi), res.NumFreeTopics)
	}
	for t2, n := range red.OldToNew {
		if res.SourceIndices[t2] >= 0 && n != -1 {
			t.Fatal("source topic survived an impossible threshold")
		}
	}
	// Trivial threshold keeps everything.
	red = res.ReduceByDocumentFrequency(1, 1)
	if len(red.Result.Phi) > res.NumTopics() {
		t.Fatal("reduction grew the topic set")
	}
	// θ rows stay normalized after reduction.
	for d, row := range red.Result.Theta {
		var s float64
		for _, p := range row {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("reduced θ[%d] sums to %v", d, s)
		}
	}
}

func TestHeldOutPerplexity(t *testing.T) {
	// Train on school+baseball text; a held-out doc of in-domain words must
	// be less perplexing than an out-of-domain doc.
	c := corpus.New()
	for i := 0; i < 20; i++ {
		c.AddText("k", "pencil ruler eraser pencil notebook paper pencil ruler", nil)
		c.AddText("b", "baseball umpire pitcher catcher inning baseball glove bat", nil)
	}
	school := knowledge.NewArticleFromText("School Supplies",
		"pencil pencil ruler ruler eraser notebook paper", c.Vocab, nil, true)
	ball := knowledge.NewArticleFromText("Baseball",
		"baseball baseball umpire pitcher catcher inning glove bat", c.Vocab, nil, true)
	// Intern the out-of-domain words up front so both test docs share the
	// training vocabulary.
	oov := corpus.NewWithVocab(c.Vocab)
	oov.AddText("astro", "quasar nebula pulsar galaxy quasar nebula pulsar galaxy", nil)

	src := knowledge.MustNewSource([]*knowledge.Article{school, ball})
	m, err := Fit(c, src, Options{
		LambdaMode: LambdaFixed, Lambda: 1, Alpha: 0.5, Iterations: 80, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	inDomain := corpus.NewWithVocab(c.Vocab)
	inDomain.AddText("t", "pencil ruler baseball umpire pencil eraser", nil)
	ppxIn, err := m.HeldOutPerplexity(inDomain, 40, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	ppxOut, err := m.HeldOutPerplexity(oov, 40, 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ppxIn <= 0 {
		t.Fatalf("perplexity %v must be positive", ppxIn)
	}
	if ppxIn >= ppxOut {
		t.Fatalf("in-domain perplexity %v should beat out-of-domain %v", ppxIn, ppxOut)
	}
	// Error paths.
	if _, err := m.HeldOutPerplexity(nil, 10, 5, 1); err == nil {
		t.Fatal("nil test corpus accepted")
	}
	foreign := corpus.New()
	foreign.AddText("x", "word", nil)
	if _, err := m.HeldOutPerplexity(foreign, 10, 5, 1); err == nil {
		t.Fatal("foreign-vocabulary corpus accepted")
	}
}

func TestDiscoveredSourceTopics(t *testing.T) {
	cs := caseStudyFixture()
	m, err := Fit(cs.Corpus, cs.Source, Options{
		LambdaMode: LambdaFixed, Lambda: 1, Iterations: 60, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res := m.Result()
	disc := res.DiscoveredSourceTopics(1, 1)
	if len(disc) == 0 {
		t.Fatal("no source topics discovered on a corpus generated from them")
	}
}

func TestModeStringer(t *testing.T) {
	if LambdaFixed.String() != "fixed" || LambdaIntegrated.String() != "integrated" {
		t.Fatal("LambdaMode strings wrong")
	}
	if SamplerSerial.String() != "serial" ||
		SamplerSimpleParallel.String() != "simple-parallel" ||
		SamplerPrefixSums.String() != "prefix-sums" {
		t.Fatal("SamplerKind strings wrong")
	}
	if LambdaMode(9).String() == "" || SamplerKind(9).String() == "" {
		t.Fatal("unknown enum values should still render")
	}
}
