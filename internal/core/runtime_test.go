package core

import (
	"fmt"
	"reflect"
	"testing"

	"sourcelda/internal/corpus"
	"sourcelda/internal/synth"
)

// appendChain builds a model over a per-chain shallow copy of the fixture
// corpus: AppendDocs grows the corpus it was built on, so chains that will
// append must not share one Docs slice.
func appendChain(t *testing.T, data *synth.MedlineData, opts Options) (*Model, *corpus.Corpus) {
	t.Helper()
	c := &corpus.Corpus{
		Docs:  append([]*corpus.Document(nil), data.Corpus.Docs...),
		Vocab: data.Corpus.Vocab,
	}
	m, err := NewModel(c, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, c
}

// streamedDocs fabricates a deterministic batch of in-vocabulary documents —
// stand-ins for documents fed to a served model.
func streamedDocs(V, n, salt int) []*corpus.Document {
	docs := make([]*corpus.Document, n)
	for i := range docs {
		words := make([]int, 11+5*i)
		for j := range words {
			words[j] = (salt + 7*i + 3*j) % V
		}
		docs[i] = &corpus.Document{Words: words, Name: fmt.Sprintf("fed-%d-%d", salt, i)}
	}
	return docs
}

// checkpointsEqual compares two checkpoints bit for bit, ignoring only the
// wall-clock iteration times.
func checkpointsEqual(t *testing.T, name string, got, want *Checkpoint) {
	t.Helper()
	if len(got.IterationTimes) != len(want.IterationTimes) {
		t.Fatalf("%s: iteration-time trace length %d, want %d",
			name, len(got.IterationTimes), len(want.IterationTimes))
	}
	g, w := *got, *want
	g.IterationTimes, w.IterationTimes = nil, nil
	if !reflect.DeepEqual(&g, &w) {
		t.Fatalf("%s: chain state differs", name)
	}
}

var appendVariants = []struct {
	name string
	set  func(*Options)
}{
	{"sequential", func(o *Options) {}},
	{"sequential-sparse", func(o *Options) { o.Sampler = SamplerSparse }},
	{"sharded-one-shard", func(o *Options) { o.SweepMode = SweepShardedDocs; o.Shards = 1 }},
	{"sharded-multi", func(o *Options) { o.SweepMode = SweepShardedDocs; o.Shards = 4; o.Threads = 4 }},
	{"sharded-multi-sparse", func(o *Options) {
		o.SweepMode = SweepShardedDocs
		o.Shards = 4
		o.Threads = 4
		o.Sampler = SamplerSparse
	}},
}

func appendBaseOptions() Options {
	return Options{
		NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, UseSmoothing: true,
		PruneDeadTopics: true, PruneAfter: 8, PruneEvery: 5,
		Iterations: 24, Seed: 4242,
		TraceLikelihood: true,
	}
}

// TestAppendDocsBatchEqualsOneAtATime is the warm-chain determinism
// contract: feeding N documents one call at a time must leave the chain —
// count slabs, assignments, RNG stream positions, options digest — bit
// identical to feeding them as one batch, in every sweep mode and sampler,
// both immediately after the append and after further full sweeps.
func TestAppendDocsBatchEqualsOneAtATime(t *testing.T) {
	data := sweepFixture(t)
	extra := streamedDocs(data.Corpus.VocabSize(), 4, 17)
	for _, v := range appendVariants {
		opts := appendBaseOptions()
		v.set(&opts)

		batch, _ := appendChain(t, data, opts)
		batch.Run(10)
		if err := batch.AppendDocs(extra, 2); err != nil {
			t.Fatalf("%s: batch append: %v", v.name, err)
		}

		oneByOne, _ := appendChain(t, data, opts)
		oneByOne.Run(10)
		for _, doc := range extra {
			if err := oneByOne.AppendDocs([]*corpus.Document{doc}, 2); err != nil {
				t.Fatalf("%s: single append: %v", v.name, err)
			}
		}

		if batch.NumDocs() != data.Corpus.NumDocs()+len(extra) {
			t.Fatalf("%s: chain covers %d docs, want %d", v.name, batch.NumDocs(), data.Corpus.NumDocs()+len(extra))
		}
		if !reflect.DeepEqual(batch.counts, oneByOne.counts) {
			t.Fatalf("%s: count slabs differ between batch and one-at-a-time appends", v.name)
		}
		ckb, cko := batch.Checkpoint(), oneByOne.Checkpoint()
		checkpointsEqual(t, v.name+" after append", cko, ckb)
		if want := opts.ChainDigest(); ckb.OptionsDigest != want {
			t.Fatalf("%s: appended chain digest %#x broke lineage %#x", v.name, ckb.OptionsDigest, want)
		}

		// The appended documents must be full chain citizens: further sweeps
		// over the grown corpus stay deterministic too.
		batch.Run(4)
		oneByOne.Run(4)
		checkpointsEqual(t, v.name+" after post-append sweeps", oneByOne.Checkpoint(), batch.Checkpoint())
		batch.Close()
		oneByOne.Close()
	}
}

// TestAppendCheckpointResume pins the round-trip contract: append →
// Checkpoint → Restore → continue (more sweeps and more appends) must be bit
// identical to the chain that was never interrupted, in both sweep modes and
// with the sparse sampler.
func TestAppendCheckpointResume(t *testing.T) {
	data := sweepFixture(t)
	V := data.Corpus.VocabSize()
	first := streamedDocs(V, 3, 29)
	second := streamedDocs(V, 2, 131)
	for _, v := range appendVariants {
		opts := appendBaseOptions()
		v.set(&opts)

		cont, _ := appendChain(t, data, opts)
		cont.Run(10)
		if err := cont.AppendDocs(first, 2); err != nil {
			t.Fatalf("%s: append: %v", v.name, err)
		}
		cont.Run(3)
		if err := cont.AppendDocs(second, 1); err != nil {
			t.Fatalf("%s: append: %v", v.name, err)
		}
		cont.Run(3)
		want := cont.Checkpoint()
		cont.Close()

		interrupted, grown := appendChain(t, data, opts)
		interrupted.Run(10)
		if err := interrupted.AppendDocs(first, 2); err != nil {
			t.Fatalf("%s: append: %v", v.name, err)
		}
		ck := interrupted.Checkpoint()
		interrupted.Close()

		// The corpus the interrupted chain grew is exactly what Restore needs.
		resumed, err := Restore(grown, data.Source, opts, ck)
		if err != nil {
			t.Fatalf("%s: restore after append: %v", v.name, err)
		}
		resumed.Run(3)
		if err := resumed.AppendDocs(second, 1); err != nil {
			t.Fatalf("%s: append after restore: %v", v.name, err)
		}
		resumed.Run(3)
		checkpointsEqual(t, v.name, resumed.Checkpoint(), want)
		resumed.Close()
	}
}

// TestAppendDocsRejectsInvalid covers the argument contract: negative
// fold-in counts, nil documents, empty documents and out-of-vocabulary word
// ids are all rejected without mutating the chain.
func TestAppendDocsRejectsInvalid(t *testing.T) {
	data := sweepFixture(t)
	opts := appendBaseOptions()
	m, _ := appendChain(t, data, opts)
	defer m.Close()
	m.Run(2)
	before := m.Checkpoint()

	good := &corpus.Document{Words: []int{0, 1, 2}}
	cases := []struct {
		name string
		docs []*corpus.Document
		fold int
	}{
		{"negative fold-in", []*corpus.Document{good}, -1},
		{"nil doc", []*corpus.Document{nil}, 1},
		{"empty doc", []*corpus.Document{{Words: nil}}, 1},
		{"oov word", []*corpus.Document{{Words: []int{data.Corpus.VocabSize()}}}, 1},
		{"negative word", []*corpus.Document{{Words: []int{-1}}}, 1},
	}
	for _, tc := range cases {
		if err := m.AppendDocs(tc.docs, tc.fold); err == nil {
			t.Fatalf("%s: AppendDocs accepted invalid input", tc.name)
		}
	}
	checkpointsEqual(t, "after rejected appends", m.Checkpoint(), before)
}
