package core

import (
	"testing"

	"sourcelda/internal/synth"
)

// sweepFixture builds a small synthetic corpus with enough documents to
// shard meaningfully.
func sweepFixture(t testing.TB) *synth.MedlineData {
	t.Helper()
	data, err := synth.MedlineLike(synth.MedlineOptions{
		NumTopics:  8,
		LiveTopics: 5,
		NumDocs:    24,
		AvgDocLen:  30,
		Alpha:      0.2,
		Mu:         0.7,
		Sigma:      0.3,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func assignmentsEqual(t *testing.T, name string, got, want [][]int) {
	t.Helper()
	for d := range want {
		for i := range want[d] {
			if got[d][i] != want[d][i] {
				t.Fatalf("%s diverged from serial at doc %d token %d: got %d want %d",
					name, d, i, got[d][i], want[d][i])
			}
		}
	}
}

// TestSweepModeEquivalence pins the exactness contract across every
// sampling configuration: with a fixed seed, the serial kernel, Algorithm 2
// (prefix sums), Algorithm 3 (simple parallel), and the sharded sweep mode
// restricted to one shard must all produce the identical chain.
func TestSweepModeEquivalence(t *testing.T) {
	data := sweepFixture(t)
	base := Options{
		NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, UseSmoothing: true,
		PruneDeadTopics: true, PruneAfter: 8, PruneEvery: 5,
		Iterations: 25, Seed: 4242,
	}
	ref, err := Fit(data.Corpus, data.Source, base)
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()

	variants := []struct {
		name string
		set  func(*Options)
	}{
		{"prefix-sums", func(o *Options) { o.Sampler = SamplerPrefixSums; o.Threads = 3 }},
		{"simple-parallel", func(o *Options) { o.Sampler = SamplerSimpleParallel; o.Threads = 3 }},
		{"sharded-one-shard", func(o *Options) { o.SweepMode = SweepShardedDocs; o.Shards = 1 }},
		{"sharded-one-shard-threads", func(o *Options) {
			// Extra worker threads must not change a single-shard chain.
			o.SweepMode = SweepShardedDocs
			o.Shards = 1
			o.Threads = 4
		}},
	}
	for _, v := range variants {
		opts := base
		v.set(&opts)
		m, err := Fit(data.Corpus, data.Source, opts)
		if err != nil {
			t.Fatal(err)
		}
		assignmentsEqual(t, v.name, m.Assignments(), ref.Assignments())
		m.Close()
	}
}

// TestShardedSweepDeterministic checks the multi-shard chain is a pure
// function of (seed, shard count): rerunning reproduces it bit for bit even
// though shards race on wall-clock, because each shard owns a fixed
// document range and RNG stream.
func TestShardedSweepDeterministic(t *testing.T) {
	data := sweepFixture(t)
	opts := Options{
		NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaIntegrated, Mu: 0.7, Sigma: 0.3,
		QuadraturePoints: 5, Iterations: 15, Seed: 77,
		SweepMode: SweepShardedDocs, Shards: 4, Threads: 4,
	}
	m1, err := Fit(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m1.Close()
	m2, err := Fit(data.Corpus, data.Source, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	assignmentsEqual(t, "second run", m2.Assignments(), m1.Assignments())
}

// TestShardedSweepCountsConsistent verifies the shard-barrier
// reconciliation: after multi-shard sweeps the global count store must
// agree exactly with the per-token assignments, and distributions must stay
// normalized.
func TestShardedSweepCountsConsistent(t *testing.T) {
	data := sweepFixture(t)
	m, err := Fit(data.Corpus, data.Source, Options{
		NumFreeTopics: 3, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaFixed, Lambda: 0.8,
		Iterations: 12, Seed: 9,
		SweepMode: SweepShardedDocs, Shards: 5, Threads: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	wantWord := make([]int32, m.V*m.T)
	wantTotal := make([]int32, m.T)
	for d, doc := range data.Corpus.Docs {
		for i, w := range doc.Words {
			k := m.z[d][i]
			wantWord[w*m.T+k]++
			wantTotal[k]++
			if k < 0 || k >= m.T {
				t.Fatalf("assignment out of range: %d", k)
			}
		}
	}
	for i, n := range wantWord {
		if m.counts.wordTopic[i] != n {
			t.Fatalf("wordTopic[%d] = %d, want %d", i, m.counts.wordTopic[i], n)
		}
	}
	for t2, n := range wantTotal {
		if m.counts.topicTotal[t2] != n {
			t.Fatalf("topicTotal[%d] = %d, want %d", t2, m.counts.topicTotal[t2], n)
		}
	}

	var tokens int
	for _, n := range m.TokensPerTopic() {
		tokens += n
	}
	if tokens != data.Corpus.TotalTokens() {
		t.Fatalf("token total %d, want %d", tokens, data.Corpus.TotalTokens())
	}
	for k, row := range m.Phi() {
		var s float64
		for _, p := range row {
			s += p
		}
		if s < 0.999999 || s > 1.000001 {
			t.Fatalf("φ[%d] sums to %v after sharded sweeps", k, s)
		}
	}
}

// TestShardedSweepImprovesLikelihood sanity-checks that the approximate
// multi-shard chain still optimizes the collapsed joint likelihood on a
// corpus drawn from the source topics.
func TestShardedSweepImprovesLikelihood(t *testing.T) {
	data := sweepFixture(t)
	m, err := Fit(data.Corpus, data.Source, Options{
		NumFreeTopics: 2, Alpha: 0.2, Beta: 0.01,
		LambdaMode: LambdaFixed, Lambda: 1,
		Iterations: 30, Seed: 5,
		SweepMode: SweepShardedDocs, Shards: 4, Threads: 2,
		TraceLikelihood: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	trace := m.LikelihoodTrace
	if len(trace) != 30 {
		t.Fatalf("trace length %d", len(trace))
	}
	if last, first := trace[len(trace)-1], trace[0]; last < first-1e-9 {
		t.Fatalf("sharded chain degraded the likelihood: %v → %v", first, last)
	}
}

// TestShardsCappedAtDocuments: more shards than documents must degrade
// gracefully to one shard per document.
func TestShardsCappedAtDocuments(t *testing.T) {
	data := sweepFixture(t)
	m, err := Fit(data.Corpus, data.Source, Options{
		LambdaMode: LambdaFixed, Lambda: 1, Iterations: 3, Seed: 2,
		SweepMode: SweepShardedDocs, Shards: 10 * data.Corpus.NumDocs(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if len(m.shards) != data.Corpus.NumDocs() {
		t.Fatalf("%d shards for %d documents", len(m.shards), data.Corpus.NumDocs())
	}
	var tokens int
	for _, n := range m.TokensPerTopic() {
		tokens += n
	}
	if tokens != data.Corpus.TotalTokens() {
		t.Fatalf("token total %d, want %d", tokens, data.Corpus.TotalTokens())
	}
}

func TestSweepModeStringer(t *testing.T) {
	if SweepSequential.String() != "sequential" || SweepShardedDocs.String() != "sharded-docs" {
		t.Fatal("SweepMode strings wrong")
	}
	if SweepMode(9).String() == "" {
		t.Fatal("unknown enum value should still render")
	}
}
