// Package core implements Source-LDA, the paper's primary contribution: a
// semi-supervised extension of Latent Dirichlet Allocation whose topic-word
// Dirichlet priors are set from labeled knowledge-source articles
// (PAPER.md Definitions 1–3), so that inferred topics stay consistent with
// prior knowledge, carry labels, and may still deviate from — or be absent
// from — the knowledge source.
//
// # Model stages (PAPER.md §III)
//
//   - Bijective mapping (§III-A): every topic is a knowledge-source topic,
//     φ_k ~ Dir(δ_k) with δ the source hyperparameters (NumFreeTopics = 0,
//     LambdaFixed).
//   - Known mixture (§III-B): K free topics with symmetric β priors mixed
//     with source topics (NumFreeTopics = K, LambdaFixed).
//   - Full Source-LDA (§III-C): per-topic λ ~ N(µ, σ) governs divergence
//     from the source distribution via δ^g(λ); λ is integrated out
//     numerically inside the collapsed Gibbs sampler (LambdaIntegrated),
//     with the g linearization of §III-C2 and superset topic reduction of
//     §III-C3.
//
// # Engine layout
//
// The chain's sufficient statistics live in flat int32 slabs (countStore,
// counts.go) laid out topic-fastest, and the knowledge source's powered
// prior values δ^{e_p} in a CSR-style quadrature store (deltaStore,
// deltastore.go). The per-token collapsed conditional (Eq. 2/3) is
// evaluated by gibbsView (sweep.go) with cached reciprocal denominators, so
// the hot loop does direct slice indexing — no maps, closures, or division.
//
// Sampling can run with the serial collapsed Gibbs kernel (Algorithm 1),
// either of the paper's two exactness-preserving parallel kernels
// (Algorithms 2 and 3, §III-C4) from internal/parallel, or the SparseLDA-
// style bucket-decomposed kernel (SamplerSparse, sparse.go), whose per-token
// cost is proportional to the token's topic sparsity instead of the topic
// count — all within the exact sequential sweep mode — or with the
// document-sharded data-parallel sweep mode (SweepShardedDocs, AD-LDA
// style), which trades within-sweep count freshness for corpus-scale
// throughput across cores. The sparse kernel composes with both sweep
// modes.
//
// # Determinism contract
//
// Every random draw flows through a deterministic internal/rng stream:
// stream rng.NewStream(seed, 0) for the sequential mode (and prune-time
// resampling), stream i for document shard i of the sharded mode. Shard i
// always owns the same document range and the same stream, so a fitted
// chain is a pure function of (corpus, source, chain options, seed) —
// never of thread count or scheduling. Options.chainDigest fingerprints
// exactly the options that participate in this function.
//
// # Checkpoint and resume
//
// Checkpoint (checkpoint.go) snapshots the chain's mutable state at a sweep
// boundary — per-token assignments, λ posterior weights, pruning flags,
// sweep counter, traces, and each RNG stream's position (rng.Pos) — and
// Restore rebuilds a live Model from it, fast-forwarding fresh streams with
// rng.Skip. Because the count slabs are a pure function of the assignments
// and the cached denominators are a pure function of the counts and λ
// weights, a restored chain continues bit-for-bit identically to an
// uninterrupted run, in both sweep modes. RunWithHook exposes the sweep
// boundary to callers (progress reporting, periodic checkpointing, early
// stopping via ErrStopTraining); serialization of checkpoints lives in
// internal/persist.
package core
