package core

import (
	"errors"
	"math"
	"strconv"
	"time"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/parallel"
	"sourcelda/internal/rng"
)

// Model is a fitted (or in-progress) Source-LDA chain: a ChainRuntime (the
// count-slab and sampler state every chain mutation drives — see runtime.go)
// plus the training-orchestration API (Fit, Run, RunWithHook, Result). All
// chain-state fields and methods are promoted from the embedded runtime.
type Model struct {
	ChainRuntime
}

// Runtime exposes the model's chain runtime — the mutable chain state both
// training sweeps and the incremental AppendDocs path drive. The returned
// pointer aliases the model; it is not a copy.
func (m *Model) Runtime() *ChainRuntime { return &m.ChainRuntime }

// Fit runs Source-LDA collapsed Gibbs sampling over corpus c with knowledge
// source src and returns the fitted model. The model owns a worker pool when
// a parallel sampler or sweep mode is selected; Close releases it.
func Fit(c *corpus.Corpus, src *knowledge.Source, opts Options) (*Model, error) {
	m, err := NewModel(c, src, opts)
	if err != nil {
		return nil, err
	}
	m.Run(m.opts.Iterations)
	return m, nil
}

// NewModel validates options, precomputes the per-topic quadrature state and
// returns an initialized (randomly-assigned) chain that has not yet swept.
func NewModel(c *corpus.Corpus, src *knowledge.Source, opts Options) (*Model, error) {
	m, err := newUninitializedModel(c, src, opts)
	if err != nil {
		return nil, err
	}
	m.initAssignments()
	m.buildViews()
	return m, nil
}

// newUninitializedModel validates options and allocates a chain whose count
// slabs and assignments are still zero. Callers must populate assignments
// (initAssignments for a fresh chain, the checkpoint restore path for a
// resumed one) and then call buildViews, in that order: the views cache
// per-topic denominators computed from the counts at construction time.
func newUninitializedModel(c *corpus.Corpus, src *knowledge.Source, opts Options) (*Model, error) {
	opts.applyDefaults()
	if err := opts.validate(c, src); err != nil {
		return nil, err
	}
	m := &Model{ChainRuntime: ChainRuntime{
		opts: opts,
		c:    c,
		src:  src,
		r:    rng.New(opts.Seed),
		K:    opts.NumFreeTopics,
		S:    src.Len(),
		V:    c.VocabSize(),
		D:    c.NumDocs(),
	}}
	m.T = m.K + m.S
	m.disabled = make([]bool, m.T)
	m.delta = newDeltaStore(src, m.V, &m.opts)
	m.counts = newCountStore(m.V, m.D, m.T)
	m.z = make([][]int, m.D)
	for d := range m.z {
		m.z[d] = make([]int, len(c.Docs[d].Words))
	}
	return m, nil
}

// buildViews constructs the worker pool, sampling kernel, deterministic RNG
// streams, and the sequential/sharded sampling views. It must run after the
// count slabs hold the chain's current assignments — the views cache
// reciprocal denominators derived from them.
func (m *ChainRuntime) buildViews() {
	opts := &m.opts
	useSparse := opts.Sampler == SamplerSparse
	m.pool = parallel.NewPool(opts.Threads)
	m.seq = newGibbsView(m, m.counts.wordTopic, m.counts.topicTotal, useSparse)
	switch opts.Sampler {
	case SamplerSimpleParallel:
		m.sampler = parallel.NewSimpleParallel(m.pool)
	case SamplerPrefixSums:
		m.sampler = parallel.NewPrefixSums(m.pool)
	case SamplerSparse:
		m.sampler = parallel.NewSparseDirect(m.seq.sparse.draw)
	default:
		m.sampler = parallel.NewSerial()
	}

	nStreams := opts.numStreams(m.D)
	m.streams = make([]*rng.RNG, nStreams)
	for i := range m.streams {
		m.streams[i] = rng.NewStream(opts.Seed, int64(i))
	}
	if opts.SweepMode == SweepShardedDocs {
		m.buildShards(nStreams)
	}
}

// buildShards (re)constructs the per-shard working states of SweepShardedDocs
// over the current document count. It runs at view construction and again
// after AppendDocs grows the corpus (rebalanceShards), so shard document
// ranges always partition the live corpus.
func (m *ChainRuntime) buildShards(nStreams int) {
	useSparse := m.opts.Sampler == SamplerSparse
	m.shards = make([]*shardView, nStreams)
	for i := range m.shards {
		// Balanced split: every shard owns at least one document (the
		// shard count is capped at D in numStreams), so no shard pays
		// the per-sweep slab copy without sampling anything.
		lo, hi := i*m.D/nStreams, (i+1)*m.D/nStreams
		view := m.seq
		if nStreams > 1 {
			view = newGibbsView(m, make([]int32, m.V*m.T), make([]int32, m.T), useSparse)
		}
		// Shards scan serially within themselves; the sparse kernel is
		// the one per-token alternative, bound to the shard's own view.
		var sampler parallel.TopicSampler = parallel.NewSerial()
		if useSparse {
			sampler = parallel.NewSparseDirect(view.sparse.draw)
		}
		// A single shard aliases the sequential view over the global
		// slabs, so the "exact" sharded configuration runs at
		// sequential speed with no per-sweep copy or reconciliation.
		m.shards[i] = &shardView{
			view:    view,
			sampler: sampler,
			r:       m.streams[i],
			lo:      lo,
			hi:      hi,
		}
	}
}

// Close releases the worker pool of a parallel sampler. It is safe to call
// on serially-sampled models and more than once.
func (m *ChainRuntime) Close() {
	if m.pool != nil {
		m.pool.Close()
	}
}

// quadratureNodes returns the λ nodes and normalized N(µ,σ) weights over
// [0, 1]. σ = 0 degenerates to a single node at clamp(µ, 0, 1).
func quadratureNodes(mu, sigma float64, a int) (nodes, weights []float64) {
	if sigma == 0 {
		node := mu
		if node < 0 {
			node = 0
		}
		if node > 1 {
			node = 1
		}
		return []float64{node}, []float64{1}
	}
	nodes = make([]float64, a)
	weights = make([]float64, a)
	var total float64
	for p := 0; p < a; p++ {
		x := (float64(p) + 0.5) / float64(a)
		nodes[p] = x
		d := (x - mu) / sigma
		w := math.Exp(-0.5 * d * d)
		weights[p] = w
		total += w
	}
	if total <= 0 {
		for p := range weights {
			weights[p] = 1 / float64(a)
		}
		return nodes, weights
	}
	for p := range weights {
		weights[p] /= total
	}
	return nodes, weights
}

// initAssignments draws each token's initial topic from the model priors
// (free topics uniform at β-level, source topics at their δ-based word
// probability). Unlike uniform-random initialization this starts every
// source topic at its knowledge-source identity, which the collapsed chain
// then refines — without it, the early count matrices are pure noise and
// the λ posterior (and slow-mixing chains generally) can lock onto a bad
// mode.
func (m *ChainRuntime) initAssignments() {
	probs := make([]float64, m.T)
	beta := m.opts.Beta
	vBeta := float64(m.V) * beta
	freeProb := beta / vBeta // uniform over V for an empty free topic
	ds := m.delta
	for d, doc := range m.c.Docs {
		for i, w := range doc.Words {
			for t := 0; t < m.K; t++ {
				probs[t] = freeProb
			}
			for s := 0; s < m.S; s++ {
				probs[m.K+s] = ds.wordProb(s, ds.values(s, w), 0, 0)
			}
			k := m.r.Categorical(probs)
			m.z[d][i] = k
			m.counts.add(d, w, k)
		}
	}
}

// Run performs the given number of collapsed Gibbs sweeps (Algorithm 1's
// outer loop); it can be called repeatedly to extend a chain.
func (m *Model) Run(iterations int) {
	_ = m.RunWithHook(iterations, nil)
}

// SweepHook observes a chain after each completed sweep. sweep is the global
// 1-based sweep index (it keeps counting across Run calls and checkpoint
// resumes). The hook may inspect the model — and capture a Checkpoint — but
// must not mutate it. Returning a non-nil error stops the run before the
// next sweep; return ErrStopTraining for a clean early stop.
type SweepHook func(sweep int, m *Model) error

// ErrStopTraining is the sentinel a SweepHook returns to stop a run early
// without signaling failure: RunWithHook returns it verbatim, and callers
// that support early stopping treat it as a successful (partial) fit.
var ErrStopTraining = errors.New("core: training stopped by sweep hook")

// RunWithHook performs up to iterations collapsed Gibbs sweeps, invoking
// hook after each one. It returns nil after completing all sweeps, or the
// hook's error as soon as one is non-nil. The chain remains valid and
// resumable either way: a checkpoint captured by the hook, or taken from
// the model after RunWithHook returns, restores to exactly this state.
func (m *Model) RunWithHook(iterations int, hook SweepHook) error {
	for iter := 0; iter < iterations; iter++ {
		start := time.Now()
		m.sweep()
		m.IterationTimes = append(m.IterationTimes, time.Since(start))
		if m.opts.TraceLikelihood {
			m.LikelihoodTrace = append(m.LikelihoodTrace, m.LogLikelihood())
		}
		if m.opts.OnIteration != nil {
			m.opts.OnIteration(iter, m)
		}
		if hook != nil {
			if err := hook(m.sweepCount, m); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sweeps returns the number of sweeps the chain has completed, including
// sweeps restored from a checkpoint.
func (m *ChainRuntime) Sweeps() int { return m.sweepCount }

// updateLambdaPosteriors reweights each source topic's quadrature nodes by
// the posterior of its latent λ_t given the current counts: for node p with
// prior mass w_p and powered prior δ^{e_p},
//
//	log post_p ∝ log w_p + log Γ(Δ_p) − log Γ(Δ_p + n_t)
//	             + Σ_{w: n_wt>0} [log Γ(n_wt + δ_p,w) − log Γ(δ_p,w)]
//
// (the collapsed Dirichlet-multinomial likelihood of topic t's tokens under
// exponent e_p). Topics whose realized counts match the source keep weight
// on high-λ nodes; deviating topics shift weight to relaxed nodes.
func (m *ChainRuntime) updateLambdaPosteriors() {
	ds := m.delta
	P := ds.P
	if P < 2 {
		return
	}
	logPost := make([]float64, P)
	for s := 0; s < m.S; s++ {
		t := m.K + s
		base := s * P
		nt := float64(m.counts.topicTotal[t])
		for p := 0; p < P; p++ {
			lgTot, _ := math.Lgamma(ds.totals[base+p])
			lgDen, _ := math.Lgamma(ds.totals[base+p] + nt)
			logPost[p] = ds.priorLogW[p] + lgTot - lgDen
		}
		for w := 0; w < m.V; w++ {
			n := m.counts.wordTopic[w*m.T+t]
			if n == 0 {
				continue
			}
			vals := ds.values(s, w)
			for p := 0; p < P; p++ {
				lgN, _ := math.Lgamma(float64(n) + vals[p])
				lgP, _ := math.Lgamma(vals[p])
				logPost[p] += lgN - lgP
			}
		}
		// Softmax back to normalized weights.
		weights := ds.topicWeights(s)
		max := logPost[0]
		for _, lp := range logPost[1:] {
			if lp > max {
				max = lp
			}
		}
		var total float64
		for p, lp := range logPost {
			weights[p] = math.Exp(lp - max)
			total += weights[p]
		}
		if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
			for p := range weights {
				weights[p] = math.Exp(ds.priorLogW[p])
			}
			continue
		}
		for p := range weights {
			weights[p] /= total
		}
	}
}

// LambdaPosteriorMeans returns, per source topic, the posterior-weighted
// mean of the λ quadrature nodes — a diagnostic for how much each topic is
// estimated to deviate from its knowledge source (1 = conforming).
func (m *ChainRuntime) LambdaPosteriorMeans() []float64 {
	ds := m.delta
	out := make([]float64, m.S)
	for s := 0; s < m.S; s++ {
		var mean float64
		for p, w := range ds.topicWeights(s) {
			mean += w * ds.nodes[p]
		}
		out[s] = mean
	}
	return out
}

// sweep resamples every token once (Algorithm 1's SAMPLE over the corpus).
func (m *ChainRuntime) sweep() {
	o := &m.opts
	m.sweepCount++
	if m.seq.sparse != nil {
		// Pin the accumulated bucket totals to their canonical recomputation
		// at every sweep boundary, so a chain restored from a checkpoint cut
		// here (which rebuilds the totals fresh) continues bit-for-bit with
		// the uninterrupted run. O(K + S) — free next to the sweep.
		m.seq.sparse.resyncTotals()
	}
	if o.LambdaMode == LambdaIntegrated && !o.FreezeLambdaWeights && m.sweepCount > o.lambdaBurnIn() {
		m.updateLambdaPosteriors()
		// The λ weights feed the cached wInv denominators of the sequential
		// view; shard views rebuild their own at the next sweep barrier.
		m.seq.rebuildDenoms()
	}
	if o.PruneDeadTopics && m.sweepCount >= o.PruneAfter &&
		(m.sweepCount-o.PruneAfter)%o.PruneEvery == 0 {
		m.pruneDeadTopics()
	}
	if o.SweepMode == SweepShardedDocs {
		m.sweepSharded()
		return
	}
	m.sweepSequential()
}

// pruneDeadTopics disables source topics whose document frequency (counting
// documents with at least PruneMinTokens assigned tokens) falls below
// PruneMinDocs and resamples their tokens over the surviving topics — the
// in-inference elimination step of §III-C3. At least one topic always
// survives.
func (m *ChainRuntime) pruneDeadTopics() {
	o := &m.opts
	df := m.TopicDocumentFrequencies(o.PruneMinTokens)
	var newly []int
	enabled := 0
	for t := 0; t < m.T; t++ {
		if !m.disabled[t] {
			enabled++
		}
	}
	for s := 0; s < m.S; s++ {
		t := m.K + s
		if m.disabled[t] || df[t] >= o.PruneMinDocs {
			continue
		}
		if enabled <= 1 {
			break
		}
		m.disabled[t] = true
		enabled--
		newly = append(newly, t)
	}
	if len(newly) == 0 {
		return
	}
	dead := make([]bool, m.T)
	for _, t := range newly {
		dead[t] = true
		m.seq.refreshTopic(t) // zero the cached denominators
	}
	v := m.seq
	if v.sparse != nil && v.sparse.listsStale {
		// Multi-shard sweeps leave this view's nonzero lists stale at the
		// barrier; resampling draws through them, so refresh lazily here —
		// the one consumer — instead of paying the O(V·T) rescan every sweep.
		v.sparse.rebuildLists()
	}
	u := m.streams[0]
	for d := range m.c.Docs {
		v.setDoc(m.counts.docRow(d))
		zd := m.z[d]
		for i, w := range m.c.Docs[d].Words {
			if !dead[zd[i]] {
				continue
			}
			v.resample(zd, i, w, m.sampler, u)
		}
	}
}

// DisabledTopics returns a copy of the per-topic elimination flags.
func (m *ChainRuntime) DisabledTopics() []bool {
	out := make([]bool, m.T)
	copy(out, m.disabled)
	return out
}

// NumTopics returns T = K + S.
func (m *ChainRuntime) NumTopics() int { return m.T }

// NumFreeTopics returns K.
func (m *ChainRuntime) NumFreeTopics() int { return m.K }

// NumSourceTopics returns S.
func (m *ChainRuntime) NumSourceTopics() int { return m.S }

// SourceIndex maps a model topic index t in [K, T) to its knowledge-source
// article index; it returns -1 for free topics.
func (m *ChainRuntime) SourceIndex(t int) int {
	if t < m.K {
		return -1
	}
	return t - m.K
}

// Phi returns topic-word distributions: the symmetric-β estimate for free
// topics and the λ-quadrature estimate of Eq. 4 for source topics.
func (m *ChainRuntime) Phi() [][]float64 {
	beta := m.opts.Beta
	vBeta := float64(m.V) * beta
	cs := m.counts
	phi := make([][]float64, m.T)
	for t := 0; t < m.K; t++ {
		row := make([]float64, m.V)
		den := float64(cs.topicTotal[t]) + vBeta
		for w := 0; w < m.V; w++ {
			row[w] = (float64(cs.wordTopic[w*m.T+t]) + beta) / den
		}
		phi[t] = row
	}
	ds := m.delta
	for s := 0; s < m.S; s++ {
		t := m.K + s
		row := make([]float64, m.V)
		nsum := float64(cs.topicTotal[t])
		for w := 0; w < m.V; w++ {
			row[w] = ds.wordProb(s, ds.values(s, w), float64(cs.wordTopic[w*m.T+t]), nsum)
		}
		// The quadrature mixture of normalized ratios is normalized up to
		// quadrature error; renormalize exactly.
		var total float64
		for _, p := range row {
			total += p
		}
		if total > 0 {
			inv := 1 / total
			for w := range row {
				row[w] *= inv
			}
		}
		phi[t] = row
	}
	return phi
}

// Theta returns document-topic distributions per Eq. 1 with K := T topics.
func (m *ChainRuntime) Theta() [][]float64 {
	alpha := m.opts.Alpha
	tAlpha := float64(m.T) * alpha
	theta := make([][]float64, m.D)
	for d := range theta {
		row := make([]float64, m.T)
		den := float64(m.counts.docTotal[d]) + tAlpha
		docRow := m.counts.docRow(d)
		for t := 0; t < m.T; t++ {
			row[t] = (float64(docRow[t]) + alpha) / den
		}
		theta[d] = row
	}
	return theta
}

// Assignments returns live per-token topic assignments ([doc][token]); do
// not mutate.
func (m *ChainRuntime) Assignments() [][]int { return m.z }

// Labels returns the T topic labels: "topic-<i>" for free topics, the
// knowledge-source label for source topics.
func (m *ChainRuntime) Labels() []string {
	labels := make([]string, m.T)
	for t := 0; t < m.K; t++ {
		labels[t] = freeTopicLabel(t)
	}
	for s := 0; s < m.S; s++ {
		labels[m.K+s] = m.src.Label(s)
	}
	return labels
}

// TopicDocumentFrequencies returns, per topic, the number of documents with
// at least minTokens tokens assigned to that topic — the statistic behind
// superset topic reduction (§III-C3).
func (m *ChainRuntime) TopicDocumentFrequencies(minTokens int) []int {
	if minTokens < 1 {
		minTokens = 1
	}
	min32 := int32(minTokens)
	df := make([]int, m.T)
	for d := 0; d < m.D; d++ {
		for t, n := range m.counts.docRow(d) {
			if n >= min32 {
				df[t]++
			}
		}
	}
	return df
}

// TokensPerTopic returns a copy of the per-topic token totals.
func (m *ChainRuntime) TokensPerTopic() []int {
	out := make([]int, m.T)
	for t, n := range m.counts.topicTotal {
		out[t] = int(n)
	}
	return out
}

// LogLikelihood returns the collapsed joint log P(w|z). Free topics use the
// Griffiths–Steyvers form with symmetric β; source topics use their δ^e
// prior evaluated at the quadrature's weighted-mean exponent (fixed mode:
// the fixed exponent). The trace is used for convergence monitoring (Fig. 6).
func (m *ChainRuntime) LogLikelihood() float64 {
	beta := m.opts.Beta
	vBeta := float64(m.V) * beta
	lgBeta, _ := math.Lgamma(beta)
	lgVBeta, _ := math.Lgamma(vBeta)
	cs := m.counts
	var ll float64
	for t := 0; t < m.K; t++ {
		ll += lgVBeta - float64(m.V)*lgBeta
		for w := 0; w < m.V; w++ {
			if n := cs.wordTopic[w*m.T+t]; n > 0 {
				lg, _ := math.Lgamma(float64(n) + beta)
				ll += lg - lgBeta
			}
		}
		lg, _ := math.Lgamma(float64(cs.topicTotal[t]) + vBeta)
		ll -= lg - lgVBeta
	}
	// For a topic with prior vector δ the collapsed term is
	//   log Γ(Σδ) − log Γ(n_t + Σδ) + Σ_{w: n_w>0} [log Γ(n_w+δ_w) − log Γ(δ_w)]
	// (words with n_w = 0 contribute log Γ(δ_w) to both prior and posterior
	// products and cancel). Source topics evaluate δ at the quadrature's
	// weighted-mean exponent (fixed mode: the fixed exponent).
	ds := m.delta
	for s := 0; s < m.S; s++ {
		t := m.K + s
		var e float64
		for p, wgt := range ds.topicWeights(s) {
			e += wgt * ds.exponents[s*ds.P+p]
		}
		pd := ds.hyper[s].Pow(e)
		lgTotal, _ := math.Lgamma(pd.Total)
		lgDen, _ := math.Lgamma(pd.Total + float64(cs.topicTotal[t]))
		ll += lgTotal - lgDen
		for w := 0; w < m.V; w++ {
			if n := cs.wordTopic[w*m.T+t]; n > 0 {
				dw := pd.Value(w)
				lgN, _ := math.Lgamma(float64(n) + dw)
				lgP, _ := math.Lgamma(dw)
				ll += lgN - lgP
			}
		}
	}
	return ll
}

func freeTopicLabel(t int) string { return "topic-" + strconv.Itoa(t) }
