package core

import (
	"math"
	"strconv"
	"time"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/parallel"
	"sourcelda/internal/rng"
	"sourcelda/internal/smoothing"
)

// sourceTopic holds the precomputed λ-quadrature state for one
// knowledge-source topic. The Gibbs inner loop needs, for a word w, the A
// values (δ_w)^{e_p} and the A totals Σ_a (δ_a)^{e_p}; both are fixed for
// the whole chain because δ derives from the knowledge source, not from the
// corpus, so they are materialized once at model construction (§III-C's
// "Calculate g_t" preamble in Algorithm 1).
type sourceTopic struct {
	hyper *knowledge.Hyperparams
	g     *smoothing.G
	// exponents[p] = g(λ_p) (or λ_p without smoothing); fixed mode has one.
	exponents []float64
	// nodes[p] is the raw λ quadrature node.
	nodes []float64
	// priorLogWeights[p] is log of the normalized N(µ,σ) node mass.
	priorLogWeights []float64
	// weights[p] is the current normalized quadrature weight: the prior
	// mass, reweighted each sweep by the topic's collapsed likelihood
	// unless Options.FreezeLambdaWeights is set.
	weights []float64
	// valueAt[w][p] = (δ_w)^{exponents[p]} for words with article support.
	valueAt map[int][]float64
	// defaults[p] = ε^{exponents[p]}, the value of unsupported words.
	defaults []float64
	// totals[p] = Σ_a (δ_a)^{exponents[p]} over the whole vocabulary.
	totals []float64
}

// wordProb returns P(w | topic) under the collapsed conditional given nw
// (tokens of w in this topic, excluding the current token) and nsum (total
// tokens in this topic): the λ-integral of Eq. 3 evaluated by quadrature, or
// the single fixed-λ ratio of §III-A.
func (st *sourceTopic) wordProb(vals []float64, nw, nsum float64) float64 {
	if len(st.weights) == 1 {
		return (nw + vals[0]) / (nsum + st.totals[0])
	}
	var p float64
	for i, wgt := range st.weights {
		p += wgt * (nw + vals[i]) / (nsum + st.totals[i])
	}
	return p
}

// values returns the per-quadrature-point δ^e values for word w.
func (st *sourceTopic) values(w int) []float64 {
	if v, ok := st.valueAt[w]; ok {
		return v
	}
	return st.defaults
}

// Model is a fitted (or in-progress) Source-LDA chain.
type Model struct {
	opts Options
	c    *corpus.Corpus
	src  *knowledge.Source
	r    *rng.RNG

	// K free topics occupy indices [0, K); the S = src.Len() source topics
	// occupy [K, T). T = K + S.
	K, S, T int
	V, D    int

	nw     [][]int // [V][T] word-topic counts
	nd     [][]int // [D][T] document-topic counts
	nwsum  []int   // [T] tokens per topic
	ndsum  []int   // [D] tokens per document
	z      [][]int // [D][tokens] assignments
	topics []*sourceTopic

	pool       *parallel.Pool
	sampler    parallel.TopicSampler
	sweepCount int
	// disabled marks topics eliminated by in-inference superset reduction
	// (§III-C3); disabled topics sample with probability zero.
	disabled []bool
	// ctx and computeFn are the reusable per-token conditional evaluator;
	// binding the method value once avoids a closure allocation per token.
	ctx       sampleContext
	computeFn func(t int) float64

	// LikelihoodTrace holds the collapsed joint log-likelihood per sweep
	// when tracing is enabled.
	LikelihoodTrace []float64
	// IterationTimes holds per-sweep wall-clock durations (Fig. 8(f)).
	IterationTimes []time.Duration
}

// Fit runs Source-LDA collapsed Gibbs sampling over corpus c with knowledge
// source src and returns the fitted model. The model owns a worker pool when
// a parallel sampler is selected; Close releases it.
func Fit(c *corpus.Corpus, src *knowledge.Source, opts Options) (*Model, error) {
	m, err := NewModel(c, src, opts)
	if err != nil {
		return nil, err
	}
	m.Run(m.opts.Iterations)
	return m, nil
}

// NewModel validates options, precomputes the per-topic quadrature state and
// returns an initialized (randomly-assigned) chain that has not yet swept.
func NewModel(c *corpus.Corpus, src *knowledge.Source, opts Options) (*Model, error) {
	opts.applyDefaults()
	if err := opts.validate(c, src); err != nil {
		return nil, err
	}
	m := &Model{
		opts: opts,
		c:    c,
		src:  src,
		r:    rng.New(opts.Seed),
		K:    opts.NumFreeTopics,
		S:    src.Len(),
		V:    c.VocabSize(),
		D:    c.NumDocs(),
	}
	m.T = m.K + m.S
	m.disabled = make([]bool, m.T)
	m.buildSourceTopics()
	m.allocateCounts()
	m.initAssignments()
	m.pool = parallel.NewPool(opts.Threads)
	switch opts.Sampler {
	case SamplerSimpleParallel:
		m.sampler = parallel.NewSimpleParallel(m.pool)
	case SamplerPrefixSums:
		m.sampler = parallel.NewPrefixSums(m.pool)
	default:
		m.sampler = parallel.NewSerial()
	}
	return m, nil
}

// Close releases the worker pool of a parallel sampler. It is safe to call
// on serially-sampled models and more than once.
func (m *Model) Close() {
	if m.pool != nil {
		m.pool.Close()
	}
}

// quadratureNodes returns the λ nodes and normalized N(µ,σ) weights over
// [0, 1]. σ = 0 degenerates to a single node at clamp(µ, 0, 1).
func quadratureNodes(mu, sigma float64, a int) (nodes, weights []float64) {
	if sigma == 0 {
		node := mu
		if node < 0 {
			node = 0
		}
		if node > 1 {
			node = 1
		}
		return []float64{node}, []float64{1}
	}
	nodes = make([]float64, a)
	weights = make([]float64, a)
	var total float64
	for p := 0; p < a; p++ {
		x := (float64(p) + 0.5) / float64(a)
		nodes[p] = x
		d := (x - mu) / sigma
		w := math.Exp(-0.5 * d * d)
		weights[p] = w
		total += w
	}
	if total <= 0 {
		for p := range weights {
			weights[p] = 1 / float64(a)
		}
		return nodes, weights
	}
	for p := range weights {
		weights[p] /= total
	}
	return nodes, weights
}

func (m *Model) buildSourceTopics() {
	o := &m.opts
	m.topics = make([]*sourceTopic, m.S)

	var nodes, weights []float64
	if o.LambdaMode == LambdaIntegrated {
		nodes, weights = quadratureNodes(o.Mu, o.Sigma, o.QuadraturePoints)
	} else {
		nodes, weights = []float64{o.Lambda}, []float64{1}
	}

	for s := 0; s < m.S; s++ {
		art := m.src.Article(s)
		h := art.Hyperparams(m.V, o.Epsilon)
		st := &sourceTopic{hyper: h}
		if o.UseSmoothing {
			cfg := o.SmoothingConfig
			cfg.Seed = o.SmoothingConfig.Seed + int64(s)
			st.g = smoothing.Estimate(h, art.SmoothedDistribution(m.V, o.Epsilon), cfg)
		} else {
			st.g = smoothing.Identity()
		}
		st.exponents = make([]float64, len(nodes))
		st.nodes = append([]float64(nil), nodes...)
		st.weights = make([]float64, len(weights))
		copy(st.weights, weights)
		st.priorLogWeights = make([]float64, len(weights))
		for p, w := range weights {
			if w <= 0 {
				st.priorLogWeights[p] = math.Inf(-1)
			} else {
				st.priorLogWeights[p] = math.Log(w)
			}
		}
		st.defaults = make([]float64, len(nodes))
		st.totals = make([]float64, len(nodes))
		st.valueAt = make(map[int][]float64, h.NumPresent())
		for p, node := range nodes {
			e := node
			if o.UseSmoothing {
				e = st.g.Eval(node)
			}
			st.exponents[p] = e
			pd := h.Pow(e)
			st.defaults[p] = pd.Default
			st.totals[p] = pd.Total
			pd.ForEachPresent(func(w int, v float64) {
				vals, ok := st.valueAt[w]
				if !ok {
					vals = make([]float64, len(nodes))
					st.valueAt[w] = vals
				}
				vals[p] = v
			})
		}
		m.topics[s] = st
	}
}

func (m *Model) allocateCounts() {
	m.nw = make([][]int, m.V)
	flat := make([]int, m.V*m.T)
	for w := range m.nw {
		m.nw[w] = flat[w*m.T : (w+1)*m.T : (w+1)*m.T]
	}
	m.nd = make([][]int, m.D)
	m.z = make([][]int, m.D)
	for d := range m.nd {
		m.nd[d] = make([]int, m.T)
		m.z[d] = make([]int, len(m.c.Docs[d].Words))
	}
	m.nwsum = make([]int, m.T)
	m.ndsum = make([]int, m.D)
}

// initAssignments draws each token's initial topic from the model priors
// (free topics uniform at β-level, source topics at their δ-based word
// probability). Unlike uniform-random initialization this starts every
// source topic at its knowledge-source identity, which the collapsed chain
// then refines — without it, the early count matrices are pure noise and
// the λ posterior (and slow-mixing chains generally) can lock onto a bad
// mode.
func (m *Model) initAssignments() {
	probs := make([]float64, m.T)
	beta := m.opts.Beta
	vBeta := float64(m.V) * beta
	freeProb := beta / vBeta // uniform over V for an empty free topic
	for d, doc := range m.c.Docs {
		for i, w := range doc.Words {
			for t := 0; t < m.K; t++ {
				probs[t] = freeProb
			}
			for s := 0; s < m.S; s++ {
				st := m.topics[s]
				probs[m.K+s] = st.wordProb(st.values(w), 0, 0)
			}
			k := m.r.Categorical(probs)
			m.z[d][i] = k
			m.nw[w][k]++
			m.nd[d][k]++
			m.nwsum[k]++
			m.ndsum[d]++
		}
	}
}

// Run performs the given number of collapsed Gibbs sweeps (Algorithm 1's
// outer loop); it can be called repeatedly to extend a chain.
func (m *Model) Run(iterations int) {
	for iter := 0; iter < iterations; iter++ {
		start := time.Now()
		m.sweep()
		m.IterationTimes = append(m.IterationTimes, time.Since(start))
		if m.opts.TraceLikelihood {
			m.LikelihoodTrace = append(m.LikelihoodTrace, m.LogLikelihood())
		}
		if m.opts.OnIteration != nil {
			m.opts.OnIteration(iter, m)
		}
	}
}

// updateLambdaPosteriors reweights each source topic's quadrature nodes by
// the posterior of its latent λ_t given the current counts: for node p with
// prior mass w_p and powered prior δ^{e_p},
//
//	log post_p ∝ log w_p + log Γ(Δ_p) − log Γ(Δ_p + n_t)
//	             + Σ_{w: n_wt>0} [log Γ(n_wt + δ_p,w) − log Γ(δ_p,w)]
//
// (the collapsed Dirichlet-multinomial likelihood of topic t's tokens under
// exponent e_p). Topics whose realized counts match the source keep weight
// on high-λ nodes; deviating topics shift weight to relaxed nodes.
func (m *Model) updateLambdaPosteriors() {
	logPost := make([]float64, 0, 16)
	for s := 0; s < m.S; s++ {
		st := m.topics[s]
		nNodes := len(st.weights)
		if nNodes < 2 {
			continue
		}
		t := m.K + s
		logPost = logPost[:0]
		for p := 0; p < nNodes; p++ {
			lgTot, _ := math.Lgamma(st.totals[p])
			lgDen, _ := math.Lgamma(st.totals[p] + float64(m.nwsum[t]))
			logPost = append(logPost, st.priorLogWeights[p]+lgTot-lgDen)
		}
		for w := 0; w < m.V; w++ {
			n := m.nw[w][t]
			if n == 0 {
				continue
			}
			vals := st.values(w)
			for p := 0; p < nNodes; p++ {
				lgN, _ := math.Lgamma(float64(n) + vals[p])
				lgP, _ := math.Lgamma(vals[p])
				logPost[p] += lgN - lgP
			}
		}
		// Softmax back to normalized weights.
		max := logPost[0]
		for _, lp := range logPost[1:] {
			if lp > max {
				max = lp
			}
		}
		var total float64
		for p, lp := range logPost {
			st.weights[p] = math.Exp(lp - max)
			total += st.weights[p]
		}
		if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
			for p := range st.weights {
				st.weights[p] = math.Exp(st.priorLogWeights[p])
			}
			continue
		}
		for p := range st.weights {
			st.weights[p] /= total
		}
	}
}

// LambdaPosteriorMeans returns, per source topic, the posterior-weighted
// mean of the λ quadrature nodes — a diagnostic for how much each topic is
// estimated to deviate from its knowledge source (1 = conforming).
func (m *Model) LambdaPosteriorMeans() []float64 {
	out := make([]float64, m.S)
	for s, st := range m.topics {
		var mean float64
		for p, w := range st.weights {
			mean += w * st.nodes[p]
		}
		out[s] = mean
	}
	return out
}

// sweep resamples every token once (Algorithm 1's SAMPLE over the corpus).
func (m *Model) sweep() {
	o := &m.opts
	m.sweepCount++
	if o.LambdaMode == LambdaIntegrated && !o.FreezeLambdaWeights && m.sweepCount > o.lambdaBurnIn() {
		m.updateLambdaPosteriors()
	}
	if o.PruneDeadTopics && m.sweepCount >= o.PruneAfter &&
		(m.sweepCount-o.PruneAfter)%o.PruneEvery == 0 {
		m.pruneDeadTopics()
	}
	alpha, beta := o.Alpha, o.Beta
	vBeta := float64(m.V) * beta
	for d, doc := range m.c.Docs {
		nd := m.nd[d]
		for i, w := range doc.Words {
			old := m.z[d][i]
			m.nw[w][old]--
			nd[old]--
			m.nwsum[old]--

			k := m.sampleTopic(nd, m.nw[w], w, alpha, beta, vBeta)

			m.z[d][i] = k
			m.nw[w][k]++
			nd[k]++
			m.nwsum[k]++
		}
	}
}

// sampleContext carries the per-token state of the collapsed conditional.
type sampleContext struct {
	m       *Model
	nd, nww []int
	w       int
	alpha   float64
	beta    float64
	vBeta   float64
}

// prob evaluates the unnormalized conditional P(z = t | …) for the current
// token. Disabled topics have probability zero.
func (c *sampleContext) prob(t int) float64 {
	m := c.m
	if m.disabled[t] {
		return 0
	}
	docPart := float64(c.nd[t]) + c.alpha
	if t < m.K {
		// Eq. 2, free-topic branch.
		return (float64(c.nww[t]) + c.beta) / (float64(m.nwsum[t]) + c.vBeta) * docPart
	}
	// Eq. 3, source-topic branch with λ integrated by quadrature (single
	// node in fixed mode).
	st := m.topics[t-m.K]
	return st.wordProb(st.values(c.w), float64(c.nww[t]), float64(m.nwsum[t])) * docPart
}

// sampleTopic draws a topic for a token of word w given the current
// document counts nd and word counts nww (with the token itself already
// decremented).
func (m *Model) sampleTopic(nd, nww []int, w int, alpha, beta, vBeta float64) int {
	m.ctx = sampleContext{m: m, nd: nd, nww: nww, w: w, alpha: alpha, beta: beta, vBeta: vBeta}
	if m.computeFn == nil {
		m.computeFn = m.ctx.prob
	}
	return m.sampler.Sample(m.T, m.computeFn, m.r.Float64())
}

// pruneDeadTopics disables source topics whose document frequency (counting
// documents with at least PruneMinTokens assigned tokens) falls below
// PruneMinDocs and resamples their tokens over the surviving topics — the
// in-inference elimination step of §III-C3. At least one topic always
// survives.
func (m *Model) pruneDeadTopics() {
	o := &m.opts
	df := m.TopicDocumentFrequencies(o.PruneMinTokens)
	var newly []int
	enabled := 0
	for t := 0; t < m.T; t++ {
		if !m.disabled[t] {
			enabled++
		}
	}
	for s := 0; s < m.S; s++ {
		t := m.K + s
		if m.disabled[t] || df[t] >= o.PruneMinDocs {
			continue
		}
		if enabled <= 1 {
			break
		}
		m.disabled[t] = true
		enabled--
		newly = append(newly, t)
	}
	if len(newly) == 0 {
		return
	}
	dead := make(map[int]bool, len(newly))
	for _, t := range newly {
		dead[t] = true
	}
	alpha, beta := o.Alpha, o.Beta
	vBeta := float64(m.V) * beta
	for d, doc := range m.c.Docs {
		nd := m.nd[d]
		for i, w := range doc.Words {
			old := m.z[d][i]
			if !dead[old] {
				continue
			}
			m.nw[w][old]--
			nd[old]--
			m.nwsum[old]--
			k := m.sampleTopic(nd, m.nw[w], w, alpha, beta, vBeta)
			m.z[d][i] = k
			m.nw[w][k]++
			nd[k]++
			m.nwsum[k]++
		}
	}
}

// DisabledTopics returns a copy of the per-topic elimination flags.
func (m *Model) DisabledTopics() []bool {
	out := make([]bool, m.T)
	copy(out, m.disabled)
	return out
}

// NumTopics returns T = K + S.
func (m *Model) NumTopics() int { return m.T }

// NumFreeTopics returns K.
func (m *Model) NumFreeTopics() int { return m.K }

// NumSourceTopics returns S.
func (m *Model) NumSourceTopics() int { return m.S }

// SourceIndex maps a model topic index t in [K, T) to its knowledge-source
// article index; it returns -1 for free topics.
func (m *Model) SourceIndex(t int) int {
	if t < m.K {
		return -1
	}
	return t - m.K
}

// Phi returns topic-word distributions: the symmetric-β estimate for free
// topics and the λ-quadrature estimate of Eq. 4 for source topics.
func (m *Model) Phi() [][]float64 {
	beta := m.opts.Beta
	vBeta := float64(m.V) * beta
	phi := make([][]float64, m.T)
	for t := 0; t < m.K; t++ {
		row := make([]float64, m.V)
		den := float64(m.nwsum[t]) + vBeta
		for w := 0; w < m.V; w++ {
			row[w] = (float64(m.nw[w][t]) + beta) / den
		}
		phi[t] = row
	}
	for s := 0; s < m.S; s++ {
		t := m.K + s
		st := m.topics[s]
		row := make([]float64, m.V)
		nsum := float64(m.nwsum[t])
		for w := 0; w < m.V; w++ {
			row[w] = st.wordProb(st.values(w), float64(m.nw[w][t]), nsum)
		}
		// The quadrature mixture of normalized ratios is normalized up to
		// quadrature error; renormalize exactly.
		var total float64
		for _, p := range row {
			total += p
		}
		if total > 0 {
			inv := 1 / total
			for w := range row {
				row[w] *= inv
			}
		}
		phi[t] = row
	}
	return phi
}

// Theta returns document-topic distributions per Eq. 1 with K := T topics.
func (m *Model) Theta() [][]float64 {
	alpha := m.opts.Alpha
	tAlpha := float64(m.T) * alpha
	theta := make([][]float64, m.D)
	for d := range theta {
		row := make([]float64, m.T)
		den := float64(m.ndsum[d]) + tAlpha
		for t := 0; t < m.T; t++ {
			row[t] = (float64(m.nd[d][t]) + alpha) / den
		}
		theta[d] = row
	}
	return theta
}

// Assignments returns live per-token topic assignments ([doc][token]); do
// not mutate.
func (m *Model) Assignments() [][]int { return m.z }

// Labels returns the T topic labels: "topic-<i>" for free topics, the
// knowledge-source label for source topics.
func (m *Model) Labels() []string {
	labels := make([]string, m.T)
	for t := 0; t < m.K; t++ {
		labels[t] = freeTopicLabel(t)
	}
	for s := 0; s < m.S; s++ {
		labels[m.K+s] = m.src.Label(s)
	}
	return labels
}

// TopicDocumentFrequencies returns, per topic, the number of documents with
// at least minTokens tokens assigned to that topic — the statistic behind
// superset topic reduction (§III-C3).
func (m *Model) TopicDocumentFrequencies(minTokens int) []int {
	if minTokens < 1 {
		minTokens = 1
	}
	df := make([]int, m.T)
	for d := 0; d < m.D; d++ {
		for t, n := range m.nd[d] {
			if n >= minTokens {
				df[t]++
			}
		}
	}
	return df
}

// TokensPerTopic returns a copy of the per-topic token totals.
func (m *Model) TokensPerTopic() []int {
	out := make([]int, m.T)
	copy(out, m.nwsum)
	return out
}

// LogLikelihood returns the collapsed joint log P(w|z). Free topics use the
// Griffiths–Steyvers form with symmetric β; source topics use their δ^e
// prior evaluated at the quadrature's weighted-mean exponent (fixed mode:
// the fixed exponent). The trace is used for convergence monitoring (Fig. 6).
func (m *Model) LogLikelihood() float64 {
	beta := m.opts.Beta
	vBeta := float64(m.V) * beta
	lgBeta, _ := math.Lgamma(beta)
	lgVBeta, _ := math.Lgamma(vBeta)
	var ll float64
	for t := 0; t < m.K; t++ {
		ll += lgVBeta - float64(m.V)*lgBeta
		for w := 0; w < m.V; w++ {
			if n := m.nw[w][t]; n > 0 {
				lg, _ := math.Lgamma(float64(n) + beta)
				ll += lg - lgBeta
			}
		}
		lg, _ := math.Lgamma(float64(m.nwsum[t]) + vBeta)
		ll -= lg - lgVBeta
	}
	// For a topic with prior vector δ the collapsed term is
	//   log Γ(Σδ) − log Γ(n_t + Σδ) + Σ_{w: n_w>0} [log Γ(n_w+δ_w) − log Γ(δ_w)]
	// (words with n_w = 0 contribute log Γ(δ_w) to both prior and posterior
	// products and cancel). Source topics evaluate δ at the quadrature's
	// weighted-mean exponent (fixed mode: the fixed exponent).
	for s := 0; s < m.S; s++ {
		t := m.K + s
		st := m.topics[s]
		var e float64
		for p, wgt := range st.weights {
			e += wgt * st.exponents[p]
		}
		pd := st.hyper.Pow(e)
		lgTotal, _ := math.Lgamma(pd.Total)
		lgDen, _ := math.Lgamma(pd.Total + float64(m.nwsum[t]))
		ll += lgTotal - lgDen
		for w := 0; w < m.V; w++ {
			if n := m.nw[w][t]; n > 0 {
				dw := pd.Value(w)
				lgN, _ := math.Lgamma(float64(n) + dw)
				lgP, _ := math.Lgamma(dw)
				ll += lgN - lgP
			}
		}
	}
	return ll
}

func freeTopicLabel(t int) string { return "topic-" + strconv.Itoa(t) }
