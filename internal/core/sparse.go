package core

import "math"

// sparseState is the bucket-decomposed sampling state of one gibbsView — the
// SparseLDA trick (Yao, Mimno & McCallum, "Efficient Methods for Topic Model
// Inference on Streaming Document Collections", KDD 2009) extended to
// Source-LDA's quadrature topics, selected with Options.Sampler ==
// SamplerSparse.
//
// For a free topic t < K, Eq. 2's unnormalized mass factors into three
// additive buckets:
//
//	(n_wt + β)(n_dt + α)/(n_t + Vβ) =
//	      αβ/(n_t + Vβ)                  smoothing-only  (cached total)
//	    + β·n_dt/(n_t + Vβ)             document bucket (n_dt > 0 only)
//	    + n_wt·(n_dt + α)/(n_t + Vβ)    word bucket     (n_wt > 0 only)
//
// For a source topic s, Eq. 3's quadrature mass — with each node weight
// pre-divided by its denominator (the view's wInv cache) — factors the same
// way around the per-topic sums W_s = Σ_p wInv_p and
// V_s(w) = Σ_p wInv_p·(δ_w)^{e_p}:
//
//	(n_dt + α)·Σ_p wInv_p·(n_wt + (δ_w)^{e_p}) =
//	      α·V_s(w)                      default-δ bucket: the cached total
//	                                    Σ_s α·D_s over the defaults rows,
//	                                    plus an exact correction summed
//	                                    over the word's CSR support row
//	    + n_dt·V_s(w)                   document bucket (n_dt > 0 only)
//	    + n_wt·W_s·(n_dt + α)           word bucket     (n_wt > 0 only)
//
// Every per-item mass is non-negative — a supported value (δ_w)^e dominates
// the default ε^e because article words carry count+ε ≥ 1+ε mass and the
// exponents live in [0, 1] — so a draw walks the sparse buckets in a fixed
// order and touches O(|doc nnz| + |word nnz| + |sup(w)|·P) state per token
// instead of K + S·P.
//
// The cached totals (freeSmooth, srcSmooth) and per-topic sums (srcW, srcD)
// are maintained by refreshTopic in O(1)/O(P) per count change, and rebuilt
// from scratch — together with the word nonzero lists — by rebuild at every
// bulk-change point (view construction, the sharded sweep barrier, λ
// posterior reweighting). The whole structure is therefore a pure function
// of the current count slabs: checkpoint restore rebuilds it for free and a
// resumed sparse chain stays bit-identical to an uninterrupted one.
type sparseState struct {
	v *gibbsView

	// freeSmooth = Σ_{t<K} αβ·freeDen[t], the smoothing-only bucket total.
	freeSmooth float64
	// srcSmooth = Σ_s α·srcD[s], the default-δ bucket total before the
	// per-token support correction.
	srcSmooth float64
	// srcW[s] = Σ_p wInv[s·P+p]; srcD[s] = Σ_p wInv[s·P+p]·defaults[s·P+p].
	srcW, srcD []float64

	// wordTopics[w] lists the topics with wordTopic[w·T+t] > 0 in ascending
	// order — the word bucket's iteration set, maintained across the whole
	// slab because words recur across documents.
	wordTopics [][]int32
	// docTopics lists the current document's topics with n_dt > 0 in
	// ascending order — the document bucket's iteration set, rebuilt by
	// setDoc on document entry and maintained per token.
	docTopics []int32

	// listsStale marks wordTopics as out of date with the view's slab. Set
	// at the multi-shard sweep barrier (where the global slab is rebuilt
	// from assignments the sequential view never saw) and cleared by
	// rebuildLists; draws through a stale view must rebuild first.
	listsStale bool

	// Scratch reused across tokens; a view draws one token at a time.
	supVals []float64 // V_s(w) per entry of the current word's support row
	itemT   []int32   // topics of the word+doc bucket items, in scan order
	itemM   []float64 // masses of the word+doc bucket items
}

func newSparseState(v *gibbsView) *sparseState {
	return &sparseState{
		v:          v,
		srcW:       make([]float64, v.S),
		srcD:       make([]float64, v.S),
		wordTopics: make([][]int32, v.m.V),
		docTopics:  make([]int32, 0, v.T),
	}
}

// refreshSource recomputes source topic s's cached quadrature sums after its
// wInv row changed, adjusting the default-δ bucket total by the difference.
func (sp *sparseState) refreshSource(s int) {
	v := sp.v
	base := s * v.P
	wi := v.wInv[base : base+v.P]
	defs := v.m.delta.defaults[base : base+v.P]
	var w, d float64
	for p := range wi {
		w += wi[p]
		d += wi[p] * defs[p]
	}
	sp.srcSmooth += v.alpha * (d - sp.srcD[s])
	sp.srcW[s], sp.srcD[s] = w, d
}

// resyncTotals recomputes the two accumulated bucket totals from the cached
// per-topic values. freeSmooth and srcSmooth are otherwise maintained as
// running sums of deltas — a path-dependent float accumulation — while a
// checkpoint-restored view starts from this fresh summation. Resyncing at
// every sweep boundary (O(K + S), negligible) puts the uninterrupted and
// resumed chains on the exact same values, which is what keeps sparse
// resume bit-for-bit identical; it also stops drift from ever growing past
// one sweep. The per-topic inputs themselves (freeDen, srcD) never drift:
// refreshTopic/refreshSource recompute them exactly on every change.
func (sp *sparseState) resyncTotals() {
	v := sp.v
	var fs float64
	for t := 0; t < v.K; t++ {
		fs += v.freeDen[t]
	}
	sp.freeSmooth = v.alpha * v.beta * fs
	var ss float64
	for s := 0; s < v.S; s++ {
		ss += sp.srcD[s]
	}
	sp.srcSmooth = v.alpha * ss
}

// rebuildLists re-derives the word nonzero lists from the view's current
// word-topic slab — an O(V·T) scan needed only where the slab was bulk
// overwritten underneath the incremental maintenance: view construction
// (including checkpoint restore) and a shard view's per-sweep slab copy.
// The sequential view in multi-shard mode marks its lists stale at the
// sweep barrier instead (listsStale) and rebuilds lazily when pruning —
// the only consumer of that view's draw — actually needs them.
func (sp *sparseState) rebuildLists() {
	v := sp.v
	T := v.T
	for w := range sp.wordTopics {
		row := v.wordTopic[w*T : (w+1)*T]
		lst := sp.wordTopics[w][:0]
		for t, n := range row {
			if n > 0 {
				lst = append(lst, int32(t))
			}
		}
		sp.wordTopics[w] = lst
	}
	sp.listsStale = false
}

// setDoc rebuilds the document bucket's nonzero-topic list for row.
func (sp *sparseState) setDoc(row []int32) {
	lst := sp.docTopics[:0]
	for t, n := range row {
		if n > 0 {
			lst = append(lst, int32(t))
		}
	}
	sp.docTopics = lst
}

// noteDec maintains the nonzero lists after the current token left topic t:
// the view's count rows are already decremented when this runs.
func (sp *sparseState) noteDec(w, t int) {
	if sp.v.tokenRow[t] == 0 {
		sp.wordTopics[w] = removeTopic(sp.wordTopics[w], int32(t))
	}
	if sp.v.docRow[t] == 0 {
		sp.docTopics = removeTopic(sp.docTopics, int32(t))
	}
}

// noteInc maintains the nonzero lists after the current token joined topic
// t: the view's count rows are already incremented when this runs.
func (sp *sparseState) noteInc(w, t int) {
	if sp.v.tokenRow[t] == 1 {
		sp.wordTopics[w] = insertTopic(sp.wordTopics[w], int32(t))
	}
	if sp.v.docRow[t] == 1 {
		sp.docTopics = insertTopic(sp.docTopics, int32(t))
	}
}

// insertTopic adds t to an ascending topic list (no-op when present).
func insertTopic(lst []int32, t int32) []int32 {
	i := searchTopic(lst, int(t))
	if i < len(lst) && lst[i] == t {
		return lst
	}
	lst = append(lst, 0)
	copy(lst[i+1:], lst[i:])
	lst[i] = t
	return lst
}

// removeTopic deletes t from an ascending topic list (no-op when absent).
func removeTopic(lst []int32, t int32) []int32 {
	i := searchTopic(lst, int(t))
	if i >= len(lst) || lst[i] != t {
		return lst
	}
	copy(lst[i:], lst[i+1:])
	return lst[:len(lst)-1]
}

// draw samples the current token's topic from the bucket decomposition with
// uniform variate u. setToken/setDoc must point the view at the token and
// dec must already have removed it from the counts. ok=false reports
// degenerate (zero or non-finite) total mass; the caller falls back to the
// dense kernel so every sampler degrades identically.
func (sp *sparseState) draw(u float64) (topic int, ok bool) {
	v := sp.v
	K, P := v.K, v.P
	alpha, beta := v.alpha, v.beta
	ds := v.m.delta
	sup, base := v.supRow, v.supBase

	// Exact V_s(w) over the word's support row, and the default-δ bucket's
	// correction Σ_{s ∈ sup(w)} α·(V_s(w) − D_s). This is the only P-wide
	// work per token; unsupported topics ride the cached srcD totals.
	if cap(sp.supVals) < len(sup) {
		sp.supVals = make([]float64, len(sup))
	}
	supVals := sp.supVals[:len(sup)]
	var corr float64
	for i := range sup {
		s := int(sup[i])
		wi := v.wInv[s*P : (s+1)*P]
		vals := ds.vals[(base+i)*P : (base+i+1)*P]
		var acc float64
		for p := 0; p < P; p++ {
			acc += wi[p] * vals[p]
		}
		supVals[i] = acc
		corr += acc - sp.srcD[s]
	}
	srcAlpha := sp.srcSmooth + alpha*corr

	// Word bucket first, then document bucket: after a few sweeps most of a
	// token's mass sits on topics already using its word, so the selection
	// scan usually terminates within the first few items.
	word := sp.wordTopics[v.curWord]
	if n := len(word) + len(sp.docTopics); cap(sp.itemT) < n {
		sp.itemT = make([]int32, 0, n)
		sp.itemM = make([]float64, 0, n)
	}
	itemT, itemM := sp.itemT[:0], sp.itemM[:0]
	var sparseTotal float64
	for _, t32 := range word {
		t := int(t32)
		nw := float64(v.tokenRow[t])
		nd := float64(v.docRow[t])
		var mass float64
		if t < K {
			mass = nw * (nd + alpha) * v.freeDen[t]
		} else {
			mass = nw * sp.srcW[t-K] * (nd + alpha)
		}
		itemT = append(itemT, t32)
		itemM = append(itemM, mass)
		sparseTotal += mass
	}
	idx := 0
	for _, t32 := range sp.docTopics {
		t := int(t32)
		nd := float64(v.docRow[t])
		var mass float64
		if t < K {
			mass = beta * nd * v.freeDen[t]
		} else {
			s := t - K
			for idx < len(sup) && int(sup[idx]) < s {
				idx++
			}
			V := sp.srcD[s]
			if idx < len(sup) && int(sup[idx]) == s {
				V = supVals[idx]
			}
			mass = nd * V
		}
		itemT = append(itemT, t32)
		itemM = append(itemM, mass)
		sparseTotal += mass
	}
	sp.itemT, sp.itemM = itemT, itemM

	total := sparseTotal + srcAlpha + sp.freeSmooth
	if !(total > 0) || math.IsInf(total, 0) {
		return 0, false
	}
	target := u * total
	last := -1
	for i, mass := range itemM {
		if mass <= 0 {
			continue
		}
		last = int(itemT[i])
		target -= mass
		if target < 0 {
			return last, true
		}
	}
	// Default-δ bucket: every source topic at α·V_s(w). Rarely hit — its
	// mass is the α-weighted prior sliver — so the O(S) walk is cold.
	idx = 0
	for s := 0; s < v.S; s++ {
		V := sp.srcD[s]
		if idx < len(sup) && int(sup[idx]) == s {
			V = supVals[idx]
			idx++
		}
		if mass := alpha * V; mass > 0 {
			last = K + s
			target -= mass
			if target < 0 {
				return last, true
			}
		}
	}
	// Smoothing-only bucket: every free topic at αβ·freeDen[t]. Also cold.
	ab := alpha * beta
	for t := 0; t < K; t++ {
		if mass := ab * v.freeDen[t]; mass > 0 {
			last = t
			target -= mass
			if target < 0 {
				return last, true
			}
		}
	}
	if last < 0 {
		return 0, false
	}
	// Floating-point slop left a sliver of target after the final bucket;
	// land on the last positive-mass item, matching the dense kernels'
	// clamp to the final cumulative entry.
	return last, true
}

// fillFromBuckets reconstructs the current token's full dense conditional
// strictly from the sparse structures — the cached per-topic sums and the
// nonzero lists — never from a dense count scan. It is the property-test
// oracle proving the bucket decomposition matches gibbsView.fill term for
// term (and that the nonzero lists are exactly the nonzero counts); the
// sampling path never calls it.
func (sp *sparseState) fillFromBuckets(out []float64) {
	v := sp.v
	K, P := v.K, v.P
	alpha, beta := v.alpha, v.beta
	ds := v.m.delta
	sup, base := v.supRow, v.supBase

	srcV := make([]float64, v.S)
	idx := 0
	for s := 0; s < v.S; s++ {
		V := sp.srcD[s]
		if idx < len(sup) && int(sup[idx]) == s {
			wi := v.wInv[s*P : (s+1)*P]
			vals := ds.vals[(base+idx)*P : (base+idx+1)*P]
			V = 0
			for p := 0; p < P; p++ {
				V += wi[p] * vals[p]
			}
			idx++
		}
		srcV[s] = V
	}
	ab := alpha * beta
	for t := 0; t < K; t++ {
		out[t] = ab * v.freeDen[t]
	}
	for s, V := range srcV {
		out[K+s] = alpha * V
	}
	for _, t32 := range sp.docTopics {
		t := int(t32)
		nd := float64(v.docRow[t])
		if t < K {
			out[t] += beta * nd * v.freeDen[t]
		} else {
			out[t] += nd * srcV[t-K]
		}
	}
	for _, t32 := range sp.wordTopics[v.curWord] {
		t := int(t32)
		nw := float64(v.tokenRow[t])
		nd := float64(v.docRow[t])
		if t < K {
			out[t] += nw * (nd + alpha) * v.freeDen[t]
		} else {
			out[t] += nw * sp.srcW[t-K] * (nd + alpha)
		}
	}
}
