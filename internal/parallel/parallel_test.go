package parallel

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"

	"sourcelda/internal/rng"
)

func TestPoolRunCoversRange(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		p := NewPool(workers)
		var hits [100]int32
		p.Run(100, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		p.Close()
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestPoolRunEmpty(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	called := false
	p.Run(0, func(lo, hi int) { called = true })
	if called {
		t.Fatal("Run(0) should not invoke fn")
	}
}

func TestPoolMinimumOneWorker(t *testing.T) {
	p := NewPool(0)
	if p.Workers() != 1 {
		t.Fatalf("workers = %d, want 1", p.Workers())
	}
	p.Close() // must be a safe no-op for single-worker pools
	p.Close()
}

func TestPoolDoubleCloseSafe(t *testing.T) {
	p := NewPool(3)
	p.Close()
	p.Close() // second close must not panic
}

// fillFrom adapts a dense probability vector to the FillFunc contract.
func fillFrom(probs []float64) FillFunc {
	return func(lo, hi int, out []float64) { copy(out, probs[lo:hi]) }
}

// evaluators returns one sampler of each kind sharing the worker count.
func evaluators(workers int) ([]TopicSampler, func()) {
	pool := NewPool(workers)
	return []TopicSampler{
		NewSerial(),
		NewSimpleParallel(pool),
		NewPrefixSums(pool),
	}, pool.Close
}

func TestSamplersAgreeExactly(t *testing.T) {
	// The paper's exactness guarantee: all three kernels must select the
	// same topic given the same probabilities and the same uniform draw.
	for _, workers := range []int{1, 2, 3, 5} {
		samplers, done := evaluators(workers)
		r := rng.New(101)
		for trial := 0; trial < 200; trial++ {
			T := 1 + r.Intn(300)
			probs := make([]float64, T)
			for i := range probs {
				probs[i] = r.Float64() * 10
			}
			u := r.Float64()
			fill := fillFrom(probs)
			base := samplers[0].Sample(T, fill, u)
			for _, s := range samplers[1:] {
				if got := s.Sample(T, fill, u); got != base {
					t.Fatalf("workers=%d trial=%d T=%d: %s chose %d, serial chose %d",
						workers, trial, T, s.Name(), got, base)
				}
			}
		}
		done()
	}
}

func TestSamplersMatchDistribution(t *testing.T) {
	// Sampling frequencies must match the probability vector.
	samplers, done := evaluators(3)
	defer done()
	probs := []float64{1, 2, 3, 4} // P = 0.1, 0.2, 0.3, 0.4
	fill := fillFrom(probs)
	for _, s := range samplers {
		r := rng.New(55)
		counts := make([]int, 4)
		const n = 40000
		for i := 0; i < n; i++ {
			counts[s.Sample(4, fill, r.Float64())]++
		}
		for i, c := range counts {
			want := probs[i] / 10
			got := float64(c) / n
			if math.Abs(got-want) > 0.02 {
				t.Errorf("%s: P(%d) = %v, want ≈%v", s.Name(), i, got, want)
			}
		}
	}
}

func TestSamplersSingleTopic(t *testing.T) {
	samplers, done := evaluators(2)
	defer done()
	for _, s := range samplers {
		if got := s.Sample(1, fillFrom([]float64{5}), 0.7); got != 0 {
			t.Fatalf("%s: single topic must return 0, got %d", s.Name(), got)
		}
	}
}

func TestSamplersDegenerateMassFallback(t *testing.T) {
	// A NaN-poisoned total must fall back to the positive-mass support
	// only: index 2 is the sole positive entry and must always win, never
	// a zero-probability index (the old uniform-over-everything fallback
	// could resurrect pruned topics).
	samplers, done := evaluators(2)
	defer done()
	probs := []float64{0, 0, 3, math.NaN()}
	for _, s := range samplers {
		for _, u := range []float64{0, 0.3, 0.6, 0.99} {
			got := s.Sample(4, fillFrom(probs), u)
			if got != 2 {
				t.Fatalf("%s: degenerate fallback chose index %d, want 2", s.Name(), got)
			}
		}
	}
}

func TestSamplersPanicOnNoPositiveMass(t *testing.T) {
	samplers, done := evaluators(2)
	defer done()
	for _, s := range samplers {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: all-zero mass must panic, not invent a topic", s.Name())
				}
			}()
			s.Sample(4, fillFrom(make([]float64, 4)), 0.6)
		}()
	}
}

func TestSparseDirectSampler(t *testing.T) {
	// The direct path wins when it reports ok.
	s := NewSparseDirect(func(u float64) (int, bool) { return 3, true })
	if s.Name() != "sparse" {
		t.Fatalf("name %q", s.Name())
	}
	if got := s.Sample(8, fillFrom(make([]float64, 8)), 0.5); got != 3 {
		t.Fatalf("direct draw ignored: got %d", got)
	}
	// On degenerate mass (ok=false) it falls back to the dense serial scan
	// with the same u, agreeing with a plain Serial sampler exactly.
	probs := []float64{0.5, 0, 2, 1}
	s = NewSparseDirect(func(u float64) (int, bool) { return 0, false })
	serial := NewSerial()
	for _, u := range []float64{0, 0.2, 0.5, 0.9, 0.999} {
		if a, b := s.Sample(4, fillFrom(probs), u), serial.Sample(4, fillFrom(probs), u); a != b {
			t.Fatalf("u=%v: fallback drew %d, serial drew %d", u, a, b)
		}
	}
}

func TestSamplersRespectZeroProbability(t *testing.T) {
	samplers, done := evaluators(3)
	defer done()
	probs := []float64{0, 1, 0, 1, 0}
	fill := fillFrom(probs)
	r := rng.New(77)
	for _, s := range samplers {
		for i := 0; i < 500; i++ {
			k := s.Sample(5, fill, r.Float64())
			if probs[k] == 0 {
				t.Fatalf("%s selected zero-probability topic %d", s.Name(), k)
			}
		}
	}
}

func TestPrefixSumsNonPowerOfTwo(t *testing.T) {
	// Blelloch pads to a power of two; verify odd sizes behave.
	pool := NewPool(3)
	defer pool.Close()
	ps := NewPrefixSums(pool)
	serial := NewSerial()
	r := rng.New(31)
	for _, T := range []int{1, 2, 3, 5, 17, 63, 65, 100, 127, 129} {
		probs := make([]float64, T)
		for i := range probs {
			probs[i] = r.Float64()
		}
		u := r.Float64()
		fill := fillFrom(probs)
		if a, b := ps.Sample(T, fill, u), serial.Sample(T, fill, u); a != b {
			t.Fatalf("T=%d: prefix %d vs serial %d", T, a, b)
		}
	}
}

func TestSamplerPropertyValidIndex(t *testing.T) {
	pool := NewPool(2)
	defer pool.Close()
	sp := NewSimpleParallel(pool)
	f := func(seed int64, u float64) bool {
		u = math.Abs(math.Mod(u, 1))
		r := rng.New(seed)
		T := 1 + r.Intn(50)
		probs := make([]float64, T)
		for i := range probs {
			probs[i] = r.Float64()
		}
		k := sp.Sample(T, fillFrom(probs), u)
		return k >= 0 && k < T
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerNames(t *testing.T) {
	samplers, done := evaluators(2)
	defer done()
	want := []string{"serial", "simple-parallel", "prefix-sums"}
	for i, s := range samplers {
		if s.Name() != want[i] {
			t.Fatalf("sampler %d name = %q, want %q", i, s.Name(), want[i])
		}
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 100: 128, 128: 128}
	for in, want := range cases {
		if got := nextPow2(in); got != want {
			t.Errorf("nextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}
