// Package parallel implements the paper's two exactness-preserving parallel
// sampling procedures (PAPER.md §III-C4) and the worker pool they run on:
// Algorithm 2, prefix-sum (Blelloch scan) sampling, and Algorithm 3, simple
// chunked parallel sampling. Both compute the unnormalized topic
// probabilities of one token in parallel, form cumulative sums, and select
// the sampled topic with a binary search over the cumulative vector — so
// given the same uniform draw they return the same topic the serial sampler
// would (up to floating-point summation order), without the approximation
// error of asynchronous parallel LDA schemes.
//
// SparseDirect is the third kernel shape: it delegates the draw to a
// DirectFunc bound to sparse bucket state owned by the caller (the engine's
// SparseLDA-style decomposition in internal/core), touching only the
// token's nonzero topics, and falls back to the dense serial scan on
// degenerate mass so every kernel degrades identically.
//
// # Invariants
//
// TopicSampler implementations consume exactly one uniform variate per
// sampled token, supplied by the caller; the kernels themselves hold no
// RNG. That single-draw contract is what lets the engine's checkpointing
// record a chain's randomness as bare stream positions, and lets kernels
// be swapped without re-deriving the chain's random sequence alignment.
// FillFunc callbacks must be safe to invoke over disjoint topic ranges
// concurrently; they write only to the output slice they are handed.
//
// Pool is a reusable fixed-size worker pool with barrier-style parallel-for
// regions (one worker executes inline). The document-sharded sweep mode of
// internal/core schedules whole shards on it, while the samplers here split
// a single token's topic vector — the two axes of parallelism the paper
// contrasts with approximate schemes such as AD-LDA (implemented for
// comparison in internal/lda).
package parallel
