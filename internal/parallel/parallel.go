package parallel

import (
	"math"
	"sync"

	"sourcelda/internal/mathx"
)

// Pool is a reusable fixed-size worker pool supporting barrier-style
// parallel-for regions. A Pool with one worker executes regions inline.
type Pool struct {
	workers int
	tasks   chan func()
	closed  bool
	mu      sync.Mutex
}

// NewPool starts a pool with the given number of workers (minimum 1).
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tasks = make(chan func(), workers)
		for i := 0; i < workers; i++ {
			go func() {
				for fn := range p.tasks {
					fn()
				}
			}()
		}
	}
	return p
}

// Workers returns the pool size.
func (p *Pool) Workers() int { return p.workers }

// Close releases the worker goroutines. The pool must not be used after
// Close. Closing a single-worker pool is a no-op.
func (p *Pool) Close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.tasks != nil && !p.closed {
		close(p.tasks)
		p.closed = true
	}
}

// Run splits [0, n) into one contiguous chunk per worker and executes fn on
// each chunk concurrently, returning when every chunk completes (a barrier).
func (p *Pool) Run(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n == 1 {
		fn(0, n)
		return
	}
	chunks := p.workers
	if chunks > n {
		chunks = n
	}
	size := (n + chunks - 1) / chunks
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += size {
		hi := lo + size
		if hi > n {
			hi = n
		}
		wg.Add(1)
		lo, hi := lo, hi
		p.tasks <- func() {
			defer wg.Done()
			fn(lo, hi)
		}
	}
	wg.Wait()
}

// FillFunc computes unnormalized topic probabilities for the contiguous
// range [lo, hi) into out, which has length hi-lo: out[i] = P(z = lo+i | …).
// Implementations evaluate with direct slice indexing over flat state, so a
// sampler invokes one call per chunk instead of one closure call per topic.
// A FillFunc must be safe for concurrent invocation on disjoint ranges.
type FillFunc func(lo, hi int, out []float64)

// TopicSampler selects a topic index given a range filler for the per-topic
// probabilities and a uniform variate u in [0, 1). Implementations differ
// only in how the probability vector is computed and scanned.
type TopicSampler interface {
	// Sample fills the probabilities for [0, T), forms cumulative sums, and
	// returns the index selected by u·total via binary search.
	Sample(T int, fill FillFunc, u float64) int
	// Name identifies the algorithm for reporting.
	Name() string
}

// Serial is the baseline sequential sampler (Algorithm 1's SAMPLE inner
// loop).
type Serial struct {
	buf []float64
}

// NewSerial returns a serial sampler.
func NewSerial() *Serial { return &Serial{} }

// Name implements TopicSampler.
func (s *Serial) Name() string { return "serial" }

// Sample implements TopicSampler.
func (s *Serial) Sample(T int, fill FillFunc, u float64) int {
	s.buf = resize(s.buf, T)
	buf := s.buf[:T]
	fill(0, T, buf)
	var run float64
	for t := 0; t < T; t++ {
		run += buf[t]
		buf[t] = run
	}
	return searchTarget(buf, u)
}

// SimpleParallel implements Algorithm 3: each worker computes and locally
// scans a contiguous chunk, chunk totals are combined sequentially at the
// barrier, and a second parallel pass adds each chunk's offset.
type SimpleParallel struct {
	pool *Pool
	buf  []float64
	ends []float64
}

// NewSimpleParallel returns an Algorithm 3 sampler backed by pool.
func NewSimpleParallel(pool *Pool) *SimpleParallel {
	return &SimpleParallel{pool: pool, ends: make([]float64, pool.Workers())}
}

// Name implements TopicSampler.
func (s *SimpleParallel) Name() string { return "simple-parallel" }

// Sample implements TopicSampler.
func (s *SimpleParallel) Sample(T int, fill FillFunc, u float64) int {
	s.buf = resize(s.buf, T)
	buf := s.buf[:T]
	workers := s.pool.Workers()
	chunks := workers
	if chunks > T {
		chunks = T
	}
	size := (T + chunks - 1) / chunks
	nChunks := (T + size - 1) / size
	if cap(s.ends) < nChunks {
		s.ends = make([]float64, nChunks)
	}
	ends := s.ends[:nChunks]

	// Phase 1 (parallel): evaluate and locally scan each chunk.
	s.pool.Run(T, func(lo, hi int) {
		chunk := buf[lo:hi]
		fill(lo, hi, chunk)
		var run float64
		for i, v := range chunk {
			run += v
			chunk[i] = run
		}
		ends[lo/size] = run
	})
	// Phase 2 (sequential): combine chunk end values into offsets.
	var offset float64
	for c := 0; c < nChunks; c++ {
		end := ends[c]
		ends[c] = offset
		offset += end
	}
	// Phase 3 (parallel): add each chunk's offset to its items.
	s.pool.Run(T, func(lo, hi int) {
		off := ends[lo/size]
		if off == 0 {
			return
		}
		for t := lo; t < hi; t++ {
			buf[t] += off
		}
	})
	return searchTarget(buf, u)
}

// PrefixSums implements Algorithm 2: a Blelloch work-efficient scan
// (upsweep, clear, downsweep) over a power-of-two padded buffer, converted
// to inclusive sums with a final parallel pass, followed by binary search.
type PrefixSums struct {
	pool *Pool
	vals []float64
	scan []float64
}

// NewPrefixSums returns an Algorithm 2 sampler backed by pool.
func NewPrefixSums(pool *Pool) *PrefixSums { return &PrefixSums{pool: pool} }

// Name implements TopicSampler.
func (s *PrefixSums) Name() string { return "prefix-sums" }

// Sample implements TopicSampler.
func (s *PrefixSums) Sample(T int, fill FillFunc, u float64) int {
	n := nextPow2(T)
	s.vals = resize(s.vals, n)
	s.scan = resize(s.scan, n)
	vals, scan := s.vals[:n], s.scan[:n]

	// Evaluate probabilities in parallel; zero the padding.
	s.pool.Run(T, func(lo, hi int) {
		fill(lo, hi, vals[lo:hi])
		copy(scan[lo:hi], vals[lo:hi])
	})
	for t := T; t < n; t++ {
		vals[t] = 0
		scan[t] = 0
	}

	// Upsweep: for d in [0, log2 n): scan[i+2^{d+1}-1] += scan[i+2^d-1].
	for d := 1; d < n; d <<= 1 {
		stride := d << 1
		iterations := n / stride
		s.pool.Run(iterations, func(lo, hi int) {
			for it := lo; it < hi; it++ {
				i := it * stride
				scan[i+stride-1] += scan[i+d-1]
			}
		})
	}
	// Clear the root, downsweep.
	scan[n-1] = 0
	for d := n >> 1; d >= 1; d >>= 1 {
		stride := d << 1
		iterations := n / stride
		s.pool.Run(iterations, func(lo, hi int) {
			for it := lo; it < hi; it++ {
				i := it * stride
				left := scan[i+d-1]
				scan[i+d-1] = scan[i+stride-1]
				scan[i+stride-1] = left + scan[i+stride-1]
			}
		})
	}
	// Convert the exclusive scan to inclusive sums in parallel.
	s.pool.Run(T, func(lo, hi int) {
		for t := lo; t < hi; t++ {
			scan[t] += vals[t]
		}
	})
	return searchTarget(scan[:T], u)
}

// DirectFunc draws a topic for the current token straight from sparse
// bucket state, bypassing the dense probability vector entirely. ok=false
// reports degenerate (zero or non-finite) total mass, asking the sampler to
// fall back to the dense path so every kernel degrades identically.
type DirectFunc func(u float64) (topic int, ok bool)

// SparseDirect adapts a DirectFunc — the SparseLDA-style bucket-decomposed
// draw maintained by the Gibbs view — to the TopicSampler interface. The
// dense FillFunc is evaluated only on the degenerate-mass fallback, so the
// per-token cost is proportional to the token's sparsity, not to T.
type SparseDirect struct {
	direct   DirectFunc
	fallback *Serial
}

// NewSparseDirect returns a sampler that draws through direct and falls back
// to a serial dense scan on degenerate mass.
func NewSparseDirect(direct DirectFunc) *SparseDirect {
	return &SparseDirect{direct: direct, fallback: NewSerial()}
}

// Name implements TopicSampler.
func (s *SparseDirect) Name() string { return "sparse" }

// Sample implements TopicSampler.
func (s *SparseDirect) Sample(T int, fill FillFunc, u float64) int {
	if t, ok := s.direct(u); ok {
		return t
	}
	return s.fallback.Sample(T, fill, u)
}

// searchTarget maps u in [0, 1) onto the cumulative vector and
// binary-searches for the selected index. A non-positive or non-finite
// total falls back to mathx.SelectPositiveSupport over the increments — the
// same restricted-support contract rng.Categorical applies to raw weights —
// and panics when no index has positive mass: with valid priors every
// enabled topic's mass is strictly positive, so an all-zero vector means
// corrupted sampler state, not a samplable distribution.
func searchTarget(cum []float64, u float64) int {
	total := cum[len(cum)-1]
	if total > 0 && !math.IsNaN(total) && !math.IsInf(total, 0) {
		return mathx.SearchCumulative(cum, u*total)
	}
	idx, ok := mathx.SelectPositiveSupport(len(cum), u, func(i int) float64 {
		if i == 0 {
			return cum[0]
		}
		return cum[i] - cum[i-1]
	})
	if !ok {
		panic("parallel: sampler received no positive probability mass")
	}
	return idx
}

func resize(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}
