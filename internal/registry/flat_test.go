package registry

import (
	"bytes"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sourcelda"
)

// flatBundleBytes serializes a model in the flat zero-copy format for admin
// uploads and watcher drops.
func flatBundleBytes(t testing.TB, m *sourcelda.Model, name, version string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sourcelda.SaveBundleFlatNamed(&buf, m, name, version); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// mappedModel writes flat bytes to disk and loads them through the
// memory-mapped path, skipping the test when the platform cannot map.
func mappedModel(t *testing.T, data []byte) *sourcelda.Model {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.bundle")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := sourcelda.LoadBundleFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Mapped() {
		t.Skip("mmap unavailable on this platform")
	}
	return m
}

// TestPutFlatBundle: the admin API accepts a flat bundle body (sniffed by
// magic), serves it memory-mapped, and answers bit-for-bit like the same
// bytes loaded eagerly — including the topics endpoint, which materializes
// rows lazily from the mapped slab.
func TestPutFlatBundle(t *testing.T) {
	cfg := Config{BatchWindow: time.Millisecond}
	data := flatBundleBytes(t, trainModel(t, 7), "flat", "f1")
	oracle, err := sourcelda.LoadBundle(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	texts := []string{"pencil ruler notebook", "baseball umpire inning"}
	want := canonicalResponses(t, cfg, oracle, texts)

	reg := newTestRegistry(t, cfg)
	url := newHTTPServer(t, reg)
	req, err := http.NewRequest(http.MethodPut, url+"/v1/models/m", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT flat bundle: %d %s", resp.StatusCode, body)
	}
	info, err := reg.Info("m")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Mapped {
		t.Fatal("flat upload is not serving memory-mapped")
	}
	if info.Version != "f1" {
		t.Fatalf("version %q, want the bundle's embedded f1", info.Version)
	}
	for _, text := range texts {
		code, got := postInferRaw(t, url+"/v1/models/m/infer", text)
		if code != http.StatusOK {
			t.Fatalf("infer against flat model: %d %s", code, got)
		}
		if got != want[text] {
			t.Fatalf("mapped model answers differently from eager load on %q:\n%s\nwant: %s", text, got, want[text])
		}
	}
	tr, err := http.Get(url + "/v1/models/m/topics")
	if err != nil {
		t.Fatal(err)
	}
	tbody, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		t.Fatalf("topics against flat model: %d %s", tr.StatusCode, tbody)
	}
	if !strings.Contains(string(tbody), "pencil") && !strings.Contains(string(tbody), "baseball") {
		t.Fatalf("topics response carries no top words: %s", tbody)
	}
	// The listing exposes the mapped bit.
	lr, err := http.Get(url + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	lbody, _ := io.ReadAll(lr.Body)
	lr.Body.Close()
	if !strings.Contains(string(lbody), `"mapped":true`) {
		t.Fatalf("model listing does not report mapped: %s", lbody)
	}
}

// TestHotSwapUnderLoadFlat is TestHotSwapUnderLoad with both builds served
// from flat bundles: a memory-mapped A takes concurrent load, a flat-bundle
// PUT hot-swaps to B mid-flight, every response is bit-for-bit A's or B's
// answer, and the outgoing mapping survives until its session drains (A-era
// responses stay correct even though A's model was closed at swap time).
// Run with -race.
func TestHotSwapUnderLoadFlat(t *testing.T) {
	cfg := Config{BatchWindow: time.Millisecond}
	aBytes := flatBundleBytes(t, trainModel(t, 7), "m", "a")
	bBytes := flatBundleBytes(t, trainModelFree(t, 99, 1), "m", "b")
	texts := []string{
		"pencil ruler notebook",
		"baseball umpire inning glove",
		"pencil baseball paper pitcher",
		"eraser notebook paper pencil pencil",
	}
	oracleA, err := sourcelda.LoadBundle(bytes.NewReader(aBytes))
	if err != nil {
		t.Fatal(err)
	}
	oracleB, err := sourcelda.LoadBundle(bytes.NewReader(bBytes))
	if err != nil {
		t.Fatal(err)
	}
	wantA := canonicalResponses(t, cfg, oracleA, texts)
	wantB := canonicalResponses(t, cfg, oracleB, texts)
	for _, text := range texts {
		if wantA[text] == wantB[text] {
			t.Fatalf("models A and B agree on %q; the swap would be unobservable", text)
		}
	}

	reg := newTestRegistry(t, cfg)
	if _, err := reg.Load("m", "a", mappedModel(t, aBytes)); err != nil {
		t.Fatal(err)
	}
	if info, err := reg.Info("m"); err != nil || !info.Mapped {
		t.Fatalf("model A is not serving memory-mapped: %+v %v", info, err)
	}
	url := newHTTPServer(t, reg)

	type obs struct {
		text string
		body string
	}
	const perText = 30
	var wg sync.WaitGroup
	results := make(chan obs, len(texts)*perText)
	firstWave := make(chan struct{})
	var firstOnce sync.Once
	for _, text := range texts {
		wg.Add(1)
		go func(text string) {
			defer wg.Done()
			for i := 0; i < perText; i++ {
				code, body := postInferRaw(t, url+"/v1/models/m/infer", text)
				if code != http.StatusOK {
					t.Errorf("request failed during flat hot swap: %d %s", code, body)
					return
				}
				results <- obs{text: text, body: body}
				if i == 2 {
					firstOnce.Do(func() { close(firstWave) })
				}
			}
		}(text)
	}

	<-firstWave
	req, err := http.NewRequest(http.MethodPut, url+"/v1/models/m?version=b", bytes.NewReader(bBytes))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	swapBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flat swap PUT: %d %s", resp.StatusCode, swapBody)
	}

	wg.Wait()
	close(results)

	var aCount, bCount int
	for r := range results {
		switch r.body {
		case wantA[r.text]:
			aCount++
		case wantB[r.text]:
			bCount++
		default:
			t.Fatalf("response for %q matches neither model:\n%s\nA: %s\nB: %s",
				r.text, r.body, wantA[r.text], wantB[r.text])
		}
	}
	if total := aCount + bCount; total != len(texts)*perText {
		t.Fatalf("%d responses audited, want %d (requests were dropped)", total, len(texts)*perText)
	}
	if aCount == 0 {
		t.Fatal("no pre-swap responses observed; the swap raced ahead of the load")
	}
	if bCount == 0 {
		t.Fatal("no post-swap responses observed; the swap never took effect")
	}
	t.Logf("audited %d A-era and %d B-era responses across the flat swap", aCount, bCount)

	for _, text := range texts {
		code, body := postInferRaw(t, url+"/v1/models/m/infer", text)
		if code != http.StatusOK {
			t.Fatalf("post-swap request failed: %d", code)
		}
		if body != wantB[text] {
			t.Fatalf("post-swap response for %q diverges from a fresh B-only daemon:\n%s\nwant: %s",
				text, body, wantB[text])
		}
	}

	// The outgoing mapped session drains and releases; the incoming build is
	// itself mapped (the PUT path spools to disk and maps).
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := reg.Info("m")
		if err != nil {
			t.Fatal(err)
		}
		if info.OpenSessions == 1 {
			if info.Version != "b" || info.Stats.Swaps != 1 || !info.Mapped {
				t.Fatalf("post-drain info: %+v", info)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old mapped session never drained: %d open", info.OpenSessions)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestWatcherLoadsFlatBundle: a flat bundle dropped into the watched
// directory auto-loads memory-mapped, a rewrite hot-swaps it, and removal
// unloads it — same lifecycle as JSON bundles.
func TestWatcherLoadsFlatBundle(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, Config{})
	w := NewWatcher(reg, dir, time.Second)
	m := trainModel(t, 7)
	base := time.Now().Add(-time.Hour)

	writeBundleFile(t, dir, "alpha", flatBundleBytes(t, m, "alpha", "f1"), base)
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	info, err := reg.Info("alpha")
	if err != nil || info.Version != "f1" {
		t.Fatalf("after drop: %+v %v", info, err)
	}
	if !info.Mapped {
		t.Fatal("watcher-loaded flat bundle is not serving memory-mapped")
	}
	if _, err := reg.Infer(t.Context(), "alpha", []string{"pencil ruler"}); err != nil {
		t.Fatalf("inference against watched flat model: %v", err)
	}

	writeBundleFile(t, dir, "alpha", flatBundleBytes(t, m, "alpha", "f2"), base.Add(time.Minute))
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if info, _ := reg.Info("alpha"); info.Version != "f2" || info.Stats.Swaps != 1 {
		t.Fatalf("after rewrite: version %q swaps %d", info.Version, info.Stats.Swaps)
	}

	if err := os.Remove(filepath.Join(dir, "alpha"+BundleExt)); err != nil {
		t.Fatal(err)
	}
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Info("alpha"); err == nil {
		t.Fatal("flat model still loaded after its file was removed")
	}
}

// TestWatcherDetectsSameSecondSameSizeRewrite is the size+mtime blind spot:
// a rewrite that lands within the filesystem's timestamp granularity and
// happens to keep the byte count identical must still hot-swap. The watcher
// marks freshly-stamped files racy and confirms "unchanged" against a content
// fingerprint, so the second scan sees through the identical stat.
func TestWatcherDetectsSameSecondSameSizeRewrite(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, Config{})
	w := NewWatcher(reg, dir, time.Second)
	m := trainModel(t, 7)
	// Same model, same-length version strings → byte-identical sizes.
	a := flatBundleBytes(t, m, "alpha", "va")
	b := flatBundleBytes(t, m, "alpha", "vb")
	if len(a) != len(b) {
		t.Fatalf("fixture bundles differ in size (%d vs %d); the test needs identical sizes", len(a), len(b))
	}
	if bytes.Equal(a, b) {
		t.Fatal("fixture bundles are identical; the rewrite would be a no-op")
	}

	// Both writes carry the same truncated-to-second timestamp — what two
	// rapid rewrites look like on a filesystem with one-second mtimes.
	stamp := time.Now().Truncate(time.Second)
	writeBundleFile(t, dir, "alpha", a, stamp)
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if info, err := reg.Info("alpha"); err != nil || info.Version != "va" {
		t.Fatalf("initial load: %+v %v", info, err)
	}
	writeBundleFile(t, dir, "alpha", b, stamp)
	if fi, err := os.Stat(filepath.Join(dir, "alpha"+BundleExt)); err != nil || fi.Size() != int64(len(a)) {
		t.Fatalf("rewrite changed the observable stat: %v %v", fi, err)
	}
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	info, err := reg.Info("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != "vb" || info.Stats.Swaps != 1 {
		t.Fatalf("same-second same-size rewrite missed: version %q swaps %d", info.Version, info.Stats.Swaps)
	}

	// An untouched file does not keep re-swapping once the fingerprint
	// matches, racy or not.
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if info, _ := reg.Info("alpha"); info.Stats.Swaps != 1 {
		t.Fatalf("unchanged racy file re-swapped: %d swaps", info.Stats.Swaps)
	}
}
