package registry

import (
	"context"
	"time"

	"sourcelda"
	"sourcelda/internal/obs"
)

// job is one document awaiting inference; reply is buffered so the
// dispatcher never blocks on a caller that gave up. ctx is the submitting
// request's context: the dispatcher drops jobs whose context is already
// done (caller disconnected, or its request was shed mid-submit) instead of
// paying full inference for a reply nobody will read.
//
// enqueued/dequeued bracket the document's time in the queue; trace is the
// submitting request's span context (nil when the request is untraced), so
// the dispatcher can attribute queue-wait, batch-assembly and inference
// time back to the request that paid it.
type job struct {
	text  string
	reply chan reply
	ctx   context.Context

	enqueued time.Time
	dequeued time.Time
	trace    *obs.Trace
}

// reply carries one scored document back to its caller, together with the
// model version that actually scored it. Around a hot swap, the version a
// handler read before queueing and the version the dispatcher scored with
// can differ; responses must be rendered against the scoring version, never
// the stale one (labels and mixture widths may not match otherwise).
type reply struct {
	doc *sourcelda.DocumentInference
	by  *version
	err error
}

// Scored is one document's inference result plus the model build that
// produced it.
type Scored struct {
	// Doc is nil when the document had no in-vocabulary tokens.
	Doc *sourcelda.DocumentInference
	// Model and ModelVersion identify the build that scored the document —
	// around a hot swap, documents of one request may legitimately differ.
	Model        *sourcelda.Model
	ModelVersion string
}

// Infer scores the documents against the named model ("" = default): it
// submits them to the model's dispatcher and waits for every reply (or the
// request context). A trace attached to ctx with obs.WithTrace accumulates
// the documents' per-stage durations. Errors: ErrModelNotFound,
// ErrOverloaded (queue full), ErrUnloaded (model removed while queued), or
// the context's error.
func (r *Registry) Infer(ctx context.Context, name string, texts []string) ([]Scored, error) {
	e, err := r.lookup(name)
	if err != nil {
		return nil, err
	}
	return e.enqueue(ctx, obs.TraceFrom(ctx), texts)
}

// enqueue submits the documents to the entry's dispatcher and collects the
// replies. tr is the submitting request's span (nil when untraced); the
// HTTP path hands it over directly so the hot path never pays a context
// injection. On any early return the derived context is canceled, which
// tells the dispatcher to drop this request's already-queued jobs unscored.
func (e *entry) enqueue(reqCtx context.Context, tr *obs.Trace, texts []string) ([]Scored, error) {
	ctx, cancel := context.WithCancel(reqCtx)
	defer cancel()
	replies := make([]chan reply, len(texts))
	for i, t := range texts {
		ch := make(chan reply, 1)
		replies[i] = ch
		j := job{text: t, reply: ch, ctx: ctx, enqueued: time.Now(), trace: tr}
		if err := e.submit(j); err != nil {
			return nil, err
		}
	}
	out := make([]Scored, len(texts))
	for i, ch := range replies {
		select {
		case rep := <-ch:
			if rep.err != nil {
				return nil, rep.err
			}
			out[i] = Scored{Doc: rep.doc, Model: rep.by.model, ModelVersion: rep.by.version}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// submit enqueues one job unless the entry is stopped (unloaded) or the
// queue is full. Holding qmu.RLock across the send is what makes stop()'s
// final drain complete: once stop() has the write lock, no job can slip
// into the channel afterwards.
func (e *entry) submit(j job) error {
	e.qmu.RLock()
	defer e.qmu.RUnlock()
	if e.stopped {
		return ErrUnloaded
	}
	select {
	case e.jobs <- j:
		return nil
	default:
		return ErrOverloaded
	}
}

// run is the entry's dispatcher loop: it pulls the first pending document,
// waits up to BatchWindow for more (from any caller), scores the coalesced
// batch against the currently active version, and scatters results. On
// shutdown it fails whatever is still queued with ErrUnloaded so no caller
// hangs, then signals drained.
func (e *entry) run(ctx context.Context) {
	defer close(e.drained)
	for {
		var first job
		select {
		case <-ctx.Done():
			e.failPending()
			return
		case first = <-e.jobs:
			first.dequeued = time.Now()
		}
		batch := append(make([]job, 0, e.cfg.MaxBatch), first)
		if e.cfg.BatchWindow > 0 {
			timer := time.NewTimer(e.cfg.BatchWindow)
		collect:
			for len(batch) < e.cfg.MaxBatch {
				select {
				case j := <-e.jobs:
					j.dequeued = time.Now()
					batch = append(batch, j)
				case <-timer.C:
					break collect
				}
			}
			timer.Stop()
		} else {
		drain:
			for len(batch) < e.cfg.MaxBatch {
				select {
				case j := <-e.jobs:
					j.dequeued = time.Now()
					batch = append(batch, j)
				default:
					break drain
				}
			}
		}
		// Drop jobs whose request is already gone — a shed or disconnected
		// caller must not cost a full Gibbs run whose reply nobody reads.
		live := batch[:0]
		for _, j := range batch {
			if j.ctx.Err() == nil {
				live = append(live, j)
			}
		}
		if len(live) == 0 {
			continue
		}
		texts := make([]string, len(live))
		for i, j := range live {
			texts[i] = j.text
		}
		// assembled marks the batch seal; everything between a job's dequeue
		// and this point is batch-assembly time (waiting for co-batched
		// documents), and the score call below is its inference time.
		assembled := time.Now()
		results, by := e.score(texts)
		inferDur := time.Since(assembled)
		if results == nil {
			for _, j := range live {
				j.reply <- reply{err: ErrUnloaded}
			}
			continue
		}
		e.metrics.recordBatch(len(live))
		for i, j := range live {
			queueWait := j.dequeued.Sub(j.enqueued)
			assembly := assembled.Sub(j.dequeued)
			e.metrics.recordStage(obs.StageQueueWait, queueWait)
			e.metrics.recordStage(obs.StageBatchAssembly, assembly)
			e.metrics.recordStage(obs.StageInfer, inferDur)
			j.trace.Add(obs.StageQueueWait, queueWait)
			j.trace.Add(obs.StageBatchAssembly, assembly)
			j.trace.Add(obs.StageInfer, inferDur)
			j.reply <- reply{doc: results[i], by: by}
		}
	}
}

// score runs one batch against the entry's active version, pinning the
// session so a concurrent hot swap drains behind it instead of tearing it
// down mid-batch. If the version it read was swapped out AND fully drained
// between the load and the pin — possible only when another version is
// already active — it retries against the replacement. Returns nil only
// when no version is active (the entry is being unloaded).
func (e *entry) score(texts []string) ([]*sourcelda.DocumentInference, *version) {
	for {
		v := e.current.Load()
		if v == nil {
			return nil, nil
		}
		if !v.inferrer.Acquire() {
			continue
		}
		results := v.inferrer.InferBatch(texts)
		v.inferrer.Release()
		return results, v
	}
}

// failPending replies ErrUnloaded to every job still queued at shutdown.
// stop() sets stopped before canceling the context, so by the time this
// runs the channel can no longer grow and a simple drain is complete.
func (e *entry) failPending() {
	for {
		select {
		case j := <-e.jobs:
			j.reply <- reply{err: ErrUnloaded}
		default:
			return
		}
	}
}
