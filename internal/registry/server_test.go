package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sourcelda"
)

// trainModel fits a tiny cleanly-separable model and round-trips it through
// a bundle (the full deployment path: train → SaveBundle → LoadBundle).
func trainModel(t testing.TB, seed int64) *sourcelda.Model {
	return trainModelFree(t, seed, 0)
}

// trainModelFree is trainModel with free topics: a nonzero count yields a
// model with a different topic set (and mixture width) over the same
// vocabulary — structurally distinguishable from trainModel's output, which
// hot-swap tests need.
func trainModelFree(t testing.TB, seed int64, freeTopics int) *sourcelda.Model {
	t.Helper()
	b := sourcelda.NewCorpusBuilder()
	for i := 0; i < 10; i++ {
		b.AddDocument("school", "pencil ruler eraser pencil notebook paper")
		b.AddDocument("ball", "baseball umpire pitcher baseball inning glove")
	}
	b.AddKnowledgeArticle("School Supplies",
		strings.Repeat("pencil pencil ruler eraser notebook paper paper ", 20))
	b.AddKnowledgeArticle("Baseball",
		strings.Repeat("baseball baseball umpire pitcher inning glove ", 20))
	c, k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	m, err := sourcelda.Fit(c, k, sourcelda.Options{
		FreeTopics: freeTopics,
		Lambda:     &sourcelda.LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 60,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sourcelda.SaveBundle(&buf, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := sourcelda.LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// bundleBytes serializes a model for admin-API uploads.
func bundleBytes(t testing.TB, m *sourcelda.Model, name, version string) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := sourcelda.SaveBundleNamed(&buf, m, name, version); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer stands up a registry with the default model preloaded
// (train → bundle → load → serve) and returns the running httptest server
// plus the registry for direct assertions.
func newTestServer(t testing.TB, cfg Config) (*httptest.Server, *Registry) {
	t.Helper()
	reg := newTestRegistry(t, cfg)
	if _, err := reg.Load(reg.DefaultModel(), "v1", trainModel(t, 7)); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg))
	t.Cleanup(ts.Close) // before reg.Close: handlers drain first
	return ts, reg
}

// newTestRegistry builds an empty registry whose Close runs at cleanup.
func newTestRegistry(t testing.TB, cfg Config) *Registry {
	t.Helper()
	reg := New(cfg)
	t.Cleanup(reg.Close)
	return reg
}

func postInfer(t testing.TB, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("status %d: non-JSON response %q", resp.StatusCode, data)
	}
	return resp.StatusCode, out
}

func TestEndToEndInfer(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	code, out := postInfer(t, ts.URL+"/v1/infer", `{"text":"pencil ruler notebook eraser pencil"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	result, ok := out["result"].(map[string]any)
	if !ok {
		t.Fatalf("no result object: %v", out)
	}
	top := result["top_topics"].([]any)
	if len(top) == 0 {
		t.Fatal("no top topics")
	}
	first := top[0].(map[string]any)
	if first["label"] != "School Supplies" {
		t.Fatalf("school text tagged %v", first["label"])
	}
	if first["source"] != true {
		t.Fatal("top topic should be a source topic")
	}
	mixture := result["mixture"].([]any)
	var sum float64
	for _, p := range mixture {
		sum += p.(float64)
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("mixture sums to %v", sum)
	}
	if result["known_tokens"].(float64) != 5 {
		t.Fatalf("known_tokens = %v", result["known_tokens"])
	}
}

// TestNamedRouteAliasesDefault pins the backward-compatibility contract:
// /v1/infer and /v1/models/{default}/infer are the same model and return
// identical bytes for the same text.
func TestNamedRouteAliasesDefault(t *testing.T) {
	ts, reg := newTestServer(t, Config{})
	body := `{"text":"pencil ruler notebook"}`
	code1, unnamed := postInfer(t, ts.URL+"/v1/infer", body)
	code2, named := postInfer(t, ts.URL+"/v1/models/"+reg.DefaultModel()+"/infer", body)
	if code1 != 200 || code2 != 200 {
		t.Fatalf("statuses %d/%d", code1, code2)
	}
	if fmt.Sprint(unnamed) != fmt.Sprint(named) {
		t.Fatalf("default alias diverged from named route:\n%v\n%v", unnamed, named)
	}
}

func TestBatchEndpointAndDeterminism(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	body := `{"documents":["baseball umpire glove","pencil paper ruler"]}`
	code, out := postInfer(t, ts.URL+"/v1/infer", body)
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, out)
	}
	results := out["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("%d results", len(results))
	}
	// The same document must yield the same mixture on every request — and
	// the same mixture whether sent alone or inside a batch.
	code2, single := postInfer(t, ts.URL+"/v1/infer", `{"text":"baseball umpire glove"}`)
	if code2 != http.StatusOK {
		t.Fatalf("status %d", code2)
	}
	batchMix := results[0].(map[string]any)["mixture"].([]any)
	singleMix := single["result"].(map[string]any)["mixture"].([]any)
	for i := range batchMix {
		if batchMix[i] != singleMix[i] {
			t.Fatal("batch and single-document responses diverged for the same text")
		}
	}
}

// TestConcurrentInference: concurrent POSTs (exercising the micro-batcher
// and the shared worker pool) all succeed and deterministic responses hold
// under contention. Run with -race.
func TestConcurrentInference(t *testing.T) {
	ts, _ := newTestServer(t, Config{
		Infer:       sourcelda.InferOptions{Workers: 4},
		BatchWindow: time.Millisecond,
	})
	texts := []string{
		"pencil ruler notebook",
		"baseball umpire inning glove",
		"pencil baseball paper pitcher",
		"eraser eraser notebook paper pencil",
	}
	const perText = 8
	type reply struct {
		text    string
		mixture string
		err     error
	}
	var wg sync.WaitGroup
	replies := make(chan reply, len(texts)*perText)
	for _, text := range texts {
		for i := 0; i < perText; i++ {
			wg.Add(1)
			go func(text string) {
				defer wg.Done()
				resp, err := http.Post(ts.URL+"/v1/infer", "application/json",
					strings.NewReader(fmt.Sprintf(`{"text":%q}`, text)))
				if err != nil {
					replies <- reply{err: err}
					return
				}
				defer resp.Body.Close()
				data, _ := io.ReadAll(resp.Body)
				if resp.StatusCode != http.StatusOK {
					replies <- reply{err: fmt.Errorf("status %d: %s", resp.StatusCode, data)}
					return
				}
				var out struct {
					Result struct {
						Mixture []float64 `json:"mixture"`
					} `json:"result"`
				}
				if err := json.Unmarshal(data, &out); err != nil {
					replies <- reply{err: err}
					return
				}
				replies <- reply{text: text, mixture: fmt.Sprint(out.Result.Mixture)}
			}(text)
		}
	}
	wg.Wait()
	close(replies)
	seen := make(map[string]string)
	for r := range replies {
		if r.err != nil {
			t.Fatal(r.err)
		}
		if prev, ok := seen[r.text]; ok && prev != r.mixture {
			t.Fatalf("nondeterministic mixture for %q under concurrency", r.text)
		}
		seen[r.text] = r.mixture
	}
	if len(seen) != len(texts) {
		t.Fatalf("got %d distinct texts back, want %d", len(seen), len(texts))
	}
}

func TestInferRejections(t *testing.T) {
	ts, _ := newTestServer(t, Config{MaxDocs: 2})
	cases := []struct {
		name, body string
		wantStatus int
	}{
		{"malformed", `{"text": `, http.StatusBadRequest},
		{"empty object", `{}`, http.StatusBadRequest},
		{"both fields", `{"text":"a","documents":["b"]}`, http.StatusBadRequest},
		{"empty text", `{"text":"   "}`, http.StatusBadRequest},
		{"empty documents", `{"documents":[]}`, http.StatusBadRequest},
		{"empty document entry", `{"documents":["pencil",""]}`, http.StatusBadRequest},
		{"too many documents", `{"documents":["a","b","c"]}`, http.StatusBadRequest},
		{"unknown field", `{"txet":"pencil"}`, http.StatusBadRequest},
		{"trailing garbage", `{"text":"pencil"} extra`, http.StatusBadRequest},
		{"unknown words only", `{"text":"zzz qqq xyzzy"}`, http.StatusUnprocessableEntity},
		{"unknown words in batch", `{"documents":["pencil ruler","zzz qqq"]}`, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, out := postInfer(t, ts.URL+"/v1/infer", tc.body)
			if code != tc.wantStatus {
				t.Fatalf("status %d, want %d (%v)", code, tc.wantStatus, out)
			}
			if _, ok := out["error"]; !ok {
				t.Fatalf("no error message in %v", out)
			}
		})
	}
	// Wrong method (the pattern mux answers 405 with an Allow header).
	resp, err := http.Get(ts.URL + "/v1/infer")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/infer: status %d", resp.StatusCode)
	}
	// Unknown model → 404 naming what is loaded.
	code, out := postInfer(t, ts.URL+"/v1/models/nope/infer", `{"text":"pencil"}`)
	if code != http.StatusNotFound {
		t.Fatalf("unknown model: status %d (%v)", code, out)
	}
	if msg := out["error"].(string); !strings.Contains(msg, `"nope"`) || !strings.Contains(msg, "default") {
		t.Fatalf("unhelpful 404 message %q", msg)
	}
}

// brokenReader fails mid-body with a transport-style error — the "client
// disconnected while uploading" shape, which is not an oversized body.
type brokenReader struct{}

func (brokenReader) Read([]byte) (int, error) { return 0, errors.New("connection reset") }

// TestBodyReadErrorStatuses is the regression test for the blanket 413: the
// handler used to map EVERY body-read failure to 413 Request Entity Too
// Large. Only *http.MaxBytesError is that case; a mid-upload failure is a
// 400 (or 499 when the client is already gone), never a claim about size.
func TestBodyReadErrorStatuses(t *testing.T) {
	ts, reg := newTestServer(t, Config{MaxBody: 128})
	srv := NewServer(reg)

	// Genuinely oversized body → 413 over the real HTTP path.
	big := fmt.Sprintf(`{"text":"%s"}`, strings.Repeat("pencil ", 200))
	code, out := postInfer(t, ts.URL+"/v1/infer", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413 (%v)", code, out)
	}

	// A body that fails mid-read for transport reasons → 400, not 413.
	req := httptest.NewRequest(http.MethodPost, "/v1/infer", brokenReader{})
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("broken body: status %d, want 400 (%s)", rec.Code, rec.Body)
	}

	// Same failure with the request context already canceled (the client
	// hung up) → 499, the client-closed-request convention.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req = httptest.NewRequest(http.MethodPost, "/v1/infer", brokenReader{}).WithContext(ctx)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Fatalf("canceled client: status %d, want 499 (%s)", rec.Code, rec.Body)
	}
}

func TestTopicsAndHealth(t *testing.T) {
	ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/v1/topics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var topics struct {
		Model   string `json:"model"`
		Version string `json:"version"`
		Topics  []struct {
			Index    int      `json:"index"`
			Label    string   `json:"label"`
			Source   bool     `json:"source"`
			TopWords []string `json:"top_words"`
		} `json:"topics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&topics); err != nil {
		t.Fatal(err)
	}
	if topics.Model != "default" || topics.Version != "v1" {
		t.Fatalf("identity %q/%q", topics.Model, topics.Version)
	}
	if len(topics.Topics) != 2 {
		t.Fatalf("%d topics", len(topics.Topics))
	}
	labels := map[string]bool{}
	for i, tp := range topics.Topics {
		if tp.Index != i {
			t.Fatalf("topics not in model order: %v", topics.Topics)
		}
		if !tp.Source || len(tp.TopWords) == 0 {
			t.Fatalf("topic %d malformed: %+v", i, tp)
		}
		labels[tp.Label] = true
	}
	if !labels["School Supplies"] || !labels["Baseball"] {
		t.Fatalf("labels %v", labels)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "ok" || health["topics"].(float64) != 2 {
		t.Fatalf("health %v", health)
	}
	if health["models"].(float64) != 1 || health["default_model"] != "default" {
		t.Fatalf("health %v", health)
	}
}

// TestBackendIDHeader: with Config.BackendID set, every response — success,
// error, and non-inference routes alike — carries the replica's identity as
// an X-Backend header, so a gateway can attribute answers to backends.
// Without it, the header is absent.
func TestBackendIDHeader(t *testing.T) {
	reg := newTestRegistry(t, Config{BackendID: "replica-7"})
	if _, err := reg.Load(reg.DefaultModel(), "v1", trainModel(t, 7)); err != nil {
		t.Fatal(err)
	}
	url := newHTTPServer(t, reg)
	checks := []struct {
		method, path, body string
		wantCode           int
	}{
		{"POST", "/v1/infer", `{"text":"pencil ruler"}`, 200},
		{"POST", "/v1/models/nosuch/infer", `{"text":"pencil"}`, 404},
		{"GET", "/v1/topics", "", 200},
		{"GET", "/healthz", "", 200},
		{"GET", "/readyz", "", 200},
		{"GET", "/metrics", "", 200},
	}
	for _, c := range checks {
		req, err := http.NewRequest(c.method, url+c.path, strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != c.wantCode {
			t.Fatalf("%s %s: status %d, want %d", c.method, c.path, resp.StatusCode, c.wantCode)
		}
		if got := resp.Header.Get("X-Backend"); got != "replica-7" {
			t.Errorf("%s %s: X-Backend = %q, want %q", c.method, c.path, got, "replica-7")
		}
	}

	// Default configuration: no identity, no header.
	ts, _ := newTestServer(t, Config{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Backend"); got != "" {
		t.Errorf("X-Backend = %q without BackendID, want absent", got)
	}
}
