package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sourcelda"
)

// fitLearnRuntime trains a warm chain over the standard two-topic fixture.
func fitLearnRuntime(t testing.TB, seed int64) *sourcelda.Runtime {
	t.Helper()
	b := sourcelda.NewCorpusBuilder()
	for i := 0; i < 10; i++ {
		b.AddDocument("school", "pencil ruler eraser pencil notebook paper")
		b.AddDocument("ball", "baseball umpire pitcher baseball inning glove")
	}
	b.AddKnowledgeArticle("School Supplies",
		strings.Repeat("pencil pencil ruler eraser notebook paper paper ", 20))
	b.AddKnowledgeArticle("Baseball",
		strings.Repeat("baseball baseball umpire pitcher inning glove ", 20))
	c, k, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := sourcelda.FitRuntime(c, k, sourcelda.Options{
		FreeTopics: 1,
		Lambda:     &sourcelda.LambdaPrior{Fixed: true, Lambda: 1},
		Iterations: 40,
		Seed:       seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rt.Close() })
	return rt
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLearnerEndToEnd is the continuous-learning acceptance test: a served
// model absorbs a document stream over POST /feed while concurrent infer
// load runs against it; the learner republishes, the watcher hot-swaps, no
// request fails across the swap, the post-swap model's held-out perplexity
// on the streamed documents improves over the pre-feed chain, and digest
// lineage survives both the incremental appends and the compaction retrain.
func TestLearnerEndToEnd(t *testing.T) {
	rt := fitLearnRuntime(t, 21)
	digest := rt.ChainDigest()

	stream := []string{
		"pencil pencil baseball ruler umpire notebook pitcher paper glove eraser",
		"baseball pencil inning ruler glove notebook umpire paper pitcher eraser",
	}
	p0, err := rt.HeldOutPerplexity(stream, 30, 10, 99)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	reg := New(Config{DefaultModel: "learn"})
	defer reg.Close()
	if err := reg.AttachLearner("learn", rt, LearnerConfig{
		ModelsDir:      dir,
		QueueSize:      64,
		RepublishEvery: 6,
		CompactAfter:   10,
		CompactSweeps:  5,
		FoldInSweeps:   5,
	}); err != nil {
		t.Fatal(err)
	}

	// The attach published an initial bundle synchronously; one scan serves it.
	w := NewWatcher(reg, dir, 100*time.Millisecond)
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Model("learn"); err != nil {
		t.Fatalf("initial publish not serving: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()

	// Concurrent inference load for the whole feed/republish/swap window.
	var failed atomic.Uint64
	var served atomic.Uint64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := []byte(`{"text": "pencil ruler baseball umpire notebook"}`)
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/models/learn/infer", "application/json", bytes.NewReader(body))
				if err != nil {
					failed.Add(1)
					continue
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
				} else {
					served.Add(1)
				}
			}
		}()
	}

	// Stream documents through the feed endpoint until the learner has
	// republished at least twice (so at least one republish lands while the
	// infer load is running against an already-swapped build). 429 is
	// backpressure, not failure: honor Retry-After and resend.
	feedBody, _ := json.Marshal(map[string]any{"documents": stream})
	for fed := 0; fed < 10; {
		resp, err := http.Post(ts.URL+"/v1/models/learn/feed", "application/json", bytes.NewReader(feedBody))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusAccepted:
			fed++
		case http.StatusTooManyRequests:
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("feed returned %d", resp.StatusCode)
		}
	}

	waitFor(t, "republish", func() bool {
		fi, err := reg.FeedInfo("learn")
		return err == nil && fi.Republishes >= 2 && fi.QueueDepth == 0
	})
	// The attach-time bundle is already version "feed-0", so the version
	// prefix alone can't prove a swap — wait for the swap counter while the
	// infer load is still running, so the zero-failures assertion below
	// genuinely spans a hot swap.
	waitFor(t, "hot swap to a republished version", func() bool {
		mi, err := reg.Info("learn")
		return err == nil && mi.Stats.Swaps >= 1 && strings.HasPrefix(mi.Version, "feed-") && mi.Version != "feed-0"
	})

	close(stop)
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d inference requests failed across the hot swap (%d served)", n, served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("no inference requests served during the feed window")
	}

	fi, err := reg.FeedInfo("learn")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Docs != 20 || fi.Shed != 0 {
		t.Fatalf("feed stats docs=%d shed=%d, want 20 and 0", fi.Docs, fi.Shed)
	}
	if fi.Compactions < 1 {
		t.Fatal("compaction never ran")
	}

	// Digest lineage: the incrementally updated chain, its compaction
	// retrain, and the served bundle all carry the training digest.
	if rt.ChainDigest() != digest {
		t.Fatalf("chain digest drifted %s -> %s", digest, rt.ChainDigest())
	}
	mi, err := reg.Info("learn")
	if err != nil {
		t.Fatal(err)
	}
	if mi.Bundle.ChainDigest != digest {
		t.Fatalf("served bundle digest %s, want chain lineage %s", mi.Bundle.ChainDigest, digest)
	}
	if mi.Stats.Swaps < 1 {
		t.Fatal("watcher never hot-swapped the served model")
	}

	// The fed chain must explain its own stream better than the pre-feed
	// chain did.
	p1, err := rt.HeldOutPerplexity(stream, 30, 10, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !(p1 < p0) {
		t.Fatalf("streamed docs' perplexity did not improve: before %v after %v", p0, p1)
	}
}

func TestFeedEndpointStatuses(t *testing.T) {
	rt := fitLearnRuntime(t, 7)
	dir := t.TempDir()
	reg := New(Config{})
	defer reg.Close()

	// A model without a learner answers 409; an unknown model 404.
	if _, err := reg.Load("static", "v1", trainModel(t, 7)); err != nil {
		t.Fatal(err)
	}
	if err := reg.AttachLearner("learn", rt, LearnerConfig{ModelsDir: dir, QueueSize: 2}); err != nil {
		t.Fatal(err)
	}
	w := NewWatcher(reg, dir, time.Second)
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(reg))
	defer ts.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	if resp := post("/v1/models/nope/feed", `{"text": "pencil"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: %d, want 404", resp.StatusCode)
	}
	if resp := post("/v1/models/static/feed", `{"text": "pencil"}`); resp.StatusCode != http.StatusConflict {
		t.Fatalf("learner-less model: %d, want 409", resp.StatusCode)
	}
	if resp := post("/v1/models/learn/feed", `{"documents": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: %d, want 400", resp.StatusCode)
	}
	resp := post("/v1/models/learn/feed", `{"text": "pencil ruler eraser"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("feed: %d, want 202", resp.StatusCode)
	}
	var accepted struct {
		Accepted int `json:"accepted"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&accepted); err != nil {
		t.Fatal(err)
	}
	if accepted.Accepted != 1 {
		t.Fatalf("accepted %d docs, want 1", accepted.Accepted)
	}
}

// TestLearnerBackpressure drives the ingest queue to capacity and checks
// the whole-batch 429 path: Retry-After on the response, the rejection
// counted under srcldad_feed_shed_total, and no partial acceptance.
func TestLearnerBackpressure(t *testing.T) {
	rt := fitLearnRuntime(t, 3)
	reg := New(Config{})
	defer reg.Close()
	if err := reg.AttachLearner("learn", rt, LearnerConfig{
		ModelsDir: t.TempDir(),
		QueueSize: 4,
	}); err != nil {
		t.Fatal(err)
	}

	// Saturate: the updater drains at most one batch at a time, so pushing
	// far more than QueueSize from several goroutines must shed at least one
	// batch wholesale.
	var shedSeen atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				err := reg.Feed("learn", []string{"pencil ruler", "baseball glove", "eraser paper"})
				if errors.Is(err, ErrOverloaded) {
					shedSeen.Store(true)
				} else if err != nil {
					t.Errorf("feed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if !shedSeen.Load() {
		t.Fatal("queue of 4 absorbed 480 documents without shedding")
	}
	waitFor(t, "queue drain", func() bool {
		fi, err := reg.FeedInfo("learn")
		return err == nil && fi.QueueDepth == 0
	})
	fi, err := reg.FeedInfo("learn")
	if err != nil {
		t.Fatal(err)
	}
	if fi.Shed == 0 || fi.Shed%3 != 0 {
		t.Fatalf("shed %d documents, want a nonzero multiple of the batch size 3", fi.Shed)
	}
	if (fi.Docs+fi.Shed)%3 != 0 {
		t.Fatalf("docs %d + shed %d is not whole batches", fi.Docs, fi.Shed)
	}

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	out := buf.String()
	for _, series := range []string{
		"srcldad_feed_docs_total{model=\"learn\"}",
		"srcldad_feed_shed_total{model=\"learn\"}",
		"srcldad_feed_republish_total{model=\"learn\"}",
		"srcldad_feed_update_seconds_count{model=\"learn\"}",
		"srcldad_feed_queue_capacity{model=\"learn\"} 4",
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("metrics missing %s\n%s", series, out)
		}
	}

	// Feeding a model after its learner is gone answers ErrNoLearner; a
	// second learner under the same name is rejected while one is attached.
	if err := reg.AttachLearner("learn", rt, LearnerConfig{ModelsDir: t.TempDir()}); err == nil {
		t.Fatal("duplicate learner accepted")
	}
}

// TestLearnerCloseStopsFeeding pins shutdown: Close stops the updater, and
// feeding afterwards reports the learner gone rather than blocking.
func TestLearnerCloseStopsFeeding(t *testing.T) {
	rt := fitLearnRuntime(t, 5)
	reg := New(Config{})
	if err := reg.AttachLearner("learn", rt, LearnerConfig{ModelsDir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Feed("learn", []string{"pencil ruler"}); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if err := reg.Feed("learn", []string{"pencil"}); !errors.Is(err, ErrNoLearner) {
		t.Fatalf("feed after close: %v, want ErrNoLearner", err)
	}
	if err := reg.AttachLearner("learn2", rt, LearnerConfig{ModelsDir: t.TempDir()}); !errors.Is(err, ErrClosed) {
		t.Fatalf("attach after close: %v, want ErrClosed", err)
	}
}
