package registry

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// fuzzSeeds are representative /v1/infer bodies: valid forms, every
// rejection class, and truncation/overflow shapes.
var fuzzSeeds = []string{
	`{"text":"pencil ruler"}`,
	`{"documents":["pencil","baseball umpire"]}`,
	`{"text":""}`,
	`{"documents":[]}`,
	`{"documents":["", "a"]}`,
	`{"text":"a","documents":["b"]}`,
	`{"text": `,
	`{}`,
	`[]`,
	`null`,
	`"text"`,
	`{"text":"a"} trailing`,
	`{"unknown":"field"}`,
	`{"text":123}`,
	`{"documents":"not an array"}`,
	"\x00\xff\xfe",
	``,
}

// FuzzDecodeInferRequest asserts the request decoder never panics and never
// accepts an empty document set.
func FuzzDecodeInferRequest(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, body string) {
		texts, single, err := decodeInferRequest([]byte(body), 8)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if len(texts) == 0 {
			t.Fatal("decoder accepted a request with no documents")
		}
		if len(texts) > 8 {
			t.Fatalf("decoder accepted %d documents past the limit", len(texts))
		}
		if single && len(texts) != 1 {
			t.Fatal("single-text form decoded to multiple documents")
		}
		for i, text := range texts {
			if strings.TrimSpace(text) == "" {
				t.Fatalf("decoder accepted blank document %d", i)
			}
		}
	})
}

// FuzzInferEndpoint drives the full POST /v1/infer handler with arbitrary
// bodies: it must never panic, and must answer 4xx — never 5xx — for any
// body that does not decode to scoreable documents. One served model is
// shared by every iteration (training per-iteration would dominate the
// fuzz budget).
func FuzzInferEndpoint(f *testing.F) {
	_, reg := newTestServer(f, Config{})
	srv := NewServer(reg)
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Add(`{"text":"zzz unknown words only"}`)
	f.Fuzz(func(t *testing.T, body string) {
		req := httptest.NewRequest(http.MethodPost, "/v1/infer", strings.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("5xx (%d) for body %q: %s", rec.Code, body, rec.Body.String())
		}
		if rec.Code != http.StatusOK {
			if code := rec.Code; code < 400 || code >= 500 {
				t.Fatalf("non-4xx rejection %d for body %q", code, body)
			}
		}
	})
}

// FuzzPutModel drives the bundle-upload admin endpoint with arbitrary
// bodies: never a panic, never a 5xx, and garbage never loads a model.
func FuzzPutModel(f *testing.F) {
	reg := New(Config{})
	f.Cleanup(reg.Close)
	srv := NewServer(reg)
	f.Add([]byte("not a bundle"))
	f.Add([]byte(`{"version":1,"kind":"bundle"}`))
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00}) // truncated gzip header
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPut, "/v1/models/fuzzed", strings.NewReader(string(body)))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code >= 500 {
			t.Fatalf("5xx (%d) for bundle %q", rec.Code, body)
		}
		if rec.Code >= 200 && rec.Code < 300 {
			t.Fatalf("fuzzed bytes loaded as a model (%d): %q", rec.Code, body)
		}
	})
}
