// Package registry is the multi-model serving subsystem behind cmd/srcldad:
// one process serving many named, versioned model bundles concurrently,
// with zero-downtime hot swaps.
//
// Source-LDA models are built from evolving knowledge sources (the paper's
// premise is that labeled articles — e.g. Wikipedia pages — encode topic
// priors, §III), so the natural serving lifecycle is retrain-and-swap: a
// fresh bundle for the same logical model name replaces the previous one
// while requests are in flight. The registry makes that safe:
//
//   - Each logical model name owns a bounded job queue and a micro-batching
//     dispatcher (the same coalescing discipline documented in
//     docs/OPERATIONS.md), so one hot model cannot starve another's queue.
//   - The active version of a model is an atomically-swapped pointer to a
//     reference-counted inference session (sourcelda.Inferrer backed by
//     infer.Session). A swap installs the new version for all subsequent
//     batches and closes the old session's owner reference; its worker pool
//     is freed only after every in-flight batch releases its pin, so no
//     request ever observes a torn-down model. The request path never
//     blocks on a swap — copy-on-swap, drain-on-refcount.
//   - Responses are unchanged by swaps in the only sense that matters:
//     a mixture is a pure function of (model, seed, text), so every batch
//     scored against version B is bit-for-bit what a fresh B-only daemon
//     would return.
//
// Models enter the registry three ways: preloaded at daemon start
// (-bundle), pushed over the admin API (PUT /v1/models/{name} with the
// bundle as the request body), or dropped into a watched directory
// (-models-dir; Watcher polls for new, changed and removed *.bundle
// files). Per-model serving metrics — request counts by status, shed 503s,
// batch sizes, queue depth, p50/p99 latency, open sessions, swap counts —
// are exported in Prometheus text format via Registry.WritePrometheus
// (GET /metrics on the daemon).
//
// Server wraps a Registry with the full HTTP surface (inference, topics,
// admin, metrics, health); see docs/API.md for the endpoint reference and
// docs/OPERATIONS.md for rollout runbooks.
package registry
