package registry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"sourcelda"
	"sourcelda/internal/gateway"
	"sourcelda/internal/obs"
	"sourcelda/internal/persist"
)

// requestIDHeader is the request-identity header: accepted from the client
// when well-formed, generated otherwise, echoed on every response, and the
// correlation key across the access log and error bodies.
const requestIDHeader = "X-Request-Id"

// backendIDHeader names the replica that served a response. Set on every
// response (including errors) when Config.BackendID is non-empty, so a
// gateway fronting several replicas can attribute each answer to a backend.
const backendIDHeader = "X-Backend"

// Server is the registry's HTTP surface: inference and topic routes (both
// the default-model aliases and the per-model forms), the model admin API,
// Prometheus metrics and health. See docs/API.md for the full reference.
type Server struct {
	reg   *Registry
	mux   *http.ServeMux
	start time.Time
}

// NewServer wraps the registry with the HTTP API.
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("POST /v1/infer", s.handleInfer)
	s.mux.HandleFunc("POST /v1/models/{name}/infer", s.handleInfer)
	s.mux.HandleFunc("POST /v1/feed", s.handleFeed)
	s.mux.HandleFunc("POST /v1/models/{name}/feed", s.handleFeed)
	s.mux.HandleFunc("GET /v1/topics", s.handleTopics)
	s.mux.HandleFunc("GET /v1/models/{name}/topics", s.handleTopics)
	s.mux.HandleFunc("GET /v1/models", s.handleListModels)
	s.mux.HandleFunc("GET /v1/models/{name}", s.handleGetModel)
	s.mux.HandleFunc("PUT /v1/models/{name}", s.handlePutModel)
	s.mux.HandleFunc("DELETE /v1/models/{name}", s.handleDeleteModel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	return s
}

// ServeHTTP implements http.Handler. Every request passes through the
// tracing middleware: resolve or mint an X-Request-Id, echo it on the
// response before the handler runs (so even error responses carry it),
// carry a span context alongside the request, and emit one access-log event
// per request with the per-stage latency breakdown — at warning level when
// the request exceeded the slow-request threshold.
//
// The span rides inside the statusWriter rather than the request context:
// handlers recover it with traceFor(w), which costs one type assertion
// instead of a context allocation plus a full http.Request clone per
// request (context injection roughly doubled the middleware's overhead).
// Library callers without an http.ResponseWriter still propagate traces
// through the context — see Registry.Infer.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	// Replica identity rides on every response, traced or not: the header is
	// how a gateway's audit trail and an operator's curl agree on which
	// replica answered.
	if id := s.reg.cfg.BackendID; id != "" {
		w.Header().Set(backendIDHeader, id)
	}
	if s.reg.cfg.DisableTracing {
		s.mux.ServeHTTP(w, r)
		return
	}
	id := r.Header.Get(requestIDHeader)
	if !obs.ValidRequestID(id) {
		id = obs.NewRequestID()
	}
	w.Header().Set(requestIDHeader, id)
	// One allocation covers both per-request tracking structs: the status
	// capture and the span context live and die together.
	sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
	sw.trace.ID = id
	tr := &sw.trace
	start := time.Now()
	s.mux.ServeHTTP(sw, r)
	dur := time.Since(start)

	slow := s.reg.cfg.SlowRequest
	isSlow := slow > 0 && dur >= slow
	level, msg := slog.LevelInfo, "request"
	if isSlow {
		level, msg = slog.LevelWarn, "slow request"
	}
	lg := s.reg.cfg.Logger
	// Attribute assembly is guarded by Enabled so a discarded or
	// level-filtered access log costs nothing on the fast path.
	if !lg.Enabled(r.Context(), level) {
		return
	}
	attrs := []any{
		"request_id", id,
		"method", r.Method,
		"path", r.URL.Path,
		"status", sw.status,
		"duration_ms", durMillis(dur),
	}
	if model := tr.Model(); model != "" {
		d := tr.Durations()
		attrs = append(attrs,
			"model", model,
			"queue_wait_ms", durMillis(d[obs.StageQueueWait]),
			"batch_assembly_ms", durMillis(d[obs.StageBatchAssembly]),
			"infer_ms", durMillis(d[obs.StageInfer]),
			"render_ms", durMillis(d[obs.StageRender]),
		)
	}
	if isSlow {
		attrs = append(attrs, "threshold_ms", durMillis(slow))
	}
	lg.Log(r.Context(), level, msg, attrs...)
}

// durMillis renders a duration as fractional milliseconds — the access
// log's one latency unit, chosen over Duration.String so log pipelines can
// aggregate the field numerically.
func durMillis(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// statusWriter captures the first status code a handler writes, for the
// access log, and carries the request's trace so the middleware allocates
// once per request.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
	trace  obs.Trace
}

func (sw *statusWriter) WriteHeader(code int) {
	if !sw.wrote {
		sw.status = code
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	sw.wrote = true
	return sw.ResponseWriter.Write(p)
}

// traceFor recovers the span the middleware attached to the response
// writer. Nil when tracing is disabled — every Trace method is nil-safe, so
// callers use the result unconditionally.
func traceFor(w http.ResponseWriter) *obs.Trace {
	if sw, ok := w.(*statusWriter); ok {
		return &sw.trace
	}
	return nil
}

// inferRequest is the POST /v1/infer body: exactly one of Text or
// Documents.
type inferRequest struct {
	Text      *string  `json:"text,omitempty"`
	Documents []string `json:"documents,omitempty"`
}

// decodeInferRequest parses and validates an inference body, returning the
// documents to score and whether the caller used the single-text form.
// Every rejection is a client error (4xx); it must never panic on malformed
// input (fuzzed).
func decodeInferRequest(body []byte, maxDocs int) (texts []string, single bool, err error) {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req inferRequest
	if err := dec.Decode(&req); err != nil {
		return nil, false, fmt.Errorf("invalid JSON body: %w", err)
	}
	// Trailing garbage after the JSON value is a malformed request.
	if dec.More() {
		return nil, false, errors.New("invalid JSON body: trailing data")
	}
	switch {
	case req.Text != nil && req.Documents != nil:
		return nil, false, errors.New(`provide exactly one of "text" or "documents"`)
	case req.Text != nil:
		if strings.TrimSpace(*req.Text) == "" {
			return nil, false, errors.New(`"text" must be non-empty`)
		}
		return []string{*req.Text}, true, nil
	case req.Documents != nil:
		if len(req.Documents) == 0 {
			return nil, false, errors.New(`"documents" must be non-empty`)
		}
		if len(req.Documents) > maxDocs {
			return nil, false, fmt.Errorf(`"documents" has %d entries; limit is %d`, len(req.Documents), maxDocs)
		}
		for i, d := range req.Documents {
			if strings.TrimSpace(d) == "" {
				return nil, false, fmt.Errorf("document %d is empty", i)
			}
		}
		return req.Documents, false, nil
	default:
		return nil, false, errors.New(`provide "text" or "documents"`)
	}
}

// topicJSON is one labeled topic weight in a response.
type topicJSON struct {
	Index  int     `json:"index"`
	Label  string  `json:"label"`
	Source bool    `json:"source"`
	Weight float64 `json:"weight"`
}

// inferredDocJSON is one document's scored mixture.
type inferredDocJSON struct {
	// TopTopics are the heaviest topics, descending.
	TopTopics []topicJSON `json:"top_topics"`
	// Mixture is the full distribution in model-topic order (aligned with
	// the model's /topics endpoint).
	Mixture       []float64 `json:"mixture"`
	KnownTokens   int       `json:"known_tokens"`
	UnknownTokens int       `json:"unknown_tokens"`
}

// modelName extracts the request's model name: the {name} path segment, or
// "" for the default-model alias routes.
func modelName(r *http.Request) string { return r.PathValue("name") }

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	name := modelName(r)
	e, err := s.reg.lookup(name)
	if err != nil {
		writeError(w, r, http.StatusNotFound, modelNotFoundMsg(name, s.reg))
		return
	}
	// Record the resolved name (not the raw path segment, which is "" on the
	// default-model alias routes) so the access log names the serving model.
	tr := traceFor(w)
	tr.SetModel(e.name)
	// Everything below reports its terminal status into the model's
	// metrics, including the request latency.
	startReq := time.Now()
	code := s.serveInfer(w, r, e, tr)
	e.metrics.recordRequest(code, time.Since(startReq))
}

// serveInfer handles one inference request against a resolved model entry
// and returns the HTTP status it wrote. tr is the request's span (nil when
// tracing is disabled).
func (s *Server) serveInfer(w http.ResponseWriter, r *http.Request, e *entry, tr *obs.Trace) int {
	cfg := s.reg.cfg
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, cfg.MaxBody))
	if err != nil {
		// Only the MaxBytesReader limit means the body was oversized; any
		// other read failure (client disconnect mid-upload, transport
		// error) must not claim 413.
		var maxErr *http.MaxBytesError
		switch {
		case errors.As(err, &maxErr):
			return writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
		case r.Context().Err() != nil:
			// 499 "client closed request" (nginx convention): the client
			// went away mid-read, so no standard 4xx applies and nobody is
			// listening anyway — but access logs should not blame body size.
			return writeError(w, r, 499, "client closed request")
		default:
			return writeError(w, r, http.StatusBadRequest, "failed to read request body")
		}
	}
	texts, single, err := decodeInferRequest(body, cfg.MaxDocs)
	if err != nil {
		return writeError(w, r, http.StatusBadRequest, err.Error())
	}
	v := e.current.Load()
	if v == nil {
		return writeError(w, r, http.StatusServiceUnavailable, ErrUnloaded.Error())
	}
	// Reject unknown-word-only documents before queueing: the check is one
	// tokenization pass, so the 422 costs no sampling and no queue slots.
	for i, text := range texts {
		if v.model.CountKnownTokens(text) == 0 {
			return writeError(w, r, http.StatusUnprocessableEntity,
				fmt.Sprintf("document %d has no tokens in the model vocabulary", i))
		}
	}
	results, err := e.enqueue(r.Context(), tr, texts)
	switch {
	case errors.Is(err, ErrOverloaded):
		e.metrics.recordShed()
		return writeError(w, r, http.StatusServiceUnavailable, ErrOverloaded.Error())
	case errors.Is(err, ErrUnloaded):
		return writeError(w, r, http.StatusServiceUnavailable, ErrUnloaded.Error())
	case err != nil && r.Context().Err() != nil:
		// The caller disconnected while its documents were queued — the
		// same client-gone condition as the body-read path, and the same
		// 499: it must not count as a server error.
		return writeError(w, r, 499, "client closed request")
	case err != nil:
		return writeError(w, r, http.StatusInternalServerError, err.Error())
	}
	renderStart := time.Now()
	docs := make([]inferredDocJSON, len(results))
	for i, res := range results {
		if res.Doc == nil {
			// Defense in depth: the pre-check above already filtered these
			// (barring a vocabulary-shrinking swap racing the pre-check).
			return writeError(w, r, http.StatusUnprocessableEntity,
				fmt.Sprintf("document %d has no tokens in the model vocabulary", i))
		}
		// Render with the build that scored the document, NOT the pre-queue
		// snapshot v: a hot swap between the vocabulary check and scoring
		// means labels and mixture widths belong to the new build.
		docs[i] = renderDoc(res.Model, res.Doc, cfg.TopN)
	}
	var status int
	if single {
		status = writeJSON(w, http.StatusOK, map[string]any{"result": docs[0]})
	} else {
		status = writeJSON(w, http.StatusOK, map[string]any{"results": docs})
	}
	// The render stage spans topic lookup through response serialization,
	// recorded once per successful request (error paths render no result).
	renderDur := time.Since(renderStart)
	e.metrics.recordStage(obs.StageRender, renderDur)
	tr.Add(obs.StageRender, renderDur)
	return status
}

// handleFeed accepts documents for a model's continuous-learning loop. The
// body shape matches the infer endpoint ({"text": ...} or
// {"documents": [...]});
// the whole batch is accepted (202) or rejected — 429 with Retry-After when
// the ingest queue is full, 409 when the model serves but has no learner,
// 404 when the model is unknown entirely.
func (s *Server) handleFeed(w http.ResponseWriter, r *http.Request) {
	name := modelName(r)
	if name == "" {
		name = s.reg.DefaultModel()
	}
	traceFor(w).SetModel(name)
	cfg := s.reg.cfg
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, cfg.MaxBody))
	if err != nil {
		var maxErr *http.MaxBytesError
		switch {
		case errors.As(err, &maxErr):
			writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
		case r.Context().Err() != nil:
			writeError(w, r, 499, "client closed request")
		default:
			writeError(w, r, http.StatusBadRequest, "failed to read request body")
		}
		return
	}
	texts, _, err := decodeInferRequest(body, cfg.MaxDocs)
	if err != nil {
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	switch err := s.reg.Feed(name, texts); {
	case err == nil:
	case errors.Is(err, ErrNoLearner):
		if _, merr := s.reg.Model(name); merr != nil {
			writeError(w, r, http.StatusNotFound, modelNotFoundMsg(name, s.reg))
		} else {
			writeError(w, r, http.StatusConflict,
				fmt.Sprintf("model %q does not accept fed documents (no learning chain attached)", name))
		}
		return
	case errors.Is(err, ErrOverloaded):
		// Whole-second Retry-After, floored at 1s: one updater batch is the
		// natural drain quantum, so "try again in a second" is honest.
		w.Header().Set("Retry-After", strconv.Itoa(gateway.RetryAfterSeconds(time.Second)))
		writeError(w, r, http.StatusTooManyRequests, "feed queue is full")
		return
	default:
		writeError(w, r, http.StatusServiceUnavailable, err.Error())
		return
	}
	depth := 0
	if fi, err := s.reg.FeedInfo(name); err == nil {
		depth = fi.QueueDepth
	}
	writeJSON(w, http.StatusAccepted, map[string]any{
		"accepted":    len(texts),
		"queue_depth": depth,
	})
}

func renderDoc(m *sourcelda.Model, res *sourcelda.DocumentInference, topN int) inferredDocJSON {
	top := m.TopTopics(res, topN)
	out := inferredDocJSON{
		TopTopics:     make([]topicJSON, len(top)),
		Mixture:       res.Topics,
		KnownTokens:   res.KnownTokens,
		UnknownTokens: res.UnknownTokens,
	}
	for i, tp := range top {
		out.TopTopics[i] = topicJSON{
			Index: tp.Index, Label: tp.Label, Source: tp.IsSourceTopic, Weight: tp.Weight,
		}
	}
	return out
}

func (s *Server) handleTopics(w http.ResponseWriter, r *http.Request) {
	name := modelName(r)
	e, err := s.reg.lookup(name)
	if err != nil {
		writeError(w, r, http.StatusNotFound, modelNotFoundMsg(name, s.reg))
		return
	}
	traceFor(w).SetModel(e.name)
	v, byIndex, ok := e.topics()
	if !ok {
		writeError(w, r, http.StatusServiceUnavailable, ErrUnloaded.Error())
		return
	}
	type topicInfo struct {
		Index    int      `json:"index"`
		Label    string   `json:"label"`
		Source   bool     `json:"source"`
		Weight   float64  `json:"weight"`
		TopWords []string `json:"top_words"`
	}
	topics := make([]topicInfo, len(byIndex))
	for i, tp := range byIndex {
		topics[i] = topicInfo{
			Index:    tp.Index,
			Label:    tp.Label,
			Source:   tp.IsSourceTopic,
			Weight:   tp.Weight,
			TopWords: tp.TopWords(10),
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"model":   e.name,
		"version": v.version,
		"topics":  topics,
	})
}

// modelInfoJSON is one model's listing entry on the admin API.
type modelInfoJSON struct {
	Name          string  `json:"name"`
	Version       string  `json:"version"`
	LoadedAt      string  `json:"loaded_at,omitempty"`
	Topics        int     `json:"topics"`
	Mapped        bool    `json:"mapped"`
	MappedBytes   int64   `json:"mapped_bytes,omitempty"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	OpenSessions  int     `json:"open_sessions"`
	Requests      uint64  `json:"requests"`
	Shed          uint64  `json:"shed"`
	Swaps         uint64  `json:"swaps"`
	LatencyP50    float64 `json:"latency_p50_seconds"`
	LatencyP99    float64 `json:"latency_p99_seconds"`
	ChainDigest   string  `json:"chain_digest,omitempty"`
	TrainedAt     string  `json:"trained_at,omitempty"`
	BundleName    string  `json:"bundle_name,omitempty"`
	BundleVersion string  `json:"bundle_version,omitempty"`
}

func infoToJSON(mi ModelInfo) modelInfoJSON {
	out := modelInfoJSON{
		Name:          mi.Name,
		Version:       mi.Version,
		Topics:        mi.Topics,
		Mapped:        mi.Mapped,
		MappedBytes:   mi.MappedBytes,
		QueueDepth:    mi.QueueDepth,
		QueueCapacity: mi.QueueCapacity,
		OpenSessions:  mi.OpenSessions,
		Requests:      mi.Stats.Requests,
		Shed:          mi.Stats.Shed,
		Swaps:         mi.Stats.Swaps,
		LatencyP50:    mi.Stats.LatencyP50,
		LatencyP99:    mi.Stats.LatencyP99,
		ChainDigest:   mi.Bundle.ChainDigest,
		BundleName:    mi.Bundle.Name,
		BundleVersion: mi.Bundle.Version,
	}
	if !mi.LoadedAt.IsZero() {
		out.LoadedAt = mi.LoadedAt.UTC().Format(time.RFC3339)
	}
	if !mi.Bundle.TrainedAt.IsZero() {
		out.TrainedAt = mi.Bundle.TrainedAt.UTC().Format(time.RFC3339)
	}
	return out
}

func (s *Server) handleListModels(w http.ResponseWriter, r *http.Request) {
	infos := s.reg.ListInfo()
	models := make([]modelInfoJSON, len(infos))
	for i, mi := range infos {
		models[i] = infoToJSON(mi)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"default_model": s.reg.DefaultModel(),
		"models":        models,
	})
}

func (s *Server) handleGetModel(w http.ResponseWriter, r *http.Request) {
	name := modelName(r)
	mi, err := s.reg.Info(name)
	if err != nil {
		writeError(w, r, http.StatusNotFound, modelNotFoundMsg(name, s.reg))
		return
	}
	writeJSON(w, http.StatusOK, infoToJSON(mi))
}

// handlePutModel loads (or hot-swaps) a model: the request body IS the
// bundle, exactly as written by srclda -save-bundle / sourcelda.SaveBundle
// (gzip JSON, plain JSON, or the flat format — the loader sniffs by magic).
// A flat upload is spooled to a temporary file and served memory-mapped, so
// a pushed flat model keeps the format's zero-copy properties. `?version=`
// overrides the version recorded for the build; otherwise the bundle's
// embedded version, then a process-unique fallback, is used.
func (s *Server) handlePutModel(w http.ResponseWriter, r *http.Request) {
	name := modelName(r)
	// Validate the name before consuming the body: an invalid name must not
	// cost a potentially hundreds-of-MB upload.
	if !validName.MatchString(name) {
		writeError(w, r, http.StatusBadRequest,
			fmt.Sprintf("invalid model name %q (want %s)", name, validName))
		return
	}
	body := bufio.NewReader(http.MaxBytesReader(w, r.Body, s.reg.cfg.AdminMaxBody))
	var m *sourcelda.Model
	var err error
	if magic, perr := body.Peek(len(persist.FlatBundleMagic)); perr == nil && persist.IsFlatBundle(magic) {
		m, err = spoolFlatBundle(body)
	} else {
		m, err = sourcelda.LoadBundle(body)
	}
	if err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("bundle exceeds %d bytes", maxErr.Limit))
			return
		}
		writeError(w, r, http.StatusBadRequest, fmt.Sprintf("invalid bundle: %v", err))
		return
	}
	res, err := s.reg.Load(name, r.URL.Query().Get("version"), m)
	if err != nil {
		m.Close()
		writeError(w, r, http.StatusBadRequest, err.Error())
		return
	}
	status := http.StatusCreated
	if res.Swapped {
		status = http.StatusOK
	}
	writeJSON(w, status, map[string]any{
		"model":            res.Name,
		"version":          res.Version,
		"swapped":          res.Swapped,
		"previous_version": res.PreviousVersion,
	})
}

// spoolFlatBundle lands an uploaded flat bundle in a temporary file and
// memory-maps it from there: the spool is one sequential write, after which
// the model serves zero-copy from the page cache exactly as a bundle loaded
// from -models-dir would. The file is unlinked immediately after mapping —
// on unix the mapping keeps the pages alive, so the model outlives the
// directory entry and nothing is left behind on shutdown.
func spoolFlatBundle(body io.Reader) (*sourcelda.Model, error) {
	tmp, err := os.CreateTemp("", "srcldad-flat-*.bundle")
	if err != nil {
		return nil, fmt.Errorf("spool flat bundle: %w", err)
	}
	path := tmp.Name()
	defer os.Remove(path)
	if _, err := io.Copy(tmp, body); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, fmt.Errorf("spool flat bundle: %w", err)
	}
	return sourcelda.LoadBundleFile(path)
}

func (s *Server) handleDeleteModel(w http.ResponseWriter, r *http.Request) {
	name := modelName(r)
	if err := s.reg.Unload(name); err != nil {
		writeError(w, r, http.StatusNotFound, modelNotFoundMsg(name, s.reg))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"unloaded": name})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	s.reg.WritePrometheus(w)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	out := map[string]any{
		"status":         "ok",
		"models":         len(names),
		"default_model":  s.reg.DefaultModel(),
		"uptime_seconds": time.Since(s.start).Seconds(),
	}
	// Backward-compatible single-model fields describing the default model,
	// when one is loaded (the pre-registry daemon reported exactly these).
	if mi, err := s.reg.Info(""); err == nil {
		out["topics"] = mi.Topics
		out["queue_depth"] = mi.QueueDepth
		out["queue_capacity"] = mi.QueueCapacity
	}
	writeJSON(w, http.StatusOK, out)
}

// handleReady is the readiness probe, distinct from /healthz liveness: it
// answers 503 until at least one model is loaded and serving, then 200. A
// gateway or load balancer keys routing on this endpoint so a cold replica
// — process up, models directory still loading — never receives traffic.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	names := s.reg.Names()
	if len(names) == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "unavailable",
			"reason": "no models loaded",
		})
		return
	}
	_, defErr := s.reg.Info("")
	writeJSON(w, http.StatusOK, map[string]any{
		"status":               "ready",
		"models":               len(names),
		"default_model":        s.reg.DefaultModel(),
		"default_model_loaded": defErr == nil,
	})
}

// modelNotFoundMsg names the missing model and lists what is loaded, so a
// 404 is self-diagnosing.
func modelNotFoundMsg(name string, reg *Registry) string {
	if name == "" {
		name = reg.DefaultModel()
	}
	loaded := reg.Names()
	if len(loaded) == 0 {
		return fmt.Sprintf("model %q is not loaded (no models loaded)", name)
	}
	return fmt.Sprintf("model %q is not loaded (loaded: %s)", name, strings.Join(loaded, ", "))
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
	return status
}

// writeError renders a JSON error body, echoing the request's ID so a
// client-side error report and the server's access log line correlate
// without header plumbing.
func writeError(w http.ResponseWriter, _ *http.Request, status int, msg string) int {
	body := map[string]string{"error": msg}
	if tr := traceFor(w); tr != nil && tr.ID != "" {
		body["request_id"] = tr.ID
	}
	return writeJSON(w, status, body)
}
