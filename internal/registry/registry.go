package registry

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sourcelda"
	"sourcelda/internal/obs"
)

// Errors the registry reports on the request and admin paths. The HTTP
// layer maps them to status codes (docs/API.md): ErrModelNotFound → 404,
// ErrOverloaded → 503, ErrUnloaded → 503.
var (
	// ErrModelNotFound means no model is loaded under the requested name.
	ErrModelNotFound = errors.New("registry: model not found")
	// ErrOverloaded means the model's pending-job queue is full and the
	// request was shed instead of queued.
	ErrOverloaded = errors.New("registry: inference queue is full")
	// ErrUnloaded means the model was unloaded while the request was queued.
	ErrUnloaded = errors.New("registry: model unloaded")
	// ErrClosed means the registry has shut down.
	ErrClosed = errors.New("registry: closed")
)

// Config tunes the registry. Zero values take the documented defaults;
// every loaded model shares one configuration (per-model tuning would
// multiply the operational surface for little gain — run two daemons if two
// models truly need different schedules).
type Config struct {
	// Infer is the fold-in sweep schedule, seed and worker count every
	// model's inference session is built with (see sourcelda.InferOptions).
	Infer sourcelda.InferOptions
	// TopN is the number of top topics reported per document (default 5).
	TopN int
	// MaxDocs caps the documents of one inference request (default 64).
	MaxDocs int
	// MaxBody caps an inference request body in bytes (default 1 MiB).
	MaxBody int64
	// AdminMaxBody caps an uploaded bundle (PUT /v1/models/{name}) in bytes
	// (default 256 MiB) — bundles are far larger than inference requests.
	AdminMaxBody int64
	// QueueSize bounds each model's pending-document queue; a full queue
	// sheds load with ErrOverloaded/503 instead of letting latency grow
	// without bound (default 256).
	QueueSize int
	// BatchWindow is how long a model's dispatcher waits to coalesce more
	// documents after the first arrives; MaxBatch caps one coalesced batch
	// (default 32). Micro-batching never changes results: a document's
	// mixture is a pure function of (model, seed, content).
	BatchWindow time.Duration
	MaxBatch    int
	// DefaultModel is the name the unnamed routes (/v1/infer, /v1/topics)
	// alias (default "default").
	DefaultModel string
	// Logger receives the registry's structured events (loads, swaps,
	// unloads, watcher errors, per-request access logs). nil discards
	// everything.
	Logger *slog.Logger
	// SlowRequest is the duration above which a completed request is logged
	// at warning level with its per-stage breakdown (default 1s; negative
	// disables the slow-request log).
	SlowRequest time.Duration
	// BackendID, when non-empty, is echoed as an X-Backend header on every
	// HTTP response, so a gateway's e2e audit (and an operator debugging
	// routing) can tell which replica actually served a request. "" omits
	// the header (single-box deployments have nothing to distinguish).
	BackendID string
	// DisableTracing turns off request-ID generation, span recording and
	// access logging on the HTTP layer — an escape hatch for benchmarking
	// the serving path's floor; production deployments leave it off.
	DisableTracing bool
}

func (c *Config) applyDefaults() {
	if c.TopN < 1 {
		c.TopN = 5
	}
	if c.MaxDocs < 1 {
		c.MaxDocs = 64
	}
	if c.MaxBody <= 0 {
		c.MaxBody = 1 << 20
	}
	if c.AdminMaxBody <= 0 {
		c.AdminMaxBody = 256 << 20
	}
	if c.QueueSize < 1 {
		c.QueueSize = 256
	}
	if c.MaxBatch < 1 {
		c.MaxBatch = 32
	}
	if c.DefaultModel == "" {
		c.DefaultModel = "default"
	}
	if c.Logger == nil {
		c.Logger = obs.Discard()
	}
	if c.SlowRequest == 0 {
		c.SlowRequest = time.Second
	}
}

// validName matches acceptable model names: they appear in URL paths,
// metric labels and watched file names, so keep them to a conservative
// token alphabet.
var validName = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$`)

// Registry serves many named, versioned models concurrently. Safe for
// concurrent use; see the package documentation for the swap semantics.
type Registry struct {
	cfg   Config
	start time.Time

	mu      sync.RWMutex
	entries map[string]*entry
	closed  bool

	loadSeq atomic.Uint64

	// wmu guards watcherFails, bundle-load failures counted per model name
	// by the directory watcher (rendered as
	// srcldad_watcher_load_failures_total).
	wmu          sync.Mutex
	watcherFails map[string]uint64

	// lmu guards the continuous-learning side: one learner per model name
	// (see learner.go). learnerClosed stops AttachLearner racing Close.
	lmu           sync.Mutex
	learners      map[string]*learner
	learnerClosed bool
}

// New returns an empty registry. Close it to stop every model's dispatcher
// and release their inference sessions.
func New(cfg Config) *Registry {
	cfg.applyDefaults()
	return &Registry{
		cfg:          cfg,
		start:        time.Now(),
		entries:      make(map[string]*entry),
		watcherFails: make(map[string]uint64),
		learners:     make(map[string]*learner),
	}
}

// recordWatcherFailure counts one failed watcher load attempt for a model
// name. The counter outlives the file (a rotted bundle that later
// disappears still shows its failure history).
func (r *Registry) recordWatcherFailure(name string) {
	r.wmu.Lock()
	r.watcherFails[name]++
	r.wmu.Unlock()
}

// watcherFailure is one model's failed-load count, for metrics rendering.
type watcherFailure struct {
	name  string
	count uint64
}

// watcherFailures snapshots the failed-load counters, sorted by model name.
func (r *Registry) watcherFailures() []watcherFailure {
	r.wmu.Lock()
	out := make([]watcherFailure, 0, len(r.watcherFails))
	for name, n := range r.watcherFails {
		out = append(out, watcherFailure{name: name, count: n})
	}
	r.wmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// Config returns the registry's effective (defaulted) configuration.
func (r *Registry) Config() Config { return r.cfg }

// DefaultModel returns the name the unnamed routes alias.
func (r *Registry) DefaultModel() string { return r.cfg.DefaultModel }

// version is one immutable loaded build of a model: the fitted model, its
// reference-counted inference session, and identity for listings.
type version struct {
	model    *sourcelda.Model
	inferrer *sourcelda.Inferrer
	version  string
	loadedAt time.Time
	// byIndex holds the model's topics in model-topic order — the order
	// every mixture array is aligned with. It is built lazily on the first
	// topics request (topicsOnce), not at load time: rendering topics for a
	// memory-mapped model materializes every φ row, and paying that O(T·V)
	// at load would forfeit the flat format's O(1) load and near-zero
	// resident cost for the many models that only ever serve inference.
	topicsOnce sync.Once
	byIndex    []sourcelda.Topic
}

// entry is the long-lived per-name serving state: the job queue and
// dispatcher survive hot swaps, only the version pointer changes.
type entry struct {
	name    string
	cfg     *Config
	jobs    chan job
	current atomic.Pointer[version]
	metrics *modelMetrics

	// qmu guards sends on jobs against stop(): once stopped is set under
	// the write lock, no submit can enqueue, so the dispatcher's final
	// drain observes the channel's complete contents.
	qmu     sync.RWMutex
	stopped bool

	cancel  context.CancelFunc
	drained chan struct{}

	// hmu guards sessions, every inference session this entry has ever
	// activated that has not yet fully drained — the open-sessions gauge,
	// and the hot-swap test's drain oracle.
	hmu      sync.Mutex
	sessions []*sourcelda.Inferrer
}

// LoadResult reports what a Load did.
type LoadResult struct {
	// Name and Version identify the now-active build.
	Name, Version string
	// Swapped is true when the load replaced a live version (a hot swap)
	// rather than introducing a new name.
	Swapped bool
	// PreviousVersion is the replaced build's version string ("" when
	// Swapped is false).
	PreviousVersion string
}

// Load makes m the active version of the named model, hot-swapping any
// previous version behind in-flight requests: queued and future batches
// score against m, while batches already running finish on the old session,
// which is drained and released via its reference count. The request path
// is never blocked and no request fails because of a swap.
//
// ver names the build; when empty it falls back to the bundle's embedded
// version, then to a process-unique "load-N". The model must be able to
// build its inference session (a degenerate snapshot fails here, leaving
// any previous version serving).
func (r *Registry) Load(name, ver string, m *sourcelda.Model) (LoadResult, error) {
	if !validName.MatchString(name) {
		return LoadResult{}, fmt.Errorf("registry: invalid model name %q (want %s)", name, validName)
	}
	if m == nil {
		return LoadResult{}, errors.New("registry: nil model")
	}
	inferrer, err := m.NewInferrer(r.cfg.Infer)
	if err != nil {
		return LoadResult{}, fmt.Errorf("registry: model %q cannot serve inference: %w", name, err)
	}
	seq := r.loadSeq.Add(1)
	if ver == "" {
		ver = m.BundleInfo().Version
	}
	if ver == "" {
		ver = fmt.Sprintf("load-%d", seq)
	}
	v := &version{
		model:    m,
		inferrer: inferrer,
		version:  ver,
		loadedAt: time.Now(),
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		inferrer.Close()
		return LoadResult{}, ErrClosed
	}
	e := r.entries[name]
	if e == nil {
		e = r.newEntry(name)
		r.entries[name] = e
	}
	e.trackSession(inferrer)
	old := e.current.Swap(v)
	r.mu.Unlock()

	res := LoadResult{Name: name, Version: ver}
	if old != nil {
		res.Swapped = true
		res.PreviousVersion = old.version
		e.metrics.recordSwap()
		// Drop the owner reference; the old session frees its pool once the
		// last in-flight batch releases its pin. Closing the old model drops
		// its reference to any memory-mapped bundle — the unmap itself still
		// waits for that same session drain, so in-flight batches are safe.
		old.inferrer.Close()
		if old.model != v.model {
			old.model.Close()
		}
		r.cfg.Logger.Info("model hot-swapped",
			"model", name, "old_version", old.version, "new_version", ver)
	} else {
		r.cfg.Logger.Info("model loaded",
			"model", name, "version", ver, "topics", m.NumTopics(), "mapped", m.Mapped())
	}
	return res, nil
}

// newEntry creates the per-name queue, metrics and dispatcher. Caller holds
// r.mu.
func (r *Registry) newEntry(name string) *entry {
	ctx, cancel := context.WithCancel(context.Background())
	e := &entry{
		name:    name,
		cfg:     &r.cfg,
		jobs:    make(chan job, r.cfg.QueueSize),
		metrics: newModelMetrics(),
		cancel:  cancel,
		drained: make(chan struct{}),
	}
	go e.run(ctx)
	return e
}

// Unload removes the named model: new requests get ErrModelNotFound, jobs
// still queued are failed with ErrUnloaded, and the active session drains
// and releases behind any batch still running.
func (r *Registry) Unload(name string) error {
	r.mu.Lock()
	e := r.entries[name]
	if e == nil {
		r.mu.Unlock()
		return ErrModelNotFound
	}
	delete(r.entries, name)
	r.mu.Unlock()
	e.stop()
	r.cfg.Logger.Info("model unloaded", "model", name)
	return nil
}

// Close unloads every model and marks the registry closed. Call only after
// the HTTP layer has drained in-flight handlers, or queued requests are
// failed with ErrUnloaded.
func (r *Registry) Close() {
	r.closeLearners()
	r.mu.Lock()
	r.closed = true
	es := make([]*entry, 0, len(r.entries))
	for name, e := range r.entries {
		es = append(es, e)
		delete(r.entries, name)
	}
	r.mu.Unlock()
	for _, e := range es {
		e.stop()
	}
}

// stop shuts an entry down: refuse new submits, cancel the dispatcher,
// wait for it to fail whatever was still queued, then release the active
// session.
func (e *entry) stop() {
	e.qmu.Lock()
	e.stopped = true
	e.qmu.Unlock()
	e.cancel()
	<-e.drained
	if v := e.current.Swap(nil); v != nil {
		v.inferrer.Close()
		v.model.Close()
	}
}

// lookup resolves a model name ("" means the default model).
func (r *Registry) lookup(name string) (*entry, error) {
	if name == "" {
		name = r.cfg.DefaultModel
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.closed {
		return nil, ErrClosed
	}
	e := r.entries[name]
	if e == nil {
		return nil, ErrModelNotFound
	}
	return e, nil
}

// Model returns the named model's currently active build ("" = default) —
// the snapshot request validation and topic rendering read. A concurrent
// swap may activate a newer build before the caller uses it; both are valid
// serving models, so the race is benign.
func (r *Registry) Model(name string) (*sourcelda.Model, error) {
	e, err := r.lookup(name)
	if err != nil {
		return nil, err
	}
	v := e.current.Load()
	if v == nil {
		return nil, ErrModelNotFound
	}
	return v.model, nil
}

// Names lists loaded model names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ModelInfo is one model's listing entry: identity, provenance, and a
// point-in-time serving snapshot.
type ModelInfo struct {
	Name     string
	Version  string
	LoadedAt time.Time
	Bundle   sourcelda.BundleInfo
	Topics   int
	// Mapped reports whether the build serves from a memory-mapped flat
	// bundle (zero-copy load, page-cache-shared conditionals); MappedBytes
	// is the mapped file size (0 when not mapped).
	Mapped        bool
	MappedBytes   int64
	QueueDepth    int
	QueueCapacity int
	// OpenSessions counts inference sessions not yet fully drained: 1 in
	// steady state, 2+ momentarily during a hot swap.
	OpenSessions int
	Stats        MetricsSnapshot
}

// Info reports the named model ("" = default).
func (r *Registry) Info(name string) (ModelInfo, error) {
	e, err := r.lookup(name)
	if err != nil {
		return ModelInfo{}, err
	}
	return e.info(), nil
}

// ListInfo reports every loaded model, sorted by name.
func (r *Registry) ListInfo() []ModelInfo {
	r.mu.RLock()
	es := make([]*entry, 0, len(r.entries))
	for _, e := range r.entries {
		es = append(es, e)
	}
	r.mu.RUnlock()
	sort.Slice(es, func(i, j int) bool { return es[i].name < es[j].name })
	out := make([]ModelInfo, len(es))
	for i, e := range es {
		out[i] = e.info()
	}
	return out
}

func (e *entry) info() ModelInfo {
	mi := ModelInfo{
		Name:          e.name,
		QueueDepth:    len(e.jobs),
		QueueCapacity: cap(e.jobs),
		OpenSessions:  e.openSessions(),
		Stats:         e.metrics.snapshot(),
	}
	if v := e.current.Load(); v != nil {
		mi.Version = v.version
		mi.LoadedAt = v.loadedAt
		mi.Bundle = v.model.BundleInfo()
		mi.Topics = v.model.NumTopics()
		mi.Mapped = v.model.Mapped()
		mi.MappedBytes = v.model.MappedBytes()
	}
	return mi
}

// topics returns the active build and its topics in model-topic order,
// rendering them on first use. The build is pinned via its inference session
// while rendering, so a concurrent swap-and-close cannot unmap a mapped
// model's pages mid-materialization; a build that drains before it can be
// pinned is retried against its replacement, mirroring entry.score. ok is
// false when no build is active.
func (e *entry) topics() (v *version, tops []sourcelda.Topic, ok bool) {
	for {
		v := e.current.Load()
		if v == nil {
			return nil, nil, false
		}
		if !v.inferrer.Acquire() {
			continue
		}
		v.topicsOnce.Do(func() {
			rendered := v.model.Topics()
			v.byIndex = make([]sourcelda.Topic, len(rendered))
			for _, tp := range rendered {
				v.byIndex[tp.Index] = tp
			}
		})
		v.inferrer.Release()
		return v, v.byIndex, true
	}
}

// trackSession registers a session for the open-sessions gauge.
func (e *entry) trackSession(inf *sourcelda.Inferrer) {
	e.hmu.Lock()
	e.sessions = append(e.sessions, inf)
	e.hmu.Unlock()
}

// openSessions counts sessions that have not fully drained, pruning the
// drained ones as it goes.
func (e *entry) openSessions() int {
	e.hmu.Lock()
	defer e.hmu.Unlock()
	live := e.sessions[:0]
	for _, s := range e.sessions {
		if !s.Closed() {
			live = append(live, s)
		}
	}
	for i := len(live); i < len(e.sessions); i++ {
		e.sessions[i] = nil
	}
	e.sessions = live
	return len(live)
}
