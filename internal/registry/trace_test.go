package registry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sourcelda/internal/obs"
)

// TestRequestIDEcho: a well-formed client-supplied X-Request-Id is echoed
// verbatim; a malformed one is replaced with a minted ID; requests without
// one get a minted ID. Error responses carry the ID in both the header and
// the JSON body.
func TestRequestIDEcho(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	do := func(id, method, path, body string) *http.Response {
		t.Helper()
		var rd io.Reader
		if body != "" {
			rd = strings.NewReader(body)
		}
		req, err := http.NewRequest(method, ts.URL+path, rd)
		if err != nil {
			t.Fatal(err)
		}
		if id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Valid client ID: echoed byte for byte.
	resp := do("client-id.42", "POST", "/v1/infer", `{"text":"pencil"}`)
	if resp.StatusCode != 200 {
		t.Fatalf("infer status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "client-id.42" {
		t.Fatalf("valid client ID not echoed: got %q", got)
	}

	// Malformed client IDs (spaces, control bytes, overlong) are replaced
	// with a minted ID, never echoed back into logs and headers.
	for _, bad := range []string{"has space", strings.Repeat("x", 200), ".leading-dot"} {
		resp := do(bad, "POST", "/v1/infer", `{"text":"pencil"}`)
		got := resp.Header.Get("X-Request-Id")
		if got == bad || got == "" || !obs.ValidRequestID(got) {
			t.Fatalf("malformed ID %q: response carries %q, want a fresh valid ID", bad, got)
		}
	}

	// No client ID: one is minted.
	resp = do("", "POST", "/v1/infer", `{"text":"pencil"}`)
	if got := resp.Header.Get("X-Request-Id"); !obs.ValidRequestID(got) {
		t.Fatalf("minted ID %q is not valid", got)
	}

	// Error responses echo the ID in the header AND the JSON body.
	resp = do("err-trace-1", "POST", "/v1/models/nope/infer", `{"text":"pencil"}`)
	if resp.StatusCode != 404 {
		t.Fatalf("unknown model status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "err-trace-1" {
		t.Fatalf("error response header ID %q", got)
	}
	var errBody struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&errBody); err != nil {
		t.Fatal(err)
	}
	if errBody.RequestID != "err-trace-1" {
		t.Fatalf("error body request_id %q, want err-trace-1 (body error: %q)", errBody.RequestID, errBody.Error)
	}
}

// TestAccessLogTracesRequest is the tracing acceptance criterion end to
// end: a request with a known ID is traceable from the access log — with
// its per-stage durations — to the response header.
func TestAccessLogTracesRequest(t *testing.T) {
	var logBuf bytes.Buffer
	logger, err := obs.NewLogger(&logBuf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	ts, _ := newTestServer(t, Config{Logger: logger})

	req, err := http.NewRequest("POST", ts.URL+"/v1/infer", strings.NewReader(`{"text":"pencil ruler"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-me-123")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("infer status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "trace-me-123" {
		t.Fatalf("response header ID %q", got)
	}

	// One access-log event carries the ID, the resolved model, and every
	// stage duration.
	var access map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("unparseable log line %q: %v", line, err)
		}
		if ev["msg"] == "request" && ev["request_id"] == "trace-me-123" {
			access = ev
			break
		}
	}
	if access == nil {
		t.Fatalf("no access-log event for trace-me-123:\n%s", logBuf.String())
	}
	for _, key := range []string{"method", "path", "status", "duration_ms",
		"model", "queue_wait_ms", "batch_assembly_ms", "infer_ms", "render_ms"} {
		if _, ok := access[key]; !ok {
			t.Errorf("access log missing %q: %v", key, access)
		}
	}
	if access["model"] != "default" || access["status"] != float64(200) {
		t.Errorf("access log fields: %v", access)
	}
}

// TestSlowRequestLog: a request over the threshold logs at warning level
// with the threshold attached.
func TestSlowRequestLog(t *testing.T) {
	var logBuf bytes.Buffer
	logger, err := obs.NewLogger(&logBuf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	// Any real inference exceeds a 1ns threshold.
	ts, _ := newTestServer(t, Config{Logger: logger, SlowRequest: time.Nanosecond})
	if code, _ := postInfer(t, ts.URL+"/v1/infer", `{"text":"pencil"}`); code != 200 {
		t.Fatalf("infer status %d", code)
	}
	logged := logBuf.String()
	if !strings.Contains(logged, `"msg":"slow request"`) || !strings.Contains(logged, `"level":"WARN"`) {
		t.Fatalf("no slow-request warning:\n%s", logged)
	}
	if !strings.Contains(logged, "threshold_ms") {
		t.Fatalf("slow-request warning missing threshold:\n%s", logged)
	}
}

// TestReadyzGatesOnModels: /readyz answers 503 until a model is loaded and
// 200 after, while /healthz reports liveness either way — the two probes
// must stay distinct so a cold replica is alive but not routable.
func TestReadyzGatesOnModels(t *testing.T) {
	reg := newTestRegistry(t, Config{})
	url := newHTTPServer(t, reg)

	get := func(path string) (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, body
	}

	if code, body := get("/readyz"); code != http.StatusServiceUnavailable || body["status"] != "unavailable" {
		t.Fatalf("empty registry readyz: %d %v", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("empty registry healthz: %d (liveness must not gate on models)", code)
	}

	if _, err := reg.Load(reg.DefaultModel(), "v1", trainModel(t, 7)); err != nil {
		t.Fatal(err)
	}
	code, body := get("/readyz")
	if code != http.StatusOK || body["status"] != "ready" {
		t.Fatalf("loaded registry readyz: %d %v", code, body)
	}
	if body["default_model_loaded"] != true {
		t.Fatalf("readyz body: %v", body)
	}
}

// BenchmarkInferObsOverhead measures the serving path with the tracing
// middleware on (default) and off, driving Server.ServeHTTP directly. The
// CI gate (examples/benchobs) runs the same comparison and fails the build
// if observability costs more than its threshold.
func BenchmarkInferObsOverhead(b *testing.B) {
	for _, bc := range []struct {
		name    string
		disable bool
	}{{"TracingOn", false}, {"TracingOff", true}} {
		b.Run(bc.name, func(b *testing.B) {
			reg := newTestRegistry(b, Config{
				DisableTracing: bc.disable,
				BatchWindow:    0, // no coalescing idle-wait in the measured path
			})
			if _, err := reg.Load(reg.DefaultModel(), "v1", trainModel(b, 7)); err != nil {
				b.Fatal(err)
			}
			srv := NewServer(reg)
			payload := []byte(`{"text":"pencil ruler eraser pencil notebook paper baseball umpire pitcher baseball inning glove pencil paper notebook ruler eraser paper glove inning baseball umpire pitcher glove pencil ruler notebook eraser paper pencil"}`)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest("POST", "/v1/infer", bytes.NewReader(payload))
				rec := httptest.NewRecorder()
				srv.ServeHTTP(rec, req)
				if rec.Code != 200 {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
		})
	}
}
