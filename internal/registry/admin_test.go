package registry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"sourcelda"
)

func doReq(t *testing.T, method, url string, body []byte) (int, map[string]any) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	var out map[string]any
	if len(data) > 0 {
		if err := json.Unmarshal(data, &out); err != nil {
			t.Fatalf("%s %s: status %d, non-JSON body %q", method, url, resp.StatusCode, data)
		}
	}
	return resp.StatusCode, out
}

// TestAdminLifecycle drives the admin API end to end: upload a second
// model, list, infer against it by name, re-upload (hot swap), and unload.
func TestAdminLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, Config{})

	// PUT a new model under a new name → 201.
	alt := trainModel(t, 99)
	code, out := doReq(t, http.MethodPut, ts.URL+"/v1/models/alt?version=a1", bundleBytes(t, alt, "alt", ""))
	if code != http.StatusCreated {
		t.Fatalf("PUT new model: status %d (%v)", code, out)
	}
	if out["model"] != "alt" || out["version"] != "a1" || out["swapped"] != false {
		t.Fatalf("PUT response %v", out)
	}

	// It lists alongside the preloaded default.
	code, out = doReq(t, http.MethodGet, ts.URL+"/v1/models", nil)
	if code != 200 {
		t.Fatalf("list: %d", code)
	}
	models := out["models"].([]any)
	if len(models) != 2 {
		t.Fatalf("%d models listed: %v", len(models), out)
	}
	names := []string{
		models[0].(map[string]any)["name"].(string),
		models[1].(map[string]any)["name"].(string),
	}
	if names[0] != "alt" || names[1] != "default" {
		t.Fatalf("listed %v", names)
	}

	// Named inference works and differs from the default model only in
	// routing, not protocol.
	code, out = postInfer(t, ts.URL+"/v1/models/alt/infer", `{"text":"pencil ruler notebook"}`)
	if code != 200 {
		t.Fatalf("named infer: %d (%v)", code, out)
	}

	// GET one model's info.
	code, out = doReq(t, http.MethodGet, ts.URL+"/v1/models/alt", nil)
	if code != 200 || out["version"] != "a1" || out["topics"].(float64) != 2 {
		t.Fatalf("model info: %d %v", code, out)
	}
	if out["requests"].(float64) != 1 {
		t.Fatalf("model info requests = %v, want 1", out["requests"])
	}

	// Re-PUT the same name → hot swap, 200, previous version reported.
	code, out = doReq(t, http.MethodPut, ts.URL+"/v1/models/alt?version=a2", bundleBytes(t, alt, "alt", ""))
	if code != http.StatusOK {
		t.Fatalf("PUT swap: status %d (%v)", code, out)
	}
	if out["swapped"] != true || out["previous_version"] != "a1" || out["version"] != "a2" {
		t.Fatalf("swap response %v", out)
	}

	// DELETE → unloaded; inference now 404s; double delete 404s.
	code, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/models/alt", nil)
	if code != 200 {
		t.Fatalf("DELETE: %d", code)
	}
	code, _ = postInfer(t, ts.URL+"/v1/models/alt/infer", `{"text":"pencil"}`)
	if code != http.StatusNotFound {
		t.Fatalf("infer after unload: %d", code)
	}
	code, _ = doReq(t, http.MethodDelete, ts.URL+"/v1/models/alt", nil)
	if code != http.StatusNotFound {
		t.Fatalf("double DELETE: %d", code)
	}
}

func TestAdminRejections(t *testing.T) {
	ts, _ := newTestServer(t, Config{AdminMaxBody: 256})

	// Garbage body is not a bundle.
	code, out := doReq(t, http.MethodPut, ts.URL+"/v1/models/x", []byte("not a bundle"))
	if code != http.StatusBadRequest {
		t.Fatalf("garbage bundle: %d (%v)", code, out)
	}
	// Bundles over -admin-max-body are refused with 413 (the limit only
	// bites on bytes the loader actually consumes, so it must be below the
	// bundle's true size).
	big := bundleBytes(t, trainModel(t, 5), "", "")
	if len(big) <= 256 {
		t.Fatalf("test bundle only %d bytes; shrink AdminMaxBody", len(big))
	}
	code, _ = doReq(t, http.MethodPut, ts.URL+"/v1/models/x", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized bundle: %d", code)
	}
	// Invalid model names are rejected before anything is loaded. The mux
	// routes one path segment, so test the validator directly too.
	if _, err := New(Config{}).Load("not ok", "", trainModel(t, 5)); err == nil {
		t.Fatal("Load accepted a name with a space")
	}
	if _, err := New(Config{}).Load(".hidden", "", trainModel(t, 5)); err == nil {
		t.Fatal("Load accepted a dot-prefixed name")
	}
	code, _ = doReq(t, http.MethodPut, ts.URL+"/v1/models/bad%20name", bundleBytes(t, trainModel(t, 5), "", ""))
	if code != http.StatusBadRequest {
		t.Fatalf("invalid name over HTTP: %d", code)
	}
}

// TestVersionFallbacks pins the version-resolution order: explicit
// ?version= wins, then the bundle's embedded version, then load-N.
func TestVersionFallbacks(t *testing.T) {
	reg := newTestRegistry(t, Config{})
	m := trainModel(t, 3)

	res, err := reg.Load("a", "explicit", m)
	if err != nil || res.Version != "explicit" {
		t.Fatalf("explicit version: %v %v", res, err)
	}

	loaded, err := sourcelda.LoadBundle(bytes.NewReader(bundleBytes(t, m, "a", "embedded-7")))
	if err != nil {
		t.Fatal(err)
	}
	res, err = reg.Load("a", "", loaded)
	if err != nil || res.Version != "embedded-7" {
		t.Fatalf("embedded version: %v %v", res, err)
	}

	res, err = reg.Load("b", "", m)
	if err != nil || !strings.HasPrefix(res.Version, "load-") {
		t.Fatalf("fallback version: %v %v", res, err)
	}
	if !res.Swapped && res.Name != "b" {
		t.Fatalf("load result %v", res)
	}
}

func TestUnloadedDefaultIs404(t *testing.T) {
	reg := newTestRegistry(t, Config{})
	ts := newHTTPServer(t, reg)
	code, out := postInfer(t, ts+"/v1/infer", `{"text":"pencil"}`)
	if code != http.StatusNotFound {
		t.Fatalf("empty registry infer: %d (%v)", code, out)
	}
	if !strings.Contains(out["error"].(string), "no models loaded") {
		t.Fatalf("message %q", out["error"])
	}
	code, _ = doReq(t, http.MethodGet, ts+"/v1/topics", nil)
	if code != http.StatusNotFound {
		t.Fatalf("empty registry topics: %d", code)
	}
	// Health still answers, reporting zero models.
	code, health := doReq(t, http.MethodGet, ts+"/healthz", nil)
	if code != 200 || health["models"].(float64) != 0 {
		t.Fatalf("health %d %v", code, health)
	}
	if _, ok := health["topics"]; ok {
		t.Fatal("health reported topics with no default model")
	}
}

// TestRegistryCloseFailsPendingCleanly: a registry Close with requests
// still queued replies ErrUnloaded instead of hanging callers.
func TestRegistryCloseFailsPendingCleanly(t *testing.T) {
	reg := New(Config{BatchWindow: 0})
	if _, err := reg.Load("m", "", trainModel(t, 7)); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Infer(t.Context(), "m", []string{"pencil ruler"}); err != nil {
		t.Fatal(err)
	}
	reg.Close()
	if _, err := reg.Infer(t.Context(), "m", []string{"pencil"}); err == nil {
		t.Fatal("Infer on a closed registry succeeded")
	}
	// Idempotent.
	reg.Close()
}

// newHTTPServer serves an already-built registry over httptest, returning
// its base URL. The server closes (draining handlers) before the registry.
func newHTTPServer(t testing.TB, reg *Registry) string {
	t.Helper()
	ts := httptest.NewServer(NewServer(reg))
	t.Cleanup(ts.Close)
	return ts.URL
}
