package registry

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sourcelda"
	"sourcelda/internal/obs"
)

// ErrNoLearner means the model exists (or could exist) but has no learning
// chain attached, so it cannot accept fed documents.
var ErrNoLearner = errors.New("registry: model has no learner attached")

// LearnerConfig tunes one model's continuous-learning loop. Zero values
// take the documented defaults.
type LearnerConfig struct {
	// QueueSize bounds the ingest queue in documents; a feed batch that
	// would overflow it is rejected whole with ErrOverloaded (HTTP 429)
	// rather than partially accepted (default 256).
	QueueSize int
	// RepublishEvery is how many appended documents trigger a republish: a
	// fresh flat bundle written atomically into ModelsDir so the watcher
	// hot-swaps the serving build (default 64).
	RepublishEvery int
	// CompactAfter is how many appended documents trigger a compaction
	// retrain — checkpoint, rebuild, CompactSweeps full-corpus sweeps — so
	// fed documents eventually influence the whole chain, not just their own
	// assignments. 0 disables compaction.
	CompactAfter int
	// CompactSweeps is the number of full-corpus sweeps per compaction
	// (default 10).
	CompactSweeps int
	// FoldInSweeps is the number of document-local Gibbs sweeps each fed
	// document gets when appended (default 3).
	FoldInSweeps int
	// ModelsDir is where republished bundles land — the same directory the
	// registry's watcher scans. Required.
	ModelsDir string
}

func (c LearnerConfig) withDefaults() LearnerConfig {
	if c.QueueSize < 1 {
		c.QueueSize = 256
	}
	if c.RepublishEvery < 1 {
		c.RepublishEvery = 64
	}
	if c.CompactSweeps < 1 {
		c.CompactSweeps = 10
	}
	if c.FoldInSweeps < 1 {
		c.FoldInSweeps = 3
	}
	return c
}

// maxFeedBatch caps how many queued documents one updater iteration folds
// in before checking the republish/compaction schedules.
const maxFeedBatch = 32

// learner drives one model's continuous learning: an ingest queue fed by
// POST /v1/models/{name}/feed, a background updater that folds queued
// documents into the warm chain, and the republish loop that exports the
// updated chain as a new bundle version for the watcher to hot-swap. The
// learner is keyed by model name but independent of the serving entry — it
// owns the write side (the chain), the entry owns the read side (the
// latest published snapshot).
type learner struct {
	name string
	reg  *Registry
	rt   *sourcelda.Runtime
	cfg  LearnerConfig

	// mu guards pending (documents accepted but not yet applied) and
	// stopped. The queue channel's capacity equals QueueSize and pending
	// never exceeds it, so sends after a successful reservation never block.
	mu      sync.Mutex
	pending int
	stopped bool
	queue   chan string

	cancel chan struct{}
	done   chan struct{}

	// stats are guarded by smu: the feed path is orders of magnitude colder
	// than the inference path, so a mutex is simpler than atomics and the
	// snapshot is consistent.
	smu            sync.Mutex
	docs           uint64 // documents appended to the chain
	dropped        uint64 // fed documents skipped (no in-vocabulary tokens)
	shed           uint64 // fed documents rejected because the queue was full
	republishes    uint64
	compactions    uint64
	sinceRepublish int
	sinceCompact   int
	updateLatency  *obs.Histogram
}

// FeedInfo is a point-in-time snapshot of one model's learner.
type FeedInfo struct {
	// Model is the model name the learner republishes under.
	Model string
	// Docs counts documents appended to the chain; Dropped counts fed
	// documents skipped for having no in-vocabulary tokens; Shed counts
	// documents rejected with 429 because the ingest queue was full.
	Docs, Dropped, Shed uint64
	// Republishes and Compactions count completed republish and compaction
	// cycles.
	Republishes, Compactions uint64
	// QueueDepth and QueueCapacity describe the ingest queue.
	QueueDepth, QueueCapacity int
	// ChainDocs and ChainSweeps describe the chain behind the learner.
	ChainDocs, ChainSweeps int
	// UpdateLatency is the cumulative histogram of append-batch latencies
	// (seconds per applied batch).
	UpdateLatency obs.HistogramSnapshot
}

// AttachLearner wires a warm chain runtime to the named model: documents
// accepted by Feed are folded into rt, and every cfg.RepublishEvery
// appended documents the updated chain is exported as a new flat bundle
// into cfg.ModelsDir for the watcher to hot-swap. An initial bundle is
// published synchronously so a learner-backed model serves without waiting
// for the first feed cycle. The runtime stays owned by the caller — Close
// it after the registry shuts down.
func (r *Registry) AttachLearner(name string, rt *sourcelda.Runtime, cfg LearnerConfig) error {
	if !validName.MatchString(name) {
		return fmt.Errorf("registry: invalid model name %q (want %s)", name, validName)
	}
	if rt == nil {
		return errors.New("registry: nil runtime")
	}
	cfg = cfg.withDefaults()
	if cfg.ModelsDir == "" {
		return errors.New("registry: learner needs a models directory to republish into")
	}
	l := &learner{
		name:          name,
		reg:           r,
		rt:            rt,
		cfg:           cfg,
		queue:         make(chan string, cfg.QueueSize),
		cancel:        make(chan struct{}),
		done:          make(chan struct{}),
		updateLatency: obs.NewHistogram(nil),
	}
	r.lmu.Lock()
	if r.learnerClosed {
		r.lmu.Unlock()
		return ErrClosed
	}
	if _, dup := r.learners[name]; dup {
		r.lmu.Unlock()
		return fmt.Errorf("registry: model %q already has a learner", name)
	}
	r.learners[name] = l
	r.lmu.Unlock()
	if err := l.republish(); err != nil {
		r.lmu.Lock()
		delete(r.learners, name)
		r.lmu.Unlock()
		return fmt.Errorf("registry: initial publish for %q: %w", name, err)
	}
	go l.run()
	r.cfg.Logger.Info("learner attached",
		"model", name, "feed_queue", cfg.QueueSize,
		"republish_every", cfg.RepublishEvery, "compact_after", cfg.CompactAfter)
	return nil
}

// Feed queues documents for the named model's learner ("" = default
// model). The whole batch is accepted or rejected: ErrOverloaded when it
// would overflow the ingest queue (HTTP 429 with Retry-After), ErrNoLearner
// when the model has no learner. Accepted documents are folded in
// asynchronously by the learner's updater goroutine.
func (r *Registry) Feed(name string, texts []string) error {
	if name == "" {
		name = r.cfg.DefaultModel
	}
	r.lmu.Lock()
	l := r.learners[name]
	r.lmu.Unlock()
	if l == nil {
		return ErrNoLearner
	}
	return l.offer(texts)
}

// FeedInfos snapshots every learner, sorted by model name.
func (r *Registry) FeedInfos() []FeedInfo {
	r.lmu.Lock()
	ls := make([]*learner, 0, len(r.learners))
	for _, l := range r.learners {
		ls = append(ls, l)
	}
	r.lmu.Unlock()
	out := make([]FeedInfo, len(ls))
	for i, l := range ls {
		out[i] = l.snapshot()
	}
	sortFeedInfos(out)
	return out
}

func sortFeedInfos(fi []FeedInfo) {
	for i := 1; i < len(fi); i++ {
		for j := i; j > 0 && fi[j].Model < fi[j-1].Model; j-- {
			fi[j], fi[j-1] = fi[j-1], fi[j]
		}
	}
}

// FeedInfo snapshots the named model's learner ("" = default).
func (r *Registry) FeedInfo(name string) (FeedInfo, error) {
	if name == "" {
		name = r.cfg.DefaultModel
	}
	r.lmu.Lock()
	l := r.learners[name]
	r.lmu.Unlock()
	if l == nil {
		return FeedInfo{}, ErrNoLearner
	}
	return l.snapshot(), nil
}

// closeLearners stops every learner and waits for their updaters to exit;
// called from Registry.Close. Documents still queued are dropped — feeding
// is best-effort ingestion, and callers that need durability keep their own
// source of record.
func (r *Registry) closeLearners() {
	r.lmu.Lock()
	r.learnerClosed = true
	ls := make([]*learner, 0, len(r.learners))
	for name, l := range r.learners {
		ls = append(ls, l)
		delete(r.learners, name)
	}
	r.lmu.Unlock()
	for _, l := range ls {
		l.stop()
	}
}

func (l *learner) stop() {
	l.mu.Lock()
	l.stopped = true
	l.mu.Unlock()
	close(l.cancel)
	<-l.done
}

// offer reserves queue capacity for the whole batch, then enqueues it. The
// all-or-nothing check is what makes the 429 honest: a client never learns
// half its batch was dropped.
func (l *learner) offer(texts []string) error {
	if len(texts) == 0 {
		return nil
	}
	l.mu.Lock()
	if l.stopped {
		l.mu.Unlock()
		return ErrUnloaded
	}
	if l.pending+len(texts) > l.cfg.QueueSize {
		l.mu.Unlock()
		l.smu.Lock()
		l.shed += uint64(len(texts))
		l.smu.Unlock()
		return ErrOverloaded
	}
	l.pending += len(texts)
	l.mu.Unlock()
	for _, t := range texts {
		l.queue <- t
	}
	return nil
}

// run is the updater loop: drain a batch from the ingest queue, fold it
// into the chain, then let the compaction and republish schedules fire.
// One goroutine per learner — chain mutations are inherently serial
// (core.ChainRuntime requires it), so more workers would only contend.
func (l *learner) run() {
	defer close(l.done)
	for {
		var first string
		select {
		case <-l.cancel:
			return
		case first = <-l.queue:
		}
		batch := append(make([]string, 0, maxFeedBatch), first)
	fill:
		for len(batch) < maxFeedBatch {
			select {
			case t := <-l.queue:
				batch = append(batch, t)
			default:
				break fill
			}
		}
		l.apply(batch)
	}
}

// apply folds one batch into the chain and advances the compaction and
// republish schedules.
func (l *learner) apply(batch []string) {
	lg := l.reg.cfg.Logger
	start := time.Now()
	n, err := l.rt.Append(batch, l.cfg.FoldInSweeps)
	dur := time.Since(start)
	l.mu.Lock()
	l.pending -= len(batch)
	l.mu.Unlock()
	if err != nil {
		lg.Error("feed append failed", "model", l.name, "docs", len(batch), "error", err)
		return
	}
	l.updateLatency.Observe(dur.Seconds())
	l.smu.Lock()
	l.docs += uint64(n)
	l.dropped += uint64(len(batch) - n)
	l.sinceRepublish += n
	l.sinceCompact += n
	compact := l.cfg.CompactAfter > 0 && l.sinceCompact >= l.cfg.CompactAfter
	republish := l.sinceRepublish >= l.cfg.RepublishEvery
	l.smu.Unlock()
	lg.Info("feed batch applied",
		"model", l.name, "docs", n, "skipped", len(batch)-n,
		"chain_docs", l.rt.Docs(), "duration_ms", durMillis(dur))

	if compact {
		cstart := time.Now()
		if err := l.rt.Compact(l.cfg.CompactSweeps); err != nil {
			lg.Error("feed compaction failed", "model", l.name, "error", err)
		} else {
			l.smu.Lock()
			l.compactions++
			l.sinceCompact = 0
			l.smu.Unlock()
			lg.Info("feed chain compacted",
				"model", l.name, "sweeps", l.cfg.CompactSweeps,
				"chain_docs", l.rt.Docs(), "duration_ms", durMillis(time.Since(cstart)))
		}
	}
	if republish {
		if err := l.republish(); err != nil {
			// Republish failures are retried by the next cycle because
			// sinceRepublish is only reset on success.
			lg.Error("feed republish failed", "model", l.name, "error", err)
		}
	}
}

// republish snapshots the chain and writes it as a flat bundle into the
// models directory — temp file then rename, so the watcher only ever sees
// complete bundles and the swap costs the serving path nothing.
func (l *learner) republish() error {
	m, err := l.rt.Snapshot()
	if err != nil {
		return err
	}
	l.smu.Lock()
	version := fmt.Sprintf("feed-%d", l.docs)
	l.smu.Unlock()
	tmp, err := os.CreateTemp(l.cfg.ModelsDir, ".feed-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := sourcelda.SaveBundleFlatNamed(tmp, m, l.name, version); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	dst := filepath.Join(l.cfg.ModelsDir, l.name+BundleExt)
	if err := os.Rename(tmp.Name(), dst); err != nil {
		return err
	}
	l.smu.Lock()
	l.republishes++
	l.sinceRepublish = 0
	l.smu.Unlock()
	l.reg.cfg.Logger.Info("model republished",
		"model", l.name, "version", version, "chain_docs", l.rt.Docs(), "path", dst)
	return nil
}

func (l *learner) snapshot() FeedInfo {
	fi := FeedInfo{
		Model:         l.name,
		QueueCapacity: l.cfg.QueueSize,
		ChainDocs:     l.rt.Docs(),
		ChainSweeps:   l.rt.Sweeps(),
		UpdateLatency: l.updateLatency.Snapshot(),
	}
	l.mu.Lock()
	fi.QueueDepth = l.pending
	l.mu.Unlock()
	l.smu.Lock()
	fi.Docs = l.docs
	fi.Dropped = l.dropped
	fi.Shed = l.shed
	fi.Republishes = l.republishes
	fi.Compactions = l.compactions
	l.smu.Unlock()
	return fi
}
