package registry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// latencyWindow is how many recent request latencies the p50/p99 quantiles
// are computed over. A sliding window (rather than cumulative quantiles)
// keeps the numbers responsive to the current load shape; 1024 samples
// bound both memory and scrape-time sort cost.
const latencyWindow = 1024

// modelMetrics accumulates one model's serving counters. All methods are
// safe for concurrent use; counters survive hot swaps (they belong to the
// name, not the version).
type modelMetrics struct {
	mu        sync.Mutex
	byCode    map[int]uint64
	requests  uint64
	shed      uint64
	batches   uint64
	batchDocs uint64
	swaps     uint64
	latSum    float64
	lat       [latencyWindow]float64
	latLen    int
	latIdx    int
}

func newModelMetrics() *modelMetrics {
	return &modelMetrics{byCode: make(map[int]uint64)}
}

// recordRequest counts one inference request's terminal status and latency.
func (m *modelMetrics) recordRequest(code int, d time.Duration) {
	secs := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests++
	m.byCode[code]++
	m.latSum += secs
	m.lat[m.latIdx] = secs
	m.latIdx = (m.latIdx + 1) % latencyWindow
	if m.latLen < latencyWindow {
		m.latLen++
	}
}

// recordShed counts one queue-full rejection. Deliberately separate from
// the 503 status count: an unload also answers 503, but only a full queue
// is "shed" — capacity alerting keys on this counter and must not fire on
// routine model retirements.
func (m *modelMetrics) recordShed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed++
}

// recordBatch counts one scored batch of n documents.
func (m *modelMetrics) recordBatch(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.batchDocs += uint64(n)
}

// recordSwap counts one hot swap.
func (m *modelMetrics) recordSwap() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.swaps++
}

// MetricsSnapshot is a point-in-time copy of one model's counters.
type MetricsSnapshot struct {
	// Requests counts inference requests by any terminal status; ByCode
	// breaks it down by HTTP status code.
	Requests uint64
	ByCode   map[int]uint64
	// Shed counts requests rejected with 503 because the queue was full.
	Shed uint64
	// Batches and BatchDocs count dispatched micro-batches and the
	// documents they carried (BatchDocs/Batches is the mean batch size).
	Batches   uint64
	BatchDocs uint64
	// Swaps counts hot swaps of the model's active version.
	Swaps uint64
	// LatencyP50 and LatencyP99 are request-latency quantiles in seconds
	// over the last latencyWindow requests; LatencySum/LatencyCount are
	// cumulative (Prometheus summary semantics).
	LatencyP50   float64
	LatencyP99   float64
	LatencySum   float64
	LatencyCount uint64
}

func (m *modelMetrics) snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := MetricsSnapshot{
		Requests:     m.requests,
		ByCode:       make(map[int]uint64, len(m.byCode)),
		Shed:         m.shed,
		Batches:      m.batches,
		BatchDocs:    m.batchDocs,
		Swaps:        m.swaps,
		LatencySum:   m.latSum,
		LatencyCount: m.requests,
	}
	for code, n := range m.byCode {
		s.ByCode[code] = n
	}
	if m.latLen > 0 {
		window := make([]float64, m.latLen)
		copy(window, m.lat[:m.latLen])
		sort.Float64s(window)
		s.LatencyP50 = quantile(window, 0.50)
		s.LatencyP99 = quantile(window, 0.99)
	}
	return s
}

// quantile reads the p-quantile from an ascending-sorted window using the
// nearest-rank method.
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// WritePrometheus renders every model's serving metrics, plus process-level
// gauges, in the Prometheus text exposition format — the body of the
// daemon's GET /metrics. Metric fields are documented in docs/API.md.
func (r *Registry) WritePrometheus(w io.Writer) {
	infos := r.ListInfo()

	fmt.Fprintf(w, "# HELP srcldad_models_loaded Number of models currently loaded.\n")
	fmt.Fprintf(w, "# TYPE srcldad_models_loaded gauge\n")
	fmt.Fprintf(w, "srcldad_models_loaded %d\n", len(infos))
	fmt.Fprintf(w, "# HELP srcldad_uptime_seconds Seconds since the registry started.\n")
	fmt.Fprintf(w, "# TYPE srcldad_uptime_seconds gauge\n")
	fmt.Fprintf(w, "srcldad_uptime_seconds %g\n", time.Since(r.start).Seconds())

	fmt.Fprintf(w, "# HELP srcldad_requests_total Inference requests by model and terminal HTTP status.\n")
	fmt.Fprintf(w, "# TYPE srcldad_requests_total counter\n")
	for _, mi := range infos {
		codes := make([]int, 0, len(mi.Stats.ByCode))
		for code := range mi.Stats.ByCode {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "srcldad_requests_total{model=%q,code=\"%d\"} %d\n", mi.Name, code, mi.Stats.ByCode[code])
		}
	}
	fmt.Fprintf(w, "# HELP srcldad_requests_shed_total Inference requests rejected with 503 because the model queue was full.\n")
	fmt.Fprintf(w, "# TYPE srcldad_requests_shed_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_requests_shed_total{model=%q} %d\n", mi.Name, mi.Stats.Shed)
	}
	fmt.Fprintf(w, "# HELP srcldad_batches_total Micro-batches dispatched to the model's worker pool.\n")
	fmt.Fprintf(w, "# TYPE srcldad_batches_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_batches_total{model=%q} %d\n", mi.Name, mi.Stats.Batches)
	}
	fmt.Fprintf(w, "# HELP srcldad_batched_documents_total Documents carried by dispatched micro-batches (divide by srcldad_batches_total for mean batch size).\n")
	fmt.Fprintf(w, "# TYPE srcldad_batched_documents_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_batched_documents_total{model=%q} %d\n", mi.Name, mi.Stats.BatchDocs)
	}
	fmt.Fprintf(w, "# HELP srcldad_queue_depth Documents waiting in the model's queue.\n")
	fmt.Fprintf(w, "# TYPE srcldad_queue_depth gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_queue_depth{model=%q} %d\n", mi.Name, mi.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP srcldad_queue_capacity Bound of the model's pending-document queue.\n")
	fmt.Fprintf(w, "# TYPE srcldad_queue_capacity gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_queue_capacity{model=%q} %d\n", mi.Name, mi.QueueCapacity)
	}
	fmt.Fprintf(w, "# HELP srcldad_open_sessions Inference sessions not yet fully drained (1 in steady state, 2+ during a hot swap).\n")
	fmt.Fprintf(w, "# TYPE srcldad_open_sessions gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_open_sessions{model=%q} %d\n", mi.Name, mi.OpenSessions)
	}
	fmt.Fprintf(w, "# HELP srcldad_model_swaps_total Hot swaps of the model's active version.\n")
	fmt.Fprintf(w, "# TYPE srcldad_model_swaps_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_model_swaps_total{model=%q} %d\n", mi.Name, mi.Stats.Swaps)
	}
	fmt.Fprintf(w, "# HELP srcldad_request_latency_seconds Inference request latency (quantiles over the last %d requests; sum/count cumulative).\n", latencyWindow)
	fmt.Fprintf(w, "# TYPE srcldad_request_latency_seconds summary\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_request_latency_seconds{model=%q,quantile=\"0.5\"} %g\n", mi.Name, mi.Stats.LatencyP50)
		fmt.Fprintf(w, "srcldad_request_latency_seconds{model=%q,quantile=\"0.99\"} %g\n", mi.Name, mi.Stats.LatencyP99)
		fmt.Fprintf(w, "srcldad_request_latency_seconds_sum{model=%q} %g\n", mi.Name, mi.Stats.LatencySum)
		fmt.Fprintf(w, "srcldad_request_latency_seconds_count{model=%q} %d\n", mi.Name, mi.Stats.LatencyCount)
	}
}
