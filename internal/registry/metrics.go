package registry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"sourcelda/internal/obs"
)

// modelMetrics accumulates one model's serving counters. All methods are
// safe for concurrent use; counters survive hot swaps (they belong to the
// name, not the version). Latency is held in fixed-bucket histograms
// (obs.Histogram) rather than a sampled window: buckets aggregate correctly
// across scrapes and models, and never degrade under sustained load the way
// a sliding quantile window does once traffic outruns it.
type modelMetrics struct {
	mu        sync.Mutex
	byCode    map[int]uint64
	requests  uint64
	shed      uint64
	batches   uint64
	batchDocs uint64
	swaps     uint64

	// latency is end-to-end request latency; stages break a request's time
	// into lifecycle segments (queue wait, batch assembly, inference,
	// render). The histograms are lock-free, so the dispatcher's hot path
	// never contends with a scrape.
	latency *obs.Histogram
	stages  [obs.NumStages]*obs.Histogram
}

func newModelMetrics() *modelMetrics {
	m := &modelMetrics{
		byCode:  make(map[int]uint64),
		latency: obs.NewHistogram(nil),
	}
	for i := range m.stages {
		m.stages[i] = obs.NewHistogram(nil)
	}
	return m
}

// recordRequest counts one inference request's terminal status and latency.
func (m *modelMetrics) recordRequest(code int, d time.Duration) {
	m.latency.Observe(d.Seconds())
	m.mu.Lock()
	m.requests++
	m.byCode[code]++
	m.mu.Unlock()
}

// recordStage observes one lifecycle-stage duration.
func (m *modelMetrics) recordStage(s obs.Stage, d time.Duration) {
	if s < obs.NumStages {
		m.stages[s].Observe(d.Seconds())
	}
}

// recordShed counts one queue-full rejection. Deliberately separate from
// the 503 status count: an unload also answers 503, but only a full queue
// is "shed" — capacity alerting keys on this counter and must not fire on
// routine model retirements.
func (m *modelMetrics) recordShed() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.shed++
}

// recordBatch counts one scored batch of n documents.
func (m *modelMetrics) recordBatch(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batches++
	m.batchDocs += uint64(n)
}

// recordSwap counts one hot swap.
func (m *modelMetrics) recordSwap() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.swaps++
}

// MetricsSnapshot is a point-in-time copy of one model's counters.
type MetricsSnapshot struct {
	// Requests counts inference requests by any terminal status; ByCode
	// breaks it down by HTTP status code.
	Requests uint64
	ByCode   map[int]uint64
	// Shed counts requests rejected with 503 because the queue was full.
	Shed uint64
	// Batches and BatchDocs count dispatched micro-batches and the
	// documents they carried (BatchDocs/Batches is the mean batch size).
	Batches   uint64
	BatchDocs uint64
	// Swaps counts hot swaps of the model's active version.
	Swaps uint64
	// Latency is the cumulative request-latency histogram; Stages holds the
	// per-lifecycle-stage histograms, indexed by obs.Stage.
	Latency obs.HistogramSnapshot
	Stages  [obs.NumStages]obs.HistogramSnapshot
	// LatencyP50 and LatencyP99 are quantile estimates interpolated from
	// Latency's buckets (seconds); LatencySum/LatencyCount are its
	// cumulative sum and count.
	LatencyP50   float64
	LatencyP99   float64
	LatencySum   float64
	LatencyCount uint64
}

func (m *modelMetrics) snapshot() MetricsSnapshot {
	s := MetricsSnapshot{Latency: m.latency.Snapshot()}
	for i, h := range m.stages {
		s.Stages[i] = h.Snapshot()
	}
	s.LatencyP50 = s.Latency.Quantile(0.50)
	s.LatencyP99 = s.Latency.Quantile(0.99)
	s.LatencySum = s.Latency.Sum
	s.LatencyCount = s.Latency.Count
	m.mu.Lock()
	defer m.mu.Unlock()
	s.Requests = m.requests
	s.ByCode = make(map[int]uint64, len(m.byCode))
	for code, n := range m.byCode {
		s.ByCode[code] = n
	}
	s.Shed = m.shed
	s.Batches = m.batches
	s.BatchDocs = m.batchDocs
	s.Swaps = m.swaps
	return s
}

// WritePrometheus renders every model's serving metrics, plus process-level
// gauges, in the Prometheus text exposition format — the body of the
// daemon's GET /metrics. Metric fields are documented in docs/API.md.
func (r *Registry) WritePrometheus(w io.Writer) {
	infos := r.ListInfo()

	fmt.Fprintf(w, "# HELP srcldad_models_loaded Number of models currently loaded.\n")
	fmt.Fprintf(w, "# TYPE srcldad_models_loaded gauge\n")
	fmt.Fprintf(w, "srcldad_models_loaded %d\n", len(infos))
	fmt.Fprintf(w, "# HELP srcldad_uptime_seconds Seconds since the registry started.\n")
	fmt.Fprintf(w, "# TYPE srcldad_uptime_seconds gauge\n")
	fmt.Fprintf(w, "srcldad_uptime_seconds %g\n", time.Since(r.start).Seconds())

	fmt.Fprintf(w, "# HELP srcldad_requests_total Inference requests by model and terminal HTTP status.\n")
	fmt.Fprintf(w, "# TYPE srcldad_requests_total counter\n")
	for _, mi := range infos {
		codes := make([]int, 0, len(mi.Stats.ByCode))
		for code := range mi.Stats.ByCode {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "srcldad_requests_total{model=%q,code=\"%d\"} %d\n", mi.Name, code, mi.Stats.ByCode[code])
		}
	}
	fmt.Fprintf(w, "# HELP srcldad_requests_shed_total Inference requests rejected with 503 because the model queue was full.\n")
	fmt.Fprintf(w, "# TYPE srcldad_requests_shed_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_requests_shed_total{model=%q} %d\n", mi.Name, mi.Stats.Shed)
	}
	fmt.Fprintf(w, "# HELP srcldad_batches_total Micro-batches dispatched to the model's worker pool.\n")
	fmt.Fprintf(w, "# TYPE srcldad_batches_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_batches_total{model=%q} %d\n", mi.Name, mi.Stats.Batches)
	}
	fmt.Fprintf(w, "# HELP srcldad_batched_documents_total Documents carried by dispatched micro-batches (divide by srcldad_batches_total for mean batch size).\n")
	fmt.Fprintf(w, "# TYPE srcldad_batched_documents_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_batched_documents_total{model=%q} %d\n", mi.Name, mi.Stats.BatchDocs)
	}
	fmt.Fprintf(w, "# HELP srcldad_queue_depth Documents waiting in the model's queue.\n")
	fmt.Fprintf(w, "# TYPE srcldad_queue_depth gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_queue_depth{model=%q} %d\n", mi.Name, mi.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP srcldad_queue_capacity Bound of the model's pending-document queue.\n")
	fmt.Fprintf(w, "# TYPE srcldad_queue_capacity gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_queue_capacity{model=%q} %d\n", mi.Name, mi.QueueCapacity)
	}
	fmt.Fprintf(w, "# HELP srcldad_open_sessions Inference sessions not yet fully drained (1 in steady state, 2+ during a hot swap).\n")
	fmt.Fprintf(w, "# TYPE srcldad_open_sessions gauge\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_open_sessions{model=%q} %d\n", mi.Name, mi.OpenSessions)
	}
	fmt.Fprintf(w, "# HELP srcldad_model_swaps_total Hot swaps of the model's active version.\n")
	fmt.Fprintf(w, "# TYPE srcldad_model_swaps_total counter\n")
	for _, mi := range infos {
		fmt.Fprintf(w, "srcldad_model_swaps_total{model=%q} %d\n", mi.Name, mi.Stats.Swaps)
	}
	fmt.Fprintf(w, "# HELP srcldad_request_latency_seconds End-to-end inference request latency.\n")
	fmt.Fprintf(w, "# TYPE srcldad_request_latency_seconds histogram\n")
	for _, mi := range infos {
		mi.Stats.Latency.WritePrometheus(w, "srcldad_request_latency_seconds", fmt.Sprintf("model=%q", mi.Name))
	}
	fmt.Fprintf(w, "# HELP srcldad_stage_latency_seconds Time inference documents spend per lifecycle stage (queue_wait, batch_assembly, infer) plus per-request render time.\n")
	fmt.Fprintf(w, "# TYPE srcldad_stage_latency_seconds histogram\n")
	for _, mi := range infos {
		// Only the replica-side stages render here; obs.StageGateway is
		// recorded by srcldagw against its own metrics and would be a
		// permanently empty series on a replica scrape.
		for _, stage := range obs.ServingStages() {
			mi.Stats.Stages[stage].WritePrometheus(w, "srcldad_stage_latency_seconds",
				fmt.Sprintf("model=%q,stage=%q", mi.Name, stage.String()))
		}
	}
	fmt.Fprintf(w, "# HELP srcldad_watcher_load_failures_total Bundle files the directory watcher failed to load, by model name.\n")
	fmt.Fprintf(w, "# TYPE srcldad_watcher_load_failures_total counter\n")
	for _, wf := range r.watcherFailures() {
		fmt.Fprintf(w, "srcldad_watcher_load_failures_total{model=%q} %d\n", wf.name, wf.count)
	}
	fmt.Fprintf(w, "# HELP srcldad_model_mapped_bytes Bytes of bundle file memory-mapped for the model (0 for heap-backed models).\n")
	fmt.Fprintf(w, "# TYPE srcldad_model_mapped_bytes gauge\n")
	var totalMapped int64
	for _, mi := range infos {
		totalMapped += mi.MappedBytes
		fmt.Fprintf(w, "srcldad_model_mapped_bytes{model=%q} %d\n", mi.Name, mi.MappedBytes)
	}
	if feeds := r.FeedInfos(); len(feeds) > 0 {
		writeFeedMetrics(w, feeds)
	}
	obs.WriteRuntimeMetrics(w, "srcldad", totalMapped)
}

// writeFeedMetrics renders the continuous-learning series for every model
// with a learner attached. Rendered only when at least one learner exists:
// a pure serving replica's scrape stays byte-identical to earlier releases.
func writeFeedMetrics(w io.Writer, feeds []FeedInfo) {
	fmt.Fprintf(w, "# HELP srcldad_feed_docs_total Fed documents appended to the model's learning chain.\n")
	fmt.Fprintf(w, "# TYPE srcldad_feed_docs_total counter\n")
	for _, fi := range feeds {
		fmt.Fprintf(w, "srcldad_feed_docs_total{model=%q} %d\n", fi.Model, fi.Docs)
	}
	fmt.Fprintf(w, "# HELP srcldad_feed_dropped_total Fed documents skipped for having no tokens in the model vocabulary.\n")
	fmt.Fprintf(w, "# TYPE srcldad_feed_dropped_total counter\n")
	for _, fi := range feeds {
		fmt.Fprintf(w, "srcldad_feed_dropped_total{model=%q} %d\n", fi.Model, fi.Dropped)
	}
	fmt.Fprintf(w, "# HELP srcldad_feed_shed_total Fed documents rejected with 429 because the ingest queue was full.\n")
	fmt.Fprintf(w, "# TYPE srcldad_feed_shed_total counter\n")
	for _, fi := range feeds {
		fmt.Fprintf(w, "srcldad_feed_shed_total{model=%q} %d\n", fi.Model, fi.Shed)
	}
	fmt.Fprintf(w, "# HELP srcldad_feed_republish_total Bundle versions republished from the learning chain.\n")
	fmt.Fprintf(w, "# TYPE srcldad_feed_republish_total counter\n")
	for _, fi := range feeds {
		fmt.Fprintf(w, "srcldad_feed_republish_total{model=%q} %d\n", fi.Model, fi.Republishes)
	}
	fmt.Fprintf(w, "# HELP srcldad_feed_compactions_total Compaction retrains of the learning chain.\n")
	fmt.Fprintf(w, "# TYPE srcldad_feed_compactions_total counter\n")
	for _, fi := range feeds {
		fmt.Fprintf(w, "srcldad_feed_compactions_total{model=%q} %d\n", fi.Model, fi.Compactions)
	}
	fmt.Fprintf(w, "# HELP srcldad_feed_queue_depth Fed documents accepted but not yet folded into the chain.\n")
	fmt.Fprintf(w, "# TYPE srcldad_feed_queue_depth gauge\n")
	for _, fi := range feeds {
		fmt.Fprintf(w, "srcldad_feed_queue_depth{model=%q} %d\n", fi.Model, fi.QueueDepth)
	}
	fmt.Fprintf(w, "# HELP srcldad_feed_queue_capacity Bound of the model's feed ingest queue.\n")
	fmt.Fprintf(w, "# TYPE srcldad_feed_queue_capacity gauge\n")
	for _, fi := range feeds {
		fmt.Fprintf(w, "srcldad_feed_queue_capacity{model=%q} %d\n", fi.Model, fi.QueueCapacity)
	}
	fmt.Fprintf(w, "# HELP srcldad_feed_chain_docs Documents in the model's learning chain (training corpus plus appended).\n")
	fmt.Fprintf(w, "# TYPE srcldad_feed_chain_docs gauge\n")
	for _, fi := range feeds {
		fmt.Fprintf(w, "srcldad_feed_chain_docs{model=%q} %d\n", fi.Model, fi.ChainDocs)
	}
	fmt.Fprintf(w, "# HELP srcldad_feed_update_seconds Latency of folding one accepted feed batch into the chain.\n")
	fmt.Fprintf(w, "# TYPE srcldad_feed_update_seconds histogram\n")
	for _, fi := range feeds {
		fi.UpdateLatency.WritePrometheus(w, "srcldad_feed_update_seconds", fmt.Sprintf("model=%q", fi.Model))
	}
}
