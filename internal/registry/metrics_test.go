package registry

import (
	"bufio"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"sourcelda"
)

// scrapeMetrics fetches /metrics and parses the exposition text into
// metric{labels} → value.
func scrapeMetrics(t testing.TB, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable metrics line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[key] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsMatchLoad is the acceptance criterion's metrics half: the
// per-model request counters reported by /metrics equal what the load
// generator actually sent, per model and per status class.
func TestMetricsMatchLoad(t *testing.T) {
	ts, reg := newTestServer(t, Config{})
	if _, err := reg.Load("beta", "b1", trainModel(t, 21)); err != nil {
		t.Fatal(err)
	}

	const okDefault, okBeta, badBeta = 7, 5, 3
	for i := 0; i < okDefault; i++ {
		if code, _ := postInfer(t, ts.URL+"/v1/infer", `{"text":"pencil ruler"}`); code != 200 {
			t.Fatalf("default infer %d", code)
		}
	}
	for i := 0; i < okBeta; i++ {
		if code, _ := postInfer(t, ts.URL+"/v1/models/beta/infer", `{"documents":["baseball glove","pencil"]}`); code != 200 {
			t.Fatalf("beta infer %d", code)
		}
	}
	for i := 0; i < badBeta; i++ {
		if code, _ := postInfer(t, ts.URL+"/v1/models/beta/infer", `{"bad":`); code != 400 {
			t.Fatalf("beta bad infer %d", code)
		}
	}

	m := scrapeMetrics(t, ts.URL)
	checks := map[string]float64{
		`srcldad_requests_total{model="default",code="200"}`:     okDefault,
		`srcldad_requests_total{model="beta",code="200"}`:        okBeta,
		`srcldad_requests_total{model="beta",code="400"}`:        badBeta,
		`srcldad_requests_shed_total{model="beta"}`:              0,
		`srcldad_queue_capacity{model="beta"}`:                   256,
		`srcldad_open_sessions{model="beta"}`:                    1,
		`srcldad_model_swaps_total{model="beta"}`:                0,
		`srcldad_models_loaded`:                                  2,
		`srcldad_request_latency_seconds_count{model="default"}`: okDefault,
	}
	for key, want := range checks {
		if got, ok := m[key]; !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", key, got, ok, want)
		}
	}
	// Batches carried exactly the scored documents: ok requests only, beta
	// requests carry 2 docs each.
	if got := m[`srcldad_batched_documents_total{model="beta"}`]; got != okBeta*2 {
		t.Errorf("beta batched docs = %v, want %d", got, okBeta*2)
	}
	if got := m[`srcldad_batches_total{model="default"}`]; got < 1 || got > okDefault {
		t.Errorf("default batches = %v, want within [1,%d]", got, okDefault)
	}
	// Latency quantiles exist, are ordered, and are positive for models
	// that served successful traffic.
	p50 := m[`srcldad_request_latency_seconds{model="default",quantile="0.5"}`]
	p99 := m[`srcldad_request_latency_seconds{model="default",quantile="0.99"}`]
	if p50 <= 0 || p99 < p50 {
		t.Errorf("latency quantiles p50=%v p99=%v", p50, p99)
	}
	if sum := m[`srcldad_request_latency_seconds_sum{model="default"}`]; sum < p50 {
		t.Errorf("latency sum %v below p50 %v", sum, p50)
	}
}

// TestMetricsShedCounting fills a tiny queue and asserts the 503s land in
// both the by-code counter and the dedicated shed counter.
func TestMetricsShedCounting(t *testing.T) {
	// A 1-deep queue, no batching window, one document per batch, and a
	// deliberately slow fold-in schedule: 32 simultaneous requests cannot
	// all fit, so some must shed.
	ts, reg := newTestServer(t, Config{
		QueueSize: 1, MaxBatch: 1, BatchWindow: 0,
		// BurnIn is sized so one batch far exceeds the scheduler preemption
		// quantum: even on one CPU the other requests get to submit (and
		// shed) while the first is being scored.
		Infer: sourcelda.InferOptions{BurnIn: 1000000, Samples: 1},
	})
	done := make(chan int, 32)
	for i := 0; i < 32; i++ {
		go func() {
			code, _ := postInfer(t, ts.URL+"/v1/infer", `{"text":"pencil ruler eraser notebook"}`)
			done <- code
		}()
	}
	var shed, ok float64
	for i := 0; i < 32; i++ {
		switch <-done {
		case 200:
			ok++
		case 503:
			shed++
		default:
			t.Fatal("unexpected status under overload")
		}
	}
	if shed == 0 {
		t.Skip("queue never overflowed on this machine; nothing to assert")
	}
	info, err := reg.Info("")
	if err != nil {
		t.Fatal(err)
	}
	if float64(info.Stats.Shed) != shed {
		t.Fatalf("shed counter %d, want %v", info.Stats.Shed, shed)
	}
	if float64(info.Stats.ByCode[503]) != shed || float64(info.Stats.ByCode[200]) != ok {
		t.Fatalf("by-code %v, want 200:%v 503:%v", info.Stats.ByCode, ok, shed)
	}
}

// TestQuantile pins the nearest-rank arithmetic the summary uses.
func TestQuantile(t *testing.T) {
	win := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if q := quantile(win, 0.5); q != 5 {
		t.Fatalf("p50 = %v", q)
	}
	if q := quantile(win, 0.99); q != 10 {
		t.Fatalf("p99 = %v", q)
	}
	if q := quantile([]float64{3}, 0.99); q != 3 {
		t.Fatalf("single-sample p99 = %v", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty p50 = %v", q)
	}
}

// TestLatencyWindowSlides: the quantile window holds only the most recent
// latencyWindow samples, while sum/count stay cumulative.
func TestLatencyWindowSlides(t *testing.T) {
	m := newModelMetrics()
	for i := 0; i < latencyWindow; i++ {
		m.recordRequest(200, time.Hour) // ancient, slow epoch
	}
	for i := 0; i < latencyWindow; i++ {
		m.recordRequest(200, time.Millisecond) // current, fast epoch
	}
	s := m.snapshot()
	if s.LatencyP99 > 0.002 {
		t.Fatalf("p99 %v still dominated by evicted samples", s.LatencyP99)
	}
	if s.LatencyCount != 2*latencyWindow {
		t.Fatalf("count %d", s.LatencyCount)
	}
	if s.LatencySum < 3600*float64(latencyWindow) {
		t.Fatalf("sum %v lost the early epoch", s.LatencySum)
	}
}
