package registry

import (
	"bufio"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"sourcelda"
)

// scrapeMetrics fetches /metrics and parses the exposition text into
// metric{labels} → value.
func scrapeMetrics(t testing.TB, url string) map[string]float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		key, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable metrics line %q", line)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[key] = f
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestMetricsMatchLoad is the acceptance criterion's metrics half: the
// per-model request counters reported by /metrics equal what the load
// generator actually sent, per model and per status class.
func TestMetricsMatchLoad(t *testing.T) {
	ts, reg := newTestServer(t, Config{})
	if _, err := reg.Load("beta", "b1", trainModel(t, 21)); err != nil {
		t.Fatal(err)
	}

	const okDefault, okBeta, badBeta = 7, 5, 3
	for i := 0; i < okDefault; i++ {
		if code, _ := postInfer(t, ts.URL+"/v1/infer", `{"text":"pencil ruler"}`); code != 200 {
			t.Fatalf("default infer %d", code)
		}
	}
	for i := 0; i < okBeta; i++ {
		if code, _ := postInfer(t, ts.URL+"/v1/models/beta/infer", `{"documents":["baseball glove","pencil"]}`); code != 200 {
			t.Fatalf("beta infer %d", code)
		}
	}
	for i := 0; i < badBeta; i++ {
		if code, _ := postInfer(t, ts.URL+"/v1/models/beta/infer", `{"bad":`); code != 400 {
			t.Fatalf("beta bad infer %d", code)
		}
	}

	m := scrapeMetrics(t, ts.URL)
	checks := map[string]float64{
		`srcldad_requests_total{model="default",code="200"}`:     okDefault,
		`srcldad_requests_total{model="beta",code="200"}`:        okBeta,
		`srcldad_requests_total{model="beta",code="400"}`:        badBeta,
		`srcldad_requests_shed_total{model="beta"}`:              0,
		`srcldad_queue_capacity{model="beta"}`:                   256,
		`srcldad_open_sessions{model="beta"}`:                    1,
		`srcldad_model_swaps_total{model="beta"}`:                0,
		`srcldad_models_loaded`:                                  2,
		`srcldad_request_latency_seconds_count{model="default"}`: okDefault,
	}
	for key, want := range checks {
		if got, ok := m[key]; !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", key, got, ok, want)
		}
	}
	// Batches carried exactly the scored documents: ok requests only, beta
	// requests carry 2 docs each.
	if got := m[`srcldad_batched_documents_total{model="beta"}`]; got != okBeta*2 {
		t.Errorf("beta batched docs = %v, want %d", got, okBeta*2)
	}
	if got := m[`srcldad_batches_total{model="default"}`]; got < 1 || got > okDefault {
		t.Errorf("default batches = %v, want within [1,%d]", got, okDefault)
	}
	// The request-latency histogram is a true bucketed histogram: its +Inf
	// bucket equals its count, and the sum is positive for models that
	// served traffic.
	if inf := m[`srcldad_request_latency_seconds_bucket{model="default",le="+Inf"}`]; inf != okDefault {
		t.Errorf("latency +Inf bucket = %v, want %d", inf, okDefault)
	}
	if sum := m[`srcldad_request_latency_seconds_sum{model="default"}`]; sum <= 0 {
		t.Errorf("latency sum %v not positive", sum)
	}
	// Stage histograms count per scored document (render per request):
	// default served 1-doc requests, beta 2-doc requests.
	stageChecks := map[string]float64{
		`srcldad_stage_latency_seconds_count{model="default",stage="queue_wait"}`:     okDefault,
		`srcldad_stage_latency_seconds_count{model="default",stage="batch_assembly"}`: okDefault,
		`srcldad_stage_latency_seconds_count{model="default",stage="infer"}`:          okDefault,
		`srcldad_stage_latency_seconds_count{model="default",stage="render"}`:         okDefault,
		`srcldad_stage_latency_seconds_count{model="beta",stage="queue_wait"}`:        okBeta * 2,
		`srcldad_stage_latency_seconds_count{model="beta",stage="infer"}`:             okBeta * 2,
		`srcldad_stage_latency_seconds_count{model="beta",stage="render"}`:            okBeta,
	}
	for key, want := range stageChecks {
		if got, ok := m[key]; !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", key, got, ok, want)
		}
	}
	// Process runtime gauges ride along on the scrape.
	if g := m[`srcldad_goroutines`]; g < 1 {
		t.Errorf("goroutine gauge %v", g)
	}
	if mb, ok := m[`srcldad_model_mapped_bytes{model="default"}`]; !ok || mb != 0 {
		t.Errorf("mapped bytes for heap model = %v (present %v), want 0", mb, ok)
	}
}

// TestMetricsShedCounting fills a tiny queue and asserts the 503s land in
// both the by-code counter and the dedicated shed counter.
func TestMetricsShedCounting(t *testing.T) {
	// A 1-deep queue, no batching window, one document per batch, and a
	// deliberately slow fold-in schedule: 32 simultaneous requests cannot
	// all fit, so some must shed.
	ts, reg := newTestServer(t, Config{
		QueueSize: 1, MaxBatch: 1, BatchWindow: 0,
		// BurnIn is sized so one batch far exceeds the scheduler preemption
		// quantum: even on one CPU the other requests get to submit (and
		// shed) while the first is being scored.
		Infer: sourcelda.InferOptions{BurnIn: 1000000, Samples: 1},
	})
	done := make(chan int, 32)
	for i := 0; i < 32; i++ {
		go func() {
			code, _ := postInfer(t, ts.URL+"/v1/infer", `{"text":"pencil ruler eraser notebook"}`)
			done <- code
		}()
	}
	var shed, ok float64
	for i := 0; i < 32; i++ {
		switch <-done {
		case 200:
			ok++
		case 503:
			shed++
		default:
			t.Fatal("unexpected status under overload")
		}
	}
	if shed == 0 {
		t.Skip("queue never overflowed on this machine; nothing to assert")
	}
	info, err := reg.Info("")
	if err != nil {
		t.Fatal(err)
	}
	if float64(info.Stats.Shed) != shed {
		t.Fatalf("shed counter %d, want %v", info.Stats.Shed, shed)
	}
	if float64(info.Stats.ByCode[503]) != shed || float64(info.Stats.ByCode[200]) != ok {
		t.Fatalf("by-code %v, want 200:%v 503:%v", info.Stats.ByCode, ok, shed)
	}
}

// TestLatencyHistogramCumulative: the histogram is cumulative forever —
// unlike the sliding window it replaced, sustained load cannot evict
// history — and the snapshot's derived quantiles stay within bucket bounds.
func TestLatencyHistogramCumulative(t *testing.T) {
	m := newModelMetrics()
	const n = 5000
	for i := 0; i < n; i++ {
		m.recordRequest(200, time.Millisecond)
	}
	m.recordRequest(200, time.Hour) // one extreme outlier
	s := m.snapshot()
	if s.LatencyCount != n+1 {
		t.Fatalf("count %d, want %d", s.LatencyCount, n+1)
	}
	if s.LatencySum < 3600 {
		t.Fatalf("sum %v lost the outlier", s.LatencySum)
	}
	// p50 stays in the millisecond bucket despite the outlier; p99 cannot
	// exceed the top finite bound (the +Inf bucket clamps).
	if s.LatencyP50 > 0.001 {
		t.Fatalf("p50 %v above the 1ms bucket bound", s.LatencyP50)
	}
	if top := s.Latency.Bounds[len(s.Latency.Bounds)-1]; s.LatencyP99 > top {
		t.Fatalf("p99 %v above the top finite bound %v", s.LatencyP99, top)
	}
	// Bucket counts are cumulative and end at the total.
	prev := uint64(0)
	for i, c := range s.Latency.Cumulative {
		if c < prev {
			t.Fatalf("bucket %d not cumulative: %d < %d", i, c, prev)
		}
		prev = c
	}
	if s.Latency.Cumulative[len(s.Latency.Cumulative)-1] != n {
		t.Fatalf("finite buckets hold %d, want %d (outlier in +Inf only)",
			s.Latency.Cumulative[len(s.Latency.Cumulative)-1], n)
	}
}

// TestWatcherFailureCounter: failed watcher loads are counted per model and
// rendered on /metrics.
func TestWatcherFailureCounter(t *testing.T) {
	reg := newTestRegistry(t, Config{})
	reg.recordWatcherFailure("bad")
	reg.recordWatcherFailure("bad")
	reg.recordWatcherFailure("worse")
	var sb strings.Builder
	reg.WritePrometheus(&sb)
	out := sb.String()
	for _, want := range []string{
		`srcldad_watcher_load_failures_total{model="bad"} 2`,
		`srcldad_watcher_load_failures_total{model="worse"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in metrics:\n%s", want, out)
		}
	}
}
