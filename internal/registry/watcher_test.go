package registry

import (
	"bytes"
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sourcelda/internal/obs"
)

// writeBundleFile writes a bundle atomically (temp + rename), the pattern
// the watcher documentation prescribes, with a distinct mtime so a rewrite
// is always detected even on coarse-grained filesystems.
func writeBundleFile(t *testing.T, dir, name string, data []byte, stamp time.Time) string {
	t.Helper()
	tmp := filepath.Join(dir, ".tmp-"+name)
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(tmp, stamp, stamp); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name+BundleExt)
	if err := os.Rename(tmp, path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestWatcherLifecycle drives Scan synchronously (no polling flake):
// appear → load, change → hot swap, disappear → unload.
func TestWatcherLifecycle(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, Config{})
	w := NewWatcher(reg, dir, time.Second)

	// Empty directory: nothing loaded.
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if n := len(reg.Names()); n != 0 {
		t.Fatalf("%d models after empty scan", n)
	}

	// Drop a bundle → it serves under the file's base name.
	m := trainModel(t, 7)
	base := time.Now().Add(-time.Hour)
	writeBundleFile(t, dir, "alpha", bundleBytes(t, m, "alpha", "w1"), base)
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	info, err := reg.Info("alpha")
	if err != nil || info.Version != "w1" {
		t.Fatalf("after drop: %v %v", info, err)
	}
	if _, err := reg.Infer(t.Context(), "alpha", []string{"pencil ruler"}); err != nil {
		t.Fatalf("inference against watched model: %v", err)
	}

	// Unchanged file: no reload (version unchanged, no swap counted).
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if info, _ := reg.Info("alpha"); info.Stats.Swaps != 0 {
		t.Fatalf("unchanged file caused %d swaps", info.Stats.Swaps)
	}

	// Rewrite with a newer mtime → hot swap to the new version.
	writeBundleFile(t, dir, "alpha", bundleBytes(t, m, "alpha", "w2"), base.Add(time.Minute))
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	info, _ = reg.Info("alpha")
	if info.Version != "w2" || info.Stats.Swaps != 1 {
		t.Fatalf("after rewrite: version %q swaps %d", info.Version, info.Stats.Swaps)
	}

	// Remove the file → the watcher unloads the model it loaded.
	if err := os.Remove(filepath.Join(dir, "alpha"+BundleExt)); err != nil {
		t.Fatal(err)
	}
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Info("alpha"); err == nil {
		t.Fatal("model still loaded after its file was removed")
	}
}

// TestWatcherReloadsAfterAdminDelete: the watched directory states the
// desired model set. An admin-API DELETE of a watcher-loaded model whose
// file is still present (and unchanged) is reloaded on the next scan —
// without this, the name would 404 forever until someone touched the file.
func TestWatcherReloadsAfterAdminDelete(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, Config{})
	w := NewWatcher(reg, dir, time.Second)
	writeBundleFile(t, dir, "alpha", bundleBytes(t, trainModel(t, 7), "alpha", "w1"), time.Now().Add(-time.Hour))
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if err := reg.Unload("alpha"); err != nil {
		t.Fatal(err)
	}
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if info, err := reg.Info("alpha"); err != nil || info.Version != "w1" {
		t.Fatalf("unchanged present file not reloaded after admin delete: %v %v", info, err)
	}
}

// TestWatcherDoesNotUnloadAdminModels: removing a file only unloads models
// the watcher itself loaded — an admin-API model with a colliding name is
// left alone.
func TestWatcherDoesNotUnloadAdminModels(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, Config{})
	if _, err := reg.Load("manual", "m1", trainModel(t, 7)); err != nil {
		t.Fatal(err)
	}
	w := NewWatcher(reg, dir, time.Second)
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if _, err := reg.Info("manual"); err != nil {
		t.Fatal("admin-loaded model unloaded by a scan of an unrelated dir")
	}
}

// TestWatcherBadFile: a corrupt bundle is logged with full model/path
// context, counted on the failure counter, and skipped without disturbing
// serving — and is not retried until the file changes.
func TestWatcherBadFile(t *testing.T) {
	dir := t.TempDir()
	var logBuf bytes.Buffer
	logger, err := obs.NewLogger(&logBuf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	reg := newTestRegistry(t, Config{Logger: logger})
	w := NewWatcher(reg, dir, time.Second)
	brokenFailures := func() uint64 {
		for _, wf := range reg.watcherFailures() {
			if wf.name == "broken" {
				return wf.count
			}
		}
		return 0
	}

	base := time.Now().Add(-time.Hour)
	path := writeBundleFile(t, dir, "broken", []byte("not a bundle"), base)
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if n := len(reg.Names()); n != 0 {
		t.Fatalf("%d models loaded from a corrupt file", n)
	}
	if got := brokenFailures(); got != 1 {
		t.Fatalf("failure counter = %d after one bad load, want 1", got)
	}
	// The failure event names the model and the offending file.
	logged := logBuf.String()
	for _, want := range []string{"watcher load failed", `"model":"broken"`, `"path":"` + path + `"`} {
		if !strings.Contains(logged, want) {
			t.Fatalf("load-failure log missing %q:\n%s", want, logged)
		}
	}
	// Unchanged bad file: not retried.
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if got := brokenFailures(); got != 1 {
		t.Fatalf("unchanged corrupt bundle retried every scan (counter %d)", got)
	}
	// Fixed file: picked up.
	writeBundleFile(t, dir, "broken", bundleBytes(t, trainModel(t, 7), "", "fixed"), base.Add(time.Minute))
	if err := w.Scan(); err != nil {
		t.Fatal(err)
	}
	if info, err := reg.Info("broken"); err != nil || info.Version != "fixed" {
		t.Fatalf("repaired bundle not loaded: %v %v", info, err)
	}
}

// TestWatcherPolling exercises the actual Run loop once, end to end over
// HTTP: drop a file, wait for the poller to serve it.
func TestWatcherPolling(t *testing.T) {
	dir := t.TempDir()
	reg := newTestRegistry(t, Config{})
	url := newHTTPServer(t, reg)
	w := NewWatcher(reg, dir, 100*time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	writeBundleFile(t, dir, "polled", bundleBytes(t, trainModel(t, 7), "", "p1"), time.Now())
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(url + "/v1/models/polled")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poller never loaded the dropped bundle")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
