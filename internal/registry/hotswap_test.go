package registry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"sourcelda"
)

func postInferRaw(t testing.TB, url, text string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json",
		strings.NewReader(fmt.Sprintf(`{"text":%q}`, text)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Every response — including those issued mid-swap under full load —
	// carries a request ID for log correlation.
	if id := resp.Header.Get("X-Request-Id"); id == "" {
		t.Error("response missing X-Request-Id header")
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// canonicalResponses scores every text against a fresh single-model daemon
// and returns the exact response bodies — the bit-for-bit oracle for what a
// daemon serving only that model says.
func canonicalResponses(t *testing.T, cfg Config, m *sourcelda.Model, texts []string) map[string]string {
	t.Helper()
	reg := newTestRegistry(t, cfg)
	if _, err := reg.Load("m", "only", m); err != nil {
		t.Fatal(err)
	}
	url := newHTTPServer(t, reg)
	out := make(map[string]string, len(texts))
	for _, text := range texts {
		code, body := postInferRaw(t, url+"/v1/models/m/infer", text)
		if code != http.StatusOK {
			t.Fatalf("oracle scoring failed: %d %s", code, body)
		}
		out[text] = body
	}
	return out
}

// TestHotSwapUnderLoad is the PR's acceptance criterion: one daemon serves
// model A under concurrent inference load, hot-swaps to model B mid-flight,
// and
//
//   - zero requests fail or are dropped across the swap;
//   - every response is bit-for-bit either A's answer or B's answer — no
//     torn hybrid ever escapes;
//   - once the swap is acknowledged, responses match a fresh B-only daemon
//     bit-for-bit;
//   - the old model's session fully drains and releases (open sessions
//     returns to 1) without the request path ever blocking on it.
//
// Run with -race.
func TestHotSwapUnderLoad(t *testing.T) {
	cfg := Config{BatchWindow: time.Millisecond}
	modelA := trainModel(t, 7)
	// B has an extra free topic: a structurally different model (3-wide
	// mixtures vs 2) over the same vocabulary, so A- and B-era responses
	// are always distinguishable while no text ever 422s.
	modelB := trainModelFree(t, 99, 1)
	texts := []string{
		"pencil ruler notebook",
		"baseball umpire inning glove",
		"pencil baseball paper pitcher",
		"eraser notebook paper pencil pencil",
	}
	wantA := canonicalResponses(t, cfg, modelA, texts)
	wantB := canonicalResponses(t, cfg, modelB, texts)
	for _, text := range texts {
		if wantA[text] == wantB[text] {
			t.Fatalf("models A and B agree on %q; the swap would be unobservable", text)
		}
	}

	reg := newTestRegistry(t, cfg)
	if _, err := reg.Load("m", "a", modelA); err != nil {
		t.Fatal(err)
	}
	url := newHTTPServer(t, reg)

	// Load generators: each goroutine hammers one text and records every
	// response body, so we can audit the full stream afterwards.
	type obs struct {
		text string
		body string
	}
	const perText = 30
	var wg sync.WaitGroup
	results := make(chan obs, len(texts)*perText)
	firstWave := make(chan struct{})
	var firstOnce sync.Once
	for _, text := range texts {
		wg.Add(1)
		go func(text string) {
			defer wg.Done()
			for i := 0; i < perText; i++ {
				code, body := postInferRaw(t, url+"/v1/models/m/infer", text)
				if code != http.StatusOK {
					t.Errorf("request failed during hot swap: %d %s", code, body)
					return
				}
				results <- obs{text: text, body: body}
				if i == 2 {
					// Enough pre-swap traffic observed; let the swap begin.
					firstOnce.Do(func() { close(firstWave) })
				}
			}
		}(text)
	}

	// Hot-swap to B in the middle of the load.
	<-firstWave
	req, err := http.NewRequest(http.MethodPut, url+"/v1/models/m?version=b",
		strings.NewReader(string(bundleBytes(t, modelB, "m", ""))))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	swapBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("swap PUT: %d %s", resp.StatusCode, swapBody)
	}

	wg.Wait()
	close(results)

	// Audit the stream: every single response is exactly A's or B's answer.
	var aCount, bCount int
	for r := range results {
		switch r.body {
		case wantA[r.text]:
			aCount++
		case wantB[r.text]:
			bCount++
		default:
			t.Fatalf("response for %q matches neither model:\n%s\nA: %s\nB: %s",
				r.text, r.body, wantA[r.text], wantB[r.text])
		}
	}
	if total := aCount + bCount; total != len(texts)*perText {
		t.Fatalf("%d responses audited, want %d (requests were dropped)", total, len(texts)*perText)
	}
	if aCount == 0 {
		t.Fatal("no pre-swap responses observed; the swap raced ahead of the load")
	}
	if bCount == 0 {
		t.Fatal("no post-swap responses observed; the swap never took effect")
	}
	t.Logf("audited %d A-era and %d B-era responses", aCount, bCount)

	// After the swap is acknowledged, the daemon answers exactly like a
	// fresh B-only daemon — for every text, bit for bit.
	for _, text := range texts {
		code, body := postInferRaw(t, url+"/v1/models/m/infer", text)
		if code != http.StatusOK {
			t.Fatalf("post-swap request failed: %d", code)
		}
		if body != wantB[text] {
			t.Fatalf("post-swap response for %q diverges from a fresh B-only daemon:\n%s\nwant: %s",
				text, body, wantB[text])
		}
	}

	// The old session drains: its refcount releases the pool and the
	// open-sessions gauge returns to 1. Poll briefly — draining completes
	// as soon as the last A-era batch finishes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		info, err := reg.Info("m")
		if err != nil {
			t.Fatal(err)
		}
		if info.OpenSessions == 1 {
			if info.Version != "b" || info.Stats.Swaps != 1 {
				t.Fatalf("post-drain info: %+v", info)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("old session never drained: %d open", info.OpenSessions)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Metrics account for every request the generators sent (plus the
	// 4 post-swap verification requests), with zero shed.
	info, err := reg.Info("m")
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(len(texts)*perText + len(texts))
	if info.Stats.Requests != want || info.Stats.ByCode[200] != want {
		t.Fatalf("metrics requests %d (200s %d), want %d", info.Stats.Requests, info.Stats.ByCode[200], want)
	}
	if info.Stats.Shed != 0 {
		t.Fatalf("%d requests shed during swap", info.Stats.Shed)
	}

	// Observability reconciliation: the stage histograms were hammered by
	// concurrent recording across the swap (run with -race), yet every
	// single-document 200 passed through all four stages exactly once — the
	// histogram counts must equal the generator's request count, no samples
	// lost or duplicated.
	scraped := scrapeMetrics(t, url)
	total := float64(want)
	if got := scraped[`srcldad_requests_total{model="m",code="200"}`]; got != total {
		t.Errorf("requests_total = %v, want %v", got, total)
	}
	if got := scraped[`srcldad_request_latency_seconds_count{model="m"}`]; got != total {
		t.Errorf("request latency histogram count = %v, want %v", got, total)
	}
	for _, stage := range []string{"queue_wait", "batch_assembly", "infer", "render"} {
		key := fmt.Sprintf(`srcldad_stage_latency_seconds_count{model="m",stage=%q}`, stage)
		if got := scraped[key]; got != total {
			t.Errorf("%s = %v, want %v (stage recording diverged from requests_total)", key, got, total)
		}
	}
}

// TestSwapKeepsQueueAndMetrics: a swap must not reset the entry's metrics
// or lose its queue — counters belong to the model name, not the build.
func TestSwapKeepsQueueAndMetrics(t *testing.T) {
	ts, reg := newTestServer(t, Config{})
	if code, _ := postInfer(t, ts.URL+"/v1/infer", `{"text":"pencil"}`); code != 200 {
		t.Fatal("pre-swap request failed")
	}
	if _, err := reg.Load(reg.DefaultModel(), "v2", trainModel(t, 99)); err != nil {
		t.Fatal(err)
	}
	info, err := reg.Info("")
	if err != nil {
		t.Fatal(err)
	}
	if info.Stats.Requests != 1 {
		t.Fatalf("swap reset the request counter: %d", info.Stats.Requests)
	}
	if info.Version != "v2" || info.Stats.Swaps != 1 {
		t.Fatalf("info %+v", info)
	}
	if code, _ := postInfer(t, ts.URL+"/v1/infer", `{"text":"pencil"}`); code != 200 {
		t.Fatal("post-swap request failed")
	}
}
