package registry

import (
	"context"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sourcelda"
)

// BundleExt is the file extension the watcher treats as a model bundle; the
// model name is the file name with the extension stripped (models/foo.bundle
// serves as "foo").
const BundleExt = ".bundle"

// fileState is what the watcher remembers about one bundle file between
// scans: enough to detect change without hashing (size+mtime), plus whether
// the last load attempt failed — a bad file is not retried every tick, only
// when it changes again, while a good unchanged file is re-checked against
// the registry (see Scan) so an out-of-band unload gets reloaded.
//
// Size+mtime alone has a blind spot: a rewrite within the mtime granularity
// that happens to produce the same byte count looks unchanged. So a file
// whose mtime was recent when recorded is marked racy and carries a content
// fingerprint (CRC-32 of its head and tail); while racy, an "unchanged"
// verdict is confirmed against the fingerprint before being trusted. Head
// and tail are where both bundle formats concentrate change — the gzip
// footer CRC and the flat header's checksums differ for any content change —
// so the confirmation reads at most 128 KiB however large the model is. Once
// the mtime ages past the racy window the flag is dropped and the steady
// state is back to two stat fields.
type fileState struct {
	size        int64
	modTime     time.Time
	failed      bool
	racy        bool
	fingerprint uint32
}

// racyWindow is how fresh a file's mtime must be for a same-size same-mtime
// rewrite to still be plausible (filesystem timestamp granularity plus
// scheduling slack).
const racyWindow = 2 * time.Second

// Watcher auto-loads model bundles dropped into a directory: new or changed
// *.bundle files are loaded (a change hot-swaps the model), and removing a
// file unloads the model it had loaded. Detection is polling-based (stat
// size+mtime), so it works on any filesystem with no platform notifier
// dependencies; writers should create bundles under a temp name and rename
// into place, which makes the appearance atomic.
type Watcher struct {
	reg      *Registry
	dir      string
	interval time.Duration
	seen     map[string]fileState
	// owned tracks model names this watcher loaded, so it only unloads what
	// it put in — never a model pushed over the admin API.
	owned map[string]bool
}

// NewWatcher watches dir, polling at the given interval (minimum 100ms,
// default 2s). Call Scan for a synchronous pass (e.g. before the listener
// starts, so boot-time bundles are serving from the first request) and Run
// for the polling loop.
func NewWatcher(reg *Registry, dir string, interval time.Duration) *Watcher {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if interval < 100*time.Millisecond {
		interval = 100 * time.Millisecond
	}
	return &Watcher{
		reg:      reg,
		dir:      dir,
		interval: interval,
		seen:     make(map[string]fileState),
		owned:    make(map[string]bool),
	}
}

// Run polls until ctx is done. Scan errors are logged (Config.Logger), never
// fatal: a transient filesystem error on one tick must not kill serving.
func (w *Watcher) Run(ctx context.Context) {
	ticker := time.NewTicker(w.interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			if err := w.Scan(); err != nil {
				w.reg.cfg.Logger.Warn("watcher scan failed", "dir", w.dir, "error", err)
			}
		}
	}
}

// Scan performs one synchronous pass: load new/changed bundles, unload
// removed ones. Per-file load failures are logged and remembered (the file
// is retried only after it changes again); the returned error covers only a
// failure to read the directory itself.
func (w *Watcher) Scan() error {
	dirEntries, err := os.ReadDir(w.dir)
	if err != nil {
		return fmt.Errorf("read models dir: %w", err)
	}
	present := make(map[string]bool)
	for _, de := range dirEntries {
		if de.IsDir() || !strings.HasSuffix(de.Name(), BundleExt) {
			continue
		}
		name := strings.TrimSuffix(de.Name(), BundleExt)
		if !validName.MatchString(name) {
			w.reg.cfg.Logger.Warn("watcher skipping bundle",
				"file", de.Name(), "dir", w.dir, "reason", "invalid model name")
			continue
		}
		fi, err := de.Info()
		if err != nil {
			continue // deleted between ReadDir and stat; next tick settles it
		}
		present[name] = true
		path := filepath.Join(w.dir, de.Name())
		st := fileState{size: fi.Size(), modTime: fi.ModTime()}
		st.racy = time.Since(st.modTime) < racyWindow
		prev, known := w.seen[name]
		unchanged := known && prev.size == st.size && prev.modTime.Equal(st.modTime)
		if unchanged && prev.racy {
			// Size and mtime match but the recorded state was taken inside
			// the timestamp-granularity window — confirm against the content
			// fingerprint before trusting "unchanged".
			if fp, err := quickFingerprint(path); err == nil && fp != prev.fingerprint {
				unchanged = false
			}
		}
		if unchanged {
			// Unchanged file. Skip it when it is known-bad (retry only once
			// it changes) or its model is still serving. But a present file
			// whose model is gone — e.g. an admin DELETE of a
			// watcher-loaded model — is reloaded: the directory states the
			// desired set, and skipping here would orphan the name until
			// the file is touched.
			if !st.racy && prev.racy {
				// The mtime has aged out of the window; settle to plain
				// size+mtime checks.
				prev.racy = false
				w.seen[name] = prev
			}
			if prev.failed {
				continue
			}
			if _, err := w.reg.Info(name); err == nil {
				continue
			}
		}
		if st.racy {
			if fp, err := quickFingerprint(path); err == nil {
				st.fingerprint = fp
			} else {
				// Unreadable head/tail: leave the zero fingerprint; the next
				// racy confirmation will force a reload, which is the safe
				// direction.
				st.fingerprint = 0
			}
		}
		if err := w.loadFile(name, path); err != nil {
			st.failed = true
			// A bad bundle must page, not rot: the failure carries full
			// model/path context and bumps a counter alerting can key on. The
			// file is retried only once it changes again (see fileState).
			w.reg.recordWatcherFailure(name)
			w.reg.cfg.Logger.Error("watcher load failed",
				"model", name, "path", path,
				"size_bytes", st.size, "mtime", st.modTime, "error", err)
		}
		w.seen[name] = st
	}
	// A removed file unloads its model, but only if this watcher loaded it.
	for name := range w.seen {
		if present[name] {
			continue
		}
		delete(w.seen, name)
		if w.owned[name] {
			delete(w.owned, name)
			if err := w.reg.Unload(name); err == nil {
				w.reg.cfg.Logger.Info("watcher unloaded removed model",
					"model", name, "file", name+BundleExt, "dir", w.dir)
			}
		}
	}
	return nil
}

// loadFile loads one bundle file into the registry. LoadBundleFile sniffs
// the format: flat bundles are memory-mapped (O(1) load, page-cache-shared
// conditionals — drop fifty flat bundles in the directory and the daemon's
// resident cost stays near its metadata), JSON bundles decode as always.
func (w *Watcher) loadFile(name, path string) error {
	m, err := sourcelda.LoadBundleFile(path)
	if err != nil {
		return err
	}
	if _, err := w.reg.Load(name, "", m); err != nil {
		m.Close()
		return err
	}
	w.owned[name] = true
	return nil
}

// quickFingerprint checksums a file's first and last 64 KiB (plus its size).
// Both bundle formats concentrate change there — gzip ends in a CRC and
// length footer, flat bundles lead with header checksums — so this catches
// any rewrite without reading a multi-gigabyte model body.
func quickFingerprint(path string) (uint32, error) {
	const chunk = 64 << 10
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	h := crc32.NewIEEE()
	fmt.Fprintf(h, "%d:", fi.Size())
	if _, err := io.CopyN(h, f, chunk); err != nil && err != io.EOF {
		return 0, err
	}
	if fi.Size() > 2*chunk {
		if _, err := f.Seek(-chunk, io.SeekEnd); err != nil {
			return 0, err
		}
		if _, err := io.CopyN(h, f, chunk); err != nil && err != io.EOF {
			return 0, err
		}
	}
	return h.Sum32(), nil
}
