// Package synth generates the synthetic substitutes for the paper's external
// resources: Wikipedia-like knowledge-source articles, the Reuters-21578-like
// newswire corpus, the MedlinePlus-like medical topic collection, and the
// forward Source-LDA generative sampler that produces ground-truth corpora
// (§IV-B and §IV-D generate their evaluation corpora exactly this way). See
// DESIGN.md §1 for the substitution rationale.
package synth

import (
	"fmt"

	"sourcelda/internal/rng"
)

// CuratedCategory is a named topic with curated signature words, used so the
// Reuters-style experiments produce word lists recognizably close to the
// paper's Table I.
type CuratedCategory struct {
	Label string
	Words []string
}

// sharedBackground is newswire filler vocabulary shared across all topics;
// a fraction of every article and document is drawn from it, creating the
// inter-topic overlap real corpora exhibit.
var sharedBackground = []string{
	"said", "year", "market", "company", "prices", "government", "percent",
	"report", "week", "month", "billion", "million", "official", "statement",
	"rose", "fell", "increase", "decline", "economy", "economic", "growth",
	"figures", "data", "analysts", "expected", "quarter", "annual", "total",
	"major", "new", "last", "high", "low", "level", "record", "pct", "mln",
	"dlrs", "released", "announced", "early", "late", "compared", "previous",
}

// curatedCategories carries the paper's own Reuters category names (the
// Fig. 2 topic list plus Table I's topics and the commodity categories the
// dataset section mentions), each with signature vocabulary. The Table I
// word lists for Inventories, Natural Gas and Balance of Payments appear
// verbatim so the reproduction's Table I is directly comparable.
var curatedCategories = []CuratedCategory{
	{"Money Supply", []string{"money", "supply", "m1", "m2", "m3", "fed", "reserve", "federal", "monetary", "aggregates", "liquidity", "circulation", "deposits", "banking", "central"}},
	{"Unemployment", []string{"unemployment", "jobless", "jobs", "workers", "labor", "labour", "employment", "workforce", "claims", "payroll", "hiring", "layoffs", "seasonally", "adjusted", "rate"}},
	{"Balance of Payments", []string{"account", "surplus", "deficit", "current", "balance", "currency", "trade", "exchange", "capital", "foreign", "payments", "reserves", "external", "flows", "invisible"}},
	{"Consumer Price Index", []string{"consumer", "price", "index", "inflation", "cpi", "cost", "living", "prices", "basket", "goods", "monthly", "food", "housing", "energy", "core"}},
	{"Canadian Dollar", []string{"canadian", "dollar", "canada", "ottawa", "toronto", "currency", "exchange", "cents", "traded", "bank", "intervention", "crosses", "quoted", "firm", "parity"}},
	{"Hong Kong Dollar", []string{"hong", "kong", "dollar", "peg", "pegged", "currency", "exchange", "monetary", "authority", "territory", "traded", "link", "band", "colony", "rate"}},
	{"Inventories", []string{"inventory", "cost", "stock", "accounting", "goods", "management", "time", "costs", "financial", "process", "warehouse", "stocks", "turnover", "storage", "materials"}},
	{"Japanese Yen", []string{"yen", "japan", "japanese", "tokyo", "currency", "exchange", "dealers", "intervention", "boj", "traded", "firmer", "dollar", "session", "ministry", "finance"}},
	{"Australian Dollar", []string{"australian", "dollar", "australia", "sydney", "currency", "exchange", "traded", "reserve", "cents", "firm", "commodity", "rate", "float", "canberra", "dealers"}},
	{"Interest Rates", []string{"interest", "rates", "rate", "discount", "lending", "prime", "bank", "credit", "borrowing", "cut", "raised", "monetary", "policy", "basis", "points"}},
	{"Swiss Franc", []string{"swiss", "franc", "switzerland", "zurich", "currency", "exchange", "national", "bank", "traded", "firm", "safe", "haven", "francs", "dealers", "rate"}},
	{"Singapore Dollar", []string{"singapore", "dollar", "currency", "exchange", "monetary", "authority", "traded", "band", "managed", "float", "rate", "dealers", "firm", "city", "state"}},
	{"Wholesale Price Index", []string{"wholesale", "price", "index", "producer", "prices", "wpi", "inflation", "goods", "factory", "gate", "monthly", "commodities", "raw", "materials", "finished"}},
	{"New Zealand Dollar", []string{"zealand", "dollar", "wellington", "kiwi", "currency", "exchange", "traded", "reserve", "cents", "float", "rate", "auckland", "dealers", "firm", "commodity"}},
	{"Retail Sales", []string{"retail", "sales", "stores", "consumer", "spending", "shoppers", "merchandise", "sold", "outlets", "seasonally", "adjusted", "monthly", "goods", "demand", "volume"}},
	{"Capacity Utilisation", []string{"capacity", "utilisation", "utilization", "factories", "operating", "plants", "industrial", "output", "production", "rate", "manufacturing", "idle", "full", "slack", "mills"}},
	{"Trade", []string{"trade", "exports", "imports", "tariff", "deficit", "surplus", "goods", "shipments", "customs", "barriers", "agreement", "partners", "balance", "protectionism", "quotas"}},
	{"Industrial Production Index", []string{"industrial", "production", "index", "output", "factories", "manufacturing", "mining", "utilities", "seasonally", "adjusted", "monthly", "plants", "goods", "durable", "machinery"}},
	{"Housing Starts", []string{"housing", "starts", "homes", "construction", "builders", "units", "permits", "residential", "single", "family", "apartments", "mortgage", "building", "annualized", "dwellings"}},
	{"Personal Income", []string{"personal", "income", "earnings", "wages", "salaries", "disposable", "households", "spending", "savings", "consumers", "benefits", "transfer", "adjusted", "monthly", "gains"}},
	{"Natural Gas", []string{"gas", "natural", "used", "water", "oil", "carbon", "cubic", "energy", "fuel", "million", "pipeline", "methane", "drilling", "wells", "feet"}},
	{"Crude Oil", []string{"crude", "oil", "barrel", "barrels", "opec", "petroleum", "refinery", "output", "drilling", "wells", "posted", "bpd", "producers", "fields", "exploration"}},
	{"Shipping", []string{"shipping", "vessels", "port", "cargo", "freight", "tonnage", "ships", "tanker", "charter", "seamen", "gulf", "strike", "loading", "harbour", "maritime"}},
	{"Rubber", []string{"rubber", "tyre", "plantations", "latex", "malaysian", "tonnes", "natural", "synthetic", "producers", "kuala", "lumpur", "agreement", "buffer", "stockpile", "growers"}},
	{"Zinc", []string{"zinc", "metal", "smelter", "mine", "ore", "tonnes", "refined", "galvanizing", "producers", "concentrate", "mining", "output", "lead", "alloy", "metals"}},
	{"Coffee", []string{"coffee", "beans", "bags", "brazil", "colombia", "ico", "quotas", "export", "arabica", "robusta", "harvest", "growers", "roasters", "crop", "producers"}},
	{"Gold", []string{"gold", "ounce", "bullion", "mine", "mining", "ounces", "troy", "precious", "metal", "reserves", "fixing", "karat", "refinery", "jewellery", "ingots"}},
	{"Wheat", []string{"wheat", "grain", "bushels", "harvest", "crop", "farmers", "tonnes", "winter", "spring", "acreage", "export", "flour", "usda", "planting", "yields"}},
	{"Sugar", []string{"sugar", "cane", "beet", "tonnes", "refined", "raw", "mills", "harvest", "quota", "sweetener", "producers", "crop", "exporters", "intervention", "white"}},
	{"Copper", []string{"copper", "metal", "smelter", "mine", "cathode", "tonnes", "ore", "concentrate", "refined", "wire", "producers", "mining", "chile", "output", "grade"}},
	{"Cocoa", []string{"cocoa", "beans", "tonnes", "ivory", "coast", "ghana", "buffer", "stock", "icco", "butter", "grinding", "crop", "harvest", "exporters", "producers"}},
	{"Cotton", []string{"cotton", "bales", "crop", "textile", "fiber", "harvest", "acreage", "planting", "mills", "lint", "growers", "staple", "yarn", "export", "usda"}},
	{"Soybeans", []string{"soybean", "soybeans", "meal", "oilseed", "bushels", "crush", "crop", "harvest", "export", "acreage", "farmers", "usda", "planting", "processors", "oil"}},
	{"Livestock", []string{"cattle", "hogs", "livestock", "slaughter", "beef", "pork", "herds", "feedlots", "ranchers", "meat", "weights", "heads", "packers", "auction", "steers"}},
	{"Aluminium", []string{"aluminium", "aluminum", "smelter", "alumina", "bauxite", "tonnes", "ingot", "producers", "metal", "rolling", "capacity", "potlines", "refinery", "output", "alloy"}},
	{"Gross National Product", []string{"gross", "national", "product", "gnp", "gdp", "growth", "quarterly", "output", "expansion", "recession", "revised", "real", "annualized", "domestic", "forecast"}},
	{"Reserves", []string{"reserves", "foreign", "exchange", "gold", "holdings", "central", "bank", "official", "assets", "drawing", "rights", "imf", "position", "currency", "fund"}},
	{"Leading Indicators", []string{"leading", "indicators", "composite", "index", "economy", "signals", "outlook", "forecast", "turning", "points", "recession", "expansion", "monthly", "gauge", "activity"}},
	{"Orange Juice", []string{"orange", "juice", "concentrate", "frozen", "florida", "crop", "citrus", "groves", "freeze", "brazil", "boxes", "processors", "harvest", "gallons", "futures"}},
	{"Tin", []string{"tin", "metal", "tonnes", "smelter", "ore", "itc", "buffer", "stock", "penang", "producers", "mining", "solder", "council", "kuala", "concentrates"}},
	{"Acquisitions", []string{"acquisition", "merger", "takeover", "shares", "stake", "shareholders", "offer", "bid", "tender", "acquire", "board", "stock", "buyout", "agreed", "deal"}},
	{"Earnings", []string{"earnings", "profit", "net", "loss", "shr", "qtr", "revs", "dividend", "quarter", "results", "income", "operating", "share", "reported", "year"}},
	{"Grain", []string{"grain", "tonnes", "shipment", "export", "crop", "harvest", "elevator", "cargoes", "maize", "sorghum", "deliveries", "usda", "silo", "stocks", "carryover"}},
	{"Corn", []string{"corn", "maize", "bushels", "acreage", "planting", "harvest", "yield", "belt", "feed", "usda", "crop", "farmers", "silking", "export", "kernels"}},
	{"Barley", []string{"barley", "malting", "feed", "tonnes", "crop", "harvest", "acreage", "brewers", "export", "grain", "spring", "winter", "yields", "farmers", "shipments"}},
	{"Rice", []string{"rice", "paddy", "milled", "tonnes", "harvest", "crop", "export", "thailand", "jasmine", "growers", "irrigation", "mills", "broken", "grades", "stocks"}},
	{"Rapeseed", []string{"rapeseed", "canola", "oilseed", "crush", "tonnes", "crop", "acreage", "harvest", "meal", "oil", "winnipeg", "farmers", "export", "planting", "yields"}},
	{"Palm Oil", []string{"palm", "oil", "crude", "refined", "malaysia", "indonesia", "tonnes", "plantations", "olein", "stearin", "kernel", "export", "estates", "mills", "shipments"}},
	{"Soy Oil", []string{"soyoil", "soybean", "oil", "crude", "refined", "tonnes", "crush", "export", "tanks", "processors", "degummed", "shipments", "cargoes", "edible", "stocks"}},
	{"Soy Meal", []string{"soymeal", "meal", "protein", "pellets", "tonnes", "crush", "feed", "export", "processors", "cargoes", "shipments", "hipro", "stocks", "demand", "poultry"}},
	{"Sunseed", []string{"sunflower", "sunseed", "oilseed", "tonnes", "crop", "crush", "harvest", "acreage", "oil", "meal", "export", "farmers", "planting", "yields", "seeds"}},
	{"Groundnut", []string{"groundnut", "peanut", "kernels", "tonnes", "crop", "harvest", "shelled", "export", "oil", "meal", "growers", "acreage", "india", "senegal", "crushing"}},
	{"Linseed", []string{"linseed", "flaxseed", "oilseed", "tonnes", "crop", "crush", "oil", "meal", "export", "acreage", "harvest", "farmers", "fibre", "planting", "yields"}},
	{"Coconut", []string{"coconut", "copra", "oil", "tonnes", "philippines", "desiccated", "mills", "export", "plantations", "crushing", "kernel", "shipments", "producers", "estates", "groves"}},
	{"Palladium", []string{"palladium", "ounce", "metal", "precious", "troy", "catalytic", "refinery", "mining", "producers", "fixing", "ingots", "russia", "autocatalyst", "ounces", "supplies"}},
	{"Platinum", []string{"platinum", "ounce", "troy", "precious", "metal", "mining", "refinery", "fixing", "jewellery", "autocatalyst", "producers", "ounces", "ingots", "supplies", "mines"}},
	{"Silver", []string{"silver", "ounce", "troy", "bullion", "metal", "precious", "fixing", "coins", "mining", "refinery", "ounces", "ingots", "producers", "supplies", "mines"}},
	{"Lead", []string{"lead", "metal", "smelter", "tonnes", "ore", "concentrate", "batteries", "refined", "producers", "mining", "output", "galena", "recycling", "stocks", "grades"}},
	{"Nickel", []string{"nickel", "metal", "tonnes", "smelter", "ore", "stainless", "steel", "producers", "mining", "refined", "cathode", "laterite", "output", "stocks", "alloys"}},
	{"Iron and Steel", []string{"steel", "iron", "ore", "mills", "tonnes", "blast", "furnace", "rolled", "producers", "scrap", "ingots", "slabs", "output", "smelting", "coke"}},
	{"Strategic Metals", []string{"strategic", "metals", "tungsten", "cobalt", "titanium", "stockpile", "defense", "reserves", "alloys", "rare", "ores", "supplies", "producers", "critical", "minerals"}},
	{"Propane", []string{"propane", "gas", "liquefied", "petroleum", "lpg", "gallons", "cargoes", "tanks", "heating", "butane", "shipments", "terminals", "posted", "supplies", "distributors"}},
	{"Heating Oil", []string{"heating", "oil", "gallons", "distillate", "barrels", "refinery", "winter", "supplies", "cargoes", "harbor", "posted", "stocks", "terminals", "demand", "gasoil"}},
	{"Jet Fuel", []string{"jet", "fuel", "kerosene", "gallons", "barrels", "refinery", "airlines", "aviation", "cargoes", "posted", "supplies", "stocks", "terminals", "demand", "distillate"}},
	{"Naphtha", []string{"naphtha", "barrels", "cargoes", "petrochemical", "refinery", "feedstock", "tonnes", "gasoline", "blending", "shipments", "cracker", "supplies", "terminals", "posted", "spot"}},
	{"Fuel Oil", []string{"fuel", "oil", "residual", "barrels", "bunker", "cargoes", "refinery", "viscosity", "sulphur", "posted", "supplies", "terminals", "stocks", "shipments", "spot"}},
	{"Petrochemicals", []string{"petrochemical", "ethylene", "polymer", "plastics", "resin", "plants", "cracker", "feedstock", "propylene", "benzene", "styrene", "producers", "capacity", "tonnes", "chemicals"}},
	{"Potato", []string{"potato", "potatoes", "tubers", "crop", "harvest", "acreage", "growers", "storage", "seed", "processing", "chips", "tonnes", "yields", "planting", "farms"}},
	{"Tea", []string{"tea", "auction", "kilos", "leaf", "estates", "brokers", "colombo", "mombasa", "gardens", "plucking", "export", "growers", "blends", "chests", "crop"}},
	{"Rye", []string{"rye", "grain", "tonnes", "crop", "winter", "harvest", "acreage", "bread", "feed", "export", "farmers", "planting", "yields", "milling", "stocks"}},
	{"Hops", []string{"hops", "brewing", "beer", "alpha", "acids", "growers", "harvest", "acreage", "pellets", "contracts", "breweries", "crop", "yards", "kilns", "bales"}},
	{"Lumber", []string{"lumber", "timber", "sawmills", "logs", "board", "feet", "plywood", "forestry", "softwood", "spruce", "mills", "housing", "studs", "harvest", "stumpage"}},
	{"Wool", []string{"wool", "bales", "fleece", "auction", "merino", "greasy", "micron", "growers", "shearing", "textile", "clip", "brokers", "yarn", "sheep", "export"}},
	{"Vegetable Oil", []string{"vegetable", "oil", "edible", "tonnes", "refined", "crude", "cooking", "cargoes", "import", "export", "tanks", "processors", "blends", "shipments", "stocks"}},
	{"Carcass Meat", []string{"carcass", "beef", "pork", "meat", "slaughter", "weights", "packers", "boxed", "frozen", "tonnes", "export", "inspection", "cuts", "chilled", "shipments"}},
	{"Cattle Feed", []string{"feed", "cattle", "rations", "feedlots", "grains", "supplement", "fodder", "silage", "hay", "pellets", "nutrition", "mills", "tonnes", "livestock", "protein"}},
	{"Dollar General", []string{"dollar", "currency", "exchange", "dealers", "traded", "intervention", "central", "banks", "session", "firmer", "softer", "quoted", "crosses", "spot", "forward"}},
	{"Oat", []string{"oats", "grain", "bushels", "crop", "harvest", "acreage", "feed", "milling", "farmers", "planting", "yields", "export", "tonnes", "rolled", "stocks"}},
}

// CuratedCategories returns a copy of the curated Reuters-style categories.
func CuratedCategories() []CuratedCategory {
	out := make([]CuratedCategory, len(curatedCategories))
	copy(out, curatedCategories)
	return out
}

// SharedBackgroundWords returns the shared newswire filler vocabulary.
func SharedBackgroundWords() []string {
	out := make([]string, len(sharedBackground))
	copy(out, sharedBackground)
	return out
}

// syllables used to mint deterministic pseudo-terms for synthetic topic
// vocabularies (medical dictionary, filler categories).
var syllableOnsets = []string{"br", "c", "d", "f", "g", "gr", "k", "l", "m", "n", "p", "pl", "r", "s", "st", "t", "tr", "v", "z"}
var syllableNuclei = []string{"a", "e", "i", "o", "u", "ae", "io", "ea", "ou"}
var syllableCodas = []string{"", "n", "r", "s", "x", "l", "m", "st", "nd"}

// MintWord deterministically generates a pronounceable pseudo-word from r
// with the given number of syllables.
func MintWord(r *rng.RNG, syllables int) string {
	if syllables < 1 {
		syllables = 1
	}
	var out []byte
	for i := 0; i < syllables; i++ {
		out = append(out, syllableOnsets[r.Intn(len(syllableOnsets))]...)
		out = append(out, syllableNuclei[r.Intn(len(syllableNuclei))]...)
		out = append(out, syllableCodas[r.Intn(len(syllableCodas))]...)
	}
	return string(out)
}

// MintVocabulary generates n distinct pseudo-words.
func MintVocabulary(r *rng.RNG, n, syllables int) []string {
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for len(out) < n {
		w := MintWord(r, syllables)
		if seen[w] {
			w = fmt.Sprintf("%s%d", w, len(out))
		}
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// medicalPrefixes and medicalSuffixes combine into the synthetic MedlinePlus
// topic names ("Cardio Syndrome", "Neuro Disorder", …).
var medicalPrefixes = []string{
	"Cardio", "Neuro", "Gastro", "Hepato", "Nephro", "Pulmo", "Dermato",
	"Hemato", "Immuno", "Endo", "Osteo", "Arthro", "Myo", "Angio", "Broncho",
	"Cranio", "Cyto", "Entero", "Fibro", "Glyco", "Litho", "Lympho", "Melano",
	"Onco", "Opto", "Oto", "Patho", "Pedia", "Psycho", "Rhino", "Sclero",
	"Thermo", "Thrombo", "Toxo", "Vaso", "Viro", "Xeno", "Chondro", "Spondylo",
}
var medicalSuffixes = []string{
	"Syndrome", "Disorder", "Disease", "Infection", "Deficiency", "Therapy",
	"Condition", "Dystrophy", "Lesion", "Trauma", "Pathy", "Itis", "Osis",
	"Emia", "Plasia",
}

// MedicalTopicNames deterministically generates n distinct medical-sounding
// topic names (enough combinations exist for the paper's 578).
func MedicalTopicNames(n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		p := medicalPrefixes[i%len(medicalPrefixes)]
		s := medicalSuffixes[(i/len(medicalPrefixes))%len(medicalSuffixes)]
		name := p + " " + s
		if i >= len(medicalPrefixes)*len(medicalSuffixes) {
			name = fmt.Sprintf("%s %d", name, i)
		}
		out = append(out, name)
	}
	return out
}

// FillerCategoryNames mints n extra category names ("Category Alpha-7"
// style) to extend the curated list up to the paper's 80-topic superset.
func FillerCategoryNames(n int, r *rng.RNG) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("Commodity %s-%d", capitalize(MintWord(r, 2)), i)
	}
	return out
}

func capitalize(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}
