package synth

import (
	"fmt"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/rng"
	"sourcelda/internal/textproc"
)

// CaseStudy reproduces the §I motivating example: a two-document corpus
//
//	d1 - pencil, pencil, umpire
//	d2 - ruler, ruler, baseball
//
// with knowledge-source articles for "School Supplies" and "Baseball"
// (stand-ins for the Wikipedia articles the paper uses). The ideal
// assignment places pencil/ruler under School Supplies and umpire/baseball
// under Baseball.
type CaseStudyData struct {
	Corpus *corpus.Corpus
	Source *knowledge.Source
	// SchoolSupplies and Baseball are the article indices.
	SchoolSupplies, Baseball int
}

// CaseStudy builds the case-study corpus and knowledge source.
func CaseStudy() *CaseStudyData {
	c := corpus.New()
	stop := textproc.DefaultStopwords()
	c.AddText("d1", "pencil pencil umpire", stop)
	c.AddText("d2", "ruler ruler baseball", stop)

	school := knowledge.NewArticleFromText("School Supplies",
		`pencil pencil pencil pencil pencil pencil eraser eraser eraser ruler
		 ruler ruler ruler notebook notebook paper paper paper pen pen pen
		 laptop laptop book book book backpack crayon marker glue scissors
		 pencil ruler eraser paper classroom classroom student student
		 school school school supplies supplies stationery binder folder`,
		c.Vocab, stop, true)
	baseball := knowledge.NewArticleFromText("Baseball",
		`baseball baseball baseball baseball baseball baseball pitcher pitcher
		 pitcher batter batter batter umpire umpire umpire inning inning
		 catcher catcher outfield infield home run runs bases bases stolen
		 league league league stadium fans glove bat bat ball ball ball
		 strike strike pitch pitch team team game game game season player players`,
		c.Vocab, stop, true)

	src := knowledge.MustNewSource([]*knowledge.Article{school, baseball})
	return &CaseStudyData{Corpus: c, Source: src, SchoolSupplies: 0, Baseball: 1}
}

// ReutersOptions parameterizes the Reuters-21578-like scenario (§IV-C's
// conditions: a 2,000-document subset, an 80-topic crawled superset of which
// 49 appear in the corpus).
type ReutersOptions struct {
	// NumCategories is the knowledge-source superset size (paper: 80).
	NumCategories int
	// LiveCategories is how many categories actually generate documents
	// (paper: 49).
	LiveCategories int
	// NumDocs is the corpus size (paper subset: 2000).
	NumDocs int
	// AvgDocLen is the Poisson mean document length. Default 80.
	AvgDocLen int
	// UnknownTopics is the number of non-source topics mixed into the
	// corpus (newswire content with no knowledge-source entry). Default 5.
	UnknownTopics int
	// Alpha is the document-topic concentration. Default 0.08 (sparse
	// mixtures — a newswire article covers few categories).
	Alpha float64
	// Mu, Sigma parameterize per-topic λ. Defaults 0.7 / 0.3 (the values
	// §IV-C selects by perplexity).
	Mu, Sigma float64
	// ArticleTokens is the knowledge-source article length. Default 400.
	ArticleTokens int
	// Seed drives everything.
	Seed int64
}

func (o ReutersOptions) withDefaults() ReutersOptions {
	if o.NumCategories <= 0 {
		o.NumCategories = 80
	}
	if o.LiveCategories <= 0 || o.LiveCategories > o.NumCategories {
		o.LiveCategories = (o.NumCategories*49 + 40) / 80
	}
	if o.NumDocs <= 0 {
		o.NumDocs = 2000
	}
	if o.AvgDocLen <= 0 {
		o.AvgDocLen = 80
	}
	if o.UnknownTopics < 0 {
		o.UnknownTopics = 0
	} else if o.UnknownTopics == 0 {
		o.UnknownTopics = 5
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.08
	}
	if o.Mu == 0 {
		o.Mu = 0.7
	}
	if o.Sigma == 0 {
		o.Sigma = 0.3
	}
	if o.ArticleTokens <= 0 {
		o.ArticleTokens = 400
	}
	return o
}

// ReutersData is the generated newswire scenario.
type ReutersData struct {
	Corpus *corpus.Corpus
	Source *knowledge.Source
	Vocab  *textproc.Vocabulary
	// Live lists the article indices that generated documents.
	Live []int
	// Generated carries the full ground truth.
	Generated *Generated
}

// ReutersLike builds the 80-category knowledge source (curated categories
// first, minted fillers after) and generates a newswire-like corpus from a
// random subset of live categories plus unknown topics, following the
// Source-LDA generative model.
func ReutersLike(opts ReutersOptions) (*ReutersData, error) {
	opts = opts.withDefaults()
	cats := GeneratedCategories(opts.NumCategories, 15, opts.Seed+1)
	enc := BuildEncyclopedia(cats, nil, EncyclopediaOptions{
		ArticleTokens: opts.ArticleTokens,
		Seed:          opts.Seed + 2,
	})
	r := rng.New(opts.Seed + 3)
	live := r.SampleWithoutReplacement(opts.NumCategories, opts.LiveCategories)

	gen, err := Generate(enc.Source, enc.Vocab, GenerativeOptions{
		NumDocs:          opts.NumDocs,
		AvgDocLen:        opts.AvgDocLen,
		Alpha:            opts.Alpha,
		Mu:               opts.Mu,
		Sigma:            opts.Sigma,
		LiveTopics:       live,
		NumUnknownTopics: opts.UnknownTopics,
		Seed:             opts.Seed + 4,
	})
	if err != nil {
		return nil, fmt.Errorf("synth: reuters generation: %w", err)
	}
	return &ReutersData{
		Corpus:    gen.Corpus,
		Source:    enc.Source,
		Vocab:     enc.Vocab,
		Live:      live,
		Generated: gen,
	}, nil
}

// MedlineOptions parameterizes the MedlinePlus-like scenario (§IV-D: 578
// topics, 100 live, 2000 documents, Davg = 500).
type MedlineOptions struct {
	// NumTopics is B, the dictionary size (paper: 578).
	NumTopics int
	// LiveTopics is K, the number of generating topics (paper: 100).
	LiveTopics int
	// NumDocs is D (paper: 2000).
	NumDocs int
	// AvgDocLen is Davg (paper: 500).
	AvgDocLen int
	// Alpha is the document-topic concentration. Default 0.1.
	Alpha float64
	// Mu, Sigma parameterize per-topic λ (paper: 0.7/0.3 for the full
	// model, 5.0/2.0 for the bijective evaluation — values above 1 clamp
	// to 1 after truncation).
	Mu, Sigma float64
	// WordsPerTopic is the minted signature vocabulary per topic. Default 20.
	WordsPerTopic int
	// ArticleTokens is the knowledge-source article length. Default 300.
	ArticleTokens int
	// UnknownTopics mixes in non-source topics (0 for the bijective
	// experiments).
	UnknownTopics int
	// Seed drives everything.
	Seed int64
}

func (o MedlineOptions) withDefaults() MedlineOptions {
	if o.NumTopics <= 0 {
		o.NumTopics = 578
	}
	if o.LiveTopics <= 0 || o.LiveTopics > o.NumTopics {
		o.LiveTopics = 100
		if o.LiveTopics > o.NumTopics {
			o.LiveTopics = o.NumTopics
		}
	}
	if o.NumDocs <= 0 {
		o.NumDocs = 2000
	}
	if o.AvgDocLen <= 0 {
		o.AvgDocLen = 500
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.1
	}
	if o.Mu == 0 {
		o.Mu = 0.7
	}
	if o.Sigma == 0 {
		o.Sigma = 0.3
	}
	if o.WordsPerTopic <= 0 {
		o.WordsPerTopic = 20
	}
	if o.ArticleTokens <= 0 {
		o.ArticleTokens = 300
	}
	return o
}

// MedlineData is the generated medical-dictionary scenario.
type MedlineData struct {
	Corpus    *corpus.Corpus
	Source    *knowledge.Source
	Vocab     *textproc.Vocabulary
	Live      []int
	Generated *Generated
}

// MedlineLike builds the medical-dictionary knowledge source and generates a
// ground-truth corpus from a random live subset, per the §IV-D protocol.
func MedlineLike(opts MedlineOptions) (*MedlineData, error) {
	opts = opts.withDefaults()
	cats := MedicalCategories(opts.NumTopics, opts.WordsPerTopic, opts.Seed+1)
	enc := BuildEncyclopedia(cats, nil, EncyclopediaOptions{
		ArticleTokens:  opts.ArticleTokens,
		ExtraCoreWords: 0,
		Seed:           opts.Seed + 2,
	})
	r := rng.New(opts.Seed + 3)
	live := r.SampleWithoutReplacement(opts.NumTopics, opts.LiveTopics)

	gen, err := Generate(enc.Source, enc.Vocab, GenerativeOptions{
		NumDocs:          opts.NumDocs,
		AvgDocLen:        opts.AvgDocLen,
		Alpha:            opts.Alpha,
		Mu:               opts.Mu,
		Sigma:            opts.Sigma,
		LiveTopics:       live,
		NumUnknownTopics: opts.UnknownTopics,
		Seed:             opts.Seed + 4,
	})
	if err != nil {
		return nil, fmt.Errorf("synth: medline generation: %w", err)
	}
	return &MedlineData{
		Corpus:    gen.Corpus,
		Source:    enc.Source,
		Vocab:     enc.Vocab,
		Live:      live,
		Generated: gen,
	}, nil
}
