package synth

import (
	"fmt"

	"sourcelda/internal/knowledge"
	"sourcelda/internal/rng"
	"sourcelda/internal/textproc"
)

// EncyclopediaOptions controls synthetic knowledge-source generation.
type EncyclopediaOptions struct {
	// ArticleTokens is the token count per article. Default 400.
	ArticleTokens int
	// ZipfExponent shapes the within-article frequency law over a topic's
	// core words (heavy head, long tail, like a real encyclopedia article).
	// Default 1.05.
	ZipfExponent float64
	// BackgroundWords is the shared filler vocabulary; nil uses the
	// built-in newswire filler.
	BackgroundWords []string
	// BackgroundFraction is the fraction of article tokens drawn from the
	// background vocabulary. Default 0.25.
	BackgroundFraction float64
	// ExtraCoreWords mints this many additional pseudo-words per topic on
	// top of the curated signature words, deepening the article vocabulary.
	// Default 10.
	ExtraCoreWords int
	// Seed drives all randomness.
	Seed int64
}

func (o EncyclopediaOptions) withDefaults() EncyclopediaOptions {
	if o.ArticleTokens <= 0 {
		o.ArticleTokens = 400
	}
	if o.ZipfExponent <= 0 {
		o.ZipfExponent = 1.05
	}
	if o.BackgroundWords == nil {
		o.BackgroundWords = SharedBackgroundWords()
	}
	if o.BackgroundFraction < 0 || o.BackgroundFraction >= 1 {
		o.BackgroundFraction = 0.25
	} else if o.BackgroundFraction == 0 {
		o.BackgroundFraction = 0.25
	}
	if o.ExtraCoreWords < 0 {
		o.ExtraCoreWords = 0
	}
	return o
}

// Encyclopedia is a generated knowledge source plus the vocabulary its
// articles were interned into.
type Encyclopedia struct {
	Source *knowledge.Source
	Vocab  *textproc.Vocabulary
	// CoreWordIDs[i] lists the word ids of topic i's core vocabulary in
	// Zipf-rank order (rank 0 = most frequent).
	CoreWordIDs [][]int
}

// BuildEncyclopedia generates one article per category: core words receive
// Zipf-distributed counts (rank order shuffled per topic so different topics
// emphasize different words), background words fill the remainder. All words
// are interned into vocab (created fresh when nil).
func BuildEncyclopedia(categories []CuratedCategory, vocab *textproc.Vocabulary, opts EncyclopediaOptions) *Encyclopedia {
	opts = opts.withDefaults()
	if vocab == nil {
		vocab = textproc.NewVocabulary()
	}
	r := rng.New(opts.Seed)
	bgIDs := make([]int, len(opts.BackgroundWords))
	for i, w := range opts.BackgroundWords {
		bgIDs[i] = vocab.Add(w)
	}
	bgZipf := rng.NewZipfTable(len(bgIDs), 1.0)

	articles := make([]*knowledge.Article, len(categories))
	coreIDs := make([][]int, len(categories))
	for ci, cat := range categories {
		words := append([]string(nil), cat.Words...)
		if opts.ExtraCoreWords > 0 {
			minted := MintVocabulary(r, opts.ExtraCoreWords, 2)
			for i, mw := range minted {
				minted[i] = fmt.Sprintf("%s%s", mw, suffixFor(ci, i))
			}
			words = append(words, minted...)
		}
		ids := make([]int, len(words))
		for i, w := range words {
			ids[i] = vocab.Add(w)
		}
		// Shuffle rank order so the Zipf head differs across topics that
		// share words.
		r.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
		coreIDs[ci] = ids

		counts := make(map[int]int)
		total := 0
		coreZipf := rng.NewZipfTable(len(ids), opts.ZipfExponent)
		nBg := int(float64(opts.ArticleTokens) * opts.BackgroundFraction)
		nCore := opts.ArticleTokens - nBg
		for n := 0; n < nCore; n++ {
			counts[ids[coreZipf.Draw(r)]]++
			total++
		}
		for n := 0; n < nBg; n++ {
			counts[bgIDs[bgZipf.Draw(r)]]++
			total++
		}
		// Guarantee every core word appears at least once, so source
		// distributions have full support over the topic's signature set.
		for _, id := range ids {
			if counts[id] == 0 {
				counts[id] = 1
				total++
			}
		}
		articles[ci] = &knowledge.Article{Label: cat.Label, Counts: counts, TotalTokens: total}
	}
	return &Encyclopedia{
		Source:      knowledge.MustNewSource(articles),
		Vocab:       vocab,
		CoreWordIDs: coreIDs,
	}
}

// suffixFor disambiguates minted words across topics so two topics never
// accidentally share a minted term.
func suffixFor(topic, i int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	return string(letters[topic%26]) + string(letters[(topic/26+i)%26])
}

// GeneratedCategories builds n categories: the curated Reuters-style list
// first, then minted filler categories, each filler with wordsPerTopic
// minted signature words.
func GeneratedCategories(n, wordsPerTopic int, seed int64) []CuratedCategory {
	r := rng.New(seed)
	cats := CuratedCategories()
	if n <= len(cats) {
		return cats[:n]
	}
	extra := n - len(cats)
	names := FillerCategoryNames(extra, r)
	for _, name := range names {
		words := MintVocabulary(r, wordsPerTopic, 2)
		cats = append(cats, CuratedCategory{Label: name, Words: words})
	}
	return cats
}

// OverlappingCategories builds n categories whose signature words all come
// from one shared pool, so topics overlap heavily and are distinguished by
// their *frequency profiles* rather than by disjoint supports — the regime
// of the paper's Wikipedia experiments (and of its case-study argument that
// word frequencies, not word sets, identify a topic). Each topic samples
// wordsPerTopic words from a pool of poolSize ≥ wordsPerTopic.
func OverlappingCategories(n, wordsPerTopic, poolSize int, seed int64) []CuratedCategory {
	if poolSize < wordsPerTopic {
		poolSize = wordsPerTopic
	}
	r := rng.New(seed)
	pool := MintVocabulary(r, poolSize, 2)
	cats := make([]CuratedCategory, n)
	for i := range cats {
		idx := r.SampleWithoutReplacement(poolSize, wordsPerTopic)
		words := make([]string, wordsPerTopic)
		for j, id := range idx {
			words[j] = pool[id]
		}
		cats[i] = CuratedCategory{Label: fmt.Sprintf("Profile Topic %d", i), Words: words}
	}
	return cats
}

// MedicalCategories builds n medical-dictionary categories with minted
// terminology (the MedlinePlus substitute). Roughly 40% of each topic's
// signature words are unique; the rest are drawn from a shared domain pool
// ("symptom", "treatment"-style vocabulary), mirroring the heavy word
// overlap between real medical dictionary entries — the property that makes
// unsupervised LDA merge and split such topics while knowledge-anchored
// models keep them apart.
func MedicalCategories(n, wordsPerTopic int, seed int64) []CuratedCategory {
	r := rng.New(seed)
	names := MedicalTopicNames(n)
	poolSize := 4 * wordsPerTopic
	pool := MintVocabulary(r, poolSize, 2)
	shared := 3 * wordsPerTopic / 5
	unique := wordsPerTopic - shared
	cats := make([]CuratedCategory, n)
	for i, name := range names {
		words := MintVocabulary(r, unique, 3)
		for _, idx := range r.SampleWithoutReplacement(poolSize, shared) {
			words = append(words, pool[idx])
		}
		cats[i] = CuratedCategory{Label: name, Words: words}
	}
	return cats
}
