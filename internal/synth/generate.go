package synth

import (
	"errors"
	"fmt"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/rng"
	"sourcelda/internal/smoothing"
	"sourcelda/internal/textproc"
)

// GenerativeOptions parameterizes the forward Source-LDA generative process
// (§III-C's complete generative model), which the paper uses to build its
// ground-truth evaluation corpora (§IV-B, §IV-D).
type GenerativeOptions struct {
	// NumDocs is D.
	NumDocs int
	// AvgDocLen is the Poisson mean ξ for document lengths.
	AvgDocLen int
	// MinDocLen floors document lengths (Poisson can draw 0). Default 2.
	MinDocLen int
	// Alpha is the symmetric document-topic Dirichlet parameter.
	Alpha float64
	// Mu, Sigma parameterize the per-topic λ ~ N(µ, σ), truncated to [0, 1]
	// as in §IV-B ("we bound the value drawn to the interval [0,1]").
	Mu, Sigma float64
	// FixedLambda, when non-nil, uses this λ for every live topic instead
	// of drawing from the Gaussian.
	FixedLambda *float64
	// UseSmoothing maps drawn λ through the per-topic g before
	// exponentiation (step 6 of the complete generative process).
	UseSmoothing bool
	// SmoothingConfig configures g estimation; zero value = fast mean-field.
	SmoothingConfig smoothing.Config
	// Epsilon is the Definition 3 smoothing mass.
	Epsilon float64
	// LiveTopics are the knowledge-source article indices actually used to
	// generate the corpus (the paper's K chosen topics out of B).
	LiveTopics []int
	// NumUnknownTopics adds this many non-source topics drawn from a
	// symmetric Dirichlet over the vocabulary.
	NumUnknownTopics int
	// UnknownBeta is the symmetric parameter for unknown topics. Default
	// 0.05 (peaked, so unknown topics are distinctive).
	UnknownBeta float64
	// Seed drives all randomness.
	Seed int64
}

func (o GenerativeOptions) withDefaults() GenerativeOptions {
	if o.MinDocLen <= 0 {
		o.MinDocLen = 2
	}
	if o.Alpha <= 0 {
		o.Alpha = 0.5
	}
	if o.Epsilon <= 0 {
		o.Epsilon = knowledge.DefaultEpsilon
	}
	if o.UnknownBeta <= 0 {
		o.UnknownBeta = 0.05
	}
	if o.SmoothingConfig.GridPoints == 0 && o.SmoothingConfig.Samples == 0 {
		o.SmoothingConfig = smoothing.Config{GridPoints: 11, MeanField: true, Seed: o.Seed}
	}
	return o
}

// Generated is a synthetic corpus with full ground truth. Truth topic ids:
// a token from live source topic with article index s has id s; a token
// from unknown topic u (0-based) has id src.Len() + u. NumTruthTopics is
// src.Len() + NumUnknown.
type Generated struct {
	Corpus *corpus.Corpus
	// TruthPhi maps truth topic id → the exact distribution used during
	// generation (only live ids and unknown ids are non-nil).
	TruthPhi [][]float64
	// Lambdas[i] is the λ drawn for LiveTopics[i].
	Lambdas []float64
	// LiveTopics echoes the generating article indices.
	LiveTopics []int
	// NumSource is the knowledge-source size B.
	NumSource int
	// NumUnknown is the number of unknown (non-source) generating topics.
	NumUnknown int
	// NumTruthTopics is the truth-id space size, B + NumUnknown.
	NumTruthTopics int
}

// Generate runs the Source-LDA generative process forward over the given
// knowledge source and vocabulary and returns the corpus with per-token
// ground truth.
func Generate(src *knowledge.Source, vocab *textproc.Vocabulary, opts GenerativeOptions) (*Generated, error) {
	opts = opts.withDefaults()
	if src == nil || src.Len() == 0 {
		return nil, errors.New("synth: empty knowledge source")
	}
	if vocab == nil || vocab.Size() == 0 {
		return nil, errors.New("synth: empty vocabulary")
	}
	if opts.NumDocs <= 0 || opts.AvgDocLen <= 0 {
		return nil, errors.New("synth: NumDocs and AvgDocLen must be positive")
	}
	if len(opts.LiveTopics) == 0 && opts.NumUnknownTopics == 0 {
		return nil, errors.New("synth: no live or unknown topics to generate from")
	}
	for _, s := range opts.LiveTopics {
		if s < 0 || s >= src.Len() {
			return nil, fmt.Errorf("synth: live topic %d outside knowledge source of size %d", s, src.Len())
		}
	}
	V := vocab.Size()
	B := src.Len()
	r := rng.New(opts.Seed)

	g := &Generated{
		Corpus:         corpus.NewWithVocab(vocab),
		LiveTopics:     append([]int(nil), opts.LiveTopics...),
		NumSource:      B,
		NumUnknown:     opts.NumUnknownTopics,
		NumTruthTopics: B + opts.NumUnknownTopics,
		TruthPhi:       make([][]float64, B+opts.NumUnknownTopics),
		Lambdas:        make([]float64, len(opts.LiveTopics)),
	}

	// Steps 4–7 of the complete generative process: φ_t ~ Dir(δ_t^{g(λ_t)})
	// for source topics.
	activePhi := make([][]float64, 0, len(opts.LiveTopics)+opts.NumUnknownTopics)
	activeIDs := make([]int, 0, cap(activePhi))
	for i, s := range opts.LiveTopics {
		art := src.Article(s)
		h := art.Hyperparams(V, opts.Epsilon)
		var lambda float64
		if opts.FixedLambda != nil {
			lambda = *opts.FixedLambda
		} else {
			// §IV-B: λ ~ N(µ, σ) bounded (clamped) to [0, 1].
			lambda = r.ClampedNormal(opts.Mu, opts.Sigma, 0, 1)
		}
		g.Lambdas[i] = lambda
		e := lambda
		if opts.UseSmoothing {
			cfg := opts.SmoothingConfig
			cfg.Seed = opts.SmoothingConfig.Seed + int64(s)
			gfun := smoothing.Estimate(h, art.SmoothedDistribution(V, opts.Epsilon), cfg)
			e = gfun.Eval(lambda)
		}
		phi := make([]float64, V)
		r.Dirichlet(h.Pow(e).Dense(), phi)
		g.TruthPhi[s] = phi
		activePhi = append(activePhi, phi)
		activeIDs = append(activeIDs, s)
	}
	// Steps 2–3: unknown topics φ ~ Dir(β).
	for u := 0; u < opts.NumUnknownTopics; u++ {
		phi := make([]float64, V)
		r.DirichletSymmetric(opts.UnknownBeta, phi)
		id := B + u
		g.TruthPhi[id] = phi
		activePhi = append(activePhi, phi)
		activeIDs = append(activeIDs, id)
	}

	// Steps 8–13: documents.
	theta := make([]float64, len(activePhi))
	for d := 0; d < opts.NumDocs; d++ {
		n := r.Poisson(float64(opts.AvgDocLen))
		if n < opts.MinDocLen {
			n = opts.MinDocLen
		}
		r.DirichletSymmetric(opts.Alpha, theta)
		doc := &corpus.Document{
			Name:   fmt.Sprintf("synth-doc-%d", d),
			Words:  make([]int, n),
			Topics: make([]int, n),
		}
		for i := 0; i < n; i++ {
			z := r.Categorical(theta)
			doc.Words[i] = r.Categorical(activePhi[z])
			doc.Topics[i] = activeIDs[z]
		}
		g.Corpus.AddDocument(doc)
	}
	return g, nil
}

// ActiveTruthIDs returns the generating topic ids in order: the live source
// article indices followed by the unknown-topic ids.
func (g *Generated) ActiveTruthIDs() []int {
	ids := append([]int(nil), g.LiveTopics...)
	for u := 0; u < g.NumUnknown; u++ {
		ids = append(ids, g.NumSource+u)
	}
	return ids
}

// TruthThetaOverActive returns per-document ground-truth mixtures restricted
// to the active (live + unknown) topics, in ActiveTruthIDs order — the
// reference for the sorted-JS θ comparisons.
func (g *Generated) TruthThetaOverActive() [][]float64 {
	ids := g.ActiveTruthIDs()
	pos := make(map[int]int, len(ids))
	for i, id := range ids {
		pos[id] = i
	}
	out := make([][]float64, g.Corpus.NumDocs())
	for d, doc := range g.Corpus.Docs {
		row := make([]float64, len(ids))
		for _, t := range doc.Topics {
			if p, ok := pos[t]; ok {
				row[p]++
			}
		}
		if len(doc.Topics) > 0 {
			inv := 1 / float64(len(doc.Topics))
			for i := range row {
				row[i] *= inv
			}
		}
		out[d] = row
	}
	return out
}
