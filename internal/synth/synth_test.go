package synth

import (
	"math"
	"strings"
	"testing"

	"sourcelda/internal/rng"
	"sourcelda/internal/stats"
)

func TestCuratedCategoriesWellFormed(t *testing.T) {
	cats := CuratedCategories()
	if len(cats) < 30 {
		t.Fatalf("only %d curated categories", len(cats))
	}
	seen := map[string]bool{}
	for _, c := range cats {
		if c.Label == "" || len(c.Words) < 10 {
			t.Fatalf("category %q underspecified", c.Label)
		}
		if seen[c.Label] {
			t.Fatalf("duplicate category %q", c.Label)
		}
		seen[c.Label] = true
	}
	// The paper's Fig. 2 topics must be present.
	for _, want := range []string{"Money Supply", "Unemployment", "Balance of Payments",
		"Inventories", "Natural Gas", "Housing Starts", "Personal Income"} {
		if !seen[want] {
			t.Errorf("missing paper category %q", want)
		}
	}
}

func TestTableOneSignatureWords(t *testing.T) {
	// Table I's Source-LDA word lists must be reproducible: the signature
	// words the paper reports have to exist in our curated articles.
	cats := CuratedCategories()
	byLabel := map[string][]string{}
	for _, c := range cats {
		byLabel[c.Label] = c.Words
	}
	checks := map[string][]string{
		"Inventories":         {"inventory", "cost", "stock", "accounting", "goods"},
		"Natural Gas":         {"gas", "natural", "cubic", "energy", "fuel"},
		"Balance of Payments": {"account", "surplus", "deficit", "current", "balance"},
	}
	for label, words := range checks {
		have := map[string]bool{}
		for _, w := range byLabel[label] {
			have[w] = true
		}
		for _, w := range words {
			if !have[w] {
				t.Errorf("%s: missing Table I word %q", label, w)
			}
		}
	}
}

func TestMintWordDeterministic(t *testing.T) {
	a := MintWord(rng.New(1), 2)
	b := MintWord(rng.New(1), 2)
	if a != b {
		t.Fatal("same seed minted different words")
	}
	if len(a) < 2 {
		t.Fatalf("minted word %q too short", a)
	}
}

func TestMintVocabularyDistinct(t *testing.T) {
	words := MintVocabulary(rng.New(2), 500, 2)
	if len(words) != 500 {
		t.Fatalf("got %d words", len(words))
	}
	seen := map[string]bool{}
	for _, w := range words {
		if seen[w] {
			t.Fatalf("duplicate minted word %q", w)
		}
		seen[w] = true
	}
}

func TestMedicalTopicNames(t *testing.T) {
	names := MedicalTopicNames(578)
	if len(names) != 578 {
		t.Fatalf("got %d names", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %q", n)
		}
		seen[n] = true
		if !strings.Contains(n, " ") {
			t.Fatalf("name %q lacks prefix/suffix structure", n)
		}
	}
}

func TestBuildEncyclopedia(t *testing.T) {
	cats := CuratedCategories()[:10]
	enc := BuildEncyclopedia(cats, nil, EncyclopediaOptions{ArticleTokens: 300, Seed: 3})
	if enc.Source.Len() != 10 {
		t.Fatalf("articles = %d", enc.Source.Len())
	}
	for i := 0; i < enc.Source.Len(); i++ {
		a := enc.Source.Article(i)
		if a.TotalTokens < 300 {
			t.Fatalf("article %d has %d tokens, want ≥ 300", i, a.TotalTokens)
		}
		// Every signature word must appear.
		for _, w := range cats[i].Words {
			id, ok := enc.Vocab.ID(w)
			if !ok {
				t.Fatalf("signature word %q not interned", w)
			}
			if a.Counts[id] == 0 {
				t.Fatalf("article %q lacks its signature word %q", a.Label, w)
			}
		}
	}
	// Zipf head: the most frequent core word should clearly dominate the
	// median core word on average.
	var headCount, midCount int
	for i := 0; i < enc.Source.Len(); i++ {
		a := enc.Source.Article(i)
		ids := enc.CoreWordIDs[i]
		headCount += a.Counts[ids[0]]
		midCount += a.Counts[ids[len(ids)/2]]
	}
	if headCount <= midCount {
		t.Fatalf("Zipf head %d not heavier than middle %d", headCount, midCount)
	}
}

func TestEncyclopediaDeterministic(t *testing.T) {
	cats := CuratedCategories()[:5]
	a := BuildEncyclopedia(cats, nil, EncyclopediaOptions{Seed: 9})
	b := BuildEncyclopedia(cats, nil, EncyclopediaOptions{Seed: 9})
	for i := 0; i < a.Source.Len(); i++ {
		ca, cb := a.Source.Article(i).Counts, b.Source.Article(i).Counts
		if len(ca) != len(cb) {
			t.Fatal("different supports for same seed")
		}
		for w, n := range ca {
			if cb[w] != n {
				t.Fatal("different counts for same seed")
			}
		}
	}
}

func TestGeneratedCategoriesExtends(t *testing.T) {
	cats := GeneratedCategories(80, 15, 7)
	if len(cats) != 80 {
		t.Fatalf("got %d categories", len(cats))
	}
	seen := map[string]bool{}
	for _, c := range cats {
		if seen[c.Label] {
			t.Fatalf("duplicate label %q", c.Label)
		}
		seen[c.Label] = true
	}
	if !seen["Money Supply"] {
		t.Fatal("curated categories must come first")
	}
}

func TestGenerateValidation(t *testing.T) {
	cats := CuratedCategories()[:3]
	enc := BuildEncyclopedia(cats, nil, EncyclopediaOptions{Seed: 1})
	if _, err := Generate(nil, enc.Vocab, GenerativeOptions{NumDocs: 1, AvgDocLen: 5, LiveTopics: []int{0}}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := Generate(enc.Source, enc.Vocab, GenerativeOptions{NumDocs: 0, AvgDocLen: 5, LiveTopics: []int{0}}); err == nil {
		t.Error("zero docs accepted")
	}
	if _, err := Generate(enc.Source, enc.Vocab, GenerativeOptions{NumDocs: 1, AvgDocLen: 5}); err == nil {
		t.Error("no topics accepted")
	}
	if _, err := Generate(enc.Source, enc.Vocab, GenerativeOptions{NumDocs: 1, AvgDocLen: 5, LiveTopics: []int{99}}); err == nil {
		t.Error("out-of-range live topic accepted")
	}
}

func TestGenerateGroundTruth(t *testing.T) {
	cats := CuratedCategories()[:6]
	enc := BuildEncyclopedia(cats, nil, EncyclopediaOptions{Seed: 2})
	gen, err := Generate(enc.Source, enc.Vocab, GenerativeOptions{
		NumDocs: 40, AvgDocLen: 30, Alpha: 0.3,
		Mu: 0.7, Sigma: 0.3,
		LiveTopics:       []int{0, 2, 4},
		NumUnknownTopics: 2,
		Seed:             11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Corpus.NumDocs() != 40 {
		t.Fatalf("docs = %d", gen.Corpus.NumDocs())
	}
	if !gen.Corpus.HasGroundTruth() {
		t.Fatal("no ground truth")
	}
	if err := gen.Corpus.Validate(); err != nil {
		t.Fatal(err)
	}
	if gen.NumTruthTopics != 6+2 {
		t.Fatalf("truth space %d", gen.NumTruthTopics)
	}
	// Tokens only from live/unknown topics.
	allowed := map[int]bool{0: true, 2: true, 4: true, 6: true, 7: true}
	for _, d := range gen.Corpus.Docs {
		for _, z := range d.Topics {
			if !allowed[z] {
				t.Fatalf("token from non-live topic %d", z)
			}
		}
	}
	// λ recorded per live topic, within [0,1].
	if len(gen.Lambdas) != 3 {
		t.Fatalf("lambdas = %v", gen.Lambdas)
	}
	for _, l := range gen.Lambdas {
		if l < 0 || l > 1 {
			t.Fatalf("λ = %v outside [0,1]", l)
		}
	}
	// TruthPhi populated exactly for live + unknown ids.
	for id, phi := range gen.TruthPhi {
		if allowed[id] {
			if phi == nil {
				t.Fatalf("missing truth φ for %d", id)
			}
			var s float64
			for _, p := range phi {
				s += p
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("truth φ[%d] sums to %v", id, s)
			}
		} else if phi != nil {
			t.Fatalf("unexpected truth φ for dead topic %d", id)
		}
	}
	ids := gen.ActiveTruthIDs()
	if len(ids) != 5 || ids[3] != 6 || ids[4] != 7 {
		t.Fatalf("active ids = %v", ids)
	}
	theta := gen.TruthThetaOverActive()
	for d, row := range theta {
		var s float64
		for _, p := range row {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("truth θ[%d] sums to %v", d, s)
		}
	}
}

func TestGenerateFixedLambdaConformance(t *testing.T) {
	// λ = 1 must generate corpora whose empirical topic distributions track
	// the source distributions much more closely than λ = 0.
	cats := CuratedCategories()[:4]
	enc := BuildEncyclopedia(cats, nil, EncyclopediaOptions{Seed: 4})
	divergence := func(lambda float64) float64 {
		gen, err := Generate(enc.Source, enc.Vocab, GenerativeOptions{
			NumDocs: 60, AvgDocLen: 60, Alpha: 0.5,
			FixedLambda: &lambda,
			LiveTopics:  []int{0, 1, 2, 3},
			Seed:        21,
		})
		if err != nil {
			t.Fatal(err)
		}
		V := enc.Vocab.Size()
		var total float64
		for _, s := range gen.LiveTopics {
			src := enc.Source.Article(s).SmoothedDistribution(V, 0.01)
			total += stats.JSDivergence(gen.TruthPhi[s], src)
		}
		return total
	}
	if d1, d0 := divergence(1), divergence(0); d1 >= d0 {
		t.Fatalf("λ=1 divergence %v should be below λ=0 divergence %v", d1, d0)
	}
}

func TestCaseStudy(t *testing.T) {
	cs := CaseStudy()
	if cs.Corpus.NumDocs() != 2 {
		t.Fatalf("docs = %d", cs.Corpus.NumDocs())
	}
	if cs.Source.Len() != 2 {
		t.Fatalf("articles = %d", cs.Source.Len())
	}
	if cs.Source.Label(cs.SchoolSupplies) != "School Supplies" {
		t.Fatal("wrong school label")
	}
	// d1 = pencil pencil umpire.
	if got := cs.Corpus.Docs[0].Len(); got != 3 {
		t.Fatalf("d1 length %d", got)
	}
	// Corpus words must all appear in at least one article (Definition 3's
	// regime: corpus topics covered by the knowledge source).
	for _, d := range cs.Corpus.Docs {
		for _, w := range d.Words {
			inSchool := cs.Source.Article(0).Counts[w] > 0
			inBall := cs.Source.Article(1).Counts[w] > 0
			if !inSchool && !inBall {
				t.Fatalf("corpus word %q missing from both articles", cs.Corpus.Vocab.Word(w))
			}
		}
	}
}

func TestReutersLike(t *testing.T) {
	data, err := ReutersLike(ReutersOptions{
		NumCategories: 20, LiveCategories: 8, NumDocs: 60, AvgDocLen: 40,
		UnknownTopics: 2, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if data.Source.Len() != 20 {
		t.Fatalf("source size %d", data.Source.Len())
	}
	if len(data.Live) != 8 {
		t.Fatalf("live = %d", len(data.Live))
	}
	if data.Corpus.NumDocs() != 60 {
		t.Fatalf("docs = %d", data.Corpus.NumDocs())
	}
	if err := data.Corpus.Validate(); err != nil {
		t.Fatal(err)
	}
	// Live fraction: documents use live or unknown topics only.
	liveSet := map[int]bool{}
	for _, l := range data.Live {
		liveSet[l] = true
	}
	for _, d := range data.Corpus.Docs {
		for _, z := range d.Topics {
			if z < data.Source.Len() && !liveSet[z] {
				t.Fatalf("dead category %d generated a token", z)
			}
		}
	}
}

func TestReutersDefaultsScale(t *testing.T) {
	o := ReutersOptions{}.withDefaults()
	if o.NumCategories != 80 || o.LiveCategories != 49 || o.NumDocs != 2000 {
		t.Fatalf("defaults = %+v, want the paper's 80/49/2000", o)
	}
}

func TestMedlineLike(t *testing.T) {
	data, err := MedlineLike(MedlineOptions{
		NumTopics: 30, LiveTopics: 10, NumDocs: 40, AvgDocLen: 50, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	if data.Source.Len() != 30 || len(data.Live) != 10 {
		t.Fatalf("source %d, live %d", data.Source.Len(), len(data.Live))
	}
	if err := data.Corpus.Validate(); err != nil {
		t.Fatal(err)
	}
	if !data.Corpus.HasGroundTruth() {
		t.Fatal("no ground truth")
	}
}

func TestMedlineDefaultsScale(t *testing.T) {
	o := MedlineOptions{}.withDefaults()
	if o.NumTopics != 578 || o.LiveTopics != 100 || o.NumDocs != 2000 || o.AvgDocLen != 500 {
		t.Fatalf("defaults = %+v, want the paper's 578/100/2000/500", o)
	}
}
