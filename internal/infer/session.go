package infer

import (
	"sync"

	"sourcelda/internal/parallel"
)

// Session pairs an Engine with a long-lived worker pool and reference-counted
// lifetime — the handle a serving layer hot-swaps behind in-flight requests.
//
// The session starts with one reference held by its owner; Close releases it.
// Concurrent users pin the session with Acquire/Release around each use, so
// Close never yanks the pool out from under an in-flight batch: the pool is
// released only when the owner has closed AND every acquired reference has
// been released (the session has "drained"). After that point Acquire fails,
// which lets a swap loop retry against the replacement session instead.
type Session struct {
	e    *Engine
	pool *parallel.Pool

	mu        sync.Mutex
	refs      int  // outstanding references; the owner's counts as one
	closed    bool // owner reference released (Close called)
	onDrained func()
}

// NewSession wraps the engine with a pool of the given size (workers <= 1
// scores sequentially with no pool). The caller owns one reference; release
// it with Close.
func NewSession(e *Engine, workers int) *Session {
	s := &Session{e: e, refs: 1}
	if workers > 1 {
		s.pool = parallel.NewPool(workers)
	}
	return s
}

// Engine returns the wrapped engine (immutable, always safe to read).
func (s *Session) Engine() *Engine { return s.e }

// Acquire pins the session for use, returning false when the session has
// already fully drained and released its resources. Every successful Acquire
// must be paired with exactly one Release.
func (s *Session) Acquire() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refs == 0 {
		return false
	}
	s.refs++
	return true
}

// SetOnDrained registers fn to run exactly once, when the session drains
// (owner closed and every acquired reference released) — the moment the pool
// is freed and no goroutine can be inside the engine anymore. It is how a
// model backed by a memory-mapped bundle defers its unmap past the last
// in-flight batch. Must be called before the session can drain (i.e. before
// handing it to concurrent users); a second call replaces the first.
func (s *Session) SetOnDrained(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.refs == 0 {
		panic("infer: SetOnDrained on a drained session")
	}
	s.onDrained = fn
}

// Release unpins one Acquire. The last release after Close frees the pool.
func (s *Session) Release() {
	s.mu.Lock()
	if s.refs <= 0 {
		s.mu.Unlock()
		panic("infer: Session.Release without matching Acquire")
	}
	s.refs--
	drained := s.refs == 0
	var onDrained func()
	if drained {
		onDrained = s.onDrained
		s.onDrained = nil
	}
	s.mu.Unlock()
	if drained {
		if s.pool != nil {
			s.pool.Close()
		}
		if onDrained != nil {
			onDrained()
		}
	}
}

// Close releases the owner's reference. It is idempotent; resources are
// freed once every concurrent user has also released (see Acquire).
func (s *Session) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	s.Release()
}

// Closed reports whether the session has fully drained: the owner closed it
// and no acquired references remain, so the worker pool has been released.
func (s *Session) Closed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.refs == 0
}

// InferBatch scores the documents over the session pool (see
// Engine.InferBatch). It pins the session for the duration of the batch, so
// a concurrent Close defers resource release until the batch completes.
// Using a fully drained session is a caller bug and panics.
func (s *Session) InferBatch(docs [][]int) []*Document {
	if !s.Acquire() {
		panic("infer: Session used after close")
	}
	defer s.Release()
	return s.e.InferBatch(docs, s.pool)
}
