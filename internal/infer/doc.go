// Package infer implements online (fold-in) inference for unseen documents
// against a frozen fitted Source-LDA model: the topic-word statistics are
// locked — exposed through core.Frozen as precomputed per-word conditional
// rows derived from the training count slabs and the CSR δ^λ quadrature
// store — and only the per-document topic counts n_{d,t} are Gibbs-sampled,
//
//	P(z_i = t | z_-i, w) ∝ P(w_i | t) · (n_{d,t}^{-i} + α),
//
// the standard fold-in estimator for scoring a stream of new documents with
// a trained topic model (as Bio-LDA and the thesaurus-LDA line do with
// their knowledge-primed models). Because Source-LDA topics (PAPER.md §III)
// arrive labeled, the resulting mixtures are directly usable as document
// tags; cmd/srcldad serves exactly this path over HTTP.
//
// # Determinism contract
//
// Each document draws from rng.NewStream(seed, rng.TokenStream(tokens)) — a
// stream keyed by the document's content, not its batch position — so Infer
// and InferBatch are pure functions of (model, options, document). A batch
// of N documents is bit-for-bit identical to N independent single-document
// calls, no matter how a server micro-batches concurrent requests or how
// many workers execute them. This is the same per-stream determinism the
// training engine relies on (see internal/core and internal/rng), applied
// per document instead of per shard.
//
// # Invariants
//
// The Engine never mutates the Frozen view: any number of goroutines may
// score documents concurrently over one model. Out-of-vocabulary tokens
// carry no signal and are skipped (callers receive known/unknown counts);
// a document with no known tokens yields a nil mixture rather than a
// uniform guess.
package infer
