package infer

import (
	"sync"
	"testing"
)

// sessionEngine builds a tiny frozen engine for session-lifetime tests.
func sessionEngine(t *testing.T) *Engine {
	t.Helper()
	m, _ := fixture(t)
	e, err := New(m.Freeze(), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSessionMatchesEngine(t *testing.T) {
	e := sessionEngine(t)
	docs := [][]int{{0, 1, 2, 0}, {2, 2, 1}, {-1, 5000}, {0}}
	s := NewSession(e, 3)
	defer s.Close()
	got := s.InferBatch(docs)
	want := e.InferBatch(docs, nil)
	if len(got) != len(want) {
		t.Fatalf("%d results, want %d", len(got), len(want))
	}
	for i := range got {
		if (got[i].Theta == nil) != (want[i].Theta == nil) {
			t.Fatalf("doc %d: nil mismatch", i)
		}
		for k := range got[i].Theta {
			if got[i].Theta[k] != want[i].Theta[k] {
				t.Fatalf("doc %d topic %d: %v != %v (pooled batch diverged from sequential)", i, k, got[i].Theta[k], want[i].Theta[k])
			}
		}
	}
}

// TestSessionDrainSemantics pins the hot-swap contract: Close with an
// outstanding Acquire defers resource release until the matching Release,
// and Acquire on a fully drained session fails.
func TestSessionDrainSemantics(t *testing.T) {
	e := sessionEngine(t)
	s := NewSession(e, 2)
	if s.Closed() {
		t.Fatal("fresh session reports closed")
	}
	if !s.Acquire() {
		t.Fatal("Acquire on live session failed")
	}
	s.Close()
	if s.Closed() {
		t.Fatal("session drained while a reference was outstanding")
	}
	// The outstanding reference still scores batches.
	if got := s.InferBatch([][]int{{0, 1}}); got[0].Theta == nil {
		t.Fatal("pinned session failed to score")
	}
	s.Release()
	if !s.Closed() {
		t.Fatal("session not drained after last release")
	}
	if s.Acquire() {
		t.Fatal("Acquire succeeded on a drained session")
	}
	// Close stays idempotent after drain.
	s.Close()
}

func TestSessionCloseIdempotent(t *testing.T) {
	s := NewSession(sessionEngine(t), 0)
	s.Close()
	s.Close()
	if !s.Closed() {
		t.Fatal("not closed")
	}
}

func TestSessionUseAfterClosePanics(t *testing.T) {
	s := NewSession(sessionEngine(t), 0)
	s.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("InferBatch on a drained session did not panic")
		}
	}()
	s.InferBatch([][]int{{0}})
}

// TestSessionConcurrentDrain hammers Acquire/Release from many goroutines
// while the owner closes, asserting the session ends drained exactly once
// and no batch observes a torn-down pool. Run with -race.
func TestSessionConcurrentDrain(t *testing.T) {
	e := sessionEngine(t)
	s := NewSession(e, 4)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for i := 0; i < 20; i++ {
				if !s.Acquire() {
					return // drained; later iterations must also fail
				}
				res := s.InferBatch([][]int{{0, 1, 2}})
				if res[0].Theta == nil {
					t.Error("known-token doc scored nil")
				}
				s.Release()
			}
		}()
	}
	close(start)
	s.Close()
	wg.Wait()
	if !s.Closed() {
		t.Fatal("session not drained after all users released")
	}
}
