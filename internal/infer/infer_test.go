package infer

import (
	"math"
	"testing"

	"sourcelda/internal/core"
	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/parallel"
	"sourcelda/internal/textproc"
)

// fixture trains a tiny two-source-topic model whose topics are cleanly
// separable, returning the model and its corpus.
func fixture(t testing.TB) (*core.Model, *corpus.Corpus) {
	t.Helper()
	c := corpus.New()
	stop := textproc.DefaultStopwords()
	for i := 0; i < 10; i++ {
		c.AddText("school", "pencil ruler eraser pencil notebook paper", stop)
		c.AddText("ball", "baseball umpire pitcher baseball inning glove", stop)
	}
	school := knowledge.NewArticleFromText("School Supplies",
		"pencil pencil ruler eraser notebook paper paper pencil ruler", c.Vocab, stop, true)
	ball := knowledge.NewArticleFromText("Baseball",
		"baseball baseball umpire pitcher inning glove baseball umpire", c.Vocab, stop, true)
	src := knowledge.MustNewSource([]*knowledge.Article{school, ball})
	m, err := core.Fit(c, src, core.Options{
		Alpha: 0.5, Beta: 0.01,
		LambdaMode: core.LambdaFixed, Lambda: 1,
		Iterations: 60, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m.Close)
	return m, c
}

func encode(t testing.TB, c *corpus.Corpus, text string) []int {
	t.Helper()
	return c.Vocab.EncodeTokens(textproc.Tokenize(text), false)
}

func TestInferHeldOutDocument(t *testing.T) {
	m, c := fixture(t)
	e, err := New(m.Freeze(), Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	doc := e.Infer(encode(t, c, "pencil pencil ruler notebook eraser paper"))
	if doc.Known != 6 || doc.Unknown != 0 {
		t.Fatalf("known=%d unknown=%d", doc.Known, doc.Unknown)
	}
	var sum float64
	best := 0
	for topic, p := range doc.Theta {
		sum += p
		if p > doc.Theta[best] {
			best = topic
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("theta sums to %v", sum)
	}
	if got := e.Labels()[best]; got != "School Supplies" {
		t.Fatalf("held-out school document tagged %q (theta %v)", got, doc.Theta)
	}
}

func TestInferDeterministicGivenSeed(t *testing.T) {
	m, c := fixture(t)
	words := encode(t, c, "baseball umpire glove baseball pitcher")
	e1, _ := New(m.Freeze(), Options{Seed: 3})
	e2, _ := New(m.Freeze(), Options{Seed: 3})
	a, b := e1.Infer(words), e2.Infer(words)
	for topic := range a.Theta {
		if a.Theta[topic] != b.Theta[topic] {
			t.Fatal("same seed diverged")
		}
	}
}

// TestBatchMatchesSingleBitForBit is the acceptance criterion: a batch of N
// documents equals N independent Infer calls exactly, at any worker count,
// regardless of position in the batch.
func TestBatchMatchesSingleBitForBit(t *testing.T) {
	m, c := fixture(t)
	e, err := New(m.Freeze(), Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	docs := [][]int{
		encode(t, c, "pencil ruler eraser"),
		encode(t, c, "baseball baseball umpire inning"),
		encode(t, c, "pencil baseball glove notebook"),
		encode(t, c, "paper paper paper"),
		encode(t, c, "pitcher inning glove umpire baseball pencil"),
	}
	singles := make([]*Document, len(docs))
	for i, words := range docs {
		singles[i] = e.Infer(words)
	}
	for _, workers := range []int{1, 2, 4} {
		pool := parallel.NewPool(workers)
		batch := e.InferBatch(docs, pool)
		pool.Close()
		for i := range docs {
			if len(batch[i].Theta) != len(singles[i].Theta) {
				t.Fatalf("workers=%d doc %d theta length mismatch", workers, i)
			}
			for topic := range batch[i].Theta {
				if batch[i].Theta[topic] != singles[i].Theta[topic] {
					t.Fatalf("workers=%d doc %d topic %d: batch %v != single %v",
						workers, i, topic, batch[i].Theta[topic], singles[i].Theta[topic])
				}
			}
		}
	}
	// Reordering the batch must not change any document's result: streams
	// are keyed by content, not position.
	reversed := make([][]int, len(docs))
	for i := range docs {
		reversed[i] = docs[len(docs)-1-i]
	}
	back := e.InferBatch(reversed, nil)
	for i := range docs {
		got := back[len(docs)-1-i]
		for topic := range got.Theta {
			if got.Theta[topic] != singles[i].Theta[topic] {
				t.Fatal("batch position changed a document's result")
			}
		}
	}
}

func TestInferUnknownOnlyDocument(t *testing.T) {
	m, _ := fixture(t)
	e, err := New(m.Freeze(), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	doc := e.Infer([]int{-1, 10_000, 99_999})
	if doc.Theta != nil {
		t.Fatal("unknown-only document produced a mixture")
	}
	if doc.Known != 0 || doc.Unknown != 3 {
		t.Fatalf("known=%d unknown=%d", doc.Known, doc.Unknown)
	}
	empty := e.Infer(nil)
	if empty.Theta != nil || empty.Known != 0 || empty.Unknown != 0 {
		t.Fatal("empty document mishandled")
	}
}

func TestFrozenFromResultMatchesLiveFreeze(t *testing.T) {
	m, c := fixture(t)
	words := encode(t, c, "notebook eraser pencil ruler")
	live, _ := New(m.Freeze(), Options{Seed: 2})
	fromRes, err := core.NewFrozen(m.Result())
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := New(fromRes, Options{Seed: 2})
	a, b := live.Infer(words), snap.Infer(words)
	for topic := range a.Theta {
		if a.Theta[topic] != b.Theta[topic] {
			t.Fatal("snapshot-based frozen view diverged from live Freeze")
		}
	}
}

// TestNewFromRuntimeIsPointInTimeSnapshot pins the snapshot contract of the
// serve-while-learning split: an engine built straight from the chain
// runtime equals one built from an explicit Freeze, and keeps returning the
// same answers after the runtime absorbs more documents — while a fresh
// snapshot sees the updated counts.
func TestNewFromRuntimeIsPointInTimeSnapshot(t *testing.T) {
	m, c := fixture(t)
	words := encode(t, c, "baseball umpire glove pitcher inning")
	viaFreeze, _ := New(m.Freeze(), Options{Seed: 9})
	viaRuntime, err := NewFromRuntime(m.Runtime(), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a, b := viaFreeze.Infer(words), viaRuntime.Infer(words)
	for topic := range a.Theta {
		if a.Theta[topic] != b.Theta[topic] {
			t.Fatal("NewFromRuntime diverged from New(Freeze())")
		}
	}

	// Mutate the runtime heavily; the old snapshot must not move.
	fed := &corpus.Document{Words: append([]int(nil), words...)}
	for i := 0; i < 20; i++ {
		if err := m.AppendDocs([]*corpus.Document{fed}, 3); err != nil {
			t.Fatal(err)
		}
	}
	after := viaRuntime.Infer(words)
	for topic := range b.Theta {
		if after.Theta[topic] != b.Theta[topic] {
			t.Fatal("engine snapshot changed under runtime mutation")
		}
	}
	if _, err := NewFromRuntime(nil, Options{}); err == nil {
		t.Fatal("nil runtime accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("nil frozen accepted")
	}
	m, _ := fixture(t)
	if _, err := New(m.Freeze(), Options{Samples: -1}); err == nil {
		t.Fatal("negative samples accepted")
	}
	// Negative burn-in is the explicit "no burn-in" schedule, not an error.
	noBurn, err := New(m.Freeze(), Options{BurnIn: -1, Samples: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d := noBurn.Infer([]int{0, 1}); d.Theta == nil {
		t.Fatal("no-burn-in engine produced no mixture")
	}
	if _, err := core.NewFrozen(nil); err == nil {
		t.Fatal("nil result accepted by NewFrozen")
	}
	bad := m.Result()
	bad.Labels = bad.Labels[:1]
	if _, err := core.NewFrozen(bad); err == nil {
		t.Fatal("mismatched labels accepted by NewFrozen")
	}
}
