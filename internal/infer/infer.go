package infer

import (
	"errors"

	"sourcelda/internal/core"
	"sourcelda/internal/parallel"
	"sourcelda/internal/rng"
)

// DefaultBurnIn is the number of discarded initial sweeps per document.
const DefaultBurnIn = 20

// DefaultSamples is the number of post-burn-in sweeps averaged into θ.
const DefaultSamples = 10

// Options configures an inference engine. Zero values take the documented
// defaults.
type Options struct {
	// BurnIn is the number of fold-in Gibbs sweeps discarded before θ
	// estimation: 0 means DefaultBurnIn, a negative value means no burn-in
	// at all (a legitimate minimum-latency schedule that zero cannot
	// express, since zero is the "default" sentinel).
	BurnIn int
	// Samples is the number of post-burn-in sweeps whose θ estimates are
	// averaged (default DefaultSamples; must not be negative, and at least
	// one sample is always taken).
	Samples int
	// Seed is the root seed every per-document stream derives from.
	Seed int64
}

// Document is the inference result for one document.
type Document struct {
	// Theta is the inferred topic mixture over the model's T topics (model
	// topic order, matching Frozen.Labels). Nil when the document has no
	// in-vocabulary tokens — there is nothing to condition on.
	Theta []float64
	// Known and Unknown count the document's in- and out-of-vocabulary
	// tokens. Unknown tokens are skipped, never sampled.
	Known, Unknown int
}

// Engine scores unseen documents against a frozen snapshot of a chain
// runtime (core.Frozen — taken by core.ChainRuntime.Freeze, or rebuilt from
// a persisted bundle). It is immutable after construction and safe for
// concurrent use; per-document scratch state is allocated per call. The
// runtime the snapshot came from may keep mutating — training sweeps,
// AppendDocs warm updates — without affecting the engine: serve-and-learn
// share one source of truth (the runtime's counts), and the engine reads a
// point-in-time view of it.
type Engine struct {
	f       *core.Frozen
	burnIn  int
	samples int
	seed    int64
}

// NewFromRuntime snapshots a live chain runtime's current conditionals and
// returns an engine over the snapshot. Further mutations of the runtime do
// not affect the engine; snapshot again (republish) to serve them.
func NewFromRuntime(rt *core.ChainRuntime, o Options) (*Engine, error) {
	if rt == nil {
		return nil, errors.New("infer: nil chain runtime")
	}
	return New(rt.Freeze(), o)
}

// New returns an engine over the frozen view.
func New(f *core.Frozen, o Options) (*Engine, error) {
	if f == nil {
		return nil, errors.New("infer: nil frozen model")
	}
	if o.Samples < 0 {
		return nil, errors.New("infer: Samples must be non-negative")
	}
	e := &Engine{f: f, burnIn: o.BurnIn, samples: o.Samples, seed: o.Seed}
	switch {
	case e.burnIn == 0:
		e.burnIn = DefaultBurnIn
	case e.burnIn < 0:
		e.burnIn = 0
	}
	if e.samples == 0 {
		e.samples = DefaultSamples
	}
	return e, nil
}

// NumTopics returns the model's topic count T.
func (e *Engine) NumTopics() int { return e.f.T }

// Labels returns the model's topic labels; do not mutate.
func (e *Engine) Labels() []string { return e.f.Labels }

// Infer folds one document — a token-id stream — into the frozen model and
// returns its topic mixture. Ids outside [0, V) count as unknown and are
// skipped.
func (e *Engine) Infer(words []int) *Document {
	f := e.f
	known := make([]int, 0, len(words))
	for _, w := range words {
		if w >= 0 && w < f.V {
			known = append(known, w)
		}
	}
	doc := &Document{Known: len(known), Unknown: len(words) - len(known)}
	if len(known) == 0 {
		return doc
	}

	r := rng.NewStream(e.seed, rng.TokenStream(known))
	T := f.T
	alpha := f.Alpha
	nd := make([]int32, T)
	z := make([]int, len(known))
	probs := make([]float64, T)

	// Initialize each token from its word conditional alone — the same
	// prior-informed start the training chain uses, so a conforming document
	// begins near its posterior instead of at uniform noise.
	for i, w := range known {
		t := r.Categorical(f.Cond(w))
		z[i] = t
		nd[t]++
	}

	thetaSum := make([]float64, T)
	tAlpha := float64(T) * alpha
	den := float64(len(known)) + tAlpha
	sweeps := e.burnIn + e.samples
	for sweep := 0; sweep < sweeps; sweep++ {
		for i, w := range known {
			old := z[i]
			nd[old]--
			row := f.Cond(w)
			for t := 0; t < T; t++ {
				probs[t] = row[t] * (float64(nd[t]) + alpha)
			}
			t := r.Categorical(probs)
			z[i] = t
			nd[t]++
		}
		if sweep >= e.burnIn {
			for t := 0; t < T; t++ {
				thetaSum[t] += (float64(nd[t]) + alpha) / den
			}
		}
	}

	inv := 1 / float64(e.samples)
	for t := range thetaSum {
		thetaSum[t] *= inv
	}
	doc.Theta = thetaSum
	return doc
}

// InferBatch scores every document concurrently over the pool's workers
// (nil pool or one worker: sequential). Results are positionally aligned
// with docs and bit-for-bit identical to len(docs) independent Infer calls.
func (e *Engine) InferBatch(docs [][]int, pool *parallel.Pool) []*Document {
	out := make([]*Document, len(docs))
	if len(docs) == 0 {
		return out
	}
	if pool == nil || pool.Workers() == 1 || len(docs) == 1 {
		for i, words := range docs {
			out[i] = e.Infer(words)
		}
		return out
	}
	pool.Run(len(docs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = e.Infer(docs[i])
		}
	})
	return out
}
