package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLogSumExpEmpty(t *testing.T) {
	if got := LogSumExp(nil); !math.IsInf(got, -1) {
		t.Fatalf("LogSumExp(nil) = %v, want -Inf", got)
	}
}

func TestLogSumExpSingle(t *testing.T) {
	if got := LogSumExp([]float64{3.5}); math.Abs(got-3.5) > 1e-12 {
		t.Fatalf("LogSumExp([3.5]) = %v, want 3.5", got)
	}
}

func TestLogSumExpKnown(t *testing.T) {
	// log(e^0 + e^0) = log 2.
	if got := LogSumExp([]float64{0, 0}); math.Abs(got-math.Log(2)) > 1e-12 {
		t.Fatalf("got %v, want ln2", got)
	}
}

func TestLogSumExpLargeValues(t *testing.T) {
	// Naive computation overflows; the stable version must not.
	got := LogSumExp([]float64{1000, 1000})
	want := 1000 + math.Log(2)
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLogSumExpAllNegInf(t *testing.T) {
	if got := LogSumExp([]float64{math.Inf(-1), math.Inf(-1)}); !math.IsInf(got, -1) {
		t.Fatalf("got %v, want -Inf", got)
	}
}

func TestLogSumExpPropertyDominatesMax(t *testing.T) {
	f := func(a, b, c float64) bool {
		a = math.Mod(a, 50)
		b = math.Mod(b, 50)
		c = math.Mod(c, 50)
		xs := []float64{a, b, c}
		lse := LogSumExp(xs)
		max := math.Max(a, math.Max(b, c))
		return lse >= max-1e-12 && lse <= max+math.Log(3)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalize(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	total := Normalize(xs)
	if total != 10 {
		t.Fatalf("returned sum %v, want 10", total)
	}
	if s := Sum(xs); math.Abs(s-1) > 1e-12 {
		t.Fatalf("normalized sum %v, want 1", s)
	}
	if math.Abs(xs[3]-0.4) > 1e-12 {
		t.Fatalf("xs[3] = %v, want 0.4", xs[3])
	}
}

func TestNormalizeDegenerate(t *testing.T) {
	xs := []float64{0, 0, 0}
	Normalize(xs)
	for i, x := range xs {
		if math.Abs(x-1.0/3) > 1e-12 {
			t.Fatalf("xs[%d] = %v, want uniform 1/3", i, x)
		}
	}
}

func TestPrefixSums(t *testing.T) {
	xs := []float64{1, 2, 3}
	total := PrefixSums(xs)
	if total != 6 {
		t.Fatalf("total %v, want 6", total)
	}
	want := []float64{1, 3, 6}
	for i := range xs {
		if xs[i] != want[i] {
			t.Fatalf("xs[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestSearchCumulative(t *testing.T) {
	cum := []float64{1, 3, 6}
	cases := []struct {
		target float64
		want   int
	}{
		{0, 0}, {0.99, 0}, {1, 1}, {2.5, 1}, {3, 2}, {5.9, 2},
	}
	for _, c := range cases {
		if got := SearchCumulative(cum, c.target); got != c.want {
			t.Errorf("SearchCumulative(%v) = %d, want %d", c.target, got, c.want)
		}
	}
}

func TestSelectPositiveSupport(t *testing.T) {
	weights := []float64{0, 2, 0, math.NaN(), 5}
	at := func(i int) float64 { return weights[i] }
	// Two positive entries (1 and 4); u below/above 0.5 splits them, and
	// NaN/zero entries are never selected.
	for _, c := range []struct {
		u    float64
		want int
	}{
		{0, 1}, {0.49, 1}, {0.5, 4}, {0.999, 4},
	} {
		idx, ok := SelectPositiveSupport(len(weights), c.u, at)
		if !ok || idx != c.want {
			t.Errorf("SelectPositiveSupport(u=%v) = (%d, %v), want (%d, true)", c.u, idx, ok, c.want)
		}
	}
	// u at (or numerically past) 1 clamps onto the last positive entry.
	if idx, ok := SelectPositiveSupport(len(weights), 1, at); !ok || idx != 4 {
		t.Errorf("u=1 gave (%d, %v), want (4, true)", idx, ok)
	}
	// Empty support reports ok=false.
	if _, ok := SelectPositiveSupport(3, 0.5, func(int) float64 { return 0 }); ok {
		t.Error("all-zero support reported ok")
	}
}

func TestSearchCumulativeProperty(t *testing.T) {
	cum := []float64{0.5, 0.5, 2, 2.25, 9}
	f := func(u float64) bool {
		u = math.Abs(math.Mod(u, 1))
		target := u * cum[len(cum)-1]
		i := SearchCumulative(cum, target)
		if i < 0 || i >= len(cum) {
			return false
		}
		// Invariant: target < cum[i] and (i == 0 or target >= cum[i-1]).
		if target >= cum[i] {
			return false
		}
		return i == 0 || target >= cum[i-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterpolateMonotone(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 40}
	cases := []struct{ x, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.5, 25}, {2, 40}, {3, 40},
	}
	for _, c := range cases {
		if got := InterpolateMonotone(xs, ys, c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Interpolate(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestInvertMonotoneIncreasing(t *testing.T) {
	xs := []float64{0, 1, 2}
	ys := []float64{0, 10, 40}
	for _, y := range []float64{0, 5, 10, 25, 40} {
		x := InvertMonotone(xs, ys, y)
		back := InterpolateMonotone(xs, ys, x)
		if math.Abs(back-y) > 1e-9 {
			t.Errorf("round trip of y=%v gave %v", y, back)
		}
	}
}

func TestInvertMonotoneDecreasing(t *testing.T) {
	xs := []float64{0, 0.5, 1}
	ys := []float64{0.6, 0.3, 0.1} // decreasing, like a JS-vs-λ curve
	for _, y := range []float64{0.6, 0.45, 0.3, 0.2, 0.1} {
		x := InvertMonotone(xs, ys, y)
		back := InterpolateMonotone(xs, ys, x)
		if math.Abs(back-y) > 1e-9 {
			t.Errorf("round trip of y=%v gave x=%v back=%v", y, x, back)
		}
	}
}

func TestInvertMonotoneClamps(t *testing.T) {
	xs := []float64{0, 1}
	ys := []float64{2, 4}
	if got := InvertMonotone(xs, ys, 1); got != 0 {
		t.Fatalf("below-range inversion = %v, want 0", got)
	}
	if got := InvertMonotone(xs, ys, 5); got != 1 {
		t.Fatalf("above-range inversion = %v, want 1", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(-1, 0, 1) != 0 || Clamp(2, 0, 1) != 1 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp misbehaves")
	}
}

func TestMaxMinIndex(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if i, err := MaxIndex(xs); err != nil || i != 4 {
		t.Fatalf("MaxIndex = %d, %v", i, err)
	}
	if i, err := MinIndex(xs); err != nil || i != 1 {
		t.Fatalf("MinIndex = %d, %v", i, err)
	}
	if _, err := MaxIndex(nil); err != ErrEmpty {
		t.Fatalf("MaxIndex(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := MinIndex(nil); err != ErrEmpty {
		t.Fatalf("MinIndex(nil) err = %v, want ErrEmpty", err)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); v != 4 {
		t.Fatalf("Variance = %v, want 4", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Fatal("empty-input moments should be 0")
	}
}

func TestLogDirichletNormalizer(t *testing.T) {
	// For alpha = (1,1): B = Γ(1)Γ(1)/Γ(2) = 1 → log normalizer 0.
	if got := LogDirichletNormalizer([]float64{1, 1}); math.Abs(got) > 1e-12 {
		t.Fatalf("got %v, want 0", got)
	}
	// For alpha = (2,2): log Γ(4) − 2 log Γ(2) = log 6.
	if got := LogDirichletNormalizer([]float64{2, 2}); math.Abs(got-math.Log(6)) > 1e-12 {
		t.Fatalf("got %v, want ln6", got)
	}
}

func TestRelativeError(t *testing.T) {
	if RelativeError(1, 1) != 0 {
		t.Fatal("identical values should have zero relative error")
	}
	if got := RelativeError(100, 110); math.Abs(got-10.0/110) > 1e-12 {
		t.Fatalf("got %v", got)
	}
}

func TestAlmostEqualNaN(t *testing.T) {
	if AlmostEqual(math.NaN(), math.NaN(), 1) {
		t.Fatal("NaN must never compare equal")
	}
}
