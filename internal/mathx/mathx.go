// Package mathx provides small numeric helpers shared by the samplers and
// evaluation code: stable log-domain reductions, normalization, interpolation
// and prefix sums. All functions are allocation-free unless documented
// otherwise.
package mathx

import (
	"errors"
	"math"
)

// ErrEmpty is returned by reductions that require at least one element.
var ErrEmpty = errors.New("mathx: empty input")

// LogSumExp returns log(sum(exp(x_i))) computed stably. It returns -Inf for
// an empty slice.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	if math.IsInf(max, -1) {
		return max
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - max)
	}
	return max + math.Log(sum)
}

// Sum returns the arithmetic sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Normalize scales xs in place so it sums to one and returns the original
// sum. If the sum is zero or not finite the slice is set to the uniform
// distribution.
func Normalize(xs []float64) float64 {
	s := Sum(xs)
	if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
		u := 1.0 / float64(len(xs))
		for i := range xs {
			xs[i] = u
		}
		return s
	}
	inv := 1.0 / s
	for i := range xs {
		xs[i] *= inv
	}
	return s
}

// Normalized returns a fresh normalized copy of xs.
func Normalized(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	Normalize(out)
	return out
}

// PrefixSums overwrites xs with its inclusive prefix sums and returns the
// total.
func PrefixSums(xs []float64) float64 {
	var run float64
	for i, x := range xs {
		run += x
		xs[i] = run
	}
	return run
}

// SearchCumulative returns the smallest index i such that target < cum[i],
// where cum holds inclusive prefix sums. It is the sampling primitive used by
// the categorical samplers: draw u ~ U(0, total) and binary-search for the
// bucket.
func SearchCumulative(cum []float64, target float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if target < cum[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// SelectPositiveSupport maps u in [0, 1) to a uniform choice over the
// indices in [0, n) whose weight is strictly positive — the shared
// degenerate-mass fallback of every categorical sampler in the repository:
// when a probability vector's total is zero or non-finite, the draw is
// restricted to the entries that actually carry mass, never the whole index
// range (which could select an entry whose probability is exactly zero,
// e.g. a pruned topic). NaN weights compare as non-positive and are
// excluded. ok is false when no weight is positive; callers treat that as
// unsamplable and panic with their own context.
func SelectPositiveSupport(n int, u float64, weight func(i int) float64) (idx int, ok bool) {
	support := 0
	for i := 0; i < n; i++ {
		if weight(i) > 0 {
			support++
		}
	}
	if support == 0 {
		return 0, false
	}
	k := int(u * float64(support))
	if k >= support {
		k = support - 1
	}
	for i := 0; i < n; i++ {
		if weight(i) > 0 {
			if k == 0 {
				return i, true
			}
			k--
		}
	}
	return n - 1, true // unreachable: support > 0 guarantees a hit above
}

// Lerp linearly interpolates between a and b with parameter t in [0, 1].
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// InterpolateMonotone evaluates, at x, the piecewise-linear function through
// the points (xs[i], ys[i]). xs must be strictly increasing. Values of x
// outside the range clamp to the endpoints.
func InterpolateMonotone(xs, ys []float64, x float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[n-1] {
		return ys[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	span := xs[hi] - xs[lo]
	if span <= 0 {
		return ys[lo]
	}
	t := (x - xs[lo]) / span
	return Lerp(ys[lo], ys[hi], t)
}

// InvertMonotone evaluates the inverse of the piecewise-linear function
// through (xs[i], ys[i]) at the ordinate y. ys must be monotone
// (non-decreasing or non-increasing); values outside the range clamp.
func InvertMonotone(xs, ys []float64, y float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	increasing := ys[n-1] >= ys[0]
	lo, hi := 0, n-1
	clampLo, clampHi := ys[0], ys[n-1]
	if !increasing {
		clampLo, clampHi = clampHi, clampLo
	}
	if y <= clampLo {
		if increasing {
			return xs[0]
		}
		return xs[n-1]
	}
	if y >= clampHi {
		if increasing {
			return xs[n-1]
		}
		return xs[0]
	}
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		v := ys[mid]
		if (increasing && v <= y) || (!increasing && v >= y) {
			lo = mid
		} else {
			hi = mid
		}
	}
	span := ys[hi] - ys[lo]
	if span == 0 {
		return xs[lo]
	}
	t := (y - ys[lo]) / span
	return Lerp(xs[lo], xs[hi], t)
}

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// AlmostEqual reports whether a and b differ by at most tol in absolute
// value, treating NaN as never equal.
func AlmostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

// RelativeError returns |a-b| / max(|a|, |b|, 1).
func RelativeError(a, b float64) float64 {
	d := math.Abs(a - b)
	den := math.Max(math.Max(math.Abs(a), math.Abs(b)), 1)
	return d / den
}

// MaxIndex returns the index of the largest element, or an error for empty
// input. Ties resolve to the lowest index.
func MaxIndex(xs []float64) (int, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best, nil
}

// MinIndex returns the index of the smallest element, or an error for empty
// input. Ties resolve to the lowest index.
func MinIndex(xs []float64) (int, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best, nil
}

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the population variance of xs.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs))
}

// LogGamma is math.Lgamma restricted to positive arguments, where the sign is
// always +1.
func LogGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// LogDirichletNormalizer returns log B(alpha)^-1 = log Γ(Σα) − Σ log Γ(α),
// the log normalizing constant of a Dirichlet with parameter vector alpha.
func LogDirichletNormalizer(alpha []float64) float64 {
	var sum, lg float64
	for _, a := range alpha {
		sum += a
		lg += LogGamma(a)
	}
	return LogGamma(sum) - lg
}
