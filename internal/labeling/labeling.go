package labeling

import (
	"errors"
	"math"
	"sort"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/stats"
	"sourcelda/internal/textproc"
)

// Labeler assigns a knowledge-source article index (and score) to a topic's
// word distribution.
type Labeler interface {
	// Label returns the best article index for the topic-word distribution
	// phi (dense over the corpus vocabulary) and a score where higher is
	// better. Implementations must be deterministic.
	Label(phi []float64) (article int, score float64)
	// Name identifies the technique for reporting.
	Name() string
}

// LabelAll applies a labeler to every topic and returns per-topic article
// indices.
func LabelAll(l Labeler, phis [][]float64) []int {
	out := make([]int, len(phis))
	for t, phi := range phis {
		out[t], _ = l.Label(phi)
	}
	return out
}

// topSupportedWords returns the topic's top-n words restricted to positive
// probability: querying with unsupported words would only add noise (and,
// on small vocabularies, spurious overlap ties).
func topSupportedWords(phi []float64, n int) []int {
	words := textproc.TopWords(phi, n)
	out := words[:0]
	for _, w := range words {
		if phi[w] > 0 {
			out = append(out, w)
		}
	}
	return out
}

// JSLabeler labels a topic with the article whose smoothed source
// distribution minimizes Jensen–Shannon divergence to φ (the "JS Divergence"
// row of the case-study table, and the technique the paper uses to map LDA
// topics to Wikipedia topics in §IV-D).
type JSLabeler struct {
	dists  [][]float64
	labels []string
}

// NewJSLabeler precomputes smoothed source distributions over a vocabulary
// of size v.
func NewJSLabeler(src *knowledge.Source, v int, epsilon float64) *JSLabeler {
	if epsilon <= 0 {
		epsilon = knowledge.DefaultEpsilon
	}
	return &JSLabeler{dists: src.SmoothedDistributions(v, epsilon), labels: src.Labels()}
}

// Name implements Labeler.
func (l *JSLabeler) Name() string { return "js-divergence" }

// Label implements Labeler. The score is the negated divergence so higher is
// better.
func (l *JSLabeler) Label(phi []float64) (int, float64) {
	best, bestJS := 0, math.Inf(1)
	for i, d := range l.dists {
		js := stats.JSDivergence(phi, d)
		if js < bestJS {
			best, bestJS = i, js
		}
	}
	return best, -bestJS
}

// Divergences returns the JS divergence of phi against every article.
func (l *JSLabeler) Divergences(phi []float64) []float64 {
	out := make([]float64, len(l.dists))
	for i, d := range l.dists {
		out[i] = stats.JSDivergence(phi, d)
	}
	return out
}

// IRLabeler is the paper's information-retrieval labeling approach (§IV-C):
// knowledge-source articles become TF-IDF document vectors; a topic queries
// with a TF-IDF-weighted vector of its top-N words; the label is the article
// with the highest cosine similarity. LDA + IRLabeler is the paper's
// "IR-LDA".
type IRLabeler struct {
	tfidf   *textproc.TFIDF
	docVecs [][]float64
	topN    int
}

// NewIRLabeler builds TF-IDF vectors from the knowledge source over a
// vocabulary of size v; topN is the query size (the paper uses 10).
func NewIRLabeler(src *knowledge.Source, v, topN int) *IRLabeler {
	if topN <= 0 {
		topN = 10
	}
	docs := make([][]int, src.Len())
	for i := 0; i < src.Len(); i++ {
		art := src.Article(i)
		var stream []int
		for w, n := range art.Counts {
			if w < 0 || w >= v {
				continue
			}
			for j := 0; j < n; j++ {
				stream = append(stream, w)
			}
		}
		docs[i] = stream
	}
	t := textproc.NewTFIDF(docs, v)
	vecs := make([][]float64, len(docs))
	for i, d := range docs {
		vecs[i] = t.Vector(d)
	}
	return &IRLabeler{tfidf: t, docVecs: vecs, topN: topN}
}

// Name implements Labeler.
func (l *IRLabeler) Name() string { return "tfidf-cosine" }

// Label implements Labeler. The score is the cosine similarity.
func (l *IRLabeler) Label(phi []float64) (int, float64) {
	words := topSupportedWords(phi, l.topN)
	weights := make([]float64, len(words))
	for i, w := range words {
		weights[i] = phi[w]
	}
	query := l.tfidf.WeightedQueryVector(words, weights)
	best, bestSim := 0, math.Inf(-1)
	for i, dv := range l.docVecs {
		sim := stats.CosineSimilarity(query, dv)
		if sim > bestSim {
			best, bestSim = i, sim
		}
	}
	return best, bestSim
}

// CountLabeler labels a topic by counting how many of its top-N words occur
// in each article (the case-study "Counting" technique); ties break toward
// the article where the overlapping words have higher total counts.
type CountLabeler struct {
	articles []*knowledge.Article
	topN     int
}

// NewCountLabeler builds a counting labeler with query size topN (default
// 10).
func NewCountLabeler(src *knowledge.Source, topN int) *CountLabeler {
	if topN <= 0 {
		topN = 10
	}
	return &CountLabeler{articles: src.Articles(), topN: topN}
}

// Name implements Labeler.
func (l *CountLabeler) Name() string { return "counting" }

// Label implements Labeler. The score is the overlap count plus a
// tie-breaking fraction from the article frequencies.
func (l *CountLabeler) Label(phi []float64) (int, float64) {
	words := topSupportedWords(phi, l.topN)
	best, bestScore := 0, math.Inf(-1)
	for i, art := range l.articles {
		var overlap int
		var freq float64
		for _, w := range words {
			if n, ok := art.Counts[w]; ok && n > 0 {
				overlap++
				freq += float64(n)
			}
		}
		score := float64(overlap)
		if art.TotalTokens > 0 {
			score += freq / float64(art.TotalTokens) * 0.5 // tie-break < 1
		}
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best, bestScore
}

// PMILabeler labels a topic with the article maximizing the average
// pointwise mutual information between the topic's top-N words and the
// article's top-N words, computed from co-occurrence statistics of a
// reference corpus (the case-study "PMI" technique).
type PMILabeler struct {
	cc       *corpus.CooccurrenceCounter
	artWords [][]int
	topN     int
}

// NewPMILabeler builds a PMI labeler whose co-occurrence statistics come
// from reference (typically the modeled corpus, whole-document windows).
// Each article is represented by its topN most frequent in-vocabulary words.
func NewPMILabeler(src *knowledge.Source, reference *corpus.Corpus, topN int) *PMILabeler {
	if topN <= 0 {
		topN = 10
	}
	v := reference.VocabSize()
	artWords := make([][]int, src.Len())
	for i := 0; i < src.Len(); i++ {
		artWords[i] = topArticleWords(src.Article(i), v, topN)
	}
	return &PMILabeler{
		cc:       corpus.NewCooccurrenceCounter(reference, 0),
		artWords: artWords,
		topN:     topN,
	}
}

func topArticleWords(a *knowledge.Article, v, topN int) []int {
	type wc struct{ w, n int }
	items := make([]wc, 0, len(a.Counts))
	for w, n := range a.Counts {
		if w >= 0 && w < v {
			items = append(items, wc{w, n})
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].n != items[j].n {
			return items[i].n > items[j].n
		}
		return items[i].w < items[j].w
	})
	if len(items) > topN {
		items = items[:topN]
	}
	out := make([]int, len(items))
	for i, it := range items {
		out[i] = it.w
	}
	return out
}

// Name implements Labeler.
func (l *PMILabeler) Name() string { return "pmi" }

// Label implements Labeler. The score is the mean pairwise PMI between the
// topic's and the article's top words.
func (l *PMILabeler) Label(phi []float64) (int, float64) {
	words := topSupportedWords(phi, l.topN)
	best, bestScore := 0, math.Inf(-1)
	for i, aw := range l.artWords {
		score := l.meanPMI(words, aw)
		if score > bestScore {
			best, bestScore = i, score
		}
	}
	return best, bestScore
}

func (l *PMILabeler) meanPMI(a, b []int) float64 {
	n := float64(l.cc.NumWindows())
	if n == 0 {
		return 0
	}
	var total float64
	var pairs int
	for _, wa := range a {
		ca := l.cc.WordCount(wa)
		for _, wb := range b {
			if wa == wb {
				continue
			}
			cb := l.cc.WordCount(wb)
			joint := l.cc.PairCount(wa, wb)
			pairs++
			if ca == 0 || cb == 0 || joint == 0 {
				continue // PMI of an unseen pair contributes 0 (smoothed floor)
			}
			total += math.Log(float64(joint) * n / (float64(ca) * float64(cb)))
		}
	}
	if pairs == 0 {
		return 0
	}
	return total / float64(pairs)
}

// Assignment pairs a topic with its chosen article and score.
type Assignment struct {
	Topic   int
	Article int
	Label   string
	Score   float64
}

// Table runs several labelers over the same topics and returns technique →
// per-topic assignments, the structure behind the §I case-study table.
func Table(labelers []Labeler, phis [][]float64, src *knowledge.Source) (map[string][]Assignment, error) {
	if len(labelers) == 0 {
		return nil, errors.New("labeling: no labelers supplied")
	}
	out := make(map[string][]Assignment, len(labelers))
	for _, l := range labelers {
		rows := make([]Assignment, len(phis))
		for t, phi := range phis {
			a, s := l.Label(phi)
			rows[t] = Assignment{Topic: t, Article: a, Label: src.Label(a), Score: s}
		}
		out[l.Name()] = rows
	}
	return out, nil
}
