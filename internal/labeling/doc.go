// Package labeling implements the post-hoc topic-labeling techniques the
// paper compares against in its introduction and Reuters experiment
// (PAPER.md §I, §IV-C): the four mapping techniques of the §I case study —
// Jensen–Shannon divergence, TF-IDF/cosine similarity, word-overlap
// counting, and pointwise mutual information — and the IR-LDA labeler of
// §IV-C, built from TF-IDF vectors of knowledge-source articles queried
// with each topic's top-10 words.
//
// Every labeler maps a fitted topic-word distribution φ_t to the index of
// the best-matching knowledge-source article; labels are the article
// labels. These are the "label afterwards" alternatives Source-LDA is
// positioned against: where Source-LDA bakes the source into the prior so
// topics arrive labeled, a post-hoc labeler can only hope a freely-learned
// topic happens to align with some article — the mismatch the paper's §I
// case study quantifies.
//
// The public façade exposes these via sourcelda.NewLabeler
// (LabelJSDivergence, LabelTFIDFCosine, LabelCounting, LabelPMI), and the
// experiment harness (internal/experiments) uses them to reproduce the
// paper's labeling-accuracy comparisons.
package labeling
