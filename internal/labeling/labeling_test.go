package labeling

import (
	"strings"
	"testing"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/mathx"
	"sourcelda/internal/synth"
)

// fixture returns a corpus, source and two "perfect" topic distributions:
// one matching each article.
func fixture(t *testing.T) (*corpus.Corpus, *knowledge.Source, [][]float64) {
	t.Helper()
	c := corpus.New()
	for i := 0; i < 10; i++ {
		c.AddText("s", "pencil ruler eraser pencil notebook", nil)
		c.AddText("b", "baseball umpire pitcher baseball inning", nil)
	}
	school := knowledge.NewArticleFromText("School Supplies",
		strings.Repeat("pencil pencil ruler eraser notebook ", 10), c.Vocab, nil, true)
	ball := knowledge.NewArticleFromText("Baseball",
		strings.Repeat("baseball baseball umpire pitcher inning ", 10), c.Vocab, nil, true)
	src := knowledge.MustNewSource([]*knowledge.Article{school, ball})

	V := c.VocabSize()
	phiSchool := make([]float64, V)
	phiBall := make([]float64, V)
	for _, w := range []string{"pencil", "ruler", "eraser", "notebook"} {
		id, _ := c.Vocab.ID(w)
		phiSchool[id] = 1
	}
	for _, w := range []string{"baseball", "umpire", "pitcher", "inning"} {
		id, _ := c.Vocab.ID(w)
		phiBall[id] = 1
	}
	mathx.Normalize(phiSchool)
	mathx.Normalize(phiBall)
	return c, src, [][]float64{phiSchool, phiBall}
}

func TestJSLabeler(t *testing.T) {
	c, src, phis := fixture(t)
	l := NewJSLabeler(src, c.VocabSize(), 0.01)
	if got, _ := l.Label(phis[0]); got != 0 {
		t.Fatalf("school topic labeled %d", got)
	}
	if got, _ := l.Label(phis[1]); got != 1 {
		t.Fatalf("baseball topic labeled %d", got)
	}
	divs := l.Divergences(phis[0])
	if len(divs) != 2 || divs[0] >= divs[1] {
		t.Fatalf("divergences = %v, want school closer", divs)
	}
}

func TestIRLabeler(t *testing.T) {
	c, src, phis := fixture(t)
	l := NewIRLabeler(src, c.VocabSize(), 10)
	if got, score := l.Label(phis[0]); got != 0 || score <= 0 {
		t.Fatalf("school labeled %d score %v", got, score)
	}
	if got, _ := l.Label(phis[1]); got != 1 {
		t.Fatalf("baseball labeled %d", got)
	}
}

func TestCountLabeler(t *testing.T) {
	c, src, phis := fixture(t)
	_ = c
	l := NewCountLabeler(src, 10)
	if got, _ := l.Label(phis[0]); got != 0 {
		t.Fatalf("school labeled %d", got)
	}
	if got, _ := l.Label(phis[1]); got != 1 {
		t.Fatalf("baseball labeled %d", got)
	}
}

func TestPMILabeler(t *testing.T) {
	c, src, phis := fixture(t)
	l := NewPMILabeler(src, c, 10)
	if got, _ := l.Label(phis[0]); got != 0 {
		t.Fatalf("school labeled %d", got)
	}
	if got, _ := l.Label(phis[1]); got != 1 {
		t.Fatalf("baseball labeled %d", got)
	}
}

func TestLabelAllAndTable(t *testing.T) {
	c, src, phis := fixture(t)
	labelers := []Labeler{
		NewJSLabeler(src, c.VocabSize(), 0.01),
		NewIRLabeler(src, c.VocabSize(), 10),
		NewCountLabeler(src, 10),
		NewPMILabeler(src, c, 10),
	}
	for _, l := range labelers {
		got := LabelAll(l, phis)
		if got[0] != 0 || got[1] != 1 {
			t.Errorf("%s: LabelAll = %v", l.Name(), got)
		}
	}
	table, err := Table(labelers, phis, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(table) != 4 {
		t.Fatalf("table has %d techniques", len(table))
	}
	for name, rows := range table {
		if len(rows) != 2 {
			t.Fatalf("%s: %d rows", name, len(rows))
		}
		if rows[0].Label != "School Supplies" {
			t.Errorf("%s labeled topic 0 %q", name, rows[0].Label)
		}
	}
	if _, err := Table(nil, phis, src); err == nil {
		t.Fatal("empty labeler list accepted")
	}
}

func TestLabelerNames(t *testing.T) {
	c, src, _ := fixture(t)
	names := map[string]Labeler{
		"js-divergence": NewJSLabeler(src, c.VocabSize(), 0.01),
		"tfidf-cosine":  NewIRLabeler(src, c.VocabSize(), 10),
		"counting":      NewCountLabeler(src, 10),
		"pmi":           NewPMILabeler(src, c, 10),
	}
	for want, l := range names {
		if l.Name() != want {
			t.Errorf("name %q, want %q", l.Name(), want)
		}
	}
}

func TestCaseStudyTableScenario(t *testing.T) {
	// The §I case-study failure mode: a mixed topic (pencil+baseball mass)
	// confuses post-hoc labelers — both topics can receive the same label.
	// We verify our implementation reproduces the *mechanism*: a deliberately
	// mixed distribution gets a label that ignores its minority sense.
	cs := synth.CaseStudy()
	V := cs.Corpus.VocabSize()
	pencil, _ := cs.Corpus.Vocab.ID("pencil")
	baseball, _ := cs.Corpus.Vocab.ID("baseball")
	umpire, _ := cs.Corpus.Vocab.ID("umpire")
	ruler, _ := cs.Corpus.Vocab.ID("ruler")

	// Topic 1 = {pencil 2/3, baseball 1/3}, topic 2 = {ruler 2/3, umpire 1/3}
	// — the bad LDA outcome from the case study.
	t1 := make([]float64, V)
	t1[pencil], t1[baseball] = 2.0/3, 1.0/3
	t2 := make([]float64, V)
	t2[ruler], t2[umpire] = 2.0/3, 1.0/3

	l := NewJSLabeler(cs.Source, V, 0.01)
	a1, _ := l.Label(t1)
	a2, _ := l.Label(t2)
	// Each topic gets exactly one label; with mixed topics the labels lose
	// the minority words (umpire under School Supplies, baseball under
	// whatever t1 maps to) — the defect Source-LDA avoids by separating
	// topics during inference. The mechanical requirement here is just that
	// both mixed topics resolve deterministically.
	if a1 < 0 || a1 > 1 || a2 < 0 || a2 > 1 {
		t.Fatal("labels out of range")
	}
}

func TestIRLabelerQueryUsesWeights(t *testing.T) {
	// Two topics sharing the same support but different weights should be
	// able to map to different articles when weights disambiguate.
	c, src, _ := fixture(t)
	V := c.VocabSize()
	pencil, _ := c.Vocab.ID("pencil")
	baseball, _ := c.Vocab.ID("baseball")
	mixed := make([]float64, V)
	mixed[pencil], mixed[baseball] = 0.9, 0.1
	mixedBall := make([]float64, V)
	mixedBall[pencil], mixedBall[baseball] = 0.1, 0.9
	l := NewIRLabeler(src, V, 10)
	a, _ := l.Label(mixed)
	b, _ := l.Label(mixedBall)
	if a != 0 || b != 1 {
		t.Fatalf("weighted queries mislabeled: %d, %d", a, b)
	}
}
