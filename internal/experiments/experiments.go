package experiments

import (
	"fmt"
	"sort"
	"sync"
)

// Config controls experiment execution.
type Config struct {
	// Quick shrinks workloads for fast test runs.
	Quick bool
	// Seed drives all randomness; reports are deterministic per seed.
	Seed int64
	// Verbose adds per-step progress lines to reports.
	Verbose bool
}

func (c Config) seed() int64 {
	if c.Seed == 0 {
		return 42
	}
	return c.Seed
}

// Report is the outcome of one experiment.
type Report struct {
	// ID and Title identify the experiment ("fig8a", …).
	ID, Title string
	// PaperClaim summarizes the shape the paper reports for this artifact.
	PaperClaim string
	// Parameters records the workload parameters actually used.
	Parameters string
	// Lines holds the regenerated rows/series, formatted for display.
	Lines []string
	// Metrics holds machine-checkable outcomes.
	Metrics map[string]float64
	// ShapeOK reports whether the paper's qualitative shape held.
	ShapeOK bool
	// ShapeNotes explains each shape check.
	ShapeNotes []string
}

func newReport(id, title, claim string) *Report {
	return &Report{ID: id, Title: title, PaperClaim: claim, Metrics: map[string]float64{}, ShapeOK: true}
}

func (r *Report) addLine(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

func (r *Report) metric(name string, v float64) {
	r.Metrics[name] = v
}

// check records a named shape check; all checks must hold for ShapeOK.
func (r *Report) check(ok bool, format string, args ...any) {
	status := "PASS"
	if !ok {
		status = "FAIL"
		r.ShapeOK = false
	}
	r.ShapeNotes = append(r.ShapeNotes, fmt.Sprintf("[%s] %s", status, fmt.Sprintf(format, args...)))
}

// Experiment is one regenerable paper artifact.
type Experiment struct {
	// ID is the artifact id used by `cmd/experiments -run`.
	ID string
	// Title names the artifact.
	Title string
	// Run executes the experiment.
	Run func(cfg Config) (*Report, error)
}

var registry = []Experiment{
	{"case-study", "§I case-study labeling table", runCaseStudy},
	{"fig2", "Fig. 2: JS divergence of Dirichlet draws per source topic", runFig2},
	{"fig3", "Fig. 3: JS divergence vs λ (no smoothing)", runFig3},
	{"fig4", "Fig. 4: JS divergence vs g(λ) (linear smoothing)", runFig4},
	{"fig5", "Fig. 5: original and augmented pixel topics", runFig5},
	{"fig6", "Fig. 6: pixel-topic recovery, log-likelihood and JS", runFig6},
	{"fig7", "Fig. 7: fixed λ vs dynamic λ (classification and perplexity)", runFig7},
	{"table1", "Table I: Reuters topics for SRC-LDA / IR-LDA / CTM", runTable1},
	{"fig8a", "Fig. 8(a): correct assignments, mixed model", runFig8a},
	{"fig8b", "Fig. 8(b): correct assignments, bijective model", runFig8b},
	{"fig8c", "Fig. 8(c): PMI vs number of topics", runFig8c},
	{"fig8d", "Fig. 8(d): JS divergence of θ, mixed model", runFig8d},
	{"fig8e", "Fig. 8(e): JS divergence of θ, bijective model", runFig8e},
	{"fig8f", "Fig. 8(f): average iteration time vs topics and threads", runFig8f},
}

// All returns the experiments in paper order.
func All() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// IDs returns all experiment ids in paper order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// memo caches expensive shared workloads (the fig8 family reuses the same
// fitted models for accuracy and θ-divergence figures) within a process.
var memo = struct {
	sync.Mutex
	m map[string]any
}{m: map[string]any{}}

func memoized[T any](key string, build func() (T, error)) (T, error) {
	memo.Lock()
	if v, ok := memo.m[key]; ok {
		memo.Unlock()
		return v.(T), nil
	}
	memo.Unlock()
	v, err := build()
	if err != nil {
		var zero T
		return zero, err
	}
	memo.Lock()
	memo.m[key] = v
	memo.Unlock()
	return v, nil
}

// sortedMetricNames lists metric keys deterministically for rendering.
func sortedMetricNames(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
