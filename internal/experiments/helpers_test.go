package experiments

import (
	"math"
	"strings"
	"testing"

	"sourcelda/internal/core"
)

func TestTopTopicsByTokens(t *testing.T) {
	res := &core.Result{
		Phi:         [][]float64{{1, 0}, {0, 1}, {0.5, 0.5}},
		TokenCounts: []int{5, 50, 20},
	}
	top := topTopicsByTokens(res, 2)
	if len(top) != 2 {
		t.Fatalf("got %d rows", len(top))
	}
	// Heaviest first: topic 1, then topic 2.
	if top[0][1] != 1 {
		t.Fatalf("first row should be topic 1's φ, got %v", top[0])
	}
	if top[1][0] != 0.5 {
		t.Fatalf("second row should be topic 2's φ, got %v", top[1])
	}
	// Over-length request clamps.
	if got := topTopicsByTokens(res, 10); len(got) != 3 {
		t.Fatalf("over-length request returned %d", len(got))
	}
}

func TestIdentityLabels(t *testing.T) {
	ids := identityLabels(4)
	for i, v := range ids {
		if v != i {
			t.Fatalf("ids[%d] = %d", i, v)
		}
	}
}

func TestGridEleven(t *testing.T) {
	g := gridEleven()
	if len(g) != 11 || g[0] != 0 || g[10] != 1 {
		t.Fatalf("grid = %v", g)
	}
	for i := 1; i < len(g); i++ {
		if math.Abs(g[i]-g[i-1]-0.1) > 1e-12 {
			t.Fatal("grid not uniform")
		}
	}
}

func TestIsNonIncreasing(t *testing.T) {
	if !isNonIncreasing([]float64{3, 2, 1}, 0) {
		t.Fatal("strictly decreasing rejected")
	}
	if !isNonIncreasing([]float64{3, 3.01, 1}, 0.02) {
		t.Fatal("within-tolerance bump rejected")
	}
	if isNonIncreasing([]float64{1, 2}, 0.5) {
		t.Fatal("large increase accepted")
	}
}

func TestBoolToFloat(t *testing.T) {
	if boolToFloat(true) != 1 || boolToFloat(false) != 0 {
		t.Fatal("boolToFloat wrong")
	}
}

func TestAbsOr1(t *testing.T) {
	if absOr1(-3) != 3 || absOr1(0) != 1 || absOr1(2) != 2 {
		t.Fatal("absOr1 wrong")
	}
}

func TestReportCheckAggregation(t *testing.T) {
	r := newReport("x", "t", "claim")
	r.check(true, "first %d", 1)
	if !r.ShapeOK {
		t.Fatal("passing check flipped ShapeOK")
	}
	r.check(false, "second")
	if r.ShapeOK {
		t.Fatal("failing check did not flip ShapeOK")
	}
	if len(r.ShapeNotes) != 2 {
		t.Fatalf("notes = %v", r.ShapeNotes)
	}
	if !strings.HasPrefix(r.ShapeNotes[0], "[PASS]") || !strings.HasPrefix(r.ShapeNotes[1], "[FAIL]") {
		t.Fatalf("notes = %v", r.ShapeNotes)
	}
	r.metric("m", 2.5)
	if r.Metrics["m"] != 2.5 {
		t.Fatal("metric not recorded")
	}
	r.addLine("row %d", 7)
	if r.Lines[len(r.Lines)-1] != "row 7" {
		t.Fatal("addLine formatting wrong")
	}
}

func TestMemoizedErrorsNotCached(t *testing.T) {
	calls := 0
	fail := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, errTest
		}
		return 42, nil
	}
	if _, err := memoized("helper-test-key", fail); err == nil {
		t.Fatal("first call should fail")
	}
	v, err := memoized("helper-test-key", fail)
	if err != nil || v != 42 {
		t.Fatalf("retry after error: %v, %v", v, err)
	}
	// Third call hits the cache.
	v, err = memoized("helper-test-key", fail)
	if err != nil || v != 42 || calls != 2 {
		t.Fatalf("cache miss: v=%v calls=%d", v, calls)
	}
}

var errTest = errorString("boom")

type errorString string

func (e errorString) Error() string { return string(e) }
