package experiments

import (
	"fmt"

	"sourcelda/internal/core"
	"sourcelda/internal/ctm"
	"sourcelda/internal/eda"
	"sourcelda/internal/eval"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/labeling"
	"sourcelda/internal/lda"
	"sourcelda/internal/synth"
)

// fig8Params holds the scaled §IV-D workload dimensions.
type fig8Params struct {
	B, Live, Free, Docs, AvgLen, Iters int
}

func fig8ParamsFor(cfg Config) fig8Params {
	if cfg.Quick {
		return fig8Params{B: 16, Live: 6, Free: 4, Docs: 80, AvgLen: 50, Iters: 60}
	}
	return fig8Params{B: 70, Live: 35, Free: 14, Docs: 350, AvgLen: 80, Iters: 120}
}

func (p fig8Params) String() string {
	return fmt.Sprintf("B=%d, K(live)=%d, free=%d, D=%d, Davg=%d, %d iterations, α=0.1 β=0.01 (paper scale: B=578, K=100, D=2000, Davg=500, α=50/T, β=200/V — the paper's ratios assume T≈678 and V≈50k and distort badly at reduced scale)",
		p.B, p.Live, p.Free, p.Docs, p.AvgLen, p.Iters)
}

// fig8Alpha and fig8Beta replace the paper's 50/T and 200/V at reduced
// scale: with T tens instead of hundreds and V hundreds instead of tens of
// thousands, the paper's formulas yield α > 1 and β > 0.5, drowning the
// corpus signal in smoothing mass. The substituted values match the paper's
// *effective* magnitudes (50/678 ≈ 0.07, 200/50k ≈ 0.004).
const (
	fig8Alpha = 0.1
	fig8Beta  = 0.01
)

// fig8ModelOut is one fitted model's evaluation against ground truth.
type fig8ModelOut struct {
	Name     string
	Correct  int
	Total    int
	ThetaJS  float64
	Accuracy float64
}

// fig8Run bundles the four models' outcomes for one regime.
type fig8Run struct {
	Params fig8Params
	Models []fig8ModelOut // SRC, EDA, CTM, LDA in order
}

// fig8Mixed fits the four models in the mixed ("Unk") regime: every model
// sees the full B-topic superset (plus free topics where the model supports
// them) without knowing which subset generated the corpus.
func fig8Mixed(cfg Config) (*fig8Run, error) {
	return memoized(fmt.Sprintf("fig8-mixed-%v-%d", cfg.Quick, cfg.seed()), func() (*fig8Run, error) {
		p := fig8ParamsFor(cfg)
		data, err := synth.MedlineLike(synth.MedlineOptions{
			NumTopics:  p.B,
			LiveTopics: p.Live,
			NumDocs:    p.Docs,
			AvgDocLen:  p.AvgLen,
			Alpha:      0.1,
			Mu:         0.7,
			Sigma:      0.3,
			Seed:       cfg.seed(),
		})
		if err != nil {
			return nil, err
		}
		c, src := data.Corpus, data.Source
		V := c.VocabSize()
		truthTheta := data.Generated.TruthThetaOverActive()
		run := &fig8Run{Params: p}

		add := func(name string, assignments [][]int, mapping []int, theta [][]float64) error {
			res, err := eval.ClassifyTokens(c, assignments, mapping)
			if err != nil {
				return err
			}
			js, err := eval.SortedThetaJS(theta, truthTheta)
			if err != nil {
				return err
			}
			run.Models = append(run.Models, fig8ModelOut{
				Name: name, Correct: res.Correct, Total: res.Total,
				Accuracy: res.Accuracy(), ThetaJS: js,
			})
			return nil
		}

		alpha := fig8Alpha
		beta := fig8Beta

		srcModel, err := core.Fit(c, src, core.Options{
			NumFreeTopics:    p.Free,
			Alpha:            alpha,
			Beta:             beta,
			LambdaMode:       core.LambdaIntegrated,
			Mu:               0.7,
			Sigma:            0.3,
			QuadraturePoints: 7,
			UseSmoothing:     true,
			PruneDeadTopics:  true,
			PruneMinDocs:     p.Docs / 25,
			PruneMinTokens:   3,
			Iterations:       p.Iters,
			Seed:             cfg.seed() + 1,
		})
		if err != nil {
			return nil, err
		}
		// Close on every exit path: an error return below would otherwise
		// leak the model's worker pool.
		defer srcModel.Close()
		srcMapping := make([]int, srcModel.NumTopics())
		for t := range srcMapping {
			srcMapping[t] = srcModel.SourceIndex(t) // -1 for free topics
		}
		// θ is taken after superset topic reduction to exactly K topics
		// (§III-C3's guarantee): dead source topics are dropped and
		// mixtures renormalized, exactly as the full pipeline hands them
		// to a user.
		srcReduced := srcModel.Result().ReduceToK(p.Live)
		if err := add("SRC-Unk", srcModel.Assignments(), srcMapping, srcReduced.Result.Theta); err != nil {
			return nil, err
		}

		edaModel, err := eda.Fit(c, src, eda.Options{
			Alpha: alpha, Iterations: p.Iters, Seed: cfg.seed() + 2,
		})
		if err != nil {
			return nil, err
		}
		if err := add("EDA-Unk", edaModel.Assignments(), identityLabels(p.B), edaModel.Theta()); err != nil {
			return nil, err
		}

		ctmModel, err := ctm.Fit(c, src, ctm.Options{
			NumFreeTopics: p.Free, Alpha: alpha, Beta: beta,
			Iterations: p.Iters, Seed: cfg.seed() + 3,
		})
		if err != nil {
			return nil, err
		}
		ctmMapping := make([]int, ctmModel.NumTopics())
		for t := range ctmMapping {
			ctmMapping[t] = ctmModel.ConceptIndex(t)
		}
		if err := add("CTM-Unk", ctmModel.Assignments(), ctmMapping, ctmModel.Theta()); err != nil {
			return nil, err
		}

		ldaModel, err := lda.Fit(c, lda.Options{
			NumTopics:  p.Live,
			Alpha:      alpha,
			Beta:       beta,
			Iterations: p.Iters, Seed: cfg.seed() + 4,
		})
		if err != nil {
			return nil, err
		}
		// Paper: "JS divergence was used to map each LDA topic to its best
		// matching Wikipedia topic".
		js := labeling.NewJSLabeler(src, V, knowledge.DefaultEpsilon)
		ldaMapping := labeling.LabelAll(js, ldaModel.Phi())
		if err := add("LDA-Unk", ldaModel.Assignments(), ldaMapping, ldaModel.Theta()); err != nil {
			return nil, err
		}
		return run, nil
	})
}

// fig8Exact fits the models in the bijective ("Exact") regime: every model
// is told exactly which topics generated the corpus.
func fig8Exact(cfg Config) (*fig8Run, error) {
	return memoized(fmt.Sprintf("fig8-exact-%v-%d", cfg.Quick, cfg.seed()), func() (*fig8Run, error) {
		p := fig8ParamsFor(cfg)
		// The paper's bijective evaluation generates with µ=5.0, σ=2.0 —
		// truncation to [0,1] concentrates λ near 1.
		data, err := synth.MedlineLike(synth.MedlineOptions{
			NumTopics:  p.B,
			LiveTopics: p.Live,
			NumDocs:    p.Docs,
			AvgDocLen:  p.AvgLen,
			Alpha:      0.1,
			Mu:         5.0,
			Sigma:      2.0,
			Seed:       cfg.seed() + 100,
		})
		if err != nil {
			return nil, err
		}
		c := data.Corpus
		V := c.VocabSize()
		sub := data.Source.Subset(data.Live)
		truthTheta := data.Generated.TruthThetaOverActive()
		run := &fig8Run{Params: p}

		subMapping := make([]int, p.Live)
		copy(subMapping, data.Live)

		add := func(name string, assignments [][]int, mapping []int, theta [][]float64) error {
			res, err := eval.ClassifyTokens(c, assignments, mapping)
			if err != nil {
				return err
			}
			js, err := eval.SortedThetaJS(theta, truthTheta)
			if err != nil {
				return err
			}
			run.Models = append(run.Models, fig8ModelOut{
				Name: name, Correct: res.Correct, Total: res.Total,
				Accuracy: res.Accuracy(), ThetaJS: js,
			})
			return nil
		}

		alpha := fig8Alpha
		beta := fig8Beta

		srcModel, err := core.Fit(c, sub, core.Options{
			Alpha:            alpha,
			Beta:             beta,
			LambdaMode:       core.LambdaIntegrated,
			Mu:               5.0,
			Sigma:            2.0,
			QuadraturePoints: 7,
			Iterations:       p.Iters,
			Seed:             cfg.seed() + 11,
		})
		if err != nil {
			return nil, err
		}
		defer srcModel.Close()
		if err := add("SRC-Exact", srcModel.Assignments(), subMapping, srcModel.Theta()); err != nil {
			return nil, err
		}

		edaModel, err := eda.Fit(c, sub, eda.Options{
			Alpha: alpha, Iterations: p.Iters, Seed: cfg.seed() + 12,
		})
		if err != nil {
			return nil, err
		}
		if err := add("EDA-Exact", edaModel.Assignments(), subMapping, edaModel.Theta()); err != nil {
			return nil, err
		}

		ctmModel, err := ctm.Fit(c, sub, ctm.Options{
			Alpha: alpha, Beta: beta, Iterations: p.Iters, Seed: cfg.seed() + 13,
		})
		if err != nil {
			return nil, err
		}
		if err := add("CTM-Exact", ctmModel.Assignments(), subMapping, ctmModel.Theta()); err != nil {
			return nil, err
		}

		ldaModel, err := lda.Fit(c, lda.Options{
			NumTopics: p.Live, Alpha: alpha, Beta: beta,
			Iterations: p.Iters, Seed: cfg.seed() + 14,
		})
		if err != nil {
			return nil, err
		}
		js := labeling.NewJSLabeler(sub, V, knowledge.DefaultEpsilon)
		ldaLocal := labeling.LabelAll(js, ldaModel.Phi())
		ldaMapping := make([]int, len(ldaLocal))
		for t, local := range ldaLocal {
			ldaMapping[t] = data.Live[local]
		}
		if err := add("LDA-Exact", ldaModel.Assignments(), ldaMapping, ldaModel.Theta()); err != nil {
			return nil, err
		}
		return run, nil
	})
}

func renderAccuracy(r *Report, run *fig8Run) {
	r.addLine("%-10s %10s %10s %10s", "Model", "Correct", "Total", "Accuracy")
	for _, m := range run.Models {
		r.addLine("%-10s %10d %10d %9.1f%%", m.Name, m.Correct, m.Total, m.Accuracy*100)
		r.metric("accuracy_"+m.Name, m.Accuracy)
	}
	src := run.Models[0]
	for _, m := range run.Models[1:] {
		r.check(src.Accuracy >= m.Accuracy,
			"%s accuracy (%.1f%%) at or above %s (%.1f%%)",
			src.Name, src.Accuracy*100, m.Name, m.Accuracy*100)
	}
}

func renderThetaJS(r *Report, run *fig8Run) {
	r.addLine("%-10s %14s", "Model", "Σ sorted JS(θ)")
	for _, m := range run.Models {
		r.addLine("%-10s %14.2f", m.Name, m.ThetaJS)
		r.metric("theta_js_"+m.Name, m.ThetaJS)
	}
	src := run.Models[0]
	for _, m := range run.Models[1:] {
		r.check(src.ThetaJS <= m.ThetaJS*1.05,
			"%s θ divergence (%.2f) at or below %s (%.2f)",
			src.Name, src.ThetaJS, m.Name, m.ThetaJS)
	}
}

func runFig8a(cfg Config) (*Report, error) {
	r := newReport("fig8a", "Fig. 8(a): correct assignments, mixed model",
		"Source-LDA has the most correct token assignments among SRC/EDA/CTM/LDA "+
			"when models see the full topic superset")
	run, err := fig8Mixed(cfg)
	if err != nil {
		return nil, err
	}
	r.Parameters = run.Params.String()
	renderAccuracy(r, run)
	return r, nil
}

func runFig8b(cfg Config) (*Report, error) {
	r := newReport("fig8b", "Fig. 8(b): correct assignments, bijective model",
		"Source-LDA leads when every model is told the exact generating topics")
	run, err := fig8Exact(cfg)
	if err != nil {
		return nil, err
	}
	r.Parameters = run.Params.String()
	renderAccuracy(r, run)
	return r, nil
}

func runFig8d(cfg Config) (*Report, error) {
	r := newReport("fig8d", "Fig. 8(d): JS divergence of θ, mixed model",
		"Source-LDA's document mixtures track the ground truth most closely "+
			"(lowest summed sorted JS divergence)")
	run, err := fig8Mixed(cfg)
	if err != nil {
		return nil, err
	}
	r.Parameters = run.Params.String()
	renderThetaJS(r, run)
	return r, nil
}

func runFig8e(cfg Config) (*Report, error) {
	r := newReport("fig8e", "Fig. 8(e): JS divergence of θ, bijective model",
		"Source-LDA's document mixtures track the ground truth most closely in "+
			"the bijective regime too")
	run, err := fig8Exact(cfg)
	if err != nil {
		return nil, err
	}
	r.Parameters = run.Params.String()
	renderThetaJS(r, run)
	return r, nil
}

// runFig8c regenerates Fig. 8(c): PMI coherence of the top-10 words per
// topic as the number of live topics sweeps upward, for SRC-Exact, SRC-Unk
// and LDA. The paper shows Source-LDA above LDA with a modest gap.
func runFig8c(cfg Config) (*Report, error) {
	r := newReport("fig8c", "Fig. 8(c): PMI vs number of topics",
		"Source-LDA's topics are at least as coherent (PMI of top-10 words) as "+
			"LDA's across the topic sweep; the gap is modest")
	B, docs, avgLen, iters := 40, 150, 60, 80
	sweep := []int{10, 15, 20, 25, 30}
	if cfg.Quick {
		B, docs, avgLen, iters = 14, 50, 30, 35
		sweep = []int{6, 10}
	}
	r.Parameters = fmt.Sprintf(
		"B=%d, K ∈ %v, D=%d, Davg=%d, λ=1 (bijective generation), %d iterations, seed=%d (paper: K ∈ {100…200}, B=578)",
		B, sweep, docs, avgLen, iters, cfg.seed())

	one := 1.0
	var srcExactSum, srcUnkSum, ldaSum float64
	r.addLine("%-8s %12s %12s %12s", "Topics", "SRC-Exact", "SRC-Unk", "LDA")
	for _, k := range sweep {
		data, err := synth.MedlineLike(synth.MedlineOptions{
			NumTopics:  B,
			LiveTopics: k,
			NumDocs:    docs,
			AvgDocLen:  avgLen,
			Alpha:      0.1,
			Seed:       cfg.seed() + int64(k),
		})
		if err != nil {
			return nil, err
		}
		// Regenerate with fixed λ = 1 per the paper's §IV-D PMI setup.
		gen, err := synth.Generate(data.Source.Subset(data.Live), data.Vocab, synth.GenerativeOptions{
			NumDocs:     docs,
			AvgDocLen:   avgLen,
			Alpha:       0.1,
			FixedLambda: &one,
			LiveTopics:  identityLabels(k),
			Seed:        cfg.seed() + int64(k) + 1,
		})
		if err != nil {
			return nil, err
		}
		c := gen.Corpus
		sub := data.Source.Subset(data.Live)
		beta := fig8Beta
		pmiOpts := eval.PMIOptions{TopN: 10}

		exact, err := core.Fit(c, sub, core.Options{
			Alpha: fig8Alpha, Beta: beta,
			LambdaMode: core.LambdaFixed, Lambda: 1,
			Iterations: iters, Seed: cfg.seed() + 21,
		})
		if err != nil {
			return nil, err
		}
		exactPMI := eval.PMICoherence(c, exact.Phi(), pmiOpts)
		exact.Close()

		free := k / 2
		if free < 2 {
			free = 2
		}
		unk, err := core.Fit(c, data.Source, core.Options{
			NumFreeTopics: free,
			Alpha:         fig8Alpha, Beta: beta,
			LambdaMode: core.LambdaFixed, Lambda: 1,
			Iterations: iters, Seed: cfg.seed() + 22,
		})
		if err != nil {
			return nil, err
		}
		// Superset reduction to exactly k topics (§III-C3): keep the k
		// topics carrying the most corpus tokens, as the paper's pipeline
		// does before reporting word lists.
		unkRes := unk.Result()
		unkPMI := eval.PMICoherence(c, topTopicsByTokens(unkRes, k), pmiOpts)
		unk.Close()

		ldaModel, err := lda.Fit(c, lda.Options{
			NumTopics: k, Alpha: fig8Alpha, Beta: beta,
			Iterations: iters, Seed: cfg.seed() + 23,
		})
		if err != nil {
			return nil, err
		}
		ldaPMI := eval.PMICoherence(c, ldaModel.Phi(), pmiOpts)

		r.addLine("%-8d %12.4f %12.4f %12.4f", k, exactPMI, unkPMI, ldaPMI)
		srcExactSum += exactPMI
		srcUnkSum += unkPMI
		ldaSum += ldaPMI
	}
	n := float64(len(sweep))
	r.metric("src_exact_mean_pmi", srcExactSum/n)
	r.metric("src_unk_mean_pmi", srcUnkSum/n)
	r.metric("lda_mean_pmi", ldaSum/n)
	r.check(srcExactSum/n >= ldaSum/n-0.02,
		"SRC-Exact mean PMI (%.4f) at or above LDA (%.4f) within tolerance",
		srcExactSum/n, ldaSum/n)
	r.check(srcUnkSum/n >= ldaSum/n-0.05,
		"SRC-Unk mean PMI (%.4f) comparable to LDA (%.4f)", srcUnkSum/n, ldaSum/n)
	return r, nil
}

// topTopicsByTokens returns the φ rows of the k topics with the most
// assigned corpus tokens.
func topTopicsByTokens(res *core.Result, k int) [][]float64 {
	type tc struct{ t, n int }
	all := make([]tc, len(res.TokenCounts))
	for t, n := range res.TokenCounts {
		all[t] = tc{t, n}
	}
	for i := 1; i < len(all); i++ { // insertion sort by count desc; small n
		for j := i; j > 0 && all[j].n > all[j-1].n; j-- {
			all[j], all[j-1] = all[j-1], all[j]
		}
	}
	if k > len(all) {
		k = len(all)
	}
	out := make([][]float64, k)
	for i := 0; i < k; i++ {
		out[i] = res.Phi[all[i].t]
	}
	return out
}
