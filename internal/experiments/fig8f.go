package experiments

import (
	"fmt"
	"time"

	"sourcelda/internal/core"
	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/rng"
	"sourcelda/internal/textproc"
)

// bigTWorkload builds a corpus plus a T-topic knowledge source over a
// *shared* vocabulary, so very large topic counts stay within memory (the
// word-topic count matrix is V×T). Topics differ by which shared words they
// emphasize.
func bigTWorkload(T, vocabSize, docs, avgLen int, seed int64) (*corpus.Corpus, *knowledge.Source) {
	r := rng.New(seed)
	vocab := textproc.NewVocabulary()
	for w := 0; w < vocabSize; w++ {
		vocab.Add(fmt.Sprintf("w%04d", w))
	}
	const wordsPerTopic = 25
	articles := make([]*knowledge.Article, T)
	topicWords := make([][]int, T)
	for t := 0; t < T; t++ {
		words := r.SampleWithoutReplacement(vocabSize, wordsPerTopic)
		counts := make(map[int]int, wordsPerTopic)
		total := 0
		for rank, w := range words {
			n := 40 / (rank + 1)
			if n < 1 {
				n = 1
			}
			counts[w] = n
			total += n
		}
		articles[t] = &knowledge.Article{
			Label:       fmt.Sprintf("topic-%04d", t),
			Counts:      counts,
			TotalTokens: total,
		}
		topicWords[t] = words
	}
	src := knowledge.MustNewSource(articles)

	c := corpus.NewWithVocab(vocab)
	for d := 0; d < docs; d++ {
		n := avgLen/2 + r.Intn(avgLen)
		doc := &corpus.Document{Words: make([]int, n)}
		// Each document mixes 3 random topics' vocabularies.
		t1, t2, t3 := r.Intn(T), r.Intn(T), r.Intn(T)
		pick := [][]int{topicWords[t1], topicWords[t2], topicWords[t3]}
		for i := range doc.Words {
			words := pick[r.Intn(3)]
			doc.Words[i] = words[r.Intn(len(words))]
		}
		c.AddDocument(doc)
	}
	return c, src
}

// runFig8f regenerates Fig. 8(f): average Gibbs iteration time as the total
// topic count T sweeps upward, for 1, 3 and 6 worker threads using the
// simple parallel sampler (Algorithm 3). The paper demonstrates linear
// scaling in T and easy parallelization. Note: this container exposes a
// single hardware CPU, so multi-thread wall-clock speedup is not observable
// here; the harness still verifies linearity in T and records the
// per-thread timings (see DESIGN.md §1 on this substitution).
func runFig8f(cfg Config) (*Report, error) {
	r := newReport("fig8f", "Fig. 8(f): average iteration time vs topics and threads",
		"iteration time grows linearly with the number of topics; the sampler "+
			"parallelizes without changing results (paper sweeps T to 10,000)")
	tSweep := []int{100, 300, 1000, 3000}
	docs, avgLen, vocabSize, sweeps := 80, 50, 2000, 3
	threads := []int{1, 3, 6}
	if cfg.Quick {
		tSweep = []int{50, 150}
		docs, avgLen, vocabSize, sweeps = 30, 25, 500, 2
		threads = []int{1, 3}
	}
	r.Parameters = fmt.Sprintf("T ∈ %v, D=%d, Davg≈%d, V=%d, %d timed sweeps, threads %v, seed=%d",
		tSweep, docs, avgLen, vocabSize, sweeps, threads, cfg.seed())

	header := fmt.Sprintf("%-8s", "Topics")
	for _, p := range threads {
		header += fmt.Sprintf(" %10s", fmt.Sprintf("%d thread", p))
	}
	r.addLine("%s", header)

	// avg[threadIdx][tIdx] = seconds per iteration.
	avg := make([][]float64, len(threads))
	for i := range avg {
		avg[i] = make([]float64, len(tSweep))
	}
	for ti, T := range tSweep {
		c, src := bigTWorkload(T, vocabSize, docs, avgLen, cfg.seed()+int64(T))
		line := fmt.Sprintf("%-8d", T)
		for pi, p := range threads {
			opts := core.Options{
				Alpha:      0.5,
				Beta:       0.01,
				LambdaMode: core.LambdaFixed,
				Lambda:     1,
				Iterations: sweeps,
				Seed:       cfg.seed(),
				Threads:    p,
			}
			if p > 1 {
				opts.Sampler = core.SamplerSimpleParallel
			}
			m, err := core.Fit(c, src, opts)
			if err != nil {
				return nil, err
			}
			var total time.Duration
			for _, d := range m.IterationTimes {
				total += d
			}
			secs := total.Seconds() / float64(len(m.IterationTimes))
			avg[pi][ti] = secs
			line += fmt.Sprintf(" %9.3fs", secs)
			m.Close()
		}
		r.addLine("%s", line)
	}

	// Linearity in T for the single-thread series: time ratio within 3× of
	// the topic-count ratio on either side (the paper's "linearly
	// scalable").
	first, last := 0, len(tSweep)-1
	tRatio := float64(tSweep[last]) / float64(tSweep[first])
	timeRatio := avg[0][last] / avg[0][first]
	r.metric("t_ratio", tRatio)
	r.metric("time_ratio_1thread", timeRatio)
	r.check(timeRatio < tRatio*3 && timeRatio > tRatio/6,
		"1-thread time ratio %.1f tracks topic ratio %.1f (linear scaling)", timeRatio, tRatio)
	for pi, p := range threads {
		r.metric(fmt.Sprintf("avg_seconds_T%d_threads%d", tSweep[last], p), avg[pi][last])
	}
	r.addLine("")
	r.addLine("note: single hardware CPU in this environment — thread counts demonstrate")
	r.addLine("the exactness-preserving parallel kernels, not wall-clock speedup.")
	return r, nil
}
