package experiments

import (
	"strings"
	"testing"
)

func TestRegistryWellFormed(t *testing.T) {
	ids := IDs()
	want := []string{"case-study", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "table1", "fig8a", "fig8b", "fig8c", "fig8d", "fig8e", "fig8f"}
	if len(ids) != len(want) {
		t.Fatalf("have %d experiments, want %d", len(ids), len(want))
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("ids[%d] = %q, want %q", i, ids[i], id)
		}
	}
	for _, e := range All() {
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %q underspecified", e.ID)
		}
	}
	if _, ok := ByID("fig6"); !ok {
		t.Fatal("ByID(fig6) missed")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("ByID(nope) found something")
	}
}

// runQuick executes an experiment in Quick mode and requires the paper's
// shape to hold — these are the repository's end-to-end integration tests.
func runQuick(t *testing.T, id string) *Report {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("no experiment %q", id)
	}
	rep, err := e.Run(Config{Quick: true, Seed: 42})
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id {
		t.Fatalf("report id %q", rep.ID)
	}
	if len(rep.Lines) == 0 {
		t.Fatalf("%s produced no output lines", id)
	}
	if rep.Parameters == "" {
		t.Fatalf("%s did not record parameters", id)
	}
	if !rep.ShapeOK {
		t.Errorf("%s: paper shape did not hold:\n%s", id, strings.Join(rep.ShapeNotes, "\n"))
	}
	return rep
}

func TestCaseStudyQuick(t *testing.T) {
	rep := runQuick(t, "case-study")
	if rep.Metrics["sourcelda_ideal"] != 1 {
		t.Fatal("Source-LDA did not produce the ideal case-study assignments")
	}
}

func TestFig2Quick(t *testing.T) {
	rep := runQuick(t, "fig2")
	if rep.Metrics["worst_median_js"] <= 0 {
		t.Fatal("degenerate JS statistics")
	}
	// 20 topics + header.
	if len(rep.Lines) != 21 {
		t.Fatalf("expected 21 lines, got %d", len(rep.Lines))
	}
}

func TestFig3Quick(t *testing.T) {
	rep := runQuick(t, "fig3")
	if rep.Metrics["js_at_0"] <= rep.Metrics["js_at_1"] {
		t.Fatal("JS should fall from λ=0 to λ=1")
	}
}

func TestFig4Quick(t *testing.T) {
	rep := runQuick(t, "fig4")
	if rep.Metrics["smoothed_nonlinearity"] >= rep.Metrics["raw_nonlinearity"] {
		t.Fatal("smoothing should reduce nonlinearity")
	}
}

func TestFig5Quick(t *testing.T) {
	rep := runQuick(t, "fig5")
	if rep.Metrics["changed_topics"] == 0 {
		t.Fatal("augmentation changed nothing")
	}
}

func TestFig6Quick(t *testing.T) {
	rep := runQuick(t, "fig6")
	if !(rep.Metrics["src_js"] < rep.Metrics["eda_js"] && rep.Metrics["src_js"] < rep.Metrics["ctm_js"]) {
		t.Fatalf("JS ordering broken: src=%v eda=%v ctm=%v",
			rep.Metrics["src_js"], rep.Metrics["eda_js"], rep.Metrics["ctm_js"])
	}
}

func TestFig7Quick(t *testing.T) {
	rep := runQuick(t, "fig7")
	if rep.Metrics["baseline_accuracy"] <= 0 {
		t.Fatal("baseline accuracy missing")
	}
	if rep.Metrics["baseline_perplexity"] <= 1 {
		t.Fatal("perplexity must exceed 1")
	}
}

func TestTable1Quick(t *testing.T) {
	rep := runQuick(t, "table1")
	if rep.Metrics["src_discovered"] < rep.Metrics["ctm_discovered"] {
		t.Fatal("discovery ordering broken")
	}
}

func TestFig8aQuick(t *testing.T) {
	rep := runQuick(t, "fig8a")
	for _, name := range []string{"SRC-Unk", "EDA-Unk", "CTM-Unk", "LDA-Unk"} {
		if _, ok := rep.Metrics["accuracy_"+name]; !ok {
			t.Fatalf("missing accuracy for %s", name)
		}
	}
}

func TestFig8bQuick(t *testing.T) {
	rep := runQuick(t, "fig8b")
	if rep.Metrics["accuracy_SRC-Exact"] < rep.Metrics["accuracy_LDA-Exact"] {
		t.Fatal("SRC-Exact should beat LDA-Exact")
	}
}

func TestFig8cQuick(t *testing.T) {
	rep := runQuick(t, "fig8c")
	if rep.Metrics["src_exact_mean_pmi"] == 0 && rep.Metrics["lda_mean_pmi"] == 0 {
		t.Fatal("PMI metrics degenerate")
	}
}

func TestFig8dQuick(t *testing.T) {
	rep := runQuick(t, "fig8d")
	if rep.Metrics["theta_js_SRC-Unk"] <= 0 {
		t.Fatal("θ JS missing")
	}
}

func TestFig8eQuick(t *testing.T) {
	rep := runQuick(t, "fig8e")
	if rep.Metrics["theta_js_SRC-Exact"] <= 0 {
		t.Fatal("θ JS missing")
	}
}

func TestFig8fQuick(t *testing.T) {
	rep := runQuick(t, "fig8f")
	if rep.Metrics["time_ratio_1thread"] <= 0 {
		t.Fatal("timing ratio missing")
	}
}

func TestMemoizedSharing(t *testing.T) {
	// fig8a and fig8d share the mixed-model fit; the second call must be a
	// cache hit producing identical metrics.
	a, err := fig8Mixed(Config{Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := fig8Mixed(Config{Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("memoization returned different instances")
	}
}

func TestSortedMetricNames(t *testing.T) {
	m := map[string]float64{"b": 1, "a": 2}
	names := sortedMetricNames(m)
	if names[0] != "a" || names[1] != "b" {
		t.Fatalf("names = %v", names)
	}
}
