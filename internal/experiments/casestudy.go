package experiments

import (
	"fmt"

	"sourcelda/internal/core"
	"sourcelda/internal/labeling"
	"sourcelda/internal/lda"
	"sourcelda/internal/synth"
)

// runCaseStudy reproduces the §I motivating table: LDA with K = 2 on the
// two-document corpus, labeled post-hoc by the four mapping techniques —
// followed by the Source-LDA run that produces the ideal assignments
// directly. The paper's point is that post-hoc labeling of mixed topics
// collapses both topics onto one label while Source-LDA separates them
// during inference.
func runCaseStudy(cfg Config) (*Report, error) {
	r := newReport("case-study", "§I case-study labeling table",
		"post-hoc mapping techniques can assign the same label to both LDA topics; "+
			"Source-LDA recovers the ideal assignments (pencil/ruler → School Supplies, "+
			"umpire/baseball → Baseball)")
	cs := synth.CaseStudy()
	iters := 400
	if cfg.Quick {
		iters = 150
	}
	r.Parameters = fmt.Sprintf("2 docs × 3 words, K=2, iterations=%d, seed=%d", iters, cfg.seed())

	// The unlucky LDA outcome from the paper: run LDA; with 2 topics on 6
	// tokens outcomes vary per seed, like the paper observes ("different
	// results for different runs due to the inherent stochastic nature").
	m, err := lda.Fit(cs.Corpus, lda.Options{
		NumTopics: 2, Alpha: 1, Beta: 0.1, Iterations: iters, Seed: cfg.seed(),
	})
	if err != nil {
		return nil, err
	}
	phis := m.Phi()

	labelers := []labeling.Labeler{
		labeling.NewJSLabeler(cs.Source, cs.Corpus.VocabSize(), 0.01),
		labeling.NewIRLabeler(cs.Source, cs.Corpus.VocabSize(), 10),
		labeling.NewCountLabeler(cs.Source, 10),
		labeling.NewPMILabeler(cs.Source, cs.Corpus, 10),
	}
	table, err := labeling.Table(labelers, phis, cs.Source)
	if err != nil {
		return nil, err
	}
	r.addLine("%-14s %-18s %-18s", "Technique", "Topic 1", "Topic 2")
	for _, l := range labelers {
		rows := table[l.Name()]
		r.addLine("%-14s %-18s %-18s", l.Name(), rows[0].Label, rows[1].Label)
	}

	// Source-LDA on the same corpus: ideal assignments.
	src, err := core.Fit(cs.Corpus, cs.Source, core.Options{
		Alpha: 0.5, LambdaMode: core.LambdaFixed, Lambda: 1,
		Iterations: iters, Seed: cfg.seed(),
	})
	if err != nil {
		return nil, err
	}
	defer src.Close()
	z := src.Assignments()
	school := src.NumFreeTopics() + cs.SchoolSupplies
	ball := src.NumFreeTopics() + cs.Baseball
	ideal := z[0][0] == school && z[0][1] == school && z[0][2] == ball &&
		z[1][0] == school && z[1][1] == school && z[1][2] == ball
	r.addLine("")
	r.addLine("Source-LDA assignments: d1=%v d2=%v (School Supplies=%d, Baseball=%d)",
		z[0], z[1], school, ball)
	r.metric("sourcelda_ideal", boolToFloat(ideal))
	r.check(ideal, "Source-LDA recovers the ideal topic assignments")
	return r, nil
}

func boolToFloat(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
