package experiments

import (
	"fmt"

	"sourcelda/internal/core"
	"sourcelda/internal/eval"
	"sourcelda/internal/rng"
	"sourcelda/internal/stats"
	"sourcelda/internal/synth"
)

// runFig7 regenerates Fig. 7 (§IV-B): a corpus generated under the
// bijective model with per-topic λ ~ N(0.5, 1.0) bounded to [0, 1] is fit
// with a dynamic-λ baseline and with λ fixed at several values; the paper
// shows the baseline's classification accuracy beating every fixed-λ run
// even when perplexity suggests otherwise (classification and perplexity
// are imperfectly correlated).
//
// Workload notes: topics share one word pool, so they are identified by
// frequency profiles, not supports — the Wikipedia regime (knowledge
// articles cover overlapping vocabulary); and articles are large relative
// to per-topic corpus mass, so a fixed λ = 1 prior cannot adapt to the
// topics whose λ was drawn low.
func runFig7(cfg Config) (*Report, error) {
	r := newReport("fig7", "Fig. 7: fixed λ vs dynamic λ (classification and perplexity)",
		"the dynamic-λ (Gaussian prior) baseline achieves the best classification "+
			"accuracy; fixed-λ runs trail it, and perplexity does not perfectly "+
			"track classification (paper baseline: 25.7% / 1119.9)")
	numTopics, numDocs, avgLen, iters := 16, 350, 70, 150
	wordsPer, pool, articleTokens := 30, 55, 3000
	fixed := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0}
	if cfg.Quick {
		numTopics, numDocs, avgLen, iters = 12, 200, 60, 100
		wordsPer, pool = 30, 50
		fixed = []float64{0.1, 0.5, 1.0}
	}
	r.Parameters = fmt.Sprintf(
		"B=K=%d topics (bijective, shared %d-word pool, %d words each), D=%d, Davg=%d, articles=%d tokens, generation µ=0.5 σ=1.0 α=0.5, %d iterations, seed=%d (paper scale: 100 topics, 500 docs, Davg=100)",
		numTopics, pool, wordsPer, numDocs, avgLen, articleTokens, iters, cfg.seed())

	cats := synth.OverlappingCategories(numTopics, wordsPer, pool, cfg.seed()+7)
	enc := synth.BuildEncyclopedia(cats, nil, synth.EncyclopediaOptions{
		ArticleTokens:  articleTokens,
		ExtraCoreWords: 0,
		Seed:           cfg.seed() + 8,
	})
	live := identityLabels(numTopics)
	gen, err := synth.Generate(enc.Source, enc.Vocab, synth.GenerativeOptions{
		NumDocs:    numDocs,
		AvgDocLen:  avgLen,
		Alpha:      0.5,
		Mu:         0.5,
		Sigma:      1.0,
		LiveTopics: live,
		Seed:       cfg.seed() + 9,
	})
	if err != nil {
		return nil, err
	}
	train, test := gen.Corpus.Split(0.15, rng.New(cfg.seed()+10))

	type row struct {
		name       string
		accuracy   float64
		perplexity float64
	}
	fit := func(name string, opts core.Options) (row, error) {
		opts.Alpha = 0.5
		opts.Iterations = iters
		opts.Seed = cfg.seed() + 77
		m, err := core.Fit(train, enc.Source, opts)
		if err != nil {
			return row{}, err
		}
		defer m.Close()
		// Bijective: model topic t is truth topic t.
		res, err := eval.ClassifyTokens(train, m.Assignments(), identityLabels(m.NumTopics()))
		if err != nil {
			return row{}, err
		}
		ppx, err := m.HeldOutPerplexity(test, 30, 15, cfg.seed()+5)
		if err != nil {
			return row{}, err
		}
		return row{name, res.Accuracy(), ppx}, nil
	}

	// The corpus is generated with raw λ exponents (§IV-B's bijective
	// protocol), so the integrated baseline also uses raw exponents; its
	// per-topic λ posterior (the collapsed treatment of the latent λ_t)
	// lets each topic settle on its own deviation level.
	baseline, err := fit("dynamic λ (µ=0.5, σ=1.0)", core.Options{
		LambdaMode:       core.LambdaIntegrated,
		Mu:               0.5,
		Sigma:            1.0,
		QuadraturePoints: 9,
	})
	if err != nil {
		return nil, err
	}
	rows := []row{baseline}
	for _, l := range fixed {
		rw, err := fit(fmt.Sprintf("fixed λ=%.1f", l), core.Options{
			LambdaMode: core.LambdaFixed,
			Lambda:     l,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, rw)
	}

	r.addLine("%-24s %14s %12s", "Run", "Classification", "Perplexity")
	for _, rw := range rows {
		r.addLine("%-24s %13.1f%% %12.1f", rw.name, rw.accuracy*100, rw.perplexity)
	}
	r.metric("baseline_accuracy", baseline.accuracy)
	r.metric("baseline_perplexity", baseline.perplexity)

	bestFixed, bestFixedName := -1.0, ""
	for _, rw := range rows[1:] {
		r.metric("accuracy_"+rw.name, rw.accuracy)
		if rw.accuracy > bestFixed {
			bestFixed, bestFixedName = rw.accuracy, rw.name
		}
	}
	// The paper's headline: the baseline beats every fixed-λ run. Allow a
	// small tolerance at reduced scale.
	r.check(baseline.accuracy >= bestFixed*0.98,
		"dynamic λ (%.1f%%) at or above the best fixed λ (%s, %.1f%%)",
		baseline.accuracy*100, bestFixedName, bestFixed*100)

	// Imperfect correlation: the accuracy ranking and perplexity ranking
	// must not coincide perfectly across runs (Fig. 7's second message).
	accs := make([]float64, len(rows))
	ppxs := make([]float64, len(rows))
	for i, rw := range rows {
		accs[i] = rw.accuracy
		ppxs[i] = -rw.perplexity // negate: lower perplexity = "better"
	}
	corr := stats.PearsonCorrelation(accs, ppxs)
	r.metric("accuracy_perplexity_correlation", corr)
	r.check(corr < 0.999, "classification not perfectly correlated with perplexity (r=%.3f)", corr)
	return r, nil
}
