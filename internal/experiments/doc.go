// Package experiments regenerates every table and figure of the paper's
// evaluation section (PAPER.md §IV) on synthetic substitutes for the
// paper's corpora. Each experiment returns a Report containing the same
// rows or series the paper presents, the paper's expected shape, and a
// pass/fail shape check (who wins, by roughly what factor) — absolute
// numbers are not expected to match the authors' testbed, the *ordering
// and ratios* are.
//
// One runner per artifact:
//
//   - Table 1 (table1.go): discovered labeled topics, Source-LDA vs CTM.
//   - Figs. 2–4 (figs234.go): pixel plots of assignment quality across
//     the bijective, known-mixture and full models (internal/pixel).
//   - Figs. 5–6 (figs56.go): labeling accuracy vs baselines and the
//     post-hoc labelers (internal/labeling).
//   - Fig. 7 (fig7.go): held-out perplexity across (µ, σ).
//   - Fig. 8 (fig8.go, fig8f.go): parallel-sampler speedups (Algorithms
//     2–3) and their exactness against the serial chain.
//   - Case study (casestudy.go): the §I "school supplies" illustration.
//
// Experiments run at two scales: the default is sized for a laptop CPU
// (parameters recorded in each report), and Quick mode shrinks everything
// further for the test suite and CI. cmd/experiments is the CLI
// (-list/-run/-quick); the test suite runs every artifact in Quick mode so
// a regression in any reproduction fails tier-1.
package experiments
