package experiments

import (
	"fmt"
	"strings"

	"sourcelda/internal/core"
	"sourcelda/internal/ctm"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/labeling"
	"sourcelda/internal/lda"
	"sourcelda/internal/synth"
	"sourcelda/internal/textproc"
)

// runTable1 regenerates Table I (§IV-C): the Reuters-like corpus is modeled
// by Source-LDA, by LDA labeled post-hoc with the IR approach (IR-LDA), and
// by CTM; the table shows each model's most probable words for shared
// labeled topics, plus the paper's side statistics — how many labeled topics
// each model discovered (paper: Source-LDA 15, CTM 6) and the label-mismatch
// rate of top words (paper: SRC 36%, IR-LDA 77%, CTM 86%).
func runTable1(cfg Config) (*Report, error) {
	r := newReport("table1", "Table I: Reuters topics for SRC-LDA / IR-LDA / CTM",
		"Source-LDA's word lists match their labels best; IR-LDA mixes concepts; "+
			"CTM overweights unimportant words; Source-LDA discovers more labeled "+
			"topics than CTM and mismatches less than IR-LDA")
	numCats, liveCats, numDocs, avgLen, iters := 40, 20, 400, 70, 150
	freeTopics := 10
	if cfg.Quick {
		numCats, liveCats, numDocs, avgLen, iters = 16, 8, 120, 40, 60
		freeTopics = 4
	}
	r.Parameters = fmt.Sprintf(
		"%d-category superset, %d live, D=%d, Davg=%d, α=50/T β=200/V µ=0.7 σ=0.3, %d iterations, seed=%d (paper scale: 80 categories, 49 live, 2000 docs)",
		numCats, liveCats, numDocs, avgLen, iters, cfg.seed())

	data, err := synth.ReutersLike(synth.ReutersOptions{
		NumCategories:  numCats,
		LiveCategories: liveCats,
		NumDocs:        numDocs,
		AvgDocLen:      avgLen,
		UnknownTopics:  3,
		Seed:           cfg.seed(),
	})
	if err != nil {
		return nil, err
	}
	c, src := data.Corpus, data.Source
	T := freeTopics + src.Len()
	V := c.VocabSize()
	alpha := 50.0 / float64(T)
	beta := 200.0 / float64(V)

	// Source-LDA over the full superset plus free topics, with in-inference
	// superset reduction (§III-C3) eliminating categories the corpus never
	// uses.
	srcModel, err := core.Fit(c, src, core.Options{
		NumFreeTopics:    freeTopics,
		Alpha:            alpha,
		Beta:             beta,
		LambdaMode:       core.LambdaIntegrated,
		Mu:               0.7,
		Sigma:            0.3,
		QuadraturePoints: 7,
		UseSmoothing:     true,
		PruneDeadTopics:  true,
		PruneAfter:       iters / 2,
		PruneMinDocs:     numDocs / 10,
		PruneMinTokens:   3,
		Iterations:       iters,
		Seed:             cfg.seed() + 1,
	})
	if err != nil {
		return nil, err
	}
	defer srcModel.Close()
	srcRes := srcModel.Result()

	// IR-LDA: plain LDA labeled by the TF-IDF/cosine retrieval approach.
	ldaModel, err := lda.Fit(c, lda.Options{
		NumTopics:  liveCats + freeTopics,
		Alpha:      50.0 / float64(liveCats+freeTopics),
		Beta:       beta,
		Iterations: iters,
		Seed:       cfg.seed() + 2,
	})
	if err != nil {
		return nil, err
	}
	irLabeler := labeling.NewIRLabeler(src, V, 10)
	ldaPhi := ldaModel.Phi()
	ldaLabels := labeling.LabelAll(irLabeler, ldaPhi)

	// CTM over the same superset.
	ctmModel, err := ctm.Fit(c, src, ctm.Options{
		NumFreeTopics: freeTopics,
		Alpha:         alpha,
		Beta:          beta,
		Iterations:    iters,
		Seed:          cfg.seed() + 3,
	})
	if err != nil {
		return nil, err
	}
	ctmPhi := ctmModel.Phi()

	// Showcase topics: prefer the paper's three Table I categories when
	// live, else the first live curated categories.
	want := []string{"Inventories", "Natural Gas", "Balance of Payments"}
	liveSet := map[int]bool{}
	for _, l := range data.Live {
		liveSet[l] = true
	}
	var showcase []int
	for _, label := range want {
		if i, ok := src.IndexOf(label); ok && liveSet[i] {
			showcase = append(showcase, i)
		}
	}
	for _, l := range data.Live {
		if len(showcase) >= 3 {
			break
		}
		dup := false
		for _, s := range showcase {
			if s == l {
				dup = true
			}
		}
		if !dup {
			showcase = append(showcase, l)
		}
	}

	topWords := func(phi []float64, n int) string {
		ids := textproc.TopWords(phi, n)
		words := make([]string, len(ids))
		for i, id := range ids {
			words[i] = c.Vocab.Word(id)
		}
		return strings.Join(words, ", ")
	}
	for _, art := range showcase {
		label := src.Label(art)
		r.addLine("== %s ==", label)
		r.addLine("  SRC-LDA: %s", topWords(srcRes.Phi[freeTopics+art], 10))
		irTopic := -1
		for t, a := range ldaLabels {
			if a == art {
				irTopic = t
				break
			}
		}
		if irTopic >= 0 {
			r.addLine("  IR-LDA:  %s", topWords(ldaPhi[irTopic], 10))
		} else {
			r.addLine("  IR-LDA:  (no LDA topic mapped to this label)")
		}
		r.addLine("  CTM:     %s", topWords(ctmPhi[freeTopics+art], 10))
	}

	// Discovery under a document-frequency threshold (§III-C3). The paper
	// reports raw counts (15 vs 6); at reduced scale the comparable
	// statistic is discovery *quality*: how many of the passed-through
	// labeled topics are genuinely live in the corpus, and how much of the
	// live set is covered.
	minDocs := numDocs / 10
	if minDocs < 2 {
		minDocs = 2
	}
	srcDiscovered := srcRes.DiscoveredSourceTopics(minDocs, 3)
	ctmDiscovered := ctmModel.DiscoveredConcepts(minDocs, 3)
	liveLabels := map[string]bool{}
	for _, l := range data.Live {
		liveLabels[src.Label(l)] = true
	}
	precision := func(found []string) float64 {
		if len(found) == 0 {
			return 0
		}
		hit := 0
		for _, l := range found {
			if liveLabels[l] {
				hit++
			}
		}
		return float64(hit) / float64(len(found))
	}
	srcPrec, ctmPrec := precision(srcDiscovered), precision(ctmDiscovered)
	srcLive := int(srcPrec * float64(len(srcDiscovered)))
	r.addLine("")
	r.addLine("discovered labeled topics (≥%d docs): SRC=%d (%.0f%% live) CTM=%d (%.0f%% live); paper: 15 vs 6",
		minDocs, len(srcDiscovered), srcPrec*100, len(ctmDiscovered), ctmPrec*100)
	r.metric("src_discovered", float64(len(srcDiscovered)))
	r.metric("ctm_discovered", float64(len(ctmDiscovered)))
	r.metric("src_discovery_precision", srcPrec)
	r.metric("ctm_discovery_precision", ctmPrec)
	r.check(srcPrec >= ctmPrec,
		"Source-LDA's discovered topics are at least as often genuinely live (%.2f ≥ %.2f)",
		srcPrec, ctmPrec)
	r.check(srcLive >= liveCats/2,
		"Source-LDA discovers a majority of the %d live topics (%d)", liveCats, srcLive)

	// Mismatch rate: fraction of a labeled topic's top-10 words that do not
	// appear in the labeling article — the automatable proxy for the
	// paper's human judgment of words "not appropriate for the label".
	srcMismatch := mismatchRate(srcRes.Phi[freeTopics:], identityLabels(src.Len()), src, 10)
	irMismatch := mismatchRate(ldaPhi, ldaLabels, src, 10)
	r.addLine("top-word label mismatch: SRC=%.0f%% IR-LDA=%.0f%% (paper: 36%% vs 77%%)",
		srcMismatch*100, irMismatch*100)
	r.metric("src_mismatch", srcMismatch)
	r.metric("ir_mismatch", irMismatch)
	r.check(srcMismatch < irMismatch,
		"Source-LDA's top words fit their labels better (%.2f < %.2f)", srcMismatch, irMismatch)
	return r, nil
}

func identityLabels(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// mismatchRate averages, over topics with label assignments, the fraction
// of top-n words missing from the labeling article.
func mismatchRate(phis [][]float64, labels []int, src *knowledge.Source, n int) float64 {
	var total float64
	var topics int
	for t, phi := range phis {
		art := src.Article(labels[t])
		ids := textproc.TopWords(phi, n)
		missing := 0
		counted := 0
		for _, w := range ids {
			if phi[w] <= 0 {
				continue
			}
			counted++
			if art.Counts[w] == 0 {
				missing++
			}
		}
		if counted > 0 {
			total += float64(missing) / float64(counted)
			topics++
		}
	}
	if topics == 0 {
		return 0
	}
	return total / float64(topics)
}
