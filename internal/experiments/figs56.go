package experiments

import (
	"fmt"

	"sourcelda/internal/core"
	"sourcelda/internal/ctm"
	"sourcelda/internal/eda"
	"sourcelda/internal/pixel"
	"sourcelda/internal/rng"
	"sourcelda/internal/stats"
)

// runFig5 regenerates Fig. 5: the ten original row/column pixel topics and
// their augmented counterparts after random pixel swaps.
func runFig5(cfg Config) (*Report, error) {
	r := newReport("fig5", "Fig. 5: original and augmented pixel topics",
		"10 row/column topics over a 5×5 vocabulary; augmentation swaps one "+
			"assigned pixel between paired topics (a 20% augmentation)")
	orig := pixel.OriginalTopics()
	aug := pixel.Augment(orig, rng.New(cfg.seed()))
	r.Parameters = fmt.Sprintf("10 topics, 5×5 vocabulary, seed=%d", cfg.seed())

	r.addLine("(a) original topics:")
	r.addLine("%s", pixel.RenderRow(orig[:5]))
	r.addLine("%s", pixel.RenderRow(orig[5:]))
	r.addLine("")
	r.addLine("(b) augmented topics:")
	r.addLine("%s", pixel.RenderRow(aug[:5]))
	r.addLine("%s", pixel.RenderRow(aug[5:]))

	changed := 0
	for i := range aug {
		for w := range aug[i] {
			if aug[i][w] != orig[i][w] {
				changed++
				break
			}
		}
	}
	r.metric("changed_topics", float64(changed))
	r.check(changed > 0, "augmentation changed %d topics", changed)
	return r, nil
}

// runFig6 regenerates Fig. 6 and the §IV-A comparison: generate a corpus
// from the hidden augmented topics, hand the models only the original
// topics, and measure recovery. Source-LDA should discover the augmented
// distributions (JS ≈ 0.012 in the paper) while EDA (0.138) cannot move φ
// and CTM (0.43) cannot emit the swapped pixels.
func runFig6(cfg Config) (*Report, error) {
	r := newReport("fig6", "Fig. 6: pixel-topic recovery, log-likelihood and JS",
		"Source-LDA recovers and labels the hidden augmented topics; "+
			"average JS to truth orders SRC < EDA < CTM (paper: 0.012 / 0.138 / 0.43)")
	numDocs, iters, runs := 1200, 500, 4
	snapshots := []int{1, 20, 50, 100, 150, 200, 300, 500}
	if cfg.Quick {
		numDocs, iters, runs = 350, 120, 2
		snapshots = []int{1, 20, 120}
	}
	r.Parameters = fmt.Sprintf("%d docs × 25 words, α=1, %d iterations, %d runs, seed=%d",
		numDocs, iters, runs, cfg.seed())

	gen := rng.New(cfg.seed())
	orig := pixel.OriginalTopics()
	aug := pixel.Augment(orig, gen)
	c := pixel.GenerateCorpus(aug, numDocs, 25, 1, gen)
	src := pixel.KnowledgeSource(orig, 500)

	// Four chains with different seeds, tracing log-likelihood (the paper
	// plots all four to show run-to-run consistency). The JS comparison is
	// the average across runs, matching the paper's "comparative average JS
	// divergence".
	finals := make([]float64, 0, runs)
	var srcJSSum float64
	for run := 0; run < runs; run++ {
		var trace []float64
		var rendered []string
		m, err := core.Fit(c, src, core.Options{
			Alpha:            1,
			LambdaMode:       core.LambdaIntegrated,
			Mu:               0.7,
			Sigma:            0.3,
			QuadraturePoints: 5,
			UseSmoothing:     true,
			Iterations:       iters,
			Seed:             cfg.seed() + int64(run),
			TraceLikelihood:  true,
			OnIteration: func(iter int, m *core.Model) {
				if run != 0 {
					return
				}
				for _, snap := range snapshots {
					if iter+1 == snap {
						rendered = append(rendered,
							fmt.Sprintf("iteration %d:", snap),
							pixel.RenderRow(topicsFromPhi(m.Phi()[:5])),
							pixel.RenderRow(topicsFromPhi(m.Phi()[5:10])))
					}
				}
			},
		})
		if err != nil {
			return nil, err
		}
		trace = m.LikelihoodTrace
		if run == 0 {
			for _, line := range rendered {
				r.addLine("%s", line)
			}
		}
		srcJSSum += avgTopicJS(m.Phi()[m.NumFreeTopics():], aug)
		finals = append(finals, trace[len(trace)-1])
		r.addLine("run %d: log-likelihood %0.1f → %0.1f", run, trace[0], trace[len(trace)-1])
		r.check(trace[len(trace)-1] > trace[0],
			"run %d log-likelihood improves (%.1f → %.1f)", run, trace[0], trace[len(trace)-1])
		m.Close()
	}
	// Run-to-run similarity of the converged likelihood (the paper's four
	// curves nearly coincide).
	sum := stats.Describe(finals)
	r.metric("final_ll_relspread", (sum.Max-sum.Min)/absOr1(sum.Mean))
	r.check((sum.Max-sum.Min)/absOr1(sum.Mean) < 0.05,
		"converged likelihood consistent across runs (spread %.4f)", (sum.Max-sum.Min)/absOr1(sum.Mean))

	// JS of learned topics to the hidden augmented truth — the §IV-A
	// comparison. Source topic t is labeled with original topic t, whose
	// hidden counterpart is aug[t]; the figure averages across the runs.
	srcJS := srcJSSum / float64(runs)
	r.metric("src_js", srcJS)

	edaModel, err := eda.Fit(c, src, eda.Options{Alpha: 1, Iterations: iters / 2, Seed: cfg.seed()})
	if err != nil {
		return nil, err
	}
	edaJS := avgTopicJS(edaModel.Phi(), aug)
	r.metric("eda_js", edaJS)

	ctmModel, err := ctm.Fit(c, src, ctm.Options{Alpha: 1, Beta: 0.1, Iterations: iters / 2, Seed: cfg.seed()})
	if err != nil {
		return nil, err
	}
	ctmJS := avgTopicJS(ctmModel.Phi(), aug)
	r.metric("ctm_js", ctmJS)

	r.addLine("")
	r.addLine("average JS to augmented truth: SRC=%.3f EDA=%.3f CTM=%.3f (paper: 0.012 / 0.138 / 0.43)",
		srcJS, edaJS, ctmJS)
	r.check(srcJS < edaJS, "Source-LDA beats EDA (%.3f < %.3f)", srcJS, edaJS)
	r.check(srcJS < ctmJS, "Source-LDA beats CTM (%.3f < %.3f)", srcJS, ctmJS)
	// The paper reports 0.012 at 2000 docs × 500 iterations; the threshold
	// tracks the reduced corpus/iteration budget.
	closeJS := 0.1
	if cfg.Quick {
		closeJS = 0.15
	}
	r.check(srcJS < closeJS, "Source-LDA recovers augmented topics closely (JS %.3f < %.2f)", srcJS, closeJS)
	return r, nil
}

// topicsFromPhi adapts φ rows to pixel topics for rendering.
func topicsFromPhi(phi [][]float64) []pixel.Topic {
	out := make([]pixel.Topic, len(phi))
	for i, row := range phi {
		out[i] = pixel.Topic(row)
	}
	return out
}

// avgTopicJS averages JS(phi[t], truth[t]) over aligned topics. The truth
// gets a minimal smoothing floor (far below the δ smoothing ε) so supports
// overlap without the floor itself dominating the divergence.
func avgTopicJS(phi [][]float64, truth []pixel.Topic) float64 {
	const truthFloor = 1e-3
	n := len(phi)
	if len(truth) < n {
		n = len(truth)
	}
	var total float64
	for t := 0; t < n; t++ {
		smoothTruth := make([]float64, len(truth[t]))
		var norm float64
		for w, p := range truth[t] {
			smoothTruth[w] = p + truthFloor
			norm += smoothTruth[w]
		}
		for w := range smoothTruth {
			smoothTruth[w] /= norm
		}
		total += stats.JSDivergence(phi[t], smoothTruth)
	}
	return total / float64(n)
}

func absOr1(x float64) float64 {
	if x < 0 {
		x = -x
	}
	if x == 0 {
		return 1
	}
	return x
}
