package experiments

import (
	"fmt"

	"sourcelda/internal/knowledge"
	"sourcelda/internal/rng"
	"sourcelda/internal/smoothing"
	"sourcelda/internal/stats"
	"sourcelda/internal/synth"
)

// fig2Topics builds the Fig. 2 knowledge source: the paper's 20 named
// Reuters categories with Wikipedia-like articles.
func fig2Topics(cfg Config) (*synth.Encyclopedia, []string) {
	cats := synth.CuratedCategories()[:20]
	names := make([]string, len(cats))
	for i, c := range cats {
		names[i] = c.Label
	}
	enc := synth.BuildEncyclopedia(cats, nil, synth.EncyclopediaOptions{
		ArticleTokens: 400,
		Seed:          cfg.seed(),
	})
	return enc, names
}

// runFig2 regenerates Fig. 2: for each of the 20 knowledge-source topics,
// draw 1000 samples from Dir(δ) (source hyperparameters, λ = 1) and report
// the box-plot summary of the JS divergence to the source distribution. The
// paper's figure shows divergences concentrated in roughly [0, 0.15] with
// topic-dependent medians — the built-in variability of the bijective model.
func runFig2(cfg Config) (*Report, error) {
	r := newReport("fig2", "Fig. 2: JS divergence of Dirichlet draws per source topic",
		"1000 Dirichlet draws per topic stay close to the source distribution "+
			"(median JS well below ln 2 ≈ 0.69, paper range ≈ 0.00–0.15), with per-topic spread")
	samples := 1000
	if cfg.Quick {
		samples = 100
	}
	enc, names := fig2Topics(cfg)
	V := enc.Vocab.Size()
	r.Parameters = fmt.Sprintf("20 topics, %d samples each, V=%d, ε=%g, seed=%d",
		samples, V, knowledge.DefaultEpsilon, cfg.seed())

	gen := rng.New(cfg.seed() + 1)
	draw := make([]float64, V)
	var worstMedian float64
	r.addLine("%-28s %8s %8s %8s %8s %8s", "Topic", "min", "q1", "median", "q3", "max")
	for i, name := range names {
		art := enc.Source.Article(i)
		alpha := art.Hyperparams(V, knowledge.DefaultEpsilon).Dense()
		src := art.SmoothedDistribution(V, knowledge.DefaultEpsilon)
		vals := make([]float64, samples)
		for s := 0; s < samples; s++ {
			gen.Dirichlet(alpha, draw)
			vals[s] = stats.JSDivergence(draw, src)
		}
		bp := stats.NewBoxPlot(vals)
		r.addLine("%-28s %8.4f %8.4f %8.4f %8.4f %8.4f", name, bp.Min, bp.Q1, bp.Median, bp.Q3, bp.Max)
		if bp.Median > worstMedian {
			worstMedian = bp.Median
		}
	}
	r.metric("worst_median_js", worstMedian)
	r.check(worstMedian < 0.25,
		"per-topic median JS divergence stays small (worst %.4f < 0.25)", worstMedian)
	return r, nil
}

// fig34Fixture returns a representative peaked topic for the λ sweeps.
func fig34Fixture(cfg Config) (*knowledge.Hyperparams, []float64) {
	enc, _ := fig2Topics(cfg)
	V := enc.Vocab.Size()
	art := enc.Source.Article(0)
	return art.Hyperparams(V, knowledge.DefaultEpsilon),
		art.SmoothedDistribution(V, knowledge.DefaultEpsilon)
}

// runFig3 regenerates Fig. 3: box plots of the JS divergence between the
// source distribution and Dir(δ^λ) draws for λ ∈ {0, 0.1, …, 1} without
// smoothing. The paper shows a monotone decreasing, strongly non-linear
// curve (most movement happens at small λ).
func runFig3(cfg Config) (*Report, error) {
	r := newReport("fig3", "Fig. 3: JS divergence vs λ (no smoothing)",
		"JS decreases monotonically in λ and the decrease is non-linear "+
			"(concentrated near λ≈0), motivating the g linearization")
	samples := 300
	if cfg.Quick {
		samples = 60
	}
	h, src := fig34Fixture(cfg)
	r.Parameters = fmt.Sprintf("λ ∈ {0,0.1,…,1}, %d draws per point, V=%d, seed=%d",
		samples, h.V, cfg.seed())

	lambdas := gridEleven()
	data := smoothing.SampleJSBoxData(h, src, lambdas, samples,
		func(x float64) float64 { return x }, cfg.seed()+2)
	medians := renderJSBoxes(r, lambdas, data, "λ")

	r.metric("js_at_0", medians[0])
	r.metric("js_at_1", medians[len(medians)-1])
	monotone := isNonIncreasing(medians, 0.02)
	r.check(monotone, "median JS non-increasing in λ")
	r.check(medians[0] > 2*medians[len(medians)-1],
		"JS at λ=0 (%.3f) well above JS at λ=1 (%.3f)", medians[0], medians[len(medians)-1])
	nonlin := smoothing.Linearity(lambdas, medians)
	r.metric("nonlinearity", nonlin)
	r.check(nonlin > 0.08, "raw curve visibly non-linear (deviation %.3f > 0.08)", nonlin)
	return r, nil
}

// runFig4 regenerates Fig. 4: the same sweep with λ mapped through the
// estimated linear-smoothing function g. The paper shows the box-plot
// medians now descending approximately linearly.
func runFig4(cfg Config) (*Report, error) {
	r := newReport("fig4", "Fig. 4: JS divergence vs g(λ) (linear smoothing)",
		"after mapping λ through g, the JS-vs-λ medians descend approximately linearly")
	samples := 300
	gridSamples := 120
	if cfg.Quick {
		samples = 60
		gridSamples = 40
	}
	h, src := fig34Fixture(cfg)
	g := smoothing.Estimate(h, src, smoothing.Config{
		GridPoints: 15, Samples: gridSamples, Seed: cfg.seed() + 3,
	})
	r.Parameters = fmt.Sprintf("λ ∈ {g(0),…,g(1)}, %d draws per point, g from %d-sample MC grid, seed=%d",
		samples, gridSamples, cfg.seed())

	lambdas := gridEleven()
	raw := smoothing.SampleJSBoxData(h, src, lambdas, samples,
		func(x float64) float64 { return x }, cfg.seed()+4)
	smoothed := smoothing.SampleJSBoxData(h, src, lambdas, samples, g.Eval, cfg.seed()+4)

	rawMedians := boxMedians(raw)
	medians := renderJSBoxes(r, lambdas, smoothed, "g(λ)")

	rawLin := smoothing.Linearity(lambdas, rawMedians)
	smoothLin := smoothing.Linearity(lambdas, medians)
	r.metric("raw_nonlinearity", rawLin)
	r.metric("smoothed_nonlinearity", smoothLin)
	r.check(smoothLin < rawLin,
		"g reduces curve non-linearity (%.3f < %.3f)", smoothLin, rawLin)
	r.check(isNonIncreasing(medians, 0.03), "smoothed medians still non-increasing")
	return r, nil
}

func gridEleven() []float64 {
	out := make([]float64, 11)
	for i := range out {
		out[i] = float64(i) / 10
	}
	return out
}

func boxMedians(data [][]float64) []float64 {
	out := make([]float64, len(data))
	for i, vals := range data {
		out[i] = stats.NewBoxPlot(vals).Median
	}
	return out
}

func renderJSBoxes(r *Report, lambdas []float64, data [][]float64, axis string) []float64 {
	r.addLine("%-6s %8s %8s %8s %8s %8s", axis, "min", "q1", "median", "q3", "max")
	medians := make([]float64, len(lambdas))
	for i, vals := range data {
		bp := stats.NewBoxPlot(vals)
		medians[i] = bp.Median
		r.addLine("%-6.1f %8.4f %8.4f %8.4f %8.4f %8.4f",
			lambdas[i], bp.Min, bp.Q1, bp.Median, bp.Q3, bp.Max)
	}
	return medians
}

// isNonIncreasing tolerates per-step Monte-Carlo jitter up to tol.
func isNonIncreasing(xs []float64, tol float64) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i] > xs[i-1]+tol {
			return false
		}
	}
	return true
}
