// Package eda implements Explicit Dirichlet Allocation (Hansen et al.,
// GSCL 2013), the paper's "too strict" comparison baseline (PAPER.md §I,
// §IV).
//
// In EDA the topics *are* the knowledge-source word distributions
// (Definition 2) and never deviate from them: only the token-topic
// assignments and document mixtures are inferred, φ stays frozen at the
// source. EDA therefore can neither adapt a known topic to how the corpus
// actually uses its words nor discover unknown topics — the two failure
// modes Source-LDA's λ mechanism (§III-C) and free topics (§III-B) exist
// to fix. Together with CTM ("too lenient", internal/ctm) it brackets the
// design space the paper positions Source-LDA inside.
//
// The sampler is a collapsed Gibbs over assignments with the frozen-φ
// conditional P(z_i = t | ·) ∝ φ_t,wi · (n^di_t + α) — structurally the
// same fold-in iteration internal/infer runs against a trained Source-LDA
// model, which is why their implementations mirror each other.
package eda
