package eda

import (
	"math"
	"strings"
	"testing"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/stats"
)

func fixture(t *testing.T) (*corpus.Corpus, *knowledge.Source) {
	t.Helper()
	c := corpus.New()
	for i := 0; i < 15; i++ {
		c.AddText("s", "pencil ruler eraser pencil ruler pencil", nil)
		c.AddText("b", "baseball umpire pitcher baseball umpire baseball", nil)
	}
	school := knowledge.NewArticleFromText("School Supplies",
		strings.Repeat("pencil pencil pencil ruler ruler eraser ", 20), c.Vocab, nil, true)
	ball := knowledge.NewArticleFromText("Baseball",
		strings.Repeat("baseball baseball baseball umpire umpire pitcher ", 20), c.Vocab, nil, true)
	return c, knowledge.MustNewSource([]*knowledge.Article{school, ball})
}

func TestValidation(t *testing.T) {
	c, src := fixture(t)
	if _, err := Fit(nil, src, Options{Alpha: 1, Iterations: 1}); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := Fit(c, nil, Options{Alpha: 1, Iterations: 1}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := Fit(c, src, Options{Alpha: 0, Iterations: 1}); err == nil {
		t.Error("zero alpha accepted")
	}
}

func TestPhiIsFrozenToSource(t *testing.T) {
	// EDA's defining property: φ equals the source distributions exactly,
	// before and after sampling.
	c, src := fixture(t)
	m, err := Fit(c, src, Options{Alpha: 0.5, Iterations: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := src.SmoothedDistributions(c.VocabSize(), knowledge.DefaultEpsilon)
	for k := range want {
		if js := stats.JSDivergence(m.Phi()[k], want[k]); js != 0 {
			t.Fatalf("φ[%d] deviates from the source (JS %v); EDA must not update φ", k, js)
		}
	}
}

func TestAssignsTokensToMatchingTopic(t *testing.T) {
	c, src := fixture(t)
	m, err := Fit(c, src, Options{Alpha: 0.5, Iterations: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// School documents' tokens should sit on topic 0 (School Supplies).
	var correct, total int
	for d, doc := range c.Docs {
		want := 0
		if doc.Name == "b" {
			want = 1
		}
		for _, k := range m.Assignments()[d] {
			total++
			if k == want {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.95 {
		t.Fatalf("assignment accuracy %v, want ≥ 0.95 on separable data", acc)
	}
}

func TestThetaNormalized(t *testing.T) {
	c, src := fixture(t)
	m, err := Fit(c, src, Options{Alpha: 0.5, Iterations: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for d, row := range m.Theta() {
		var s float64
		for _, p := range row {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("θ[%d] sums to %v", d, s)
		}
	}
}

func TestCannotDeviateFromSource(t *testing.T) {
	// Put a word in the corpus that no article contains: EDA must still
	// assign it (via ε smoothing) but can never give it real probability —
	// the weakness Source-LDA fixes (§IV-A: EDA mislabels augmented
	// topics).
	c, src := fixture(t)
	extra := corpus.NewWithVocab(c.Vocab)
	extra.AddText("x", "quasar quasar quasar pencil", nil)
	for _, d := range extra.Docs {
		c.AddDocument(d)
	}
	m, err := Fit(c, src, Options{Alpha: 0.5, Iterations: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	quasar, _ := c.Vocab.ID("quasar")
	for k := 0; k < m.NumTopics(); k++ {
		if m.Phi()[k][quasar] > 0.01 {
			t.Fatalf("frozen φ learned an unseen word: %v", m.Phi()[k][quasar])
		}
	}
}

func TestLabelsAndDeterminism(t *testing.T) {
	c, src := fixture(t)
	labels := func() []string {
		m, err := Fit(c, src, Options{Alpha: 0.5, Iterations: 5, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return m.Labels()
	}
	l := labels()
	if l[0] != "School Supplies" || l[1] != "Baseball" {
		t.Fatalf("labels = %v", l)
	}
	m1, _ := Fit(c, src, Options{Alpha: 0.5, Iterations: 5, Seed: 7})
	m2, _ := Fit(c, src, Options{Alpha: 0.5, Iterations: 5, Seed: 7})
	for d := range m1.Assignments() {
		for i := range m1.Assignments()[d] {
			if m1.Assignments()[d][i] != m2.Assignments()[d][i] {
				t.Fatal("same seed differed")
			}
		}
	}
}
