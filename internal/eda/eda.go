package eda

import (
	"errors"
	"time"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/rng"
)

// Options configures an EDA fit.
type Options struct {
	// Alpha is the symmetric document-topic prior.
	Alpha float64
	// Epsilon smooths the fixed source distributions so every vocabulary
	// word keeps non-zero probability under every topic (without it, a
	// token absent from all articles would have zero probability
	// everywhere).
	Epsilon float64
	// Iterations is the number of Gibbs sweeps. Default 1000.
	Iterations int
	// Seed seeds the chain.
	Seed int64
	// OnIteration, when non-nil, runs after each sweep.
	OnIteration func(iter int, m *Model)
}

// Model is a fitted EDA chain.
type Model struct {
	opts Options
	c    *corpus.Corpus
	src  *knowledge.Source

	T, V, D int
	phi     [][]float64 // frozen topic-word distributions [T][V]
	nd      [][]int
	ndsum   []int
	z       [][]int

	// IterationTimes holds per-sweep wall-clock durations.
	IterationTimes []time.Duration
}

// Fit runs Gibbs sampling with φ frozen to the source distributions.
func Fit(c *corpus.Corpus, src *knowledge.Source, opts Options) (*Model, error) {
	if c == nil || c.NumDocs() == 0 {
		return nil, errors.New("eda: empty corpus")
	}
	if src == nil || src.Len() == 0 {
		return nil, errors.New("eda: empty knowledge source")
	}
	if opts.Alpha <= 0 {
		return nil, errors.New("eda: Alpha must be positive")
	}
	if opts.Epsilon <= 0 {
		opts.Epsilon = knowledge.DefaultEpsilon
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 1000
	}
	m := &Model{
		opts: opts,
		c:    c,
		src:  src,
		T:    src.Len(),
		V:    c.VocabSize(),
		D:    c.NumDocs(),
	}
	m.phi = src.SmoothedDistributions(m.V, opts.Epsilon)
	m.nd = make([][]int, m.D)
	m.z = make([][]int, m.D)
	for d := range m.nd {
		m.nd[d] = make([]int, m.T)
		m.z[d] = make([]int, len(c.Docs[d].Words))
	}
	m.ndsum = make([]int, m.D)

	r := rng.New(opts.Seed)
	for d, doc := range c.Docs {
		for i := range doc.Words {
			k := r.Intn(m.T)
			m.z[d][i] = k
			m.nd[d][k]++
			m.ndsum[d]++
		}
	}
	probs := make([]float64, m.T)
	for iter := 0; iter < opts.Iterations; iter++ {
		start := time.Now()
		for d, doc := range c.Docs {
			nd := m.nd[d]
			for i, w := range doc.Words {
				old := m.z[d][i]
				nd[old]--
				for t := 0; t < m.T; t++ {
					probs[t] = m.phi[t][w] * (float64(nd[t]) + opts.Alpha)
				}
				k := r.Categorical(probs)
				m.z[d][i] = k
				nd[k]++
			}
		}
		m.IterationTimes = append(m.IterationTimes, time.Since(start))
		if opts.OnIteration != nil {
			opts.OnIteration(iter, m)
		}
	}
	return m, nil
}

// Phi returns the frozen topic-word distributions. Live state; do not
// mutate.
func (m *Model) Phi() [][]float64 { return m.phi }

// Theta returns the inferred document-topic distributions.
func (m *Model) Theta() [][]float64 {
	alpha := m.opts.Alpha
	tAlpha := float64(m.T) * alpha
	theta := make([][]float64, m.D)
	for d := range theta {
		row := make([]float64, m.T)
		den := float64(m.ndsum[d]) + tAlpha
		for t := 0; t < m.T; t++ {
			row[t] = (float64(m.nd[d][t]) + alpha) / den
		}
		theta[d] = row
	}
	return theta
}

// Assignments returns live per-token assignments; do not mutate.
func (m *Model) Assignments() [][]int { return m.z }

// Labels returns the knowledge-source labels (EDA topics are the articles).
func (m *Model) Labels() []string { return m.src.Labels() }

// NumTopics returns the topic count (= number of articles).
func (m *Model) NumTopics() int { return m.T }
