package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed must give identical streams")
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 50; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same == 50 {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestGammaMoments(t *testing.T) {
	r := New(7)
	cases := []struct{ shape, scale float64 }{
		{0.5, 1}, {1, 2}, {3, 1}, {9.5, 0.5}, {0.1, 1},
	}
	for _, c := range cases {
		const n = 20000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			x := r.Gamma(c.shape, c.scale)
			if x < 0 {
				t.Fatalf("Gamma(%v,%v) drew negative %v", c.shape, c.scale, x)
			}
			sum += x
			sumSq += x * x
		}
		mean := sum / n
		variance := sumSq/n - mean*mean
		wantMean := c.shape * c.scale
		wantVar := c.shape * c.scale * c.scale
		if math.Abs(mean-wantMean) > 0.1*wantMean+0.02 {
			t.Errorf("Gamma(%v,%v) mean %v, want ≈%v", c.shape, c.scale, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 0.25*wantVar+0.05 {
			t.Errorf("Gamma(%v,%v) var %v, want ≈%v", c.shape, c.scale, variance, wantVar)
		}
	}
}

func TestGammaPanicsOnBadParams(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive shape")
		}
	}()
	New(1).Gamma(0, 1)
}

func TestDirichletSumsToOne(t *testing.T) {
	r := New(11)
	alpha := []float64{0.5, 1.5, 3, 0.1}
	out := make([]float64, 4)
	for i := 0; i < 200; i++ {
		r.Dirichlet(alpha, out)
		var s float64
		for _, x := range out {
			if x < 0 {
				t.Fatalf("negative component %v", x)
			}
			s += x
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("sum %v, want 1", s)
		}
	}
}

func TestDirichletMean(t *testing.T) {
	// E[X_i] = alpha_i / sum(alpha).
	r := New(13)
	alpha := []float64{2, 6}
	out := make([]float64, 2)
	var mean0 float64
	const n = 20000
	for i := 0; i < n; i++ {
		r.Dirichlet(alpha, out)
		mean0 += out[0]
	}
	mean0 /= n
	if math.Abs(mean0-0.25) > 0.01 {
		t.Fatalf("mean of first component %v, want ≈0.25", mean0)
	}
}

func TestDirichletLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Dirichlet([]float64{1, 2}, make([]float64, 3))
}

func TestDirichletSymmetricConcentration(t *testing.T) {
	r := New(17)
	out := make([]float64, 10)
	// Small alpha: most mass on few atoms — max component should usually be
	// large.
	var maxSum float64
	for i := 0; i < 500; i++ {
		r.DirichletSymmetric(0.01, out)
		max := 0.0
		for _, x := range out {
			if x > max {
				max = x
			}
		}
		maxSum += max
	}
	if avg := maxSum / 500; avg < 0.8 {
		t.Errorf("alpha=0.01 mean max component %v, want > 0.8 (concentrated)", avg)
	}
	// Large alpha: near uniform.
	maxSum = 0
	for i := 0; i < 500; i++ {
		r.DirichletSymmetric(100, out)
		max := 0.0
		for _, x := range out {
			if x > max {
				max = x
			}
		}
		maxSum += max
	}
	if avg := maxSum / 500; avg > 0.2 {
		t.Errorf("alpha=100 mean max component %v, want < 0.2 (≈uniform)", avg)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(19)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Normal(3, 2)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("mean %v, want ≈3", mean)
	}
	if math.Abs(variance-4) > 0.2 {
		t.Errorf("variance %v, want ≈4", variance)
	}
}

func TestNormalZeroSigma(t *testing.T) {
	if got := New(1).Normal(5, 0); got != 5 {
		t.Fatalf("Normal(5, 0) = %v, want exactly 5", got)
	}
}

func TestTruncatedNormalBounds(t *testing.T) {
	r := New(23)
	for i := 0; i < 5000; i++ {
		x := r.TruncatedNormal(0.5, 1.0, 0, 1)
		if x < 0 || x > 1 {
			t.Fatalf("draw %v outside [0,1]", x)
		}
	}
	// Far-out mean still lands in bounds.
	for i := 0; i < 100; i++ {
		x := r.TruncatedNormal(50, 0.1, 0, 1)
		if x < 0 || x > 1 {
			t.Fatalf("far-mean draw %v outside [0,1]", x)
		}
	}
}

func TestClampedNormalEndpointMasses(t *testing.T) {
	// Clamped N(0.5, 1.0) on [0,1] puts ≈31% mass at each endpoint — the
	// paper's λ bounding (§IV-B) relies on exactly this behaviour.
	r := New(61)
	const n = 20000
	var zeros, ones int
	for i := 0; i < n; i++ {
		x := r.ClampedNormal(0.5, 1.0, 0, 1)
		if x < 0 || x > 1 {
			t.Fatalf("draw %v outside [0,1]", x)
		}
		if x == 0 {
			zeros++
		}
		if x == 1 {
			ones++
		}
	}
	pZero := float64(zeros) / n
	pOne := float64(ones) / n
	if math.Abs(pZero-0.3085) > 0.02 || math.Abs(pOne-0.3085) > 0.02 {
		t.Fatalf("endpoint masses %v / %v, want ≈0.31 each", pZero, pOne)
	}
	// Swapped bounds normalize.
	if x := r.ClampedNormal(0.5, 1.0, 1, 0); x < 0 || x > 1 {
		t.Fatalf("swapped-bounds draw %v", x)
	}
}

func TestTruncatedNormalSwappedBounds(t *testing.T) {
	x := New(3).TruncatedNormal(0.5, 1, 1, 0) // lo > hi swaps
	if x < 0 || x > 1 {
		t.Fatalf("draw %v outside [0,1]", x)
	}
}

func TestPoissonMoments(t *testing.T) {
	r := New(29)
	for _, lambda := range []float64{0.5, 4, 25, 600} {
		const n = 5000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(lambda))
		}
		mean := sum / n
		if math.Abs(mean-lambda) > 0.1*lambda+0.2 {
			t.Errorf("Poisson(%v) mean %v", lambda, mean)
		}
	}
}

func TestPoissonNonPositive(t *testing.T) {
	if New(1).Poisson(0) != 0 || New(1).Poisson(-3) != 0 {
		t.Fatal("non-positive lambda must return 0")
	}
}

func TestCategoricalDistribution(t *testing.T) {
	r := New(31)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[r.Categorical(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight category drawn %d times", counts[1])
	}
	p0 := float64(counts[0]) / n
	if math.Abs(p0-0.25) > 0.02 {
		t.Errorf("P(0) = %v, want ≈0.25", p0)
	}
}

func TestCategoricalDegenerateWeights(t *testing.T) {
	r := New(37)
	// A NaN-poisoned total falls back to a uniform draw over the positive
	// weights only: index 1 has weight zero and must never be drawn, even
	// though the total mass is degenerate.
	for i := 0; i < 100; i++ {
		k := r.Categorical([]float64{1, 0, math.NaN()})
		if k != 0 {
			t.Fatalf("degenerate fallback drew index %d, want 0 (the only positive weight)", k)
		}
	}
	// Same contract for the cumulative form: the degenerate total (NaN last
	// entry) restricts the draw to indices with a positive increment.
	for i := 0; i < 100; i++ {
		k := r.CategoricalCumulative([]float64{0, 2, math.NaN()})
		if k != 1 {
			t.Fatalf("cumulative degenerate fallback drew index %d, want 1", k)
		}
	}
}

func TestCategoricalNoPositiveMassPanics(t *testing.T) {
	for name, draw := range map[string]func(r *RNG){
		"categorical": func(r *RNG) { r.Categorical([]float64{0, 0, 0}) },
		"cumulative":  func(r *RNG) { r.CategoricalCumulative([]float64{0, 0, 0}) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("draw over weights with no positive mass must panic, not invent a category")
				}
			}()
			draw(New(37))
		})
	}
}

func TestCategoricalCumulativeAgreesWithLinear(t *testing.T) {
	weights := []float64{0.2, 0.5, 0.1, 1.2}
	cum := make([]float64, len(weights))
	run := 0.0
	for i, w := range weights {
		run += w
		cum[i] = run
	}
	// With identical uniform streams the two methods must agree exactly.
	a, b := New(99), New(99)
	for i := 0; i < 2000; i++ {
		if x, y := a.Categorical(weights), b.CategoricalCumulative(cum); x != y {
			t.Fatalf("draw %d: linear %d vs cumulative %d", i, x, y)
		}
	}
}

func TestMultinomialTotals(t *testing.T) {
	r := New(41)
	counts := r.Multinomial(1000, []float64{0.5, 0.5})
	if counts[0]+counts[1] != 1000 {
		t.Fatalf("counts sum %d, want 1000", counts[0]+counts[1])
	}
}

func TestZipfHeadHeavier(t *testing.T) {
	r := New(43)
	tab := NewZipfTable(100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 20000; i++ {
		counts[tab.Draw(r)]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("rank 0 (%d) should dominate rank 50 (%d)", counts[0], counts[50])
	}
	probs := tab.Probabilities()
	var s float64
	for i, p := range probs {
		if i > 0 && p > probs[i-1]+1e-12 {
			t.Fatalf("Zipf PMF must be non-increasing: p[%d]=%v > p[%d]=%v", i, p, i-1, probs[i-1])
		}
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("PMF sums to %v", s)
	}
}

func TestSampleWithoutReplacementProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := New(seed)
		out := r.SampleWithoutReplacement(20, 10)
		if len(out) != 10 {
			return false
		}
		seen := map[int]bool{}
		for _, x := range out {
			if x < 0 || x >= 20 || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedSampleWithoutReplacement(t *testing.T) {
	r := New(47)
	weights := []float64{0, 10, 0, 10, 0}
	out := r.WeightedSampleWithoutReplacement(weights, 2)
	seen := map[int]bool{}
	for _, x := range out {
		if seen[x] {
			t.Fatal("duplicate index")
		}
		seen[x] = true
	}
	if !seen[1] || !seen[3] {
		t.Fatalf("positive-weight indices not preferred: %v", out)
	}
	// Requesting all indices must work even with zero weights present.
	out = r.WeightedSampleWithoutReplacement(weights, 5)
	if len(out) != 5 {
		t.Fatalf("got %d indices, want 5", len(out))
	}
	seen = map[int]bool{}
	for _, x := range out {
		if seen[x] {
			t.Fatal("duplicate index in exhaustive draw")
		}
		seen[x] = true
	}
}

func TestBernoulliProbability(t *testing.T) {
	r := New(53)
	hits := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.02 {
		t.Fatalf("P = %v, want ≈0.3", p)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(59)
	p := r.Perm(10)
	seen := make([]bool, 10)
	for _, x := range p {
		if x < 0 || x >= 10 || seen[x] {
			t.Fatal("not a permutation")
		}
		seen[x] = true
	}
}

func TestTokenStream(t *testing.T) {
	// Pure function of content.
	if TokenStream([]int{1, 2, 3}) != TokenStream([]int{1, 2, 3}) {
		t.Fatal("TokenStream is not deterministic")
	}
	// Sensitive to content and order, and non-negative.
	ids := map[int64]bool{}
	for _, words := range [][]int{{1, 2, 3}, {3, 2, 1}, {1, 2}, {}, {0}, {0, 0}} {
		id := TokenStream(words)
		if id < 0 {
			t.Fatalf("negative stream id %d for %v", id, words)
		}
		if ids[id] {
			t.Fatalf("stream collision for %v", words)
		}
		ids[id] = true
	}
}

func TestNewStreamDeterministicAndDecorrelated(t *testing.T) {
	// Same (seed, stream) → identical sequence.
	a, b := NewStream(42, 3), NewStream(42, 3)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("stream is not a pure function of (seed, stream)")
		}
	}
	// Sibling streams, and stream 0 vs New(seed), must differ.
	pairs := [][2]*RNG{
		{NewStream(42, 0), NewStream(42, 1)},
		{NewStream(42, 0), New(42)},
		{NewStream(42, 1), NewStream(43, 1)},
	}
	for i, pr := range pairs {
		same := 0
		for j := 0; j < 64; j++ {
			if pr[0].Float64() == pr[1].Float64() {
				same++
			}
		}
		if same == 64 {
			t.Fatalf("pair %d: streams are identical", i)
		}
	}
}

// TestPosSkipResume is the checkpointing contract: a fresh generator
// fast-forwarded with Skip(Pos()) continues the exact sequence of the
// original, across every distribution sampler the Gibbs chain uses.
func TestPosSkipResume(t *testing.T) {
	for _, stream := range []int64{0, 1, 7} {
		a := NewStream(99, stream)
		// Consume a mixed workload so the position reflects samplers that
		// draw a variable number of source steps (Normal's ziggurat, Gamma's
		// rejection loop), not just one-step uniforms.
		for i := 0; i < 1000; i++ {
			a.Float64()
			a.Intn(17)
			a.Normal(0.5, 0.2)
			a.Gamma(0.7, 1.3)
			a.Categorical([]float64{1, 2, 3, 4})
		}
		pos := a.Pos()
		if pos == 0 {
			t.Fatal("Pos did not advance")
		}
		b := NewStream(99, stream)
		b.Skip(pos)
		if b.Pos() != pos {
			t.Fatalf("Skip(%d) left Pos at %d", pos, b.Pos())
		}
		for i := 0; i < 1000; i++ {
			if av, bv := a.Float64(), b.Float64(); av != bv {
				t.Fatalf("stream %d diverged at draw %d after skip: %v != %v", stream, i, av, bv)
			}
			if av, bv := a.Normal(0, 1), b.Normal(0, 1); av != bv {
				t.Fatalf("stream %d Normal diverged at draw %d: %v != %v", stream, i, av, bv)
			}
		}
		if a.Pos() != b.Pos() {
			t.Fatalf("positions diverged after identical draws: %d != %d", a.Pos(), b.Pos())
		}
	}
}
