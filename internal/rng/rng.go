// Package rng provides the deterministic random-number generation used by
// every sampler in the repository: Gamma and Dirichlet draws for topic-word
// distributions, Gaussian draws for the λ prior, Poisson draws for document
// lengths, Zipf draws for synthetic vocabularies, and categorical draws for
// Gibbs sampling. All generators are seeded explicitly so experiments are
// reproducible bit-for-bit.
//
// The determinism contract has three layers. NewStream(seed, i) derives
// decorrelated substreams that are pure functions of their inputs — shard i
// of a sharded training sweep always replays the same sequence regardless
// of worker count or scheduling. TokenStream keys a substream id off token
// content, making document inference a pure function of (model, seed,
// text). Pos and Skip expose a generator's position as a replayable step
// count, which is how training checkpoints capture and restore mid-run RNG
// state exactly (see internal/core's checkpoint subsystem).
package rng

import (
	"math"
	"math/rand"

	"sourcelda/internal/mathx"
)

// RNG wraps a seeded source with the distribution samplers the topic models
// need. It is not safe for concurrent use; create one per goroutine.
type RNG struct {
	src *rand.Rand
	cs  *countingSource
}

// countingSource wraps the underlying rand source and counts how many times
// its state has advanced. Every distribution sampler on RNG ultimately draws
// through Int63/Uint64 here, and each call advances the source state by
// exactly one step, so the counter is a complete description of the stream
// position: recreating the source from its seed and stepping it Pos() times
// reproduces the generator state bit for bit. This is what makes mid-run
// checkpointing of a Gibbs chain exact — see RNG.Pos and RNG.Skip.
type countingSource struct {
	src rand.Source64
	n   uint64
}

func (c *countingSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// New returns a generator seeded with seed.
func New(seed int64) *RNG {
	cs := &countingSource{src: rand.NewSource(seed).(rand.Source64)}
	return &RNG{src: rand.New(cs), cs: cs}
}

// Pos returns the number of source steps the generator has consumed since
// construction. Together with the (seed, stream) pair that created the
// generator, Pos fully determines its state: New/NewStream with the same
// inputs followed by Skip(Pos()) yields a generator that continues the
// exact same random sequence.
func (r *RNG) Pos() uint64 { return r.cs.n }

// Skip advances the generator by n source steps without producing values —
// the fast-forward half of the Pos/Skip checkpointing contract. Skipping
// steps the raw source directly (no distribution machinery), at roughly a
// nanosecond per step, so replaying even a long chain's position is cheap
// relative to the sweeps that produced it.
func (r *RNG) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		r.cs.src.Uint64()
	}
	r.cs.n += n
}

// NewStream returns the generator for substream `stream` of a root seed.
// The (seed, stream) pair is passed through a SplitMix64 finalizer so
// sibling streams are decorrelated from each other and from New(seed),
// while remaining a pure function of their inputs: a document shard keeps
// the same random sequence no matter how many worker threads execute it or
// in which order shards are scheduled.
func NewStream(seed, stream int64) *RNG {
	x := mix64(uint64(seed) + (uint64(stream)+1)*0x9E3779B97F4A7C15)
	// Keep the derived seed non-negative for rand.NewSource.
	return New(int64(x &^ (1 << 63)))
}

// TokenStream hashes a token-id sequence into a substream id for NewStream.
// Deriving a document's fold-in RNG stream from its content (rather than
// its position in a batch) makes inference a pure function of (seed,
// document): the same document produces bit-for-bit identical results
// whether it is scored alone, inside any batch, or coalesced with other
// callers' requests by a serving micro-batcher.
func TokenStream(words []int) int64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h = mix64(h ^ uint64(int64(w)))
	}
	// Non-negative so the id reads cleanly in logs; NewStream accepts any
	// int64 either way.
	return int64(h &^ (1 << 63))
}

// mix64 is the SplitMix64 output finalizer (Steele, Lea & Flood 2014).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Float64 returns a uniform draw in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// Intn returns a uniform draw in [0, n).
func (r *RNG) Intn(n int) int { return r.src.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (r *RNG) Int63() int64 { return r.src.Int63() }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) { r.src.Shuffle(n, swap) }

// Normal returns a draw from N(mu, sigma^2). Sigma must be non-negative; a
// zero sigma returns mu exactly.
func (r *RNG) Normal(mu, sigma float64) float64 {
	if sigma == 0 {
		return mu
	}
	return mu + sigma*r.src.NormFloat64()
}

// ClampedNormal draws from N(mu, sigma^2) and clamps the result to
// [lo, hi]. This is the paper's λ bounding in §IV-B ("we bound the value
// drawn to the interval [0, 1]"): out-of-range draws collapse onto the
// endpoints, so a wide prior puts point masses at exactly 0 and 1 —
// topics that ignore their source entirely, and topics that follow it
// exactly.
func (r *RNG) ClampedNormal(mu, sigma, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	return mathx.Clamp(r.Normal(mu, sigma), lo, hi)
}

// TruncatedNormal returns a draw from N(mu, sigma^2) conditioned on the
// closed interval [lo, hi], using rejection with a clamping fallback after
// maxTries attempts.
func (r *RNG) TruncatedNormal(mu, sigma, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	if sigma == 0 {
		return mathx.Clamp(mu, lo, hi)
	}
	const maxTries = 256
	for i := 0; i < maxTries; i++ {
		x := r.Normal(mu, sigma)
		if x >= lo && x <= hi {
			return x
		}
	}
	return mathx.Clamp(r.Normal(mu, sigma), lo, hi)
}

// Gamma returns a draw from the Gamma distribution with the given shape and
// scale parameters, using the Marsaglia–Tsang squeeze method, with the
// standard shape-boosting transform for shape < 1. Shape and scale must be
// positive.
func (r *RNG) Gamma(shape, scale float64) float64 {
	if shape <= 0 || scale <= 0 {
		panic("rng: Gamma requires positive shape and scale")
	}
	if shape < 1 {
		// Boost: if X ~ Gamma(shape+1) and U ~ U(0,1) then
		// X * U^(1/shape) ~ Gamma(shape).
		u := r.src.Float64()
		for u == 0 {
			u = r.src.Float64()
		}
		return r.Gamma(shape+1, scale) * math.Pow(u, 1/shape)
	}
	d := shape - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.src.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.src.Float64()
		x2 := x * x
		if u < 1-0.0331*x2*x2 {
			return d * v * scale
		}
		if u > 0 && math.Log(u) < 0.5*x2+d*(1-v+math.Log(v)) {
			return d * v * scale
		}
	}
}

// Dirichlet fills out with a draw from Dirichlet(alpha). The output slice
// must have the same length as alpha. Entries of alpha must be positive.
func (r *RNG) Dirichlet(alpha []float64, out []float64) {
	if len(alpha) != len(out) {
		panic("rng: Dirichlet output length mismatch")
	}
	var sum float64
	for i, a := range alpha {
		g := r.Gamma(a, 1)
		out[i] = g
		sum += g
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		// Degenerate draw (all-tiny alphas can underflow); fall back to a
		// uniform draw over a single random atom, the limiting behaviour of
		// a symmetric Dirichlet as alpha -> 0.
		for i := range out {
			out[i] = 0
		}
		out[r.Intn(len(out))] = 1
		return
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
}

// DirichletSymmetric fills out with a draw from a symmetric Dirichlet with
// concentration alpha over len(out) atoms.
func (r *RNG) DirichletSymmetric(alpha float64, out []float64) {
	var sum float64
	for i := range out {
		g := r.Gamma(alpha, 1)
		out[i] = g
		sum += g
	}
	if sum <= 0 || math.IsNaN(sum) || math.IsInf(sum, 0) {
		for i := range out {
			out[i] = 0
		}
		out[r.Intn(len(out))] = 1
		return
	}
	inv := 1 / sum
	for i := range out {
		out[i] *= inv
	}
}

// Poisson returns a draw from Poisson(lambda). For small lambda it uses
// Knuth's product method; for large lambda the PTRS-like normal
// approximation with rejection on the discretized tail is replaced by the
// simpler decomposition Poisson(λ) = Poisson(λ-chunk) + Poisson(chunk),
// which keeps the draw exact while avoiding underflow of exp(-λ).
func (r *RNG) Poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	const chunk = 500.0
	var total int
	for lambda > chunk {
		total += r.poissonKnuth(chunk)
		lambda -= chunk
	}
	return total + r.poissonKnuth(lambda)
}

func (r *RNG) poissonKnuth(lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= r.src.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Categorical returns an index drawn proportionally to the non-negative
// weights. The weights need not be normalized. A degenerate (zero or
// non-finite) total falls back to a uniform draw restricted to the
// positive-weight support — never the whole index range, which could select
// a category whose weight is exactly zero (e.g. a pruned topic). It panics
// when no weight is positive: that is not a samplable distribution.
func (r *RNG) Categorical(weights []float64) int {
	var total float64
	for _, w := range weights {
		total += w
	}
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return r.uniformOverSupport(len(weights), func(i int) float64 { return weights[i] })
	}
	target := r.src.Float64() * total
	var run float64
	for i, w := range weights {
		run += w
		if target < run {
			return i
		}
	}
	return len(weights) - 1
}

// CategoricalCumulative draws an index given inclusive prefix sums cum, whose
// last entry is the total mass. It uses binary search, matching the parallel
// samplers in the paper (Algorithms 2 and 3). Degenerate totals fall back to
// a uniform draw over the indices with a positive increment, exactly as
// Categorical does over positive weights; it panics when there are none.
func (r *RNG) CategoricalCumulative(cum []float64) int {
	total := cum[len(cum)-1]
	if total <= 0 || math.IsNaN(total) || math.IsInf(total, 0) {
		return r.uniformOverSupport(len(cum), func(i int) float64 {
			if i == 0 {
				return cum[0]
			}
			return cum[i] - cum[i-1]
		})
	}
	target := r.src.Float64() * total
	return mathx.SearchCumulative(cum, target)
}

// uniformOverSupport draws uniformly among the indices in [0, n) whose
// weight (as reported by weight) is strictly positive — the degenerate-mass
// fallback of Categorical and CategoricalCumulative, sharing
// mathx.SelectPositiveSupport with the parallel sampling kernels so every
// sampler degrades identically. It consumes exactly one source step (like
// the normal path) and panics when the support is empty.
func (r *RNG) uniformOverSupport(n int, weight func(i int) float64) int {
	idx, ok := mathx.SelectPositiveSupport(n, r.src.Float64(), weight)
	if !ok {
		panic("rng: categorical draw over weights with no positive mass")
	}
	return idx
}

// Multinomial distributes n trials over the categories of probs (which must
// be non-negative with at least one positive entry — see Categorical) and
// returns the per-category counts.
func (r *RNG) Multinomial(n int, probs []float64) []int {
	counts := make([]int, len(probs))
	for i := 0; i < n; i++ {
		counts[r.Categorical(probs)]++
	}
	return counts
}

// Zipf returns a draw in [0, n) with P(k) proportional to 1/(k+1)^s. It uses
// inversion over the precomputed harmonic table held by ZipfTable for
// efficiency; this convenience method rebuilds the table each call and is
// intended for one-off draws.
func (r *RNG) Zipf(n int, s float64) int {
	t := NewZipfTable(n, s)
	return t.Draw(r)
}

// ZipfTable caches the cumulative mass function of a Zipf distribution over
// [0, n) with exponent s, for repeated sampling.
type ZipfTable struct {
	cum []float64
}

// NewZipfTable builds the cumulative table for ranks [0, n).
func NewZipfTable(n int, s float64) *ZipfTable {
	cum := make([]float64, n)
	var run float64
	for k := 0; k < n; k++ {
		run += 1 / math.Pow(float64(k+1), s)
		cum[k] = run
	}
	return &ZipfTable{cum: cum}
}

// Draw samples a rank from the table.
func (t *ZipfTable) Draw(r *RNG) int {
	return r.CategoricalCumulative(t.cum)
}

// Probabilities returns the normalized Zipf PMF represented by the table.
func (t *ZipfTable) Probabilities() []float64 {
	out := make([]float64, len(t.cum))
	prev := 0.0
	total := t.cum[len(t.cum)-1]
	for i, c := range t.cum {
		out[i] = (c - prev) / total
		prev = c
	}
	return out
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n) in random order. It panics if k > n.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("rng: SampleWithoutReplacement k > n")
	}
	perm := r.src.Perm(n)
	out := make([]int, k)
	copy(out, perm[:k])
	return out
}

// WeightedSampleWithoutReplacement returns k distinct indices drawn without
// replacement with probability proportional to weights. Indices whose weight
// is exhausted are chosen uniformly once all remaining mass is zero. It
// panics if k > len(weights).
func (r *RNG) WeightedSampleWithoutReplacement(weights []float64, k int) []int {
	n := len(weights)
	if k > n {
		panic("rng: WeightedSampleWithoutReplacement k > n")
	}
	w := make([]float64, n)
	copy(w, weights)
	taken := make([]bool, n)
	out := make([]int, 0, k)
	for len(out) < k {
		var total float64
		for i, wi := range w {
			if !taken[i] {
				total += wi
			}
		}
		var idx int
		if total > 0 {
			target := r.src.Float64() * total
			var run float64
			idx = -1
			for i, wi := range w {
				if taken[i] {
					continue
				}
				run += wi
				if target < run {
					idx = i
					break
				}
			}
			if idx < 0 { // numeric edge: fall through to last untaken
				for i := n - 1; i >= 0; i-- {
					if !taken[i] {
						idx = i
						break
					}
				}
			}
		} else {
			// All remaining mass zero: uniform over the untaken indices.
			remaining := make([]int, 0, n-len(out))
			for i := range w {
				if !taken[i] {
					remaining = append(remaining, i)
				}
			}
			idx = remaining[r.Intn(len(remaining))]
		}
		taken[idx] = true
		out = append(out, idx)
	}
	return out
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool { return r.src.Float64() < p }
