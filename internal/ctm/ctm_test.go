package ctm

import (
	"math"
	"strings"
	"testing"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
)

func fixture(t *testing.T) (*corpus.Corpus, *knowledge.Source) {
	t.Helper()
	c := corpus.New()
	for i := 0; i < 15; i++ {
		c.AddText("s", "pencil ruler eraser pencil ruler pencil", nil)
		c.AddText("b", "baseball umpire pitcher baseball umpire baseball", nil)
	}
	school := knowledge.NewArticleFromText("School Supplies",
		strings.Repeat("pencil pencil pencil ruler ruler eraser ", 20), c.Vocab, nil, true)
	ball := knowledge.NewArticleFromText("Baseball",
		strings.Repeat("baseball baseball baseball umpire umpire pitcher ", 20), c.Vocab, nil, true)
	return c, knowledge.MustNewSource([]*knowledge.Article{school, ball})
}

func TestValidation(t *testing.T) {
	c, src := fixture(t)
	if _, err := Fit(nil, src, Options{Alpha: 1, Beta: 0.1, Iterations: 1}); err == nil {
		t.Error("nil corpus accepted")
	}
	if _, err := Fit(c, nil, Options{Alpha: 1, Beta: 0.1, Iterations: 1}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := Fit(c, src, Options{Alpha: 0, Beta: 0.1, Iterations: 1}); err == nil {
		t.Error("zero alpha accepted")
	}
	if _, err := Fit(c, src, Options{Alpha: 1, Beta: 0.1, NumFreeTopics: -1, Iterations: 1}); err == nil {
		t.Error("negative free topics accepted")
	}
}

func TestConceptsConstrainedToWordSets(t *testing.T) {
	// CTM's defining property: a concept never emits a word outside its
	// word set.
	c, src := fixture(t)
	m, err := Fit(c, src, Options{Alpha: 0.5, Beta: 0.1, Iterations: 30, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	phi := m.Phi()
	baseballID, _ := c.Vocab.ID("baseball")
	pencilID, _ := c.Vocab.ID("pencil")
	// School Supplies (concept 0) has no "baseball" in its article.
	if phi[0][baseballID] != 0 {
		t.Fatalf("School concept gives baseball probability %v, want exactly 0", phi[0][baseballID])
	}
	if phi[1][pencilID] != 0 {
		t.Fatalf("Baseball concept gives pencil probability %v, want exactly 0", phi[1][pencilID])
	}
}

func TestAssignmentsRespectAdmissibility(t *testing.T) {
	c, src := fixture(t)
	m, err := Fit(c, src, Options{NumFreeTopics: 1, Alpha: 0.5, Beta: 0.1, Iterations: 20, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	sets := src.WordSets(c.VocabSize(), 0)
	inSet := make([]map[int]bool, len(sets))
	for i, s := range sets {
		inSet[i] = map[int]bool{}
		for _, w := range s {
			inSet[i][w] = true
		}
	}
	for d, doc := range c.Docs {
		for i, w := range doc.Words {
			k := m.Assignments()[d][i]
			if ci := m.ConceptIndex(k); ci >= 0 && !inSet[ci][w] {
				t.Fatalf("token %q assigned to concept %d whose set lacks it", c.Vocab.Word(w), ci)
			}
		}
	}
}

func TestUnknownWordsGoToFreeTopics(t *testing.T) {
	c, src := fixture(t)
	extra := corpus.NewWithVocab(c.Vocab)
	for i := 0; i < 10; i++ {
		extra.AddText("x", "quasar nebula quasar nebula quasar", nil)
	}
	for _, d := range extra.Docs {
		c.AddDocument(d)
	}
	m, err := Fit(c, src, Options{NumFreeTopics: 1, Alpha: 0.5, Beta: 0.1, Iterations: 30, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	quasar, _ := c.Vocab.ID("quasar")
	for d, doc := range c.Docs {
		for i, w := range doc.Words {
			if w == quasar {
				if k := m.Assignments()[d][i]; m.ConceptIndex(k) >= 0 {
					t.Fatal("word outside every concept set assigned to a concept")
				}
			}
		}
	}
	// The free topic should therefore carry quasar strongly.
	if m.Phi()[0][quasar] < 0.1 {
		t.Fatalf("free topic quasar mass %v", m.Phi()[0][quasar])
	}
}

func TestTopWordsRestriction(t *testing.T) {
	c, src := fixture(t)
	// Restrict concept word sets to top-1 word: School keeps only pencil.
	m, err := Fit(c, src, Options{NumFreeTopics: 1, Alpha: 0.5, Beta: 0.1, TopWords: 1, Iterations: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	ruler, _ := c.Vocab.ID("ruler")
	if m.Phi()[m.NumFreeTopics()+0][ruler] != 0 {
		t.Fatal("top-1 restriction leaked ruler into the School concept")
	}
}

func TestSeparatesTopicsOnSeparableData(t *testing.T) {
	c, src := fixture(t)
	m, err := Fit(c, src, Options{Alpha: 0.5, Beta: 0.1, Iterations: 60, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var correct, total int
	for d, doc := range c.Docs {
		want := 0
		if doc.Name == "b" {
			want = 1
		}
		for _, k := range m.Assignments()[d] {
			total++
			if m.ConceptIndex(k) == want {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Fatalf("accuracy %v, want ≥ 0.9", acc)
	}
}

func TestThetaNormalizedAndLabels(t *testing.T) {
	c, src := fixture(t)
	m, err := Fit(c, src, Options{NumFreeTopics: 2, Alpha: 0.5, Beta: 0.1, Iterations: 10, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for d, row := range m.Theta() {
		var s float64
		for _, p := range row {
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Fatalf("θ[%d] sums to %v", d, s)
		}
	}
	labels := m.Labels()
	if labels[0] != "topic-0" || labels[2] != "School Supplies" {
		t.Fatalf("labels = %v", labels)
	}
}

func TestDiscoveredConcepts(t *testing.T) {
	c, src := fixture(t)
	m, err := Fit(c, src, Options{Alpha: 0.5, Beta: 0.1, Iterations: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	disc := m.DiscoveredConcepts(5, 2)
	if len(disc) != 2 {
		t.Fatalf("discovered %v, want both concepts on this corpus", disc)
	}
	none := m.DiscoveredConcepts(10_000, 1)
	if len(none) != 0 {
		t.Fatalf("impossible threshold still discovered %v", none)
	}
}
