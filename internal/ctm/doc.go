// Package ctm implements the Concept-Topic Model (Chemudugunta et al.,
// "Text modeling using unsupervised topic models and concept hierarchies"),
// the paper's "too lenient" comparison baseline (PAPER.md §I, §IV, Table 1).
//
// CTM mixes known concepts with ordinary learned topics, but a concept
// contributes only a word *set* — a bag of words without frequencies. A
// token can be assigned to a concept only when its word belongs to the
// concept's set; within the set the distribution is learned from scratch
// under a symmetric prior. Unlike Source-LDA's δ priors (Definition 3),
// the model therefore ignores the knowledge source's word frequencies —
// the limitation the paper's §I case study illustrates ("it is much more
// probable to see the word 'pencil' than the word 'compass'") and that
// Table 1 quantifies (CTM discovers 6 labeled topics to Source-LDA's 15
// on the paper's corpus).
//
// The experiment harness (internal/experiments) fits this model wherever
// the paper reports a CTM column; sourcelda exposes it through the srclda
// CLI's -model ctm.
package ctm
