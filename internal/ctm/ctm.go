package ctm

import (
	"errors"
	"strconv"
	"time"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/rng"
)

// Options configures a CTM fit.
type Options struct {
	// NumFreeTopics is the number of unconstrained learned topics mixed in.
	NumFreeTopics int
	// Alpha is the symmetric document prior over topics and concepts.
	Alpha float64
	// Beta is the symmetric word prior (for free topics over V, for
	// concepts over their word set).
	Beta float64
	// TopWords restricts each concept's word set to the topN most frequent
	// article words; 0 keeps all (the paper uses the top 10,000 by
	// frequency).
	TopWords int
	// Iterations is the number of Gibbs sweeps. Default 1000.
	Iterations int
	// Seed seeds the chain.
	Seed int64
	// OnIteration, when non-nil, runs after each sweep.
	OnIteration func(iter int, m *Model)
}

// Model is a fitted CTM chain. Topic indexing: free topics occupy [0, K),
// concepts occupy [K, K+C).
type Model struct {
	opts Options
	c    *corpus.Corpus
	src  *knowledge.Source

	K, C, T, V, D int

	// wordSets[c] is concept c's sorted word set; setSize[c] its size.
	wordSets [][]int
	inSet    []map[int]bool
	// conceptsOf[w] lists concepts whose set contains w.
	conceptsOf [][]int

	nw    [][]int // [V][T]
	nd    [][]int
	nwsum []int
	ndsum []int
	z     [][]int

	// IterationTimes holds per-sweep wall-clock durations.
	IterationTimes []time.Duration
}

// Fit runs collapsed Gibbs sampling for the concept-topic model.
func Fit(c *corpus.Corpus, src *knowledge.Source, opts Options) (*Model, error) {
	if c == nil || c.NumDocs() == 0 {
		return nil, errors.New("ctm: empty corpus")
	}
	if src == nil || src.Len() == 0 {
		return nil, errors.New("ctm: empty knowledge source")
	}
	if opts.Alpha <= 0 || opts.Beta <= 0 {
		return nil, errors.New("ctm: Alpha and Beta must be positive")
	}
	if opts.NumFreeTopics < 0 {
		return nil, errors.New("ctm: NumFreeTopics must be non-negative")
	}
	if opts.Iterations <= 0 {
		opts.Iterations = 1000
	}
	m := &Model{
		opts: opts,
		c:    c,
		src:  src,
		K:    opts.NumFreeTopics,
		C:    src.Len(),
		V:    c.VocabSize(),
		D:    c.NumDocs(),
	}
	m.T = m.K + m.C
	m.wordSets = src.WordSets(m.V, opts.TopWords)
	m.inSet = make([]map[int]bool, m.C)
	m.conceptsOf = make([][]int, m.V)
	for ci, set := range m.wordSets {
		m.inSet[ci] = make(map[int]bool, len(set))
		for _, w := range set {
			m.inSet[ci][w] = true
			m.conceptsOf[w] = append(m.conceptsOf[w], ci)
		}
	}

	m.nw = make([][]int, m.V)
	for w := range m.nw {
		m.nw[w] = make([]int, m.T)
	}
	m.nd = make([][]int, m.D)
	m.z = make([][]int, m.D)
	for d := range m.nd {
		m.nd[d] = make([]int, m.T)
		m.z[d] = make([]int, len(c.Docs[d].Words))
	}
	m.nwsum = make([]int, m.T)
	m.ndsum = make([]int, m.D)

	r := rng.New(opts.Seed)
	// Random init over admissible topics only.
	for d, doc := range c.Docs {
		for i, w := range doc.Words {
			k := m.randomAdmissible(r, w)
			m.z[d][i] = k
			m.nw[w][k]++
			m.nd[d][k]++
			m.nwsum[k]++
			m.ndsum[d]++
		}
	}

	probs := make([]float64, m.T)
	cands := make([]int, 0, m.T)
	for iter := 0; iter < opts.Iterations; iter++ {
		start := time.Now()
		m.sweep(r, probs, &cands)
		m.IterationTimes = append(m.IterationTimes, time.Since(start))
		if opts.OnIteration != nil {
			opts.OnIteration(iter, m)
		}
	}
	return m, nil
}

// randomAdmissible picks uniformly among free topics plus concepts whose set
// contains w. With zero free topics and no containing concept, it falls
// back to a uniform concept (the token is effectively background noise).
func (m *Model) randomAdmissible(r *rng.RNG, w int) int {
	n := m.K + len(m.conceptsOf[w])
	if n == 0 {
		return m.K + r.Intn(m.C)
	}
	pick := r.Intn(n)
	if pick < m.K {
		return pick
	}
	return m.K + m.conceptsOf[w][pick-m.K]
}

func (m *Model) sweep(r *rng.RNG, probs []float64, cands *[]int) {
	alpha, beta := m.opts.Alpha, m.opts.Beta
	vBeta := float64(m.V) * beta
	for d, doc := range m.c.Docs {
		nd := m.nd[d]
		for i, w := range doc.Words {
			old := m.z[d][i]
			m.nw[w][old]--
			nd[old]--
			m.nwsum[old]--

			// Candidate topics: all free topics + concepts containing w.
			cs := (*cands)[:0]
			nww := m.nw[w]
			for t := 0; t < m.K; t++ {
				cs = append(cs, t)
				probs[len(cs)-1] = (float64(nww[t]) + beta) / (float64(m.nwsum[t]) + vBeta) *
					(float64(nd[t]) + alpha)
			}
			for _, ci := range m.conceptsOf[w] {
				t := m.K + ci
				setBeta := float64(len(m.wordSets[ci])) * beta
				cs = append(cs, t)
				probs[len(cs)-1] = (float64(nww[t]) + beta) / (float64(m.nwsum[t]) + setBeta) *
					(float64(nd[t]) + alpha)
			}
			var k int
			if len(cs) == 0 {
				k = old // nothing admissible; keep the initialization fallback
			} else {
				k = cs[r.Categorical(probs[:len(cs)])]
			}
			*cands = cs

			m.z[d][i] = k
			m.nw[w][k]++
			nd[k]++
			m.nwsum[k]++
		}
	}
}

// Phi returns topic-word distributions: free topics over the whole
// vocabulary, concepts restricted to (and normalized over) their word sets.
func (m *Model) Phi() [][]float64 {
	beta := m.opts.Beta
	vBeta := float64(m.V) * beta
	phi := make([][]float64, m.T)
	for t := 0; t < m.K; t++ {
		row := make([]float64, m.V)
		den := float64(m.nwsum[t]) + vBeta
		for w := 0; w < m.V; w++ {
			row[w] = (float64(m.nw[w][t]) + beta) / den
		}
		phi[t] = row
	}
	for ci := 0; ci < m.C; ci++ {
		t := m.K + ci
		row := make([]float64, m.V)
		set := m.wordSets[ci]
		den := float64(m.nwsum[t]) + float64(len(set))*beta
		if den > 0 {
			for _, w := range set {
				row[w] = (float64(m.nw[w][t]) + beta) / den
			}
		}
		phi[t] = row
	}
	return phi
}

// Theta returns document-topic distributions over all T topics/concepts.
func (m *Model) Theta() [][]float64 {
	alpha := m.opts.Alpha
	tAlpha := float64(m.T) * alpha
	theta := make([][]float64, m.D)
	for d := range theta {
		row := make([]float64, m.T)
		den := float64(m.ndsum[d]) + tAlpha
		for t := 0; t < m.T; t++ {
			row[t] = (float64(m.nd[d][t]) + alpha) / den
		}
		theta[d] = row
	}
	return theta
}

// Assignments returns live per-token assignments; do not mutate.
func (m *Model) Assignments() [][]int { return m.z }

// Labels returns topic labels: "topic-<i>" for free topics, the concept's
// article label otherwise.
func (m *Model) Labels() []string {
	labels := make([]string, m.T)
	for t := 0; t < m.K; t++ {
		labels[t] = "topic-" + strconv.Itoa(t)
	}
	for ci := 0; ci < m.C; ci++ {
		labels[m.K+ci] = m.src.Label(ci)
	}
	return labels
}

// ConceptIndex maps topic index t to its concept (article) index, or -1 for
// free topics.
func (m *Model) ConceptIndex(t int) int {
	if t < m.K {
		return -1
	}
	return t - m.K
}

// NumTopics returns T.
func (m *Model) NumTopics() int { return m.T }

// NumFreeTopics returns K.
func (m *Model) NumFreeTopics() int { return m.K }

// DiscoveredConcepts returns labels of concepts with at least minDocs
// documents containing minTokens+ assigned tokens — the Table I "labeled
// topics passed through" statistic.
func (m *Model) DiscoveredConcepts(minDocs, minTokens int) []string {
	if minDocs < 1 {
		minDocs = 1
	}
	if minTokens < 1 {
		minTokens = 1
	}
	df := make([]int, m.T)
	for d := 0; d < m.D; d++ {
		for t, n := range m.nd[d] {
			if n >= minTokens {
				df[t]++
			}
		}
	}
	var out []string
	for ci := 0; ci < m.C; ci++ {
		if df[m.K+ci] >= minDocs {
			out = append(out, m.src.Label(ci))
		}
	}
	return out
}
