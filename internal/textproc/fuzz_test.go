package textproc

import (
	"testing"
	"unicode"
)

// FuzzTokenize asserts the tokenizer's invariants on arbitrary input: no
// empty tokens, only lower-case letters and digits, and idempotence
// (tokenizing the joined tokens yields the same tokens).
func FuzzTokenize(f *testing.F) {
	f.Add("Hello, World!")
	f.Add("don't stop")
	f.Add("Zürich café 42")
	f.Add("")
	f.Add("  \t\n ... ")
	f.Add("a'b''c")
	f.Fuzz(func(t *testing.T, input string) {
		tokens := Tokenize(input)
		for _, tok := range tokens {
			if tok == "" {
				t.Fatal("empty token")
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
					t.Fatalf("token %q contains separator rune %q", tok, r)
				}
				if unicode.IsUpper(r) {
					t.Fatalf("token %q not lower-cased", tok)
				}
			}
		}
		// Idempotence: re-tokenizing the space-joined tokens is stable.
		var joined string
		for i, tok := range tokens {
			if i > 0 {
				joined += " "
			}
			joined += tok
		}
		again := Tokenize(joined)
		if len(again) != len(tokens) {
			t.Fatalf("re-tokenizing %d tokens yielded %d", len(tokens), len(again))
		}
		for i := range tokens {
			if again[i] != tokens[i] {
				t.Fatalf("token %d changed: %q → %q", i, tokens[i], again[i])
			}
		}
	})
}

// FuzzVocabulary asserts interning invariants under arbitrary word
// sequences.
func FuzzVocabulary(f *testing.F) {
	f.Add("a b a c")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		v := NewVocabulary()
		words := Tokenize(input)
		ids := v.EncodeTokens(words, true)
		if len(ids) != len(words) {
			t.Fatal("growing encode dropped tokens")
		}
		for i, w := range words {
			id, ok := v.ID(w)
			if !ok || id != ids[i] {
				t.Fatalf("ID(%q) = %d,%v; encoded %d", w, id, ok, ids[i])
			}
			if v.Word(id) != w {
				t.Fatal("Word/ID round trip failed")
			}
		}
	})
}
