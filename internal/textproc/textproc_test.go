package textproc

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Hello, World! 42 times")
	want := []string{"hello", "world", "42", "times"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeApostrophes(t *testing.T) {
	got := Tokenize("don't can't o'clock")
	want := []string{"dont", "cant", "oclock"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	got := Tokenize("Zürich café")
	want := []string{"zürich", "café"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize("  ... !!! "); len(got) != 0 {
		t.Fatalf("got %v, want empty", got)
	}
}

func TestStopwords(t *testing.T) {
	s := DefaultStopwords()
	if !s.Contains("the") || !s.Contains("THE") {
		t.Fatal("'the' should be a stop word (case-insensitive)")
	}
	if s.Contains("pencil") {
		t.Fatal("'pencil' should not be a stop word")
	}
	got := s.Filter([]string{"the", "pencil", "and", "ruler"})
	want := []string{"pencil", "ruler"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Filter = %v, want %v", got, want)
	}
}

func TestVocabularyInterning(t *testing.T) {
	v := NewVocabulary()
	a := v.Add("pencil")
	b := v.Add("ruler")
	if a == b {
		t.Fatal("distinct words share an id")
	}
	if again := v.Add("pencil"); again != a {
		t.Fatalf("re-adding returned %d, want %d", again, a)
	}
	if v.Size() != 2 {
		t.Fatalf("size %d, want 2", v.Size())
	}
	if v.Word(a) != "pencil" {
		t.Fatalf("Word(%d) = %q", a, v.Word(a))
	}
	if id, ok := v.ID("ruler"); !ok || id != b {
		t.Fatalf("ID(ruler) = %d, %v", id, ok)
	}
	if _, ok := v.ID("missing"); ok {
		t.Fatal("missing word reported present")
	}
}

func TestVocabularyIDsAreDense(t *testing.T) {
	f := func(words []string) bool {
		v := NewVocabulary()
		for _, w := range words {
			v.Add(w)
		}
		// Ids must be exactly 0..Size-1 and Word must round-trip.
		for i := 0; i < v.Size(); i++ {
			id, ok := v.ID(v.Word(i))
			if !ok || id != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeTokens(t *testing.T) {
	v := NewVocabulary()
	ids := v.EncodeTokens([]string{"a", "b", "a"}, true)
	if len(ids) != 3 || ids[0] != ids[2] || ids[0] == ids[1] {
		t.Fatalf("ids = %v", ids)
	}
	// Non-growing: unseen dropped.
	ids2 := v.EncodeTokens([]string{"a", "zz", "b"}, false)
	if len(ids2) != 2 {
		t.Fatalf("non-growing encode = %v, want 2 ids", ids2)
	}
	if v.Size() != 2 {
		t.Fatalf("vocabulary grew to %d", v.Size())
	}
}

func TestTFIDFVectorNormalized(t *testing.T) {
	docs := [][]int{{0, 0, 1}, {1, 2}, {2, 2, 2}}
	tf := NewTFIDF(docs, 3)
	vec := tf.Vector(docs[0])
	var norm float64
	for _, x := range vec {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("L2 norm² = %v, want 1", norm)
	}
}

func TestTFIDFRareWordWeighsMore(t *testing.T) {
	// Word 0 appears in all docs, word 2 in one: idf(2) > idf(0).
	docs := [][]int{{0, 1}, {0, 1}, {0, 2}}
	tf := NewTFIDF(docs, 3)
	if tf.IDF(2) <= tf.IDF(0) {
		t.Fatalf("idf(rare)=%v should exceed idf(common)=%v", tf.IDF(2), tf.IDF(0))
	}
}

func TestTFIDFEmptyDoc(t *testing.T) {
	tf := NewTFIDF([][]int{{0}}, 2)
	vec := tf.Vector(nil)
	for _, x := range vec {
		if x != 0 {
			t.Fatal("empty doc should vectorize to zero")
		}
	}
}

func TestWeightedQueryVector(t *testing.T) {
	tf := NewTFIDF([][]int{{0, 1}, {1}}, 3)
	q := tf.WeightedQueryVector([]int{0, 1}, []float64{0.9, 0.1})
	var norm float64
	for _, x := range q {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("query norm² = %v", norm)
	}
	if q[0] <= q[1] {
		t.Fatalf("heavier+rarer word should dominate: %v", q)
	}
	// Out-of-range ids must be ignored, not panic.
	_ = tf.WeightedQueryVector([]int{-1, 99}, []float64{1, 1})
}

func TestWeightedQueryVectorLengthMismatchPanics(t *testing.T) {
	tf := NewTFIDF([][]int{{0}}, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tf.WeightedQueryVector([]int{0}, []float64{1, 2})
}

func TestTopWords(t *testing.T) {
	probs := []float64{0.1, 0.5, 0.2, 0.2}
	got := TopWords(probs, 3)
	if got[0] != 1 {
		t.Fatalf("top word %d, want 1", got[0])
	}
	// Ties (ids 2 and 3) break toward the lower id.
	if got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v, want tie order [_, 2, 3]", got)
	}
	if n := len(TopWords(probs, 10)); n != 4 {
		t.Fatalf("over-length request returned %d", n)
	}
}
