// Package textproc implements the text-processing substrate: tokenization,
// stop-word filtering, vocabulary interning, and TF-IDF vectorization. The
// paper's IR-LDA labeling baseline ("cosine similarity of documents mapped to
// TF-IDF vectors with TF-IDF weighted query vectors formed from the top 10
// words per topic", §IV-C) is built on these pieces.
package textproc

import (
	"math"
	"sort"
	"strings"
	"unicode"
)

// Tokenize lower-cases the input and splits it into alphanumeric word
// tokens. Apostrophes inside words are dropped ("don't" → "dont"), every
// other non-alphanumeric rune is a separator.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'':
			// drop
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// defaultStopwords is a compact English stop list adequate for the synthetic
// corpora used here; real deployments can supply their own via NewStopwords.
var defaultStopwords = []string{
	"a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "from",
	"had", "has", "have", "he", "her", "his", "i", "in", "is", "it", "its",
	"nor", "not", "of", "on", "or", "she", "so", "that", "the", "their",
	"them", "then", "there", "these", "they", "this", "to", "was", "we",
	"were", "what", "when", "which", "who", "will", "with", "you", "your",
	"been", "being", "do", "does", "did", "if", "into", "no", "such", "than",
	"too", "very", "can", "could", "may", "might", "must", "shall", "should",
	"would", "about", "after", "all", "also", "am", "any", "because", "before",
	"between", "both", "each", "few", "more", "most", "other", "our", "out",
	"over", "own", "same", "some", "through", "under", "until", "up", "while",
}

// Stopwords is a set of words to exclude from modeling.
type Stopwords struct {
	set map[string]bool
}

// NewStopwords builds a stop list from the given words (lower-cased).
func NewStopwords(words []string) *Stopwords {
	s := &Stopwords{set: make(map[string]bool, len(words))}
	for _, w := range words {
		s.set[strings.ToLower(w)] = true
	}
	return s
}

// DefaultStopwords returns the built-in English stop list.
func DefaultStopwords() *Stopwords { return NewStopwords(defaultStopwords) }

// Contains reports whether w is a stop word.
func (s *Stopwords) Contains(w string) bool { return s.set[strings.ToLower(w)] }

// Filter returns tokens with stop words removed.
func (s *Stopwords) Filter(tokens []string) []string {
	out := tokens[:0:0]
	for _, t := range tokens {
		if !s.set[t] {
			out = append(out, t)
		}
	}
	return out
}

// Vocabulary interns word strings to dense integer ids. The zero value is
// not usable; construct with NewVocabulary.
type Vocabulary struct {
	ids   map[string]int
	words []string
}

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary {
	return &Vocabulary{ids: make(map[string]int)}
}

// Add interns w and returns its id, creating a new id on first sight.
func (v *Vocabulary) Add(w string) int {
	if id, ok := v.ids[w]; ok {
		return id
	}
	id := len(v.words)
	v.ids[w] = id
	v.words = append(v.words, w)
	return id
}

// ID returns the id of w and whether it is present.
func (v *Vocabulary) ID(w string) (int, bool) {
	id, ok := v.ids[w]
	return id, ok
}

// Word returns the string for id; it panics on out-of-range ids.
func (v *Vocabulary) Word(id int) string { return v.words[id] }

// Size returns the number of distinct interned words (the paper's V).
func (v *Vocabulary) Size() int { return len(v.words) }

// Words returns the interned words in id order. The returned slice is shared;
// do not modify it.
func (v *Vocabulary) Words() []string { return v.words }

// EncodeTokens converts tokens to ids, interning unseen words when grow is
// true and dropping them otherwise.
func (v *Vocabulary) EncodeTokens(tokens []string, grow bool) []int {
	out := make([]int, 0, len(tokens))
	for _, t := range tokens {
		if grow {
			out = append(out, v.Add(t))
			continue
		}
		if id, ok := v.ids[t]; ok {
			out = append(out, id)
		}
	}
	return out
}

// TFIDF builds term-frequency / inverse-document-frequency vectors over a
// fixed vocabulary, the representation behind the IR labeling baseline.
type TFIDF struct {
	idf  []float64
	vlen int
}

// NewTFIDF computes smoothed IDF weights, idf(w) = ln((1+N)/(1+df(w))) + 1,
// from the document collection docs given as bags of word ids.
func NewTFIDF(docs [][]int, vocabSize int) *TFIDF {
	df := make([]int, vocabSize)
	for _, doc := range docs {
		seen := make(map[int]bool, len(doc))
		for _, w := range doc {
			if w >= 0 && w < vocabSize && !seen[w] {
				seen[w] = true
				df[w]++
			}
		}
	}
	n := float64(len(docs))
	idf := make([]float64, vocabSize)
	for w := range idf {
		idf[w] = math.Log((1+n)/(1+float64(df[w]))) + 1
	}
	return &TFIDF{idf: idf, vlen: vocabSize}
}

// VocabSize returns the vocabulary size the transformer was built over.
func (t *TFIDF) VocabSize() int { return t.vlen }

// IDF returns the IDF weight for word id w.
func (t *TFIDF) IDF(w int) float64 { return t.idf[w] }

// Vector returns the L2-normalized TF-IDF vector of a document given as word
// ids. Out-of-range ids are ignored.
func (t *TFIDF) Vector(doc []int) []float64 {
	vec := make([]float64, t.vlen)
	for _, w := range doc {
		if w >= 0 && w < t.vlen {
			vec[w]++
		}
	}
	var norm float64
	for w := range vec {
		if vec[w] > 0 {
			vec[w] *= t.idf[w]
			norm += vec[w] * vec[w]
		}
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for w := range vec {
			vec[w] *= inv
		}
	}
	return vec
}

// WeightedQueryVector builds the TF-IDF-weighted query vector the IR labeler
// uses: each (word, weight) pair contributes weight × idf(word), then the
// vector is L2-normalized.
func (t *TFIDF) WeightedQueryVector(words []int, weights []float64) []float64 {
	if len(words) != len(weights) {
		panic("textproc: WeightedQueryVector length mismatch")
	}
	vec := make([]float64, t.vlen)
	for i, w := range words {
		if w >= 0 && w < t.vlen {
			vec[w] += weights[i] * t.idf[w]
		}
	}
	var norm float64
	for _, x := range vec {
		norm += x * x
	}
	if norm > 0 {
		inv := 1 / math.Sqrt(norm)
		for w := range vec {
			vec[w] *= inv
		}
	}
	return vec
}

// TopWords returns the n highest-probability word ids of the distribution
// probs, in descending probability order with ties broken by lower id.
func TopWords(probs []float64, n int) []int {
	type wp struct {
		w int
		p float64
	}
	all := make([]wp, len(probs))
	for w, p := range probs {
		all[w] = wp{w, p}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].p != all[j].p {
			return all[i].p > all[j].p
		}
		return all[i].w < all[j].w
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].w
	}
	return out
}
