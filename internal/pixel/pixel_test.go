package pixel

import (
	"math"
	"strings"
	"testing"

	"sourcelda/internal/rng"
)

func TestVocabulary(t *testing.T) {
	v := Vocabulary()
	if v.Size() != NumWords {
		t.Fatalf("vocab size %d, want %d", v.Size(), NumWords)
	}
	// Word names follow the paper's "xy" convention.
	if v.Word(WordID(3, 1)) != "31" {
		t.Fatalf("word at (3,1) = %q, want \"31\"", v.Word(WordID(3, 1)))
	}
}

func TestWordIDRoundTrip(t *testing.T) {
	for id := 0; id < NumWords; id++ {
		x, y := Coord(id)
		if WordID(x, y) != id {
			t.Fatalf("round trip failed for %d", id)
		}
	}
}

func TestOriginalTopics(t *testing.T) {
	topics := OriginalTopics()
	if len(topics) != NumTopics {
		t.Fatalf("got %d topics", len(topics))
	}
	for i, topic := range topics {
		var support []int
		var sum float64
		for w, p := range topic {
			if p > 0 {
				support = append(support, w)
				if math.Abs(p-0.2) > 1e-12 {
					t.Fatalf("topic %d mass %v, want 0.2", i, p)
				}
			}
			sum += p
		}
		if len(support) != Side {
			t.Fatalf("topic %d supports %d pixels", i, len(support))
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("topic %d sums to %v", i, sum)
		}
		// Rows: constant y; columns: constant x.
		x0, y0 := Coord(support[0])
		for _, w := range support {
			x, y := Coord(w)
			if i < Side && y != y0 {
				t.Fatalf("row topic %d mixes rows", i)
			}
			if i >= Side && x != x0 {
				t.Fatalf("column topic %d mixes columns", i)
			}
		}
	}
}

func TestAugmentProperties(t *testing.T) {
	orig := OriginalTopics()
	aug := Augment(orig, rng.New(5))
	if len(aug) != len(orig) {
		t.Fatal("augmentation changed topic count")
	}
	changed := 0
	for i := range aug {
		var sum float64
		support := 0
		diff := false
		for w := range aug[i] {
			sum += aug[i][w]
			if aug[i][w] > 0 {
				support++
			}
			if aug[i][w] != orig[i][w] {
				diff = true
			}
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("augmented topic %d sums to %v", i, sum)
		}
		if support != Side {
			t.Fatalf("augmented topic %d has %d support pixels, want %d", i, support, Side)
		}
		if diff {
			changed++
		}
	}
	if changed == 0 {
		t.Fatal("augmentation changed nothing")
	}
	// Originals untouched.
	orig2 := OriginalTopics()
	for i := range orig {
		for w := range orig[i] {
			if orig[i][w] != orig2[i][w] {
				t.Fatal("Augment mutated its input")
			}
		}
	}
}

func TestGenerateCorpus(t *testing.T) {
	topics := OriginalTopics()
	c := GenerateCorpus(topics, 50, 25, 1, rng.New(9))
	if c.NumDocs() != 50 {
		t.Fatalf("docs = %d", c.NumDocs())
	}
	if !c.HasGroundTruth() {
		t.Fatal("generated corpus must carry ground truth")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, d := range c.Docs {
		if len(d.Words) != 25 {
			t.Fatalf("doc length %d, want 25", len(d.Words))
		}
		for i, w := range d.Words {
			// Word must be in its generating topic's support.
			if topics[d.Topics[i]][w] == 0 {
				t.Fatal("token outside its topic's support")
			}
		}
	}
}

func TestKnowledgeSource(t *testing.T) {
	topics := OriginalTopics()
	src := KnowledgeSource(topics, 100)
	if src.Len() != NumTopics {
		t.Fatalf("source size %d", src.Len())
	}
	if src.Label(0) != "row-0" || src.Label(Side) != "col-0" {
		t.Fatalf("labels: %v", src.Labels()[:6])
	}
	// Article counts must mirror the distribution: 5 words à 20 tokens.
	a := src.Article(0)
	if a.TotalTokens != 100 || len(a.Counts) != Side {
		t.Fatalf("article: total %d, support %d", a.TotalTokens, len(a.Counts))
	}
}

func TestIntensityFloor(t *testing.T) {
	topics := OriginalTopics()
	// Supported pixel: 5 × 0.2 = 1.0; unsupported: floor 1.
	if got := Intensity(topics[0], WordID(0, 0)); got != 1 {
		t.Fatalf("supported intensity %v", got)
	}
	unsupported := WordID(0, 1) // row topic 0 has y=0 only
	if got := Intensity(topics[0], unsupported); got != 1 {
		t.Fatalf("unsupported intensity %v, want floor 1", got)
	}
	peaked := make(Topic, NumWords)
	peaked[0] = 1
	if got := Intensity(peaked, 0); got != 5 {
		t.Fatalf("peaked intensity %v, want 5", got)
	}
}

func TestRenderShape(t *testing.T) {
	topics := OriginalTopics()
	out := Render(topics[0])
	lines := strings.Split(out, "\n")
	if len(lines) != Side {
		t.Fatalf("%d lines", len(lines))
	}
	for _, l := range lines {
		if len(l) != Side {
			t.Fatalf("line %q has %d chars", l, len(l))
		}
	}
	// Row topic 0: first line lit, others blank.
	if strings.TrimSpace(lines[0]) == "" {
		t.Fatal("row 0 should be lit")
	}
	if strings.TrimSpace(lines[1]) != "" {
		t.Fatal("row 1 should be blank")
	}
}

func TestRenderRow(t *testing.T) {
	topics := OriginalTopics()
	out := RenderRow(topics[:3])
	lines := strings.Split(out, "\n")
	if len(lines) != Side {
		t.Fatalf("%d lines", len(lines))
	}
	wantWidth := 3*Side + 2*2
	for _, l := range lines {
		if len(l) != wantWidth {
			t.Fatalf("line width %d, want %d", len(l), wantWidth)
		}
	}
}

func TestTopicLabel(t *testing.T) {
	if TopicLabel(0) != "row-0" || TopicLabel(7) != "col-2" {
		t.Fatal("labels wrong")
	}
}
