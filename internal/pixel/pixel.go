// Package pixel implements the graphical-example substrate of §IV-A: topics
// over a 5×5 "pixel" vocabulary following Griffiths & Steyvers' classic
// visualization, with the paper's key twist — the original row/column topics
// are augmented by randomly swapping an assigned pixel between paired
// topics, the corpus is generated from the augmented topics, and only the
// original topics are given to the model as the knowledge source. Recovering
// and correctly labeling the augmented topics demonstrates Source-LDA's
// ability to deviate from its supervised input (Figs. 5 and 6).
package pixel

import (
	"fmt"
	"strings"

	"sourcelda/internal/corpus"
	"sourcelda/internal/knowledge"
	"sourcelda/internal/rng"
	"sourcelda/internal/textproc"
)

// Side is the picture side length (5 in the paper).
const Side = 5

// NumWords is the vocabulary size, Side².
const NumWords = Side * Side

// NumTopics is the number of row+column topics (2·Side).
const NumTopics = 2 * Side

// WordID maps a pixel coordinate to its vocabulary id.
func WordID(x, y int) int { return y*Side + x }

// Coord inverts WordID.
func Coord(id int) (x, y int) { return id % Side, id / Side }

// WordName renders a pixel word as "xy" per the paper's vocabulary
// definition V = {xy | 0 ≤ x < 5 ∧ 0 ≤ y < 5}.
func WordName(id int) string {
	x, y := Coord(id)
	return fmt.Sprintf("%d%d", x, y)
}

// Vocabulary returns the 25-word pixel vocabulary in id order.
func Vocabulary() *textproc.Vocabulary {
	v := textproc.NewVocabulary()
	for id := 0; id < NumWords; id++ {
		v.Add(WordName(id))
	}
	return v
}

// Topic is a distribution over the 25 pixel words.
type Topic []float64

// OriginalTopics returns the ten row/column topics of Fig. 5(a): topic i for
// i < 5 puts uniform mass on row i; topic i ≥ 5 on column i−5.
func OriginalTopics() []Topic {
	topics := make([]Topic, NumTopics)
	for i := range topics {
		t := make(Topic, NumWords)
		for k := 0; k < Side; k++ {
			if i < Side {
				t[WordID(k, i)] = 1.0 / Side
			} else {
				t[WordID(i-Side, k)] = 1.0 / Side
			}
		}
		topics[i] = t
	}
	return topics
}

// Augment pairs the topics in a random perfect matching and swaps one
// randomly chosen assigned word (pixel) between each pair, requiring that
// each swapped word is not already assigned in the receiving topic —
// Fig. 5(b)'s construction. Every topic changes in exactly one of its five
// pixels, the paper's "20% augmentation rate between the original topics".
// With an odd topic count the leftover topic stays unmodified. The input
// topics are not modified.
func Augment(topics []Topic, r *rng.RNG) []Topic {
	out := make([]Topic, len(topics))
	for i, t := range topics {
		c := make(Topic, len(t))
		copy(c, t)
		out[i] = c
	}
	perm := r.Perm(len(out))
	for i := 0; i+1 < len(perm); i += 2 {
		swapRandomPixels(out[perm[i]], out[perm[i+1]], r)
	}
	return out
}

// swapRandomPixels moves one random supported word of a to b and one random
// supported word of b to a, choosing words not already supported on the
// receiving side; mass moves with the words so each topic stays normalized.
func swapRandomPixels(a, b Topic, r *rng.RNG) {
	aw := exclusiveSupport(a, b)
	bw := exclusiveSupport(b, a)
	if len(aw) == 0 || len(bw) == 0 {
		return
	}
	wa := aw[r.Intn(len(aw))]
	wb := bw[r.Intn(len(bw))]
	a[wb], b[wa] = a[wa], b[wb]
	a[wa], b[wb] = 0, 0
}

// exclusiveSupport returns words supported in a but not in b.
func exclusiveSupport(a, b Topic) []int {
	var out []int
	for w := range a {
		if a[w] > 0 && b[w] == 0 {
			out = append(out, w)
		}
	}
	return out
}

// GenerateCorpus draws documents from the standard LDA generative model
// over the given topics: θ_d ~ Dir(alpha) (symmetric), each of wordsPerDoc
// tokens draws a topic then a word, recording ground-truth topic ids
// (§IV-A: 2,000 documents of 25 words with α = 1).
func GenerateCorpus(topics []Topic, numDocs, wordsPerDoc int, alpha float64, r *rng.RNG) *corpus.Corpus {
	c := corpus.NewWithVocab(Vocabulary())
	theta := make([]float64, len(topics))
	for d := 0; d < numDocs; d++ {
		r.DirichletSymmetric(alpha, theta)
		doc := &corpus.Document{
			Name:   fmt.Sprintf("pixel-doc-%d", d),
			Words:  make([]int, wordsPerDoc),
			Topics: make([]int, wordsPerDoc),
		}
		for n := 0; n < wordsPerDoc; n++ {
			t := r.Categorical(theta)
			w := r.Categorical(topics[t])
			doc.Topics[n] = t
			doc.Words[n] = w
		}
		c.AddDocument(doc)
	}
	return c
}

// KnowledgeSource converts topics to knowledge-source articles by scaling
// each distribution to integer pseudo-counts (tokensPerTopic total tokens),
// labeled "row-i" / "col-i". Only the *original* topics are exposed to the
// models; the augmented ones stay hidden as ground truth.
func KnowledgeSource(topics []Topic, tokensPerTopic int) *knowledge.Source {
	articles := make([]*knowledge.Article, len(topics))
	for i, t := range topics {
		counts := make(map[int]int)
		total := 0
		for w, p := range t {
			n := int(p * float64(tokensPerTopic))
			if p > 0 && n == 0 {
				n = 1
			}
			if n > 0 {
				counts[w] = n
				total += n
			}
		}
		articles[i] = &knowledge.Article{Label: TopicLabel(i), Counts: counts, TotalTokens: total}
	}
	return knowledge.MustNewSource(articles)
}

// TopicLabel names topic i "row-i" or "col-j" per its §IV-A definition.
func TopicLabel(i int) string {
	if i < Side {
		return fmt.Sprintf("row-%d", i)
	}
	return fmt.Sprintf("col-%d", i-Side)
}

// Intensity returns the paper's display intensity for word w in topic t:
// I(w, t) = Max[5 × P(w|t), 1] — probabilities below 0.2 render at the floor
// intensity 1.
func Intensity(t Topic, w int) float64 {
	v := 5 * t[w]
	if v < 1 {
		return 1
	}
	return v
}

// Render draws a topic as a 5×5 ASCII grid, one character per pixel scaled
// by intensity: ' ' (floor) through '#' (full mass on the pixel scale).
func Render(t Topic) string {
	ramp := []byte(" .:-=+*%@#")
	var b strings.Builder
	for y := 0; y < Side; y++ {
		for x := 0; x < Side; x++ {
			// A fully-lit pixel of a row/column topic carries p = 0.2, so
			// scale by 5 (the paper's intensity factor) before ramping.
			p := t[WordID(x, y)] * 5
			idx := int(p * float64(len(ramp)-1))
			if idx >= len(ramp) {
				idx = len(ramp) - 1
			}
			if idx < 0 {
				idx = 0
			}
			b.WriteByte(ramp[idx])
		}
		if y != Side-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RenderRow renders several topics side by side, separated by two spaces.
func RenderRow(topics []Topic) string {
	grids := make([][]string, len(topics))
	for i, t := range topics {
		grids[i] = strings.Split(Render(t), "\n")
	}
	var b strings.Builder
	for y := 0; y < Side; y++ {
		for i := range grids {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(grids[i][y])
		}
		if y != Side-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
