package corpus

import (
	"fmt"
	"sort"

	"sourcelda/internal/rng"
	"sourcelda/internal/textproc"
)

// Document is an ordered sequence of word ids. Topics, when non-nil, records
// the generating topic of each token (ground truth for synthetic corpora).
type Document struct {
	// Words holds the token stream as vocabulary ids.
	Words []int
	// Topics holds per-token generating topics, parallel to Words, or nil.
	Topics []int
	// Name is an optional identifier (file name, synthetic id).
	Name string
}

// Len returns the number of tokens.
func (d *Document) Len() int { return len(d.Words) }

// BagOfWords returns word-id → count for the document.
func (d *Document) BagOfWords() map[int]int {
	bag := make(map[int]int, len(d.Words))
	for _, w := range d.Words {
		bag[w]++
	}
	return bag
}

// Corpus is a set of documents over a shared vocabulary.
type Corpus struct {
	Docs  []*Document
	Vocab *textproc.Vocabulary
}

// New returns an empty corpus with a fresh vocabulary.
func New() *Corpus {
	return &Corpus{Vocab: textproc.NewVocabulary()}
}

// NewWithVocab returns an empty corpus sharing an existing vocabulary.
func NewWithVocab(v *textproc.Vocabulary) *Corpus {
	return &Corpus{Vocab: v}
}

// AddText tokenizes, stop-filters (if stop is non-nil) and appends a document
// built from raw text, growing the vocabulary. It returns the new document.
func (c *Corpus) AddText(name, text string, stop *textproc.Stopwords) *Document {
	tokens := textproc.Tokenize(text)
	if stop != nil {
		tokens = stop.Filter(tokens)
	}
	doc := &Document{Name: name, Words: c.Vocab.EncodeTokens(tokens, true)}
	c.Docs = append(c.Docs, doc)
	return doc
}

// AddDocument appends a pre-encoded document.
func (c *Corpus) AddDocument(doc *Document) { c.Docs = append(c.Docs, doc) }

// NumDocs returns the number of documents (the paper's D).
func (c *Corpus) NumDocs() int { return len(c.Docs) }

// VocabSize returns the vocabulary size (the paper's V).
func (c *Corpus) VocabSize() int { return c.Vocab.Size() }

// TotalTokens returns the total number of tokens across all documents.
func (c *Corpus) TotalTokens() int {
	var n int
	for _, d := range c.Docs {
		n += len(d.Words)
	}
	return n
}

// AverageDocumentLength returns the mean tokens per document (the paper's
// Davg), or 0 for an empty corpus.
func (c *Corpus) AverageDocumentLength() float64 {
	if len(c.Docs) == 0 {
		return 0
	}
	return float64(c.TotalTokens()) / float64(len(c.Docs))
}

// WordFrequencies returns corpus-wide word counts indexed by word id.
func (c *Corpus) WordFrequencies() []int {
	freq := make([]int, c.Vocab.Size())
	for _, d := range c.Docs {
		for _, w := range d.Words {
			freq[w]++
		}
	}
	return freq
}

// DocumentFrequencies returns, per word id, the number of documents
// containing the word at least once.
func (c *Corpus) DocumentFrequencies() []int {
	df := make([]int, c.Vocab.Size())
	seen := make([]int, c.Vocab.Size())
	for i := range seen {
		seen[i] = -1
	}
	for di, d := range c.Docs {
		for _, w := range d.Words {
			if seen[w] != di {
				seen[w] = di
				df[w]++
			}
		}
	}
	return df
}

// BagsOfWords returns each document as a word-id slice (the raw token
// streams), the form the TF-IDF transformer consumes.
func (c *Corpus) BagsOfWords() [][]int {
	out := make([][]int, len(c.Docs))
	for i, d := range c.Docs {
		out[i] = d.Words
	}
	return out
}

// Split partitions the corpus into train and held-out corpora sharing the
// vocabulary, assigning each document to the held-out set with probability
// heldOut using r. It guarantees at least one document on each side when the
// corpus has two or more documents.
func (c *Corpus) Split(heldOut float64, r *rng.RNG) (train, test *Corpus) {
	train = NewWithVocab(c.Vocab)
	test = NewWithVocab(c.Vocab)
	for _, d := range c.Docs {
		if r.Float64() < heldOut {
			test.Docs = append(test.Docs, d)
		} else {
			train.Docs = append(train.Docs, d)
		}
	}
	if len(c.Docs) >= 2 {
		if len(train.Docs) == 0 {
			train.Docs = append(train.Docs, test.Docs[0])
			test.Docs = test.Docs[1:]
		}
		if len(test.Docs) == 0 {
			test.Docs = append(test.Docs, train.Docs[0])
			train.Docs = train.Docs[1:]
		}
	}
	return train, test
}

// HasGroundTruth reports whether every document carries per-token topic
// labels.
func (c *Corpus) HasGroundTruth() bool {
	if len(c.Docs) == 0 {
		return false
	}
	for _, d := range c.Docs {
		if len(d.Topics) != len(d.Words) {
			return false
		}
	}
	return true
}

// GroundTruthTopicSet returns the sorted distinct topic ids appearing in the
// ground-truth assignments.
func (c *Corpus) GroundTruthTopicSet() []int {
	set := make(map[int]bool)
	for _, d := range c.Docs {
		for _, t := range d.Topics {
			set[t] = true
		}
	}
	out := make([]int, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Ints(out)
	return out
}

// GroundTruthTheta returns the empirical per-document topic distribution of
// the ground-truth assignments over numTopics topics. It panics if any
// recorded topic id is out of range.
func (c *Corpus) GroundTruthTheta(numTopics int) [][]float64 {
	theta := make([][]float64, len(c.Docs))
	for di, d := range c.Docs {
		row := make([]float64, numTopics)
		for _, t := range d.Topics {
			if t < 0 || t >= numTopics {
				panic(fmt.Sprintf("corpus: ground-truth topic %d out of range [0,%d)", t, numTopics))
			}
			row[t]++
		}
		if n := len(d.Topics); n > 0 {
			inv := 1 / float64(n)
			for k := range row {
				row[k] *= inv
			}
		}
		theta[di] = row
	}
	return theta
}

// Validate checks internal consistency: all word ids within the vocabulary,
// and topics (when present) parallel to words. It returns a descriptive
// error for the first violation found.
func (c *Corpus) Validate() error {
	v := c.Vocab.Size()
	for di, d := range c.Docs {
		for wi, w := range d.Words {
			if w < 0 || w >= v {
				return fmt.Errorf("corpus: doc %d token %d has word id %d outside vocabulary of size %d", di, wi, w, v)
			}
		}
		if d.Topics != nil && len(d.Topics) != len(d.Words) {
			return fmt.Errorf("corpus: doc %d has %d topic labels for %d tokens", di, len(d.Topics), len(d.Words))
		}
	}
	return nil
}

// CooccurrenceCounter counts, over sliding windows, how often words and word
// pairs occur — the statistic behind PMI topic-coherence evaluation (§IV-D).
type CooccurrenceCounter struct {
	window     int
	wordDocs   []int
	pairCounts map[[2]int]int
	numWindows int
}

// NewCooccurrenceCounter scans the corpus with the given window size
// (window ≤ 0 means whole-document windows) counting word and pair document
// frequencies. Pair keys are ordered (low id first).
func NewCooccurrenceCounter(c *Corpus, window int) *CooccurrenceCounter {
	cc := &CooccurrenceCounter{
		window:     window,
		wordDocs:   make([]int, c.Vocab.Size()),
		pairCounts: make(map[[2]int]int),
	}
	for _, d := range c.Docs {
		if window <= 0 || window >= len(d.Words) {
			cc.countWindow(d.Words)
			continue
		}
		for start := 0; start+window <= len(d.Words); start += window {
			cc.countWindow(d.Words[start : start+window])
		}
		if rem := len(d.Words) % window; rem != 0 {
			cc.countWindow(d.Words[len(d.Words)-rem:])
		}
	}
	return cc
}

func (cc *CooccurrenceCounter) countWindow(words []int) {
	cc.numWindows++
	uniq := make(map[int]bool, len(words))
	for _, w := range words {
		uniq[w] = true
	}
	ids := make([]int, 0, len(uniq))
	for w := range uniq {
		ids = append(ids, w)
	}
	sort.Ints(ids)
	for i, a := range ids {
		cc.wordDocs[a]++
		for _, b := range ids[i+1:] {
			cc.pairCounts[[2]int{a, b}]++
		}
	}
}

// NumWindows returns the number of windows scanned.
func (cc *CooccurrenceCounter) NumWindows() int { return cc.numWindows }

// WordCount returns the number of windows containing word w.
func (cc *CooccurrenceCounter) WordCount(w int) int {
	if w < 0 || w >= len(cc.wordDocs) {
		return 0
	}
	return cc.wordDocs[w]
}

// PairCount returns the number of windows containing both a and b.
func (cc *CooccurrenceCounter) PairCount(a, b int) int {
	if a > b {
		a, b = b, a
	}
	return cc.pairCounts[[2]int{a, b}]
}
