// Package corpus defines the document and corpus representations shared by
// every topic model in the repository (Source-LDA in internal/core and the
// LDA/EDA/CTM baselines): token streams encoded against an interned
// vocabulary, bags of words, per-token ground-truth topic assignments for
// synthetic corpora, and train/held-out splitting for perplexity
// evaluation.
//
// In the paper's terms (PAPER.md §II), a corpus is the observed word
// collection w over D documents and a V-word vocabulary; Document.Topics,
// when present, is the latent z the synthetic generators (internal/synth)
// drew from, which the evaluation metrics (internal/eval) score inferred
// assignments against.
//
// Conventions every consumer relies on:
//
//   - Words are small dense ints assigned by textproc.Vocabulary interning
//     order; the corpus never stores strings.
//   - Documents preserve token order (the Gibbs samplers sweep positions,
//     not bags); bag-of-words views are derived on demand.
//   - Held-out splits (Split) are drawn with a seeded internal/rng stream,
//     so an evaluation split is reproducible from its seed — the same
//     determinism-by-construction contract the samplers follow.
//
// The public façade wraps a corpus behind sourcelda.Corpus and builds one
// from raw text via sourcelda.CorpusBuilder; this package is the in-memory
// representation those layers and internal/persist serialize.
package corpus
