package corpus

import (
	"testing"

	"sourcelda/internal/rng"
	"sourcelda/internal/textproc"
)

func buildSmallCorpus(t *testing.T) *Corpus {
	t.Helper()
	c := New()
	c.AddText("d1", "pencil pencil umpire", nil)
	c.AddText("d2", "ruler ruler baseball", nil)
	return c
}

func TestAddTextGrowsVocabulary(t *testing.T) {
	c := buildSmallCorpus(t)
	if c.NumDocs() != 2 {
		t.Fatalf("docs = %d", c.NumDocs())
	}
	if c.VocabSize() != 4 {
		t.Fatalf("vocab = %d, want 4 (pencil, umpire, ruler, baseball)", c.VocabSize())
	}
	if c.TotalTokens() != 6 {
		t.Fatalf("tokens = %d, want 6", c.TotalTokens())
	}
	if got := c.AverageDocumentLength(); got != 3 {
		t.Fatalf("Davg = %v, want 3", got)
	}
}

func TestStopwordFiltering(t *testing.T) {
	c := New()
	c.AddText("d", "the pencil and the ruler", textproc.DefaultStopwords())
	if c.TotalTokens() != 2 {
		t.Fatalf("tokens = %d, want 2 after stop filtering", c.TotalTokens())
	}
}

func TestBagOfWords(t *testing.T) {
	c := buildSmallCorpus(t)
	bag := c.Docs[0].BagOfWords()
	pencil, _ := c.Vocab.ID("pencil")
	if bag[pencil] != 2 {
		t.Fatalf("pencil count = %d, want 2", bag[pencil])
	}
}

func TestWordAndDocumentFrequencies(t *testing.T) {
	c := buildSmallCorpus(t)
	pencil, _ := c.Vocab.ID("pencil")
	wf := c.WordFrequencies()
	if wf[pencil] != 2 {
		t.Fatalf("word freq = %d, want 2", wf[pencil])
	}
	df := c.DocumentFrequencies()
	if df[pencil] != 1 {
		t.Fatalf("doc freq = %d, want 1", df[pencil])
	}
}

func TestValidate(t *testing.T) {
	c := buildSmallCorpus(t)
	if err := c.Validate(); err != nil {
		t.Fatalf("valid corpus rejected: %v", err)
	}
	c.Docs[0].Words[0] = 999
	if err := c.Validate(); err == nil {
		t.Fatal("out-of-range word id accepted")
	}
	c.Docs[0].Words[0] = 0
	c.Docs[0].Topics = []int{1} // wrong length
	if err := c.Validate(); err == nil {
		t.Fatal("mismatched topics accepted")
	}
}

func TestGroundTruth(t *testing.T) {
	c := buildSmallCorpus(t)
	if c.HasGroundTruth() {
		t.Fatal("corpus without topics claims ground truth")
	}
	c.Docs[0].Topics = []int{0, 0, 1}
	c.Docs[1].Topics = []int{1, 1, 0}
	if !c.HasGroundTruth() {
		t.Fatal("ground truth not detected")
	}
	set := c.GroundTruthTopicSet()
	if len(set) != 2 || set[0] != 0 || set[1] != 1 {
		t.Fatalf("topic set = %v", set)
	}
	theta := c.GroundTruthTheta(2)
	if theta[0][0] != 2.0/3 || theta[0][1] != 1.0/3 {
		t.Fatalf("theta[0] = %v", theta[0])
	}
}

func TestGroundTruthThetaPanicsOnRange(t *testing.T) {
	c := buildSmallCorpus(t)
	c.Docs[0].Topics = []int{0, 0, 5}
	c.Docs[1].Topics = []int{0, 0, 0}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range truth topic")
		}
	}()
	c.GroundTruthTheta(2)
}

func TestSplit(t *testing.T) {
	c := New()
	for i := 0; i < 100; i++ {
		c.AddText("d", "w1 w2 w3", nil)
	}
	train, test := c.Split(0.2, rng.New(3))
	if train.NumDocs()+test.NumDocs() != 100 {
		t.Fatalf("split lost documents: %d + %d", train.NumDocs(), test.NumDocs())
	}
	if train.NumDocs() == 0 || test.NumDocs() == 0 {
		t.Fatal("split produced an empty side")
	}
	if test.NumDocs() > 40 {
		t.Fatalf("held-out fraction too large: %d", test.NumDocs())
	}
	if train.Vocab != c.Vocab || test.Vocab != c.Vocab {
		t.Fatal("split must share the vocabulary")
	}
}

func TestSplitDegenerate(t *testing.T) {
	c := New()
	c.AddText("a", "x", nil)
	c.AddText("b", "y", nil)
	// Extreme probabilities must still give one doc per side.
	train, test := c.Split(0.0, rng.New(1))
	if train.NumDocs() != 1 || test.NumDocs() != 1 {
		t.Fatalf("degenerate split: %d/%d, want 1/1", train.NumDocs(), test.NumDocs())
	}
}

func TestCooccurrenceWholeDocument(t *testing.T) {
	c := buildSmallCorpus(t)
	cc := NewCooccurrenceCounter(c, 0)
	if cc.NumWindows() != 2 {
		t.Fatalf("windows = %d, want 2", cc.NumWindows())
	}
	pencil, _ := c.Vocab.ID("pencil")
	umpire, _ := c.Vocab.ID("umpire")
	ruler, _ := c.Vocab.ID("ruler")
	if cc.WordCount(pencil) != 1 {
		t.Fatalf("pencil windows = %d, want 1 (counted once per window)", cc.WordCount(pencil))
	}
	if cc.PairCount(pencil, umpire) != 1 {
		t.Fatalf("pencil+umpire = %d, want 1", cc.PairCount(pencil, umpire))
	}
	if cc.PairCount(umpire, pencil) != 1 {
		t.Fatal("pair count must be order-independent")
	}
	if cc.PairCount(pencil, ruler) != 0 {
		t.Fatal("cross-document pair should be 0")
	}
	if cc.WordCount(-1) != 0 || cc.WordCount(10000) != 0 {
		t.Fatal("out-of-range word counts should be 0")
	}
}

func TestCooccurrenceSlidingWindows(t *testing.T) {
	c := New()
	// One doc of 6 tokens, window 2 → 3 windows.
	c.AddText("d", "a b c d e f", nil)
	cc := NewCooccurrenceCounter(c, 2)
	if cc.NumWindows() != 3 {
		t.Fatalf("windows = %d, want 3", cc.NumWindows())
	}
	a, _ := c.Vocab.ID("a")
	b, _ := c.Vocab.ID("b")
	cID, _ := c.Vocab.ID("c")
	if cc.PairCount(a, b) != 1 {
		t.Fatalf("a+b = %d, want 1", cc.PairCount(a, b))
	}
	if cc.PairCount(a, cID) != 0 {
		t.Fatal("a and c are in different windows")
	}
}

func TestCooccurrenceRemainderWindow(t *testing.T) {
	c := New()
	c.AddText("d", "a b c", nil) // window 2 → windows {a,b} and {c}
	cc := NewCooccurrenceCounter(c, 2)
	if cc.NumWindows() != 2 {
		t.Fatalf("windows = %d, want 2 (incl. remainder)", cc.NumWindows())
	}
}

func TestBagsOfWords(t *testing.T) {
	c := buildSmallCorpus(t)
	bags := c.BagsOfWords()
	if len(bags) != 2 || len(bags[0]) != 3 {
		t.Fatalf("bags shape wrong: %v", bags)
	}
}
