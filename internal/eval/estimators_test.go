package eval

import (
	"math"
	"testing"

	"sourcelda/internal/corpus"
)

func twoTopicPhi() [][]float64 {
	return [][]float64{{0.95, 0.05}, {0.05, 0.95}}
}

func heldOutCorpus(words ...int) *corpus.Corpus {
	c := corpus.New()
	c.Vocab.Add("w0")
	c.Vocab.Add("w1")
	c.AddDocument(&corpus.Document{Words: words})
	return c
}

func TestLeftToRightPerplexityBasics(t *testing.T) {
	phi := twoTopicPhi()
	// A pure-topic document should be only mildly perplexing.
	ppx, err := LeftToRightPerplexity(phi, 0.5, heldOutCorpus(0, 0, 0, 0, 0, 0), 20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ppx <= 1 || ppx > 2.5 {
		t.Fatalf("pure-topic perplexity %v outside (1, 2.5]", ppx)
	}
	// Uniform φ gives perplexity ≈ V exactly.
	uniform := [][]float64{{0.5, 0.5}}
	ppxU, err := LeftToRightPerplexity(uniform, 0.5, heldOutCorpus(0, 1, 0, 1), 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ppxU-2) > 1e-9 {
		t.Fatalf("uniform perplexity %v, want exactly 2", ppxU)
	}
}

func TestLeftToRightOrdersModels(t *testing.T) {
	// A sharp matched model must beat a blurred one on a document dominated
	// by one topic (with a little noise).
	good := twoTopicPhi()
	swapped := [][]float64{{0.05, 0.95}, {0.95, 0.05}}
	words := make([]int, 0, 20)
	for i := 0; i < 18; i++ {
		words = append(words, 0)
	}
	words = append(words, 1, 1)
	doc := heldOutCorpus(words...)
	gp, err := LeftToRightPerplexity(good, 0.1, doc, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Swapped topic ids describe the same model family — similar score.
	sp, err := LeftToRightPerplexity(swapped, 0.1, doc, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(gp-sp) > 0.4 {
		t.Fatalf("label-swapped models should score similarly: %v vs %v", gp, sp)
	}
	// A genuinely worse model: near-uniform topics.
	blur := [][]float64{{0.55, 0.45}, {0.45, 0.55}}
	wp, err := LeftToRightPerplexity(blur, 0.1, doc, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if gp >= wp {
		t.Fatalf("sharp model perplexity %v should beat blurred %v", gp, wp)
	}
}

func TestLeftToRightAgreesWithImportanceSampling(t *testing.T) {
	// Both estimators target the same quantity; on a short document they
	// should land in the same neighbourhood.
	phi := twoTopicPhi()
	doc := heldOutCorpus(0, 0, 1, 0, 0)
	lr, err := LeftToRightPerplexity(phi, 0.5, doc, 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	is, err := ImportanceSamplingPerplexity(phi, 0.5, doc, 256, 5)
	if err != nil {
		t.Fatal(err)
	}
	if lr <= 0 || is <= 0 {
		t.Fatal("degenerate estimates")
	}
	if ratio := lr / is; ratio < 0.6 || ratio > 1.7 {
		t.Fatalf("estimators disagree badly: left-to-right %v vs IS %v", lr, is)
	}
}

func TestLeftToRightValidation(t *testing.T) {
	phi := twoTopicPhi()
	if _, err := LeftToRightPerplexity(nil, 0.5, heldOutCorpus(0), 5, 1); err == nil {
		t.Error("empty phi accepted")
	}
	if _, err := LeftToRightPerplexity(phi, 0.5, corpus.New(), 5, 1); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestTokenAgreementPerfect(t *testing.T) {
	c := truthCorpus()
	// Identical clustering up to a label permutation → NMI = purity = 1.
	swapped := [][]int{{1, 1, 1, 0}, {0, 0, 0, 1}}
	res, err := TokenAgreement(c, swapped)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.NMI-1) > 1e-9 {
		t.Fatalf("NMI %v, want 1 (label permutation is a perfect clustering)", res.NMI)
	}
	if res.Purity != 1 {
		t.Fatalf("purity %v, want 1", res.Purity)
	}
	if res.Tokens != 8 {
		t.Fatalf("tokens %d", res.Tokens)
	}
}

func TestTokenAgreementDegraded(t *testing.T) {
	c := truthCorpus()
	// Everything in one cluster: NMI 0, purity = majority share.
	constant := [][]int{{0, 0, 0, 0}, {0, 0, 0, 0}}
	res, err := TokenAgreement(c, constant)
	if err != nil {
		t.Fatal(err)
	}
	if res.NMI > 1e-9 {
		t.Fatalf("constant clustering NMI %v, want 0", res.NMI)
	}
	if res.Purity != 0.5 {
		t.Fatalf("purity %v, want 0.5 (4 of 8 tokens in the majority class)", res.Purity)
	}
}

func TestTokenAgreementErrors(t *testing.T) {
	c := truthCorpus()
	noTruth := corpus.New()
	noTruth.AddText("d", "a b", nil)
	if _, err := TokenAgreement(noTruth, [][]int{{0, 0}}); err == nil {
		t.Error("missing ground truth accepted")
	}
	if _, err := TokenAgreement(c, [][]int{{0}}); err == nil {
		t.Error("wrong document count accepted")
	}
	if _, err := TokenAgreement(c, [][]int{{0}, {0, 0, 0, 0}}); err == nil {
		t.Error("wrong token count accepted")
	}
}

func TestTokenAgreementBetterModelScoresHigher(t *testing.T) {
	c := truthCorpus()
	perfect := [][]int{{0, 0, 0, 1}, {1, 1, 1, 0}}
	noisy := [][]int{{0, 1, 0, 1}, {1, 0, 1, 0}}
	p, err := TokenAgreement(c, perfect)
	if err != nil {
		t.Fatal(err)
	}
	q, err := TokenAgreement(c, noisy)
	if err != nil {
		t.Fatal(err)
	}
	if p.NMI <= q.NMI {
		t.Fatalf("perfect NMI %v should exceed noisy %v", p.NMI, q.NMI)
	}
	if p.Purity <= q.Purity {
		t.Fatalf("perfect purity %v should exceed noisy %v", p.Purity, q.Purity)
	}
}
