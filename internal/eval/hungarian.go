package eval

import (
	"math"

	"sourcelda/internal/stats"
)

// Hungarian solves the rectangular min-cost assignment problem on cost
// (rows ≤ cols required; pad with zero-cost dummy columns otherwise) and
// returns, per row, the assigned column. It is the O(n³) potential-based
// Kuhn–Munkres variant (Jonker-style shortest augmenting paths).
func Hungarian(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	if m < n {
		panic("eval: Hungarian requires rows ≤ cols")
	}
	// Potentials u (rows) and v (cols), and matching p: p[j] = row matched
	// to column j (1-based internally, 0 = free).
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1)
	way := make([]int, m+1)
	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	assignment := make([]int, n)
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			assignment[p[j]-1] = j - 1
		}
	}
	return assignment
}

// MatchTopicsOptimal maps each model topic to a distinct ground-truth
// distribution minimizing the *total* JS divergence — the optimal
// counterpart of MatchTopicsGreedy, solved with the Hungarian algorithm.
// When len(phis) > len(truth), surplus topics are matched to padded dummy
// targets and map to -1.
func MatchTopicsOptimal(phis, truth [][]float64) []int {
	n, m := len(phis), len(truth)
	if n == 0 {
		return nil
	}
	cols := m
	if cols < n {
		cols = n // pad with zero-cost dummies
	}
	cost := make([][]float64, n)
	for t, p := range phis {
		row := make([]float64, cols)
		for g, q := range truth {
			row[g] = stats.JSDivergence(p, q)
		}
		cost[t] = row
	}
	assign := Hungarian(cost)
	for t, g := range assign {
		if g >= m {
			assign[t] = -1
		}
	}
	return assign
}

// MatchingCost sums the JS divergence of a topic→truth mapping, skipping
// unmatched (-1) entries.
func MatchingCost(phis, truth [][]float64, mapping []int) float64 {
	var total float64
	for t, g := range mapping {
		if g >= 0 && t < len(phis) && g < len(truth) {
			total += stats.JSDivergence(phis[t], truth[g])
		}
	}
	return total
}
