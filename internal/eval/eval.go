package eval

import (
	"errors"
	"math"
	"sort"

	"sourcelda/internal/corpus"
	"sourcelda/internal/mathx"
	"sourcelda/internal/rng"
	"sourcelda/internal/stats"
	"sourcelda/internal/textproc"
)

// ClassificationResult reports token-level accuracy against ground truth.
type ClassificationResult struct {
	// Correct is the number of tokens whose mapped topic equals the ground
	// truth.
	Correct int
	// Total is the number of tokens evaluated.
	Total int
}

// Accuracy returns Correct/Total, or 0 when empty.
func (c ClassificationResult) Accuracy() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Correct) / float64(c.Total)
}

// ClassifyTokens scores per-token assignments against the corpus's
// ground-truth topics. topicToTruth maps each model topic index to a
// ground-truth topic id (use -1 for topics with no counterpart, e.g. free
// topics under a source-only truth); assignments is [doc][token] in model
// topic indices. This is the paper's "number of correct topic assignments"
// metric (Figs. 8(a) and 8(b)).
func ClassifyTokens(c *corpus.Corpus, assignments [][]int, topicToTruth []int) (ClassificationResult, error) {
	if !c.HasGroundTruth() {
		return ClassificationResult{}, errors.New("eval: corpus lacks ground-truth topics")
	}
	if len(assignments) != c.NumDocs() {
		return ClassificationResult{}, errors.New("eval: assignment/document count mismatch")
	}
	var res ClassificationResult
	for d, doc := range c.Docs {
		if len(assignments[d]) != len(doc.Words) {
			return ClassificationResult{}, errors.New("eval: assignment/token count mismatch")
		}
		for i := range doc.Words {
			res.Total++
			t := assignments[d][i]
			if t < 0 || t >= len(topicToTruth) {
				continue
			}
			if mapped := topicToTruth[t]; mapped >= 0 && mapped == doc.Topics[i] {
				res.Correct++
			}
		}
	}
	return res, nil
}

// MatchTopicsGreedy maps each model topic (rows of phis) to the
// ground-truth distribution (rows of truth) minimizing JS divergence,
// one-to-one, by greedy global matching: all (topic, truth) pairs are sorted
// by divergence and consumed without conflicts. Unmatched topics (when
// len(phis) > len(truth)) map to -1. The paper uses JS-divergence matching
// to give LDA's anonymous topics labels before classification (§IV-D).
func MatchTopicsGreedy(phis, truth [][]float64) []int {
	type pair struct {
		t, g int
		js   float64
	}
	pairs := make([]pair, 0, len(phis)*len(truth))
	for t, p := range phis {
		for g, q := range truth {
			pairs = append(pairs, pair{t, g, stats.JSDivergence(p, q)})
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].js != pairs[j].js {
			return pairs[i].js < pairs[j].js
		}
		if pairs[i].t != pairs[j].t {
			return pairs[i].t < pairs[j].t
		}
		return pairs[i].g < pairs[j].g
	})
	mapping := make([]int, len(phis))
	for i := range mapping {
		mapping[i] = -1
	}
	usedTruth := make([]bool, len(truth))
	matched := 0
	for _, p := range pairs {
		if matched == len(phis) {
			break
		}
		if mapping[p.t] != -1 || usedTruth[p.g] {
			continue
		}
		mapping[p.t] = p.g
		usedTruth[p.g] = true
		matched++
	}
	return mapping
}

// MatchTopicsNearest maps each model topic independently to its
// nearest ground-truth distribution by JS divergence (many-to-one allowed).
func MatchTopicsNearest(phis, truth [][]float64) []int {
	mapping := make([]int, len(phis))
	for t, p := range phis {
		best, bestJS := -1, math.Inf(1)
		for g, q := range truth {
			if js := stats.JSDivergence(p, q); js < bestJS {
				best, bestJS = g, js
			}
		}
		mapping[t] = best
	}
	return mapping
}

// SortedThetaJS returns the paper's "sorted JS divergence" statistic for θ
// (Figs. 8(d) and 8(e)): for every document, both the inferred and the
// ground-truth topic mixtures are sorted in descending probability —
// removing topic-identity alignment from the comparison — padded to a common
// length, and their JS divergence accumulated over all documents.
func SortedThetaJS(inferred, truth [][]float64) (float64, error) {
	if len(inferred) != len(truth) {
		return 0, errors.New("eval: document count mismatch")
	}
	var total float64
	for d := range inferred {
		a := sortedDesc(inferred[d])
		b := sortedDesc(truth[d])
		if len(a) < len(b) {
			a = append(a, make([]float64, len(b)-len(a))...)
		} else if len(b) < len(a) {
			b = append(b, make([]float64, len(a)-len(b))...)
		}
		total += stats.JSDivergence(a, b)
	}
	return total, nil
}

func sortedDesc(xs []float64) []float64 {
	out := make([]float64, len(xs))
	copy(out, xs)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// PMIOptions configures coherence evaluation.
type PMIOptions struct {
	// TopN is the number of top words per topic (paper: 10).
	TopN int
	// Window is the co-occurrence window size in tokens; ≤0 means whole
	// documents ("a given input distance from each other in the corpus").
	Window int
}

// PMICoherence returns the mean pointwise mutual information over all pairs
// of each topic's TopN words, averaged across topics (Fig. 8(c)). Pairs
// never co-occurring contribute the log of the smoothed floor 1/(windows).
func PMICoherence(c *corpus.Corpus, phis [][]float64, opts PMIOptions) float64 {
	if opts.TopN <= 0 {
		opts.TopN = 10
	}
	cc := corpus.NewCooccurrenceCounter(c, opts.Window)
	n := float64(cc.NumWindows())
	if n == 0 || len(phis) == 0 {
		return 0
	}
	var topicTotal float64
	var topics int
	for _, phi := range phis {
		words := textproc.TopWords(phi, opts.TopN)
		var sum float64
		var pairs int
		for i, wa := range words {
			for _, wb := range words[i+1:] {
				pairs++
				ca, cb := cc.WordCount(wa), cc.WordCount(wb)
				joint := float64(cc.PairCount(wa, wb))
				if joint == 0 {
					joint = 0.5 // additive smoothing for unseen pairs
				}
				if ca == 0 || cb == 0 {
					continue
				}
				sum += math.Log(joint * n / (float64(ca) * float64(cb)))
			}
		}
		if pairs > 0 {
			topicTotal += sum / float64(pairs)
			topics++
		}
	}
	if topics == 0 {
		return 0
	}
	return topicTotal / float64(topics)
}

// ImportanceSamplingPerplexity estimates held-out perplexity with the
// importance-sampling evaluation of Wallach et al. referenced in §III-C5a:
// for each document, S mixtures θ(s) ~ Dir(α) are drawn as proposals from
// the prior, the document likelihood P(w_d) ≈ logsumexp_s Σ_n log Σ_t
// θ(s)_t φ_t,w − log S, and perplexity = exp(−Σ_d log P(w_d) / N). It
// depends only on φ (Eq. 4), as the paper notes.
func ImportanceSamplingPerplexity(phi [][]float64, alpha float64, test *corpus.Corpus, samples int, seed int64) (float64, error) {
	if len(phi) == 0 {
		return 0, errors.New("eval: empty phi")
	}
	if test == nil || test.TotalTokens() == 0 {
		return 0, errors.New("eval: empty held-out corpus")
	}
	if samples <= 0 {
		samples = 32
	}
	T := len(phi)
	r := rng.New(seed)
	theta := make([]float64, T)
	logPs := make([]float64, samples)
	var totalLog float64
	var tokens int
	for _, doc := range test.Docs {
		for s := 0; s < samples; s++ {
			r.DirichletSymmetric(alpha, theta)
			var lp float64
			for _, w := range doc.Words {
				var pw float64
				for t := 0; t < T; t++ {
					pw += theta[t] * phi[t][w]
				}
				if pw <= 0 {
					pw = math.SmallestNonzeroFloat64
				}
				lp += math.Log(pw)
			}
			logPs[s] = lp
		}
		totalLog += mathx.LogSumExp(logPs) - math.Log(float64(samples))
		tokens += len(doc.Words)
	}
	return math.Exp(-totalLog / float64(tokens)), nil
}

// TruthTopicDistributions converts per-token ground truth into empirical
// topic-word distributions over numTruthTopics topics and vocabSize words —
// the reference rows used by the matching functions.
func TruthTopicDistributions(c *corpus.Corpus, numTruthTopics, vocabSize int) [][]float64 {
	counts := make([][]float64, numTruthTopics)
	for t := range counts {
		counts[t] = make([]float64, vocabSize)
	}
	for _, d := range c.Docs {
		for i, w := range d.Words {
			t := d.Topics[i]
			if t >= 0 && t < numTruthTopics && w >= 0 && w < vocabSize {
				counts[t][w]++
			}
		}
	}
	for t := range counts {
		mathx.Normalize(counts[t])
	}
	return counts
}

// MeanPairwiseJS returns the average JS divergence between corresponding
// rows of a and b (used for the Fig. 6 comparison: 0.012 / 0.138 / 0.43 for
// SRC / EDA / CTM). Rows are paired by the given mapping from a-rows to
// b-rows; unmapped rows are skipped.
func MeanPairwiseJS(a, b [][]float64, mapping []int) float64 {
	var total float64
	var n int
	for i, j := range mapping {
		if j < 0 || i >= len(a) || j >= len(b) {
			continue
		}
		total += stats.JSDivergence(a[i], b[j])
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}
