// Package eval implements the paper's evaluation metrics (PAPER.md §IV):
//
//   - Token classification accuracy against synthetic ground truth — the
//     headline comparison of Figs. 2–4, where each generated token carries
//     its true topic and a fitted model is scored on recovering it. Model
//     topics are matched to ground-truth topics either greedily or with the
//     optimal Hungarian assignment (hungarian.go).
//   - Sorted Jensen–Shannon divergence totals over θ and φ (Figs. 5–6's
//     distributional comparison), built on the stats package's divergence
//     primitives.
//   - PMI topic coherence over top-word pairs, the label-free quality
//     signal used alongside accuracy.
//   - Importance-sampling perplexity of held-out documents (estimators.go),
//     the §IV-D generalization measure, with the harmonic-mean estimator
//     retained for comparison.
//
// Invariants: evaluators are read-only over the fitted artifacts they
// score (they consume core.Result snapshots, never live models), and every
// stochastic estimator takes an explicit internal/rng generator so reported
// numbers are reproducible bit for bit under a fixed seed — including
// mid-training evaluation driven from a sweep hook, which must not perturb
// the chain's own RNG streams.
package eval
