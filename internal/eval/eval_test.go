package eval

import (
	"math"
	"testing"

	"sourcelda/internal/corpus"
	"sourcelda/internal/mathx"
	"sourcelda/internal/rng"
)

// truthCorpus builds a 2-topic ground-truth corpus: topic 0 words {0,1},
// topic 1 words {2,3}.
func truthCorpus() *corpus.Corpus {
	c := corpus.New()
	for _, w := range []string{"w0", "w1", "w2", "w3"} {
		c.Vocab.Add(w)
	}
	c.AddDocument(&corpus.Document{
		Words:  []int{0, 1, 0, 2},
		Topics: []int{0, 0, 0, 1},
	})
	c.AddDocument(&corpus.Document{
		Words:  []int{2, 3, 3, 1},
		Topics: []int{1, 1, 1, 0},
	})
	return c
}

func TestClassifyTokensPerfect(t *testing.T) {
	c := truthCorpus()
	assignments := [][]int{{0, 0, 0, 1}, {1, 1, 1, 0}}
	res, err := ClassifyTokens(c, assignments, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != 8 || res.Total != 8 || res.Accuracy() != 1 {
		t.Fatalf("res = %+v", res)
	}
}

func TestClassifyTokensWithMapping(t *testing.T) {
	c := truthCorpus()
	// Model used swapped topic ids; mapping fixes it.
	assignments := [][]int{{1, 1, 1, 0}, {0, 0, 0, 1}}
	res, err := ClassifyTokens(c, assignments, []int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() != 1 {
		t.Fatalf("accuracy %v with corrective mapping", res.Accuracy())
	}
	// Unmapped topics (-1) never count as correct.
	res, err = ClassifyTokens(c, assignments, []int{-1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Correct != 0 {
		t.Fatalf("unmapped topics scored %d correct", res.Correct)
	}
}

func TestClassifyTokensErrors(t *testing.T) {
	c := truthCorpus()
	good := [][]int{{0, 0, 0, 1}, {1, 1, 1, 0}}
	c2 := corpus.New()
	c2.AddText("d", "a b", nil)
	if _, err := ClassifyTokens(c2, [][]int{{0, 0}}, []int{0}); err == nil {
		t.Error("corpus without ground truth accepted")
	}
	if _, err := ClassifyTokens(c, good[:1], []int{0, 1}); err == nil {
		t.Error("short assignment list accepted")
	}
	if _, err := ClassifyTokens(c, [][]int{{0}, {1, 1, 1, 0}}, []int{0, 1}); err == nil {
		t.Error("short token assignment accepted")
	}
	// Out-of-range assignment ids are tolerated (counted incorrect).
	res, err := ClassifyTokens(c, [][]int{{99, -5, 0, 1}, {1, 1, 1, 0}}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Total != 8 || res.Correct != 6 {
		t.Fatalf("res = %+v", res)
	}
}

func TestMatchTopicsGreedyOneToOne(t *testing.T) {
	truth := [][]float64{{0.9, 0.1, 0, 0}, {0, 0, 0.5, 0.5}}
	phis := [][]float64{{0, 0, 0.45, 0.55}, {0.85, 0.15, 0, 0}}
	m := MatchTopicsGreedy(phis, truth)
	if m[0] != 1 || m[1] != 0 {
		t.Fatalf("mapping = %v", m)
	}
	// Surplus topics map to -1.
	phis3 := append(phis, []float64{0.25, 0.25, 0.25, 0.25})
	m = MatchTopicsGreedy(phis3, truth)
	count := 0
	for _, g := range m {
		if g == -1 {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("mapping = %v, want exactly one unmatched", m)
	}
}

func TestMatchTopicsNearestManyToOne(t *testing.T) {
	truth := [][]float64{{1, 0}, {0, 1}}
	phis := [][]float64{{0.9, 0.1}, {0.8, 0.2}}
	m := MatchTopicsNearest(phis, truth)
	if m[0] != 0 || m[1] != 0 {
		t.Fatalf("mapping = %v, want both nearest to truth 0", m)
	}
}

func TestSortedThetaJS(t *testing.T) {
	// Identical mixtures up to topic relabeling score zero (the metric is
	// "irrespective to any unknown mapping").
	inferred := [][]float64{{0.7, 0.3}, {0.2, 0.8}}
	truth := [][]float64{{0.3, 0.7}, {0.8, 0.2}}
	js, err := SortedThetaJS(inferred, truth)
	if err != nil {
		t.Fatal(err)
	}
	if js != 0 {
		t.Fatalf("permuted mixtures scored %v, want 0", js)
	}
	// Different shapes accumulate positive divergence.
	js2, err := SortedThetaJS([][]float64{{1, 0}, {1, 0}}, [][]float64{{0.5, 0.5}, {0.5, 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	if js2 <= 0 {
		t.Fatalf("mismatched mixtures scored %v", js2)
	}
	// Length padding: a 3-topic θ against 2-topic truth works.
	if _, err := SortedThetaJS([][]float64{{0.5, 0.3, 0.2}}, [][]float64{{0.5, 0.5}}); err != nil {
		t.Fatal(err)
	}
	if _, err := SortedThetaJS(inferred, truth[:1]); err == nil {
		t.Fatal("document count mismatch accepted")
	}
}

func TestPMICoherenceOrdersTopics(t *testing.T) {
	// Build a corpus where words 0,1 always co-occur and words 0,2 never
	// do; a topic on {0,1} must score higher than a topic on {0,2}.
	c := corpus.New()
	for _, w := range []string{"a", "b", "c", "d"} {
		c.Vocab.Add(w)
	}
	for i := 0; i < 30; i++ {
		c.AddDocument(&corpus.Document{Words: []int{0, 1}})
		c.AddDocument(&corpus.Document{Words: []int{2, 3}})
	}
	good := [][]float64{{0.5, 0.5, 0, 0}}
	bad := [][]float64{{0.5, 0, 0.5, 0}}
	pGood := PMICoherence(c, good, PMIOptions{TopN: 2})
	pBad := PMICoherence(c, bad, PMIOptions{TopN: 2})
	if pGood <= pBad {
		t.Fatalf("PMI(good)=%v should exceed PMI(bad)=%v", pGood, pBad)
	}
}

func TestPMICoherenceEmpty(t *testing.T) {
	if got := PMICoherence(corpus.New(), nil, PMIOptions{}); got != 0 {
		t.Fatalf("empty inputs scored %v", got)
	}
}

func TestImportanceSamplingPerplexity(t *testing.T) {
	// φ puts all mass on word 0 for topic 0, word 1 for topic 1. A test doc
	// of only word 0 should be far less perplexing than a doc mixing both
	// words... and a uniform φ should give perplexity ≈ V.
	phi := [][]float64{{0.99, 0.01}, {0.01, 0.99}}
	c := corpus.New()
	c.Vocab.Add("w0")
	c.Vocab.Add("w1")
	c.AddDocument(&corpus.Document{Words: []int{0, 0, 0, 0}})
	ppx, err := ImportanceSamplingPerplexity(phi, 0.5, c, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ppx <= 0 || ppx > 2.2 {
		t.Fatalf("perplexity %v out of expected range", ppx)
	}
	uniform := [][]float64{{0.5, 0.5}}
	ppxU, err := ImportanceSamplingPerplexity(uniform, 0.5, c, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ppxU-2) > 0.05 {
		t.Fatalf("uniform perplexity %v, want ≈2 (=V)", ppxU)
	}
	if _, err := ImportanceSamplingPerplexity(nil, 0.5, c, 8, 1); err == nil {
		t.Fatal("empty phi accepted")
	}
	if _, err := ImportanceSamplingPerplexity(phi, 0.5, corpus.New(), 8, 1); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestTruthTopicDistributions(t *testing.T) {
	c := truthCorpus()
	dists := TruthTopicDistributions(c, 2, 4)
	if len(dists) != 2 {
		t.Fatal("wrong topic count")
	}
	// Topic 0 emitted w0×2, w1×2 → 0.5/0.5 over {0,1}.
	if math.Abs(dists[0][0]-0.5) > 1e-12 || math.Abs(dists[0][1]-0.5) > 1e-12 {
		t.Fatalf("topic 0 dist = %v", dists[0])
	}
	if dists[0][2] != 0 {
		t.Fatal("topic 0 should not emit w2")
	}
	var s float64
	for _, p := range dists[1] {
		s += p
	}
	if math.Abs(s-1) > 1e-9 {
		t.Fatalf("topic 1 not normalized: %v", s)
	}
}

func TestMeanPairwiseJS(t *testing.T) {
	a := [][]float64{{1, 0}, {0, 1}}
	b := [][]float64{{1, 0}, {0, 1}}
	if got := MeanPairwiseJS(a, b, []int{0, 1}); got != 0 {
		t.Fatalf("identical rows scored %v", got)
	}
	if got := MeanPairwiseJS(a, b, []int{1, 0}); got <= 0 {
		t.Fatalf("crossed rows scored %v", got)
	}
	if got := MeanPairwiseJS(a, b, []int{-1, -1}); got != 0 {
		t.Fatalf("all-unmapped scored %v", got)
	}
}

func TestClassificationAccuracyMatchesByConstruction(t *testing.T) {
	// End-to-end property: classify a synthetic corpus against itself via
	// nearest-topic matching — must be 100%.
	r := rng.New(5)
	c := corpus.New()
	V := 20
	for w := 0; w < V; w++ {
		c.Vocab.Add(string(rune('a'+w%26)) + string(rune('0'+w/26)))
	}
	truth := make([][]float64, 2)
	for k := range truth {
		truth[k] = make([]float64, V)
		for w := k * 10; w < (k+1)*10; w++ {
			truth[k][w] = 1
		}
		mathx.Normalize(truth[k])
	}
	for d := 0; d < 20; d++ {
		doc := &corpus.Document{Words: make([]int, 30), Topics: make([]int, 30)}
		for i := range doc.Words {
			k := r.Intn(2)
			doc.Topics[i] = k
			doc.Words[i] = r.Categorical(truth[k])
		}
		c.AddDocument(doc)
	}
	truthDists := TruthTopicDistributions(c, 2, V)
	mapping := MatchTopicsGreedy(truthDists, truthDists)
	res, err := ClassifyTokens(c, assignmentsFromTruth(c), mapping)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy() != 1 {
		t.Fatalf("self-classification accuracy %v", res.Accuracy())
	}
}

func assignmentsFromTruth(c *corpus.Corpus) [][]int {
	out := make([][]int, len(c.Docs))
	for d, doc := range c.Docs {
		out[d] = append([]int(nil), doc.Topics...)
	}
	return out
}
