package eval

import (
	"math"
	"testing"
	"testing/quick"

	"sourcelda/internal/rng"
)

func TestHungarianKnownMatrix(t *testing.T) {
	// Classic example: optimal assignment is the anti-diagonal.
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	assign := Hungarian(cost)
	var total float64
	for i, j := range assign {
		total += cost[i][j]
	}
	if total != 5 { // 1 + 2 + 2
		t.Fatalf("total cost %v, want 5 (assignment %v)", total, assign)
	}
}

func TestHungarianIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = r.Float64()
			}
		}
		assign := Hungarian(cost)
		seen := make([]bool, n)
		for _, j := range assign {
			if j < 0 || j >= n || seen[j] {
				return false
			}
			seen[j] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHungarianBeatsBruteForceNever(t *testing.T) {
	// Exhaustively verify optimality on random 4×4 matrices.
	r := rng.New(17)
	for trial := 0; trial < 50; trial++ {
		const n = 4
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = r.Float64()
			}
		}
		assign := Hungarian(cost)
		var got float64
		for i, j := range assign {
			got += cost[i][j]
		}
		best := math.Inf(1)
		perm := []int{0, 1, 2, 3}
		permute(perm, 0, func(p []int) {
			var c float64
			for i, j := range p {
				c += cost[i][j]
			}
			if c < best {
				best = c
			}
		})
		if got > best+1e-9 {
			t.Fatalf("trial %d: Hungarian %v > brute force %v", trial, got, best)
		}
	}
}

func permute(p []int, k int, visit func([]int)) {
	if k == len(p) {
		visit(p)
		return
	}
	for i := k; i < len(p); i++ {
		p[k], p[i] = p[i], p[k]
		permute(p, k+1, visit)
		p[k], p[i] = p[i], p[k]
	}
}

func TestHungarianRectangular(t *testing.T) {
	// 2 rows, 4 columns: each row gets a distinct column.
	cost := [][]float64{
		{9, 9, 1, 9},
		{9, 9, 0.5, 2},
	}
	assign := Hungarian(cost)
	if assign[0] == assign[1] {
		t.Fatal("columns not distinct")
	}
	total := cost[0][assign[0]] + cost[1][assign[1]]
	if total != 3 { // row0→col2 (1) + row1→col3 (2)
		t.Fatalf("total %v, want 3 (assignment %v)", total, assign)
	}
}

func TestHungarianPanicsOnTooFewColumns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rows > cols")
		}
	}()
	Hungarian([][]float64{{1}, {2}})
}

func TestMatchTopicsOptimalAtMostGreedy(t *testing.T) {
	// Optimal matching can never cost more than greedy.
	f := func(seed int64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(5)
		dim := 6
		mk := func() [][]float64 {
			out := make([][]float64, n)
			for i := range out {
				out[i] = make([]float64, dim)
				r.DirichletSymmetric(0.5, out[i])
			}
			return out
		}
		phis, truth := mk(), mk()
		greedy := MatchTopicsGreedy(phis, truth)
		optimal := MatchTopicsOptimal(phis, truth)
		return MatchingCost(phis, truth, optimal) <= MatchingCost(phis, truth, greedy)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMatchTopicsOptimalSurplus(t *testing.T) {
	truth := [][]float64{{1, 0}}
	phis := [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	m := MatchTopicsOptimal(phis, truth)
	matched, unmatched := 0, 0
	for _, g := range m {
		if g == -1 {
			unmatched++
		} else {
			matched++
		}
	}
	if matched != 1 || unmatched != 1 {
		t.Fatalf("mapping %v, want one matched and one -1", m)
	}
	// The closer topic should win the single truth slot.
	if m[0] != 0 {
		t.Fatalf("mapping %v: nearest topic should take the slot", m)
	}
}

func TestMatchTopicsOptimalEmpty(t *testing.T) {
	if out := MatchTopicsOptimal(nil, nil); out != nil {
		t.Fatal("empty input should return nil")
	}
}
