package eval

import (
	"errors"
	"math"

	"sourcelda/internal/corpus"
	"sourcelda/internal/rng"
)

// LeftToRightPerplexity estimates held-out perplexity with Wallach et al.'s
// left-to-right sequential algorithm — the recommended estimator from the
// "Evaluation methods for topic models" paper the §III-C5a discussion cites.
// For each document position n, `particles` independent runs resample the
// topics of positions < n once and score P(w_n | w_<n):
//
//	P(w_n | w_<n) ≈ (1/R) Σ_r Σ_t P(w_n | t) · P(t | θ_r(w_<n))
//
// with P(w|t) given by the trained φ and θ_r from the particle's running
// assignments with symmetric prior α. Unlike simple importance sampling it
// conditions on the document prefix, giving much lower variance on long
// documents.
func LeftToRightPerplexity(phi [][]float64, alpha float64, test *corpus.Corpus, particles int, seed int64) (float64, error) {
	if len(phi) == 0 {
		return 0, errors.New("eval: empty phi")
	}
	if test == nil || test.TotalTokens() == 0 {
		return 0, errors.New("eval: empty held-out corpus")
	}
	if particles <= 0 {
		particles = 10
	}
	T := len(phi)
	r := rng.New(seed)
	probs := make([]float64, T)
	var totalLog float64
	var tokens int

	for _, doc := range test.Docs {
		n := len(doc.Words)
		if n == 0 {
			continue
		}
		// Per-particle topic assignments and counts for the prefix.
		z := make([][]int, particles)
		counts := make([][]int, particles)
		for p := range z {
			z[p] = make([]int, 0, n)
			counts[p] = make([]int, T)
		}
		for pos, w := range doc.Words {
			var pw float64
			for p := 0; p < particles; p++ {
				// Resample the prefix once (the algorithm's inner loop).
				for j := 0; j < pos; j++ {
					old := z[p][j]
					counts[p][old]--
					wj := doc.Words[j]
					for t := 0; t < T; t++ {
						probs[t] = phi[t][wj] * (float64(counts[p][t]) + alpha)
					}
					k := r.Categorical(probs)
					z[p][j] = k
					counts[p][k]++
				}
				// Score position pos.
				den := float64(pos) + float64(T)*alpha
				var pp float64
				for t := 0; t < T; t++ {
					pp += phi[t][w] * (float64(counts[p][t]) + alpha) / den
				}
				pw += pp
				// Sample a topic for position pos and extend the prefix.
				for t := 0; t < T; t++ {
					probs[t] = phi[t][w] * (float64(counts[p][t]) + alpha)
				}
				k := r.Categorical(probs)
				z[p] = append(z[p], k)
				counts[p][k]++
			}
			pw /= float64(particles)
			if pw <= 0 {
				pw = math.SmallestNonzeroFloat64
			}
			totalLog += math.Log(pw)
			tokens++
		}
	}
	if tokens == 0 {
		return 0, errors.New("eval: held-out corpus has no tokens")
	}
	return math.Exp(-totalLog / float64(tokens)), nil
}

// AgreementResult reports clustering-agreement statistics between two token
// labelings.
type AgreementResult struct {
	// NMI is the normalized mutual information in [0, 1].
	NMI float64
	// Purity is the fraction of tokens whose predicted cluster's majority
	// truth label matches their own, in [0, 1].
	Purity float64
	// Tokens is the number of scored tokens.
	Tokens int
}

// TokenAgreement compares per-token topic assignments against ground truth
// without requiring any topic↔truth mapping: normalized mutual information
// and cluster purity treat the assignments as a clustering. Useful when a
// model's topic identities are anonymous (plain LDA) and JS-based mapping
// would conflate mapping error with clustering error.
func TokenAgreement(c *corpus.Corpus, assignments [][]int) (AgreementResult, error) {
	if !c.HasGroundTruth() {
		return AgreementResult{}, errors.New("eval: corpus lacks ground-truth topics")
	}
	if len(assignments) != c.NumDocs() {
		return AgreementResult{}, errors.New("eval: assignment/document count mismatch")
	}
	joint := map[[2]int]int{}
	predCount := map[int]int{}
	truthCount := map[int]int{}
	n := 0
	for d, doc := range c.Docs {
		if len(assignments[d]) != len(doc.Words) {
			return AgreementResult{}, errors.New("eval: assignment/token count mismatch")
		}
		for i := range doc.Words {
			p, g := assignments[d][i], doc.Topics[i]
			joint[[2]int{p, g}]++
			predCount[p]++
			truthCount[g]++
			n++
		}
	}
	if n == 0 {
		return AgreementResult{}, errors.New("eval: no tokens")
	}
	fn := float64(n)
	// Mutual information and entropies.
	var mi, hPred, hTruth float64
	for pg, c2 := range joint {
		pxy := float64(c2) / fn
		px := float64(predCount[pg[0]]) / fn
		py := float64(truthCount[pg[1]]) / fn
		mi += pxy * math.Log(pxy/(px*py))
	}
	for _, c2 := range predCount {
		p := float64(c2) / fn
		hPred -= p * math.Log(p)
	}
	for _, c2 := range truthCount {
		p := float64(c2) / fn
		hTruth -= p * math.Log(p)
	}
	res := AgreementResult{Tokens: n}
	if hPred > 0 && hTruth > 0 {
		res.NMI = mi / math.Sqrt(hPred*hTruth)
		if res.NMI > 1 {
			res.NMI = 1 // guard round-off
		}
	} else if hPred == 0 && hTruth == 0 {
		res.NMI = 1 // both labelings constant and identical partitioning
	}
	// Purity: majority truth label per predicted cluster.
	majority := map[int]int{}
	best := map[int]int{}
	for pg, c2 := range joint {
		if c2 > best[pg[0]] {
			best[pg[0]] = c2
			majority[pg[0]] = pg[1]
		}
	}
	correct := 0
	for pg, c2 := range joint {
		if majority[pg[0]] == pg[1] {
			correct += c2
		}
	}
	res.Purity = float64(correct) / fn
	return res, nil
}
