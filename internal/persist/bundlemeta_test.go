package persist

import (
	"bytes"
	"testing"
	"time"
)

func TestBundleMetaRoundTrip(t *testing.T) {
	c, src := fixture(t)
	res, _, _ := fittedResult(t)
	trained := time.Date(2026, 7, 28, 12, 0, 0, 0, time.UTC)
	meta := &BundleMeta{
		Name:        "reuters",
		Version:     "2026-07-28.1",
		ChainDigest: "00deadbeef00cafe",
		TrainedAt:   trained,
	}
	var buf bytes.Buffer
	if err := SaveBundleMeta(&buf, c.Vocab.Words(), src, res, meta); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta == nil {
		t.Fatal("metadata lost in round trip")
	}
	if *back.Meta != *meta {
		t.Fatalf("meta %+v, want %+v", *back.Meta, *meta)
	}
}

// TestBundleWithoutMetaStillLoads is the backward-compatibility guarantee:
// bundles written before metadata existed (or by plain SaveBundle) load
// with a nil Meta, and an all-zero meta does not change the bytes written.
func TestBundleWithoutMetaStillLoads(t *testing.T) {
	c, src := fixture(t)
	res, _, _ := fittedResult(t)

	var plain, zeroMeta bytes.Buffer
	if err := SaveBundle(&plain, c.Vocab.Words(), src, res); err != nil {
		t.Fatal(err)
	}
	if err := SaveBundleMeta(&zeroMeta, c.Vocab.Words(), src, res, &BundleMeta{}); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBundle(bytes.NewReader(plain.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Meta != nil {
		t.Fatalf("meta-less bundle loaded with meta %+v", *back.Meta)
	}
	if !bytes.Equal(plain.Bytes(), zeroMeta.Bytes()) {
		t.Fatal("an all-zero meta changed the written bundle bytes")
	}
}
