package persist

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"sourcelda/internal/core"
)

// checkpointFixture builds a structurally plausible checkpoint by hand; the
// persist layer round-trips bytes and never interprets chain semantics, so
// no fitted model is needed.
func checkpointFixture() *core.Checkpoint {
	return &core.Checkpoint{
		Sweep:           42,
		Seed:            -7,
		OptionsDigest:   0xDEADBEEFCAFEF00D,
		NumFreeTopics:   3,
		NumSourceTopics: 5,
		VocabSize:       101,
		NumDocs:         4,
		DocLengths:      []int32{3, 1, 0, 2},
		Z:               []int32{0, 7, 3, 2, 1, 4},
		LambdaWeights:   []float64{0.25, 0.75, 1e-300, math.Inf(1), math.NaN()},
		Disabled:        []bool{false, true, false, false, true, false, false, false},
		StreamPos:       []uint64{0, 123456789012345, math.MaxUint64},
		LikelihoodTrace: []float64{-1234.5, -1100.25},
		IterationTimes:  []time.Duration{3 * time.Millisecond, 2999999},
	}
}

// checkpointsEqual compares with NaN-tolerant float equality (reflect treats
// NaN != NaN).
func checkpointsEqual(a, b *core.Checkpoint) bool {
	fixNaN := func(xs []float64) []float64 {
		out := append([]float64(nil), xs...)
		for i, x := range out {
			if math.IsNaN(x) {
				out[i] = -0.123456789 // sentinel; only used for comparison
			}
		}
		return out
	}
	ac, bc := *a, *b
	ac.LambdaWeights, bc.LambdaWeights = fixNaN(a.LambdaWeights), fixNaN(b.LambdaWeights)
	ac.LikelihoodTrace, bc.LikelihoodTrace = fixNaN(a.LikelihoodTrace), fixNaN(b.LikelihoodTrace)
	return reflect.DeepEqual(&ac, &bc)
}

func TestCheckpointRoundTrip(t *testing.T) {
	for _, ck := range []*core.Checkpoint{
		checkpointFixture(),
		{}, // all-empty state must round-trip too
	} {
		var buf bytes.Buffer
		if err := SaveCheckpoint(&buf, ck); err != nil {
			t.Fatal(err)
		}
		got, err := LoadCheckpoint(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		// Loading materializes empty slices as nil or zero-length; normalize
		// by comparing through a second encode.
		var buf2 bytes.Buffer
		if err := SaveCheckpoint(&buf2, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("checkpoint did not round-trip to identical bytes")
		}
		if !checkpointsEqual(got, ck) && len(ck.Z) > 0 {
			t.Fatal("decoded checkpoint differs from original")
		}
	}
}

// TestCheckpointRejectsTruncation: every proper prefix of a valid checkpoint
// file must fail to load with an error (never panic, never a partial
// checkpoint) — the torn-write half of crash safety.
func TestCheckpointRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, checkpointFixture()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for n := 0; n < len(full); n++ {
		if _, err := LoadCheckpoint(bytes.NewReader(full[:n])); err == nil {
			t.Fatalf("truncation to %d of %d bytes loaded without error", n, len(full))
		}
	}
}

// TestCheckpointRejectsTampering: flipping any single byte of a valid file
// must fail the magic, version, length or CRC check.
func TestCheckpointRejectsTampering(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, checkpointFixture()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for i := range full {
		tampered := append([]byte(nil), full...)
		tampered[i] ^= 0x40
		if _, err := LoadCheckpoint(bytes.NewReader(tampered)); err == nil {
			t.Fatalf("flip of byte %d of %d loaded without error", i, len(full))
		}
	}
}

func TestCheckpointRejectsForeignAndFutureFiles(t *testing.T) {
	if _, err := LoadCheckpoint(bytes.NewReader([]byte("{\"kind\":\"corpus\"}"))); err == nil {
		t.Fatal("JSON artifact accepted as checkpoint")
	}
	var buf bytes.Buffer
	if err := SaveCheckpoint(&buf, checkpointFixture()); err != nil {
		t.Fatal(err)
	}
	future := append([]byte(nil), buf.Bytes()...)
	future[len(checkpointMagic)] = CheckpointVersion + 1
	if _, err := LoadCheckpoint(bytes.NewReader(future)); err == nil {
		t.Fatal("future format version accepted")
	}
}

func TestCheckpointWriterRetention(t *testing.T) {
	dir := t.TempDir()
	cw, err := NewCheckpointWriter(dir, 2)
	if err != nil {
		t.Fatal(err)
	}
	// A foreign file and a stray temp file must survive pruning untouched.
	foreign := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(foreign, []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	stray := filepath.Join(dir, ".tmp-checkpoint-stray")
	if err := os.WriteFile(stray, []byte("torn write"), 0o644); err != nil {
		t.Fatal(err)
	}

	ck := checkpointFixture()
	var last string
	for _, sweep := range []int{10, 20, 30, 40} {
		ck.Sweep = sweep
		p, err := cw.Write(ck)
		if err != nil {
			t.Fatal(err)
		}
		last = p
	}
	paths, err := ListCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("retention kept %d checkpoints, want 2: %v", len(paths), paths)
	}
	if got := filepath.Base(paths[0]); got != checkpointFileName(30) {
		t.Fatalf("oldest surviving checkpoint %s, want sweep 30", got)
	}
	latest, err := LatestCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if latest != last || filepath.Base(latest) != checkpointFileName(40) {
		t.Fatalf("latest checkpoint %s, want %s", latest, last)
	}
	for _, p := range []string{foreign, stray} {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("pruning removed non-checkpoint file %s: %v", p, err)
		}
	}

	// Loading through the directory path picks the newest.
	got, err := LoadCheckpointFile(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Sweep != 40 {
		t.Fatalf("LoadCheckpointFile(dir) picked sweep %d, want 40", got.Sweep)
	}
}

func TestCheckpointWriterKeepAll(t *testing.T) {
	dir := t.TempDir()
	cw, err := NewCheckpointWriter(dir, -1)
	if err != nil {
		t.Fatal(err)
	}
	ck := checkpointFixture()
	for _, sweep := range []int{1, 2, 3, 4, 5} {
		ck.Sweep = sweep
		if _, err := cw.Write(ck); err != nil {
			t.Fatal(err)
		}
	}
	paths, err := ListCheckpoints(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 5 {
		t.Fatalf("negative retention pruned: %d checkpoints left", len(paths))
	}
}

func TestLatestCheckpointEmptyDir(t *testing.T) {
	if _, err := LatestCheckpoint(t.TempDir()); err == nil {
		t.Fatal("empty directory produced a latest checkpoint")
	}
}
